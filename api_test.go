package repro_test

import (
	"bytes"
	"context"
	"strings"
	"testing"

	"repro"
)

// stubProtocol is a synthetic registry entrant: it converges after
// n² + seed mod n steps without simulating anything.
type stubProtocol struct{}

func (stubProtocol) Info() repro.ProtocolInfo {
	return repro.ProtocolInfo{Name: "stub", Assumption: "none", PaperTime: "O(n²)", PaperStates: "O(1)"}
}
func (stubProtocol) States(n int) uint64   { return 2 }
func (stubProtocol) FixSize(n int) int     { return n }
func (stubProtocol) MaxSteps(n int) uint64 { return 4 * uint64(n) * uint64(n) }
func (stubProtocol) Validate(sc repro.Scenario) error {
	return sc.Validate()
}
func (p stubProtocol) Trial(sc repro.Scenario, n int, seed uint64) (repro.TrialResult, error) {
	if err := p.Validate(sc); err != nil {
		return repro.TrialResult{}, err
	}
	steps := uint64(n)*uint64(n) + seed%uint64(n)
	max := sc.MaxSteps(p, n)
	if steps > max {
		return repro.TrialResult{N: n, Seed: seed}, nil
	}
	return repro.TrialResult{N: n, Seed: seed, Steps: steps, Stabilized: steps / 2, Converged: true}, nil
}

func TestRegistryRoundTrip(t *testing.T) {
	names := repro.Protocols()
	for _, want := range []string{"angluin", "chenchen", "fj", "orient", "ppl", "yokota"} {
		found := false
		for _, name := range names {
			if name == want {
				found = true
				break
			}
		}
		if !found {
			t.Fatalf("built-in %q missing from registry %v", want, names)
		}
		p, err := repro.NewProtocol(want)
		if err != nil {
			t.Fatal(err)
		}
		if p.Info().Name == "" || p.States(16) == 0 || p.MaxSteps(16) == 0 {
			t.Fatalf("%s: degenerate protocol %+v", want, p.Info())
		}
	}
	if _, err := repro.NewProtocol("paxos"); err == nil {
		t.Fatal("unknown protocol resolved")
	}
}

func TestRegisterCustomProtocol(t *testing.T) {
	if err := repro.Register("stub-custom", func() repro.Protocol { return stubProtocol{} }); err != nil {
		t.Fatal(err)
	}
	if err := repro.Register("stub-custom", func() repro.Protocol { return stubProtocol{} }); err == nil {
		t.Fatal("duplicate registration accepted")
	}
	if err := repro.Register("", nil); err == nil {
		t.Fatal("empty registration accepted")
	}
	rep, err := repro.NewExperiment().
		ProtocolNames("stub-custom").
		Sizes(8, 16).
		Trials(3).
		Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Rows) != 1 || rep.Rows[0].Cells[0].Steps.Count != 3 {
		t.Fatalf("report %+v", rep)
	}
	if !rep.Rows[0].ExponentOK {
		t.Fatal("two clean cells must fit an exponent")
	}
}

// TestExperimentDeterministicAcrossWorkers is the acceptance check of the
// TrialSeed guarantee on the public surface: the full rendered report —
// markdown, JSON and CSV — is byte-identical whatever the worker count.
func TestExperimentDeterministicAcrossWorkers(t *testing.T) {
	run := func(workers int) *repro.Report {
		rep, err := repro.NewExperiment().
			ProtocolNames("ppl", "yokota").
			Sizes(8, 16).
			Trials(4).
			Workers(workers).
			Run(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		return rep
	}
	serial, parallel := run(1), run(4)
	if serial.Markdown() != parallel.Markdown() {
		t.Fatalf("markdown differs across worker counts:\n%s\nvs\n%s",
			serial.Markdown(), parallel.Markdown())
	}
	sj, err := serial.JSON()
	if err != nil {
		t.Fatal(err)
	}
	pj, err := parallel.JSON()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(sj, pj) {
		t.Fatal("JSON differs across worker counts")
	}
	sc, err := serial.CSV()
	if err != nil {
		t.Fatal(err)
	}
	pc, err := parallel.CSV()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(sc, pc) {
		t.Fatal("CSV differs across worker counts")
	}
}

func TestExperimentBuilderErrors(t *testing.T) {
	ctx := context.Background()
	cases := map[string]*repro.Experiment{
		"no protocols":     repro.NewExperiment().Sizes(8),
		"no sizes":         repro.NewExperiment().ProtocolNames("ppl"),
		"zero trials":      repro.NewExperiment().ProtocolNames("ppl").Sizes(8).Trials(0),
		"unknown protocol": repro.NewExperiment().ProtocolNames("paxos").Sizes(8),
		"nil protocol":     repro.NewExperiment().Protocols(nil).Sizes(8),
		"unsupported init": repro.NewExperiment().ProtocolNames("yokota").Sizes(8).
			Scenario(repro.Scenario{Init: repro.InitNoLeader}),
		"bad fault": repro.NewExperiment().ProtocolNames("ppl").Sizes(8).
			Scenario(repro.Scenario{Faults: []repro.Fault{{AtStep: 1, Agents: -1}}}),
		"bad topology": repro.NewExperiment().ProtocolNames("ppl").Sizes(8).
			Scenario(repro.Scenario{Topology: repro.TopologyUndirectedRing}),
		"bad orient topology": repro.NewExperiment().ProtocolNames("orient").Sizes(8).
			Scenario(repro.Scenario{Topology: repro.TopologyDirectedRing}),
	}
	for name, exp := range cases {
		if _, err := exp.Run(ctx); err == nil {
			t.Errorf("%s: no error", name)
		}
	}
}

func TestExperimentCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := repro.NewExperiment().ProtocolNames("ppl").Sizes(8, 16).Trials(4).Run(ctx); err == nil {
		t.Fatal("cancelled experiment reported no error")
	}
}

func TestExperimentObserver(t *testing.T) {
	var events []repro.Progress
	rep, err := repro.NewExperiment().
		ProtocolNames("ppl").
		Sizes(8).
		Trials(3).
		Workers(1).
		Observer(func(p repro.Progress) { events = append(events, p) }).
		Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(events) != 3 {
		t.Fatalf("observer saw %d events, want 3", len(events))
	}
	for i, ev := range events {
		if ev.Done != i+1 || ev.Trials != 3 || ev.N != 8 || ev.Protocol != rep.Rows[0].Protocol.Name {
			t.Fatalf("event %d = %+v", i, ev)
		}
	}
}

func TestExperimentMaxSizeFor(t *testing.T) {
	rep, err := repro.NewExperiment().
		ProtocolNames("ppl").
		Sizes(8, 16).
		Trials(1).
		MaxSizeFor("P_PL (this work)", 8).
		Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	cells := rep.Rows[0].Cells
	if len(cells) != 2 || cells[0].N != 8 || cells[1].N != 16 {
		t.Fatalf("cells not aligned with sizes: %+v", cells)
	}
	if len(cells[0].Trials) != 1 || len(cells[1].Trials) != 0 {
		t.Fatalf("cap ignored: %+v", cells)
	}
	if rep.Rows[0].ExponentOK {
		t.Fatal("a single populated cell must not fit an exponent")
	}
	if !strings.Contains(rep.Markdown(), "| — |") {
		t.Fatalf("capped cell not rendered as missing:\n%s", rep.Markdown())
	}
}

// TestExperimentMaxSizeForAlignment pins the capped-row rendering to the
// right size rows even when sizes are not ascending: the skipped size must
// render as missing, never shifted onto another row's numbers.
func TestExperimentMaxSizeForAlignment(t *testing.T) {
	rep, err := repro.NewExperiment().
		ProtocolNames("ppl", "yokota").
		Sizes(16, 8).
		Trials(1).
		MaxSizeFor("[28] Yokota et al.", 8).
		Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	md := rep.Markdown()
	for _, line := range strings.Split(md, "\n") {
		if strings.HasPrefix(line, "| 16 |") && !strings.HasSuffix(line, "| — |") {
			t.Fatalf("capped n=16 cell not rendered as missing: %q\n%s", line, md)
		}
	}
	yok := rep.Rows[1]
	if len(yok.Cells) != 2 || len(yok.Cells[0].Trials) != 0 || len(yok.Cells[1].Trials) != 1 {
		t.Fatalf("yokota cells misaligned: %+v", yok.Cells)
	}
}

// TestComparisonMatchesExperiment pins the compat shim to the new API: the
// shim's markdown and exponents are exactly what the equivalent Experiment
// produces.
func TestComparisonMatchesExperiment(t *testing.T) {
	sizes := []int{8, 16}
	res := repro.Comparison(sizes, 2, 8)
	rep, err := repro.NewExperiment().
		ProtocolNames("angluin", "fj", "chenchen", "yokota", "ppl").
		Sizes(sizes...).
		Trials(2).
		MaxSizeFor("[11] Chen–Chen", 8).
		Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if res.Markdown != rep.Markdown() {
		t.Fatalf("shim markdown diverged:\n%s\nvs\n%s", res.Markdown, rep.Markdown())
	}
	exps := rep.Exponents()
	if len(res.Exponents) != len(exps) {
		t.Fatalf("exponents %v vs %v", res.Exponents, exps)
	}
	for name, want := range exps {
		if res.Exponents[name] != want {
			t.Fatalf("exponent[%s] = %v, want %v", name, res.Exponents[name], want)
		}
	}
}
