package repro

import (
	"encoding/json"
	"os"
	"reflect"
	"testing"
)

// uniformSpec is the explicit-uniform scenario of the differential tests:
// the same arc distribution as the default fast path, but drawn through
// the scheduler plumbing.
func uniformSpec() Scenario {
	return Scenario{Sched: &SchedulerSpec{Kind: "uniform"}}
}

// assertUniformEqual pins a default-scheduler run and an explicit-uniform
// run of the same cell to bit-identical results — TrialResult and the
// full typed event stream — on one engine (generic or interned). The
// Uniform scheduler draws the byte-identical RNG stream the engine's
// built-in fast path draws, so any divergence is a bug in the scheduler
// plumbing, not noise.
func assertUniformEqual(t *testing.T, name string, n int, seed uint64, generic bool) {
	t.Helper()
	defRes, defProbe := runDiffTrial(t, name, Scenario{}, n, seed, generic)
	uniRes, uniProbe := runDiffTrial(t, name, uniformSpec(), n, seed, generic)
	if defRes != uniRes {
		t.Fatalf("%s n=%d seed=%d generic=%v: TrialResult diverged\ndefault: %+v\nuniform: %+v",
			name, n, seed, generic, defRes, uniRes)
	}
	if len(defProbe.events) != len(uniProbe.events) {
		t.Fatalf("%s n=%d seed=%d generic=%v: event stream lengths diverged (%d vs %d)",
			name, n, seed, generic, len(defProbe.events), len(uniProbe.events))
	}
	for i := range defProbe.events {
		if !reflect.DeepEqual(defProbe.events[i], uniProbe.events[i]) {
			t.Fatalf("%s n=%d seed=%d generic=%v: event %d diverged\ndefault: %+v\nuniform: %+v",
				name, n, seed, generic, i, defProbe.events[i], uniProbe.events[i])
		}
	}
}

// TestExplicitUniformMatchesDefault is the scheduler-subsystem
// differential test: for every built-in protocol, ring sizes across both
// tiers of the pair table and a fan of seeds, a trial under the explicit
// "uniform" scheduler must reproduce the default fast path bit-for-bit —
// steps, exact hitting times, stabilization, leader accounting and the
// whole probe stream — on the generic AND the interned engine.
func TestExplicitUniformMatchesDefault(t *testing.T) {
	for name, sizes := range diffCells() {
		for _, n := range sizes {
			for seed := uint64(1); seed <= 3; seed++ {
				assertUniformEqual(t, name, n, seed, true)
				assertUniformEqual(t, name, n, seed, false)
			}
		}
	}
}

// TestInternedMatchesGenericUnderAdversaries extends the engine
// differential to the adversarial schedulers and ring dynamics: biased
// arcs, eclipses, churn and stuck agents must leave the interned
// table-lookup engine bit-identical to the generic engine (stuck trials
// fall back to the generic path on both sides by construction — a frozen
// site breaks the tables' site-independence).
func TestInternedMatchesGenericUnderAdversaries(t *testing.T) {
	scenarios := []Scenario{
		{Sched: &SchedulerSpec{Kind: "biased", Family: "hotspot", HotArcs: 4, Weight: 8}},
		{Sched: &SchedulerSpec{Kind: "biased", Family: "ramp", Weight: 8}},
		{Sched: &SchedulerSpec{Kind: "eclipse", Start: 1, Period: 1 << 30, Duration: 2000, Arcs: 6}},
		{Sched: &SchedulerSpec{Stuck: 2}, Budget: Budget{Scale: 0.02}},
		{Sched: &SchedulerSpec{Churn: []ChurnEvent{{AtStep: 800, Remove: 2}, {AtStep: 2500, Insert: 2}}}},
	}
	cells := map[string][]int{
		"ppl": {16, 33}, "orient": {16, 33}, "yokota": {16, 33},
		"angluin": {17, 33}, "fj": {16, 32}, "chenchen": {6, 8},
	}
	for name, sizes := range cells {
		for _, sc := range scenarios {
			p, err := NewProtocol(name)
			if err != nil {
				t.Fatal(err)
			}
			if p.Validate(sc) != nil {
				continue // churn rejected by the fixed-size protocols
			}
			for _, n := range sizes {
				assertDiffEqual(t, name, sc, n, 1)
			}
		}
	}
}

// benchFile mirrors the envelope of BENCH_baseline.json for the
// hitting-time reproduction test.
type benchFile struct {
	Results []BenchResult `json:"results"`
}

// TestUniformReproducesBenchBaselineHittingTimes replays every tracked
// row of the committed perf baseline through the explicit Uniform
// scheduler: the exact convergence step counts recorded in
// BENCH_baseline.json (deterministic in the seed, machine-independent)
// must come back unchanged, on both engines. This ties the scheduler
// plumbing to a committed artifact produced before the subsystem
// existed.
func TestUniformReproducesBenchBaselineHittingTimes(t *testing.T) {
	data, err := os.ReadFile("BENCH_baseline.json")
	if err != nil {
		t.Fatal(err)
	}
	var file benchFile
	if err := json.Unmarshal(data, &file); err != nil {
		t.Fatal(err)
	}
	rows := 0
	for _, generic := range []bool{false, true} {
		internedOff.Store(generic)
		for _, row := range file.Results {
			if row.Mode != BenchTracked || !row.Converged {
				continue
			}
			rows++
			p, err := NewProtocol(row.Protocol)
			if err != nil {
				internedOff.Store(false)
				t.Fatal(err)
			}
			res, err := p.Trial(uniformSpec(), row.N, row.Seed)
			if err != nil {
				internedOff.Store(false)
				t.Fatal(err)
			}
			if res.Steps != row.Steps || !res.Converged {
				internedOff.Store(false)
				t.Fatalf("%s n=%d seed=%d generic=%v: explicit-uniform trial hit at step %d (converged=%v), baseline recorded %d",
					row.Protocol, row.N, row.Seed, generic, res.Steps, res.Converged, row.Steps)
			}
		}
	}
	internedOff.Store(false)
	if rows == 0 {
		t.Fatal("BENCH_baseline.json has no converged tracked rows to replay")
	}
}
