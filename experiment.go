package repro

import (
	"context"
	"fmt"

	"repro/internal/harness"
	"repro/internal/runner"
	"repro/internal/stats"
)

// Progress is one Experiment progress event: Done of Trials trials of the
// (Protocol, N) cell have completed.
type Progress struct {
	Protocol string
	N        int
	Done     int
	Trials   int
}

// Experiment is a builder for a multi-protocol, multi-size trial matrix —
// the generalization of the paper's Table 1 regeneration to any registered
// protocol and any Scenario. Configure it with the chained setters and
// execute with Run:
//
//	rep, err := repro.NewExperiment().
//	        ProtocolNames("ppl", "yokota").
//	        Sizes(16, 32, 64).
//	        Trials(5).
//	        Run(ctx)
//
// Trials fan out across a worker pool; seeds derive from TrialSeed, so the
// resulting Report is byte-identical whatever the worker count.
//
// Beyond the in-memory Report, trials can stream: Sinks attaches
// TrialRecord consumers fed as workers finish (Run keeps the Report AND
// streams; Stream drops the Report entirely, so memory stays bounded by
// the worker count, not the trial count), Metrics adds composable
// aggregations over any record observable to the Report, and ProbeWith
// attaches a custom per-trial Probe to the event stream.
type Experiment struct {
	protocols []Protocol
	sizes     []int
	trials    int
	scenario  Scenario
	workers   int
	observer  func(Progress)
	sinks     []Sink
	metrics   []Metric
	probe     func() Probe
	caps      map[string]int
	err       error
}

// NewExperiment returns an experiment with no protocols or sizes, one
// trial per cell, the zero Scenario and one worker per core.
func NewExperiment() *Experiment {
	return &Experiment{trials: 1, caps: make(map[string]int)}
}

// Protocols appends protocol instances to the experiment, in row order.
func (e *Experiment) Protocols(ps ...Protocol) *Experiment {
	for _, p := range ps {
		if p == nil {
			e.fail(fmt.Errorf("repro: nil Protocol"))
			return e
		}
		e.protocols = append(e.protocols, p)
	}
	return e
}

// ProtocolNames appends registered protocols by name, in row order.
func (e *Experiment) ProtocolNames(names ...string) *Experiment {
	for _, name := range names {
		p, err := NewProtocol(name)
		if err != nil {
			e.fail(err)
			return e
		}
		e.protocols = append(e.protocols, p)
	}
	return e
}

// Sizes sets the requested ring sizes (protocols adjust them through
// FixSize).
func (e *Experiment) Sizes(ns ...int) *Experiment {
	e.sizes = append(e.sizes, ns...)
	return e
}

// Trials sets the number of trials per (protocol, size) cell.
func (e *Experiment) Trials(k int) *Experiment {
	e.trials = k
	return e
}

// Scenario sets the trial scenario (init class, fault schedule, budget,
// topology) shared by every cell.
func (e *Experiment) Scenario(sc Scenario) *Experiment {
	e.scenario = sc
	return e
}

// Workers caps the trial worker pool; 0 selects one worker per core.
func (e *Experiment) Workers(k int) *Experiment {
	e.workers = k
	return e
}

// Observer installs a progress callback, invoked after every completed
// trial.
//
// Concurrency contract: calls are serialized by the runner — the callback
// never runs concurrently with itself, and successive calls observe
// strictly increasing Done values — but they are issued from arbitrary
// worker goroutines, not the goroutine that called Run. A callback that
// only touches its own captured state therefore needs no mutex; one that
// shares state with code outside the callback must synchronize that
// sharing itself (the serialization guarantees exclusion between
// callbacks, not against the caller's other goroutines).
func (e *Experiment) Observer(fn func(Progress)) *Experiment {
	e.observer = fn
	return e
}

// Sinks attaches TrialRecord consumers. Records stream to every sink as
// workers finish — completion order, not trial order — and every sink is
// closed exactly once before Run or Stream returns (see Sink for the full
// contract). Attaching a sink switches trials to the probed path, which
// leaves results bit-identical.
func (e *Experiment) Sinks(sinks ...Sink) *Experiment {
	for _, s := range sinks {
		if s == nil {
			e.fail(fmt.Errorf("repro: nil Sink"))
			return e
		}
		e.sinks = append(e.sinks, s)
	}
	return e
}

// Metrics adds composable aggregations over per-trial record observables
// to the Report: each cell gains the metric's value over the trials
// carrying the observable, and Markdown/JSON render them (see Metric).
func (e *Experiment) Metrics(ms ...Metric) *Experiment {
	e.metrics = append(e.metrics, ms...)
	return e
}

// ProbeWith installs a per-trial Probe factory: fn is called once per
// trial and the returned probe receives that trial's full event stream
// alongside the built-in recording probe. The factory may be called from
// any worker goroutine; the probes it returns are used single-threaded
// (see Probe).
func (e *Experiment) ProbeWith(fn func() Probe) *Experiment {
	e.probe = fn
	return e
}

// MaxSizeFor caps the ring sizes run for the named protocol (matched
// against ProtocolInfo.Name): requested sizes above the cap are skipped
// and render as missing cells. Used to keep the exponential-time [11]
// baseline out of large-n sweeps.
func (e *Experiment) MaxSizeFor(name string, max int) *Experiment {
	e.caps[name] = max
	return e
}

// fail records the first builder error; Run reports it.
func (e *Experiment) fail(err error) {
	if e.err == nil {
		e.err = err
	}
}

// Validate surfaces builder misuse — no protocols or sizes, a bad trial
// count, malformed metrics, a scenario a protocol rejects — without
// running anything. Run, Stream and ReportFromRecords all call it first;
// it is exported for callers (the experiment service, say) that must
// reject a bad configuration before queueing it.
func (e *Experiment) Validate() error { return e.validate() }

// validate surfaces builder misuse before any trial runs.
func (e *Experiment) validate() error {
	if e.err != nil {
		return e.err
	}
	if len(e.protocols) == 0 {
		return fmt.Errorf("repro: experiment has no protocols")
	}
	if len(e.sizes) == 0 {
		return fmt.Errorf("repro: experiment has no sizes")
	}
	if e.trials < 1 {
		return fmt.Errorf("repro: experiment needs at least one trial per cell, got %d", e.trials)
	}
	for _, m := range e.metrics {
		if err := m.validate(); err != nil {
			return err
		}
	}
	for _, p := range e.protocols {
		if err := p.Validate(e.scenario); err != nil {
			return err
		}
	}
	return nil
}

// Run executes the experiment: every (protocol, size) cell runs Trials
// independent trials with seeds TrialSeed(n, 0..Trials-1), fanned out
// across the worker pool. The returned Report aggregates per-trial
// results, per-cell summaries, metric values and fitted scaling
// exponents; attached Sinks additionally receive every TrialRecord as it
// completes. Run returns an error — never panics — on builder misuse,
// unsupported scenarios, cancellation, a failing sink, or a panicking
// trial (surfaced as a *runner.PanicError).
func (e *Experiment) Run(ctx context.Context) (*Report, error) {
	rs := newReportSink(e)
	if err := e.execute(ctx, rs); err != nil {
		return nil, err
	}
	return rs.rep, nil
}

// ReportFromRecords rebuilds the Report of this experiment from
// already-produced TrialRecords instead of running any trial — the replay
// path for record artifacts (a JSONL file, a service cache) produced by an
// identically-configured experiment. Records are matched to cells by
// (protocol name, FixSize-adjusted n, trial index); every non-skipped cell
// must be fully covered or an error is returned, so a partial artifact
// cannot silently render as an all-failures report. Because Run aggregates
// through exactly this sink, the rebuilt Report — and its rendered bytes —
// is byte-identical to the one the original Run returned, including Metric
// tables (metrics reduce record observables, which the records carry).
func (e *Experiment) ReportFromRecords(recs []TrialRecord) (*Report, error) {
	if err := e.validate(); err != nil {
		return nil, err
	}
	type cellKey struct {
		proto string
		n     int
		trial int
	}
	byKey := make(map[cellKey]TrialRecord, len(recs))
	for _, rec := range recs {
		byKey[cellKey{rec.Protocol, rec.N, rec.Trial}] = rec
	}
	rs := newReportSink(e)
	for _, p := range e.protocols {
		info := p.Info()
		rs.beginRow(p, info)
		for _, rawN := range e.sizes {
			n := p.FixSize(rawN)
			if cap, capped := e.caps[info.Name]; capped && rawN > cap {
				rs.skipCell(n)
				continue
			}
			rs.beginCell(n)
			for t := 0; t < e.trials; t++ {
				rec, ok := byKey[cellKey{info.Name, n, t}]
				if !ok {
					return nil, fmt.Errorf("repro: records missing trial %d of cell (%s, n=%d)", t, info.Name, n)
				}
				if err := rs.Record(rec); err != nil {
					return nil, err
				}
			}
			rs.endCell()
		}
		rs.endRow()
	}
	return rs.rep, nil
}

// Stream executes the experiment without building a Report: every
// TrialRecord goes to the attached Sinks as its trial finishes and is then
// dropped, so memory stays bounded by the worker count however many
// trials the sweep has. At least one sink must be attached.
func (e *Experiment) Stream(ctx context.Context) error {
	if len(e.sinks) == 0 {
		return fmt.Errorf("repro: Stream needs at least one Sink (use Run for an in-memory Report)")
	}
	if len(e.metrics) > 0 {
		// Metric aggregation lives in the in-memory Report; silently
		// dropping configured metrics after a million-trial sweep would be
		// far worse than refusing up front.
		return fmt.Errorf("repro: Metrics need the in-memory Report — use Run, or aggregate records in a Sink")
	}
	return e.execute(ctx, nil)
}

// execute runs the trial matrix, streaming records into the report sink
// (nil in Stream mode) and the user sinks. All sinks — the Report
// included — consume the same record stream; the report sink is just the
// one that aggregates in memory.
func (e *Experiment) execute(ctx context.Context, rs *reportSink) (err error) {
	if verr := e.validate(); verr != nil {
		return verr
	}
	ss := &sinkSet{}
	if rs != nil {
		ss.sinks = append(ss.sinks, rs)
	}
	ss.sinks = append(ss.sinks, e.sinks...)
	defer func() {
		if cerr := ss.close(); err == nil {
			err = cerr
		}
	}()

	// The probed path costs a per-trial record; the legacy path is kept
	// bit-for-bit as the hot default when nobody is observing.
	probed := rs == nil || len(e.sinks) > 0 || len(e.metrics) > 0 || e.probe != nil

	for _, p := range e.protocols {
		info := p.Info()
		if rs != nil {
			rs.beginRow(p, info)
		}
		for _, rawN := range e.sizes {
			n := p.FixSize(rawN)
			if cap, capped := e.caps[info.Name]; capped && rawN > cap {
				if rs != nil {
					// An empty placeholder keeps cells positionally aligned
					// with Sizes, so renderers never attribute a cell to the
					// wrong size row.
					rs.skipCell(n)
				}
				continue
			}
			if err := e.runCell(ctx, p, info, n, probed, ss, rs); err != nil {
				return err
			}
		}
		if rs != nil {
			rs.endRow()
		}
	}
	return nil
}

// runCell fans the trials of one (protocol, size) cell out through the
// worker pool, streaming each record to the sinks as it completes.
func (e *Experiment) runCell(ctx context.Context, p Protocol, info ProtocolInfo, n int, probed bool, ss *sinkSet, rs *reportSink) error {
	if rs != nil {
		rs.beginCell(n)
	}
	opts := runner.Options{Workers: e.workers}
	if e.observer != nil {
		obs := e.observer
		opts.Progress = func(done, total int) {
			obs(Progress{Protocol: info.Name, N: n, Done: done, Trials: total})
		}
	}
	sc := e.scenario
	ferr := runner.ForEach(ctx, e.trials, func(t int) {
		seed := TrialSeed(n, t)
		var rec TrialRecord
		if probed {
			rp := &RecordingProbe{}
			var probe Probe = rp
			if e.probe != nil {
				if extra := e.probe(); extra != nil {
					probe = Probes(rp, extra)
				}
			}
			if _, err := ProbeTrial(p, sc, n, seed, probe); err != nil {
				ss.fail(err)
				return
			}
			rec = rp.Record()
		} else {
			res, err := p.Trial(sc, n, seed)
			if err != nil {
				ss.fail(err)
				return
			}
			rec = TrialRecord{
				Protocol: info.Name, N: res.N, Seed: res.Seed,
				Steps: res.Steps, Stabilized: res.Stabilized, Converged: res.Converged,
			}
		}
		rec.Trial = t
		ss.record(rec)
	}, opts)
	if ferr != nil {
		return ferr
	}
	if err := ss.firstErr(); err != nil {
		return err
	}
	if rs != nil {
		rs.endCell()
	}
	return nil
}

// reportSink is the in-memory aggregation as a Sink: it routes each record
// into its cell slot by Trial index and, at cell/row boundaries driven by
// execute, reduces them to the summaries, metric values and exponent fits
// of the Report — exactly the aggregation the pre-streaming Experiment
// did, so reports stay byte-identical.
type reportSink struct {
	e    *Experiment
	rep  *Report
	row  ReportRow
	cell ReportCell
	obs  []map[string]float64
}

func newReportSink(e *Experiment) *reportSink {
	rep := &Report{
		Sizes:    append([]int(nil), e.sizes...),
		Trials:   e.trials,
		Scenario: e.scenario,
	}
	for _, m := range e.metrics {
		rep.Metrics = append(rep.Metrics, m.label())
	}
	return &reportSink{e: e, rep: rep}
}

func (rs *reportSink) beginRow(p Protocol, info ProtocolInfo) {
	refSize := rs.e.sizes[len(rs.e.sizes)-1]
	rs.row = ReportRow{
		Protocol: info,
		States:   p.States(p.FixSize(refSize)),
	}
}

func (rs *reportSink) endRow() {
	rs.row.Exponent, rs.row.ExponentOK = harness.Exponent(harnessCells(rs.row.Cells))
	rs.rep.Rows = append(rs.rep.Rows, rs.row)
}

func (rs *reportSink) skipCell(n int) {
	rs.row.Cells = append(rs.row.Cells, ReportCell{N: n})
}

func (rs *reportSink) beginCell(n int) {
	rs.cell = ReportCell{N: n, Trials: make([]TrialResult, rs.e.trials)}
	rs.obs = make([]map[string]float64, rs.e.trials)
}

// Record implements Sink. The experiment serializes calls; rec.Trial
// routes the record into its pre-allocated slot, which is what keeps the
// aggregation independent of completion order.
func (rs *reportSink) Record(rec TrialRecord) error {
	rs.cell.Trials[rec.Trial] = rec.Result()
	rs.obs[rec.Trial] = rec.Observables
	return nil
}

// Close implements Sink; the report needs no flushing.
func (rs *reportSink) Close() error { return nil }

// endCell reduces the completed cell, in trial order.
func (rs *reportSink) endCell() {
	var steps, stab []float64
	for _, res := range rs.cell.Trials {
		if !res.Converged {
			rs.cell.Failures++
			continue
		}
		steps = append(steps, float64(res.Steps))
		stab = append(stab, float64(res.Stabilized))
	}
	if len(steps) > 0 {
		rs.cell.Steps = summaryFrom(stats.Summarize(steps))
		rs.cell.Stabilized = summaryFrom(stats.Summarize(stab))
	}
	for _, m := range rs.e.metrics {
		var xs []float64
		for _, o := range rs.obs {
			if v, ok := o[m.Observable]; ok {
				xs = append(xs, v)
			}
		}
		if v, ok := m.apply(xs); ok {
			if rs.cell.Metrics == nil {
				rs.cell.Metrics = make(map[string]float64, len(rs.e.metrics))
			}
			rs.cell.Metrics[m.label()] = v
		}
	}
	rs.row.Cells = append(rs.row.Cells, rs.cell)
	rs.cell = ReportCell{}
	rs.obs = nil
}

// summaryFrom converts the internal summary to the public mirror.
func summaryFrom(s stats.Summary) Summary {
	return Summary{
		Count: s.Count, Mean: s.Mean, Std: s.Std,
		Min: s.Min, Median: s.Median, P90: s.P90, Max: s.Max,
	}
}

// harnessCells converts a row's cells to the internal form the markdown
// renderers consume.
func harnessCells(cells []ReportCell) []harness.Cell {
	out := make([]harness.Cell, len(cells))
	for i, c := range cells {
		out[i] = harness.Cell{
			N:          c.N,
			Steps:      stats.Summary{Count: c.Steps.Count, Mean: c.Steps.Mean, Std: c.Steps.Std, Min: c.Steps.Min, Median: c.Steps.Median, P90: c.Steps.P90, Max: c.Steps.Max},
			Stabilized: stats.Summary{Count: c.Stabilized.Count, Mean: c.Stabilized.Mean, Std: c.Stabilized.Std, Min: c.Stabilized.Min, Median: c.Stabilized.Median, P90: c.Stabilized.P90, Max: c.Stabilized.Max},
			Failures:   c.Failures,
		}
	}
	return out
}
