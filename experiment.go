package repro

import (
	"context"
	"fmt"

	"repro/internal/harness"
	"repro/internal/runner"
	"repro/internal/stats"
)

// Progress is one Experiment progress event: Done of Trials trials of the
// (Protocol, N) cell have completed.
type Progress struct {
	Protocol string
	N        int
	Done     int
	Trials   int
}

// Experiment is a builder for a multi-protocol, multi-size trial matrix —
// the generalization of the paper's Table 1 regeneration to any registered
// protocol and any Scenario. Configure it with the chained setters and
// execute with Run:
//
//	rep, err := repro.NewExperiment().
//	        ProtocolNames("ppl", "yokota").
//	        Sizes(16, 32, 64).
//	        Trials(5).
//	        Run(ctx)
//
// Trials fan out across a worker pool; seeds derive from TrialSeed, so the
// resulting Report is byte-identical whatever the worker count.
type Experiment struct {
	protocols []Protocol
	sizes     []int
	trials    int
	scenario  Scenario
	workers   int
	observer  func(Progress)
	caps      map[string]int
	err       error
}

// NewExperiment returns an experiment with no protocols or sizes, one
// trial per cell, the zero Scenario and one worker per core.
func NewExperiment() *Experiment {
	return &Experiment{trials: 1, caps: make(map[string]int)}
}

// Protocols appends protocol instances to the experiment, in row order.
func (e *Experiment) Protocols(ps ...Protocol) *Experiment {
	for _, p := range ps {
		if p == nil {
			e.fail(fmt.Errorf("repro: nil Protocol"))
			return e
		}
		e.protocols = append(e.protocols, p)
	}
	return e
}

// ProtocolNames appends registered protocols by name, in row order.
func (e *Experiment) ProtocolNames(names ...string) *Experiment {
	for _, name := range names {
		p, err := NewProtocol(name)
		if err != nil {
			e.fail(err)
			return e
		}
		e.protocols = append(e.protocols, p)
	}
	return e
}

// Sizes sets the requested ring sizes (protocols adjust them through
// FixSize).
func (e *Experiment) Sizes(ns ...int) *Experiment {
	e.sizes = append(e.sizes, ns...)
	return e
}

// Trials sets the number of trials per (protocol, size) cell.
func (e *Experiment) Trials(k int) *Experiment {
	e.trials = k
	return e
}

// Scenario sets the trial scenario (init class, fault schedule, budget,
// topology) shared by every cell.
func (e *Experiment) Scenario(sc Scenario) *Experiment {
	e.scenario = sc
	return e
}

// Workers caps the trial worker pool; 0 selects one worker per core.
func (e *Experiment) Workers(k int) *Experiment {
	e.workers = k
	return e
}

// Observer installs a progress callback, invoked after every completed
// trial. Calls are serialized but may come from any worker goroutine.
func (e *Experiment) Observer(fn func(Progress)) *Experiment {
	e.observer = fn
	return e
}

// MaxSizeFor caps the ring sizes run for the named protocol (matched
// against ProtocolInfo.Name): requested sizes above the cap are skipped
// and render as missing cells. Used to keep the exponential-time [11]
// baseline out of large-n sweeps.
func (e *Experiment) MaxSizeFor(name string, max int) *Experiment {
	e.caps[name] = max
	return e
}

// fail records the first builder error; Run reports it.
func (e *Experiment) fail(err error) {
	if e.err == nil {
		e.err = err
	}
}

// Run executes the experiment: every (protocol, size) cell runs Trials
// independent trials with seeds TrialSeed(n, 0..Trials-1), fanned out
// across the worker pool. The returned Report aggregates per-trial
// results, per-cell summaries and fitted scaling exponents. Run returns an
// error — never panics — on builder misuse, unsupported scenarios,
// cancellation, or a panicking trial (surfaced as a *runner.PanicError).
func (e *Experiment) Run(ctx context.Context) (*Report, error) {
	if e.err != nil {
		return nil, e.err
	}
	if len(e.protocols) == 0 {
		return nil, fmt.Errorf("repro: experiment has no protocols")
	}
	if len(e.sizes) == 0 {
		return nil, fmt.Errorf("repro: experiment has no sizes")
	}
	if e.trials < 1 {
		return nil, fmt.Errorf("repro: experiment needs at least one trial per cell, got %d", e.trials)
	}
	sc := e.scenario
	for _, p := range e.protocols {
		if err := p.Validate(sc); err != nil {
			return nil, err
		}
	}

	rep := &Report{
		Sizes:    append([]int(nil), e.sizes...),
		Trials:   e.trials,
		Scenario: sc,
	}
	refSize := e.sizes[len(e.sizes)-1]
	for _, p := range e.protocols {
		info := p.Info()
		row := ReportRow{
			Protocol: info,
			States:   p.States(p.FixSize(refSize)),
		}
		for _, rawN := range e.sizes {
			n := p.FixSize(rawN)
			if cap, capped := e.caps[info.Name]; capped && rawN > cap {
				// An empty placeholder keeps cells positionally aligned
				// with Sizes, so renderers never attribute a cell to the
				// wrong size row.
				row.Cells = append(row.Cells, ReportCell{N: n})
				continue
			}
			cell, err := e.runCell(ctx, p, info, sc, n)
			if err != nil {
				return nil, err
			}
			row.Cells = append(row.Cells, cell)
		}
		row.Exponent, row.ExponentOK = fitExponent(row.Cells)
		rep.Rows = append(rep.Rows, row)
	}
	return rep, nil
}

// runCell fans the trials of one (protocol, size) cell out through the
// worker pool and aggregates them in trial order.
func (e *Experiment) runCell(ctx context.Context, p Protocol, info ProtocolInfo, sc Scenario, n int) (ReportCell, error) {
	type trial struct {
		res TrialResult
		err error
	}
	opts := runner.Options{Workers: e.workers}
	if e.observer != nil {
		obs := e.observer
		opts.Progress = func(done, total int) {
			obs(Progress{Protocol: info.Name, N: n, Done: done, Trials: total})
		}
	}
	results, err := runner.Map(ctx, e.trials, func(t int) trial {
		res, err := p.Trial(sc, n, TrialSeed(n, t))
		return trial{res, err}
	}, opts)
	if err != nil {
		return ReportCell{}, err
	}
	cell := ReportCell{N: n}
	var steps, stab []float64
	for _, tr := range results {
		if tr.err != nil {
			return ReportCell{}, tr.err
		}
		cell.Trials = append(cell.Trials, tr.res)
		if !tr.res.Converged {
			cell.Failures++
			continue
		}
		steps = append(steps, float64(tr.res.Steps))
		stab = append(stab, float64(tr.res.Stabilized))
	}
	if len(steps) > 0 {
		cell.Steps = summaryFrom(stats.Summarize(steps))
		cell.Stabilized = summaryFrom(stats.Summarize(stab))
	}
	return cell, nil
}

// fitExponent fits mean convergence steps against n as a power law over
// the cells with data; ok is false when fewer than two cells have any.
func fitExponent(cells []ReportCell) (float64, bool) {
	return harness.Exponent(harnessCells(cells))
}

// summaryFrom converts the internal summary to the public mirror.
func summaryFrom(s stats.Summary) Summary {
	return Summary{
		Count: s.Count, Mean: s.Mean, Std: s.Std,
		Min: s.Min, Median: s.Median, P90: s.P90, Max: s.Max,
	}
}

// harnessCells converts a row's cells to the internal form the markdown
// renderers consume.
func harnessCells(cells []ReportCell) []harness.Cell {
	out := make([]harness.Cell, len(cells))
	for i, c := range cells {
		out[i] = harness.Cell{
			N:          c.N,
			Steps:      stats.Summary{Count: c.Steps.Count, Mean: c.Steps.Mean, Std: c.Steps.Std, Min: c.Steps.Min, Median: c.Steps.Median, P90: c.Steps.P90, Max: c.Steps.Max},
			Stabilized: stats.Summary{Count: c.Stabilized.Count, Mean: c.Stabilized.Mean, Std: c.Stabilized.Std, Min: c.Stabilized.Min, Median: c.Stabilized.Median, P90: c.Stabilized.P90, Max: c.Stabilized.Max},
			Failures:   c.Failures,
		}
	}
	return out
}
