package repro

import (
	"fmt"
	"time"
)

// BenchMode selects what RunBenchmark measures on one protocol engine.
type BenchMode string

const (
	// BenchRaw measures the raw transition loop: a fixed number of
	// RunBatch scheduler steps with no convergence judgement at all — the
	// ceiling any convergence-detection scheme is compared against.
	BenchRaw BenchMode = "runbatch"
	// BenchTracked measures a run to convergence through the incremental
	// tracker (the production path): exact hitting times, O(1) per-step
	// convergence checks.
	BenchTracked BenchMode = "tracked"
	// BenchScan measures a run to convergence through the scan-era
	// periodic full-configuration predicate (checkEvery ≈ n/2): the
	// pre-tracker baseline, kept as the comparison point.
	BenchScan BenchMode = "scan"
	// BenchInterned measures a run to convergence through the interned
	// table-lookup execution layer (the trial default since the interned
	// engine landed): transitions, leader accounting and tracker updates
	// replayed as table loads, with transparent generic fallback when the
	// interner's capacity cap is exceeded. The timed run goes through
	// tables pre-filled by an untimed warmup run of the same trajectory,
	// so the row reports the layer's steady-state lookup throughput — the
	// one-time fill cost is measured separately by BenchLanes, amortized
	// across a batch exactly as sweeps pay it.
	BenchInterned BenchMode = "interned"
	// BenchLanes measures a batch of same-cell trials run as lockstep
	// structure-of-arrays lanes over one shared transition-table set
	// (LaneTrials): per-trial results are bit-identical to BenchInterned,
	// but the table fills and state interning amortize across the batch.
	// Steps and steps/sec aggregate the whole batch; Lanes records the
	// batch width.
	BenchLanes BenchMode = "lanes"
)

// defaultBenchLanes is the lane count RunBenchmark uses for BenchLanes;
// RunBenchmarkLanes takes an explicit width.
const defaultBenchLanes = 8

// benchLaneSeedStride spreads a base seed into per-lane seeds
// (seed + i*stride); an odd 64-bit constant keeps the streams distinct for
// any base.
const benchLaneSeedStride = 0x9e3779b97f4a7c15

// BenchResult is one measurement of the performance-baseline pipeline
// (cmd/bench): steps per second of one protocol × ring size × scenario ×
// mode cell. Steps counts scheduler steps actually executed — the hitting
// step for the convergence modes, the requested budget for BenchRaw.
type BenchResult struct {
	Protocol    string    `json:"protocol"`
	N           int       `json:"n"`
	Scenario    string    `json:"scenario"`
	Mode        BenchMode `json:"mode"`
	Seed        uint64    `json:"seed"`
	Steps       uint64    `json:"steps"`
	Seconds     float64   `json:"seconds"`
	StepsPerSec float64   `json:"steps_per_sec"`
	// Converged reports whether the convergence modes hit their predicate
	// within the budget; always true for BenchRaw.
	Converged bool `json:"converged"`
	// Fallback reports, for BenchInterned rows, that the interner's
	// capacity cap was exceeded and the run completed on the generic path
	// (P_PL at large n); absent for every other mode.
	Fallback bool `json:"fallback,omitempty"`
	// Lanes is the lockstep batch width of a BenchLanes row; absent for
	// every other mode.
	Lanes int `json:"lanes,omitempty"`
}

// Record converts the measurement to the streaming TrialRecord form, so
// perf measurements flow through the same sinks and JSONL schema as
// experiment trials: the throughput numbers become observables and the
// mode/scenario become tags.
func (r BenchResult) Record() TrialRecord {
	return TrialRecord{
		Protocol:  r.Protocol,
		N:         r.N,
		Seed:      r.Seed,
		Steps:     r.Steps,
		Converged: r.Converged,
		Tags:      map[string]string{"mode": string(r.Mode), "scenario": r.Scenario},
		Observables: map[string]float64{
			"seconds":       r.Seconds,
			"steps_per_sec": r.StepsPerSec,
		},
	}
}

// benchRunner is the mode-dispatch surface a built-in protocol's trial
// engine exposes to RunBenchmark; trialEngine[S] implements it for every
// state type.
type benchRunner interface {
	benchRaw(steps uint64)
	benchTracked(maxSteps uint64) (uint64, bool)
	benchScan(maxSteps uint64) (uint64, bool)
	benchInterned(maxSteps uint64) (steps uint64, converged, interned bool)
	stepCount() uint64
}

// benchable is implemented by the built-in protocols: it builds a fresh,
// fully wired trial engine without running it, so RunBenchmark can time
// the run phase alone. The per-protocol newBench methods live next to
// their Trial wiring in protocols.go.
type benchable interface {
	newBench(sc Scenario, n int, seed uint64) (benchRunner, error)
}

// internedBenchable is implemented by the built-in protocols: it builds
// two fully wired trial engines for the same (scenario, n, seed) cell over
// ONE shared transition-table set. RunBenchmark uses the pair for the
// interned mode — the first runner is an untimed warmup that fills the
// state interner and pair tables, the second re-runs the identical
// trajectory through the warm tables — so the timed region measures the
// steady-state table-lookup throughput the mode is named for rather than
// the one-time fill.
type internedBenchable interface {
	newBenchPair(sc Scenario, n int, seed uint64) (warm, timed benchRunner, err error)
}

// RunBenchmark executes one perf-baseline measurement: protocol name (a
// registered built-in), requested ring size (FixSize-adjusted
// internally), scheduler seed, scenario, and mode — BenchRaw, BenchTracked,
// BenchScan or BenchInterned. rawSteps is the step
// budget of BenchRaw and ignored by the convergence modes, which run to
// the scenario's budget. Fault-schedule scenarios are rejected: the modes
// time a single uninterrupted run phase, so a burst schedule would be
// silently skipped and the artifact would mislabel a fault-free
// measurement. Custom registered protocols are not supported — the raw
// and scan modes need engine-level access that the public Protocol
// contract deliberately does not expose.
func RunBenchmark(name string, n int, seed uint64, sc Scenario, mode BenchMode, rawSteps uint64) (BenchResult, error) {
	if mode == BenchLanes {
		return RunBenchmarkLanes(name, n, seed, sc, defaultBenchLanes)
	}
	if len(sc.Faults) > 0 {
		return BenchResult{}, fmt.Errorf("repro: RunBenchmark does not support fault schedules")
	}
	if sc.Sched.hasChurn() {
		// Same reason as faults: churn fires from the trial event loop,
		// which the bench modes bypass, so a churn scenario would silently
		// measure a static ring. Biased/eclipse schedulers and stuck agents
		// live at the engine level and bench fine.
		return BenchResult{}, fmt.Errorf("repro: RunBenchmark does not support churn schedules")
	}
	p, err := NewProtocol(name)
	if err != nil {
		return BenchResult{}, err
	}
	b, ok := p.(benchable)
	if !ok {
		return BenchResult{}, fmt.Errorf("repro: protocol %q does not support engine benchmarks", name)
	}
	n = p.FixSize(n)
	maxSteps := sc.MaxSteps(p, n)
	var ru benchRunner
	if pb, isPair := p.(internedBenchable); isPair && mode == BenchInterned {
		// Steady-state measurement: an untimed warmup run over the shared
		// table set fills the interner and pair tables, then the timed
		// runner below replays the identical trajectory entirely warm.
		warm, timed, err := pb.newBenchPair(sc, n, seed)
		if err != nil {
			return BenchResult{}, err
		}
		warm.benchInterned(maxSteps)
		ru = timed
	} else {
		ru, err = b.newBench(sc, n, seed)
		if err != nil {
			return BenchResult{}, err
		}
	}
	res := BenchResult{
		Protocol: name, N: n, Scenario: sc.Init.String(), Mode: mode, Seed: seed,
	}
	start := time.Now()
	switch mode {
	case BenchRaw:
		ru.benchRaw(rawSteps)
		res.Steps, res.Converged = rawSteps, true
	case BenchTracked:
		_, res.Converged = ru.benchTracked(maxSteps)
		res.Steps = ru.stepCount()
	case BenchScan:
		_, res.Converged = ru.benchScan(maxSteps)
		res.Steps = ru.stepCount()
	case BenchInterned:
		var interned bool
		_, res.Converged, interned = ru.benchInterned(maxSteps)
		res.Steps = ru.stepCount()
		res.Fallback = !interned
	default:
		return BenchResult{}, fmt.Errorf("repro: unknown bench mode %q", mode)
	}
	res.Seconds = time.Since(start).Seconds()
	if res.Seconds > 0 {
		res.StepsPerSec = float64(res.Steps) / res.Seconds
	}
	return res, nil
}

// RunBenchmarkLanes executes one BenchLanes measurement: k same-cell trials
// with seeds seed, seed+stride, … run as lockstep lanes over one shared
// table set. The timed region is the whole LaneTrials call — table
// construction included, since amortizing that construction across the
// batch is exactly what the mode exists to measure. Steps sums the batch;
// Converged reports whether every lane hit its predicate.
func RunBenchmarkLanes(name string, n int, seed uint64, sc Scenario, k int) (BenchResult, error) {
	if k < 1 {
		return BenchResult{}, fmt.Errorf("repro: lanes benchmark needs k >= 1, got %d", k)
	}
	if len(sc.Faults) > 0 {
		return BenchResult{}, fmt.Errorf("repro: RunBenchmark does not support fault schedules")
	}
	if sc.Sched.hasChurn() {
		return BenchResult{}, fmt.Errorf("repro: RunBenchmark does not support churn schedules")
	}
	p, err := NewProtocol(name)
	if err != nil {
		return BenchResult{}, err
	}
	l, ok := p.(laneable)
	if !ok {
		return BenchResult{}, fmt.Errorf("repro: protocol %q does not support lane benchmarks", name)
	}
	n = p.FixSize(n)
	seeds := make([]uint64, k)
	for i := range seeds {
		seeds[i] = seed + uint64(i)*benchLaneSeedStride
	}
	res := BenchResult{
		Protocol: name, N: n, Scenario: sc.Init.String(), Mode: BenchLanes,
		Seed: seed, Lanes: k, Converged: true,
	}
	start := time.Now()
	trials, err := l.LaneTrials(sc, n, seeds)
	res.Seconds = time.Since(start).Seconds()
	if err != nil {
		return BenchResult{}, err
	}
	for _, tr := range trials {
		res.Steps += tr.Steps
		res.Converged = res.Converged && tr.Converged
	}
	if res.Seconds > 0 {
		res.StepsPerSec = float64(res.Steps) / res.Seconds
	}
	return res, nil
}
