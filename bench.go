package repro

import (
	"fmt"
	"time"
)

// BenchMode selects what RunBenchmark measures on one protocol engine.
type BenchMode string

const (
	// BenchRaw measures the raw transition loop: a fixed number of
	// RunBatch scheduler steps with no convergence judgement at all — the
	// ceiling any convergence-detection scheme is compared against.
	BenchRaw BenchMode = "runbatch"
	// BenchTracked measures a run to convergence through the incremental
	// tracker (the production path): exact hitting times, O(1) per-step
	// convergence checks.
	BenchTracked BenchMode = "tracked"
	// BenchScan measures a run to convergence through the scan-era
	// periodic full-configuration predicate (checkEvery ≈ n/2): the
	// pre-tracker baseline, kept as the comparison point.
	BenchScan BenchMode = "scan"
	// BenchInterned measures a run to convergence through the interned
	// table-lookup execution layer (the trial default since the interned
	// engine landed): transitions, leader accounting and tracker updates
	// replayed as table loads, with transparent generic fallback when the
	// interner's capacity cap is exceeded.
	BenchInterned BenchMode = "interned"
)

// BenchResult is one measurement of the performance-baseline pipeline
// (cmd/bench): steps per second of one protocol × ring size × scenario ×
// mode cell. Steps counts scheduler steps actually executed — the hitting
// step for the convergence modes, the requested budget for BenchRaw.
type BenchResult struct {
	Protocol    string    `json:"protocol"`
	N           int       `json:"n"`
	Scenario    string    `json:"scenario"`
	Mode        BenchMode `json:"mode"`
	Seed        uint64    `json:"seed"`
	Steps       uint64    `json:"steps"`
	Seconds     float64   `json:"seconds"`
	StepsPerSec float64   `json:"steps_per_sec"`
	// Converged reports whether the convergence modes hit their predicate
	// within the budget; always true for BenchRaw.
	Converged bool `json:"converged"`
	// Fallback reports, for BenchInterned rows, that the interner's
	// capacity cap was exceeded and the run completed on the generic path
	// (P_PL at large n); absent for every other mode.
	Fallback bool `json:"fallback,omitempty"`
}

// Record converts the measurement to the streaming TrialRecord form, so
// perf measurements flow through the same sinks and JSONL schema as
// experiment trials: the throughput numbers become observables and the
// mode/scenario become tags.
func (r BenchResult) Record() TrialRecord {
	return TrialRecord{
		Protocol:  r.Protocol,
		N:         r.N,
		Seed:      r.Seed,
		Steps:     r.Steps,
		Converged: r.Converged,
		Tags:      map[string]string{"mode": string(r.Mode), "scenario": r.Scenario},
		Observables: map[string]float64{
			"seconds":       r.Seconds,
			"steps_per_sec": r.StepsPerSec,
		},
	}
}

// benchRunner is the mode-dispatch surface a built-in protocol's trial
// engine exposes to RunBenchmark; trialEngine[S] implements it for every
// state type.
type benchRunner interface {
	benchRaw(steps uint64)
	benchTracked(maxSteps uint64) (uint64, bool)
	benchScan(maxSteps uint64) (uint64, bool)
	benchInterned(maxSteps uint64) (steps uint64, converged, interned bool)
	stepCount() uint64
}

// benchable is implemented by the built-in protocols: it builds a fresh,
// fully wired trial engine without running it, so RunBenchmark can time
// the run phase alone. The per-protocol newBench methods live next to
// their Trial wiring in protocols.go.
type benchable interface {
	newBench(sc Scenario, n int, seed uint64) (benchRunner, error)
}

// RunBenchmark executes one perf-baseline measurement: protocol name (a
// registered built-in), requested ring size (FixSize-adjusted
// internally), scheduler seed, scenario, and mode — BenchRaw, BenchTracked,
// BenchScan or BenchInterned. rawSteps is the step
// budget of BenchRaw and ignored by the convergence modes, which run to
// the scenario's budget. Fault-schedule scenarios are rejected: the modes
// time a single uninterrupted run phase, so a burst schedule would be
// silently skipped and the artifact would mislabel a fault-free
// measurement. Custom registered protocols are not supported — the raw
// and scan modes need engine-level access that the public Protocol
// contract deliberately does not expose.
func RunBenchmark(name string, n int, seed uint64, sc Scenario, mode BenchMode, rawSteps uint64) (BenchResult, error) {
	if len(sc.Faults) > 0 {
		return BenchResult{}, fmt.Errorf("repro: RunBenchmark does not support fault schedules")
	}
	if sc.Sched.hasChurn() {
		// Same reason as faults: churn fires from the trial event loop,
		// which the bench modes bypass, so a churn scenario would silently
		// measure a static ring. Biased/eclipse schedulers and stuck agents
		// live at the engine level and bench fine.
		return BenchResult{}, fmt.Errorf("repro: RunBenchmark does not support churn schedules")
	}
	p, err := NewProtocol(name)
	if err != nil {
		return BenchResult{}, err
	}
	b, ok := p.(benchable)
	if !ok {
		return BenchResult{}, fmt.Errorf("repro: protocol %q does not support engine benchmarks", name)
	}
	n = p.FixSize(n)
	ru, err := b.newBench(sc, n, seed)
	if err != nil {
		return BenchResult{}, err
	}
	res := BenchResult{
		Protocol: name, N: n, Scenario: sc.Init.String(), Mode: mode, Seed: seed,
	}
	maxSteps := sc.MaxSteps(p, n)
	start := time.Now()
	switch mode {
	case BenchRaw:
		ru.benchRaw(rawSteps)
		res.Steps, res.Converged = rawSteps, true
	case BenchTracked:
		_, res.Converged = ru.benchTracked(maxSteps)
		res.Steps = ru.stepCount()
	case BenchScan:
		_, res.Converged = ru.benchScan(maxSteps)
		res.Steps = ru.stepCount()
	case BenchInterned:
		var interned bool
		_, res.Converged, interned = ru.benchInterned(maxSteps)
		res.Steps = ru.stepCount()
		res.Fallback = !interned
	default:
		return BenchResult{}, fmt.Errorf("repro: unknown bench mode %q", mode)
	}
	res.Seconds = time.Since(start).Seconds()
	if res.Seconds > 0 {
		res.StepsPerSec = float64(res.Steps) / res.Seconds
	}
	return res, nil
}
