package repro_test

import (
	"testing"

	"repro"
)

// collectProbe records the raw event stream for assertions.
type collectProbe struct {
	protocol string
	n        int
	seed     uint64
	events   []repro.TrialEvent
	ended    bool
	result   repro.TrialResult
}

func (p *collectProbe) Begin(protocol string, n int, seed uint64) {
	p.protocol, p.n, p.seed = protocol, n, seed
}
func (p *collectProbe) Observe(ev repro.TrialEvent) { p.events = append(p.events, ev) }
func (p *collectProbe) End(res repro.TrialResult)   { p.ended, p.result = true, res }

func (p *collectProbe) kinds(kind repro.EventKind) []repro.TrialEvent {
	var out []repro.TrialEvent
	for _, ev := range p.events {
		if ev.Kind == kind {
			out = append(out, ev)
		}
	}
	return out
}

// TestProbedTrialMatchesPlainTrial is the no-perturbation guarantee: a
// probe observes the trial without changing it — same RNG stream, same
// hitting time, same scalars — for every built-in protocol.
func TestProbedTrialMatchesPlainTrial(t *testing.T) {
	sc := repro.Scenario{Faults: []repro.Fault{{AtStep: 500, Agents: 4}}}
	for _, name := range repro.Protocols() {
		p, err := repro.NewProtocol(name)
		if err != nil {
			t.Fatal(err)
		}
		useSc := sc
		if err := p.Validate(sc); err != nil {
			useSc = repro.Scenario{} // orient rejects nothing relevant; be safe
		}
		n := p.FixSize(16)
		plain, err := p.Trial(useSc, n, 3)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		probe := &collectProbe{}
		probed, err := repro.ProbeTrial(p, useSc, n, 3, repro.Probes(probe, &repro.RecordingProbe{}))
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if plain != probed {
			t.Fatalf("%s: probed trial diverged: %+v vs %+v", name, plain, probed)
		}
		if !probe.ended || probe.result != plain {
			t.Fatalf("%s: probe End saw %+v, want %+v", name, probe.result, plain)
		}
		if probe.protocol != p.Info().Name || probe.n != n || probe.seed != 3 {
			t.Fatalf("%s: Begin saw (%q, %d, %d)", name, probe.protocol, probe.n, probe.seed)
		}
	}
}

// TestProbeEventStream pins the typed event stream of a faulted ppl trial:
// initial leader sample, epochs around the burst, the fault itself, the
// convergence step and the channel counts.
func TestProbeEventStream(t *testing.T) {
	const n, seed, burstAt, burstAgents = 16, 2, 400, 8
	p := repro.PPL(0, 0)
	sc := repro.Scenario{Faults: []repro.Fault{{AtStep: burstAt, Agents: burstAgents}}}
	probe := &collectProbe{}
	res, err := repro.ProbeTrial(p, sc, n, seed, probe)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatalf("trial did not converge: %+v", res)
	}

	leaders := probe.kinds(repro.EventLeaderChange)
	if len(leaders) == 0 || leaders[0].Step != 0 {
		t.Fatalf("no initial leader sample: %+v", leaders)
	}
	for i := 1; i < len(leaders); i++ {
		if leaders[i].Step < leaders[i-1].Step {
			t.Fatalf("leader events out of step order: %+v", leaders)
		}
	}

	epochs := probe.kinds(repro.EventEpoch)
	if len(epochs) != 2 || epochs[0].Epoch != 0 || epochs[1].Epoch != 1 {
		t.Fatalf("epochs = %+v, want epoch 0 at start and epoch 1 after the burst", epochs)
	}

	faults := probe.kinds(repro.EventFault)
	if len(faults) != 1 || faults[0].Step != burstAt || faults[0].Agents != burstAgents {
		t.Fatalf("fault events = %+v", faults)
	}
	if faults[0].Leaders < 0 {
		t.Fatal("ppl tracks leaders; fault event must carry the count")
	}

	conv := probe.kinds(repro.EventConverged)
	if len(conv) != 1 || conv[0].Step != res.Steps || conv[0].Leaders != 1 {
		t.Fatalf("converged events = %+v, want one at step %d with 1 leader", conv, res.Steps)
	}

	chans := probe.kinds(repro.EventChannels)
	if len(chans) != 1 || chans[0].Counts["leaders"] != 1 || chans[0].Counts["live_bullets"] != 0 {
		t.Fatalf("channel counts = %+v, want sampled converged shape", chans)
	}
}

// TestRecordingProbeObservables pins the distilled TrialRecord of a
// faulted trial: the recovery observable, fault accounting, the leader
// trajectory and the tracker channel counts.
func TestRecordingProbeObservables(t *testing.T) {
	const n, seed, burstAt = 16, 2, 400
	p := repro.PPL(0, 0)
	sc := repro.Scenario{Faults: []repro.Fault{{AtStep: burstAt, Agents: 8}}}
	probe := &repro.RecordingProbe{}
	res, err := repro.ProbeTrial(p, sc, n, seed, probe)
	if err != nil {
		t.Fatal(err)
	}
	rec := probe.Record()
	if rec.Result() != res {
		t.Fatalf("record scalars %+v diverged from result %+v", rec.Result(), res)
	}
	obs := rec.Observables
	if obs["recovery_steps"] != float64(res.Steps-burstAt) {
		t.Fatalf("recovery_steps = %v, want %d", obs["recovery_steps"], res.Steps-burstAt)
	}
	if obs["fault_bursts"] != 1 || obs["fault_agents"] != 8 || obs["last_fault_step"] != burstAt {
		t.Fatalf("fault observables wrong: %v", obs)
	}
	if obs["leaders_final"] != 1 || obs["leaders_peak"] < 1 || obs["leaders_initial"] < 0 {
		t.Fatalf("leader observables wrong: %v", obs)
	}
	if obs["chan_leaders"] != 1 {
		t.Fatalf("channel observables missing: %v", obs)
	}
	series := rec.Series["leaders"]
	if len(series) == 0 || series[0].Step != 0 || series[len(series)-1].Value != 1 {
		t.Fatalf("leader series wrong: %+v", series)
	}
}

// TestRecordingProbeSeriesCap pins the deterministic thinning: a
// pathological trajectory stays within the configured point budget while
// still spanning the step range.
func TestRecordingProbeSeriesCap(t *testing.T) {
	probe := &repro.RecordingProbe{MaxSeriesPoints: 8}
	probe.Begin("stub", 4, 1)
	for step := uint64(0); step < 1000; step++ {
		probe.Observe(repro.TrialEvent{Kind: repro.EventLeaderChange, Step: step, Leaders: int(step % 3)})
	}
	probe.End(repro.TrialResult{N: 4, Seed: 1, Steps: 1000, Converged: true})
	series := probe.Record().Series["leaders"]
	if len(series) == 0 || len(series) > 8 {
		t.Fatalf("series has %d points, want 1..8", len(series))
	}
	if series[0].Step != 0 {
		t.Fatalf("thinning dropped the start point: %+v", series[0])
	}
	if series[len(series)-1].Step < 500 {
		t.Fatalf("thinned series no longer spans the trial: %+v", series)
	}
}

// TestProbeFallbackForPlainProtocols: an external registrant that only
// implements Protocol still produces scalar records through ProbeTrial.
func TestProbeFallbackForPlainProtocols(t *testing.T) {
	p := stubProtocol{}
	probe := &repro.RecordingProbe{}
	res, err := repro.ProbeTrial(p, repro.Scenario{}, 8, 3, probe)
	if err != nil {
		t.Fatal(err)
	}
	rec := probe.Record()
	if rec.Result() != res || rec.Protocol != "stub" {
		t.Fatalf("fallback record %+v for result %+v", rec, res)
	}
	if rec.Observables["steps"] != float64(res.Steps) || rec.Observables["converged"] != 1 {
		t.Fatalf("fallback observables %v", rec.Observables)
	}
	if len(rec.Series) != 0 {
		t.Fatalf("plain protocol cannot have series: %+v", rec.Series)
	}
}
