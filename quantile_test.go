package repro

import (
	"context"
	"math"
	"math/rand"
	"sort"
	"strings"
	"testing"
)

// exactQuantile is the nearest-rank reference the sink's estimate is
// judged against.
func exactQuantile(vals []float64, q float64) float64 {
	s := append([]float64(nil), vals...)
	sort.Float64s(s)
	rank := int(math.Ceil(q * float64(len(s))))
	if rank < 1 {
		rank = 1
	}
	return s[rank-1]
}

func quantileRecord(trial int, steps uint64) TrialRecord {
	return TrialRecord{Protocol: "p", N: 8, Trial: trial, Steps: steps}
}

func TestQuantileSinkAccuracy(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	sink := NewQuantileSink()
	var vals []float64
	for i := 0; i < 20000; i++ {
		// Log-uniform over ~5 decades, the shape of step-count data.
		v := math.Exp(rng.Float64() * 12)
		vals = append(vals, math.Floor(v)+1)
		if err := sink.Record(quantileRecord(i, uint64(math.Floor(v))+1)); err != nil {
			t.Fatalf("Record: %v", err)
		}
	}
	for _, q := range []float64{0.5, 0.9, 0.99} {
		got, ok := sink.Quantile("p", 8, "steps", q)
		if !ok {
			t.Fatalf("q=%v: no data", q)
		}
		want := exactQuantile(vals, q)
		if relErr := math.Abs(got-want) / want; relErr > 0.03 {
			t.Errorf("q=%v: got %v want %v (rel err %.4f > 3%%)", q, got, want, relErr)
		}
	}
	if n := sink.Count("p", 8, "steps"); n != 20000 {
		t.Fatalf("Count = %d, want 20000", n)
	}
}

func TestQuantileSinkOrderIndependent(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	recs := make([]TrialRecord, 500)
	for i := range recs {
		recs[i] = quantileRecord(i, uint64(rng.Intn(1_000_000)+1))
	}
	forward := NewQuantileSink()
	for _, r := range recs {
		if err := forward.Record(r); err != nil {
			t.Fatal(err)
		}
	}
	shuffled := NewQuantileSink()
	perm := rng.Perm(len(recs))
	for _, i := range perm {
		if err := shuffled.Record(recs[i]); err != nil {
			t.Fatal(err)
		}
	}
	if a, b := forward.Table(), shuffled.Table(); a != b {
		t.Fatalf("table depends on record order:\nforward:\n%s\nshuffled:\n%s", a, b)
	}
}

func TestQuantileSinkMerge(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	whole := NewQuantileSink()
	left := NewQuantileSink()
	right := NewQuantileSink()
	for i := 0; i < 1000; i++ {
		rec := quantileRecord(i, uint64(rng.Intn(50_000)+1))
		if err := whole.Record(rec); err != nil {
			t.Fatal(err)
		}
		part := left
		if i%2 == 1 {
			part = right
		}
		if err := part.Record(rec); err != nil {
			t.Fatal(err)
		}
	}
	left.Merge(right)
	if a, b := whole.Table(), left.Table(); a != b {
		t.Fatalf("merged table differs from whole-stream table:\nwhole:\n%s\nmerged:\n%s", a, b)
	}
}

func TestQuantileSinkZerosAndScalars(t *testing.T) {
	sink := NewQuantileSink("steps", "converged", "nosuch")
	recs := []TrialRecord{
		{Protocol: "p", N: 4, Trial: 0, Steps: 0, Converged: false},
		{Protocol: "p", N: 4, Trial: 1, Steps: 10, Converged: true},
		{Protocol: "p", N: 4, Trial: 2, Steps: 10, Converged: true},
	}
	for _, r := range recs {
		if err := sink.Record(r); err != nil {
			t.Fatal(err)
		}
	}
	if got, ok := sink.Quantile("p", 4, "converged", 0.5); !ok || got != 1 {
		t.Fatalf("converged p50 = %v, %v; want 1, true", got, ok)
	}
	// A zero value must not poison the log buckets; the p50 of {0,10,10}
	// is 10, the min bucket holds the zero.
	if got, ok := sink.Quantile("p", 4, "steps", 0.99); !ok || got != 10 {
		t.Fatalf("steps p99 = %v, %v; want 10, true", got, ok)
	}
	if got, ok := sink.Quantile("p", 4, "steps", 0.01); !ok || got != 0 {
		t.Fatalf("steps p1 = %v, %v; want 0 (the zero record), true", got, ok)
	}
	if _, ok := sink.Quantile("p", 4, "nosuch", 0.5); ok {
		t.Fatal("unknown observable reported data")
	}
}

// TestQuantileSinkStream attaches the sink to a real Stream-mode sweep and
// checks the rendered table is identical across worker counts — the
// order-independence property the fabric leans on.
func TestQuantileSinkStream(t *testing.T) {
	run := func(workers int) string {
		sink := NewQuantileSink()
		err := NewExperiment().
			ProtocolNames("ppl", "angluin").
			Sizes(8, 16).
			Trials(4).
			Workers(workers).
			Sinks(sink).
			Stream(context.Background())
		if err != nil {
			t.Fatalf("stream (workers=%d): %v", workers, err)
		}
		return sink.Table()
	}
	serial := run(1)
	parallel := run(4)
	if serial != parallel {
		t.Fatalf("table depends on worker count:\nserial:\n%s\nparallel:\n%s", serial, parallel)
	}
	if !strings.Contains(serial, "| p50 |") || !strings.Contains(serial, "steps") {
		t.Fatalf("table missing expected columns/rows:\n%s", serial)
	}
	// Two protocols × two sizes ⇒ header + separator + 4 rows.
	if lines := strings.Count(strings.TrimSpace(serial), "\n"); lines != 5 {
		t.Fatalf("table has %d newlines, want 5:\n%s", lines, serial)
	}
}
