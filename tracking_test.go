package repro

import (
	"math"
	"testing"

	"repro/internal/population"
	"repro/internal/xrand"
)

// TestTrialTrackedMatchesScanOracle is the wiring-level exactness check:
// for every registered built-in protocol, the production Trial (incremental
// tracker) must report exactly the TrialResult of the same trial judged by
// the per-step brute-force scan oracle (convergenceScanEvery = 1).
func TestTrialTrackedMatchesScanOracle(t *testing.T) {
	cases := map[string]int{
		"ppl": 16, "yokota": 16, "angluin": 16, "fj": 16, "orient": 16,
		"chenchen": 8, // exponential-class reconstruction: small ring
	}
	for name, size := range cases {
		t.Run(name, func(t *testing.T) {
			p, err := NewProtocol(name)
			if err != nil {
				t.Fatal(err)
			}
			n := p.FixSize(size)
			for seed := uint64(1); seed <= 3; seed++ {
				tracked, err := p.Trial(Scenario{}, n, seed)
				if err != nil {
					t.Fatal(err)
				}
				convergenceScanEvery.Store(1)
				scanned, err := p.Trial(Scenario{}, n, seed)
				convergenceScanEvery.Store(0)
				if err != nil {
					t.Fatal(err)
				}
				if tracked != scanned {
					t.Fatalf("seed %d: tracked %+v != per-step scan %+v", seed, tracked, scanned)
				}
				if !tracked.Converged {
					t.Fatalf("seed %d: no convergence", seed)
				}
			}
		})
	}
}

// TestTrialStepsNotQuantized pins the headline fix: hitting times are no
// longer rounded up to the scan era's checkEvery = n/2+1 grid. Under the
// old polling loop every reported Steps was a multiple of the grid; the
// exact tracker must produce off-grid values for some seeds, and never a
// later step than the grid did.
func TestTrialStepsNotQuantized(t *testing.T) {
	p := PPL(0, 0)
	const n = 16
	grid := uint64(n/2 + 1)
	offGrid := false
	for seed := uint64(1); seed <= 12; seed++ {
		exact, err := p.Trial(Scenario{}, n, seed)
		if err != nil {
			t.Fatal(err)
		}
		convergenceScanEvery.Store(int64(grid))
		coarse, err := p.Trial(Scenario{}, n, seed)
		convergenceScanEvery.Store(0)
		if err != nil {
			t.Fatal(err)
		}
		if !exact.Converged || !coarse.Converged {
			t.Fatalf("seed %d: convergence missing", seed)
		}
		if coarse.Steps%grid != 0 {
			t.Fatalf("seed %d: scan-era steps %d not on its own %d-grid", seed, coarse.Steps, grid)
		}
		if exact.Steps > coarse.Steps || coarse.Steps-exact.Steps >= grid {
			t.Fatalf("seed %d: exact %d vs grid %d — not within [0, %d) slack",
				seed, exact.Steps, coarse.Steps, grid)
		}
		if exact.Steps%grid != 0 {
			offGrid = true
		}
	}
	if !offGrid {
		t.Fatal("every exact hitting time landed on the old grid — tracking suspiciously quantized")
	}
}

// flipState is a minimal leader-bit state for fault-accounting tests.
type flipState struct{ leader bool }

// TestFaultInstallRecordsLeaderChange pins the trialEngine half of the
// fault-accounting fix: a burst whose install changes the leader set must
// move Stabilized to the install step even when no interaction afterwards
// touches a leader bit. Under the pre-fix engine this reported 0.
func TestFaultInstallRecordsLeaderChange(t *testing.T) {
	eng := population.NewEngine(population.DirectedRing(4),
		func(l, r flipState) (flipState, flipState) { return l, r }, // no-op protocol
		xrand.New(1))
	eng.TrackLeaders(func(s flipState) bool { return s.leader })
	te := trialEngine[flipState]{
		eng:     eng,
		corrupt: func(*xrand.RNG, flipState) flipState { return flipState{leader: true} },
		pred:    func([]flipState) bool { return true },
		check:   1,
	}
	res := te.run(Scenario{Faults: []Fault{{AtStep: 5, Agents: 1}}}, 4, 7, 100, "flip", nil)
	if res.Steps != 5 {
		t.Fatalf("trial ended at step %d, want the install step 5", res.Steps)
	}
	if res.Stabilized != 5 {
		t.Fatalf("Stabilized = %d, want the install step 5 (pre-fault value leaked)", res.Stabilized)
	}
}

// TestFaultScheduleStabilizedNotPreFault is the public-API half: a
// full-ring burst fired after the fault-free convergence point rewrites
// the leader set, so the recovered trial's stabilization step must lie at
// or after the burst — never at the pre-fault value.
func TestFaultScheduleStabilizedNotPreFault(t *testing.T) {
	p := PPL(0, 0)
	const n, seed = 16, 2
	clean, err := p.Trial(Scenario{}, n, seed)
	if err != nil {
		t.Fatal(err)
	}
	if !clean.Converged {
		t.Fatalf("fault-free trial did not converge: %+v", clean)
	}
	burst := clean.Steps + 500
	faulted, err := p.Trial(Scenario{Faults: []Fault{{AtStep: burst, Agents: n}}}, n, seed)
	if err != nil {
		t.Fatal(err)
	}
	if !faulted.Converged {
		t.Fatalf("did not recover: %+v", faulted)
	}
	if faulted.Stabilized < burst {
		t.Fatalf("Stabilized = %d before the burst at %d — fault install not accounted", faulted.Stabilized, burst)
	}
}

// TestBudgetScaleClamp pins the tiny-Scale fix: a positive scale that
// truncates to zero resolves to a 1-step budget (the trial actually runs,
// and fails honestly), and malformed scales are rejected by Validate.
func TestBudgetScaleClamp(t *testing.T) {
	p := PPL(0, 0)
	sc := Scenario{Budget: Budget{Scale: 1e-12}}
	if got := sc.MaxSteps(p, 16); got != 1 {
		t.Fatalf("resolved budget %d, want the 1-step clamp", got)
	}
	res, err := p.Trial(sc, 16, 1)
	if err != nil {
		t.Fatal(err)
	}
	if res.Converged {
		t.Fatal("1-step budget cannot elect on n=16")
	}
	if res.Steps != 1 {
		t.Fatalf("trial ran %d steps under a clamped 1-step budget", res.Steps)
	}
	for _, bad := range []float64{math.NaN(), math.Inf(1), math.Inf(-1), -0.5} {
		if err := (Scenario{Budget: Budget{Scale: bad}}).Validate(); err == nil {
			t.Fatalf("scale %v validated", bad)
		}
	}
	// A huge finite scale saturates instead of hitting Go's
	// implementation-specific out-of-range float→uint64 conversion.
	huge := Scenario{Budget: Budget{Scale: 1e30}}
	if got := huge.MaxSteps(p, 16); got != math.MaxUint64 {
		t.Fatalf("huge scale resolved to %d, want saturation", got)
	}
	if err := (Scenario{Budget: Budget{Scale: 0.5}}).Validate(); err != nil {
		t.Fatalf("honest scale rejected: %v", err)
	}
}

// TestRunBenchmarkModes exercises the public perf-baseline surface behind
// cmd/bench across all three modes and pins the tracked-vs-scan relation:
// same trial, exact hitting time at or before the scan-era one.
func TestRunBenchmarkModes(t *testing.T) {
	var tracked, scanned BenchResult
	for _, mode := range []BenchMode{BenchRaw, BenchTracked, BenchScan} {
		res, err := RunBenchmark("ppl", 16, 1, Scenario{}, mode, 5000)
		if err != nil {
			t.Fatal(err)
		}
		if res.N != 16 || res.Steps == 0 || !res.Converged || res.StepsPerSec <= 0 {
			t.Fatalf("%s: degenerate result %+v", mode, res)
		}
		switch mode {
		case BenchRaw:
			if res.Steps != 5000 {
				t.Fatalf("raw mode ran %d steps, want the requested 5000", res.Steps)
			}
		case BenchTracked:
			tracked = res
		case BenchScan:
			scanned = res
		}
	}
	if tracked.Steps > scanned.Steps {
		t.Fatalf("tracked hitting time %d after scan-era %d", tracked.Steps, scanned.Steps)
	}
	if _, err := RunBenchmark("paxos", 16, 1, Scenario{}, BenchTracked, 0); err == nil {
		t.Fatal("unknown protocol accepted")
	}
	if _, err := RunBenchmark("ppl", 16, 1, Scenario{}, BenchMode("warp"), 0); err == nil {
		t.Fatal("unknown mode accepted")
	}
	if _, err := RunBenchmark("yokota", 16, 1, Scenario{Init: InitNoLeader}, BenchTracked, 0); err == nil {
		t.Fatal("unsupported scenario accepted")
	}
	faulty := Scenario{Faults: []Fault{{AtStep: 100, Agents: 4}}}
	if _, err := RunBenchmark("ppl", 16, 1, faulty, BenchTracked, 0); err == nil {
		t.Fatal("fault schedule accepted — it would be silently skipped")
	}
}
