package repro

import (
	"strings"
	"testing"
)

func TestRingElectionQuickConvergence(t *testing.T) {
	e := NewRingElection(16, WithSeed(1))
	e.InitRandom(2)
	steps, ok := e.RunToSafe(0)
	if !ok {
		t.Fatal("did not reach a safe configuration")
	}
	if steps != e.Steps() {
		t.Fatalf("step accounting: %d vs %d", steps, e.Steps())
	}
	if !e.Safe() {
		t.Fatal("Safe() false after RunToSafe")
	}
	leader, unique := e.Leader()
	if !unique {
		t.Fatalf("no unique leader (count=%d)", e.LeaderCount())
	}
	if leader < 0 || leader >= e.N() {
		t.Fatalf("leader index %d out of range", leader)
	}
}

func TestRingElectionFaultRecovery(t *testing.T) {
	e := NewRingElection(16, WithSeed(3))
	e.InitPerfect(5)
	if !e.Safe() {
		t.Fatal("perfect init not safe")
	}
	e.InjectFaults(8)
	if _, ok := e.RunToSafe(0); !ok {
		t.Fatal("did not recover from injected faults")
	}
}

func TestRingElectionNoLeaderStart(t *testing.T) {
	e := NewRingElection(16, WithSeed(4))
	e.InitNoLeader()
	if e.LeaderCount() != 0 {
		t.Fatal("InitNoLeader produced a leader")
	}
	if _, ok := e.RunToSafe(0); !ok {
		t.Fatal("did not elect from a leaderless start")
	}
}

func TestRingElectionOptions(t *testing.T) {
	e := NewRingElection(16, WithSeed(1), WithSlack(2), WithC1(16))
	if e.Psi() != 6 {
		t.Fatalf("slack ignored: ψ=%d", e.Psi())
	}
	base := NewRingElection(16).StatesPerAgent()
	if e.StatesPerAgent() <= base {
		t.Fatal("slack must increase the state count")
	}
}

func TestRingElectionDeterminism(t *testing.T) {
	run := func() uint64 {
		e := NewRingElection(12, WithSeed(9))
		e.InitRandom(10)
		steps, ok := e.RunToSafe(0)
		if !ok {
			t.Fatal("no convergence")
		}
		return steps
	}
	if a, b := run(), run(); a != b {
		t.Fatalf("non-deterministic: %d vs %d", a, b)
	}
}

func TestRingElectionDescribe(t *testing.T) {
	e := NewRingElection(16, WithSeed(1))
	e.InitPerfect(0)
	out := e.Describe()
	if !strings.Contains(out, "ψ=4") || !strings.Contains(out, "segment") {
		t.Fatalf("Describe output:\n%s", out)
	}
}

func TestRingOrientation(t *testing.T) {
	o := NewRingOrientation(24, WithSeed(5))
	steps, ok := o.RunToOriented(0)
	if !ok {
		t.Fatal("did not orient")
	}
	if !o.Oriented() {
		t.Fatal("Oriented() false after success")
	}
	_ = steps
	// Direction is one of the two; just exercise the accessor.
	_ = o.Clockwise()
}

func TestRingOrientationScramble(t *testing.T) {
	o := NewRingOrientation(16, WithSeed(6))
	if _, ok := o.RunToOriented(0); !ok {
		t.Fatal("initial orientation failed")
	}
	o.Scramble()
	if _, ok := o.RunToOriented(0); !ok {
		t.Fatal("did not re-orient after scramble")
	}
}

func TestComparisonTiny(t *testing.T) {
	res := Comparison([]int{8, 16}, 2, 8)
	if !strings.Contains(res.Markdown, "P_PL") || !strings.Contains(res.Markdown, "[28]") {
		t.Fatalf("comparison output:\n%s", res.Markdown)
	}
	if len(res.Exponents) != 5 {
		t.Fatalf("exponents: %v", res.Exponents)
	}
}
