package repro

import (
	"reflect"
	"testing"
)

// captureProbe records a trial's full typed event stream for differential
// comparison between the interned and generic engines.
type captureProbe struct {
	begins []string
	events []TrialEvent
	end    TrialResult
}

func (c *captureProbe) Begin(protocol string, n int, seed uint64) {
	c.begins = append(c.begins, protocol)
}
func (c *captureProbe) Observe(ev TrialEvent) { c.events = append(c.events, ev) }
func (c *captureProbe) End(res TrialResult)   { c.end = res }

// diffCells returns the differential-test grid per protocol: sizes capped
// by the protocol's time class so the full matrix stays fast.
func diffCells() map[string][]int {
	return map[string][]int{
		"ppl":      {4, 8, 16, 33, 64},
		"orient":   {3, 8, 16, 33, 64},
		"yokota":   {4, 8, 16, 33, 64},
		"angluin":  {3, 9, 17, 33},
		"fj":       {4, 8, 16, 32},
		"chenchen": {3, 4, 6, 8},
	}
}

// runDiffTrial executes one probed trial with the interned layer forced on
// or off and returns the result plus the captured event stream.
func runDiffTrial(t *testing.T, name string, sc Scenario, n int, seed uint64, generic bool) (TrialResult, *captureProbe) {
	t.Helper()
	internedOff.Store(generic)
	defer internedOff.Store(false)
	p, err := NewProtocol(name)
	if err != nil {
		t.Fatal(err)
	}
	pp, ok := p.(ProbedProtocol)
	if !ok {
		t.Fatalf("%s is not probed", name)
	}
	probe := &captureProbe{}
	res, err := pp.ProbedTrial(sc, p.FixSize(n), seed, probe)
	if err != nil {
		t.Fatal(err)
	}
	return res, probe
}

// assertDiffEqual pins a generic and an interned run of the same cell to
// bit-identical results: the TrialResult (steps, exact hitting time,
// stabilization step, leader accounting via the probe stream) and the full
// typed event stream, including every leader-change step/count, fault
// epochs, the convergence event and the named tracker channel counts.
func assertDiffEqual(t *testing.T, name string, sc Scenario, n int, seed uint64) {
	t.Helper()
	genRes, genProbe := runDiffTrial(t, name, sc, n, seed, true)
	intRes, intProbe := runDiffTrial(t, name, sc, n, seed, false)
	if genRes != intRes {
		t.Fatalf("%s n=%d seed=%d: TrialResult diverged\ngeneric:  %+v\ninterned: %+v", name, n, seed, genRes, intRes)
	}
	if !reflect.DeepEqual(genProbe.events, intProbe.events) {
		la, lb := len(genProbe.events), len(intProbe.events)
		for i := 0; i < la && i < lb; i++ {
			if !reflect.DeepEqual(genProbe.events[i], intProbe.events[i]) {
				t.Fatalf("%s n=%d seed=%d: event %d diverged\ngeneric:  %+v\ninterned: %+v",
					name, n, seed, i, genProbe.events[i], intProbe.events[i])
			}
		}
		t.Fatalf("%s n=%d seed=%d: event stream lengths diverged (%d vs %d)", name, n, seed, la, lb)
	}
	if !reflect.DeepEqual(genProbe.end, intProbe.end) {
		t.Fatalf("%s n=%d seed=%d: probe End diverged\ngeneric:  %+v\ninterned: %+v", name, n, seed, genProbe.end, intProbe.end)
	}
}

// TestInternedMatchesGeneric pins the interned table-lookup engine
// bit-identical to the generic engine for every built-in protocol across
// ring sizes up to 64 and a fan of scheduler seeds: identical RNG streams,
// step counts, exact hitting times, leader accounting and probe event
// streams.
func TestInternedMatchesGeneric(t *testing.T) {
	for name, sizes := range diffCells() {
		for _, n := range sizes {
			for seed := uint64(1); seed <= 4; seed++ {
				assertDiffEqual(t, name, Scenario{}, n, seed)
			}
		}
	}
}

// TestInternedMatchesGenericUnderFaults is the satellite regression test
// for mid-run fault bursts: SetStates installs must re-intern the
// configuration and keep install-time leader-change recording identical,
// for every protocol. The second burst lands mid-recovery of the first on
// the smaller rings, exercising repeated re-interning.
func TestInternedMatchesGenericUnderFaults(t *testing.T) {
	sc := Scenario{Faults: []Fault{
		{AtStep: 500, Agents: 3},
		{AtStep: 4000, Agents: 5},
	}}
	for name, sizes := range diffCells() {
		// The two largest sizes of each protocol keep the matrix fast while
		// still covering both tiers of the pair table.
		for _, n := range sizes[len(sizes)-2:] {
			for seed := uint64(1); seed <= 3; seed++ {
				assertDiffEqual(t, name, sc, n, seed)
			}
		}
	}
}

// TestInternedMatchesGenericFuzz widens the seed fan on one mid-size ring
// per protocol, with and without a fault burst.
func TestInternedMatchesGenericFuzz(t *testing.T) {
	if testing.Short() {
		t.Skip("fuzz matrix skipped in -short")
	}
	ns := map[string]int{"ppl": 32, "orient": 32, "yokota": 32, "angluin": 17, "fj": 16, "chenchen": 6}
	burst := Scenario{Faults: []Fault{{AtStep: 1500, Agents: 4}}}
	for name, n := range ns {
		for seed := uint64(100); seed < 116; seed++ {
			assertDiffEqual(t, name, Scenario{}, n, seed)
			assertDiffEqual(t, name, burst, n, seed)
		}
	}
}
