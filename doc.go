// Package repro is a production-quality Go reproduction of
//
//	Yokota, Sudo, Ooshita, Masuzawa. "A Near Time-optimal Population
//	Protocol for Self-stabilizing Leader Election on Rings with a
//	Poly-logarithmic Number of States." PODC 2023 (arXiv:2305.08375).
//
// The root package is the public experiment API, built from four
// composable concepts:
//
//   - Protocol — the one contract every protocol under test satisfies:
//     parameter construction per ring size, the initial configuration of a
//     scenario and seed, the step function and convergence predicate
//     (exercised through Trial), and the exact state count. A named
//     registry (Register, Protocols, NewProtocol) ships the paper's P_PL
//     ("ppl") and P_OR ("orient") plus the four Table 1 baselines
//     ("yokota", "angluin", "fj", "chenchen"); external protocols plug in
//     through Register.
//
//   - Scenario — everything about a trial except the protocol and ring
//     size: the interaction topology, the adversarial init class
//     (including the cold-start and corrupted families), an optional
//     mid-run fault-injection schedule, the step-budget policy, and the
//     scheduler/ring-dynamics spec (SchedulerSpec). The zero Scenario is
//     the standard random-adversary experiment: uniform-random scheduler
//     on a static ring.
//
//   - Experiment — a builder that runs a protocol × size trial matrix and
//     returns a structured Report (per-trial results, per-cell summaries,
//     fitted scaling exponents) with Markdown, JSON and CSV renderers —
//     and, through the streaming observation API below, feeds per-trial
//     TrialRecords to pluggable Sinks as workers finish.
//     ReportFromRecords replays a recorded artifact back through the
//     same aggregation, byte-identical to the run that produced it.
//
//   - Streaming observation — Probe, TrialRecord, Sink and Metric: the
//     layer that makes richer observables (leader trajectories, recovery
//     times, tracker channel counts) first-class per-trial artifacts.
//     See the section below.
//
// Quickstart:
//
//	rep, err := repro.NewExperiment().
//	        ProtocolNames("ppl", "yokota").
//	        Sizes(16, 32, 64).
//	        Trials(5).
//	        Run(context.Background())
//	if err != nil {
//	        log.Fatal(err)
//	}
//	fmt.Print(rep.Markdown())
//
// Trials fan out across all cores through the internal trial-execution
// engine with deterministic per-trial seeds (TrialSeed), so a Report is
// byte-identical whatever the worker count — parallelism changes
// wall-clock time, never a number in an artifact.
//
// # Streaming observation: probes, records, sinks
//
// The legacy TrialResult is three scalars; the quantities the literature
// actually compares — leader-count trajectories, recovery time after
// faults, state-space occupancy — flow through the streaming layer:
//
//   - Probe — receives one trial's typed event stream (TrialEvent):
//     leader-set changes sampled O(1) off the engine's incremental
//     trackers, fault bursts and the epochs they open, the exact
//     convergence step, and the named tracker channel counts at the end
//     of the run phase. Built-in protocols implement ProbedProtocol;
//     ProbeTrial degrades gracefully to plain Trial for external
//     registrants. A probe never perturbs the trial: RNG stream, hitting
//     time and TrialResult are identical with or without one.
//
//   - TrialRecord — the distilled per-trial artifact a RecordingProbe
//     produces: the legacy scalars plus named observables
//     (recovery_steps, leaders_peak, chan_* channel counts, …) and the
//     "leaders" series.
//
//   - Sink — consumes records as workers finish. Experiment.Sinks
//     attaches any number (the in-memory Report is itself one such sink
//     internally, so Run with sinks streams AND aggregates, byte-identical
//     to before); Experiment.Stream drops the Report entirely, so a
//     million-trial sweep runs in memory bounded by the worker count.
//     JSONLSink writes the one-JSON-object-per-line artifact cmd/sweep
//     (-record), cmd/ringsim (-record) and cmd/bench (-records) emit and
//     cmd/figures (-records) renders; DecodeTrialRecords reads it back.
//     RotatingJSONLSink adds size-bounded segment rotation and gzip
//     compression for long-running streams, and its Close finalizes
//     (flush, gzip footer, fsync) even after a mid-write error, so a
//     crashed or cancelled run still leaves well-formed segments.
//
// A worked recovery-time measurement (see examples/recovery): inject
// fault bursts, stream records, rank protocols on healing time:
//
//	sink, _ := repro.CreateJSONL("records.jsonl")
//	rep, err := repro.NewExperiment().
//	        ProtocolNames("ppl", "yokota").
//	        Sizes(64, 128).
//	        Trials(50).
//	        Scenario(repro.Scenario{Faults: []repro.Fault{{AtStep: 5000, Agents: 32}}}).
//	        Metrics(repro.MeanOf("recovery_steps"), repro.P90Of("recovery_steps")).
//	        Sinks(sink). // closed and flushed by Run, even on cancellation
//	        Run(ctx)
//
// # Composable metrics
//
// Summary statistics are no longer hard-wired to Steps: a Metric names any
// record observable and an aggregation (mean, median, p90, min, max, std,
// sum, count), and each report cell carries the metric over the trials
// that have the observable — rendered as an extra Markdown table per
// metric and a "metrics" object per cell in JSON. Cells with no samples
// omit the value; likewise a Summary with zero converged trials renders
// null statistics in JSON and empty CSV fields, never stale zeros.
//
// # Callback concurrency contract
//
// Observer callbacks, Sink.Record calls and runner progress callbacks are
// serialized — never concurrent with themselves — but are issued from
// worker goroutines. Callbacks touching only their own captured state need
// no mutex; sharing state with the caller's other goroutines requires the
// caller's own synchronization. Probes are per-trial values driven from a
// single goroutine.
//
// # Convergence measurement semantics
//
// TrialResult.Steps is the exact hitting time of the protocol's
// convergence predicate: the first scheduler step at which the
// configuration enters the closed set (S_PL for P_PL, full orientation
// for P_OR, the absorbing shape for each baseline). Convergence is judged
// by an incremental tracker — the predicate is decomposed into per-agent
// and per-adjacent-pair conditions whose violation counters are updated
// in O(1) per interaction, with any non-local remainder (the war's C_PB
// peacefulness, P_PL's segment-ID chain and token soundness) run only at
// the steps where every local counter already passes, and re-run after a
// failure only once an interaction touches the failure's recorded witness
// interval (for P_PL the local gate is open for most of the long
// construction phase, so witness caching is what keeps the per-step
// verdict O(1) amortized — it took tracked-mode throughput at n=1024 from
// ~0.3M to ~6M steps/sec without moving a single hitting time). The
// tracker is pinned to the brute-force scan predicate by per-step
// regression tests, so the two never disagree.
//
// Earlier versions polled the predicate over the whole configuration only
// every n/2+1 steps (n for P_OR), so published Steps were quantized to
// that grid and overestimated the true hitting time by up to checkEvery-1
// steps. Mean convergence steps, fitted exponents, and every artifact
// recording Steps therefore shift down slightly against pre-tracker
// numbers; Stabilized (the last leader-set change) is unaffected, because
// the closed sets admit no further output changes. Fault-injection trials
// additionally record a leader-set change at the burst-install step when
// the corruption itself rewrites the leader set, so Stabilized can no
// longer report a pre-fault step.
//
// # Adversarial schedulers and ring dynamics
//
// The paper's guarantee is self-stabilization from any configuration
// under the uniform-random scheduler; SchedulerSpec stresses the
// protocols beyond that model while keeping the measurement pipeline
// unchanged. A scenario may select a biased arc distribution ("biased":
// hotspot or ramp weight families, sampled by the alias method in two
// RNG draws per interaction), a periodic partition ("eclipse": a dead
// interval of arcs opens every period for a fixed duration; draws
// renormalize over the survivors and the exact window boundaries stream
// as EventSchedPhase events), mid-run churn (agents leave and the ring
// re-splices around them, newcomers join in corrupted states — rejected
// up front by the fixed-ring protocols orient, fj and chenchen), and
// stuck agents (frozen in both interaction roles for the whole trial).
// Trials under these adversaries stream extra observables through the
// same records: eclipse_windows, eclipse_recovery_steps (steps from the
// last window closing to convergence), churn_events, churn_removed,
// churn_inserted and live_agents_min.
//
// The explicit "uniform" kind draws the byte-identical RNG stream the
// default fast path draws, through the full scheduler plumbing — the
// subsystem's differential tests pin TrialResults, probe streams and
// the committed bench baseline's hitting times across both engines, so
// scheduler support provably costs the standard experiment nothing.
// ParseSchedulerSpec and ParseChurnSpec parse the CLI grammar
// (cmd/ringsim -sched/-churn/-stuck); the spec round-trips through
// Scenario JSON and is covered by the service's cell digests.
//
// # Interned execution engine
//
// Trials run by default on an interned execution layer
// (internal/population's InternedEngine): distinct states are interned
// into dense integer IDs, the pairwise transition is memoized into a
// lazily-filled (idL, idR) lookup table whose entries carry precomputed
// leader-set deltas and tracker mask updates, and each interaction
// replays as a handful of array loads instead of the full transition
// cascade plus mask closures. Oracle protocols (fj's Ω?, chenchen's flag
// census) keep one table per environment key and maintain their global
// counters through precomputed per-entry deltas.
//
// The packed-state core carries the layer into the O(n)-state regime:
// each protocol ships a fixed-width PackedCodec (an injective ≤63-bit
// encoding of its state struct, pinned by round-trip and fuzz tests)
// that keys the interner through an open-addressed table instead of a
// Go map; pair memos live in a dense array while the state count is
// small and migrate to an open-addressed hashed slab — interleaved
// key/value words, fronted by a small direct-mapped cache and a software
// prefetch of the next pair's lookup line — when it grows; the
// interner's default capacity cap is the full ID space (a memory
// backstop, adjustable via Scenario.MaxStates); and LaneTrials runs a
// batch of same-cell trials as lockstep lanes over one shared table set
// so minting and table fills amortize across the batch.
//
// The layer is a pure accelerator: the RNG stream, step counts, leader
// accounting, hitting times and probe event streams are bit-identical to
// the generic engine (pinned by differential tests across all six
// protocols, fuzzed seeds, adversarial schedulers and mid-run fault
// bursts — the lane path included), and it falls back to the generic
// path transparently when the run exceeds the interner's capacity cap or
// keeps missing the tables without minting new states (the adaptive
// reuse guard).
//
// # Performance baseline (BENCH_ringsim.json)
//
// RunBenchmark (and the cmd/bench command wrapping it) measures steps per
// second of every built-in protocol × ring size × scenario in five
// modes: "runbatch" (the raw batched transition loop, no convergence
// judgement — the ceiling), "tracked" (run-to-convergence through the
// incremental tracker with exact hitting times), "scan" (the pre-tracker
// periodic polling loop, kept as the comparison baseline), "interned"
// (the trial default: the table-lookup layer timed steady-state against
// tables pre-filled by an untimed warmup run, with its Fallback flag
// recorded per row) and "lanes" (a batch of same-cell trials as lockstep
// lanes over one shared table set — the cold fill paid once, amortized).
// cmd/bench additionally measures "recovery" rows —
// exact steps from a deterministic mid-run fault burst back to
// convergence — and "eclipse" rows — exact steps from a deterministic
// ring partition's window closing back to convergence — times every
// measurement best-of-k (-bestof, recorded in
// the envelope), and its -compare subcommand diffs two baseline files
// and gates CI: tracked-, interned- and lanes-mode throughput, each
// normalized by the same file's runbatch rate (machine-portable) and
// gated on its own geomean, must not regress more than 20%, and mean
// recovery steps (deterministic counts) must not drift more than 5%
// against the committed BENCH_baseline.json. CI uploads the resulting
// BENCH_ringsim.json — schema "repro.bench/v1", an envelope of
// Go/OS/arch/CPU provenance plus a flat results array — as an artifact on
// every push, so engine performance has a recorded and enforced
// trajectory.
//
// # Experiment service
//
// cmd/serve (over internal/service) puts this API behind a long-running
// HTTP server: POST /v1/jobs takes a JSON job spec — protocols × sizes ×
// scenario × trials × metrics — a bounded worker-pool queue executes its
// cells through Experiment.Stream, and results stream back as
// TrialRecord JSONL (GET /v1/jobs/{id}/records) or rendered reports
// (GET /v1/jobs/{id}/report?format=md|json|csv, replayed through
// ReportFromRecords). Because every (protocol, scenario, n, seed) cell
// is a pure function of its inputs, finished cells are content-addressed
// and cached: identical jobs return byte-identical records from cache,
// and hit/miss counters are observable on /v1/stats. See docs/API.md for
// the HTTP reference.
//
// For driving a single simulation interactively, RingElection runs P_PL
// on a directed ring and RingOrientation runs the Section 5 orientation
// protocol on an undirected ring. Comparison regenerates the paper's
// Table 1 and is kept as a thin compatibility shim over Experiment.
//
// The building blocks live under internal/: the population-protocol
// engine (internal/population), the protocol itself (internal/core), the
// baselines (internal/yokota, internal/angluin, internal/fj,
// internal/chenchen), the substrates (internal/thuemorse, internal/twohop,
// internal/lottery), the experiment harness (internal/harness,
// internal/stats) and the parallel trial-execution engine
// (internal/runner).
//
// See README.md for the narrative overview, docs/ARCHITECTURE.md for the
// full layer map, docs/API.md for the service's HTTP reference, and the
// examples/ directory for runnable walkthroughs of the election,
// orientation, fault-injection and experiment APIs.
package repro
