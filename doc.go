// Package repro is a production-quality Go reproduction of
//
//	Yokota, Sudo, Ooshita, Masuzawa. "A Near Time-optimal Population
//	Protocol for Self-stabilizing Leader Election on Rings with a
//	Poly-logarithmic Number of States." PODC 2023 (arXiv:2305.08375).
//
// The root package is the public experiment API, built from three
// composable concepts:
//
//   - Protocol — the one contract every protocol under test satisfies:
//     parameter construction per ring size, the initial configuration of a
//     scenario and seed, the step function and convergence predicate
//     (exercised through Trial), and the exact state count. A named
//     registry (Register, Protocols, NewProtocol) ships the paper's P_PL
//     ("ppl") and P_OR ("orient") plus the four Table 1 baselines
//     ("yokota", "angluin", "fj", "chenchen"); external protocols plug in
//     through Register.
//
//   - Scenario — everything about a trial except the protocol and ring
//     size: the interaction topology, the adversarial init class
//     (including the cold-start and corrupted families), an optional
//     mid-run fault-injection schedule, and the step-budget policy. The
//     zero Scenario is the standard random-adversary experiment.
//
//   - Experiment — a builder that runs a protocol × size trial matrix and
//     returns a structured Report (per-trial results, per-cell summaries,
//     fitted scaling exponents) with Markdown, JSON and CSV renderers.
//
// Quickstart:
//
//	rep, err := repro.NewExperiment().
//	        ProtocolNames("ppl", "yokota").
//	        Sizes(16, 32, 64).
//	        Trials(5).
//	        Run(context.Background())
//	if err != nil {
//	        log.Fatal(err)
//	}
//	fmt.Print(rep.Markdown())
//
// Trials fan out across all cores through the internal trial-execution
// engine with deterministic per-trial seeds (TrialSeed), so a Report is
// byte-identical whatever the worker count — parallelism changes
// wall-clock time, never a number in an artifact.
//
// For driving a single simulation interactively, RingElection runs P_PL
// on a directed ring and RingOrientation runs the Section 5 orientation
// protocol on an undirected ring. Comparison regenerates the paper's
// Table 1 and is kept as a thin compatibility shim over Experiment.
//
// The building blocks live under internal/: the population-protocol
// engine (internal/population), the protocol itself (internal/core), the
// baselines (internal/yokota, internal/angluin, internal/fj,
// internal/chenchen), the substrates (internal/thuemorse, internal/twohop,
// internal/lottery), the experiment harness (internal/harness,
// internal/stats) and the parallel trial-execution engine
// (internal/runner).
//
// See README.md for the architecture overview and the examples/ directory
// for runnable walkthroughs of the election, orientation, fault-injection
// and experiment APIs.
package repro
