// Package repro is a production-quality Go reproduction of
//
//	Yokota, Sudo, Ooshita, Masuzawa. "A Near Time-optimal Population
//	Protocol for Self-stabilizing Leader Election on Rings with a
//	Poly-logarithmic Number of States." PODC 2023 (arXiv:2305.08375).
//
// The root package is the public façade: RingElection runs the paper's
// protocol P_PL on a simulated directed ring, RingOrientation runs the
// Section 5 orientation protocol P_OR on an undirected ring, and
// Comparison regenerates the paper's Table 1 against the four baseline
// protocols. The building blocks live under internal/: the population
// protocol engine (internal/population), the protocol itself
// (internal/core), the shared elimination war (internal/war), the
// baselines (internal/yokota, internal/angluin, internal/fj,
// internal/chenchen), the substrates (internal/thuemorse,
// internal/twohop, internal/lottery), the experiment harness
// (internal/harness, internal/stats) and the parallel trial-execution
// engine (internal/runner), through which every trial-driving layer fans
// independent trials out across all cores with deterministic per-trial
// seeds — results are byte-identical to serial execution, just faster.
//
// Quickstart:
//
//	e := repro.NewRingElection(64, repro.WithSeed(1))
//	e.InitRandom(2) // adversarial start
//	steps, ok := e.RunToSafe(0)
//	leader, _ := e.Leader()
//	fmt.Println(steps, ok, leader)
//
// See README.md for the architecture overview, DESIGN.md for the system
// inventory and documented reconstruction choices, and EXPERIMENTS.md for
// the paper-versus-measured record of every table and figure.
package repro
