package repro

import (
	"compress/gzip"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// testRecord returns a small distinguishable record for sink tests.
func testRecord(trial int) TrialRecord {
	return TrialRecord{
		Protocol: "ppl", N: 16, Trial: trial, Seed: uint64(trial),
		Steps: uint64(100 + trial), Stabilized: uint64(90 + trial), Converged: true,
	}
}

// readSegment decodes one segment file (gzip-aware) into records.
func readSegment(t *testing.T, path string) []TrialRecord {
	t.Helper()
	f, err := os.Open(path)
	if err != nil {
		t.Fatalf("open segment: %v", err)
	}
	defer f.Close()
	var r io.Reader = f
	if strings.HasSuffix(path, ".gz") {
		gz, err := gzip.NewReader(f)
		if err != nil {
			t.Fatalf("gzip reader for %s: %v", path, err)
		}
		defer gz.Close()
		r = gz
	}
	recs, err := ReadTrialRecords(r)
	if err != nil {
		t.Fatalf("decode %s: %v", path, err)
	}
	return recs
}

func TestRotatingJSONLSinkRotatesOnSize(t *testing.T) {
	dir := t.TempDir()
	base := filepath.Join(dir, "records.jsonl")
	// Each encoded record is ~120 bytes; 300 bytes forces a rotation every
	// couple of records.
	sink, err := CreateRotatingJSONL(base, RotateOptions{MaxBytes: 300})
	if err != nil {
		t.Fatalf("CreateRotatingJSONL: %v", err)
	}
	const total = 10
	for i := 0; i < total; i++ {
		if err := sink.Record(testRecord(i)); err != nil {
			t.Fatalf("Record %d: %v", i, err)
		}
	}
	if err := sink.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	segs := sink.Segments()
	if len(segs) < 2 {
		t.Fatalf("expected >=2 segments, got %v", segs)
	}
	if segs[0] != filepath.Join(dir, "records-00000.jsonl") {
		t.Fatalf("unexpected first segment name %s", segs[0])
	}
	var got []TrialRecord
	for _, seg := range segs {
		got = append(got, readSegment(t, seg)...)
	}
	if len(got) != total {
		t.Fatalf("decoded %d records across segments, want %d", len(got), total)
	}
	for i, rec := range got {
		if rec.Trial != i {
			t.Fatalf("segment concatenation out of order: record %d has trial %d", i, rec.Trial)
		}
	}
	if sink.Count() != total {
		t.Fatalf("Count = %d, want %d", sink.Count(), total)
	}
}

func TestRotatingJSONLSinkGzipSegmentsIndependentlyValid(t *testing.T) {
	dir := t.TempDir()
	sink, err := CreateRotatingJSONL(filepath.Join(dir, "records.jsonl"), RotateOptions{MaxBytes: 300, Compress: true})
	if err != nil {
		t.Fatalf("CreateRotatingJSONL: %v", err)
	}
	const total = 8
	for i := 0; i < total; i++ {
		if err := sink.Record(testRecord(i)); err != nil {
			t.Fatalf("Record %d: %v", i, err)
		}
	}
	if err := sink.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	segs := sink.Segments()
	if len(segs) < 2 {
		t.Fatalf("expected >=2 gzip segments, got %v", segs)
	}
	n := 0
	for _, seg := range segs {
		if !strings.HasSuffix(seg, ".jsonl.gz") {
			t.Fatalf("gzip segment %s lacks .jsonl.gz suffix", seg)
		}
		// readSegment opens each segment as an isolated gzip stream; a
		// segment depending on a predecessor's stream state would fail here.
		n += len(readSegment(t, seg))
	}
	if n != total {
		t.Fatalf("decoded %d records, want %d", n, total)
	}
}

// flakySegment wraps a real file and fails every write after a byte
// budget, while still honoring Sync and Close — the disk-full / quota
// shape of a mid-write error.
type flakySegment struct {
	f         *os.File
	remaining int
	synced    bool
	closed    bool
}

func (fs *flakySegment) Write(p []byte) (int, error) {
	if fs.remaining <= 0 {
		return 0, fmt.Errorf("injected write failure")
	}
	if len(p) > fs.remaining {
		n, _ := fs.f.Write(p[:fs.remaining])
		fs.remaining = 0
		return n, fmt.Errorf("injected write failure")
	}
	fs.remaining -= len(p)
	return fs.f.Write(p)
}

func (fs *flakySegment) Sync() error {
	fs.synced = true
	return fs.f.Sync()
}

func (fs *flakySegment) Close() error {
	fs.closed = true
	return fs.f.Close()
}

func TestRotatingJSONLSinkCloseFinalizesAfterWriteError(t *testing.T) {
	dir := t.TempDir()
	// MaxBytes high enough that no rotation happens: the failure must
	// strike while the segment is still open, so Close — not a rotation —
	// is what finalizes it.
	sink, err := CreateRotatingJSONL(filepath.Join(dir, "records.jsonl"), RotateOptions{MaxBytes: 1 << 20})
	if err != nil {
		t.Fatalf("CreateRotatingJSONL: %v", err)
	}
	// Re-point segment creation at a failing writer — the disk dies after
	// 64 bytes — and restart segment 0 on it (the constructor already
	// opened it with the default creator).
	var flakes []*flakySegment
	sink.create = func(path string) (segmentFile, error) {
		f, err := os.Create(path)
		if err != nil {
			return nil, err
		}
		fs := &flakySegment{f: f, remaining: 64}
		flakes = append(flakes, fs)
		return fs, nil
	}
	if err := sink.finalizeSegment(); err != nil {
		t.Fatalf("finalize initial segment: %v", err)
	}
	if err := sink.openSegment(); err != nil {
		t.Fatalf("reopen segment 0: %v", err)
	}

	// The sink buffers ~4 KiB, so the injected failure surfaces once the
	// buffer first drains to the 64-byte "disk".
	var firstErr error
	for i := 0; i < 256 && firstErr == nil; i++ {
		firstErr = sink.Record(testRecord(i))
	}
	if firstErr == nil {
		t.Fatal("expected an injected write failure")
	}
	if !strings.Contains(firstErr.Error(), "injected write failure") {
		t.Fatalf("unexpected error: %v", firstErr)
	}
	// The sink is inert after the failure…
	if err := sink.Record(testRecord(999)); err == nil {
		t.Fatal("Record after write error should keep failing")
	}
	// …but Close must still finalize the last segment: flush attempted,
	// fsync issued, file closed, and the original error surfaced.
	cerr := sink.Close()
	if cerr == nil || !strings.Contains(cerr.Error(), "injected write failure") {
		t.Fatalf("Close = %v, want the sticky write error", cerr)
	}
	if len(flakes) != 1 {
		t.Fatalf("expected exactly the one failing segment, got %d", len(flakes))
	}
	if !flakes[0].synced {
		t.Fatal("Close did not fsync the last segment after the write error")
	}
	if !flakes[0].closed {
		t.Fatal("Close did not close the last segment after the write error")
	}
	// Close twice stays a no-op.
	if err := sink.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
}

func TestRotatingJSONLSinkWorksAsExperimentSink(t *testing.T) {
	dir := t.TempDir()
	sink, err := CreateRotatingJSONL(filepath.Join(dir, "exp.jsonl"), RotateOptions{MaxBytes: 400, Compress: true})
	if err != nil {
		t.Fatalf("CreateRotatingJSONL: %v", err)
	}
	err = NewExperiment().
		ProtocolNames("angluin").
		Sizes(8).
		Trials(4).
		Sinks(sink).
		Stream(t.Context())
	if err != nil {
		t.Fatalf("Stream: %v", err)
	}
	var got []TrialRecord
	for _, seg := range sink.Segments() {
		got = append(got, readSegment(t, seg)...)
	}
	if len(got) != 4 {
		t.Fatalf("streamed %d records, want 4", len(got))
	}
}

// TestReadTrialRecordsGzipAutoDetect pins the magic-byte sniff: gzip
// segments written by RotatingJSONLSink decode through ReadTrialRecords
// directly — no explicit gzip.Reader — and concatenated segments decode
// as one multistream. Plain JSONL keeps decoding unchanged.
func TestReadTrialRecordsGzipAutoDetect(t *testing.T) {
	dir := t.TempDir()
	base := filepath.Join(dir, "records.jsonl")
	sink, err := CreateRotatingJSONL(base, RotateOptions{MaxBytes: 300, Compress: true})
	if err != nil {
		t.Fatalf("CreateRotatingJSONL: %v", err)
	}
	const total = 10
	for i := 0; i < total; i++ {
		if err := sink.Record(testRecord(i)); err != nil {
			t.Fatalf("Record %d: %v", i, err)
		}
	}
	if err := sink.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	segs := sink.Segments()
	if len(segs) < 2 {
		t.Fatalf("expected >=2 segments, got %v", segs)
	}

	// Per-segment: raw file bytes straight into ReadTrialRecords.
	var got []TrialRecord
	var concat []byte
	for _, seg := range segs {
		if !strings.HasSuffix(seg, ".gz") {
			t.Fatalf("expected compressed segment, got %s", seg)
		}
		data, err := os.ReadFile(seg)
		if err != nil {
			t.Fatalf("read %s: %v", seg, err)
		}
		concat = append(concat, data...)
		recs, err := ReadTrialRecords(strings.NewReader(string(data)))
		if err != nil {
			t.Fatalf("auto-detect decode %s: %v", seg, err)
		}
		got = append(got, recs...)
	}
	if len(got) != total {
		t.Fatalf("decoded %d records, want %d", len(got), total)
	}
	for i, rec := range got {
		want := testRecord(i)
		if rec.Trial != want.Trial || rec.Steps != want.Steps || rec.Seed != want.Seed {
			t.Fatalf("record %d round-tripped as %+v, want %+v", i, rec, want)
		}
	}

	// Concatenated gzip members decode as one stream.
	all, err := ReadTrialRecords(strings.NewReader(string(concat)))
	if err != nil {
		t.Fatalf("multistream decode: %v", err)
	}
	if len(all) != total {
		t.Fatalf("multistream decoded %d records, want %d", len(all), total)
	}

	// Plain JSONL still decodes unchanged (the sniff must not consume
	// bytes of a non-gzip stream).
	plain := CreateRecordsJSONL(t, total)
	recs, err := ReadTrialRecords(strings.NewReader(plain))
	if err != nil {
		t.Fatalf("plain decode: %v", err)
	}
	if len(recs) != total {
		t.Fatalf("plain decoded %d records, want %d", len(recs), total)
	}
}

// CreateRecordsJSONL renders total testRecords as plain JSONL.
func CreateRecordsJSONL(t *testing.T, total int) string {
	t.Helper()
	var b strings.Builder
	for i := 0; i < total; i++ {
		data, err := json.Marshal(testRecord(i))
		if err != nil {
			t.Fatalf("marshal: %v", err)
		}
		b.Write(data)
		b.WriteByte('\n')
	}
	return b.String()
}
