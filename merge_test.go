package repro

import (
	"bytes"
	"compress/gzip"
	"context"
	"strings"
	"testing"
)

// mergeExperiment is the fixture matrix for merge tests: two protocols,
// two sizes, three trials, one size cap exercising skipped cells.
func mergeExperiment() *Experiment {
	return NewExperiment().
		ProtocolNames("ppl", "angluin").
		Sizes(8, 16).
		Trials(3).
		MaxSizeFor("[5] Angluin et al.", 8)
}

// serialStream runs the experiment serially and returns its canonical
// record stream bytes and the records in emission order.
func serialStream(t *testing.T) ([]byte, []TrialRecord) {
	t.Helper()
	var buf bytes.Buffer
	sink := NewJSONLSink(&buf)
	var recs []TrialRecord
	err := mergeExperiment().
		Workers(1).
		Sinks(sink, sinkFunc(func(rec TrialRecord) error {
			recs = append(recs, rec)
			return nil
		})).
		Stream(context.Background())
	if err != nil {
		t.Fatalf("serial stream: %v", err)
	}
	return buf.Bytes(), recs
}

// sinkFunc adapts a function to the Sink interface.
type sinkFunc func(rec TrialRecord) error

func (f sinkFunc) Record(rec TrialRecord) error { return f(rec) }
func (f sinkFunc) Close() error                 { return nil }

func TestMergeShardsByteIdenticalToSerial(t *testing.T) {
	serial, recs := serialStream(t)

	// Shard the records adversarially: reversed order, uneven splits, one
	// record duplicated across two shards (a straggler completing late).
	var a, b, c bytes.Buffer
	for i := len(recs) - 1; i >= 0; i-- {
		var w *bytes.Buffer
		switch {
		case i%3 == 0:
			w = &a
		case i%3 == 1:
			w = &b
		default:
			w = &c
		}
		if err := WriteTrialRecords(w, recs[i:i+1]); err != nil {
			t.Fatalf("write shard: %v", err)
		}
	}
	if err := WriteTrialRecords(&a, recs[2:3]); err != nil { // identical duplicate
		t.Fatalf("write duplicate: %v", err)
	}

	merged, err := MergeShards(mergeExperiment(), &a, &b, &c)
	if err != nil {
		t.Fatalf("MergeShards: %v", err)
	}
	var out bytes.Buffer
	if err := WriteTrialRecords(&out, merged); err != nil {
		t.Fatalf("write merged: %v", err)
	}
	if !bytes.Equal(out.Bytes(), serial) {
		t.Fatalf("merged stream differs from serial stream:\nmerged: %s\nserial: %s", out.Bytes(), serial)
	}

	// The Report rebuilt from the merged stream renders byte-identical to
	// the serial Run's.
	rep, err := mergeExperiment().Run(context.Background())
	if err != nil {
		t.Fatalf("serial run: %v", err)
	}
	want, err := rep.JSON()
	if err != nil {
		t.Fatalf("serial report: %v", err)
	}
	rep2, err := mergeExperiment().ReportFromRecords(merged)
	if err != nil {
		t.Fatalf("ReportFromRecords: %v", err)
	}
	got, err := rep2.JSON()
	if err != nil {
		t.Fatalf("merged report: %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("merged report differs from serial report")
	}
}

func TestMergeShardsGzipShards(t *testing.T) {
	serial, recs := serialStream(t)
	var raw bytes.Buffer
	if err := WriteTrialRecords(&raw, recs); err != nil {
		t.Fatalf("write: %v", err)
	}
	var gzBuf bytes.Buffer
	gz := gzip.NewWriter(&gzBuf)
	if _, err := gz.Write(raw.Bytes()); err != nil {
		t.Fatalf("gzip: %v", err)
	}
	if err := gz.Close(); err != nil {
		t.Fatalf("gzip close: %v", err)
	}
	merged, err := MergeShards(mergeExperiment(), &gzBuf)
	if err != nil {
		t.Fatalf("MergeShards(gzip): %v", err)
	}
	var out bytes.Buffer
	if err := WriteTrialRecords(&out, merged); err != nil {
		t.Fatalf("write merged: %v", err)
	}
	if !bytes.Equal(out.Bytes(), serial) {
		t.Fatalf("gzip-shard merge differs from serial stream")
	}
}

func TestMergeShardsErrors(t *testing.T) {
	_, recs := serialStream(t)

	t.Run("missing trial", func(t *testing.T) {
		var shard bytes.Buffer
		if err := WriteTrialRecords(&shard, recs[1:]); err != nil {
			t.Fatalf("write: %v", err)
		}
		if _, err := MergeShards(mergeExperiment(), &shard); err == nil || !strings.Contains(err.Error(), "missing trial") {
			t.Fatalf("partial shard set merged without error (err=%v)", err)
		}
	})

	t.Run("conflicting duplicate", func(t *testing.T) {
		var shard bytes.Buffer
		if err := WriteTrialRecords(&shard, recs); err != nil {
			t.Fatalf("write: %v", err)
		}
		bad := recs[0]
		bad.Steps += 17 // a worker that broke determinism
		if err := WriteTrialRecords(&shard, []TrialRecord{bad}); err != nil {
			t.Fatalf("write conflict: %v", err)
		}
		if _, err := MergeShards(mergeExperiment(), &shard); err == nil || !strings.Contains(err.Error(), "determinism") {
			t.Fatalf("conflicting duplicate merged without error (err=%v)", err)
		}
	})

	t.Run("record outside the matrix", func(t *testing.T) {
		var shard bytes.Buffer
		if err := WriteTrialRecords(&shard, recs); err != nil {
			t.Fatalf("write: %v", err)
		}
		alien := recs[0]
		alien.Trial = 99
		if err := WriteTrialRecords(&shard, []TrialRecord{alien}); err != nil {
			t.Fatalf("write alien: %v", err)
		}
		if _, err := MergeShards(mergeExperiment(), &shard); err == nil || !strings.Contains(err.Error(), "outside the experiment") {
			t.Fatalf("alien record merged without error (err=%v)", err)
		}
	})
}
