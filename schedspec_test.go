package repro

import (
	"encoding/json"
	"reflect"
	"strings"
	"testing"
)

// TestSchedulerSpecJSONRoundTrip pins the wire form of the scheduler
// spec: every kind round-trips through the Scenario JSON unchanged, and
// the zero Scenario's encoding does not mention the scheduler at all —
// the field must not leak into scenarios that never set it, because the
// service's cell digests cover the scenario bytes and a new key would
// invalidate every cached pre-subsystem cell.
func TestSchedulerSpecJSONRoundTrip(t *testing.T) {
	zero, err := json.Marshal(Scenario{})
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(string(zero), "scheduler") {
		t.Fatalf("zero Scenario encoding mentions the scheduler: %s", zero)
	}
	specs := []*SchedulerSpec{
		{Kind: "uniform"},
		{Kind: "biased", Family: "hotspot", HotArcs: 4, Weight: 12.5},
		{Kind: "biased", Family: "ramp", Weight: 3},
		{Kind: "eclipse", Start: 100, Period: 5000, Duration: 800, Arcs: 6, Offset: 2},
		{Churn: []ChurnEvent{{AtStep: 1000, Remove: 2}, {AtStep: 4000, Insert: 3}}, Stuck: 1},
	}
	for _, spec := range specs {
		sc := Scenario{Sched: spec}
		data, err := json.Marshal(sc)
		if err != nil {
			t.Fatal(err)
		}
		var back Scenario
		if err := json.Unmarshal(data, &back); err != nil {
			t.Fatalf("unmarshal %s: %v", data, err)
		}
		if !reflect.DeepEqual(back.Sched, spec) {
			t.Fatalf("round trip mangled the spec:\nsent: %+v\ngot:  %+v\nwire: %s", spec, back.Sched, data)
		}
		if err := back.Validate(); err != nil {
			t.Fatalf("round-tripped spec fails validation: %v", err)
		}
	}
}

// TestSchedulerSpecValidate covers the rejection surface: unknown kinds,
// malformed family parameters, degenerate eclipse windows, parameters on
// parameterless kinds, and nonsense dynamics.
func TestSchedulerSpecValidate(t *testing.T) {
	var nilSpec *SchedulerSpec
	if err := nilSpec.Validate(); err != nil {
		t.Fatalf("nil spec rejected: %v", err)
	}
	bad := []*SchedulerSpec{
		{Kind: "exotic"},
		{Kind: "biased", Family: "volcano", Weight: 2},
		{Kind: "biased", Family: "hotspot", HotArcs: 0, Weight: 2},
		{Kind: "biased", Family: "hotspot", HotArcs: 2, Weight: 0},
		{Kind: "biased", Family: "ramp", Weight: -1},
		{Kind: "eclipse", Period: 100, Duration: 100, Arcs: 1},
		{Kind: "eclipse", Period: 0, Duration: 10, Arcs: 1},
		{Kind: "eclipse", Period: 100, Duration: 10, Arcs: 0},
		{Kind: "uniform", Weight: 2},
		{Kind: "", Period: 50},
		{Churn: []ChurnEvent{{AtStep: 5, Remove: -1}}},
		{Churn: []ChurnEvent{{AtStep: 5}}},
		{Stuck: -1},
	}
	for i, spec := range bad {
		if err := spec.Validate(); err == nil {
			t.Fatalf("bad spec %d accepted: %+v", i, spec)
		}
	}
}

// TestParseSchedulerSpec pins the command-line grammar shared by
// cmd/ringsim and cmd/sweep.
func TestParseSchedulerSpec(t *testing.T) {
	cases := []struct {
		in   string
		want *SchedulerSpec
	}{
		{"", nil},
		{"uniform", &SchedulerSpec{Kind: "uniform"}},
		{"hotspot:arcs=4,weight=8", &SchedulerSpec{Kind: "biased", Family: "hotspot", HotArcs: 4, Weight: 8}},
		{"ramp:weight=2.5", &SchedulerSpec{Kind: "biased", Family: "ramp", Weight: 2.5}},
		{
			"eclipse:period=5000,duration=800,arcs=6,offset=2,start=100",
			&SchedulerSpec{Kind: "eclipse", Period: 5000, Duration: 800, Arcs: 6, Offset: 2, Start: 100},
		},
	}
	for _, c := range cases {
		got, err := ParseSchedulerSpec(c.in)
		if err != nil {
			t.Fatalf("parse %q: %v", c.in, err)
		}
		if !reflect.DeepEqual(got, c.want) {
			t.Fatalf("parse %q = %+v, want %+v", c.in, got, c.want)
		}
	}
	for _, in := range []string{
		"volcano", "uniform:weight=2", "hotspot:weight=2", "hotspot:arcs=4",
		"eclipse:period=100", "eclipse:period=100,duration=200,arcs=2",
		"hotspot:arcs", "hotspot:arcs=x,weight=2", "ramp:weight=nan,period=7",
	} {
		if spec, err := ParseSchedulerSpec(in); err == nil {
			t.Fatalf("parse %q accepted: %+v", in, spec)
		}
	}
}

// TestParseChurnSpec pins the del/add churn grammar.
func TestParseChurnSpec(t *testing.T) {
	got, err := ParseChurnSpec("del2@5000, add3@9000")
	if err != nil {
		t.Fatal(err)
	}
	want := []ChurnEvent{{AtStep: 5000, Remove: 2}, {AtStep: 9000, Insert: 3}}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("parsed %+v, want %+v", got, want)
	}
	if got, err := ParseChurnSpec(""); err != nil || got != nil {
		t.Fatalf("empty churn spec = %+v, %v", got, err)
	}
	for _, in := range []string{"mul2@50", "del0@50", "del2", "del2@x", "add@5"} {
		if evs, err := ParseChurnSpec(in); err == nil {
			t.Fatalf("parse %q accepted: %+v", in, evs)
		}
	}
}
