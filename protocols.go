package repro

import (
	"fmt"
	"sync/atomic"

	"repro/internal/angluin"
	"repro/internal/chenchen"
	"repro/internal/core"
	"repro/internal/fj"
	"repro/internal/orient"
	"repro/internal/population"
	"repro/internal/twohop"
	"repro/internal/xrand"
	"repro/internal/yokota"
)

// The built-in protocol catalogue: the paper's two protocols and the four
// Table 1 baselines, each behind the one Protocol contract.
func init() {
	mustRegister("ppl", func() Protocol { return PPL(0, 0) })
	mustRegister("orient", func() Protocol { return orientProtocol{} })
	mustRegister("yokota", func() Protocol { return yokotaProtocol{} })
	mustRegister("angluin", func() Protocol { return angluinProtocol{} })
	mustRegister("fj", func() Protocol { return fjProtocol{} })
	mustRegister("chenchen", func() Protocol { return chenchenProtocol{} })
}

// initSeedSalt decorrelates the initial-configuration RNG from the
// scheduler RNG of the same trial.
const initSeedSalt = core.InitSeedSalt

// faultSeedSalt decorrelates the fault-injection RNG from both.
const faultSeedSalt = 0xfa_17_5eed

// stuckSeedSalt decorrelates the stuck-agent selection RNG from the
// scheduler, init and fault streams of the same trial.
const stuckSeedSalt = 0x57cc_a6e7

// churnSeedSalt decorrelates the churn-splice RNG likewise.
const churnSeedSalt = 0xc4c4_2a17

// convergenceScanEvery is a test hook: when set to a positive value,
// trialEngine.run bypasses the incremental tracker and judges convergence
// with the scan-era RunUntil at that check cadence. Exactness regression
// tests set it to 1 to compare the tracked hitting times against the
// per-step brute-force scan oracle; it is atomic because trials fan out
// across worker goroutines.
var convergenceScanEvery atomic.Int64

// internedOff is a test hook: when set, trials run on the generic engine
// instead of the interned table-lookup layer. The differential regression
// tests flip it to pin the interned path bit-identical — states, steps,
// leader accounting, hitting times, probe streams — to the generic one.
var internedOff atomic.Bool

// trialEngine bundles the protocol-specific pieces the generic scenario
// runner needs: the engine, an installer that routes configuration changes
// through the protocol's oracle runner (nil for plain engines), a state
// sampler for fault injection, the incremental convergence tracker of the
// hot path, and the equivalent scan predicate with its legacy check
// cadence (the cross-check oracle, also used by Bench's "scan" mode).
type trialEngine[S any] struct {
	eng     *population.Engine[S]
	install func([]S)
	corrupt func(rng *xrand.RNG, cur S) S
	tracker population.ConvergenceTracker[S]
	accel   population.Accelerator
	pred    func([]S) bool
	check   int
}

// applySched installs the scenario's arc scheduler and stuck-agent mask
// on a freshly built engine; every newTrial calls it after the initial
// configuration and trackers are in place. A nil or distribution-less
// spec leaves the engine on the default uniform fast path. Stuck agents
// are chosen without replacement from a salt-decorrelated RNG, clamped
// to n-1 so at least one agent stays live.
func applySched[S any](eng *population.Engine[S], sc Scenario, seed uint64) {
	spec := sc.Sched
	if spec == nil {
		return
	}
	if s := spec.compileArcSched(eng.Arcs()); s != nil {
		eng.SetScheduler(s)
	}
	if spec.Stuck > 0 {
		n := eng.N()
		k := spec.Stuck
		if k > n-1 {
			k = n - 1
		}
		rng := xrand.New(seed ^ stuckSeedSalt)
		frozen := make([]bool, n)
		for chosen := 0; chosen < k; {
			if j := rng.Intn(n); !frozen[j] {
				frozen[j] = true
				chosen++
			}
		}
		eng.SetFrozen(frozen)
	}
}

// churnStep re-splices the ring for one churn event: Remove randomly
// chosen agents leave (never shrinking below 3 agents), then Insert
// newcomers join at random positions, each initialized by corrupting its
// clockwise neighbor's state. The stuck-agent mask follows the surviving
// agents; newcomers are never stuck. The new topology installs through
// Engine.SetTopology (bumping installGen, so the interned layer
// re-interns), and the caller re-installs the scenario's scheduler
// against the new arc count. Returns how many agents actually left.
func churnStep[S any](eng *population.Engine[S], rng *xrand.RNG, ev ChurnEvent, corrupt func(*xrand.RNG, S) S) int {
	cfg := eng.Snapshot()
	frozen := eng.FrozenAgents()
	removed := 0
	for i := 0; i < ev.Remove && len(cfg) > 3; i++ {
		j := rng.Intn(len(cfg))
		cfg = append(cfg[:j], cfg[j+1:]...)
		if frozen != nil {
			frozen = append(frozen[:j], frozen[j+1:]...)
		}
		removed++
	}
	for i := 0; i < ev.Insert; i++ {
		j := rng.Intn(len(cfg) + 1)
		s := corrupt(rng, cfg[j%len(cfg)])
		cfg = append(cfg, s)
		copy(cfg[j+1:], cfg[j:])
		cfg[j] = s
		if frozen != nil {
			frozen = append(frozen, false)
			copy(frozen[j+1:], frozen[j:])
			frozen[j] = false
		}
	}
	eng.SetTopology(population.DirectedRing(len(cfg)), cfg)
	if frozen != nil {
		eng.SetFrozen(frozen)
	}
	return removed
}

// rejectChurn is the validation shared by protocols whose construction
// is pinned to a fixed ring size — P_OR's two-hop coloring and the
// oracle-census baselines cannot re-splice mid-run.
func rejectChurn(info ProtocolInfo, sc Scenario) error {
	if sc.Sched.hasChurn() {
		return fmt.Errorf("repro: %s is built for a fixed ring size and does not support churn", info.Name)
	}
	return nil
}

// interned returns the trial's interned execution layer, or nil when the
// trial must run generically: the layer is absent, a test hook forces the
// generic engine or the scan-era oracle, or the layer has already fallen
// back (it then delegates internally, so returning it would still be
// correct — this just keeps the dispatch explicit).
func (te trialEngine[S]) interned() population.Accelerator {
	if te.accel == nil || internedOff.Load() || convergenceScanEvery.Load() > 0 {
		return nil
	}
	return te.accel
}

// run executes one trial under the scenario's fault and churn schedules
// and budget: each event fires at its scheduled step (events past the
// budget never fire; faults hit the pre-splice ring when both land on
// one step), and convergence is judged on the run after the last event —
// the self-stabilization question "does the protocol recover from this
// adversarial history within the budget". The trial runs on the interned
// table-lookup layer by default (falling back to the generic engine
// transparently when its guards trip) and judges convergence after every
// step, so Steps is the exact hitting time of the protocol's convergence
// predicate, not a checkEvery-quantized overestimate; the interned and
// generic paths are pinned bit-identical by the differential regression
// tests. Churn splices re-install the scenario's scheduler against the
// new arc count; TrialResult.N stays the starting size (the seed-derivation
// key), with the live count streaming through churn events.
//
// A non-nil probe receives the trial's typed event stream (see Probe):
// the initial leader count and every interaction-driven leader-set change
// through the engine's O(1) leader hook, each fault burst and the epoch it
// opens, each churn splice, each scheduler phase transition (eclipse
// windows opening and closing, through the engine's epoch hook), the
// convergence step, and the named tracker channel counts at the end of
// the run phase. name labels the events' protocol. Probing changes
// nothing about the trial itself — the RNG stream, hitting time and
// TrialResult are identical with probe == nil.
func (te trialEngine[S]) run(sc Scenario, n int, seed uint64, maxSteps uint64, name string, probe Probe) TrialResult {
	if probe != nil {
		probe.Begin(name, n, seed)
		if te.eng.TracksLeaders() {
			probe.Observe(TrialEvent{Kind: EventLeaderChange, Step: te.eng.Steps(), Leaders: te.eng.LeaderCount()})
			te.eng.SetLeaderHook(func(step uint64, leaders int) {
				probe.Observe(TrialEvent{Kind: EventLeaderChange, Step: step, Leaders: leaders})
			})
		}
		te.eng.SetEpochHook(func(step uint64, epoch int, eclipsed bool) {
			probe.Observe(TrialEvent{Kind: EventSchedPhase, Step: step, Epoch: epoch, Eclipsed: eclipsed})
		})
		probe.Observe(TrialEvent{Kind: EventEpoch, Step: te.eng.Steps()})
	}
	acc := te.interned()
	var frng, crng *xrand.RNG
	epoch := 0
	faults := sc.sortedFaults()
	churns := sc.Sched.sortedChurn()
	advance := func(to uint64) {
		if to > te.eng.Steps() {
			if acc != nil {
				acc.Run(to - te.eng.Steps())
			} else {
				te.eng.Run(to - te.eng.Steps())
			}
		}
	}
	for len(faults) > 0 || len(churns) > 0 {
		doFault := len(faults) > 0 && (len(churns) == 0 || faults[0].AtStep <= churns[0].AtStep)
		var at uint64
		if doFault {
			at = faults[0].AtStep
		} else {
			at = churns[0].AtStep
		}
		if at >= maxSteps {
			break // events past the budget never fire
		}
		advance(at)
		if doFault {
			f := faults[0]
			faults = faults[1:]
			if frng == nil {
				frng = xrand.New(seed ^ faultSeedSalt)
			}
			cfg := te.eng.Snapshot()
			for i := 0; i < f.Agents; i++ {
				j := frng.Intn(len(cfg))
				cfg[j] = te.corrupt(frng, cfg[j])
			}
			if te.install != nil {
				te.install(cfg)
			} else {
				te.eng.SetStates(cfg)
			}
			if probe != nil {
				epoch++
				ev := TrialEvent{Kind: EventFault, Step: te.eng.Steps(), Agents: f.Agents, Leaders: -1}
				if te.eng.TracksLeaders() {
					ev.Leaders = te.eng.LeaderCount()
				}
				probe.Observe(ev)
				probe.Observe(TrialEvent{Kind: EventEpoch, Step: te.eng.Steps(), Epoch: epoch})
			}
			continue
		}
		ev := churns[0]
		churns = churns[1:]
		if crng == nil {
			crng = xrand.New(seed ^ churnSeedSalt)
		}
		removed := churnStep(te.eng, crng, ev, te.corrupt)
		// SetTopology cleared the scheduler (it was sized to the old arc
		// count); rebuild it against the spliced ring.
		if s := sc.Sched.compileArcSched(te.eng.Arcs()); s != nil {
			te.eng.SetScheduler(s)
		}
		if probe != nil {
			cev := TrialEvent{Kind: EventChurn, Step: te.eng.Steps(), Removed: removed, Inserted: ev.Insert, Live: te.eng.N(), Leaders: -1}
			if te.eng.TracksLeaders() {
				cev.Leaders = te.eng.LeaderCount()
			}
			probe.Observe(cev)
		}
	}
	var steps uint64
	var ok bool
	var sample func(map[string]float64)
	switch every := convergenceScanEvery.Load(); {
	case every > 0 || (te.tracker == nil && acc == nil):
		check := te.check
		if every > 0 {
			check = int(every)
		}
		steps, ok = te.eng.RunUntil(te.pred, check, maxSteps)
	case acc != nil:
		// The production default: the interned table-lookup layer, which
		// judges convergence after every step through the mirrored tracker
		// (and falls back to the generic tracker transparently if the
		// interner's capacity cap is hit).
		steps, ok = acc.RunUntilConverged(maxSteps)
		sample = acc.SampleCounts
	default:
		te.eng.SetTracker(te.tracker)
		steps, ok = te.eng.RunUntilConverged(maxSteps)
		if cs, sampled := te.tracker.(population.CountSampler); sampled {
			sample = cs.SampleCounts
		}
	}
	res := TrialResult{
		N: n, Seed: seed, Steps: steps,
		Stabilized: te.eng.LastLeaderChange(), Converged: ok,
	}
	if probe != nil {
		if ok {
			ev := TrialEvent{Kind: EventConverged, Step: steps, Leaders: -1}
			if te.eng.TracksLeaders() {
				ev.Leaders = te.eng.LeaderCount()
			}
			probe.Observe(ev)
		}
		if sample != nil {
			counts := make(map[string]float64)
			sample(counts)
			if len(counts) > 0 {
				probe.Observe(TrialEvent{Kind: EventChannels, Step: steps, Counts: counts})
			}
		}
		probe.End(res)
	}
	return res
}

// benchRaw runs exactly steps scheduler steps with no convergence
// judgement at all — the raw transition-loop throughput.
func (te trialEngine[S]) benchRaw(steps uint64) { te.eng.Run(steps) }

// benchTracked runs to convergence through the incremental tracker.
func (te trialEngine[S]) benchTracked(maxSteps uint64) (uint64, bool) {
	te.eng.SetTracker(te.tracker)
	return te.eng.RunUntilConverged(maxSteps)
}

// benchInterned runs to convergence through the interned table-lookup
// layer; the extra result reports whether the run stayed interned (false
// when the capacity cap forced the generic fallback mid-run).
func (te trialEngine[S]) benchInterned(maxSteps uint64) (uint64, bool, bool) {
	steps, ok := te.accel.RunUntilConverged(maxSteps)
	return steps, ok, te.accel.Interned()
}

// benchScan runs to convergence through the scan-era periodic predicate.
func (te trialEngine[S]) benchScan(maxSteps uint64) (uint64, bool) {
	return te.eng.RunUntil(te.pred, te.check, maxSteps)
}

// stepCount returns the scheduler steps executed so far.
func (te trialEngine[S]) stepCount() uint64 { return te.eng.Steps() }

// probedTrial is the one copy of the Trial/ProbedTrial entry path shared
// by every built-in protocol: validate the scenario, build the trial
// engine, run it under the scenario's budget with the probe attached.
func probedTrial[S any](p Protocol, newTrial func(Scenario, int, uint64) trialEngine[S], sc Scenario, n int, seed uint64, probe Probe) (TrialResult, error) {
	if err := p.Validate(sc); err != nil {
		return TrialResult{}, err
	}
	te := newTrial(sc, n, seed)
	return te.run(sc, n, seed, sc.MaxSteps(p, n), p.Info().Name, probe), nil
}

// newBenchFor is the shared newBench body: a fully wired, unrun trial
// engine for RunBenchmark to time.
func newBenchFor[S any](p Protocol, newTrial func(Scenario, int, uint64) trialEngine[S], sc Scenario, n int, seed uint64) (benchRunner, error) {
	if err := p.Validate(sc); err != nil {
		return nil, err
	}
	return newTrial(sc, n, seed), nil
}

// newBenchPairFor is the shared newBenchPair body: two trial engines for
// the same cell and seed attached to one shared table set — the same
// multi-engine table sharing the lane sets use — so RunBenchmark can fill
// the tables with an untimed run and then time the identical trajectory
// through them warm.
func newBenchPairFor[S comparable](p Protocol, sc Scenario, n int, seed uint64,
	newTables func(Scenario, int) *population.Tables[S],
	newTrialT func(Scenario, int, uint64, *population.Tables[S]) trialEngine[S],
) (benchRunner, benchRunner, error) {
	if err := p.Validate(sc); err != nil {
		return nil, nil, err
	}
	tab := newTables(sc, n)
	return newTrialT(sc, n, seed, tab), newTrialT(sc, n, seed, tab), nil
}

// internOpts maps the scenario's interner-capacity knob onto the interned
// layer's options. Scenario.Validate bounds the knob, so every table
// construction site routes through here.
func internOpts(sc Scenario) population.InternOptions {
	return population.InternOptions{MaxStates: sc.MaxStates}
}

// laneable is implemented by the built-in protocols: run a batch of
// same-cell trials as lockstep lanes sharing one warm transition-table
// set (population.LaneSet). Results are bit-identical to calling Trial
// per seed — lanes only amortize table fills — so callers may freely
// switch between the two paths.
type laneable interface {
	LaneTrials(sc Scenario, n int, seeds []uint64) ([]TrialResult, error)
}

// laneTrials is the one copy of the LaneTrials body: build one shared
// table set, attach each seed's trial engine to it as a lane, and drive
// the lane set to convergence. Scenarios whose trials need the event
// machinery of trialEngine.run (faults, churn) and the test hooks that
// force the generic or scan paths run each seed solo instead — the
// results are identical either way, the lanes are purely a throughput
// device. Stuck-agent scenarios stay on the lane path: prepare() routes
// each lane to its generic engine up front and the lane set completes
// them there.
func laneTrials[S comparable](p Protocol, sc Scenario, n int, seeds []uint64,
	newTables func(Scenario, int) *population.Tables[S],
	newTrialT func(Scenario, int, uint64, *population.Tables[S]) trialEngine[S],
) ([]TrialResult, error) {
	if err := p.Validate(sc); err != nil {
		return nil, err
	}
	newTrial := func(sc Scenario, n int, seed uint64) trialEngine[S] {
		return newTrialT(sc, n, seed, newTables(sc, n))
	}
	solo := len(sc.Faults) > 0 || sc.Sched.hasChurn() ||
		internedOff.Load() || convergenceScanEvery.Load() > 0
	if solo || len(seeds) < 2 {
		out := make([]TrialResult, len(seeds))
		for i, seed := range seeds {
			r, err := probedTrial(p, newTrial, sc, n, seed, nil)
			if err != nil {
				return nil, err
			}
			out[i] = r
		}
		return out, nil
	}
	maxSteps := sc.MaxSteps(p, n)
	tab := newTables(sc, n)
	tes := make([]trialEngine[S], len(seeds))
	lanes := make([]*population.InternedEngine[S], len(seeds))
	for i, seed := range seeds {
		tes[i] = newTrialT(sc, n, seed, tab)
		lanes[i] = tes[i].accel.(*population.InternedEngine[S])
	}
	steps, conv := population.NewLaneSet(lanes).RunUntilConverged(maxSteps)
	out := make([]TrialResult, len(seeds))
	for i, seed := range seeds {
		out[i] = TrialResult{
			N: n, Seed: seed, Steps: steps[i],
			Stabilized: tes[i].eng.LastLeaderChange(), Converged: conv[i],
		}
	}
	return out, nil
}

// validateElection is the scenario check shared by the four baselines:
// directed ring only, random starts only (their hand-crafted hard
// instances are not defined), any fault schedule and budget.
func validateElection(info ProtocolInfo, sc Scenario) error {
	if err := sc.Validate(); err != nil {
		return err
	}
	if sc.Topology != TopologyDefault && sc.Topology != TopologyDirectedRing {
		return fmt.Errorf("repro: %s runs on a directed ring, not %v", info.Name, sc.Topology)
	}
	if sc.Init != InitRandom {
		return fmt.Errorf("repro: %s supports the random init class only, not %v", info.Name, sc.Init)
	}
	return nil
}

// pplProtocol is the paper's P_PL with a configurable ψ slack and κ_max
// multiplier.
type pplProtocol struct {
	slack, c1 int
}

// PPL returns the paper's protocol P_PL with the given ψ slack and κ_max
// multiplier c1 (κ_max = c1·ψ). Zero c1 selects the default multiplier;
// the paper allows any O(1) slack. PPL(0, 0) is the registered "ppl"
// protocol.
func PPL(slack, c1 int) Protocol {
	if c1 <= 0 {
		c1 = core.DefaultC1
	}
	return pplProtocol{slack: slack, c1: c1}
}

func (pplProtocol) Info() ProtocolInfo {
	return ProtocolInfo{
		Name:        "P_PL (this work)",
		Assumption:  "knowledge ψ = ⌈log n⌉+O(1)",
		PaperTime:   "O(n² log n)",
		PaperStates: "polylog(n)",
	}
}

func (p pplProtocol) params(n int) core.Params {
	return core.NewParamsSlack(n, p.slack, p.c1)
}

func (p pplProtocol) States(n int) uint64 { return p.params(n).StateCount() }

func (pplProtocol) FixSize(n int) int { return n }

func (p pplProtocol) MaxSteps(n int) uint64 {
	return 800 * uint64(n) * uint64(n) * uint64(p.params(n).Psi)
}

func (p pplProtocol) Validate(sc Scenario) error {
	if err := sc.Validate(); err != nil {
		return err
	}
	if sc.Topology != TopologyDefault && sc.Topology != TopologyDirectedRing {
		return fmt.Errorf("repro: P_PL runs on a directed ring, not %v", sc.Topology)
	}
	return nil
}

// newTables builds the shared interned table set for one (scenario, n)
// cell: the packed codec keys the interner by the fixed-width state
// encoding (falling back to the map mode in parameterizations too wide to
// pack).
func (p pplProtocol) newTables(sc Scenario, n int) *population.Tables[core.State] {
	par := p.params(n)
	var cp *population.PackedCodec[core.State]
	if codec, ok := par.Codec(); ok {
		cp = &codec
	}
	return population.NewTables(par.SafetySpec(), core.IsLeader, cp, nil, internOpts(sc))
}

func (p pplProtocol) newTrialT(sc Scenario, n int, seed uint64, tab *population.Tables[core.State]) trialEngine[core.State] {
	par := p.params(n)
	pr := core.New(par)
	eng := population.NewEngine(population.DirectedRing(n), pr.Step, xrand.New(seed))
	eng.SetStates(par.InitConfig(sc.Init.String(), seed))
	eng.TrackLeaders(core.IsLeader)
	tracker := population.NewRingTracker(par.SafetySpec())
	applySched(eng, sc, seed)
	return trialEngine[core.State]{
		eng:     eng,
		corrupt: func(rng *xrand.RNG, _ core.State) core.State { return par.RandomState(rng) },
		tracker: tracker,
		accel:   population.AttachInterned(eng, tab, nil, tracker),
		pred:    func(cfg []core.State) bool { return par.IsSafe(cfg) },
		check:   n/2 + 1,
	}
}

func (p pplProtocol) newTrial(sc Scenario, n int, seed uint64) trialEngine[core.State] {
	return p.newTrialT(sc, n, seed, p.newTables(sc, n))
}

func (p pplProtocol) Trial(sc Scenario, n int, seed uint64) (TrialResult, error) {
	return p.ProbedTrial(sc, n, seed, nil)
}

// LaneTrials implements laneable: same-cell trials as lockstep lanes over
// one shared table set.
func (p pplProtocol) LaneTrials(sc Scenario, n int, seeds []uint64) ([]TrialResult, error) {
	return laneTrials(p, sc, n, seeds, p.newTables, p.newTrialT)
}

// ProbedTrial implements ProbedProtocol: Trial with the typed event
// stream attached.
func (p pplProtocol) ProbedTrial(sc Scenario, n int, seed uint64, probe Probe) (TrialResult, error) {
	return probedTrial(p, p.newTrial, sc, n, seed, probe)
}

func (p pplProtocol) newBench(sc Scenario, n int, seed uint64) (benchRunner, error) {
	return newBenchFor(p, p.newTrial, sc, n, seed)
}

func (p pplProtocol) newBenchPair(sc Scenario, n int, seed uint64) (benchRunner, benchRunner, error) {
	return newBenchPairFor(p, sc, n, seed, p.newTables, p.newTrialT)
}

// orientProtocol is the paper's Section 5 orientation protocol P_OR.
type orientProtocol struct{}

func (orientProtocol) Info() ProtocolInfo {
	return ProtocolInfo{
		Name:        "P_OR (Section 5)",
		Assumption:  "two-hop coloring",
		PaperTime:   "O(n² log n)",
		PaperStates: "O(1)",
	}
}

func (orientProtocol) States(n int) uint64 {
	return orient.StateCount(twohop.MinColors(n))
}

func (orientProtocol) FixSize(n int) int {
	if n < 3 {
		return 3
	}
	return n
}

func (orientProtocol) MaxSteps(n int) uint64 {
	return 4000 * uint64(n) * uint64(n)
}

func (orientProtocol) Validate(sc Scenario) error {
	if err := sc.Validate(); err != nil {
		return err
	}
	if sc.Topology != TopologyDefault && sc.Topology != TopologyUndirectedRing {
		return fmt.Errorf("repro: P_OR runs on an undirected ring, not %v", sc.Topology)
	}
	if sc.Init != InitRandom {
		return fmt.Errorf("repro: P_OR supports the random init class only, not %v", sc.Init)
	}
	return rejectChurn(orientProtocol{}.Info(), sc)
}

func (p orientProtocol) newTables(sc Scenario, n int) *population.Tables[orient.State] {
	codec := orient.Codec()
	return population.NewTables(orient.OrientedSpec(), nil, &codec, nil, internOpts(sc))
}

func (p orientProtocol) newTrialT(sc Scenario, n int, seed uint64, tab *population.Tables[orient.State]) trialEngine[orient.State] {
	colors := twohop.Coloring(n)
	maxColor := 0
	for _, c := range colors {
		if int(c) > maxColor {
			maxColor = int(c)
		}
	}
	pr := orient.New()
	eng := population.NewEngine(population.UndirectedRing(n), pr.Step, xrand.New(seed))
	eng.SetStates(orient.InitialConfig(colors, xrand.New(seed^initSeedSalt)))
	tracker := population.NewRingTracker(orient.OrientedSpec())
	applySched(eng, sc, seed)
	return trialEngine[orient.State]{
		eng: eng,
		// Corruption scrambles the evolving registers but preserves the
		// coloring, which is protocol input, not state.
		corrupt: func(rng *xrand.RNG, cur orient.State) orient.State {
			return orient.State{
				Color:  cur.Color,
				Dir:    uint8(rng.Intn(maxColor + 2)),
				M1:     uint8(rng.Intn(maxColor + 2)),
				M2:     uint8(rng.Intn(maxColor + 2)),
				Strong: rng.Bool(),
			}
		},
		tracker: tracker,
		accel:   population.AttachInterned(eng, tab, nil, tracker),
		pred:    orient.Oriented,
		check:   n,
	}
}

func (p orientProtocol) newTrial(sc Scenario, n int, seed uint64) trialEngine[orient.State] {
	return p.newTrialT(sc, n, seed, p.newTables(sc, n))
}

func (p orientProtocol) Trial(sc Scenario, n int, seed uint64) (TrialResult, error) {
	return p.ProbedTrial(sc, n, seed, nil)
}

// LaneTrials implements laneable.
func (p orientProtocol) LaneTrials(sc Scenario, n int, seeds []uint64) ([]TrialResult, error) {
	return laneTrials(p, sc, n, seeds, p.newTables, p.newTrialT)
}

// ProbedTrial implements ProbedProtocol: Trial with the typed event
// stream attached.
func (p orientProtocol) ProbedTrial(sc Scenario, n int, seed uint64, probe Probe) (TrialResult, error) {
	return probedTrial(p, p.newTrial, sc, n, seed, probe)
}

func (p orientProtocol) newBench(sc Scenario, n int, seed uint64) (benchRunner, error) {
	return newBenchFor(p, p.newTrial, sc, n, seed)
}

func (p orientProtocol) newBenchPair(sc Scenario, n int, seed uint64) (benchRunner, benchRunner, error) {
	return newBenchPairFor(p, sc, n, seed, p.newTables, p.newTrialT)
}

// yokotaProtocol is the [28] baseline with knowledge N = 2n.
type yokotaProtocol struct{}

func (yokotaProtocol) Info() ProtocolInfo {
	return ProtocolInfo{
		Name:        "[28] Yokota et al.",
		Assumption:  "knowledge N = n+O(n)",
		PaperTime:   "Θ(n²)",
		PaperStates: "O(n)",
	}
}

func (yokotaProtocol) States(n int) uint64 { return yokota.New(2 * n).StateCount() }

func (yokotaProtocol) FixSize(n int) int { return n }

func (yokotaProtocol) MaxSteps(n int) uint64 { return 800 * uint64(n) * uint64(n) }

func (p yokotaProtocol) Validate(sc Scenario) error { return validateElection(p.Info(), sc) }

func (p yokotaProtocol) newTables(sc Scenario, n int) *population.Tables[yokota.State] {
	pr := yokota.New(2 * n)
	codec := pr.Codec()
	return population.NewTables(pr.StableSpec(), yokota.IsLeader, &codec, nil, internOpts(sc))
}

func (p yokotaProtocol) newTrialT(sc Scenario, n int, seed uint64, tab *population.Tables[yokota.State]) trialEngine[yokota.State] {
	pr := yokota.New(2 * n)
	eng := population.NewEngine(population.DirectedRing(n), pr.Step, xrand.New(seed))
	eng.SetStates(pr.RandomConfig(xrand.New(seed^initSeedSalt), n))
	eng.TrackLeaders(yokota.IsLeader)
	tracker := population.NewRingTracker(pr.StableSpec())
	applySched(eng, sc, seed)
	return trialEngine[yokota.State]{
		eng:     eng,
		corrupt: func(rng *xrand.RNG, _ yokota.State) yokota.State { return pr.RandomState(rng) },
		tracker: tracker,
		accel:   population.AttachInterned(eng, tab, nil, tracker),
		pred:    pr.Stable,
		check:   n/2 + 1,
	}
}

func (p yokotaProtocol) newTrial(sc Scenario, n int, seed uint64) trialEngine[yokota.State] {
	return p.newTrialT(sc, n, seed, p.newTables(sc, n))
}

func (p yokotaProtocol) Trial(sc Scenario, n int, seed uint64) (TrialResult, error) {
	return p.ProbedTrial(sc, n, seed, nil)
}

// LaneTrials implements laneable.
func (p yokotaProtocol) LaneTrials(sc Scenario, n int, seeds []uint64) ([]TrialResult, error) {
	return laneTrials(p, sc, n, seeds, p.newTables, p.newTrialT)
}

// ProbedTrial implements ProbedProtocol: Trial with the typed event
// stream attached.
func (p yokotaProtocol) ProbedTrial(sc Scenario, n int, seed uint64, probe Probe) (TrialResult, error) {
	return probedTrial(p, p.newTrial, sc, n, seed, probe)
}

func (p yokotaProtocol) newBench(sc Scenario, n int, seed uint64) (benchRunner, error) {
	return newBenchFor(p, p.newTrial, sc, n, seed)
}

func (p yokotaProtocol) newBenchPair(sc Scenario, n int, seed uint64) (benchRunner, benchRunner, error) {
	return newBenchPairFor(p, sc, n, seed, p.newTables, p.newTrialT)
}

// angluinProtocol is the [5]-style mod-k baseline with k = 2; requested
// even sizes are bumped to the next odd size.
type angluinProtocol struct{}

func (angluinProtocol) Info() ProtocolInfo {
	return ProtocolInfo{
		Name:        "[5] Angluin et al.",
		Assumption:  "n not multiple of k=2",
		PaperTime:   "Θ(n³)",
		PaperStates: "O(1)",
	}
}

func (angluinProtocol) States(n int) uint64 { return angluin.New(2).StateCount() }

func (angluinProtocol) FixSize(n int) int {
	if n%2 == 0 {
		return n + 1
	}
	return n
}

func (angluinProtocol) MaxSteps(n int) uint64 {
	return 400 * uint64(n) * uint64(n) * uint64(n)
}

func (p angluinProtocol) Validate(sc Scenario) error { return validateElection(p.Info(), sc) }

func (p angluinProtocol) newTables(sc Scenario, n int) *population.Tables[angluin.State] {
	codec := angluin.Codec()
	return population.NewTables(angluin.New(2).StableSpec(), angluin.IsLeader, &codec, nil, internOpts(sc))
}

func (p angluinProtocol) newTrialT(sc Scenario, n int, seed uint64, tab *population.Tables[angluin.State]) trialEngine[angluin.State] {
	pr := angluin.New(2)
	eng := population.NewEngine(population.DirectedRing(n), pr.Step, xrand.New(seed))
	eng.SetStates(pr.RandomConfig(xrand.New(seed^initSeedSalt), n))
	eng.TrackLeaders(angluin.IsLeader)
	tracker := population.NewRingTracker(pr.StableSpec())
	applySched(eng, sc, seed)
	return trialEngine[angluin.State]{
		eng:     eng,
		corrupt: func(rng *xrand.RNG, _ angluin.State) angluin.State { return pr.RandomState(rng) },
		tracker: tracker,
		accel:   population.AttachInterned(eng, tab, nil, tracker),
		pred:    pr.Stable,
		check:   n/2 + 1,
	}
}

func (p angluinProtocol) newTrial(sc Scenario, n int, seed uint64) trialEngine[angluin.State] {
	return p.newTrialT(sc, n, seed, p.newTables(sc, n))
}

func (p angluinProtocol) Trial(sc Scenario, n int, seed uint64) (TrialResult, error) {
	return p.ProbedTrial(sc, n, seed, nil)
}

// LaneTrials implements laneable.
func (p angluinProtocol) LaneTrials(sc Scenario, n int, seeds []uint64) ([]TrialResult, error) {
	return laneTrials(p, sc, n, seeds, p.newTables, p.newTrialT)
}

// ProbedTrial implements ProbedProtocol: Trial with the typed event
// stream attached.
func (p angluinProtocol) ProbedTrial(sc Scenario, n int, seed uint64, probe Probe) (TrialResult, error) {
	return probedTrial(p, p.newTrial, sc, n, seed, probe)
}

func (p angluinProtocol) newBench(sc Scenario, n int, seed uint64) (benchRunner, error) {
	return newBenchFor(p, p.newTrial, sc, n, seed)
}

func (p angluinProtocol) newBenchPair(sc Scenario, n int, seed uint64) (benchRunner, benchRunner, error) {
	return newBenchPairFor(p, sc, n, seed, p.newTables, p.newTrialT)
}

// fjProtocol is the [15]-style oracle baseline.
type fjProtocol struct{}

func (fjProtocol) Info() ProtocolInfo {
	return ProtocolInfo{
		Name:        "[15] Fischer–Jiang",
		Assumption:  "oracle Ω?",
		PaperTime:   "Θ(n³)",
		PaperStates: "O(1)",
	}
}

func (fjProtocol) States(n int) uint64 { return fj.New().StateCount() }

func (fjProtocol) FixSize(n int) int { return n }

func (fjProtocol) MaxSteps(n int) uint64 {
	return 400 * uint64(n) * uint64(n) * uint64(n)
}

func (p fjProtocol) Validate(sc Scenario) error {
	if err := validateElection(p.Info(), sc); err != nil {
		return err
	}
	return rejectChurn(p.Info(), sc)
}

func (p fjProtocol) newTables(sc Scenario, n int) *population.Tables[fj.State] {
	codec := fj.Codec()
	// Tables only read the env's shape (Keys, the pure Delta); any runner's
	// EnvSpec supplies them.
	env := fj.NewRunner(3, xrand.New(1)).InternEnv()
	return population.NewTables(fj.New().StableSpec(), fj.IsLeader, &codec, env, internOpts(sc))
}

func (p fjProtocol) newTrialT(sc Scenario, n int, seed uint64, tab *population.Tables[fj.State]) trialEngine[fj.State] {
	ru := fj.NewRunner(n, xrand.New(seed))
	ru.SetStates(fj.New().RandomConfig(xrand.New(seed^initSeedSalt), n))
	tracker := population.NewRingTracker(fj.New().StableSpec())
	applySched(ru.Engine(), sc, seed)
	return trialEngine[fj.State]{
		eng:     ru.Engine(),
		install: ru.SetStates, // keep the oracle census in sync
		corrupt: func(rng *xrand.RNG, _ fj.State) fj.State { return fj.New().RandomState(rng) },
		tracker: tracker,
		accel:   population.AttachInterned(ru.Engine(), tab, ru.InternEnv(), tracker),
		pred:    fj.Stable,
		check:   n/2 + 1,
	}
}

func (p fjProtocol) newTrial(sc Scenario, n int, seed uint64) trialEngine[fj.State] {
	return p.newTrialT(sc, n, seed, p.newTables(sc, n))
}

func (p fjProtocol) Trial(sc Scenario, n int, seed uint64) (TrialResult, error) {
	return p.ProbedTrial(sc, n, seed, nil)
}

// LaneTrials implements laneable.
func (p fjProtocol) LaneTrials(sc Scenario, n int, seeds []uint64) ([]TrialResult, error) {
	return laneTrials(p, sc, n, seeds, p.newTables, p.newTrialT)
}

// ProbedTrial implements ProbedProtocol: Trial with the typed event
// stream attached.
func (p fjProtocol) ProbedTrial(sc Scenario, n int, seed uint64, probe Probe) (TrialResult, error) {
	return probedTrial(p, p.newTrial, sc, n, seed, probe)
}

func (p fjProtocol) newBench(sc Scenario, n int, seed uint64) (benchRunner, error) {
	return newBenchFor(p, p.newTrial, sc, n, seed)
}

func (p fjProtocol) newBenchPair(sc Scenario, n int, seed uint64) (benchRunner, benchRunner, error) {
	return newBenchPairFor(p, sc, n, seed, p.newTables, p.newTrialT)
}

// chenchenProtocol is the [11]-style baseline. The reconstruction
// serializes detection attempts with a flag-census oracle (see
// internal/chenchen), so its measured time class is not the original's
// super-exponential bound; run it at small n only.
type chenchenProtocol struct{}

func (chenchenProtocol) Info() ProtocolInfo {
	return ProtocolInfo{
		Name:        "[11] Chen–Chen",
		Assumption:  "none (reconstruction: census oracle)",
		PaperTime:   "exponential",
		PaperStates: "O(1)",
	}
}

func (chenchenProtocol) States(n int) uint64 { return chenchen.New().StateCount() }

func (chenchenProtocol) FixSize(n int) int { return n }

func (chenchenProtocol) MaxSteps(n int) uint64 {
	return 2000 * uint64(n) * uint64(n) * uint64(n)
}

func (p chenchenProtocol) Validate(sc Scenario) error {
	if err := validateElection(p.Info(), sc); err != nil {
		return err
	}
	return rejectChurn(p.Info(), sc)
}

func (p chenchenProtocol) newTables(sc Scenario, n int) *population.Tables[chenchen.State] {
	codec := chenchen.Codec()
	env := chenchen.NewRunner(3, xrand.New(1)).InternEnv()
	return population.NewTables(chenchen.New().StableSpec(), chenchen.IsLeader, &codec, env, internOpts(sc))
}

func (p chenchenProtocol) newTrialT(sc Scenario, n int, seed uint64, tab *population.Tables[chenchen.State]) trialEngine[chenchen.State] {
	ru := chenchen.NewRunner(n, xrand.New(seed))
	ru.SetStates(chenchen.New().RandomConfig(xrand.New(seed^initSeedSalt), n))
	tracker := population.NewRingTracker(chenchen.New().StableSpec())
	applySched(ru.Engine(), sc, seed)
	return trialEngine[chenchen.State]{
		eng:     ru.Engine(),
		install: ru.SetStates, // keep the flag census in sync
		corrupt: func(rng *xrand.RNG, _ chenchen.State) chenchen.State { return chenchen.New().RandomState(rng) },
		tracker: tracker,
		accel:   population.AttachInterned(ru.Engine(), tab, ru.InternEnv(), tracker),
		pred:    chenchen.Stable,
		check:   n/2 + 1,
	}
}

func (p chenchenProtocol) newTrial(sc Scenario, n int, seed uint64) trialEngine[chenchen.State] {
	return p.newTrialT(sc, n, seed, p.newTables(sc, n))
}

func (p chenchenProtocol) Trial(sc Scenario, n int, seed uint64) (TrialResult, error) {
	return p.ProbedTrial(sc, n, seed, nil)
}

// LaneTrials implements laneable.
func (p chenchenProtocol) LaneTrials(sc Scenario, n int, seeds []uint64) ([]TrialResult, error) {
	return laneTrials(p, sc, n, seeds, p.newTables, p.newTrialT)
}

// ProbedTrial implements ProbedProtocol: Trial with the typed event
// stream attached.
func (p chenchenProtocol) ProbedTrial(sc Scenario, n int, seed uint64, probe Probe) (TrialResult, error) {
	return probedTrial(p, p.newTrial, sc, n, seed, probe)
}

func (p chenchenProtocol) newBench(sc Scenario, n int, seed uint64) (benchRunner, error) {
	return newBenchFor(p, p.newTrial, sc, n, seed)
}

func (p chenchenProtocol) newBenchPair(sc Scenario, n int, seed uint64) (benchRunner, benchRunner, error) {
	return newBenchPairFor(p, sc, n, seed, p.newTables, p.newTrialT)
}
