// Comparison: regenerate a small instance of the paper's Table 1 — the
// paper's protocol against the four prior ring SS-LE protocols — through
// the public Experiment API, and print the measured convergence steps,
// fitted scaling exponents and exact state counts as markdown.
//
// For the full-size regeneration, run cmd/table1 or cmd/sweep.
package main

import (
	"context"
	"fmt"
	"log"

	"repro"
)

func main() {
	fmt.Println("regenerating Table 1 at small scale (n ∈ {16, 32, 64}, 3 trials)...")
	fmt.Println()
	rep, err := repro.NewExperiment().
		ProtocolNames("angluin", "fj", "chenchen", "yokota", "ppl").
		Sizes(16, 32, 64).
		Trials(3).
		MaxSizeFor("[11] Chen–Chen", 16).
		Run(context.Background())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(rep.Markdown())
	fmt.Println("\nfitted exponents (steps ≈ a·n^b):")
	for _, row := range rep.Rows {
		if !row.ExponentOK {
			continue
		}
		fmt.Printf("  %-24s b = %.2f\n", row.Protocol.Name, row.Exponent)
	}
}
