// Comparison: regenerate a small instance of the paper's Table 1 — the
// paper's protocol against the four prior ring SS-LE protocols — and print
// the measured convergence steps, fitted scaling exponents and exact state
// counts as markdown.
//
// For the full-size regeneration used in EXPERIMENTS.md, run cmd/table1 or
// cmd/sweep.
package main

import (
	"fmt"

	"repro"
)

func main() {
	fmt.Println("regenerating Table 1 at small scale (n ∈ {16, 32, 64}, 3 trials)...")
	fmt.Println()
	res := repro.Comparison([]int{16, 32, 64}, 3, 16)
	fmt.Print(res.Markdown)
	fmt.Println("\nfitted exponents (steps ≈ a·n^b):")
	for name, exp := range res.Exponents {
		fmt.Printf("  %-24s b = %.2f\n", name, exp)
	}
}
