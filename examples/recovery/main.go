// Recovery-time measurement through the streaming observation API: a
// fault-injection sweep whose per-trial records stream to a JSONL sink in
// bounded memory while composable metrics rank the protocols on how fast
// they heal after the last burst — the quantity the self-stabilization
// literature actually compares, unobservable from the legacy three-scalar
// results.
package main

import (
	"context"
	"fmt"
	"log"
	"os"
	"path/filepath"

	"repro"
)

func main() {
	// Every trial is hit by two bursts; convergence is judged on the run
	// after the second one, so "recovery_steps" measures healing, not the
	// initial election.
	scenario := repro.Scenario{
		Faults: []repro.Fault{
			{AtStep: 500, Agents: 8},
			{AtStep: 1500, Agents: 8},
		},
	}

	records := filepath.Join(os.TempDir(), "recovery-records.jsonl")
	sink, err := repro.CreateJSONL(records)
	if err != nil {
		log.Fatal(err)
	}

	rep, err := repro.NewExperiment().
		ProtocolNames("ppl", "yokota").
		Sizes(16, 32).
		Trials(5).
		Scenario(scenario).
		Metrics(
			repro.MeanOf("recovery_steps"),
			repro.P90Of("recovery_steps"),
			repro.MaxOf("leaders_peak"),
		).
		Sinks(sink). // closed (and flushed) by Run
		Run(context.Background())
	if err != nil {
		log.Fatal(err)
	}

	// The metric tables render alongside the classic Table 1 layout.
	fmt.Print(rep.Markdown())
	fmt.Printf("\nstreamed %d per-trial records to %s\n", sink.Count(), records)

	// The JSONL artifact carries the full per-trial detail — observables
	// and leader-count series — for offline analysis (cmd/figures
	// -records renders it as trajectories).
	f, err := os.Open(records)
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()
	recs, err := repro.ReadTrialRecords(f)
	if err != nil {
		log.Fatal(err)
	}
	first := recs[0]
	fmt.Printf("first record: %s n=%d trial=%d — recovered %.0f steps after the burst at step %.0f (leader trajectory: %d points)\n",
		first.Protocol, first.N, first.Trial,
		first.Observables["recovery_steps"], first.Observables["last_fault_step"],
		len(first.Series["leaders"]))
	os.Remove(records)
}
