// Fault injection: the motivating scenario for self-stabilization — a
// ring of cheap, unreliable sensor nodes whose memory is repeatedly
// corrupted by transient faults. After every burst the population
// re-elects a unique leader on its own, with no reset, no global
// coordination and no fault detector.
package main

import (
	"fmt"
	"log"

	"repro"
)

func main() {
	const (
		n      = 48
		bursts = 5
	)

	e := repro.NewRingElection(n, repro.WithSeed(7))
	e.InitPerfect(0) // deploy converged
	fmt.Printf("deployed ring of %d sensors, leader at agent 0, safe=%v\n\n", n, e.Safe())

	for burst := 1; burst <= bursts; burst++ {
		// Corrupt a growing share of the ring, up to every single agent.
		faults := n * burst / bursts
		e.InjectFaults(faults)
		fmt.Printf("burst %d: corrupted ~%d/%d agents — leaders now %d, safe=%v\n",
			burst, faults, n, e.LeaderCount(), e.Safe())

		before := e.Steps()
		if _, ok := e.RunToSafe(0); !ok {
			log.Fatalf("burst %d: recovery failed", burst)
		}
		leader, _ := e.Leader()
		fmt.Printf("         recovered in %d steps — unique leader now agent %d\n\n",
			e.Steps()-before, leader)
	}
	fmt.Println("every burst healed autonomously: that is self-stabilization.")
}
