// Quickstart: elect a unique leader on a directed ring of 64 anonymous
// agents starting from an adversarial configuration, using the paper's
// P_PL protocol through the public API.
package main

import (
	"fmt"
	"log"

	"repro"
)

func main() {
	const n = 64

	e := repro.NewRingElection(n, repro.WithSeed(1))
	fmt.Printf("ring of %d agents, ψ = %d, %d states per agent (%s)\n",
		e.N(), e.Psi(), e.StatesPerAgent(), "polylog(n)")

	// The adversary picks the initial configuration; self-stabilization
	// means convergence must happen from *any* of them.
	e.InitRandom(42)
	fmt.Printf("initial leaders: %d (random adversarial start)\n", e.LeaderCount())

	steps, ok := e.RunToSafe(0)
	if !ok {
		log.Fatal("did not converge within the theoretical budget")
	}
	leader, unique := e.Leader()
	if !unique {
		log.Fatal("converged without a unique leader")
	}
	fmt.Printf("safe configuration after %d steps (≈ %.2f × n² log n)\n",
		steps, float64(steps)/(float64(n)*float64(n)*6))
	fmt.Printf("leader elected: agent %d\n", leader)
	fmt.Printf("output stabilized at step %d and can never change again (Lemma 4.7)\n",
		e.LastOutputChange())
}
