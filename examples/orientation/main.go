// Orientation pipeline: the paper's Section 5 composition. Real rings are
// undirected — no agent knows clockwise from counter-clockwise. The
// population first runs the O(1)-state orientation protocol P_OR until
// every agent points the same way, then runs leader election on the
// induced directed ring.
package main

import (
	"fmt"
	"log"

	"repro"
)

func main() {
	const n = 48

	// Phase 1: agree on a direction from adversarial dir/strong/memory.
	o := repro.NewRingOrientation(n, repro.WithSeed(11))
	fmt.Printf("phase 1: orienting an undirected ring of %d agents (O(1) states)\n", n)
	steps, ok := o.RunToOriented(0)
	if !ok {
		log.Fatal("orientation did not converge")
	}
	dir := "counter-clockwise"
	if o.Clockwise() {
		dir = "clockwise"
	}
	fmt.Printf("         oriented %s after %d steps (Theorem 5.2: O(n² log n))\n\n", dir, steps)

	// Phase 2: with a common direction, the ring is effectively directed;
	// P_PL elects the unique leader.
	e := repro.NewRingElection(n, repro.WithSeed(12))
	e.InitRandom(13)
	fmt.Printf("phase 2: leader election on the induced directed ring\n")
	steps, ok = e.RunToSafe(0)
	if !ok {
		log.Fatal("election did not converge")
	}
	leader, _ := e.Leader()
	fmt.Printf("         agent %d elected after %d steps (Theorem 3.1: O(n² log n))\n\n", leader, steps)

	fmt.Println("total pipeline: undirected anonymous ring → unique stable leader,")
	fmt.Println("self-stabilizing end to end, polylog(n) states per agent.")
}
