// Scenarios: the public experiment API end to end — the protocol
// registry, a Scenario with the cold leaderless start (the hardest
// detection instance, dominated by the lottery-game clocks) plus a mid-run
// fault-injection schedule, and the structured Report renderers.
package main

import (
	"context"
	"fmt"
	"log"
	"strings"

	"repro"
)

func main() {
	fmt.Println("registered protocols:", strings.Join(repro.Protocols(), ", "))
	fmt.Println()

	// The scenario: every agent starts in the leaderless aligned
	// configuration with clocks at zero, and the adversary corrupts the
	// ring twice more mid-run. Self-stabilization means every trial must
	// still converge.
	sc := repro.Scenario{
		Init: repro.InitNoLeaderCold,
		Faults: []repro.Fault{
			{AtStep: 2_000, Agents: 4},
			{AtStep: 10_000, Agents: 8},
		},
	}
	rep, err := repro.NewExperiment().
		Protocols(repro.PPL(0, 0)).
		Sizes(16, 32).
		Trials(3).
		Scenario(sc).
		Run(context.Background())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(rep.Markdown())

	// The same report, machine-readable.
	csv, err := rep.CSV()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nCSV form (what cmd/table1 -csv and cmd/sweep -csv emit):")
	fmt.Println()
	fmt.Print(string(csv))
}
