package repro

import (
	"testing"
)

// laneSeeds is the seed batch of the lane differential tests: enough lanes
// to exercise lane scheduling beyond pairs, with a spread that converges
// at different steps so the lane set's retirement path runs.
func laneSeeds() []uint64 { return []uint64{1, 2, 3, 5, 8, 13} }

// assertLanesMatchSolo pins LaneTrials to the per-seed solo path: the
// lockstep lanes are purely a throughput device, so every TrialResult —
// steps, exact hitting time, stabilization step, convergence flag — must
// be bit-identical to running each seed alone.
func assertLanesMatchSolo(t *testing.T, name string, sc Scenario, n int, seeds []uint64) {
	t.Helper()
	p, err := NewProtocol(name)
	if err != nil {
		t.Fatal(err)
	}
	if p.Validate(sc) != nil {
		return // scenario rejected (e.g. churn on a fixed-size protocol)
	}
	n = p.FixSize(n)
	l, ok := p.(laneable)
	if !ok {
		t.Fatalf("%s does not implement LaneTrials", name)
	}
	laneRes, err := l.LaneTrials(sc, n, seeds)
	if err != nil {
		t.Fatal(err)
	}
	if len(laneRes) != len(seeds) {
		t.Fatalf("%s n=%d: %d lane results for %d seeds", name, n, len(laneRes), len(seeds))
	}
	for i, seed := range seeds {
		solo, err := p.Trial(sc, n, seed)
		if err != nil {
			t.Fatal(err)
		}
		if laneRes[i] != solo {
			t.Fatalf("%s n=%d seed=%d: lane result diverged\nsolo: %+v\nlane: %+v",
				name, n, seed, solo, laneRes[i])
		}
	}
}

// TestLaneTrialsMatchSolo is the lane-subsystem differential test: for
// every built-in protocol and ring sizes across both pair-table tiers,
// a batch of same-cell trials run as lockstep lanes over one shared
// table set must reproduce the solo path bit-for-bit.
func TestLaneTrialsMatchSolo(t *testing.T) {
	for name, sizes := range diffCells() {
		// Smallest and largest per protocol: both table tiers, fast matrix.
		for _, n := range []int{sizes[0], sizes[len(sizes)-1]} {
			assertLanesMatchSolo(t, name, Scenario{}, n, laneSeeds())
		}
	}
}

// TestLaneTrialsMatchSoloUnderAdversaries extends the lane differential to
// the PR 7 adversarial schedulers and ring dynamics. Stuck-agent cells
// stay on the lane path (each lane runs its generic engine under the lane
// set); fault and churn cells make LaneTrials itself fall back to per-seed
// solo trials — either way the results must be identical to the solo path.
func TestLaneTrialsMatchSoloUnderAdversaries(t *testing.T) {
	scenarios := []Scenario{
		{Sched: &SchedulerSpec{Kind: "biased", Family: "hotspot", HotArcs: 4, Weight: 8}},
		{Sched: &SchedulerSpec{Kind: "biased", Family: "ramp", Weight: 8}},
		{Sched: &SchedulerSpec{Kind: "eclipse", Start: 1, Period: 1 << 30, Duration: 2000, Arcs: 6}},
		{Sched: &SchedulerSpec{Stuck: 2}, Budget: Budget{Scale: 0.02}},
		{Sched: &SchedulerSpec{Churn: []ChurnEvent{{AtStep: 800, Remove: 2}, {AtStep: 2500, Insert: 2}}}},
		{Faults: []Fault{{AtStep: 500, Agents: 3}}},
	}
	cells := map[string]int{
		"ppl": 33, "orient": 33, "yokota": 33, "angluin": 33, "fj": 32, "chenchen": 8,
	}
	for name, n := range cells {
		for _, sc := range scenarios {
			assertLanesMatchSolo(t, name, sc, n, laneSeeds()[:4])
		}
	}
}

// TestLaneTrialsCapacityFallback pins the mid-run interner-overflow
// fallback on the lane path: a Scenario.MaxStates far below the states a
// trial visits makes each lane overflow its interner mid-run and finish on
// its generic engine. The cap is a memory knob, not a semantics one, so
// the capped lane results must match both the capped solo path and the
// uncapped run.
func TestLaneTrialsCapacityFallback(t *testing.T) {
	cells := map[string]int{"ppl": 33, "yokota": 33, "angluin": 33}
	for name, n := range cells {
		capped := Scenario{MaxStates: 8}
		assertLanesMatchSolo(t, name, capped, n, laneSeeds())

		p, err := NewProtocol(name)
		if err != nil {
			t.Fatal(err)
		}
		fn := p.FixSize(n)
		for _, seed := range laneSeeds() {
			withCap, err := p.Trial(capped, fn, seed)
			if err != nil {
				t.Fatal(err)
			}
			unCapped, err := p.Trial(Scenario{}, fn, seed)
			if err != nil {
				t.Fatal(err)
			}
			if withCap != unCapped {
				t.Fatalf("%s n=%d seed=%d: MaxStates changed the trial\ncapped:   %+v\nuncapped: %+v",
					name, fn, seed, withCap, unCapped)
			}
		}
	}
}

// TestLaneTrialsSmallBatches pins the degenerate batch sizes: zero seeds
// and a single seed take the solo path inside LaneTrials and must still
// agree with Trial.
func TestLaneTrialsSmallBatches(t *testing.T) {
	p, err := NewProtocol("ppl")
	if err != nil {
		t.Fatal(err)
	}
	l := p.(laneable)
	if res, err := l.LaneTrials(Scenario{}, p.FixSize(16), nil); err != nil || len(res) != 0 {
		t.Fatalf("empty batch: got (%v, %v)", res, err)
	}
	assertLanesMatchSolo(t, "ppl", Scenario{}, 16, []uint64{7})
}
