package repro

import (
	"bytes"
	"context"
	"testing"
)

// replayExperiment returns the experiment configuration shared by the
// run and replay sides of the ReportFromRecords tests.
func replayExperiment() *Experiment {
	return NewExperiment().
		ProtocolNames("angluin", "fj").
		Sizes(8, 16).
		Trials(3).
		Scenario(Scenario{Faults: []Fault{{AtStep: 50, Agents: 2}}}).
		Metrics(MeanOf("recovery_steps"), CountOf("steps")).
		// MaxSizeFor matches ProtocolInfo.Name, the Table 1 display name.
		MaxSizeFor("[15] Fischer–Jiang", 8)
}

func TestReportFromRecordsMatchesRun(t *testing.T) {
	var buf bytes.Buffer
	sink := NewJSONLSink(&buf)
	rep, err := replayExperiment().Sinks(sink).Run(context.Background())
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	want, err := rep.JSON()
	if err != nil {
		t.Fatalf("rep.JSON: %v", err)
	}

	recs, err := ReadTrialRecords(&buf)
	if err != nil {
		t.Fatalf("ReadTrialRecords: %v", err)
	}
	replayed, err := replayExperiment().ReportFromRecords(recs)
	if err != nil {
		t.Fatalf("ReportFromRecords: %v", err)
	}
	got, err := replayed.JSON()
	if err != nil {
		t.Fatalf("replayed.JSON: %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("replayed report differs from run report:\n--- run ---\n%s\n--- replay ---\n%s", want, got)
	}

	// The renderers must agree too — the service serves all three.
	md1, md2 := rep.Markdown(), replayed.Markdown()
	if md1 != md2 {
		t.Fatal("replayed Markdown differs from run Markdown")
	}
	csv1, err := rep.CSV()
	if err != nil {
		t.Fatalf("rep.CSV: %v", err)
	}
	csv2, err := replayed.CSV()
	if err != nil {
		t.Fatalf("replayed.CSV: %v", err)
	}
	if !bytes.Equal(csv1, csv2) {
		t.Fatal("replayed CSV differs from run CSV")
	}
}

func TestReportFromRecordsRejectsPartialArtifacts(t *testing.T) {
	var buf bytes.Buffer
	sink := NewJSONLSink(&buf)
	if _, err := replayExperiment().Sinks(sink).Run(context.Background()); err != nil {
		t.Fatalf("Run: %v", err)
	}
	recs, err := ReadTrialRecords(&buf)
	if err != nil {
		t.Fatalf("ReadTrialRecords: %v", err)
	}
	if _, err := replayExperiment().ReportFromRecords(recs[:len(recs)-1]); err == nil {
		t.Fatal("ReportFromRecords accepted a partial record set")
	}
	if _, err := replayExperiment().ReportFromRecords(nil); err == nil {
		t.Fatal("ReportFromRecords accepted an empty record set")
	}
}
