package repro

import (
	"context"
	"fmt"
	"strings"

	"repro/internal/harness"
	"repro/internal/runner"
)

// ComparisonResult is the outcome of a Table 1 regeneration: the measured
// convergence steps of every protocol across ring sizes plus the fitted
// scaling exponents.
type ComparisonResult struct {
	// Markdown holds the rendered steps-per-size table followed by the
	// Table 1 summary (assumption, paper bound, fitted exponent, states).
	Markdown string
	// Exponents maps protocol name to the fitted power-law exponent of
	// mean convergence steps against n.
	Exponents map[string]float64
}

// Comparison regenerates the paper's Table 1 empirically: it runs the
// paper's protocol and the four baselines from random adversarial
// configurations across the given ring sizes (trials each) and fits the
// scaling exponents. The [11]-style baseline is included only for sizes
// up to maxChenChen (its original is super-exponential; see DESIGN.md).
//
// This is compute-heavy at larger sizes; sizes of {16, 32, 64} with a
// handful of trials complete in seconds, {128, 256} in minutes. Trials run
// in parallel across all cores (see ComparisonContext for worker control);
// a panicking trial re-panics here, matching the loud failure of a serial
// loop.
func Comparison(sizes []int, trials, maxChenChen int) ComparisonResult {
	res, err := ComparisonContext(context.Background(), sizes, trials, maxChenChen, runner.Options{})
	if err != nil {
		panic(err)
	}
	return res
}

// ComparisonContext is Comparison with cancellation and worker-pool control:
// each protocol's trials fan out through the internal/runner pool, so the
// Θ(n³)-class baselines no longer serialize the whole regeneration. Results
// are byte-identical to serial execution for the same seeds.
func ComparisonContext(ctx context.Context, sizes []int, trials, maxChenChen int, opts runner.Options) (ComparisonResult, error) {
	specs := []harness.Spec{
		harness.AngluinSpec(),
		harness.FJSpec(),
		harness.ChenChenSpec(),
		harness.YokotaSpec(),
		harness.PPLSpec(0, 8, harness.InitRandom),
	}
	all := make([][]harness.Cell, len(specs))
	exps := make(map[string]float64, len(specs))
	for i, spec := range specs {
		sz := sizes
		if spec.Name == "[11] Chen–Chen" {
			sz = nil
			for _, n := range sizes {
				if n <= maxChenChen {
					sz = append(sz, n)
				}
			}
		}
		cells, err := harness.SweepContext(ctx, spec, sz, trials, opts)
		if err != nil {
			return ComparisonResult{}, err
		}
		all[i] = cells
		exps[spec.Name] = harness.Exponent(all[i])
	}
	var b strings.Builder
	b.WriteString("### Mean convergence steps (random adversarial starts)\n\n")
	b.WriteString(harness.Table(specs, all, sizes))
	b.WriteString("\n### Table 1 reproduction\n\n")
	b.WriteString(harness.SummaryTable(specs, all, sizes[len(sizes)-1]))
	fmt.Fprintf(&b, "\nTrials per cell: %d.\n", trials)
	return ComparisonResult{Markdown: b.String(), Exponents: exps}, nil
}
