package repro

import (
	"context"

	"repro/internal/runner"
)

// ComparisonResult is the outcome of a Table 1 regeneration: the measured
// convergence steps of every protocol across ring sizes plus the fitted
// scaling exponents.
//
// Comparison is a thin compatibility shim over the Experiment builder;
// new code should use NewExperiment directly and keep the structured
// Report it returns.
type ComparisonResult struct {
	// Markdown holds the rendered steps-per-size table followed by the
	// Table 1 summary (assumption, paper bound, fitted exponent, states).
	Markdown string
	// Exponents maps protocol name to the fitted power-law exponent of
	// mean convergence steps against n.
	Exponents map[string]float64
}

// Comparison regenerates the paper's Table 1 empirically: it runs the
// paper's protocol and the four baselines from random adversarial
// configurations across the given ring sizes (trials each) and fits the
// scaling exponents. The [11]-style baseline is included only for sizes
// up to maxChenChen (its original is super-exponential; see the package
// comment of internal/chenchen).
//
// This is compute-heavy at larger sizes; sizes of {16, 32, 64} with a
// handful of trials complete in seconds, {128, 256} in minutes. Trials run
// in parallel across all cores (see ComparisonContext for worker control);
// a panicking trial re-panics here, matching the loud failure of a serial
// loop.
func Comparison(sizes []int, trials, maxChenChen int) ComparisonResult {
	res, err := ComparisonContext(context.Background(), sizes, trials, maxChenChen, runner.Options{})
	if err != nil {
		panic(err)
	}
	return res
}

// ComparisonContext is Comparison with cancellation and worker-pool
// control: each protocol's trials fan out through the internal/runner
// pool, so the Θ(n³)-class baselines no longer serialize the whole
// regeneration. Results are byte-identical to serial execution for the
// same seeds.
func ComparisonContext(ctx context.Context, sizes []int, trials, maxChenChen int, opts runner.Options) (ComparisonResult, error) {
	rep, err := NewExperiment().
		ProtocolNames("angluin", "fj", "chenchen", "yokota", "ppl").
		Sizes(sizes...).
		Trials(trials).
		MaxSizeFor("[11] Chen–Chen", maxChenChen).
		Workers(opts.Workers).
		Run(ctx)
	if err != nil {
		return ComparisonResult{}, err
	}
	return ComparisonResult{Markdown: rep.Markdown(), Exponents: rep.Exponents()}, nil
}
