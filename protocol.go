package repro

import (
	"fmt"
	"sort"
	"sync"
)

// ProtocolInfo is a protocol's Table 1 metadata: display name, the
// assumption (knowledge) column, and the paper-cited asymptotic bounds.
type ProtocolInfo struct {
	Name        string `json:"name"`
	Assumption  string `json:"assumption"`
	PaperTime   string `json:"paper_time"`
	PaperStates string `json:"paper_states"`
}

// TrialResult is the outcome of one protocol trial.
type TrialResult struct {
	// N is the (FixSize-adjusted) ring size of the trial.
	N int `json:"n"`
	// Seed is the scheduler seed the trial ran with.
	Seed uint64 `json:"seed"`
	// Steps is the step at which the convergence predicate first held.
	Steps uint64 `json:"steps"`
	// Stabilized is the last step at which the output (leader set) changed.
	Stabilized uint64 `json:"stabilized"`
	// Converged reports whether the predicate held within the budget.
	Converged bool `json:"converged"`
}

// Protocol is the single contract every experimentable protocol satisfies
// — the paper's P_PL and P_OR and the four Table 1 baselines all implement
// it, and external protocols can be added through Register. A Protocol
// bundles the pieces a trial needs: parameter construction for a ring size
// (FixSize, MaxSteps), the initial configuration of a scenario and seed,
// the step function and convergence predicate (both exercised through
// Trial), and the exact state count (States).
//
// Implementations must be safe for concurrent Trial calls: the Experiment
// runner fans trials of one Protocol value out across a worker pool.
type Protocol interface {
	// Info returns the protocol's Table 1 metadata.
	Info() ProtocolInfo
	// States returns the exact per-agent state count |Q| at ring size n.
	States(n int) uint64
	// FixSize adjusts a requested ring size to the nearest one the
	// protocol's assumption admits (identity for most protocols).
	FixSize(n int) int
	// MaxSteps returns the default per-trial step budget at ring size n —
	// the paper's w.h.p. bound with a generous constant.
	MaxSteps(n int) uint64
	// Validate reports whether the protocol supports the scenario (init
	// class, topology, fault schedule).
	Validate(sc Scenario) error
	// Trial runs one trial of the scenario at ring size n (already
	// FixSize-adjusted) with the given scheduler seed. The error is
	// non-nil only for scenarios Validate rejects.
	Trial(sc Scenario, n int, seed uint64) (TrialResult, error)
}

// TrialSeed is the deterministic scheduler seed of trial index trial at
// ring size n. Every execution path — serial or parallel, library or
// command — derives seeds through this function, which is what makes
// parallel experiments byte-identical to serial ones.
func TrialSeed(n, trial int) uint64 {
	return uint64(n)*1_000_003 + uint64(trial)
}

// registry is the named protocol catalogue behind Register/Protocols.
var registry = struct {
	sync.RWMutex
	factories map[string]func() Protocol
}{factories: make(map[string]func() Protocol)}

// Register adds a named protocol factory to the catalogue, making it
// available to NewProtocol and Experiment.ProtocolNames. Registering a
// name twice is an error; the built-in names are "ppl", "orient",
// "yokota", "angluin", "fj" and "chenchen".
func Register(name string, factory func() Protocol) error {
	if name == "" || factory == nil {
		return fmt.Errorf("repro: Register needs a name and a factory")
	}
	registry.Lock()
	defer registry.Unlock()
	if _, dup := registry.factories[name]; dup {
		return fmt.Errorf("repro: protocol %q already registered", name)
	}
	registry.factories[name] = factory
	return nil
}

// mustRegister is Register for the built-in protocols, whose names cannot
// collide.
func mustRegister(name string, factory func() Protocol) {
	if err := Register(name, factory); err != nil {
		panic(err)
	}
}

// Protocols returns the sorted names of every registered protocol.
func Protocols() []string {
	registry.RLock()
	defer registry.RUnlock()
	names := make([]string, 0, len(registry.factories))
	for name := range registry.factories {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// NewProtocol instantiates a registered protocol by name.
func NewProtocol(name string) (Protocol, error) {
	registry.RLock()
	factory, ok := registry.factories[name]
	registry.RUnlock()
	if !ok {
		return nil, fmt.Errorf("repro: unknown protocol %q (registered: %v)", name, Protocols())
	}
	return factory(), nil
}
