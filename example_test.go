package repro_test

import (
	"fmt"

	"repro"
)

// Elect a unique leader on a 32-agent directed ring starting from an
// adversarial configuration. With fixed seeds the run is fully
// deterministic.
func ExampleRingElection() {
	e := repro.NewRingElection(32, repro.WithSeed(7))
	e.InitRandom(42)
	_, ok := e.RunToSafe(0)
	leader, unique := e.Leader()
	fmt.Println(ok, unique, leader, e.Safe())
	// Output: true true 14 true
}

// Recover from a transient-fault burst: corrupt half the ring and let the
// protocol heal itself.
func ExampleRingElection_faultRecovery() {
	e := repro.NewRingElection(16, repro.WithSeed(3))
	e.InitPerfect(0)
	e.InjectFaults(8)
	_, recovered := e.RunToSafe(0)
	fmt.Println(recovered, e.LeaderCount())
	// Output: true 1
}

// Agree on a common direction on an undirected ring (Section 5), the
// precondition for running the directed-ring election.
func ExampleRingOrientation() {
	o := repro.NewRingOrientation(24, repro.WithSeed(5))
	_, ok := o.RunToOriented(0)
	fmt.Println(ok, o.Oriented())
	// Output: true true
}
