package repro_test

import (
	"context"
	"fmt"
	"strings"

	"repro"
)

// Elect a unique leader on a 32-agent directed ring starting from an
// adversarial configuration. With fixed seeds the run is fully
// deterministic.
func ExampleRingElection() {
	e := repro.NewRingElection(32, repro.WithSeed(7))
	e.InitRandom(42)
	_, ok := e.RunToSafe(0)
	leader, unique := e.Leader()
	fmt.Println(ok, unique, leader, e.Safe())
	// Output: true true 14 true
}

// Recover from a transient-fault burst: corrupt half the ring and let the
// protocol heal itself.
func ExampleRingElection_faultRecovery() {
	e := repro.NewRingElection(16, repro.WithSeed(3))
	e.InitPerfect(0)
	e.InjectFaults(8)
	_, recovered := e.RunToSafe(0)
	fmt.Println(recovered, e.LeaderCount())
	// Output: true 1
}

// Run a small experiment through the public builder API: the paper's
// protocol against the [28] baseline, three sizes, deterministic seeds,
// rendered as the markdown Table 1 layout. The same Report also renders
// as JSON and CSV.
func ExampleExperiment() {
	rep, err := repro.NewExperiment().
		ProtocolNames("yokota", "ppl").
		Sizes(8, 16, 32).
		Trials(2).
		Run(context.Background())
	if err != nil {
		fmt.Println(err)
		return
	}
	md := rep.Markdown()
	fmt.Println(len(rep.Rows),
		strings.Contains(md, "### Table 1 reproduction"),
		strings.Contains(md, "P_PL (this work)"),
		rep.Rows[0].ExponentOK)
	// Output: 2 true true true
}

// Agree on a common direction on an undirected ring (Section 5), the
// precondition for running the directed-ring election.
func ExampleRingOrientation() {
	o := repro.NewRingOrientation(24, repro.WithSeed(5))
	_, ok := o.RunToOriented(0)
	fmt.Println(ok, o.Oriented())
	// Output: true true
}
