package repro

import (
	"bufio"
	"compress/gzip"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"sync"
)

// RotateOptions configures a RotatingJSONLSink.
type RotateOptions struct {
	// MaxBytes rotates to a fresh segment once the current one holds at
	// least this many bytes of encoded records (pre-compression); 0 selects
	// DefaultSegmentBytes. A single record larger than the limit still goes
	// out whole — segments are record-aligned, records are never split.
	MaxBytes int64
	// Compress gzip-compresses each segment (and appends ".gz" to the
	// segment names). Every finalized segment is an independently valid
	// gzip stream, so consumers can decompress segments in isolation.
	Compress bool
}

// DefaultSegmentBytes is the segment-size limit a zero RotateOptions.MaxBytes
// selects: 64 MiB of encoded records per segment.
const DefaultSegmentBytes int64 = 64 << 20

// RotatingJSONLSink streams TrialRecords as JSON Lines across a sequence
// of bounded segment files — the servable artifact form for sweeps whose
// record volume must not accumulate into one unbounded file. Segments are
// named from the base path by inserting a zero-padded index before the
// extension ("records.jsonl" → "records-00000.jsonl",
// "records-00001.jsonl", …; with compression each gains a ".gz" suffix),
// rotate at a configurable byte limit on record boundaries, and are
// finalized — buffered data flushed, gzip stream closed, file fsynced and
// closed — both at rotation and in Close.
//
// Close finalizes the last segment even when an earlier Record call
// failed mid-write: whatever reached the sink durably lands on disk, so
// an aborted sweep still leaves every segment flushed, fsynced and
// well-formed up to the failure point. Record and Close are safe for
// concurrent use, like JSONLSink.
type RotatingJSONLSink struct {
	opts RotateOptions
	dir  string
	stem string // base name without extension
	ext  string // extension including the dot, ".jsonl" typically

	mu       sync.Mutex
	file     segmentFile
	gz       *gzip.Writer
	bw       *bufio.Writer
	segIdx   int
	segBytes int64
	segments []string
	count    int64
	closed   bool
	writeErr error // sticky first mid-write error; Close still finalizes

	// create opens a segment file; tests substitute failing writers to
	// exercise the finalize-on-error contract.
	create func(path string) (segmentFile, error)
}

// segmentFile is the slice of *os.File a segment needs: writes, a durable
// flush, and a close.
type segmentFile interface {
	io.Writer
	Sync() error
	Close() error
}

// CreateRotatingJSONL creates a rotating (and optionally gzip-compressed)
// JSONL sink writing segments derived from the base path: the first
// segment is created immediately, so artifact directories are visible as
// soon as the sink exists. The base path's directory must exist.
func CreateRotatingJSONL(base string, opts RotateOptions) (*RotatingJSONLSink, error) {
	if opts.MaxBytes <= 0 {
		opts.MaxBytes = DefaultSegmentBytes
	}
	ext := filepath.Ext(base)
	stem := strings.TrimSuffix(filepath.Base(base), ext)
	if ext == "" {
		ext = ".jsonl"
	}
	s := &RotatingJSONLSink{
		opts: opts,
		dir:  filepath.Dir(base),
		stem: stem,
		ext:  ext,
		create: func(path string) (segmentFile, error) {
			return os.Create(path)
		},
	}
	if err := s.openSegment(); err != nil {
		return nil, err
	}
	return s, nil
}

// segmentPath returns the path of segment i.
func (s *RotatingJSONLSink) segmentPath(i int) string {
	name := fmt.Sprintf("%s-%05d%s", s.stem, i, s.ext)
	if s.opts.Compress {
		name += ".gz"
	}
	return filepath.Join(s.dir, name)
}

// openSegment opens the next segment file; callers hold the mutex (or own
// the sink exclusively, as in CreateRotatingJSONL).
func (s *RotatingJSONLSink) openSegment() error {
	path := s.segmentPath(s.segIdx)
	f, err := s.create(path)
	if err != nil {
		return err
	}
	s.file = f
	var w io.Writer = f
	if s.opts.Compress {
		s.gz = gzip.NewWriter(f)
		w = s.gz
	}
	s.bw = bufio.NewWriter(w)
	s.segBytes = 0
	s.segments = append(s.segments, path)
	return nil
}

// finalizeSegment flushes, closes the gzip stream, fsyncs and closes the
// current segment, returning the first error but attempting every step —
// a failed flush must not leave the file descriptor open or unsynced.
func (s *RotatingJSONLSink) finalizeSegment() error {
	if s.file == nil {
		return nil
	}
	var first error
	keep := func(err error) {
		if err != nil && first == nil {
			first = err
		}
	}
	keep(s.bw.Flush())
	if s.gz != nil {
		keep(s.gz.Close())
		s.gz = nil
	}
	keep(s.file.Sync())
	keep(s.file.Close())
	s.file = nil
	s.bw = nil
	return first
}

// Record implements Sink: it encodes rec onto the current segment,
// rotating first when the segment is full. After a mid-write error the
// sink goes inert — further Records return the same error — but Close
// still finalizes the last segment.
func (s *RotatingJSONLSink) Record(rec TrialRecord) error {
	data, err := json.Marshal(rec)
	if err != nil {
		return err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return fmt.Errorf("repro: RotatingJSONLSink is closed")
	}
	if s.writeErr != nil {
		return s.writeErr
	}
	line := int64(len(data)) + 1
	if s.segBytes > 0 && s.segBytes+line > s.opts.MaxBytes {
		if err := s.finalizeSegment(); err != nil {
			s.writeErr = err
			return err
		}
		s.segIdx++
		if err := s.openSegment(); err != nil {
			s.writeErr = err
			return err
		}
	}
	if _, err := s.bw.Write(data); err != nil {
		s.writeErr = err
		return err
	}
	if err := s.bw.WriteByte('\n'); err != nil {
		s.writeErr = err
		return err
	}
	s.segBytes += line
	s.count++
	return nil
}

// Count returns the number of records written so far.
func (s *RotatingJSONLSink) Count() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.count
}

// Segments returns the segment paths created so far, in write order.
func (s *RotatingJSONLSink) Segments() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]string(nil), s.segments...)
}

// Close implements Sink: it finalizes the last segment — flush, gzip
// trailer, fsync, close — unconditionally, including after a mid-write
// error (the error-recovery half of the Sink contract: an aborting
// Experiment still Closes every sink, and whatever was durably written
// must survive). Close returns the sticky write error when one occurred,
// otherwise the first finalization error. Closing twice is a no-op.
func (s *RotatingJSONLSink) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil
	}
	s.closed = true
	ferr := s.finalizeSegment()
	if s.writeErr != nil {
		return s.writeErr
	}
	return ferr
}
