package repro_test

import (
	"bytes"
	"compress/gzip"
	"errors"
	"regexp"
	"strconv"
	"testing"

	"repro"
)

// gzipRecords builds a well-formed gzip JSONL artifact with n records.
func gzipRecords(t *testing.T, n int) []byte {
	t.Helper()
	var buf bytes.Buffer
	gz := gzip.NewWriter(&buf)
	sink := repro.NewJSONLSink(gz)
	for i := 0; i < n; i++ {
		if err := sink.Record(repro.TrialRecord{Protocol: "ppl", N: 8, Trial: i}); err != nil {
			t.Fatalf("record: %v", err)
		}
	}
	if err := sink.Close(); err != nil {
		t.Fatalf("close sink: %v", err)
	}
	if err := gz.Close(); err != nil {
		t.Fatalf("close gzip: %v", err)
	}
	return buf.Bytes()
}

// TestReadTrialRecordsTruncatedGzip pins the truncation contract: a gzip
// artifact cut short — the torn-write / killed-upload shape — surfaces as
// ErrTruncatedRecords carrying the byte offset where the compressed input
// ended, not a bare "unexpected EOF".
func TestReadTrialRecordsTruncatedGzip(t *testing.T) {
	whole := gzipRecords(t, 50)

	// Sanity: the intact artifact decodes.
	if recs, err := repro.ReadTrialRecords(bytes.NewReader(whole)); err != nil || len(recs) != 50 {
		t.Fatalf("intact artifact: %d records, err %v", len(recs), err)
	}

	offsetRE := regexp.MustCompile(`byte offset (\d+)`)
	for _, cut := range []int{len(whole) / 2, len(whole) - 4, len(whole) - 1} {
		torn := whole[:cut]
		_, err := repro.ReadTrialRecords(bytes.NewReader(torn))
		if !errors.Is(err, repro.ErrTruncatedRecords) {
			t.Fatalf("cut at %d: err = %v, want ErrTruncatedRecords", cut, err)
		}
		m := offsetRE.FindStringSubmatch(err.Error())
		if m == nil {
			t.Fatalf("cut at %d: error %q carries no byte offset", cut, err)
		}
		off, _ := strconv.Atoi(m[1])
		if off <= 0 || off > cut {
			t.Fatalf("cut at %d: reported offset %d outside (0, %d]", cut, off, cut)
		}
	}

	// A header so short the sniff can't even see magic bytes is not gzip;
	// it decodes as (empty) plain JSONL rather than erroring.
	if recs, err := repro.ReadTrialRecords(bytes.NewReader(whole[:1])); err == nil && len(recs) != 0 {
		t.Fatalf("1-byte input produced %d records", len(recs))
	}

	// Truncation mid-gzip-header (magic visible, member unreadable).
	if _, err := repro.ReadTrialRecords(bytes.NewReader(whole[:3])); !errors.Is(err, repro.ErrTruncatedRecords) {
		t.Fatalf("3-byte header: err = %v, want ErrTruncatedRecords", err)
	}
}
