package repro_test

import (
	"context"
	"encoding/json"
	"math"
	"strings"
	"testing"

	"repro"
)

// TestMetricAggregations pins every aggregator against hand-computed
// values, using the deterministic stub protocol (steps = n² + seed mod n).
func TestMetricAggregations(t *testing.T) {
	rep, err := repro.NewExperiment().
		Protocols(stubProtocol{}).
		Sizes(8).
		Trials(4).
		Metrics(
			repro.MeanOf("steps"),
			repro.MedianOf("steps"),
			repro.MinOf("steps"),
			repro.MaxOf("steps"),
			repro.SumOf("steps"),
			repro.CountOf("steps"),
			repro.P90Of("steps"),
			repro.Metric{Observable: "steps", Agg: "std", Label: "spread"},
		).
		Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	cell := rep.Rows[0].Cells[0]
	// Seeds TrialSeed(8, 0..3) = 8000024..8000027; steps = 64 + seed%8.
	var want []float64
	for tr := 0; tr < 4; tr++ {
		want = append(want, 64+float64(repro.TrialSeed(8, tr)%8))
	}
	mean := (want[0] + want[1] + want[2] + want[3]) / 4
	checks := map[string]float64{
		"mean(steps)":   mean,
		"min(steps)":    64,
		"max(steps)":    67,
		"sum(steps)":    4 * mean,
		"count(steps)":  4,
		"median(steps)": 65.5,
	}
	for label, wantV := range checks {
		if got, ok := cell.Metrics[label]; !ok || math.Abs(got-wantV) > 1e-9 {
			t.Errorf("%s = %v (present %v), want %v; trials %v", label, got, ok, wantV, want)
		}
	}
	if _, ok := cell.Metrics["spread"]; !ok {
		t.Errorf("custom label missing: %v", cell.Metrics)
	}
	if _, ok := cell.Metrics["p90(steps)"]; !ok {
		t.Errorf("p90 missing: %v", cell.Metrics)
	}
	if len(rep.Metrics) != 8 {
		t.Fatalf("report metric labels: %v", rep.Metrics)
	}
}

// TestMetricRecoverySteps is the end-to-end acceptance path: a
// fault-injection sweep ranked on recovery time after the last burst, with
// the metric rendered in markdown and JSON.
func TestMetricRecoverySteps(t *testing.T) {
	rep, err := repro.NewExperiment().
		ProtocolNames("ppl").
		Sizes(8, 16).
		Trials(3).
		Scenario(repro.Scenario{Faults: []repro.Fault{{AtStep: 300, Agents: 4}}}).
		Metrics(repro.MeanOf("recovery_steps"), repro.MaxOf("leaders_peak")).
		Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	for _, cell := range rep.Rows[0].Cells {
		rc, ok := cell.Metrics["mean(recovery_steps)"]
		if !ok || rc <= 0 {
			t.Fatalf("recovery metric missing from cell n=%d: %v", cell.N, cell.Metrics)
		}
		if rc >= cell.Steps.Mean {
			t.Fatalf("n=%d: mean recovery %v not below mean steps %v with a burst at 300", cell.N, rc, cell.Steps.Mean)
		}
		if pk, ok := cell.Metrics["max(leaders_peak)"]; !ok || pk < 1 {
			t.Fatalf("peak-leaders metric missing: %v", cell.Metrics)
		}
	}
	md := rep.Markdown()
	if !strings.Contains(md, "### Metric: mean(recovery_steps)") {
		t.Fatalf("metric table missing from markdown:\n%s", md)
	}
	data, err := rep.JSON()
	if err != nil {
		t.Fatal(err)
	}
	var back repro.Report
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if len(back.Metrics) != 2 || back.Rows[0].Cells[0].Metrics["mean(recovery_steps)"] == 0 {
		t.Fatalf("metrics lost in JSON round trip: %+v", back.Metrics)
	}
}

// TestMetricAbsentObservable: a metric over an observable no trial carries
// renders as missing, never as zero.
func TestMetricAbsentObservable(t *testing.T) {
	rep, err := repro.NewExperiment().
		Protocols(stubProtocol{}). // plain Protocol: scalar observables only
		Sizes(8).
		Trials(2).
		Metrics(repro.MeanOf("leaders_peak")).
		Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	cell := rep.Rows[0].Cells[0]
	if _, ok := cell.Metrics["mean(leaders_peak)"]; ok {
		t.Fatalf("metric fabricated a value with no samples: %v", cell.Metrics)
	}
	if !strings.Contains(rep.Markdown(), "### Metric: mean(leaders_peak)") {
		t.Fatal("metric table heading missing")
	}
	if !strings.Contains(rep.Markdown(), "| — |") {
		t.Fatal("absent metric cell must render as missing")
	}
}

// TestStreamRejectsMetrics: metric aggregation needs the in-memory
// Report, so Stream must refuse up front rather than silently dropping
// the metrics after an expensive sweep.
func TestStreamRejectsMetrics(t *testing.T) {
	err := repro.NewExperiment().
		ProtocolNames("ppl").
		Sizes(8).
		Metrics(repro.MeanOf("recovery_steps")).
		Sinks(&memSink{}).
		Stream(context.Background())
	if err == nil || !strings.Contains(err.Error(), "Metrics") {
		t.Fatalf("Stream with metrics: %v", err)
	}
}

// TestMetricValidation: malformed metrics fail at Run time.
func TestMetricValidation(t *testing.T) {
	if _, err := repro.NewExperiment().
		ProtocolNames("ppl").Sizes(8).
		Metrics(repro.Metric{Observable: "steps", Agg: "geomean"}).
		Run(context.Background()); err == nil {
		t.Fatal("unknown aggregation accepted")
	}
	if _, err := repro.NewExperiment().
		ProtocolNames("ppl").Sizes(8).
		Metrics(repro.Metric{Agg: "mean"}).
		Run(context.Background()); err == nil {
		t.Fatal("metric without observable accepted")
	}
}
