package repro

import (
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"

	"repro/internal/population"
	"repro/internal/sched"
)

// SchedulerSpec describes a scenario's scheduler and ring dynamics: the
// arc-draw distribution (uniform, biased weight families, periodic
// eclipses of an arc interval) plus churn (agents joining and leaving
// mid-run) and stuck agents. A nil spec — and the zero Scenario — is
// the historical uniform-random scheduler on a static ring, down to the
// exact RNG stream; an explicit "uniform" kind draws the byte-identical
// stream through the scheduler plumbing (pinned by the differential
// tests). Like InitClass and Topology, the spec round-trips through
// JSON and is part of the scenario's identity — the service's cell
// digests cover it, so scheduler-differing jobs never alias in the
// cache.
type SchedulerSpec struct {
	// Kind selects the arc distribution: "" (default uniform fast path),
	// "uniform" (explicit uniform through the scheduler plumbing),
	// "biased" or "eclipse".
	Kind string `json:"kind,omitempty"`

	// Family selects the biased weight family: "hotspot" (the first
	// HotArcs arcs carry Weight× the unit weight) or "ramp" (weights
	// rise linearly around the ring from 1 to Weight).
	Family string `json:"family,omitempty"`
	// HotArcs is the hotspot family's hot-arc count.
	HotArcs int `json:"hot_arcs,omitempty"`
	// Weight is the biased families' weight parameter.
	Weight float64 `json:"weight,omitempty"`

	// Start is the step at which the first eclipse window opens.
	Start uint64 `json:"start,omitempty"`
	// Period is the step distance between eclipse window starts.
	Period uint64 `json:"period,omitempty"`
	// Duration is the window length in steps; 0 < Duration < Period.
	Duration uint64 `json:"duration,omitempty"`
	// Arcs is the width of the eclipsed (dead) arc interval; clamped so
	// at least one arc survives.
	Arcs int `json:"arcs,omitempty"`
	// Offset is the first dead arc's index (mod the arc count).
	Offset int `json:"offset,omitempty"`

	// Churn schedules mid-run agent departures and arrivals with ring
	// re-splicing. Orthogonal to Kind; rejected by protocols whose
	// construction is pinned to a fixed ring size (P_OR's two-hop
	// coloring, the oracle-census baselines).
	Churn []ChurnEvent `json:"churn,omitempty"`
	// Stuck freezes that many randomly chosen agents for the whole
	// trial: a stuck agent never updates its state in either interaction
	// role. Clamped to n-1.
	Stuck int `json:"stuck,omitempty"`
}

// ChurnEvent is one ring-dynamics event: at step AtStep, Remove randomly
// chosen agents leave (the ring re-splices around them, never shrinking
// below 3 agents) and then Insert newcomers join at random positions,
// each initialized by corrupting its clockwise neighbor's state — a
// fresh agent in an arbitrary state, exactly what self-stabilization
// must absorb.
type ChurnEvent struct {
	AtStep uint64 `json:"at_step"`
	Remove int    `json:"remove,omitempty"`
	Insert int    `json:"insert,omitempty"`
}

// schedKinds are the accepted SchedulerSpec.Kind values.
var schedKinds = map[string]bool{"": true, "uniform": true, "biased": true, "eclipse": true}

// Validate reports whether the spec is well-formed, independent of any
// protocol or ring size. A nil spec is valid (the default scheduler).
func (s *SchedulerSpec) Validate() error {
	if s == nil {
		return nil
	}
	if !schedKinds[s.Kind] {
		return fmt.Errorf("repro: unknown scheduler kind %q (want uniform, biased or eclipse)", s.Kind)
	}
	switch s.Kind {
	case "biased":
		switch s.Family {
		case "hotspot":
			if s.HotArcs < 1 {
				return fmt.Errorf("repro: biased hotspot scheduler needs hot_arcs >= 1, got %d", s.HotArcs)
			}
		case "ramp":
			// Weight alone parameterizes the ramp.
		default:
			return fmt.Errorf("repro: unknown biased family %q (want hotspot or ramp)", s.Family)
		}
		if !(s.Weight > 0) || math.IsInf(s.Weight, 0) {
			return fmt.Errorf("repro: biased scheduler needs a positive finite weight, got %v", s.Weight)
		}
	case "eclipse":
		if s.Period == 0 || s.Duration == 0 || s.Duration >= s.Period {
			return fmt.Errorf("repro: eclipse scheduler needs 0 < duration < period, got duration=%d period=%d", s.Duration, s.Period)
		}
		if s.Arcs < 1 {
			return fmt.Errorf("repro: eclipse scheduler needs arcs >= 1, got %d", s.Arcs)
		}
	default:
		if s.Family != "" || s.HotArcs != 0 || s.Weight != 0 || s.Period != 0 || s.Duration != 0 || s.Arcs != 0 || s.Offset != 0 || s.Start != 0 {
			return fmt.Errorf("repro: scheduler kind %q takes no distribution parameters", s.Kind)
		}
	}
	for _, c := range s.Churn {
		if c.Remove < 0 || c.Insert < 0 {
			return fmt.Errorf("repro: churn event at step %d removes %d / inserts %d agents", c.AtStep, c.Remove, c.Insert)
		}
		if c.Remove == 0 && c.Insert == 0 {
			return fmt.Errorf("repro: churn event at step %d does nothing", c.AtStep)
		}
	}
	if s.Stuck < 0 {
		return fmt.Errorf("repro: stuck agent count %d is negative", s.Stuck)
	}
	return nil
}

// hasChurn reports whether the spec schedules any churn (nil-safe).
func (s *SchedulerSpec) hasChurn() bool { return s != nil && len(s.Churn) > 0 }

// sortedChurn returns the churn schedule in firing order without
// mutating the spec.
func (s *SchedulerSpec) sortedChurn() []ChurnEvent {
	if !s.hasChurn() {
		return nil
	}
	out := make([]ChurnEvent, len(s.Churn))
	copy(out, s.Churn)
	sort.SliceStable(out, func(i, j int) bool { return out[i].AtStep < out[j].AtStep })
	return out
}

// compileArcSched builds the spec's arc scheduler for a ring with nArcs
// arcs, or nil when the default uniform fast path should run (nil spec
// or empty kind). The spec must have passed Validate; the remaining
// failure modes are impossible for validated specs, so they panic.
func (s *SchedulerSpec) compileArcSched(nArcs int) population.ArcScheduler {
	if s == nil {
		return nil
	}
	switch s.Kind {
	case "":
		return nil
	case "uniform":
		return sched.Uniform{NArcs: nArcs}
	case "biased":
		var weights []float64
		if s.Family == "hotspot" {
			hot := s.HotArcs
			if hot > nArcs {
				hot = nArcs
			}
			weights = sched.HotspotWeights(nArcs, hot, s.Weight)
		} else {
			weights = sched.RampWeights(nArcs, s.Weight)
		}
		b, err := sched.NewBiased(weights)
		if err != nil {
			panic(fmt.Sprintf("repro: validated biased spec failed to compile: %v", err))
		}
		return b
	case "eclipse":
		e, err := sched.NewEclipse(nArcs, s.Start, s.Period, s.Duration, s.Offset, s.Arcs)
		if err != nil {
			panic(fmt.Sprintf("repro: validated eclipse spec failed to compile: %v", err))
		}
		return e
	default:
		panic(fmt.Sprintf("repro: validated scheduler spec has unknown kind %q", s.Kind))
	}
}

// ParseSchedulerSpec parses the compact command-line scheduler grammar
// used by cmd/ringsim and cmd/sweep:
//
//	uniform
//	hotspot:arcs=K,weight=W
//	ramp:weight=W
//	eclipse:period=P,duration=D,arcs=K[,offset=O][,start=S]
//
// An empty string yields a nil spec (the default scheduler). Churn and
// stuck dynamics are separate flags — see ParseChurnSpec — and are
// merged into the returned spec by the caller.
func ParseSchedulerSpec(text string) (*SchedulerSpec, error) {
	text = strings.TrimSpace(text)
	if text == "" {
		return nil, nil
	}
	head, params, hasParams := strings.Cut(text, ":")
	spec := &SchedulerSpec{}
	switch head {
	case "uniform":
		spec.Kind = "uniform"
		if hasParams {
			return nil, fmt.Errorf("repro: uniform scheduler takes no parameters, got %q", params)
		}
		return spec, nil
	case "hotspot", "ramp":
		spec.Kind = "biased"
		spec.Family = head
	case "eclipse":
		spec.Kind = "eclipse"
	default:
		return nil, fmt.Errorf("repro: unknown scheduler %q (want uniform, hotspot, ramp or eclipse)", head)
	}
	if hasParams {
		for _, kv := range strings.Split(params, ",") {
			key, val, ok := strings.Cut(strings.TrimSpace(kv), "=")
			if !ok {
				return nil, fmt.Errorf("repro: scheduler parameter %q is not key=value", kv)
			}
			if err := spec.setParam(key, val); err != nil {
				return nil, err
			}
		}
	}
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	return spec, nil
}

// setParam assigns one parsed key=value scheduler parameter.
func (s *SchedulerSpec) setParam(key, val string) error {
	switch key {
	case "weight":
		w, err := strconv.ParseFloat(val, 64)
		if err != nil {
			return fmt.Errorf("repro: scheduler weight %q: %v", val, err)
		}
		s.Weight = w
		return nil
	case "arcs":
		k, err := strconv.Atoi(val)
		if err != nil {
			return fmt.Errorf("repro: scheduler arcs %q: %v", val, err)
		}
		if s.Kind == "biased" {
			s.HotArcs = k
		} else {
			s.Arcs = k
		}
		return nil
	case "period", "duration", "start":
		v, err := strconv.ParseUint(val, 10, 64)
		if err != nil {
			return fmt.Errorf("repro: scheduler %s %q: %v", key, val, err)
		}
		switch key {
		case "period":
			s.Period = v
		case "duration":
			s.Duration = v
		default:
			s.Start = v
		}
		return nil
	case "offset":
		o, err := strconv.Atoi(val)
		if err != nil {
			return fmt.Errorf("repro: scheduler offset %q: %v", val, err)
		}
		s.Offset = o
		return nil
	default:
		return fmt.Errorf("repro: unknown scheduler parameter %q", key)
	}
}

// ParseChurnSpec parses the command-line churn grammar: a comma list of
// del<K>@<STEP> and add<K>@<STEP> events, e.g. "del2@5000,add2@9000".
// An empty string yields no events.
func ParseChurnSpec(text string) ([]ChurnEvent, error) {
	text = strings.TrimSpace(text)
	if text == "" {
		return nil, nil
	}
	var out []ChurnEvent
	for _, tok := range strings.Split(text, ",") {
		tok = strings.TrimSpace(tok)
		var op string
		switch {
		case strings.HasPrefix(tok, "del"):
			op = "del"
		case strings.HasPrefix(tok, "add"):
			op = "add"
		default:
			return nil, fmt.Errorf("repro: churn event %q must start with del or add", tok)
		}
		body := tok[len(op):]
		countStr, stepStr, ok := strings.Cut(body, "@")
		if !ok {
			return nil, fmt.Errorf("repro: churn event %q is not %s<count>@<step>", tok, op)
		}
		count, err := strconv.Atoi(countStr)
		if err != nil || count < 1 {
			return nil, fmt.Errorf("repro: churn event %q needs a positive count", tok)
		}
		step, err := strconv.ParseUint(stepStr, 10, 64)
		if err != nil {
			return nil, fmt.Errorf("repro: churn event %q step: %v", tok, err)
		}
		ev := ChurnEvent{AtStep: step}
		if op == "del" {
			ev.Remove = count
		} else {
			ev.Insert = count
		}
		out = append(out, ev)
	}
	return out, nil
}
