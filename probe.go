package repro

// This file is the per-trial half of the streaming observation API: typed
// TrialEvents, the Probe that receives them, the TrialRecord a trial
// distills into, and the ProbedProtocol contract built-in protocols
// implement. The cross-trial half — Sinks that consume TrialRecords as
// workers finish — lives in sink.go; composable report aggregation over
// record observables lives in metric.go.

// EventKind classifies a TrialEvent.
type EventKind string

const (
	// EventLeaderChange reports the leader count: once at step 0 with the
	// initial count, then after every interaction that changes the leader
	// set. Emitted only by protocols that track a leader output (all
	// election protocols; not P_OR).
	EventLeaderChange EventKind = "leaders"
	// EventEpoch marks the start of a fault epoch: epoch 0 at the trial
	// start, epoch i immediately after the i-th fault burst installs. The
	// run after the last epoch event is the recovery the
	// self-stabilization question asks about.
	EventEpoch EventKind = "epoch"
	// EventFault reports a fault burst right after its corrupted states
	// install.
	EventFault EventKind = "fault"
	// EventConverged reports the exact hitting time of the protocol's
	// convergence predicate. At most one per trial; absent when the budget
	// runs out first.
	EventConverged EventKind = "converged"
	// EventChannels carries the named convergence-tracker channel counts
	// (leaders, live bullets, distance violations, … — see each internal
	// spec), sampled once when the run phase ends: at the convergence step,
	// or at budget exhaustion, where the counts say how far from converged
	// the ring still was.
	EventChannels EventKind = "channels"
	// EventSchedPhase marks a scheduler phase transition — an eclipse
	// window opening (Eclipsed true) or closing (Eclipsed false) — at its
	// exact boundary step. Emitted only for scenarios with a phased
	// scheduler; a transition the trial converges short of is never
	// reached and never emitted.
	EventSchedPhase EventKind = "sched_phase"
	// EventChurn reports a ring-dynamics splice right after the new
	// topology installs: how many agents left and joined, and the live
	// agent count afterwards.
	EventChurn EventKind = "churn"
)

// TrialEvent is one typed observation inside a trial. Step is the engine
// step count at the event; the other fields are kind-specific and zero
// elsewhere.
type TrialEvent struct {
	Kind EventKind `json:"kind"`
	Step uint64    `json:"step"`
	// Leaders is the leader count after the event, for leader-change,
	// fault and converged events of leader-tracking protocols; -1 when the
	// protocol has no leader output.
	Leaders int `json:"leaders,omitempty"`
	// Agents is the number of corrupted agents of a fault event.
	Agents int `json:"agents,omitempty"`
	// Epoch is the fault-epoch index of an epoch event, or the scheduler
	// phase ordinal of a sched_phase event.
	Epoch int `json:"epoch,omitempty"`
	// Counts holds the named tracker channel counts of a channels event.
	Counts map[string]float64 `json:"counts,omitempty"`
	// Eclipsed reports, for a sched_phase event, whether the phase that
	// begins at Step is an eclipse (some arcs dead).
	Eclipsed bool `json:"eclipsed,omitempty"`
	// Removed and Inserted are the agent counts of a churn event's splice;
	// Live is the ring size after it.
	Removed  int `json:"removed,omitempty"`
	Inserted int `json:"inserted,omitempty"`
	Live     int `json:"live,omitempty"`
}

// Probe receives the typed event stream of one trial. A fresh Probe value
// is used per trial (the Experiment builds one per trial through
// ProbeWith), so implementations need no internal locking: Begin, every
// Observe and End are called sequentially from the single goroutine
// running that trial, in step order.
//
// Events are sampled O(1) off the engine's incremental trackers — a probe
// never forces a configuration scan, and a trial's RNG stream, hitting
// time and TrialResult are bit-for-bit identical with or without a probe
// attached.
type Probe interface {
	// Begin is called once, before the trial executes any scheduler step.
	Begin(protocol string, n int, seed uint64)
	// Observe is called after each event, in step order.
	Observe(ev TrialEvent)
	// End is called once, after the run phase, with the trial's legacy
	// scalar outcome.
	End(res TrialResult)
}

// ProbedProtocol is the observation superset of Protocol: a ProbedTrial is
// a Trial that additionally streams typed events to the probe. All
// built-in protocols implement it; external registrants that only satisfy
// Protocol keep compiling and working — ProbeTrial (and the Experiment)
// fall back to the plain Trial and a scalars-only record for them.
type ProbedProtocol interface {
	Protocol
	// ProbedTrial runs one trial exactly as Trial would — same seeds, same
	// RNG stream, same TrialResult — streaming events to probe along the
	// way. A nil probe is allowed and makes it equivalent to Trial.
	ProbedTrial(sc Scenario, n int, seed uint64, probe Probe) (TrialResult, error)
}

// ProbeTrial runs one observed trial of any Protocol: through ProbedTrial
// when p implements ProbedProtocol, otherwise through the plain Trial with
// Begin, a synthesized converged event and End around it, so probes (and
// TrialRecords) degrade gracefully to the legacy scalars for external
// protocols.
func ProbeTrial(p Protocol, sc Scenario, n int, seed uint64, probe Probe) (TrialResult, error) {
	if probe == nil {
		return p.Trial(sc, n, seed)
	}
	if pp, ok := p.(ProbedProtocol); ok {
		return pp.ProbedTrial(sc, n, seed, probe)
	}
	probe.Begin(p.Info().Name, n, seed)
	res, err := p.Trial(sc, n, seed)
	if err != nil {
		return res, err
	}
	if res.Converged {
		probe.Observe(TrialEvent{Kind: EventConverged, Step: res.Steps, Leaders: -1})
	}
	probe.End(res)
	return res, nil
}

// Probes fans one trial's event stream out to several probes, in order.
func Probes(ps ...Probe) Probe { return multiProbe(ps) }

type multiProbe []Probe

func (m multiProbe) Begin(protocol string, n int, seed uint64) {
	for _, p := range m {
		p.Begin(protocol, n, seed)
	}
}

func (m multiProbe) Observe(ev TrialEvent) {
	for _, p := range m {
		p.Observe(ev)
	}
}

func (m multiProbe) End(res TrialResult) {
	for _, p := range m {
		p.End(res)
	}
}

// SeriesPoint is one sample of a named per-trial series.
type SeriesPoint struct {
	Step  uint64  `json:"step"`
	Value float64 `json:"value"`
}

// TrialRecord is the streaming form of one trial's outcome: the legacy
// scalars plus the named observables and series a probe distilled from the
// event stream. Records are what Sinks consume and Metrics aggregate; one
// JSON object per record is the JSONL artifact schema
// (see JSONLSink).
//
// Observables emitted by RecordingProbe:
//
//	steps, stabilized, converged      — the scalars, repeated for Metrics
//	leaders_initial, leaders_peak,
//	leaders_final, leader_changes     — leader-count trajectory facts
//	                                    (leader-tracking protocols only)
//	fault_bursts, fault_agents,
//	last_fault_step                   — fault-schedule facts (when ≥1
//	                                    burst fired)
//	recovery_steps                    — steps − last_fault_step, the
//	                                    recovery time after the last
//	                                    fault (converged trials only;
//	                                    equals steps when no burst fired)
//	chan_<name>                       — named tracker channel counts at
//	                                    the end of the run phase
//	eclipse_windows                   — eclipse windows the trial entered
//	                                    (phased-scheduler scenarios only)
//	eclipse_recovery_steps            — steps − the last observed eclipse
//	                                    close, the recovery time after the
//	                                    partition healed (converged trials
//	                                    that saw a window close)
//	churn_events, churn_removed,
//	churn_inserted, live_agents_min   — ring-dynamics facts (when ≥1 churn
//	                                    splice fired)
//
// and the series "leaders": the (step, count) leader trajectory.
type TrialRecord struct {
	Protocol   string `json:"protocol"`
	N          int    `json:"n"`
	Trial      int    `json:"trial"`
	Seed       uint64 `json:"seed"`
	Steps      uint64 `json:"steps"`
	Stabilized uint64 `json:"stabilized"`
	Converged  bool   `json:"converged"`
	// Tags carries free-form string context set by the producer (cmd/bench
	// tags records with the mode and scenario, say).
	Tags        map[string]string        `json:"tags,omitempty"`
	Observables map[string]float64       `json:"observables,omitempty"`
	Series      map[string][]SeriesPoint `json:"series,omitempty"`
}

// Result returns the legacy scalar view of the record.
func (r TrialRecord) Result() TrialResult {
	return TrialResult{N: r.N, Seed: r.Seed, Steps: r.Steps, Stabilized: r.Stabilized, Converged: r.Converged}
}

// DefaultMaxSeriesPoints bounds a RecordingProbe series; see
// RecordingProbe.MaxSeriesPoints.
const DefaultMaxSeriesPoints = 4096

// RecordingProbe is the standard Probe: it distills a trial's event stream
// into a TrialRecord (the observables and series documented on
// TrialRecord). The zero value is ready to use for one trial; call Record
// after the trial for the result.
type RecordingProbe struct {
	// MaxSeriesPoints caps the points kept per series; 0 selects
	// DefaultMaxSeriesPoints. When a series would exceed the cap it is
	// deterministically thinned — every other kept point is dropped and
	// the sampling stride doubles — so memory stays bounded on
	// pathological trajectories while the step range stays covered.
	MaxSeriesPoints int

	rec           TrialRecord
	haveLeaders   bool
	initLeaders   float64
	peakLeaders   float64
	finalLeaders  float64
	changes       float64
	bursts        float64
	burstAgents   float64
	lastFault     uint64
	eclipses      float64
	eclipseClosed float64
	eclipseEnd    uint64
	haveEclipse   bool // a window close was observed
	churns        float64
	churnRemoved  float64
	churnAdded    float64
	liveMin       float64
	counts        map[string]float64
	leaders       []SeriesPoint
	stride        uint64
	seen          uint64 // leader events seen, for stride sampling
}

func (p *RecordingProbe) Begin(protocol string, n int, seed uint64) {
	p.rec = TrialRecord{Protocol: protocol, N: n, Seed: seed}
	p.liveMin = float64(n)
}

func (p *RecordingProbe) Observe(ev TrialEvent) {
	switch ev.Kind {
	case EventLeaderChange:
		count := float64(ev.Leaders)
		if !p.haveLeaders {
			p.haveLeaders = true
			p.initLeaders = count
			p.peakLeaders = count
		} else {
			p.changes++
		}
		if count > p.peakLeaders {
			p.peakLeaders = count
		}
		p.finalLeaders = count
		p.appendLeaderPoint(ev.Step, count)
	case EventFault:
		p.bursts++
		p.burstAgents += float64(ev.Agents)
		p.lastFault = ev.Step
		if p.haveLeaders && ev.Leaders >= 0 {
			// The burst may rewrite the leader set without an interaction;
			// keep the trajectory honest across the install.
			count := float64(ev.Leaders)
			if count > p.peakLeaders {
				p.peakLeaders = count
			}
			p.finalLeaders = count
			p.appendLeaderPoint(ev.Step, count)
		}
	case EventSchedPhase:
		if ev.Eclipsed {
			p.eclipses++
		} else if ev.Epoch > 0 {
			// A clear phase after at least one window: the partition just
			// healed. Recovery is measured from the latest such close.
			p.eclipseClosed++
			p.eclipseEnd = ev.Step
			p.haveEclipse = true
		}
	case EventChurn:
		p.churns++
		p.churnRemoved += float64(ev.Removed)
		p.churnAdded += float64(ev.Inserted)
		if live := float64(ev.Live); live < p.liveMin {
			p.liveMin = live
		}
		if p.haveLeaders && ev.Leaders >= 0 {
			// The splice may rewrite the leader set without an interaction.
			count := float64(ev.Leaders)
			if count > p.peakLeaders {
				p.peakLeaders = count
			}
			p.finalLeaders = count
			p.appendLeaderPoint(ev.Step, count)
		}
	case EventChannels:
		p.counts = ev.Counts
	}
}

// appendLeaderPoint samples the "leaders" series under the thinning cap.
func (p *RecordingProbe) appendLeaderPoint(step uint64, count float64) {
	p.seen++
	if p.stride == 0 {
		p.stride = 1
	}
	if (p.seen-1)%p.stride != 0 {
		return
	}
	max := p.MaxSeriesPoints
	if max <= 0 {
		max = DefaultMaxSeriesPoints
	}
	if max < 2 {
		max = 2
	}
	if len(p.leaders) >= max {
		kept := p.leaders[:0]
		for i := 0; i < len(p.leaders); i += 2 {
			kept = append(kept, p.leaders[i])
		}
		p.leaders = kept
		p.stride *= 2
		if (p.seen-1)%p.stride != 0 {
			return
		}
	}
	p.leaders = append(p.leaders, SeriesPoint{Step: step, Value: count})
}

func (p *RecordingProbe) End(res TrialResult) {
	p.rec.N = res.N
	p.rec.Seed = res.Seed
	p.rec.Steps = res.Steps
	p.rec.Stabilized = res.Stabilized
	p.rec.Converged = res.Converged

	obs := map[string]float64{
		"steps":      float64(res.Steps),
		"stabilized": float64(res.Stabilized),
		"converged":  0,
	}
	if res.Converged {
		obs["converged"] = 1
		obs["recovery_steps"] = float64(res.Steps - p.lastFault)
	}
	if p.haveLeaders {
		obs["leaders_initial"] = p.initLeaders
		obs["leaders_peak"] = p.peakLeaders
		obs["leaders_final"] = p.finalLeaders
		obs["leader_changes"] = p.changes
	}
	if p.bursts > 0 {
		obs["fault_bursts"] = p.bursts
		obs["fault_agents"] = p.burstAgents
		obs["last_fault_step"] = float64(p.lastFault)
	}
	// A schedule starting inside a window (start 0) never streams the
	// opening boundary, so the window count is whichever side of the
	// phase events saw more transitions.
	if windows := max(p.eclipses, p.eclipseClosed); windows > 0 {
		obs["eclipse_windows"] = windows
	}
	if res.Converged && p.haveEclipse {
		obs["eclipse_recovery_steps"] = float64(res.Steps - p.eclipseEnd)
	}
	if p.churns > 0 {
		obs["churn_events"] = p.churns
		obs["churn_removed"] = p.churnRemoved
		obs["churn_inserted"] = p.churnAdded
		obs["live_agents_min"] = p.liveMin
	}
	for name, v := range p.counts {
		obs["chan_"+name] = v
	}
	p.rec.Observables = obs
	if len(p.leaders) > 0 {
		p.rec.Series = map[string][]SeriesPoint{"leaders": p.leaders}
	}
}

// Record returns the distilled TrialRecord; valid after End.
func (p *RecordingProbe) Record() TrialRecord { return p.rec }
