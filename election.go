package repro

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/population"
	"repro/internal/xrand"
)

// Option configures a RingElection or RingOrientation.
type Option interface {
	apply(*options)
}

type options struct {
	seed  uint64
	slack int
	c1    int
}

func defaultOptions() options {
	return options{c1: core.DefaultC1}
}

type seedOption uint64

func (o seedOption) apply(opts *options) { opts.seed = uint64(o) }

// WithSeed fixes the scheduler's random seed, making the run reproducible.
func WithSeed(seed uint64) Option { return seedOption(seed) }

type slackOption int

func (o slackOption) apply(opts *options) { opts.slack = int(o) }

// WithSlack adds slack to the knowledge ψ = ⌈log₂ n⌉ + slack. The paper
// allows any O(1) slack; more slack costs states, never correctness.
func WithSlack(slack int) Option { return slackOption(slack) }

type c1Option int

func (o c1Option) apply(opts *options) { opts.c1 = int(o) }

// WithC1 sets the κ_max multiplier (κ_max = c1·ψ). The paper's analysis
// uses c1 ≥ 32; smaller values remain self-stabilizing but weaken the
// w.h.p. constants (see the E10 section of cmd/sweep).
func WithC1(c1 int) Option { return c1Option(c1) }

// RingElection simulates the paper's protocol P_PL on a directed ring of n
// anonymous agents under the uniformly random scheduler.
type RingElection struct {
	params core.Params
	proto  *core.Protocol
	eng    *population.Engine[core.State]
	rng    *xrand.RNG
	// tracker is the incremental S_PL tracker, installed only for the
	// duration of RunToSafe so plain Run/Step stay on the raw hot path.
	tracker *population.RingTracker[core.State]
}

// NewRingElection builds a simulation for a ring of n ≥ 2 agents, starting
// from the all-zero configuration (a leaderless ring). Use InitRandom,
// InitPerfect or InjectFaults to choose the initial configuration.
func NewRingElection(n int, opts ...Option) *RingElection {
	o := defaultOptions()
	for _, opt := range opts {
		opt.apply(&o)
	}
	params := core.NewParamsSlack(n, o.slack, o.c1)
	proto := core.New(params)
	rng := xrand.New(o.seed)
	eng := population.NewEngine(population.DirectedRing(n), proto.Step, rng)
	eng.TrackLeaders(core.IsLeader)
	return &RingElection{
		params: params, proto: proto, eng: eng, rng: rng,
		tracker: population.NewRingTracker(params.SafetySpec()),
	}
}

// N returns the ring size.
func (e *RingElection) N() int { return e.params.N }

// Psi returns the knowledge ψ in use.
func (e *RingElection) Psi() int { return e.params.Psi }

// StatesPerAgent returns the exact size of the agent state space |Q|,
// which is polylog(n).
func (e *RingElection) StatesPerAgent() uint64 { return e.params.StateCount() }

// InitRandom installs an adversarial initial configuration: every agent's
// state drawn uniformly from the full state space.
func (e *RingElection) InitRandom(seed uint64) {
	e.eng.SetStates(e.params.RandomConfig(xrand.New(seed)))
}

// InitPerfect installs a safe configuration with the leader at the given
// index — the converged steady state.
func (e *RingElection) InitPerfect(leaderAt int) {
	e.eng.SetStates(e.params.PerfectConfig(leaderAt, 0))
}

// InitNoLeader installs the hardest detection instance: a leaderless ring
// whose distance labels are fully consistent, so only the token comparison
// machinery can expose the absence of a leader.
func (e *RingElection) InitNoLeader() {
	e.eng.SetStates(e.params.NoLeaderAligned())
}

// InjectFaults overwrites k randomly chosen agents with uniformly random
// states — a transient-fault burst. The protocol recovers because it is
// self-stabilizing.
func (e *RingElection) InjectFaults(k int) {
	cfg := e.eng.Snapshot()
	for i := 0; i < k; i++ {
		cfg[e.rng.Intn(len(cfg))] = e.params.RandomState(e.rng)
	}
	e.eng.SetStates(cfg)
}

// Step executes one scheduler step (one pairwise interaction).
func (e *RingElection) Step() { e.eng.Step() }

// Run executes the given number of scheduler steps.
func (e *RingElection) Run(steps uint64) { e.eng.Run(steps) }

// RunToSafe runs until the configuration enters the closed safe set S_PL
// of the paper (Definition 4.6) and returns the total step count and
// whether it was reached. Safety is detected through an incremental
// tracker updated in O(1) per interaction, so the returned step is the
// exact hitting time of S_PL — not an overestimate quantized to a
// periodic scan. maxSteps of 0 applies the paper's w.h.p. bound with a
// generous constant.
func (e *RingElection) RunToSafe(maxSteps uint64) (uint64, bool) {
	if maxSteps == 0 {
		n := uint64(e.params.N)
		maxSteps = e.eng.Steps() + 800*n*n*uint64(e.params.Psi)
	}
	e.eng.SetTracker(e.tracker)
	defer e.eng.SetTracker(nil)
	return e.eng.RunUntilConverged(maxSteps)
}

// Steps returns the number of scheduler steps executed so far.
func (e *RingElection) Steps() uint64 { return e.eng.Steps() }

// Leader returns the index of the unique leader, if exactly one agent
// currently outputs L.
func (e *RingElection) Leader() (int, bool) {
	idx := core.LeaderIndex(e.eng.Config())
	return idx, idx >= 0
}

// LeaderCount returns the number of agents currently outputting L.
func (e *RingElection) LeaderCount() int { return e.eng.LeaderCount() }

// Safe reports whether the current configuration is in S_PL: exactly one
// leader, and the embedded distance/segment-ID structure proves no new
// leader will ever be created and the current one never killed.
func (e *RingElection) Safe() bool { return e.params.IsSafe(e.eng.Config()) }

// LastOutputChange returns the step at which the set of leaders last
// changed (0 if never) — the output stabilization time once a run has been
// certified safe.
func (e *RingElection) LastOutputChange() uint64 { return e.eng.LastLeaderChange() }

// Describe renders the current configuration as a Figure 1 style segment
// diagram.
func (e *RingElection) Describe() string {
	return fmt.Sprintf("ring n=%d ψ=%d κ_max=%d |Q|=%d\n%s",
		e.params.N, e.params.Psi, e.params.KappaMax, e.params.StateCount(),
		e.params.FormatRing(e.eng.Config()))
}
