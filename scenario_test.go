package repro_test

import (
	"encoding/json"
	"strings"
	"testing"

	"repro"
)

// TestScenarioInitClassCoverage runs one P_PL trial per init class —
// including the E10 cold start — and requires convergence within the
// default budget. Self-stabilization means every class must elect.
func TestScenarioInitClassCoverage(t *testing.T) {
	classes := []repro.InitClass{
		repro.InitRandom,
		repro.InitNoLeader,
		repro.InitAllLeaders,
		repro.InitCorrupted,
		repro.InitNoLeaderCold,
	}
	p := repro.PPL(0, 0)
	for _, class := range classes {
		t.Run(class.String(), func(t *testing.T) {
			res, err := p.Trial(repro.Scenario{Init: class}, 16, 1)
			if err != nil {
				t.Fatal(err)
			}
			if !res.Converged {
				t.Fatalf("class %v did not converge: %+v", class, res)
			}
			if class == repro.InitNoLeaderCold && res.Steps == 0 {
				t.Fatal("cold start converged instantly — clocks not zeroed?")
			}
		})
	}
}

// TestScenarioFaultSchedule checks that mid-run bursts fire, perturb the
// run, and that the protocol recovers: the fault is scheduled after the
// fault-free convergence point, so the faulted trial must converge later.
func TestScenarioFaultSchedule(t *testing.T) {
	p := repro.PPL(0, 0)
	const n, seed = 16, 1
	clean, err := p.Trial(repro.Scenario{}, n, seed)
	if err != nil {
		t.Fatal(err)
	}
	if !clean.Converged {
		t.Fatalf("fault-free trial did not converge: %+v", clean)
	}
	sc := repro.Scenario{Faults: []repro.Fault{{AtStep: clean.Steps + 1000, Agents: n}}}
	faulted, err := p.Trial(sc, n, seed)
	if err != nil {
		t.Fatal(err)
	}
	if !faulted.Converged {
		t.Fatalf("did not recover from fault burst: %+v", faulted)
	}
	if faulted.Steps <= clean.Steps {
		t.Fatalf("burst at step %d left convergence at %d (clean: %d) — did it fire?",
			clean.Steps+1000, faulted.Steps, clean.Steps)
	}
	// Determinism: the same seed replays the same faulted trajectory.
	again, err := p.Trial(sc, n, seed)
	if err != nil {
		t.Fatal(err)
	}
	if again != faulted {
		t.Fatalf("faulted trial not deterministic: %+v vs %+v", again, faulted)
	}
}

// TestScenarioFaultPastBudgetNeverFires pins the documented contract:
// a burst scheduled at or beyond the step budget does not fire, so the
// trial is exactly the fault-free one — not a guaranteed failure that
// burns the whole budget.
func TestScenarioFaultPastBudgetNeverFires(t *testing.T) {
	p := repro.PPL(0, 0)
	const n, seed = 16, 1
	clean, err := p.Trial(repro.Scenario{}, n, seed)
	if err != nil {
		t.Fatal(err)
	}
	sc := repro.Scenario{Faults: []repro.Fault{{AtStep: p.MaxSteps(n) + 1, Agents: n}}}
	late, err := p.Trial(sc, n, seed)
	if err != nil {
		t.Fatal(err)
	}
	if late != clean {
		t.Fatalf("past-budget burst changed the trial: %+v vs %+v", late, clean)
	}
}

// TestScenarioFaultsOnBaselines exercises fault injection through the
// oracle runners ([15], [11]) whose census must be recomputed after a
// corruption, and on the orientation protocol, whose coloring is protocol
// input and must survive corruption.
func TestScenarioFaultsOnBaselines(t *testing.T) {
	for _, name := range []string{"yokota", "angluin", "fj", "chenchen", "orient"} {
		t.Run(name, func(t *testing.T) {
			p, err := repro.NewProtocol(name)
			if err != nil {
				t.Fatal(err)
			}
			n := p.FixSize(8)
			sc := repro.Scenario{Faults: []repro.Fault{{AtStep: 50, Agents: n / 2}}}
			res, err := p.Trial(sc, n, 1)
			if err != nil {
				t.Fatal(err)
			}
			if !res.Converged {
				t.Fatalf("%s did not recover from a fault burst: %+v", name, res)
			}
		})
	}
}

func TestScenarioBudgetPolicy(t *testing.T) {
	p := repro.PPL(0, 0)
	if got := (repro.Scenario{}).MaxSteps(p, 16); got != p.MaxSteps(16) {
		t.Fatalf("default budget %d != %d", got, p.MaxSteps(16))
	}
	sc := repro.Scenario{Budget: repro.Budget{MaxSteps: 10}}
	if got := sc.MaxSteps(p, 16); got != 10 {
		t.Fatalf("fixed budget %d != 10", got)
	}
	res, err := p.Trial(sc, 16, 1)
	if err != nil {
		t.Fatal(err)
	}
	if res.Converged {
		t.Fatal("a 10-step budget cannot elect on n=16")
	}
	half := repro.Scenario{Budget: repro.Budget{Scale: 0.5}}
	if got, want := half.MaxSteps(p, 16), p.MaxSteps(16)/2; got != want {
		t.Fatalf("scaled budget %d != %d", got, want)
	}
}

func TestInitClassStrings(t *testing.T) {
	for _, class := range []repro.InitClass{
		repro.InitRandom, repro.InitNoLeader, repro.InitAllLeaders,
		repro.InitCorrupted, repro.InitNoLeaderCold,
	} {
		parsed, err := repro.ParseInitClass(class.String())
		if err != nil {
			t.Fatal(err)
		}
		if parsed != class {
			t.Fatalf("round trip %v -> %q -> %v", class, class.String(), parsed)
		}
	}
	if _, err := repro.ParseInitClass("bogus"); err == nil {
		t.Fatal("unknown class parsed")
	}
}

func TestScenarioJSONRoundTrip(t *testing.T) {
	sc := repro.Scenario{
		Topology: repro.TopologyDirectedRing,
		Init:     repro.InitNoLeaderCold,
		Faults:   []repro.Fault{{AtStep: 100, Agents: 4}},
		Budget:   repro.Budget{Scale: 2},
	}
	data, err := json.Marshal(sc)
	if err != nil {
		t.Fatal(err)
	}
	// Enum fields marshal by name, keeping artifacts self-describing.
	for _, want := range []string{`"noleadercold"`, `"directed-ring"`} {
		if !strings.Contains(string(data), want) {
			t.Fatalf("marshalled scenario %s missing %s", data, want)
		}
	}
	var back repro.Scenario
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back.Init != sc.Init || back.Topology != sc.Topology ||
		len(back.Faults) != 1 || back.Faults[0] != sc.Faults[0] || back.Budget != sc.Budget {
		t.Fatalf("round trip %+v -> %s -> %+v", sc, data, back)
	}
}
