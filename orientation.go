package repro

import (
	"repro/internal/orient"
	"repro/internal/population"
	"repro/internal/twohop"
	"repro/internal/xrand"
)

// RingOrientation simulates the paper's Section 5 protocol P_OR on an
// undirected ring: starting from any direction assignment, the agents
// agree on a common orientation within O(n² log n) steps w.h.p. using O(1)
// states, given a two-hop coloring.
type RingOrientation struct {
	proto *orient.Protocol
	eng   *population.Engine[orient.State]
	rng   *xrand.RNG
	// tracker is the incremental orientation tracker, installed only for
	// the duration of RunToOriented so plain Step stays on the raw path.
	tracker *population.RingTracker[orient.State]
}

// NewRingOrientation builds a simulation for an undirected ring of n ≥ 3
// agents with a valid two-hop coloring and adversarial directions,
// strengths and memories.
func NewRingOrientation(n int, opts ...Option) *RingOrientation {
	o := defaultOptions()
	for _, opt := range opts {
		opt.apply(&o)
	}
	rng := xrand.New(o.seed)
	proto := orient.New()
	eng := population.NewEngine(population.UndirectedRing(n), proto.Step, rng)
	eng.SetStates(orient.InitialConfig(twohop.Coloring(n), rng.Split()))
	return &RingOrientation{
		proto: proto, eng: eng, rng: rng,
		tracker: population.NewRingTracker(orient.OrientedSpec()),
	}
}

// N returns the ring size.
func (o *RingOrientation) N() int { return o.eng.N() }

// Scramble re-randomizes directions, strengths and memories while keeping
// the coloring — a transient-fault burst for the orientation layer.
func (o *RingOrientation) Scramble() {
	colors := orient.Colors(o.eng.Config())
	o.eng.SetStates(orient.InitialConfig(colors, o.rng.Split()))
}

// Step executes one scheduler step.
func (o *RingOrientation) Step() { o.eng.Step() }

// RunToOriented runs until the ring is fully oriented (Definition 5.1
// condition (ii)) and returns the step count and success. Orientation is
// detected through an incremental per-edge tracker, so the returned step
// is the exact hitting time. maxSteps of 0 applies the paper's bound with
// a generous constant.
func (o *RingOrientation) RunToOriented(maxSteps uint64) (uint64, bool) {
	if maxSteps == 0 {
		n := uint64(o.eng.N())
		maxSteps = o.eng.Steps() + 4000*n*n
	}
	o.eng.SetTracker(o.tracker)
	defer o.eng.SetTracker(nil)
	return o.eng.RunUntilConverged(maxSteps)
}

// Oriented reports whether all agents currently share a direction.
func (o *RingOrientation) Oriented() bool { return orient.Oriented(o.eng.Config()) }

// Clockwise reports the agreed direction; meaningful only when Oriented.
func (o *RingOrientation) Clockwise() bool { return orient.Clockwise(o.eng.Config()) }

// Steps returns the number of scheduler steps executed so far.
func (o *RingOrientation) Steps() uint64 { return o.eng.Steps() }
