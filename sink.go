package repro

import (
	"bufio"
	"compress/gzip"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"sync"
)

// Sink consumes TrialRecords as trials finish. The Experiment delivers
// records in completion order, not trial order (each record carries its
// Trial index), serializes Record calls across worker goroutines, and
// Closes every attached sink exactly once before Run or Stream returns —
// on success, on the first error, and on context cancellation alike, so a
// cancelled sweep still leaves a flushed, well-formed artifact behind. A
// Record error aborts the experiment and is surfaced by Run/Stream.
//
// Implementations used outside an Experiment (a command writing records
// from its own worker pool, say) must do their own serialization;
// JSONLSink locks internally and is safe either way.
type Sink interface {
	Record(rec TrialRecord) error
	Close() error
}

// JSONLSink streams TrialRecords as JSON Lines: one compact JSON object
// per record, newline-terminated — the bounded-memory artifact form for
// sweeps too large to hold in a Report. Writes are buffered; Close flushes
// (and closes the underlying file when the sink opened it). Record and
// Close are safe for concurrent use.
type JSONLSink struct {
	mu     sync.Mutex
	bw     *bufio.Writer
	closer io.Closer
	closed bool
	count  int64
}

// NewJSONLSink returns a sink writing records to w. Close flushes buffered
// records but does not close w — the caller owns it.
func NewJSONLSink(w io.Writer) *JSONLSink {
	return &JSONLSink{bw: bufio.NewWriter(w)}
}

// CreateJSONL creates (or truncates) the file at path and returns a sink
// owning it: Close flushes and closes the file.
func CreateJSONL(path string) (*JSONLSink, error) {
	f, err := os.Create(path)
	if err != nil {
		return nil, err
	}
	s := NewJSONLSink(f)
	s.closer = f
	return s, nil
}

// Record implements Sink.
func (s *JSONLSink) Record(rec TrialRecord) error {
	data, err := json.Marshal(rec)
	if err != nil {
		return err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return fmt.Errorf("repro: JSONLSink is closed")
	}
	if _, err := s.bw.Write(data); err != nil {
		return err
	}
	if err := s.bw.WriteByte('\n'); err != nil {
		return err
	}
	s.count++
	return nil
}

// Count returns the number of records written so far.
func (s *JSONLSink) Count() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.count
}

// Close implements Sink: it flushes buffered records and closes the
// underlying file when the sink owns one. Closing twice is a no-op.
func (s *JSONLSink) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil
	}
	s.closed = true
	err := s.bw.Flush()
	if s.closer != nil {
		if cerr := s.closer.Close(); err == nil {
			err = cerr
		}
	}
	return err
}

// ErrTruncatedRecords marks a gzip record stream that ended mid-member —
// the footer (CRC + length trailer) is missing, which is what a torn
// write, a killed uploader or a truncated download leaves behind. It is
// distinct from a malformed line: the bytes that are present decoded
// fine; the stream just stops early. Errors wrapping it carry the byte
// offset of the underlying (compressed) input where it ended.
var ErrTruncatedRecords = errors.New("repro: truncated gzip record stream (missing footer)")

// DecodeTrialRecords streams a JSONL record artifact: fn is called once
// per line, in file order. Decoding stops at the first malformed line or
// fn error.
//
// Gzip input is detected automatically by its magic bytes and
// transparently decompressed, so RotatingJSONLSink ".gz" segments (and
// service cache spills) feed merge, replay and ReportFromRecords without
// an explicit decompression step. Concatenated gzip members — cat-ed
// segments, say — decode as one stream. A gzip stream cut short (its
// footer missing) surfaces as ErrTruncatedRecords with the byte offset
// where the compressed input ended, never a bare "unexpected EOF".
func DecodeTrialRecords(r io.Reader, fn func(rec TrialRecord) error) error {
	cr := &countingReader{r: r}
	br := bufio.NewReader(cr)
	if magic, err := br.Peek(2); err == nil && magic[0] == 0x1f && magic[1] == 0x8b {
		offset := func() int64 { return cr.n - int64(br.Buffered()) }
		gz, err := gzip.NewReader(br)
		if err != nil {
			if err == io.ErrUnexpectedEOF || err == io.EOF {
				return fmt.Errorf("%w at byte offset %d", ErrTruncatedRecords, offset())
			}
			return fmt.Errorf("repro: gzip records: %w", err)
		}
		defer gz.Close()
		// Truncation can also surface indirectly — the decompressed stream
		// ends mid-line and the partial JSON fails to parse — so track the
		// reader error itself, not just what the scanner reports.
		et := &eofTracker{r: gz}
		err = decodeTrialRecords(et, fn)
		if et.truncated || errors.Is(err, io.ErrUnexpectedEOF) {
			return fmt.Errorf("%w at byte offset %d", ErrTruncatedRecords, offset())
		}
		return err
	}
	return decodeTrialRecords(br, fn)
}

// eofTracker flags a mid-member EOF from the decompressor.
type eofTracker struct {
	r         io.Reader
	truncated bool
}

func (e *eofTracker) Read(p []byte) (int, error) {
	n, err := e.r.Read(p)
	if err == io.ErrUnexpectedEOF {
		e.truncated = true
	}
	return n, err
}

// countingReader counts the bytes consumed from the source, so
// truncation errors can report where the input actually ended.
type countingReader struct {
	r io.Reader
	n int64
}

func (c *countingReader) Read(p []byte) (int, error) {
	n, err := c.r.Read(p)
	c.n += int64(n)
	return n, err
}

// decodeTrialRecords scans plain JSONL.
func decodeTrialRecords(r io.Reader, fn func(rec TrialRecord) error) error {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64<<10), 16<<20)
	line := 0
	for sc.Scan() {
		line++
		if len(sc.Bytes()) == 0 {
			continue
		}
		var rec TrialRecord
		if err := json.Unmarshal(sc.Bytes(), &rec); err != nil {
			return fmt.Errorf("repro: record line %d: %w", line, err)
		}
		if err := fn(rec); err != nil {
			return err
		}
	}
	return sc.Err()
}

// ReadTrialRecords reads a whole JSONL record artifact into memory.
func ReadTrialRecords(r io.Reader) ([]TrialRecord, error) {
	var out []TrialRecord
	err := DecodeTrialRecords(r, func(rec TrialRecord) error {
		out = append(out, rec)
		return nil
	})
	return out, err
}

// sinkSet fans records out to every attached sink under one mutex — the
// serialization half of the Sink contract — and captures the first error
// (a failing sink or a failing trial).
type sinkSet struct {
	mu    sync.Mutex
	sinks []Sink
	err   error
}

// record delivers rec to every sink in order; after the first error the
// set goes inert.
func (ss *sinkSet) record(rec TrialRecord) {
	ss.mu.Lock()
	defer ss.mu.Unlock()
	if ss.err != nil {
		return
	}
	for _, s := range ss.sinks {
		if err := s.Record(rec); err != nil {
			ss.err = fmt.Errorf("repro: sink: %w", err)
			return
		}
	}
}

// fail records a trial error; the first error wins.
func (ss *sinkSet) fail(err error) {
	ss.mu.Lock()
	defer ss.mu.Unlock()
	if ss.err == nil {
		ss.err = err
	}
}

func (ss *sinkSet) firstErr() error {
	ss.mu.Lock()
	defer ss.mu.Unlock()
	return ss.err
}

// close closes every sink once, returning the first close error.
func (ss *sinkSet) close() error {
	ss.mu.Lock()
	defer ss.mu.Unlock()
	var first error
	for _, s := range ss.sinks {
		if err := s.Close(); err != nil && first == nil {
			first = err
		}
	}
	ss.sinks = nil
	return first
}
