package repro

// Benchmark harness for every table and figure of the paper, driven
// through the public Protocol API; the E1–E13 numbering matches the
// cmd/sweep experiment sections.
//
// One benchmark iteration is one full protocol trial; the quantity the
// paper bounds — scheduler steps to convergence — is emitted as the
// custom metric "steps/op", so absolute wall-clock throughput and the
// model-level cost are reported side by side.

import (
	"context"
	"fmt"
	"math"
	"testing"

	"repro/internal/core"
	"repro/internal/lottery"
	"repro/internal/orient"
	"repro/internal/population"
	"repro/internal/runner"
	"repro/internal/twohop"
	"repro/internal/xrand"
)

// benchTrials fans b.N independent trials out across the internal/runner
// worker pool (b.RunParallel-style batching: iterations are protocol trials,
// cores share them) and returns the per-trial results. Seeds depend only on
// the iteration index, so every reported metric is identical to a serial
// loop — only wall-clock time shrinks.
func benchTrials[T any](b *testing.B, fn func(i int) T) []T {
	b.Helper()
	out, err := runner.Map(context.Background(), b.N, fn, runner.Options{})
	if err != nil {
		b.Fatal(err)
	}
	return out
}

// benchStepsPerOp fans b.N trials of fn out through the pool, fails the
// benchmark with failMsg if any trial did not complete, and reports the mean
// step count as steps/op.
func benchStepsPerOp(b *testing.B, failMsg string, fn func(i int) (uint64, bool)) {
	b.Helper()
	type trial struct {
		steps uint64
		ok    bool
	}
	results := benchTrials(b, func(i int) trial {
		steps, ok := fn(i)
		return trial{steps, ok}
	})
	var total uint64
	for _, tr := range results {
		if !tr.ok {
			b.Fatal(failMsg)
		}
		total += tr.steps
	}
	b.ReportMetric(float64(total)/float64(b.N), "steps/op")
}

// runProtocol benchmarks one (protocol, n) cell of the scenario.
func runProtocol(b *testing.B, p Protocol, sc Scenario, n int) {
	b.Helper()
	n = p.FixSize(n)
	results := benchTrials(b, func(i int) TrialResult {
		res, err := p.Trial(sc, n, uint64(i)+1)
		if err != nil {
			panic(err)
		}
		return res
	})
	var total uint64
	fails := 0
	for _, res := range results {
		if !res.Converged {
			fails++
			continue
		}
		total += res.Steps
	}
	if b.N > fails {
		b.ReportMetric(float64(total)/float64(b.N-fails), "steps/op")
	}
	b.ReportMetric(float64(fails), "failures")
}

// BenchmarkTable1 is E1: convergence steps of every protocol row across
// ring sizes. The Θ(n³)-class baselines are capped at smaller sizes and
// the [11]-style baseline at n=8 (see internal/chenchen).
func BenchmarkTable1(b *testing.B) {
	type row struct {
		proto Protocol
		sizes []int
	}
	rows := []row{
		{angluinProtocol{}, []int{9, 17, 33}},
		{fjProtocol{}, []int{8, 16, 32}},
		{chenchenProtocol{}, []int{4, 8}},
		{yokotaProtocol{}, []int{16, 32, 64, 128}},
		{PPL(0, 0), []int{16, 32, 64, 128}},
	}
	for _, r := range rows {
		for _, n := range r.sizes {
			b.Run(fmt.Sprintf("%s/n=%d", r.proto.Info().Name, n), func(b *testing.B) {
				runProtocol(b, r.proto, Scenario{}, n)
			})
		}
	}
}

// BenchmarkStateCount is E2: the #states column of Table 1. The metric is
// bits per agent at each size.
func BenchmarkStateCount(b *testing.B) {
	for _, n := range []int{1 << 6, 1 << 10, 1 << 14} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			var bits float64
			for i := 0; i < b.N; i++ {
				bits = core.NewParams(n).BitsPerAgent()
			}
			b.ReportMetric(bits, "bits/agent")
		})
	}
}

// BenchmarkFigure1Perfect is E3: constructing and verifying the Figure 1
// embedding (a perfect configuration in S_PL).
func BenchmarkFigure1Perfect(b *testing.B) {
	p := core.NewParams(64)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cfg := p.PerfectConfig(0, 8)
		if !p.IsSafe(cfg) {
			b.Fatal("perfect configuration not safe")
		}
	}
}

// BenchmarkFigure2Trajectory is E4: one complete token trajectory under
// the deterministic Lemma 3.5 schedule; steps/op is the trajectory length
// 2ψ²−2ψ+1.
func BenchmarkFigure2Trajectory(b *testing.B) {
	for _, psi := range []int{4, 6, 8} {
		b.Run(fmt.Sprintf("psi=%d", psi), func(b *testing.B) {
			var moves int
			for i := 0; i < b.N; i++ {
				positions, _, _ := core.TrajectoryTrace(psi, 3)
				moves = len(positions) + 1
			}
			b.ReportMetric(float64(moves), "moves/op")
		})
	}
}

// BenchmarkLemma23 is E5: occurrence time of seq_R(0, n) among n arcs;
// steps/op should track n·ℓ = n².
func BenchmarkLemma23(b *testing.B) {
	for _, n := range []int{32, 128, 512} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			rng := xrand.New(7)
			schedule := population.ScheduleSeqR(n, 0, n)
			var total uint64
			for i := 0; i < b.N; i++ {
				total += population.OccurrenceTime(n, schedule, rng)
			}
			b.ReportMetric(float64(total)/float64(b.N), "steps/op")
		})
	}
}

// BenchmarkLottery is E6: W_LG sampling at the Lemma 3.9 parameters.
func BenchmarkLottery(b *testing.B) {
	for _, k := range []int{4, 6, 8} {
		b.Run(fmt.Sprintf("k=%d", k), func(b *testing.B) {
			rng := xrand.New(9)
			flips, _ := lottery.Lemma39Params(k, 1)
			var wins int
			for i := 0; i < b.N; i++ {
				wins += lottery.Wins(k, flips, rng)
			}
			b.ReportMetric(float64(wins)/float64(b.N), "wins/op")
		})
	}
}

// BenchmarkModeDetermination is E7 / Lemma 3.7: steps until every agent of
// a leaderless ring reaches detection mode (or a leader is created).
func BenchmarkModeDetermination(b *testing.B) {
	for _, n := range []int{16, 32, 64} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			p := core.NewParams(n)
			pr := core.New(p)
			benchStepsPerOp(b, "mode determination never completed", func(i int) (uint64, bool) {
				eng := population.NewEngine(population.DirectedRing(n), pr.Step, xrand.New(uint64(i)))
				cfg := p.NoLeaderAligned()
				for j := range cfg {
					cfg[j].Clock = 0 // start in construction mode
				}
				eng.SetStates(cfg)
				return eng.RunUntil(func(c []core.State) bool {
					allDetect := true
					for _, s := range c {
						if s.Leader {
							return true
						}
						if p.Mode(s) != core.Detect {
							allDetect = false
						}
					}
					return allDetect
				}, n, 3000*uint64(n)*uint64(n)*uint64(p.Psi))
			})
		})
	}
}

// BenchmarkTheorem31 is E8: P_PL convergence to S_PL per adversarial
// initial class, with the normalized metric steps/(n² log n) that the
// theorem predicts to be flat in n.
func BenchmarkTheorem31(b *testing.B) {
	classes := []struct {
		name string
		init InitClass
	}{
		{"random", InitRandom},
		{"noleader", InitNoLeader},
		{"allleaders", InitAllLeaders},
		{"corrupted", InitCorrupted},
	}
	for _, cl := range classes {
		for _, n := range []int{32, 64, 128} {
			b.Run(fmt.Sprintf("%s/n=%d", cl.name, n), func(b *testing.B) {
				p := PPL(0, 0)
				sc := Scenario{Init: cl.init}
				results := benchTrials(b, func(i int) TrialResult {
					res, err := p.Trial(sc, n, uint64(i)+1)
					if err != nil {
						panic(err)
					}
					return res
				})
				var total uint64
				for _, res := range results {
					if !res.Converged {
						b.Fatal("no convergence")
					}
					total += res.Steps
				}
				mean := float64(total) / float64(b.N)
				b.ReportMetric(mean, "steps/op")
				b.ReportMetric(mean/(float64(n)*float64(n)*math.Log2(float64(n))), "steps/n²logn")
			})
		}
	}
}

// BenchmarkOrientation is E9 / Theorem 5.2: P_OR convergence on undirected
// rings.
func BenchmarkOrientation(b *testing.B) {
	for _, n := range []int{16, 64, 256} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			colors := twohop.Coloring(n)
			p := orient.New()
			benchStepsPerOp(b, "orientation never completed", func(i int) (uint64, bool) {
				eng := population.NewEngine(population.UndirectedRing(n), p.Step, xrand.New(uint64(i)))
				eng.SetStates(orient.InitialConfig(colors, xrand.New(uint64(i)+999)))
				return eng.RunUntil(orient.Oriented, n, 4000*uint64(n)*uint64(n))
			})
		})
	}
}

// BenchmarkAblationKappa is E10: the κ_max = c₁ψ trade-off at fixed n.
func BenchmarkAblationKappa(b *testing.B) {
	const n = 64
	for _, c1 := range []int{2, 4, 8, 16, 32} {
		b.Run(fmt.Sprintf("c1=%d", c1), func(b *testing.B) {
			runProtocol(b, PPL(0, c1), Scenario{}, n)
		})
	}
}

// BenchmarkAblationPsi is E11: slack in the knowledge ψ at fixed n.
func BenchmarkAblationPsi(b *testing.B) {
	const n = 64
	for _, slack := range []int{0, 1, 2, 4} {
		b.Run(fmt.Sprintf("slack=%d", slack), func(b *testing.B) {
			runProtocol(b, PPL(slack, 0), Scenario{}, n)
			b.ReportMetric(core.NewParamsSlack(n, slack, core.DefaultC1).BitsPerAgent(), "bits/agent")
		})
	}
}

// BenchmarkElimination is E12 / Lemma 4.11: from an all-leaders start,
// steps until exactly one leader survives.
func BenchmarkElimination(b *testing.B) {
	for _, n := range []int{16, 64, 256} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			p := core.NewParams(n)
			pr := core.New(p)
			benchStepsPerOp(b, "elimination never finished", func(i int) (uint64, bool) {
				eng := population.NewEngine(population.DirectedRing(n), pr.Step, xrand.New(uint64(i)))
				eng.SetStates(p.AllLeaders())
				eng.TrackLeaders(core.IsLeader)
				return eng.RunUntil(func(c []core.State) bool {
					return core.LeaderCount(c) == 1
				}, n, 2000*uint64(n)*uint64(n))
			})
		})
	}
}

// BenchmarkClosureHold is E13 / Lemma 4.7: simulation throughput inside
// S_PL, asserting that the leader output never changes.
func BenchmarkClosureHold(b *testing.B) {
	p := core.NewParams(128)
	pr := core.New(p)
	eng := population.NewEngine(population.DirectedRing(p.N), pr.Step, xrand.New(1))
	eng.SetStates(p.PerfectConfig(0, 0))
	eng.TrackLeaders(core.IsLeader)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		eng.Step()
	}
	b.StopTimer()
	if eng.LeaderChanges() != 0 {
		b.Fatalf("leader output changed %d times inside S_PL", eng.LeaderChanges())
	}
}

// BenchmarkEngineThroughput reports the raw simulation rate of the P_PL
// transition — context for translating steps/op into wall-clock time.
func BenchmarkEngineThroughput(b *testing.B) {
	p := core.NewParams(1024)
	pr := core.New(p)
	eng := population.NewEngine(population.DirectedRing(p.N), pr.Step, xrand.New(1))
	eng.SetStates(p.RandomConfig(xrand.New(2)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		eng.Step()
	}
}
