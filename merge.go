package repro

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
)

// MergeShards folds shard record streams — JSONL readers, gzip-compressed
// or plain, in any order, each holding any subset of the experiment's
// trials — into the experiment's canonical record order: protocol row
// order, then size order, then trial order; exactly the stream a
// single-process Experiment.Run emits through a sink at Workers(1), and
// the order ReportFromRecords replays. This is the merge half of the
// distributed sweep fabric: because every trial is a pure function of
// (protocol, scenario, n, trial), shard boundaries and shard placement
// carry no information, and the merged stream — and the Report built
// from it — is byte-identical to the serial run's.
//
// Coverage is verified: every non-skipped cell must be fully present or
// an error is returned, so a partial shard set cannot silently merge
// into a shorter stream. Duplicate records are tolerated when identical
// (a re-issued straggler shard completing twice) and rejected when they
// disagree — two shards disagreeing about the same trial means some
// worker broke determinism, which must surface, never be papered over.
// Records outside the experiment's matrix are rejected too.
func MergeShards(e *Experiment, shards ...io.Reader) ([]TrialRecord, error) {
	if err := e.validate(); err != nil {
		return nil, err
	}
	type cellKey struct {
		proto string
		n     int
		trial int
	}
	// The canonical slot order, built exactly as execute visits cells.
	var order []cellKey
	slot := make(map[cellKey]int)
	for _, p := range e.protocols {
		info := p.Info()
		for _, rawN := range e.sizes {
			n := p.FixSize(rawN)
			if cap, capped := e.caps[info.Name]; capped && rawN > cap {
				continue // skipped cells produce no records
			}
			for t := 0; t < e.trials; t++ {
				k := cellKey{info.Name, n, t}
				if _, dup := slot[k]; dup {
					// Two requested sizes FixSize-ing to the same n share
					// records; the first occurrence owns the slot, as in Run.
					continue
				}
				slot[k] = len(order)
				order = append(order, k)
			}
		}
	}

	out := make([]*TrialRecord, len(order))
	canon := make([][]byte, len(order))
	for si, r := range shards {
		err := DecodeTrialRecords(r, func(rec TrialRecord) error {
			k := cellKey{rec.Protocol, rec.N, rec.Trial}
			i, ok := slot[k]
			if !ok {
				return fmt.Errorf("repro: shard %d: record (%s, n=%d, trial %d) is outside the experiment's matrix", si, rec.Protocol, rec.N, rec.Trial)
			}
			data, err := json.Marshal(rec)
			if err != nil {
				return err
			}
			if out[i] != nil {
				if !bytes.Equal(canon[i], data) {
					return fmt.Errorf("repro: shard %d: conflicting duplicate for (%s, n=%d, trial %d) — determinism violation", si, rec.Protocol, rec.N, rec.Trial)
				}
				return nil // identical duplicate: a straggler's late copy
			}
			rc := rec
			out[i] = &rc
			canon[i] = data
			return nil
		})
		if err != nil {
			return nil, err
		}
	}

	merged := make([]TrialRecord, len(order))
	for i, rec := range out {
		if rec == nil {
			k := order[i]
			return nil, fmt.Errorf("repro: shards missing trial %d of cell (%s, n=%d)", k.trial, k.proto, k.n)
		}
		merged[i] = *rec
	}
	return merged, nil
}

// WriteTrialRecords emits records as canonical JSONL — one compact JSON
// object per record, newline-terminated, in slice order. Writing the
// output of MergeShards produces the byte-identical artifact a serial
// single-worker run would have streamed.
func WriteTrialRecords(w io.Writer, recs []TrialRecord) error {
	for _, rec := range recs {
		data, err := json.Marshal(rec)
		if err != nil {
			return err
		}
		if _, err := w.Write(data); err != nil {
			return err
		}
		if _, err := w.Write([]byte{'\n'}); err != nil {
			return err
		}
	}
	return nil
}
