package repro_test

import (
	"bytes"
	"context"
	"fmt"
	"strings"
	"sync"
	"testing"

	"repro"
)

// memSink records deliveries and lifecycle for assertions.
type memSink struct {
	mu     sync.Mutex
	recs   []repro.TrialRecord
	closes int
	failAt int // fail on the failAt-th record (1-based); 0 = never
}

func (s *memSink) Record(rec repro.TrialRecord) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.recs = append(s.recs, rec)
	if s.failAt > 0 && len(s.recs) >= s.failAt {
		return fmt.Errorf("sink full")
	}
	return nil
}

func (s *memSink) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.closes++
	return nil
}

// TestSinkReceivesEveryTrial: Run with a sink streams one record per
// executed trial, with observables, while the Report itself stays
// byte-identical to a sink-less run.
func TestSinkReceivesEveryTrial(t *testing.T) {
	build := func() *repro.Experiment {
		return repro.NewExperiment().
			ProtocolNames("ppl", "yokota").
			Sizes(8, 16).
			Trials(3).
			MaxSizeFor("[28] Yokota et al.", 8)
	}
	plain, err := build().Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	sink := &memSink{}
	streamed, err := build().Sinks(sink).Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}

	pj, err := plain.JSON()
	if err != nil {
		t.Fatal(err)
	}
	sj, err := streamed.JSON()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(pj, sj) {
		t.Fatalf("report with sinks diverged from legacy path:\n%s\nvs\n%s", pj, sj)
	}

	// 3 executed cells (yokota capped to n=8) × 3 trials.
	if len(sink.recs) != 9 {
		t.Fatalf("sink saw %d records, want 9", len(sink.recs))
	}
	if sink.closes != 1 {
		t.Fatalf("sink closed %d times, want exactly once", sink.closes)
	}
	seen := make(map[string]bool)
	for _, rec := range sink.recs {
		if rec.Observables["steps"] != float64(rec.Steps) {
			t.Fatalf("record without probe observables: %+v", rec)
		}
		seen[fmt.Sprintf("%s/%d/%d", rec.Protocol, rec.N, rec.Trial)] = true
	}
	if len(seen) != 9 {
		t.Fatalf("duplicate or missing (protocol, n, trial) records: %v", seen)
	}
}

// TestStreamMatchesRunRecords: the bounded-memory Stream path delivers
// exactly the records Run delivers.
func TestStreamMatchesRunRecords(t *testing.T) {
	build := func(s repro.Sink) *repro.Experiment {
		return repro.NewExperiment().
			ProtocolNames("ppl").
			Sizes(8, 16).
			Trials(2).
			Workers(1). // serial, so delivery order matches too
			Sinks(s)
	}
	viaRun := &memSink{}
	if _, err := build(viaRun).Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	viaStream := &memSink{}
	if err := build(viaStream).Stream(context.Background()); err != nil {
		t.Fatal(err)
	}
	if len(viaRun.recs) != len(viaStream.recs) {
		t.Fatalf("Run delivered %d records, Stream %d", len(viaRun.recs), len(viaStream.recs))
	}
	for i := range viaRun.recs {
		if viaRun.recs[i].Result() != viaStream.recs[i].Result() {
			t.Fatalf("record %d diverged: %+v vs %+v", i, viaRun.recs[i], viaStream.recs[i])
		}
	}
	if err := repro.NewExperiment().ProtocolNames("ppl").Sizes(8).Stream(context.Background()); err == nil {
		t.Fatal("Stream without sinks accepted")
	}
}

// TestJSONLSinkRoundTrip: records written as JSONL decode back intact.
func TestJSONLSinkRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	sink := repro.NewJSONLSink(&buf)
	err := repro.NewExperiment().
		ProtocolNames("ppl").
		Sizes(8).
		Trials(3).
		Sinks(sink).
		Stream(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if sink.Count() != 3 {
		t.Fatalf("sink wrote %d records, want 3", sink.Count())
	}
	if got := strings.Count(buf.String(), "\n"); got != 3 {
		t.Fatalf("artifact has %d lines, want 3:\n%s", got, buf.String())
	}
	recs, err := repro.ReadTrialRecords(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 3 {
		t.Fatalf("decoded %d records", len(recs))
	}
	for i, rec := range recs {
		if rec.Trial != i || rec.N != 8 || !rec.Converged || rec.Observables["steps"] != float64(rec.Steps) {
			t.Fatalf("record %d corrupt after round trip: %+v", i, rec)
		}
	}
	if err := sink.Record(repro.TrialRecord{}); err == nil {
		t.Fatal("write to a closed sink accepted")
	}
}

// TestSinkErrorAbortsExperiment: a failing sink surfaces as the run error
// and still gets closed.
func TestSinkErrorAbortsExperiment(t *testing.T) {
	sink := &memSink{failAt: 2}
	_, err := repro.NewExperiment().
		ProtocolNames("ppl").
		Sizes(8).
		Trials(4).
		Sinks(sink).
		Run(context.Background())
	if err == nil || !strings.Contains(err.Error(), "sink full") {
		t.Fatalf("sink error not surfaced: %v", err)
	}
	if sink.closes != 1 {
		t.Fatalf("failing sink closed %d times, want once", sink.closes)
	}
}

// TestCancellationFlushesSinks is the mid-sweep cancellation contract: the
// context error surfaces, every sink is closed exactly once, and a JSONL
// sink's partial artifact is flushed and well-formed — every written line
// parses as a record.
func TestCancellationFlushesSinks(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	var buf bytes.Buffer
	jsonl := repro.NewJSONLSink(&buf)
	mem := &memSink{}
	_, err := repro.NewExperiment().
		ProtocolNames("ppl").
		Sizes(8, 16, 32).
		Trials(8).
		Workers(1).
		Observer(func(p repro.Progress) {
			if p.N == 8 && p.Done == 2 {
				cancel() // mid-sweep: first cell, second trial
			}
		}).
		Sinks(jsonl, mem).
		Run(ctx)
	if err == nil || ctx.Err() == nil {
		t.Fatalf("cancelled run returned %v", err)
	}
	if !strings.Contains(err.Error(), context.Canceled.Error()) {
		t.Fatalf("cancellation not surfaced: %v", err)
	}
	if mem.closes != 1 {
		t.Fatalf("sink closed %d times after cancellation, want once", mem.closes)
	}
	// The buffered JSONL writer must have been flushed by Close: whatever
	// made it out before cancellation is complete, parseable lines.
	recs, rerr := repro.ReadTrialRecords(bytes.NewReader(buf.Bytes()))
	if rerr != nil {
		t.Fatalf("partial artifact corrupt: %v\n%q", rerr, buf.String())
	}
	if len(recs) == 0 {
		t.Fatal("cancellation lost every completed record (nothing flushed)")
	}
	if int64(len(recs)) != jsonl.Count() {
		t.Fatalf("artifact has %d records, sink counted %d", len(recs), jsonl.Count())
	}
	for _, rec := range recs {
		if rec.Protocol == "" || rec.N != 8 {
			t.Fatalf("partial record corrupt: %+v", rec)
		}
	}
}

// TestObserverAndSinkSerialized is the race-detector half of the callback
// concurrency contract: Observer and Sink calls come from worker
// goroutines but are serialized, so unsynchronized captured state is safe.
// Run with -race (CI does) to enforce it.
func TestObserverAndSinkSerialized(t *testing.T) {
	var observerCalls int // deliberately unsynchronized
	lastDone := make(map[string]int)
	sink := &racySink{}
	rep, err := repro.NewExperiment().
		ProtocolNames("ppl").
		Sizes(8, 16).
		Trials(6).
		Workers(4).
		Observer(func(p repro.Progress) {
			observerCalls++
			key := fmt.Sprintf("%s/%d", p.Protocol, p.N)
			if p.Done <= lastDone[key] {
				t.Errorf("Done regressed for %s: %d after %d", key, p.Done, lastDone[key])
			}
			lastDone[key] = p.Done
		}).
		Sinks(sink).
		Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if observerCalls != 12 {
		t.Fatalf("observer saw %d calls, want 12", observerCalls)
	}
	if sink.records != 12 || sink.closes != 1 {
		t.Fatalf("sink saw %d records, %d closes", sink.records, sink.closes)
	}
	if len(rep.Rows) != 1 {
		t.Fatalf("report rows: %d", len(rep.Rows))
	}
}

// TestProbeWithNilFactoryResult: a factory returning nil is tolerated —
// the trial just runs with the built-in recording probe alone.
func TestProbeWithNilFactoryResult(t *testing.T) {
	sink := &memSink{}
	_, err := repro.NewExperiment().
		ProtocolNames("ppl").
		Sizes(8).
		Trials(2).
		ProbeWith(func() repro.Probe { return nil }).
		Sinks(sink).
		Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(sink.recs) != 2 {
		t.Fatalf("sink saw %d records", len(sink.recs))
	}
}

// racySink counts without locks — safe only because the experiment
// serializes Record calls.
type racySink struct {
	records int
	closes  int
}

func (s *racySink) Record(repro.TrialRecord) error { s.records++; return nil }
func (s *racySink) Close() error                   { s.closes++; return nil }
