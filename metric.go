package repro

import (
	"fmt"

	"repro/internal/stats"
)

// Metric is one composable report aggregation: a named per-trial
// observable (any key a probe writes into TrialRecord.Observables — see
// TrialRecord for the standard set) reduced over a cell's trials by an
// aggregator. Attach metrics to an Experiment with Metrics; each cell of
// the resulting Report then carries the metric's value over the trials
// where the observable is present (recovery_steps, for instance, exists
// only on converged trials), rendered as an extra Markdown table per
// metric and a "metrics" object per cell in JSON. Cells with no matching
// trial omit the metric entirely — missing data is absent, never a stale
// zero.
type Metric struct {
	// Observable is the TrialRecord observable to aggregate.
	Observable string
	// Agg is the reduction: "mean", "median", "p90", "min", "max", "std",
	// "sum" or "count".
	Agg string
	// Label overrides the rendered name; empty selects "agg(observable)".
	Label string
}

// MeanOf returns the mean-aggregation metric over an observable.
func MeanOf(observable string) Metric { return Metric{Observable: observable, Agg: "mean"} }

// MedianOf returns the median-aggregation metric over an observable.
func MedianOf(observable string) Metric { return Metric{Observable: observable, Agg: "median"} }

// P90Of returns the 90th-percentile metric over an observable.
func P90Of(observable string) Metric { return Metric{Observable: observable, Agg: "p90"} }

// MinOf returns the minimum metric over an observable.
func MinOf(observable string) Metric { return Metric{Observable: observable, Agg: "min"} }

// MaxOf returns the maximum metric over an observable.
func MaxOf(observable string) Metric { return Metric{Observable: observable, Agg: "max"} }

// SumOf returns the sum metric over an observable.
func SumOf(observable string) Metric { return Metric{Observable: observable, Agg: "sum"} }

// CountOf returns the sample-count metric over an observable — how many
// trials of the cell carried it at all.
func CountOf(observable string) Metric { return Metric{Observable: observable, Agg: "count"} }

// label is the rendered column name.
func (m Metric) label() string {
	if m.Label != "" {
		return m.Label
	}
	return fmt.Sprintf("%s(%s)", m.Agg, m.Observable)
}

// validate rejects malformed metrics at Run/Stream time.
func (m Metric) validate() error {
	if m.Observable == "" {
		return fmt.Errorf("repro: metric %q has no observable", m.label())
	}
	switch m.Agg {
	case "mean", "median", "p90", "min", "max", "std", "sum", "count":
		return nil
	default:
		return fmt.Errorf("repro: metric %q has unknown aggregation %q", m.label(), m.Agg)
	}
}

// apply reduces the samples; ok is false when there are none.
func (m Metric) apply(xs []float64) (float64, bool) {
	if m.Agg == "count" {
		return float64(len(xs)), true
	}
	if len(xs) == 0 {
		return 0, false
	}
	switch m.Agg {
	case "mean":
		return stats.Mean(xs), true
	case "median":
		return stats.Quantile(xs, 0.5), true
	case "p90":
		return stats.Quantile(xs, 0.9), true
	case "std":
		return stats.StdDev(xs), true
	case "sum":
		sum := 0.0
		for _, x := range xs {
			sum += x
		}
		return sum, true
	case "min":
		min := xs[0]
		for _, x := range xs[1:] {
			if x < min {
				min = x
			}
		}
		return min, true
	case "max":
		max := xs[0]
		for _, x := range xs[1:] {
			if x > max {
				max = x
			}
		}
		return max, true
	}
	return 0, false
}
