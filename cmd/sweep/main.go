// Command sweep runs the full experiment suite (E1–E14) and prints a
// markdown report; protocol rows run through the public repro.Experiment
// API.
//
// Every trial-driving section fans its independent trials out across the
// internal/runner worker pool; per-trial seeds are derived deterministically
// from the trial index, so the report is identical whatever the worker
// count — parallelism only changes wall-clock time.
//
// Usage:
//
//	sweep                 full profile (minutes)
//	sweep -quick          reduced sizes/trials (tens of seconds)
//	sweep -only E8        run a single experiment section (E1..E14)
//	sweep -workers 4      cap the trial worker pool (default: all cores)
//	sweep -json FILE      also write the E1 Table 1 report as JSON
//	sweep -csv FILE       also write the E1 Table 1 report as CSV
//	sweep -record FILE    also stream the E1 per-trial records as JSONL
//	sweep -maxstates K    cap the interned engine's state interner at K
package main

import (
	"context"
	"flag"
	"fmt"
	"math"
	"os"
	"strings"
	"sync/atomic"
	"time"

	"repro"
	"repro/internal/core"
	"repro/internal/lottery"
	"repro/internal/orient"
	"repro/internal/population"
	"repro/internal/runner"
	"repro/internal/stats"
	"repro/internal/twohop"
	"repro/internal/xrand"
)

type profile struct {
	table1Sizes  []int
	table1Trials int
	deepSizes    []int
	deepTrials   int
	orientSizes  []int
	trials       int
}

// pool is the worker-pool configuration shared by every section; set from
// the -workers flag in main.
var pool runner.Options

// table1Report holds the E1 report for the -json/-csv artifact writers.
var table1Report *repro.Report

// recordPath is the -record destination; E1 streams its TrialRecords
// there as trials finish.
var recordPath string

// maxInternStates is the -maxstates interner-capacity override applied to
// every section's scenarios (0 = engine default).
var maxInternStates int

// recordCount is the number of records E1 streamed to -record, -1 until
// the section runs.
var recordCount int64 = -1

func main() {
	quick := flag.Bool("quick", false, "reduced sizes and trial counts")
	only := flag.String("only", "", "run a single section (E1..E14)")
	workers := flag.Int("workers", 0, "trial worker-pool size (0 = all cores)")
	jsonPath := flag.String("json", "", "write the E1 Table 1 report as JSON to this file")
	csvPath := flag.String("csv", "", "write the E1 Table 1 report as CSV to this file")
	record := flag.String("record", "", "stream the E1 per-trial records as JSONL to this file")
	maxStates := flag.Int("maxstates", 0, "interner capacity cap per trial (0 = engine default; interned runs fall back to the generic engine past it)")
	flag.Parse()
	pool = runner.Options{Workers: *workers}
	recordPath = *record
	maxInternStates = *maxStates

	prof := profile{
		table1Sizes:  []int{16, 32, 64, 128},
		table1Trials: 5,
		deepSizes:    []int{64, 128, 256, 512, 1024},
		deepTrials:   5,
		orientSizes:  []int{32, 64, 128, 256, 512},
		trials:       10,
	}
	if *quick {
		prof = profile{
			table1Sizes:  []int{16, 32, 64},
			table1Trials: 3,
			deepSizes:    []int{32, 64, 128},
			deepTrials:   3,
			orientSizes:  []int{16, 32, 64},
			trials:       5,
		}
	}

	sections := []struct {
		id  string
		run func(profile)
	}{
		{"E1", e1Table1}, {"E3", e3Figure1}, {"E4", e4Figure2},
		{"E5", e5Lemma23}, {"E6", e6Lottery}, {"E7", e7Modes},
		{"E8", e8Theorem31}, {"E9", e9Orientation}, {"E10", e10Kappa},
		{"E11", e11Psi}, {"E12", e12Elimination}, {"E13", e13Closure},
		{"E14", e14Adversary},
	}
	start := time.Now()
	for _, s := range sections {
		if *only != "" && !strings.EqualFold(*only, s.id) {
			continue
		}
		s.run(prof)
	}
	writeReport(*jsonPath, *csvPath)
	fmt.Printf("\n_sweep completed in %v_\n", time.Since(start).Round(time.Second))
}

// writeReport writes the E1 report artifacts requested by -json/-csv.
func writeReport(jsonPath, csvPath string) {
	if recordPath != "" && recordCount < 0 {
		fmt.Fprintln(os.Stderr, "sweep: -record needs the E1 section (remove -only or use -only E1)")
		os.Exit(1)
	}
	if jsonPath == "" && csvPath == "" {
		return
	}
	if table1Report == nil {
		fmt.Fprintln(os.Stderr, "sweep: -json/-csv need the E1 section (remove -only or use -only E1)")
		os.Exit(1)
	}
	if jsonPath != "" {
		data, err := table1Report.JSON()
		check(err)
		check(os.WriteFile(jsonPath, data, 0o644))
	}
	if csvPath != "" {
		data, err := table1Report.CSV()
		check(err)
		check(os.WriteFile(csvPath, data, 0o644))
	}
}

func header(id, title string) {
	fmt.Printf("\n## %s — %s\n\n", id, title)
}

// check aborts the sweep on a trial-execution error (a cancelled context or
// a panicking trial surfaced by the runner pool).
func check(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "sweep:", err)
		os.Exit(1)
	}
}

// sweepRow runs one protocol through the public Experiment API and returns
// its report row (cells in size order plus the fitted exponent).
func sweepRow(p repro.Protocol, sc repro.Scenario, sizes []int, trials int) repro.ReportRow {
	sc.MaxStates = maxInternStates
	rep, err := repro.NewExperiment().
		Protocols(p).
		Sizes(sizes...).
		Trials(trials).
		Scenario(sc).
		Workers(pool.Workers).
		Run(context.Background())
	check(err)
	return rep.Rows[0]
}

// normalizedBy divides each cell's mean steps by f(n) — flatness against a
// conjectured growth law.
func normalizedBy(cells []repro.ReportCell, f func(n int) float64) []float64 {
	var out []float64
	for _, c := range cells {
		if c.Steps.Count == 0 {
			continue
		}
		out = append(out, c.Steps.Mean/f(c.N))
	}
	return out
}

// cellMean returns the mean convergence steps of a cell, or 0 without data.
func cellMean(c repro.ReportCell) float64 {
	if c.Steps.Count == 0 {
		return 0
	}
	return c.Steps.Mean
}

// trialMeans runs trials of fn in parallel and returns the mean of the
// successful samples. fn must be a pure function of the trial index.
func trialMeans(trials int, fn func(trial int) (float64, bool)) float64 {
	type sample struct {
		v  float64
		ok bool
	}
	results, err := runner.Map(context.Background(), trials, func(t int) sample {
		v, ok := fn(t)
		return sample{v, ok}
	}, pool)
	check(err)
	var xs []float64
	for _, s := range results {
		if s.ok {
			xs = append(xs, s.v)
		}
	}
	return stats.Mean(xs)
}

// e1Table1 regenerates Table 1 (E1 time column, E2 states column) through
// the Experiment builder — the same protocols, sizes and seeds as
// repro.Comparison — and keeps the structured report for -json/-csv.
func e1Table1(p profile) {
	header("E1/E2", "Table 1: convergence time and state count per protocol")
	exp := repro.NewExperiment().
		ProtocolNames("angluin", "fj", "chenchen", "yokota", "ppl").
		Sizes(p.table1Sizes...).
		Trials(p.table1Trials).
		MaxSizeFor("[11] Chen–Chen", 16).
		Workers(pool.Workers)
	var sink *repro.JSONLSink
	if recordPath != "" {
		var err error
		sink, err = repro.CreateJSONL(recordPath)
		check(err)
		exp.Sinks(sink) // Run closes (and flushes) the sink
	}
	rep, err := exp.Run(context.Background())
	check(err)
	if sink != nil {
		recordCount = sink.Count()
		fmt.Fprintf(os.Stderr, "sweep: streamed %d trial records to %s\n", recordCount, recordPath)
	}
	table1Report = rep
	fmt.Print(rep.Markdown())
	fmt.Println("\nBits per agent (E2, P_PL vs [28]):")
	fmt.Println("\n| n | P_PL bits | [28] bits |")
	fmt.Println("|---|---|---|")
	for _, n := range []int{1 << 6, 1 << 10, 1 << 14, 1 << 18} {
		ppl := core.NewParams(n).BitsPerAgent()
		yok := math.Log2(float64(2 * uint64(2*n+1) * 12))
		fmt.Printf("| %d | %.1f | %.1f |\n", n, ppl, yok)
	}
}

// e3Figure1 prints the Figure 1 embedding and the Lemma 3.2 search.
func e3Figure1(profile) {
	header("E3", "Figure 1: segment-ID embedding and Lemma 3.2")
	p := core.NewParams(16)
	fmt.Println("```")
	fmt.Print(p.FormatRing(p.PerfectConfig(0, 8)))
	fmt.Println("```")
	fmt.Printf("\nperfect configuration is in S_PL: %v\n", p.IsSafe(p.PerfectConfig(0, 8)))
	// Monte Carlo Lemma 3.2: random leaderless aligned configurations, one
	// independent seed per trial so the trials parallelize.
	var violations atomic.Int64
	const trials = 10000
	err := runner.ForEach(context.Background(), trials, func(i int) {
		rng := xrand.New(runner.DeriveSeed(1, i))
		cfg := make([]core.State, p.N)
		for j := range cfg {
			cfg[j] = core.State{Dist: uint16(j % p.TwoPsi()), B: uint8(rng.Intn(2))}
		}
		if !p.IsPerfect(cfg) {
			violations.Add(1)
		}
	}, pool)
	check(err)
	fmt.Printf("Lemma 3.2 Monte Carlo: %d/%d leaderless configurations imperfect (must be all)\n",
		violations.Load(), trials)
}

// e4Figure2 prints trajectory lengths.
func e4Figure2(profile) {
	header("E4", "Figure 2: token trajectory length = 2ψ²−2ψ+1")
	fmt.Println("| ψ | observed moves | 2ψ²−2ψ+1 | path matches Figure 2 zigzag |")
	fmt.Println("|---|---|---|---|")
	for _, psi := range []int{4, 5, 6, 7, 8} {
		positions, _, par := core.TrajectoryTrace(psi, 3)
		want := core.CanonicalZigzag(psi)
		match := len(positions) == len(want)
		for i := range want {
			if !match || positions[i] != want[i] {
				match = false
				break
			}
		}
		fmt.Printf("| %d | %d | %d | %v |\n", psi, len(positions)+1, par.TrajectoryLength(), match)
	}
}

// e5Lemma23 measures interaction-sequence occurrence times.
func e5Lemma23(p profile) {
	header("E5", "Lemma 2.3: seq_R(0, ℓ) occurs in ~nℓ steps")
	fmt.Println("| n | ℓ | mean steps | n·ℓ | ratio |")
	fmt.Println("|---|---|---|---|---|")
	for _, n := range []int{32, 128, 512} {
		for _, ell := range []int{n / 2, n, 2 * n} {
			schedule := population.ScheduleSeqR(n, 0, ell)
			base := uint64(n)*1_000_003 + uint64(ell)
			mean := trialMeans(p.trials, func(t int) (float64, bool) {
				rng := xrand.New(runner.DeriveSeed(base, t))
				return float64(population.OccurrenceTime(n, schedule, rng)), true
			})
			fmt.Printf("| %d | %d | %.0f | %d | %.3f |\n", n, ell, mean, n*ell, mean/float64(n*ell))
		}
	}
}

// e6Lottery estimates the Lemma 3.9/3.10 tail probabilities; the (k, c)
// grid cells are independent and run in parallel.
func e6Lottery(profile) {
	header("E6", "Lemmas 3.9/3.10: lottery game tail bounds")
	const trials = 4000
	type cell struct{ k, c int }
	var grid []cell
	for _, k := range []int{3, 4, 5, 6} {
		for _, c := range []int{1, 2} {
			grid = append(grid, cell{k, c})
		}
	}
	rows, err := runner.Map(context.Background(), len(grid), func(i int) string {
		k, c := grid[i].k, grid[i].c
		rng := xrand.New(runner.DeriveSeed(6, i))
		f39, b39 := lottery.Lemma39Params(k, c)
		f310, b310 := lottery.Lemma310Params(k, c)
		p39 := lottery.TailAtMost(k, f39, b39, trials, rng)
		p310 := lottery.TailAtLeast(k, f310, b310, trials, rng)
		bound := 1 - math.Pow(2, -float64(c*k))
		return fmt.Sprintf("| %d | %d | %.4f | %.4f | %.4f | %.4f |", k, c, p39, bound, p310, bound)
	}, pool)
	check(err)
	fmt.Println("| k | c | Pr(W ≤ 8ck in 4ck·2^k) | bound 1−2^−ck | Pr(W ≥ 16ck in 64ck·2^k) | bound |")
	fmt.Println("|---|---|---|---|---|---|")
	for _, row := range rows {
		fmt.Println(row)
	}
}

// e7Modes measures Lemma 3.7: time for a leaderless ring to go all-Detect.
// Ring sizes with 2ψ | n keep the distance labels seam-free, so no leader
// can be created before the modes settle.
func e7Modes(p profile) {
	header("E7", "Lemmas 3.6/3.7: mode determination timing")
	fmt.Println("| n | mean steps to all-Detect (no leader) | steps/(n² log n) |")
	fmt.Println("|---|---|---|")
	sizes := []int{16, 48, 112}
	if len(p.deepSizes) < 4 {
		sizes = []int{16, 48} // quick profile
	}
	for _, n := range sizes {
		par := core.NewParams(n)
		pr := core.New(par)
		mean := trialMeans(p.deepTrials, func(t int) (float64, bool) {
			eng := population.NewEngine(population.DirectedRing(n), pr.Step, xrand.New(uint64(t)))
			cfg := par.NoLeaderAligned()
			for j := range cfg {
				cfg[j].Clock = 0
			}
			eng.SetStates(cfg)
			steps, ok := eng.RunUntil(func(c []core.State) bool {
				allDetect := true
				for _, s := range c {
					if s.Leader {
						return true
					}
					if par.Mode(s) != core.Detect {
						allDetect = false
					}
				}
				return allDetect
			}, n, 4000*uint64(n)*uint64(n)*uint64(par.Psi))
			return float64(steps), ok
		})
		fmt.Printf("| %d | %.0f | %.3f |\n", n, mean, mean/(float64(n)*float64(n)*math.Log2(float64(n))))
	}
}

// e8Theorem31 is the headline sweep: P_PL convergence and normalization.
func e8Theorem31(p profile) {
	header("E8", "Theorem 3.1: P_PL reaches S_PL in O(n² log n) steps")
	classes := []struct {
		name string
		init repro.InitClass
	}{
		{"random", repro.InitRandom},
		{"allleaders", repro.InitAllLeaders},
		{"corrupted", repro.InitCorrupted},
	}
	fmt.Println("| init class | " + sizesHeader(p.deepSizes) + " fitted exponent |")
	fmt.Println("|---|" + strings.Repeat("---|", len(p.deepSizes)+1))
	for _, cl := range classes {
		row := sweepRow(repro.PPL(0, 0), repro.Scenario{Init: cl.init}, p.deepSizes, p.deepTrials)
		fmt.Printf("| %s |", cl.name)
		for _, c := range row.Cells {
			fmt.Printf(" %.3g |", c.Steps.Mean)
		}
		fmt.Printf(" n^%.2f |\n", row.Exponent)
	}
	// The leaderless class behaves qualitatively differently depending on
	// whether 2ψ divides n: with a seam, the first distance wrap is an
	// instant witness; without one, only the token machinery can detect.
	// Report it on seam-free sizes where detection is genuinely hard.
	fmt.Println("\nLeaderless starts (all-Detect, aligned distances), seam-free sizes (2ψ | n):")
	fmt.Println("\n| n | mean steps | notes |")
	fmt.Println("|---|---|---|")
	for _, n := range []int{16, 48, 112, 256} {
		row := sweepRow(repro.PPL(0, 0), repro.Scenario{Init: repro.InitNoLeader}, []int{n}, p.deepTrials)
		fmt.Printf("| %d | %.3g | token-comparison detection + full reconstruction |\n",
			n, row.Cells[0].Steps.Mean)
	}
	// Normalized flatness for the random class.
	row := sweepRow(repro.PPL(0, 0), repro.Scenario{}, p.deepSizes, p.deepTrials)
	norm := normalizedBy(row.Cells, func(n int) float64 {
		return float64(n) * float64(n) * math.Log2(float64(n))
	})
	fmt.Printf("\nsteps/(n² log n), random class: %s — flat ⇒ the bound is tight up to constants.\n",
		floats(norm))
	// Contrast: [28] at the same sizes for the ×log n separation.
	yok := sweepRow(mustProtocol("yokota"), repro.Scenario{}, p.deepSizes, p.deepTrials)
	normY := normalizedBy(yok.Cells, func(n int) float64 { return float64(n) * float64(n) })
	fmt.Printf("steps/n², [28] baseline:        %s — flat ⇒ Θ(n²), the paper's separation.\n", floats(normY))
}

// e9Orientation measures Theorem 5.2.
func e9Orientation(p profile) {
	header("E9", "Theorem 5.2: ring orientation in O(n² log n) steps, O(1) states")
	fmt.Println("| n | mean steps | steps/(n² log n) |")
	fmt.Println("|---|---|---|")
	var xs, ys []float64
	for _, n := range p.orientSizes {
		colors := twohop.Coloring(n)
		pr := orient.New()
		mean := trialMeans(p.deepTrials, func(t int) (float64, bool) {
			eng := population.NewEngine(population.UndirectedRing(n), pr.Step, xrand.New(uint64(t)))
			eng.SetStates(orient.InitialConfig(colors, xrand.New(uint64(t)+500)))
			eng.SetTracker(population.NewRingTracker(orient.OrientedSpec()))
			steps, ok := eng.RunUntilConverged(6000 * uint64(n) * uint64(n))
			return float64(steps), ok
		})
		xs = append(xs, float64(n))
		ys = append(ys, mean)
		fmt.Printf("| %d | %.0f | %.3f |\n", n, mean, mean/(float64(n)*float64(n)*math.Log2(float64(n))))
	}
	fmt.Printf("\nfitted exponent: n^%.2f (paper: O(n² log n)); states/agent: %d (constant).\n",
		stats.PowerLawExponent(xs, ys), orient.StateCount(3))
}

// e10Kappa sweeps the κ_max multiplier. Random dense starts converge
// through elimination and construction only, so they are κ_max-blind; the
// detection-dominated cold leaderless start (clocks at zero, seam-free
// n = 48) exposes the linear κ_max cost of climbing to detection mode.
func e10Kappa(p profile) {
	header("E10", "Ablation: κ_max = c₁ψ (footnote 2)")
	n := 48 // ψ=6, 2ψ | n: distance labels are seam-free
	fmt.Println("| c₁ | steps to S_PL (random start) | steps to S_PL (cold leaderless) | failures |")
	fmt.Println("|---|---|---|---|")
	for _, c1 := range []int{2, 4, 8, 16, 32} {
		random := sweepRow(repro.PPL(0, c1), repro.Scenario{}, []int{n}, p.trials)
		cold := sweepRow(repro.PPL(0, c1), repro.Scenario{Init: repro.InitNoLeaderCold}, []int{n}, p.trials)
		fmt.Printf("| %d | %.3g | %.3g | %d |\n", c1,
			cellMean(random.Cells[0]), cellMean(cold.Cells[0]),
			random.Cells[0].Failures+cold.Cells[0].Failures)
	}
	fmt.Println("\nRandom starts are κ_max-insensitive (identical trajectories: the clock")
	fmt.Println("value only matters through detection mode, which dense starts never use);")
	fmt.Println("the cold leaderless start pays ~linearly for larger κ_max before it can detect.")
}

// e11Psi sweeps the knowledge slack.
func e11Psi(p profile) {
	header("E11", "Ablation: slack in ψ = ⌈log n⌉ + O(1)")
	n := 64
	fmt.Println("| slack | ψ | bits/agent | mean steps to S_PL |")
	fmt.Println("|---|---|---|---|")
	for _, slack := range []int{0, 1, 2, 4} {
		par := core.NewParamsSlack(n, slack, core.DefaultC1)
		row := sweepRow(repro.PPL(slack, 0), repro.Scenario{}, []int{n}, p.trials)
		fmt.Printf("| %d | %d | %.1f | %.3g |\n", slack, par.Psi, par.BitsPerAgent(), row.Cells[0].Steps.Mean)
	}
}

// e12Elimination measures the war from an all-leaders start.
func e12Elimination(p profile) {
	header("E12", "Lemma 4.11: EliminateLeaders reaches one leader in Θ(n²)-class time")
	fmt.Println("| n | mean steps to 1 leader | steps/n² |")
	fmt.Println("|---|---|---|")
	var xs, ys []float64
	for _, n := range p.deepSizes[:min(4, len(p.deepSizes))] {
		par := core.NewParams(n)
		pr := core.New(par)
		mean := trialMeans(p.deepTrials, func(t int) (float64, bool) {
			eng := population.NewEngine(population.DirectedRing(n), pr.Step, xrand.New(uint64(t)))
			eng.SetStates(par.AllLeaders())
			eng.TrackLeaders(core.IsLeader)
			// Exact hitting time of "one leader left": a one-channel
			// incremental count instead of a periodic O(n) re-scan.
			eng.SetTracker(population.NewRingTracker(population.RingSpec[core.State]{
				AgentMask: func(s core.State) uint8 {
					if s.Leader {
						return 1
					}
					return 0
				},
				Converged: func(c *population.LocalCounts, _ []core.State) bool {
					return c.Agent[0] == 1
				},
			}))
			steps, ok := eng.RunUntilConverged(4000 * uint64(n) * uint64(n))
			return float64(steps), ok
		})
		xs = append(xs, float64(n))
		ys = append(ys, mean)
		fmt.Printf("| %d | %.0f | %.3f |\n", n, mean, mean/(float64(n)*float64(n)))
	}
	fmt.Printf("\nfitted exponent: n^%.2f (paper: O(n²) expected).\n", stats.PowerLawExponent(xs, ys))
}

// e13Closure holds a safe configuration for a long run; the per-size holds
// are independent and run in parallel.
func e13Closure(p profile) {
	header("E13", "Lemma 4.7: closure of S_PL")
	fmt.Println("| n | steps held | leader changes | still in S_PL |")
	fmt.Println("|---|---|---|---|")
	sizes := []int{16, 64, 256}
	rows, err := runner.Map(context.Background(), len(sizes), func(i int) string {
		n := sizes[i]
		par := core.NewParams(n)
		pr := core.New(par)
		eng := population.NewEngine(population.DirectedRing(n), pr.Step, xrand.New(uint64(n)))
		eng.SetStates(par.PerfectConfig(0, 1))
		eng.TrackLeaders(core.IsLeader)
		hold := uint64(2_000_000)
		eng.Run(hold)
		return fmt.Sprintf("| %d | %d | %d | %v |", n, hold, eng.LeaderChanges(), par.IsSafe(eng.Config()))
	}, pool)
	check(err)
	for _, row := range rows {
		fmt.Println(row)
	}
}

// e14Adversary measures P_PL against the scheduler-and-dynamics
// adversaries: biased arc distributions, periodic eclipses of an arc
// interval, churn (agents leaving and joining with ring re-splicing) and
// stuck agents. The first two rows are the built-in differential check —
// the explicit uniform scheduler must reproduce the fast path's numbers
// exactly, because it draws the byte-identical RNG stream through the
// scheduler plumbing.
func e14Adversary(p profile) {
	header("E14", "Scheduler adversaries: biased arcs, eclipses, churn, stuck agents")
	n := 64
	nn := uint64(n) * uint64(n)
	adversaries := []struct {
		name  string
		sched *repro.SchedulerSpec
	}{
		{"uniform (fast path)", nil},
		{"uniform (scheduler plumbing)", &repro.SchedulerSpec{Kind: "uniform"}},
		{"hotspot: 8 arcs ×16", &repro.SchedulerSpec{Kind: "biased", Family: "hotspot", HotArcs: 8, Weight: 16}},
		{"ramp: ×16 around the ring", &repro.SchedulerSpec{Kind: "biased", Family: "ramp", Weight: 16}},
		{"eclipse: n/4 arcs for 2n² steps", &repro.SchedulerSpec{Kind: "eclipse", Start: 1, Period: 1 << 40, Duration: 2 * nn, Arcs: n / 4}},
		{"churn: −4 @2n², +4 @4n²", &repro.SchedulerSpec{Churn: []repro.ChurnEvent{{AtStep: 2 * nn, Remove: 4}, {AtStep: 4 * nn, Insert: 4}}}},
		{"stuck: 2 frozen agents", &repro.SchedulerSpec{Stuck: 2}},
	}
	proto := repro.PPL(0, 0)
	fmt.Printf("P_PL, n = %d, %d trials per adversary:\n\n", n, p.table1Trials)
	fmt.Println("| adversary | mean steps | converged | dynamics |")
	fmt.Println("|---|---|---|---|")
	for _, adv := range adversaries {
		sc := repro.Scenario{Sched: adv.sched}
		check(proto.Validate(sc))
		type outcome struct {
			rec repro.TrialRecord
			err error
		}
		outs, err := runner.Map(context.Background(), p.table1Trials, func(t int) outcome {
			probe := &repro.RecordingProbe{}
			_, err := repro.ProbeTrial(proto, sc, n, repro.TrialSeed(n, t), probe)
			return outcome{probe.Record(), err}
		}, pool)
		check(err)
		var steps []float64
		var recovery []float64
		converged := 0
		dynamics := "—"
		for _, o := range outs {
			check(o.err)
			if o.rec.Converged {
				converged++
				steps = append(steps, float64(o.rec.Steps))
			}
			obs := o.rec.Observables
			if rc, ok := obs["eclipse_recovery_steps"]; ok {
				recovery = append(recovery, rc)
			}
			if ce, ok := obs["churn_events"]; ok {
				dynamics = fmt.Sprintf("%.0f churn events, live min %.0f", ce, obs["live_agents_min"])
			}
		}
		if len(recovery) > 0 {
			dynamics = fmt.Sprintf("mean recovery %.0f steps after the window", stats.Mean(recovery))
		}
		meanSteps := "no trial converged"
		if len(steps) > 0 {
			meanSteps = fmt.Sprintf("%.3g", stats.Mean(steps))
		}
		fmt.Printf("| %s | %s | %d/%d | %s |\n",
			adv.name, meanSteps, converged, p.table1Trials, dynamics)
	}
	fmt.Println("\nThe two uniform rows must agree exactly (same RNG stream through the")
	fmt.Println("scheduler plumbing); the adversaries stress self-stabilization beyond")
	fmt.Println("the paper's uniform-scheduler model.")
}

// mustProtocol resolves a registered protocol or aborts the sweep.
func mustProtocol(name string) repro.Protocol {
	p, err := repro.NewProtocol(name)
	check(err)
	return p
}

func sizesHeader(sizes []int) string {
	var b strings.Builder
	for _, n := range sizes {
		fmt.Fprintf(&b, "n=%d | ", n)
	}
	return b.String()
}

func floats(xs []float64) string {
	parts := make([]string, len(xs))
	for i, x := range xs {
		parts[i] = fmt.Sprintf("%.3f", x)
	}
	return strings.Join(parts, ", ")
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
