// Command figures regenerates the paper's two figures as text diagrams:
//
//	figures -fig 1    segment-ID embedding on a ring (Figure 1)
//	figures -fig 2    black-token trajectory (Figure 2)
//	figures           both
package main

import (
	"flag"
	"fmt"
	"strings"

	"repro/internal/core"
)

func main() {
	fig := flag.Int("fig", 0, "figure to print (1 or 2; 0 = both)")
	n := flag.Int("n", 15, "ring size for figure 1")
	psi := flag.Int("psi", 4, "ψ for figure 2 (>= 4)")
	flag.Parse()

	if *fig == 0 || *fig == 1 {
		printFigure1(*n)
	}
	if *fig == 0 || *fig == 2 {
		printFigure2(*psi)
	}
}

// printFigure1 reproduces Figure 1: a perfect configuration whose segment
// IDs increase by one clockwise from the leader, and the Lemma 3.2 fact
// that removing the leader necessarily breaks the embedding.
func printFigure1(n int) {
	p := core.NewParams(n)
	fmt.Printf("Figure 1 — segment-ID embedding (n=%d, ψ=%d)\n\n", n, p.Psi)
	cfg := p.PerfectConfig(0, 8)
	fmt.Print(p.FormatRing(cfg))
	fmt.Printf("\nperfect: %v   safe (S_PL): %v\n", p.IsPerfect(cfg), p.IsSafe(cfg))

	// Panel (c): a leaderless ring cannot be perfect (Lemma 3.2).
	if p.N%p.TwoPsi() == 0 {
		noLeader := p.NoLeaderAligned()
		fmt.Printf("\nLeaderless variant (aligned distances):\n")
		fmt.Print(p.FormatRing(noLeader))
		fmt.Printf("perfect: %v  (Lemma 3.2: must be false)\n", p.IsPerfect(noLeader))
	}
	fmt.Println()
}

// printFigure2 reproduces Figure 2: the zigzag trajectory of a black
// token, replayed deterministically with the Lemma 3.5 schedule.
func printFigure2(psi int) {
	if psi < 4 {
		psi = 4
	}
	positions, final, p := core.TrajectoryTrace(psi, 3)
	fmt.Printf("Figure 2 — token trajectory (ψ=%d, ring n=%d)\n\n", psi, p.N)
	width := 2 * psi
	for _, pos := range positions {
		line := make([]byte, width)
		for i := range line {
			line[i] = '.'
		}
		line[pos] = '*'
		fmt.Printf("  u0 %s u%d\n", string(line), width-1)
	}
	fmt.Printf("\nobserved moves: %d (+1 final, consumed on arrival) = %d = 2ψ²−2ψ+1\n",
		len(positions), p.TrajectoryLength())
	ids := []string{}
	for seg := 0; seg < 2; seg++ {
		start := seg * psi
		id := uint64(0)
		for t := 0; t < psi; t++ {
			id |= uint64(final[start+t].B) << uint(t)
		}
		ids = append(ids, fmt.Sprintf("ι(S_%d)=%d", seg, id))
	}
	fmt.Printf("segment IDs after the trajectory: %s\n\n", strings.Join(ids, ", "))
}
