// Command figures regenerates the paper's two figures as text diagrams,
// and renders streamed TrialRecord artifacts as trajectory plots:
//
//	figures -fig 1          segment-ID embedding on a ring (Figure 1)
//	figures -fig 2          black-token trajectory (Figure 2)
//	figures                 both
//	figures -records FILE   leader-count trajectories and recovery times
//	                        from a JSONL record artifact (the -record
//	                        output of sweep/ringsim, -records of bench)
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"

	"repro"
	"repro/internal/core"
)

func main() {
	fig := flag.Int("fig", 0, "figure to print (1 or 2; 0 = both)")
	n := flag.Int("n", 15, "ring size for figure 1")
	psi := flag.Int("psi", 4, "ψ for figure 2 (>= 4)")
	records := flag.String("records", "", "render a JSONL TrialRecord artifact instead of the paper figures")
	maxTraj := flag.Int("maxtraj", 4, "trajectories plotted per protocol with -records")
	flag.Parse()

	if *records != "" {
		if err := printRecords(*records, *maxTraj); err != nil {
			fmt.Fprintln(os.Stderr, "figures:", err)
			os.Exit(1)
		}
		return
	}
	if *fig == 0 || *fig == 1 {
		printFigure1(*n)
	}
	if *fig == 0 || *fig == 2 {
		printFigure2(*psi)
	}
}

// printRecords renders a record artifact: one summary line per record
// (steps, recovery, peak leaders) grouped by protocol, and an ASCII
// leader-count trajectory for the first maxTraj records per protocol that
// carry the "leaders" series.
func printRecords(path string, maxTraj int) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	recs, err := repro.ReadTrialRecords(f)
	if err != nil {
		return err
	}
	if len(recs) == 0 {
		return fmt.Errorf("%s holds no records", path)
	}
	byProto := make(map[string][]repro.TrialRecord)
	var order []string
	for _, rec := range recs {
		if _, seen := byProto[rec.Protocol]; !seen {
			order = append(order, rec.Protocol)
		}
		byProto[rec.Protocol] = append(byProto[rec.Protocol], rec)
	}
	sort.Strings(order)
	fmt.Printf("Record artifact %s — %d trial records\n", path, len(recs))
	for _, proto := range order {
		group := byProto[proto]
		fmt.Printf("\n## %s (%d records)\n\n", proto, len(group))
		fmt.Println("| n | trial | seed | converged | steps | recovery steps | peak leaders |")
		fmt.Println("|---|---|---|---|---|---|---|")
		for _, rec := range group {
			fmt.Printf("| %d | %d | %d | %v | %d | %s | %s |\n",
				rec.N, rec.Trial, rec.Seed, rec.Converged, rec.Steps,
				obsField(rec, "recovery_steps"), obsField(rec, "leaders_peak"))
		}
		plotted := 0
		for _, rec := range group {
			if plotted >= maxTraj {
				break
			}
			series := rec.Series["leaders"]
			if len(series) == 0 {
				continue
			}
			plotted++
			fmt.Printf("\nleader-count trajectory (n=%d, trial %d, seed %d):\n\n", rec.N, rec.Trial, rec.Seed)
			fmt.Print(plotSeries(series))
		}
	}
	return nil
}

// obsField formats an observable, or the missing-cell dash.
func obsField(rec repro.TrialRecord, name string) string {
	if v, ok := rec.Observables[name]; ok {
		return fmt.Sprintf("%.0f", v)
	}
	return "—"
}

// plotSeries renders a step series as a fixed-width ASCII plot: the value
// axis is vertical, each column is one sample (downsampled to the width).
func plotSeries(series []repro.SeriesPoint) string {
	const width, height = 64, 8
	pts := series
	if len(pts) > width {
		sampled := make([]repro.SeriesPoint, 0, width)
		for i := 0; i < width; i++ {
			sampled = append(sampled, pts[i*len(pts)/width])
		}
		pts = sampled
	}
	maxV := 1.0
	for _, p := range pts {
		if p.Value > maxV {
			maxV = p.Value
		}
	}
	grid := make([][]byte, height)
	for r := range grid {
		grid[r] = []byte(strings.Repeat(" ", len(pts)))
	}
	for c, p := range pts {
		// Row 0 is the top; scale the value into [0, height-1].
		level := int(p.Value / maxV * float64(height-1))
		grid[height-1-level][c] = '*'
	}
	var b strings.Builder
	for r, row := range grid {
		label := "        "
		if r == 0 {
			label = fmt.Sprintf("%6.0f |", maxV)
		} else if r == height-1 {
			label = fmt.Sprintf("%6.0f |", 0.0)
		} else {
			label = "       |"
		}
		fmt.Fprintf(&b, "  %s%s\n", label, row)
	}
	fmt.Fprintf(&b, "         %s\n", strings.Repeat("-", len(pts)))
	fmt.Fprintf(&b, "         step 0 .. %d (%d samples)\n", series[len(series)-1].Step, len(series))
	return b.String()
}

// printFigure1 reproduces Figure 1: a perfect configuration whose segment
// IDs increase by one clockwise from the leader, and the Lemma 3.2 fact
// that removing the leader necessarily breaks the embedding.
func printFigure1(n int) {
	p := core.NewParams(n)
	fmt.Printf("Figure 1 — segment-ID embedding (n=%d, ψ=%d)\n\n", n, p.Psi)
	cfg := p.PerfectConfig(0, 8)
	fmt.Print(p.FormatRing(cfg))
	fmt.Printf("\nperfect: %v   safe (S_PL): %v\n", p.IsPerfect(cfg), p.IsSafe(cfg))

	// Panel (c): a leaderless ring cannot be perfect (Lemma 3.2).
	if p.N%p.TwoPsi() == 0 {
		noLeader := p.NoLeaderAligned()
		fmt.Printf("\nLeaderless variant (aligned distances):\n")
		fmt.Print(p.FormatRing(noLeader))
		fmt.Printf("perfect: %v  (Lemma 3.2: must be false)\n", p.IsPerfect(noLeader))
	}
	fmt.Println()
}

// printFigure2 reproduces Figure 2: the zigzag trajectory of a black
// token, replayed deterministically with the Lemma 3.5 schedule.
func printFigure2(psi int) {
	if psi < 4 {
		psi = 4
	}
	positions, final, p := core.TrajectoryTrace(psi, 3)
	fmt.Printf("Figure 2 — token trajectory (ψ=%d, ring n=%d)\n\n", psi, p.N)
	width := 2 * psi
	for _, pos := range positions {
		line := make([]byte, width)
		for i := range line {
			line[i] = '.'
		}
		line[pos] = '*'
		fmt.Printf("  u0 %s u%d\n", string(line), width-1)
	}
	fmt.Printf("\nobserved moves: %d (+1 final, consumed on arrival) = %d = 2ψ²−2ψ+1\n",
		len(positions), p.TrajectoryLength())
	ids := []string{}
	for seg := 0; seg < 2; seg++ {
		start := seg * psi
		id := uint64(0)
		for t := 0; t < psi; t++ {
			id |= uint64(final[start+t].B) << uint(t)
		}
		ids = append(ids, fmt.Sprintf("ι(S_%d)=%d", seg, id))
	}
	fmt.Printf("segment IDs after the trajectory: %s\n\n", strings.Join(ids, ", "))
}
