// Command ringsim runs one protocol instance on a ring and reports its
// convergence behavior, through the public repro.Protocol registry.
//
// Usage:
//
//	ringsim -proto ppl -n 64 -seed 1 -init random [-v]
//	ringsim -proto ppl -n 64 -trials 32            # parallel repetitions
//	ringsim -proto ppl -n 64 -faults 200@1000,100@5000
//	ringsim -proto ppl -n 64 -faults 200@1000 -record trial.jsonl
//	ringsim -proto ppl -n 64 -sched eclipse:period=100000,duration=20000,arcs=48
//	ringsim -proto ppl -n 64 -sched hotspot:arcs=8,weight=16 -stuck 2
//	ringsim -proto ppl -n 64 -churn del4@5000,add4@9000
//
// Protocols: any registered name — ppl (the paper's P_PL), yokota [28],
// angluin [5], fj [15], chenchen [11], orient (Section 5 ring
// orientation). Initial configurations (ppl only): random, noleader,
// allleaders, corrupted, noleadercold. -faults injects mid-run bursts of
// the form agents@step.
//
// -sched selects the arc scheduler (uniform | hotspot:arcs=K,weight=W |
// ramp:weight=W | eclipse:period=P,duration=D,arcs=K[,offset=O][,start=S]);
// -churn schedules mid-run ring re-splicing (del<K>@<step>, add<K>@<step>);
// -stuck freezes K randomly chosen agents for the whole trial. Eclipse
// trials report the post-partition recovery time (eclipse_recovery_steps).
//
// With -trials k > 1, the k repetitions use seeds seed, seed+1, ...,
// seed+k-1 and fan out across all cores through internal/runner; the
// summary is identical to running them one at a time.
//
// -record FILE streams each trial's TrialRecord — the legacy scalars plus
// leader-trajectory, fault and recovery observables sampled by the probe
// API — as JSONL, one object per trial in trial order.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"repro"
	"repro/internal/core"
	"repro/internal/runner"
	"repro/internal/stats"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "ringsim:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		proto   = flag.String("proto", "ppl", "protocol: "+strings.Join(repro.Protocols(), ", "))
		n       = flag.Int("n", 64, "ring size")
		seed    = flag.Uint64("seed", 1, "scheduler seed")
		init    = flag.String("init", "random", "ppl initial configuration: random, noleader, allleaders, corrupted, noleadercold")
		c1      = flag.Int("c1", core.DefaultC1, "κ_max multiplier (ppl)")
		slack   = flag.Int("slack", 0, "ψ slack (ppl)")
		faults  = flag.String("faults", "", "fault schedule, comma-separated agents@step bursts")
		sched   = flag.String("sched", "", "arc scheduler: uniform, hotspot:arcs=K,weight=W, ramp:weight=W, eclipse:period=P,duration=D,arcs=K[,offset=O][,start=S]")
		churn   = flag.String("churn", "", "churn schedule, comma-separated del<K>@<step> / add<K>@<step> events")
		stuck   = flag.Int("stuck", 0, "freeze this many randomly chosen agents for the whole trial")
		maxst   = flag.Int("maxstates", 0, "interner capacity cap (0 = engine default; interned runs fall back to the generic engine past it)")
		verbose = flag.Bool("v", false, "print the final configuration (ppl)")
		stat    = flag.Bool("stats", false, "print event counters and a final snapshot (ppl)")
		trials  = flag.Int("trials", 1, "number of repetitions (seeds seed..seed+trials-1, run in parallel)")
		workers = flag.Int("workers", 0, "trial worker-pool size (0 = all cores)")
		record  = flag.String("record", "", "stream per-trial records as JSONL to this file")
	)
	flag.Parse()

	sc, err := scenarioFor(*init, *faults, *sched, *churn, *stuck)
	if err == nil {
		sc.MaxStates = *maxst
	}
	if err != nil {
		return err
	}
	// The direction-printing single-run path only covers the default
	// scenario; with -faults, a scheduler spec, a non-random -init or
	// -record, orient goes through the generic Protocol path so the
	// scenario (and the probe) actually applies.
	if *proto == "orient" && *trials <= 1 && len(sc.Faults) == 0 && sc.Init == repro.InitRandom && sc.Sched == nil && *record == "" {
		return runOrient(*n, *seed)
	}

	p, err := protocolFor(*proto, *slack, *c1)
	if err != nil {
		return err
	}
	info := p.Info()
	size := p.FixSize(*n)
	if size != *n {
		fmt.Printf("note: ring size adjusted to %d for %s\n", size, info.Name)
	}
	if *trials > 1 {
		if *verbose || *stat {
			fmt.Println("note: -v and -stats apply to single trials only; ignored with -trials > 1")
		}
		return runRepeated(p, sc, size, *seed, *trials, *workers, *record)
	}
	// The single-trial path always runs probed: the record costs nothing
	// measurable here and the recovery observable improves the output.
	probe := &repro.RecordingProbe{}
	res, err := repro.ProbeTrial(p, sc, size, *seed, probe)
	if err != nil {
		return err
	}
	rec := probe.Record()
	if *record != "" {
		if err := writeRecords(*record, []repro.TrialRecord{rec}); err != nil {
			return err
		}
	}
	maxSteps := sc.MaxSteps(p, size)
	fmt.Printf("protocol    : %s\n", info.Name)
	fmt.Printf("assumption  : %s\n", info.Assumption)
	fmt.Printf("ring size   : %d\n", size)
	fmt.Printf("|Q|         : %d states/agent\n", p.States(size))
	if !res.Converged {
		return fmt.Errorf("did not converge within %d steps", maxSteps)
	}
	fmt.Printf("safe after  : %d steps\n", res.Steps)
	fmt.Printf("output fixed: step %d (last leader change)\n", res.Stabilized)
	// Gate on a burst having actually fired (fault_bursts), not on the
	// schedule: a burst past the step budget never installs, and recovery
	// would then just be the whole run.
	if _, fired := rec.Observables["fault_bursts"]; fired {
		if rc, ok := rec.Observables["recovery_steps"]; ok {
			fmt.Printf("recovery    : %.0f steps after the last fault burst\n", rc)
		}
	}
	if w, saw := rec.Observables["eclipse_windows"]; saw {
		if rc, ok := rec.Observables["eclipse_recovery_steps"]; ok {
			fmt.Printf("eclipse     : %.0f steps to re-converge after the last of %.0f window(s) closed\n", rc, w)
		} else {
			fmt.Printf("eclipse     : converged inside a window (%.0f window(s) entered)\n", w)
		}
	}
	if ce, saw := rec.Observables["churn_events"]; saw {
		fmt.Printf("churn       : %.0f splice(s), -%.0f/+%.0f agents, live minimum %.0f\n",
			ce, rec.Observables["churn_removed"], rec.Observables["churn_inserted"], rec.Observables["live_agents_min"])
	}
	if (*stat || *verbose) && len(sc.Faults) > 0 {
		fmt.Println("note: -v and -stats replay the fault-free trajectory; ignored with -faults")
	} else {
		if *stat && *proto == "ppl" {
			printStatsPPL(size, *slack, *c1, sc.Init, *seed)
		}
		if *verbose && *proto == "ppl" {
			printFinalPPL(size, *slack, *c1, sc.Init, *seed)
		}
	}
	return nil
}

// runRepeated fans trials repetitions of one protocol out across the
// worker pool and prints aggregate convergence statistics. With a record
// path the per-trial records are written as JSONL in trial order.
func runRepeated(p repro.Protocol, sc repro.Scenario, n int, seed uint64, trials, workers int, record string) error {
	type trial struct {
		res repro.TrialResult
		rec repro.TrialRecord
		err error
	}
	probed := record != ""
	results, err := runner.Map(context.Background(), trials, func(i int) trial {
		if !probed {
			res, err := p.Trial(sc, n, seed+uint64(i))
			return trial{res: res, err: err}
		}
		probe := &repro.RecordingProbe{}
		res, err := repro.ProbeTrial(p, sc, n, seed+uint64(i), probe)
		rec := probe.Record()
		rec.Trial = i
		return trial{res: res, rec: rec, err: err}
	}, runner.Options{Workers: workers})
	if err != nil {
		return err
	}
	maxSteps := sc.MaxSteps(p, n)
	var steps []float64
	failures := 0
	var recs []repro.TrialRecord
	for _, tr := range results {
		if tr.err != nil {
			return tr.err
		}
		if probed {
			recs = append(recs, tr.rec)
		}
		if !tr.res.Converged {
			failures++
			continue
		}
		steps = append(steps, float64(tr.res.Steps))
	}
	if probed {
		if err := writeRecords(record, recs); err != nil {
			return err
		}
	}
	info := p.Info()
	fmt.Printf("protocol    : %s\n", info.Name)
	fmt.Printf("assumption  : %s\n", info.Assumption)
	fmt.Printf("ring size   : %d\n", n)
	fmt.Printf("|Q|         : %d states/agent\n", p.States(n))
	fmt.Printf("trials      : %d (seeds %d..%d)\n", trials, seed, seed+uint64(trials)-1)
	if failures > 0 {
		fmt.Printf("failures    : %d (budget %d steps)\n", failures, maxSteps)
	}
	if len(steps) == 0 {
		return fmt.Errorf("no trial converged within %d steps", maxSteps)
	}
	s := stats.Summarize(steps)
	fmt.Printf("safe after  : mean %.0f | median %.0f | min %.0f | max %.0f steps\n",
		s.Mean, s.Median, s.Min, s.Max)
	return nil
}

// writeRecords writes the records as a JSONL artifact, in slice order.
func writeRecords(path string, recs []repro.TrialRecord) error {
	sink, err := repro.CreateJSONL(path)
	if err != nil {
		return err
	}
	for _, rec := range recs {
		if err := sink.Record(rec); err != nil {
			sink.Close()
			return err
		}
	}
	if err := sink.Close(); err != nil {
		return err
	}
	fmt.Printf("records     : %d written to %s\n", len(recs), path)
	return nil
}

// protocolFor resolves a protocol name through the public registry; the
// ppl parameters come from the -slack and -c1 flags.
func protocolFor(proto string, slack, c1 int) (repro.Protocol, error) {
	if proto == "ppl" {
		return repro.PPL(slack, c1), nil
	}
	return repro.NewProtocol(proto)
}

// scenarioFor builds the trial scenario from the -init, -faults, -sched,
// -churn and -stuck flags.
func scenarioFor(init, faults, sched, churn string, stuck int) (repro.Scenario, error) {
	class, err := repro.ParseInitClass(init)
	if err != nil {
		return repro.Scenario{}, err
	}
	sc := repro.Scenario{Init: class}
	spec, err := repro.ParseSchedulerSpec(sched)
	if err != nil {
		return repro.Scenario{}, err
	}
	churnEvents, err := repro.ParseChurnSpec(churn)
	if err != nil {
		return repro.Scenario{}, err
	}
	if spec == nil && (len(churnEvents) > 0 || stuck > 0) {
		spec = &repro.SchedulerSpec{}
	}
	if spec != nil {
		spec.Churn = churnEvents
		spec.Stuck = stuck
		sc.Sched = spec
	}
	if faults == "" {
		return sc, nil
	}
	for _, part := range strings.Split(faults, ",") {
		agents, step, ok := strings.Cut(strings.TrimSpace(part), "@")
		if !ok {
			return repro.Scenario{}, fmt.Errorf("bad fault burst %q (want agents@step)", part)
		}
		k, err1 := strconv.Atoi(agents)
		at, err2 := strconv.ParseUint(step, 10, 64)
		if err1 != nil || err2 != nil || k < 1 {
			return repro.Scenario{}, fmt.Errorf("bad fault burst %q (want agents@step)", part)
		}
		sc.Faults = append(sc.Faults, repro.Fault{AtStep: at, Agents: k})
	}
	return sc, nil
}

func runOrient(n int, seed uint64) error {
	if n < 3 {
		return errors.New("orientation needs n >= 3")
	}
	o := newOrientation(n, seed)
	steps, ok := o.RunToOriented(0)
	if !ok {
		return errors.New("orientation did not converge")
	}
	dir := "counter-clockwise"
	if o.Clockwise() {
		dir = "clockwise"
	}
	fmt.Printf("protocol    : P_OR (Section 5)\n")
	fmt.Printf("ring size   : %d\n", n)
	fmt.Printf("oriented in : %d steps (%s)\n", steps, dir)
	return nil
}
