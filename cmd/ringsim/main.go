// Command ringsim runs one protocol instance on a ring and reports its
// convergence behavior.
//
// Usage:
//
//	ringsim -proto ppl -n 64 -seed 1 -init random [-v]
//	ringsim -proto ppl -n 64 -trials 32            # parallel repetitions
//
// Protocols: ppl (the paper's P_PL), yokota [28], angluin [5], fj [15],
// chenchen [11], orient (Section 5 ring orientation).
// Initial configurations (ppl only): random, noleader, allleaders,
// corrupted.
//
// With -trials k > 1, the k repetitions use seeds seed, seed+1, ...,
// seed+k-1 and fan out across all cores through internal/runner; the summary
// is identical to running them one at a time.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"

	"repro/internal/core"
	"repro/internal/harness"
	"repro/internal/runner"
	"repro/internal/stats"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "ringsim:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		proto   = flag.String("proto", "ppl", "protocol: ppl, yokota, angluin, fj, chenchen, orient")
		n       = flag.Int("n", 64, "ring size")
		seed    = flag.Uint64("seed", 1, "scheduler seed")
		init    = flag.String("init", "random", "ppl initial configuration: random, noleader, allleaders, corrupted")
		c1      = flag.Int("c1", core.DefaultC1, "κ_max multiplier (ppl)")
		slack   = flag.Int("slack", 0, "ψ slack (ppl)")
		verbose = flag.Bool("v", false, "print the final configuration (ppl)")
		stat    = flag.Bool("stats", false, "print event counters and a final snapshot (ppl)")
		trials  = flag.Int("trials", 1, "number of repetitions (seeds seed..seed+trials-1, run in parallel)")
		workers = flag.Int("workers", 0, "trial worker-pool size (0 = all cores)")
	)
	flag.Parse()

	if *proto == "orient" {
		return runOrient(*n, *seed)
	}

	spec, err := specFor(*proto, *slack, *c1, *init)
	if err != nil {
		return err
	}
	size := *n
	if spec.FixSize != nil {
		size = spec.FixSize(size)
		if size != *n {
			fmt.Printf("note: ring size adjusted to %d for %s\n", size, spec.Name)
		}
	}
	if *trials > 1 {
		if *verbose || *stat {
			fmt.Println("note: -v and -stats apply to single trials only; ignored with -trials > 1")
		}
		return runRepeated(spec, size, *seed, *trials, *workers)
	}
	res := spec.Run(size, *seed, spec.MaxSteps(size))
	fmt.Printf("protocol    : %s\n", spec.Name)
	fmt.Printf("assumption  : %s\n", spec.Assumption)
	fmt.Printf("ring size   : %d\n", size)
	fmt.Printf("|Q|         : %d states/agent\n", spec.States(size))
	if !res.Converged {
		return fmt.Errorf("did not converge within %d steps", spec.MaxSteps(size))
	}
	fmt.Printf("safe after  : %d steps\n", res.Steps)
	fmt.Printf("output fixed: step %d (last leader change)\n", res.Stabilized)
	if *stat && *proto == "ppl" {
		printStatsPPL(size, *slack, *c1, *init, *seed)
	}
	if *verbose && *proto == "ppl" {
		printFinalPPL(size, *slack, *c1, *init, *seed)
	}
	return nil
}

// runRepeated fans trials repetitions of one spec out across the worker
// pool and prints aggregate convergence statistics.
func runRepeated(spec harness.Spec, n int, seed uint64, trials, workers int) error {
	maxSteps := spec.MaxSteps(n)
	results, err := runner.Map(context.Background(), trials, func(i int) harness.Result {
		return spec.Run(n, seed+uint64(i), maxSteps)
	}, runner.Options{Workers: workers})
	if err != nil {
		return err
	}
	var steps []float64
	failures := 0
	for _, res := range results {
		if !res.Converged {
			failures++
			continue
		}
		steps = append(steps, float64(res.Steps))
	}
	fmt.Printf("protocol    : %s\n", spec.Name)
	fmt.Printf("assumption  : %s\n", spec.Assumption)
	fmt.Printf("ring size   : %d\n", n)
	fmt.Printf("|Q|         : %d states/agent\n", spec.States(n))
	fmt.Printf("trials      : %d (seeds %d..%d)\n", trials, seed, seed+uint64(trials)-1)
	if failures > 0 {
		fmt.Printf("failures    : %d (budget %d steps)\n", failures, maxSteps)
	}
	if len(steps) == 0 {
		return fmt.Errorf("no trial converged within %d steps", maxSteps)
	}
	s := stats.Summarize(steps)
	fmt.Printf("safe after  : mean %.0f | median %.0f | min %.0f | max %.0f steps\n",
		s.Mean, s.Median, s.Min, s.Max)
	return nil
}

func specFor(proto string, slack, c1 int, init string) (harness.Spec, error) {
	initClass, err := initFor(init)
	if err != nil {
		return harness.Spec{}, err
	}
	switch proto {
	case "ppl":
		return harness.PPLSpec(slack, c1, initClass), nil
	case "yokota":
		return harness.YokotaSpec(), nil
	case "angluin":
		return harness.AngluinSpec(), nil
	case "fj":
		return harness.FJSpec(), nil
	case "chenchen":
		return harness.ChenChenSpec(), nil
	default:
		return harness.Spec{}, fmt.Errorf("unknown protocol %q", proto)
	}
}

func initFor(init string) (harness.InitClass, error) {
	switch init {
	case "random":
		return harness.InitRandom, nil
	case "noleader":
		return harness.InitNoLeader, nil
	case "allleaders":
		return harness.InitAllLeaders, nil
	case "corrupted":
		return harness.InitCorrupted, nil
	default:
		return 0, fmt.Errorf("unknown init class %q", init)
	}
}

func runOrient(n int, seed uint64) error {
	if n < 3 {
		return errors.New("orientation needs n >= 3")
	}
	o := newOrientation(n, seed)
	steps, ok := o.RunToOriented(0)
	if !ok {
		return errors.New("orientation did not converge")
	}
	dir := "counter-clockwise"
	if o.Clockwise() {
		dir = "clockwise"
	}
	fmt.Printf("protocol    : P_OR (Section 5)\n")
	fmt.Printf("ring size   : %d\n", n)
	fmt.Printf("oriented in : %d steps (%s)\n", steps, dir)
	return nil
}
