// Command ringsim runs one protocol instance on a ring and reports its
// convergence behavior.
//
// Usage:
//
//	ringsim -proto ppl -n 64 -seed 1 -init random [-v]
//
// Protocols: ppl (the paper's P_PL), yokota [28], angluin [5], fj [15],
// chenchen [11], orient (Section 5 ring orientation).
// Initial configurations (ppl only): random, noleader, allleaders,
// corrupted.
package main

import (
	"errors"
	"flag"
	"fmt"
	"os"

	"repro/internal/core"
	"repro/internal/harness"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "ringsim:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		proto   = flag.String("proto", "ppl", "protocol: ppl, yokota, angluin, fj, chenchen, orient")
		n       = flag.Int("n", 64, "ring size")
		seed    = flag.Uint64("seed", 1, "scheduler seed")
		init    = flag.String("init", "random", "ppl initial configuration: random, noleader, allleaders, corrupted")
		c1      = flag.Int("c1", core.DefaultC1, "κ_max multiplier (ppl)")
		slack   = flag.Int("slack", 0, "ψ slack (ppl)")
		verbose = flag.Bool("v", false, "print the final configuration (ppl)")
		stat    = flag.Bool("stats", false, "print event counters and a final snapshot (ppl)")
	)
	flag.Parse()

	if *proto == "orient" {
		return runOrient(*n, *seed)
	}

	spec, err := specFor(*proto, *slack, *c1, *init)
	if err != nil {
		return err
	}
	size := *n
	if spec.FixSize != nil {
		size = spec.FixSize(size)
		if size != *n {
			fmt.Printf("note: ring size adjusted to %d for %s\n", size, spec.Name)
		}
	}
	res := spec.Run(size, *seed, spec.MaxSteps(size))
	fmt.Printf("protocol    : %s\n", spec.Name)
	fmt.Printf("assumption  : %s\n", spec.Assumption)
	fmt.Printf("ring size   : %d\n", size)
	fmt.Printf("|Q|         : %d states/agent\n", spec.States(size))
	if !res.Converged {
		return fmt.Errorf("did not converge within %d steps", spec.MaxSteps(size))
	}
	fmt.Printf("safe after  : %d steps\n", res.Steps)
	fmt.Printf("output fixed: step %d (last leader change)\n", res.Stabilized)
	if *stat && *proto == "ppl" {
		printStatsPPL(size, *slack, *c1, *init, *seed)
	}
	if *verbose && *proto == "ppl" {
		printFinalPPL(size, *slack, *c1, *init, *seed)
	}
	return nil
}

func specFor(proto string, slack, c1 int, init string) (harness.Spec, error) {
	initClass, err := initFor(init)
	if err != nil {
		return harness.Spec{}, err
	}
	switch proto {
	case "ppl":
		return harness.PPLSpec(slack, c1, initClass), nil
	case "yokota":
		return harness.YokotaSpec(), nil
	case "angluin":
		return harness.AngluinSpec(), nil
	case "fj":
		return harness.FJSpec(), nil
	case "chenchen":
		return harness.ChenChenSpec(), nil
	default:
		return harness.Spec{}, fmt.Errorf("unknown protocol %q", proto)
	}
}

func initFor(init string) (harness.InitClass, error) {
	switch init {
	case "random":
		return harness.InitRandom, nil
	case "noleader":
		return harness.InitNoLeader, nil
	case "allleaders":
		return harness.InitAllLeaders, nil
	case "corrupted":
		return harness.InitCorrupted, nil
	default:
		return 0, fmt.Errorf("unknown init class %q", init)
	}
}

func runOrient(n int, seed uint64) error {
	if n < 3 {
		return errors.New("orientation needs n >= 3")
	}
	o := newOrientation(n, seed)
	steps, ok := o.RunToOriented(0)
	if !ok {
		return errors.New("orientation did not converge")
	}
	dir := "counter-clockwise"
	if o.Clockwise() {
		dir = "clockwise"
	}
	fmt.Printf("protocol    : P_OR (Section 5)\n")
	fmt.Printf("ring size   : %d\n", n)
	fmt.Printf("oriented in : %d steps (%s)\n", steps, dir)
	return nil
}
