package main

import (
	"fmt"

	"repro"
	"repro/internal/core"
	"repro/internal/population"
	"repro/internal/xrand"
)

func newOrientation(n int, seed uint64) *repro.RingOrientation {
	return repro.NewRingOrientation(n, repro.WithSeed(seed))
}

// printFinalPPL replays the exact ppl trial (same init class, same seed
// derivation via core.InitConfig) and prints the converged configuration
// as a segment diagram.
func printFinalPPL(n, slack, c1 int, init repro.InitClass, seed uint64) {
	p := core.NewParamsSlack(n, slack, c1)
	pr := core.New(p)
	eng := population.NewEngine(population.DirectedRing(n), pr.Step, xrand.New(seed))
	eng.SetStates(p.InitConfig(init.String(), seed))
	_, ok := eng.RunUntil(func(cfg []core.State) bool { return p.IsSafe(cfg) },
		n/2+1, 800*uint64(n)*uint64(n)*uint64(p.Psi))
	if !ok {
		return
	}
	fmt.Println()
	fmt.Printf("ring n=%d ψ=%d κ_max=%d |Q|=%d\n%s",
		p.N, p.Psi, p.KappaMax, p.StateCount(), p.FormatRing(eng.Config()))
}
