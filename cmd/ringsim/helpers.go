package main

import (
	"fmt"

	"repro"
)

func newOrientation(n int, seed uint64) *repro.RingOrientation {
	return repro.NewRingOrientation(n, repro.WithSeed(seed))
}

// printFinalPPL re-runs the ppl trial through the public API (same seeds)
// and prints the converged configuration as a segment diagram.
func printFinalPPL(n, slack, c1 int, init string, seed uint64) {
	e := repro.NewRingElection(n, repro.WithSeed(seed), repro.WithSlack(slack), repro.WithC1(c1))
	switch init {
	case "noleader":
		e.InitNoLeader()
	case "allleaders":
		// The harness uses the armed all-leaders configuration; fault
		// injection over a perfect start is the closest public-API analog.
		e.InitPerfect(0)
		e.InjectFaults(n)
	case "corrupted":
		e.InitPerfect(0)
		e.InjectFaults(n / 4)
	default:
		e.InitRandom(seed ^ 0xabcdef)
	}
	if _, ok := e.RunToSafe(0); ok {
		fmt.Println()
		fmt.Print(e.Describe())
	}
}
