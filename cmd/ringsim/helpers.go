package main

import (
	"fmt"

	"repro"
	"repro/internal/core"
	"repro/internal/population"
	"repro/internal/xrand"
)

func newOrientation(n int, seed uint64) *repro.RingOrientation {
	return repro.NewRingOrientation(n, repro.WithSeed(seed))
}

// printFinalPPL replays the exact ppl trial (same init class, same seed
// derivation via core.InitConfig) and prints the converged configuration
// as a segment diagram. The replay judges convergence through the same
// incremental tracker as the trial, so the diagram depicts the
// configuration at precisely the reported hitting step — not one the
// scan-era polling loop would have run past it.
func printFinalPPL(n, slack, c1 int, init repro.InitClass, seed uint64) {
	p := core.NewParamsSlack(n, slack, c1)
	pr := core.New(p)
	eng := population.NewEngine(population.DirectedRing(n), pr.Step, xrand.New(seed))
	eng.SetStates(p.InitConfig(init.String(), seed))
	eng.SetTracker(population.NewRingTracker(p.SafetySpec()))
	_, ok := eng.RunUntilConverged(800 * uint64(n) * uint64(n) * uint64(p.Psi))
	if !ok {
		return
	}
	fmt.Println()
	fmt.Printf("ring n=%d ψ=%d κ_max=%d |Q|=%d\n%s",
		p.N, p.Psi, p.KappaMax, p.StateCount(), p.FormatRing(eng.Config()))
}
