package main

import "testing"

func TestSpecForKnownProtocols(t *testing.T) {
	for _, proto := range []string{"ppl", "yokota", "angluin", "fj", "chenchen"} {
		spec, err := specFor(proto, 0, 8, "random")
		if err != nil {
			t.Fatalf("%s: %v", proto, err)
		}
		if spec.Name == "" || spec.Run == nil || spec.MaxSteps == nil {
			t.Fatalf("%s: incomplete spec %+v", proto, spec)
		}
	}
}

func TestSpecForUnknownProtocol(t *testing.T) {
	if _, err := specFor("paxos", 0, 8, "random"); err == nil {
		t.Fatal("unknown protocol accepted")
	}
}

func TestInitForClasses(t *testing.T) {
	for _, init := range []string{"random", "noleader", "allleaders", "corrupted"} {
		if _, err := initFor(init); err != nil {
			t.Fatalf("%s: %v", init, err)
		}
	}
	if _, err := initFor("bogus"); err == nil {
		t.Fatal("unknown init class accepted")
	}
}

func TestRunOrientTiny(t *testing.T) {
	if err := runOrient(8, 1); err != nil {
		t.Fatal(err)
	}
	if err := runOrient(2, 1); err == nil {
		t.Fatal("n=2 orientation accepted")
	}
}
