package main

import (
	"strings"
	"testing"

	"repro"
)

func TestProtocolForKnownProtocols(t *testing.T) {
	for _, proto := range []string{"ppl", "yokota", "angluin", "fj", "chenchen", "orient"} {
		p, err := protocolFor(proto, 0, 8)
		if err != nil {
			t.Fatalf("%s: %v", proto, err)
		}
		if p.Info().Name == "" || p.MaxSteps(16) == 0 || p.States(16) == 0 {
			t.Fatalf("%s: incomplete protocol %+v", proto, p.Info())
		}
	}
}

func TestProtocolForUnknownProtocol(t *testing.T) {
	if _, err := protocolFor("paxos", 0, 8); err == nil {
		t.Fatal("unknown protocol accepted")
	}
}

func TestScenarioForClasses(t *testing.T) {
	for _, init := range []string{"random", "noleader", "allleaders", "corrupted", "noleadercold"} {
		sc, err := scenarioFor(init, "", "", "", 0)
		if err != nil {
			t.Fatalf("%s: %v", init, err)
		}
		if sc.Init.String() != init {
			t.Fatalf("round trip: %q -> %v", init, sc.Init)
		}
	}
	if _, err := scenarioFor("bogus", "", "", "", 0); err == nil {
		t.Fatal("unknown init class accepted")
	}
}

func TestScenarioForFaults(t *testing.T) {
	sc, err := scenarioFor("random", "8@100, 4@50", "", "", 0)
	if err != nil {
		t.Fatal(err)
	}
	want := []repro.Fault{{AtStep: 100, Agents: 8}, {AtStep: 50, Agents: 4}}
	if len(sc.Faults) != len(want) {
		t.Fatalf("faults = %+v", sc.Faults)
	}
	for i := range want {
		if sc.Faults[i] != want[i] {
			t.Fatalf("faults = %+v, want %+v", sc.Faults, want)
		}
	}
	for _, bad := range []string{"8", "x@100", "8@y", "0@100", "@"} {
		if _, err := scenarioFor("random", bad, "", "", 0); err == nil {
			t.Fatalf("bad schedule %q accepted", bad)
		}
		if err != nil && !strings.Contains(err.Error(), "fault burst") {
			t.Fatalf("unexpected error for %q: %v", bad, err)
		}
	}
}

func TestScenarioForSchedulerFlags(t *testing.T) {
	sc, err := scenarioFor("random", "", "eclipse:period=5000,duration=800,arcs=4", "del2@100,add2@900", 3)
	if err != nil {
		t.Fatal(err)
	}
	spec := sc.Sched
	if spec == nil || spec.Kind != "eclipse" || spec.Period != 5000 || spec.Duration != 800 || spec.Arcs != 4 {
		t.Fatalf("scheduler spec = %+v", spec)
	}
	if len(spec.Churn) != 2 || spec.Churn[0].Remove != 2 || spec.Churn[1].Insert != 2 || spec.Stuck != 3 {
		t.Fatalf("dynamics = churn %+v stuck %d", spec.Churn, spec.Stuck)
	}
	// Churn or stuck alone still produce a spec (with the default
	// uniform distribution); no flags at all leave it nil.
	sc, err = scenarioFor("random", "", "", "del1@50", 0)
	if err != nil {
		t.Fatal(err)
	}
	if sc.Sched == nil || sc.Sched.Kind != "" || len(sc.Sched.Churn) != 1 {
		t.Fatalf("churn-only spec = %+v", sc.Sched)
	}
	sc, err = scenarioFor("random", "", "", "", 0)
	if err != nil {
		t.Fatal(err)
	}
	if sc.Sched != nil {
		t.Fatalf("flagless scenario grew a scheduler spec: %+v", sc.Sched)
	}
	for _, bad := range [][3]string{
		{"volcano", "", ""},
		{"eclipse:period=100", "", ""},
		{"", "mul2@50", ""},
	} {
		if _, err := scenarioFor("random", "", bad[0], bad[1], 0); err == nil {
			t.Fatalf("bad scheduler flags %v accepted", bad)
		}
	}
}

func TestRunOrientTiny(t *testing.T) {
	if err := runOrient(8, 1); err != nil {
		t.Fatal(err)
	}
	if err := runOrient(2, 1); err == nil {
		t.Fatal("n=2 orientation accepted")
	}
}
