package main

import (
	"fmt"

	"repro"
	"repro/internal/core"
	"repro/internal/population"
	"repro/internal/trace"
	"repro/internal/xrand"
)

// printStatsPPL replays the exact ppl trial (same init class, same seed
// derivation via core.InitConfig) with an event collector attached and
// prints the per-phase accounting.
func printStatsPPL(n, slack, c1 int, init repro.InitClass, seed uint64) {
	p := core.NewParamsSlack(n, slack, c1)
	pr := core.New(p)
	eng := population.NewEngine(population.DirectedRing(n), pr.Step, xrand.New(seed))
	eng.SetStates(p.InitConfig(init.String(), seed))
	col := trace.NewCollector(p)
	eng.SetObserver(col.Observe)
	eng.SetTracker(population.NewRingTracker(p.SafetySpec()))
	_, ok := eng.RunUntilConverged(800 * uint64(n) * uint64(n) * uint64(p.Psi))
	if !ok {
		fmt.Println("stats: run did not converge")
		return
	}
	fmt.Println()
	fmt.Print(trace.Format(col.Events(), trace.Snapshot(p, eng.Config())))
}
