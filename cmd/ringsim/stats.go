package main

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/harness"
	"repro/internal/population"
	"repro/internal/trace"
	"repro/internal/xrand"
)

// printStatsPPL re-runs the ppl trial with an event collector attached and
// prints the per-phase accounting.
func printStatsPPL(n, slack, c1 int, init string, seed uint64) {
	p := core.NewParamsSlack(n, slack, c1)
	pr := core.New(p)
	eng := population.NewEngine(population.DirectedRing(n), pr.Step, xrand.New(seed))
	initClass, err := initFor(init)
	if err != nil {
		initClass = harness.InitRandom
	}
	eng.SetStates(harness.InitialConfig(p, initClass, seed))
	col := trace.NewCollector(p)
	eng.SetObserver(col.Observe)
	_, ok := eng.RunUntil(func(cfg []core.State) bool { return p.IsSafe(cfg) },
		n/2+1, 800*uint64(n)*uint64(n)*uint64(p.Psi))
	if !ok {
		fmt.Println("stats: run did not converge")
		return
	}
	fmt.Println()
	fmt.Print(trace.Format(col.Events(), trace.Snapshot(p, eng.Config())))
}
