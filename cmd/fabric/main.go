// Command fabric drives the distributed sweep tier: a coordinator that
// leases (cell, seed-range) shards of one experiment spec to worker
// processes, workers that run leased shards through the engine, and a
// merge that folds shard artifacts into the canonical record stream and
// report — byte-identical to a serial single-process run, because every
// trial is a pure function of (protocol, scenario, n, trial).
//
// Usage:
//
//	fabric coordinate -spec spec.json -checkpoint DIR [-addr :7600]
//	       [-shard-trials K] [-lease-ttl 30s] [-out merged.jsonl]
//	       [-report report.json]
//	fabric work -coordinator http://host:7600 [-name w1]
//	       [-trial-workers N] [-poll 200ms] [-max-idle 2m] [-chaos SPEC]
//	fabric merge -spec spec.json [-out merged.jsonl] [-report report.json]
//	       SHARD-FILE...
//
// The spec file is the same JSON the experiment service accepts as a
// job (protocols, sizes, trials, scenario, metrics, max_size).
//
// coordinate serves the lease protocol and /v1/stats, journals shard
// completions to the checkpoint directory, writes -out/-report the
// moment the last shard lands, and keeps serving until SIGTERM (so
// late worker polls see "done", and stats stay scrapeable). Rerunning
// coordinate with the same spec and checkpoint resumes: finished shards
// are never re-leased. work exits 0 when the sweep is done. merge runs
// offline over shard files (gzip or plain JSONL).
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"sort"
	"syscall"
	"time"

	"repro"
	"repro/internal/chaos"
	"repro/internal/fabric"
	"repro/internal/plan"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	var err error
	switch os.Args[1] {
	case "coordinate":
		err = coordinate(ctx, os.Args[2:])
	case "work":
		err = work(ctx, os.Args[2:])
	case "merge":
		err = merge(os.Args[2:])
	case "-h", "-help", "--help", "help":
		usage()
		return
	default:
		fmt.Fprintf(os.Stderr, "fabric: unknown subcommand %q\n\n", os.Args[1])
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "fabric %s: %v\n", os.Args[1], err)
		if errors.Is(err, fabric.ErrCoordinatorUnreachable) {
			fmt.Fprintln(os.Stderr, "fabric work: giving up — coordinator unreachable past the -max-idle budget")
			os.Exit(3)
		}
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage:
  fabric coordinate -spec spec.json -checkpoint DIR [-addr :7600] [-shard-trials K] [-lease-ttl 30s] [-out merged.jsonl] [-report report.json]
  fabric work -coordinator URL [-name NAME] [-trial-workers N] [-poll 200ms] [-max-idle 2m] [-chaos SPEC]
  fabric merge -spec spec.json [-out merged.jsonl] [-report report.json] SHARD-FILE...`)
}

// readSpec loads and validates a spec file.
func readSpec(path string) (plan.Spec, error) {
	var spec plan.Spec
	if path == "" {
		return spec, fmt.Errorf("-spec is required")
	}
	data, err := os.ReadFile(path)
	if err != nil {
		return spec, err
	}
	if err := json.Unmarshal(data, &spec); err != nil {
		return spec, fmt.Errorf("parse %s: %w", path, err)
	}
	if err := spec.Validate(); err != nil {
		return spec, fmt.Errorf("%s: %w", path, err)
	}
	return spec, nil
}

func coordinate(ctx context.Context, args []string) error {
	fs := flag.NewFlagSet("coordinate", flag.ExitOnError)
	specPath := fs.String("spec", "", "experiment spec JSON file (required)")
	addr := fs.String("addr", "127.0.0.1:7600", "listen address")
	dir := fs.String("checkpoint", "", "checkpoint directory (required; reuse to resume)")
	shardTrials := fs.Int("shard-trials", 0, "trials per shard (0 = whole cells)")
	leaseTTL := fs.Duration("lease-ttl", 30*time.Second, "lease TTL; workers renew at TTL/3")
	outPath := fs.String("out", "", "write the merged record stream (JSONL) here when done")
	reportPath := fs.String("report", "", "write the merged report (JSON) here when done")
	fs.Parse(args)

	spec, err := readSpec(*specPath)
	if err != nil {
		return err
	}
	coord, err := fabric.NewCoordinator(fabric.CoordinatorConfig{
		Spec:        spec,
		ShardTrials: *shardTrials,
		LeaseTTL:    *leaseTTL,
		Dir:         *dir,
	})
	if err != nil {
		return err
	}
	defer coord.Close()

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	srv := &http.Server{Handler: coord.Handler()}
	go srv.Serve(ln)
	defer srv.Close()

	st := coord.Stats()
	fmt.Printf("fabric coordinator listening on http://%s\n", ln.Addr())
	fmt.Printf("sweep %.12s…: %d shards (%d already done from checkpoint %s)\n",
		coord.SpecDigest(), st.Shards.Total, st.Shards.Done, *dir)

	if err := coord.Wait(ctx); err != nil {
		return err
	}

	// Every shard landed: materialize the merged artifacts immediately —
	// workers may still be polling; they'll see "done" and exit.
	if *outPath != "" || *reportPath != "" {
		merged, err := coord.Merged()
		if err != nil {
			return err
		}
		if *outPath != "" {
			if err := writeMerged(*outPath, merged); err != nil {
				return err
			}
			fmt.Printf("wrote %d records to %s\n", len(merged), *outPath)
		}
		if *reportPath != "" {
			if err := writeReport(*reportPath, spec, merged); err != nil {
				return err
			}
			fmt.Printf("wrote report to %s\n", *reportPath)
		}
	}
	st = coord.Stats()
	fmt.Printf("sweep complete: %d shards, %d records, leases issued=%d renewed=%d expired=%d reissued=%d\n",
		st.Shards.Done, st.RecordsMerged,
		st.Leases.Issued, st.Leases.Renewed, st.Leases.Expired, st.Leases.Reissued)

	// Keep serving "done" (and stats) until asked to stop.
	<-ctx.Done()
	shutdownCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	srv.Shutdown(shutdownCtx)
	return nil
}

func writeMerged(path string, recs []repro.TrialRecord) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := repro.WriteTrialRecords(f, recs); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func writeReport(path string, spec plan.Spec, recs []repro.TrialRecord) error {
	rep, err := spec.Experiment().ReportFromRecords(recs)
	if err != nil {
		return err
	}
	data, err := rep.JSON()
	if err != nil {
		return err
	}
	return os.WriteFile(path, data, 0o644)
}

func work(ctx context.Context, args []string) error {
	fs := flag.NewFlagSet("work", flag.ExitOnError)
	coordinator := fs.String("coordinator", "", "coordinator base URL (required)")
	name := fs.String("name", "", "worker name (default host:pid)")
	trialWorkers := fs.Int("trial-workers", 0, "shard-internal trial pool size (0 = all cores)")
	poll := fs.Duration("poll", 200*time.Millisecond, "lease poll interval")
	maxIdle := fs.Duration("max-idle", 2*time.Minute, "give up (exit 3) after this long without coordinator contact")
	chaosSpec := fs.String("chaos", "", "seeded fault plan, e.g. seed=7,drop=0.05,latency=0.2,crash=worker.ran@2 (testing)")
	fs.Parse(args)

	if *name == "" {
		host, _ := os.Hostname()
		*name = fmt.Sprintf("%s-%d", host, os.Getpid())
	}
	var injector *chaos.Injector
	if *chaosSpec != "" {
		cfg, err := chaos.ParseFlag(*chaosSpec)
		if err != nil {
			return fmt.Errorf("-chaos: %w", err)
		}
		injector = chaos.NewInjector(cfg)
		fmt.Printf("[%s] chaos enabled: %s\n", *name, *chaosSpec)
	}
	return fabric.Work(ctx, fabric.WorkerConfig{
		Coordinator:  *coordinator,
		Name:         *name,
		TrialWorkers: *trialWorkers,
		Poll:         *poll,
		MaxIdle:      *maxIdle,
		Chaos:        injector,
		Log: func(format string, a ...any) {
			fmt.Printf("[%s] %s\n", *name, fmt.Sprintf(format, a...))
		},
	})
}

func merge(args []string) error {
	fs := flag.NewFlagSet("merge", flag.ExitOnError)
	specPath := fs.String("spec", "", "experiment spec JSON file (required)")
	outPath := fs.String("out", "", "write the merged record stream (JSONL) here; default stdout")
	reportPath := fs.String("report", "", "write the merged report (JSON) here")
	fs.Parse(args)

	spec, err := readSpec(*specPath)
	if err != nil {
		return err
	}
	paths, err := expandShardArgs(fs.Args())
	if err != nil {
		return err
	}
	if len(paths) == 0 {
		return fmt.Errorf("no shard files given")
	}
	files := make([]*os.File, 0, len(paths))
	readers := make([]io.Reader, 0, len(paths))
	defer func() {
		for _, f := range files {
			f.Close()
		}
	}()
	for _, p := range paths {
		f, err := os.Open(p)
		if err != nil {
			return err
		}
		files = append(files, f)
		readers = append(readers, f)
	}
	merged, err := repro.MergeShards(spec.Experiment(), readers...)
	if err != nil {
		return err
	}

	if *outPath != "" {
		if err := writeMerged(*outPath, merged); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "wrote %d records to %s\n", len(merged), *outPath)
	} else {
		if err := repro.WriteTrialRecords(os.Stdout, merged); err != nil {
			return err
		}
	}
	if *reportPath != "" {
		if err := writeReport(*reportPath, spec, merged); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "wrote report to %s\n", *reportPath)
	}
	return nil
}

// expandShardArgs resolves shard arguments: files pass through,
// directories expand to their *.jsonl / *.jsonl.gz entries, sorted.
func expandShardArgs(args []string) ([]string, error) {
	var out []string
	for _, a := range args {
		info, err := os.Stat(a)
		if err != nil {
			return nil, err
		}
		if !info.IsDir() {
			out = append(out, a)
			continue
		}
		entries, err := os.ReadDir(a)
		if err != nil {
			return nil, err
		}
		var names []string
		for _, e := range entries {
			if e.IsDir() {
				continue
			}
			name := e.Name()
			if filepath.Ext(name) == ".jsonl" || filepath.Ext(name) == ".gz" {
				names = append(names, filepath.Join(a, name))
			}
		}
		sort.Strings(names)
		out = append(out, names...)
	}
	return out, nil
}
