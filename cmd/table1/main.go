// Command table1 regenerates the paper's Table 1 empirically: it sweeps
// ring sizes for the paper's protocol and the four baselines, measures
// convergence steps from random adversarial configurations, fits scaling
// exponents, and prints the comparison as markdown.
//
// Trials fan out across all cores through internal/runner; the table is
// identical whatever the worker count.
//
// Usage:
//
//	table1 -sizes 16,32,64 -trials 5 -ccmax 8 [-workers 4]
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"repro"
	"repro/internal/runner"
)

func main() {
	var (
		sizes   = flag.String("sizes", "16,32,64", "comma-separated ring sizes")
		trials  = flag.Int("trials", 5, "trials per (protocol, size) cell")
		ccmax   = flag.Int("ccmax", 8, "largest size for the [11]-style baseline")
		workers = flag.Int("workers", 0, "trial worker-pool size (0 = all cores)")
	)
	flag.Parse()

	ns, err := parseSizes(*sizes)
	if err != nil {
		fmt.Fprintln(os.Stderr, "table1:", err)
		os.Exit(1)
	}
	res, err := repro.ComparisonContext(context.Background(), ns, *trials, *ccmax,
		runner.Options{Workers: *workers})
	if err != nil {
		fmt.Fprintln(os.Stderr, "table1:", err)
		os.Exit(1)
	}
	fmt.Print(res.Markdown)
}

func parseSizes(s string) ([]int, error) {
	parts := strings.Split(s, ",")
	out := make([]int, 0, len(parts))
	for _, part := range parts {
		n, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || n < 4 {
			return nil, fmt.Errorf("bad size %q", part)
		}
		out = append(out, n)
	}
	return out, nil
}
