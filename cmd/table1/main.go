// Command table1 regenerates the paper's Table 1 empirically: it sweeps
// ring sizes for the paper's protocol and the four baselines through the
// public repro.Experiment API, measures convergence steps from random
// adversarial configurations, fits scaling exponents, and prints the
// comparison as markdown (or JSON/CSV for machine consumption).
//
// Trials fan out across all cores through internal/runner; the output is
// identical whatever the worker count.
//
// Usage:
//
//	table1 -sizes 16,32,64 -trials 5 -ccmax 8 [-workers 4] [-json|-csv]
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"repro"
)

func main() {
	var (
		sizes   = flag.String("sizes", "16,32,64", "comma-separated ring sizes")
		trials  = flag.Int("trials", 5, "trials per (protocol, size) cell")
		ccmax   = flag.Int("ccmax", 8, "largest size for the [11]-style baseline")
		workers = flag.Int("workers", 0, "trial worker-pool size (0 = all cores)")
		asJSON  = flag.Bool("json", false, "emit the structured report as JSON instead of markdown")
		asCSV   = flag.Bool("csv", false, "emit the per-cell summaries as CSV instead of markdown")
	)
	flag.Parse()

	if err := run(*sizes, *trials, *ccmax, *workers, *asJSON, *asCSV); err != nil {
		fmt.Fprintln(os.Stderr, "table1:", err)
		os.Exit(1)
	}
}

func run(sizes string, trials, ccmax, workers int, asJSON, asCSV bool) error {
	if asJSON && asCSV {
		return fmt.Errorf("-json and -csv are mutually exclusive")
	}
	ns, err := parseSizes(sizes)
	if err != nil {
		return err
	}
	rep, err := repro.NewExperiment().
		ProtocolNames("angluin", "fj", "chenchen", "yokota", "ppl").
		Sizes(ns...).
		Trials(trials).
		MaxSizeFor("[11] Chen–Chen", ccmax).
		Workers(workers).
		Run(context.Background())
	if err != nil {
		return err
	}
	switch {
	case asJSON:
		data, err := rep.JSON()
		if err != nil {
			return err
		}
		fmt.Printf("%s\n", data)
	case asCSV:
		data, err := rep.CSV()
		if err != nil {
			return err
		}
		fmt.Print(string(data))
	default:
		fmt.Print(rep.Markdown())
	}
	return nil
}

func parseSizes(s string) ([]int, error) {
	parts := strings.Split(s, ",")
	out := make([]int, 0, len(parts))
	for _, part := range parts {
		n, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || n < 4 {
			return nil, fmt.Errorf("bad size %q", part)
		}
		out = append(out, n)
	}
	return out, nil
}
