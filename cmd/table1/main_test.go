package main

import "testing"

func TestParseSizes(t *testing.T) {
	tests := []struct {
		give    string
		want    []int
		wantErr bool
	}{
		{give: "16,32,64", want: []int{16, 32, 64}},
		{give: " 8 , 12 ", want: []int{8, 12}},
		{give: "abc", wantErr: true},
		{give: "16,2", wantErr: true}, // below minimum
		{give: "", wantErr: true},
	}
	for _, tt := range tests {
		got, err := parseSizes(tt.give)
		if (err != nil) != tt.wantErr {
			t.Fatalf("parseSizes(%q) error = %v, wantErr %v", tt.give, err, tt.wantErr)
		}
		if err != nil {
			continue
		}
		if len(got) != len(tt.want) {
			t.Fatalf("parseSizes(%q) = %v, want %v", tt.give, got, tt.want)
		}
		for i := range got {
			if got[i] != tt.want[i] {
				t.Fatalf("parseSizes(%q) = %v, want %v", tt.give, got, tt.want)
			}
		}
	}
}
