// Command bench emits the repository's performance baseline,
// BENCH_ringsim.json: steps per second for every requested protocol ×
// ring size × scenario cell, in three modes — the raw RunBatch transition
// loop (no convergence judgement), the incremental-tracker run to
// convergence (the production path with exact hitting times), and the
// scan-era periodic-predicate run (the pre-tracker baseline). CI uploads
// the file as an artifact on every push, so the perf trajectory of the
// engine is recorded from this change on.
//
// Usage:
//
//	bench [-protocols ppl,yokota,...] [-sizes 16,32,64] [-scenarios random]
//	      [-modes runbatch,tracked,scan] [-trials 3] [-seed 1]
//	      [-rawsteps 2000000] [-ccmax 8] [-quick] [-o BENCH_ringsim.json]
//	      [-records FILE]
//
// -records additionally streams every measurement as a TrialRecord JSONL
// line — the same record schema sweep/ringsim emit — with the mode and
// scenario as tags and seconds/steps_per_sec as observables, so perf and
// convergence artifacts share one consumer pipeline.
//
// The schema of the emitted file is stable ("repro.bench/v1"): an
// envelope with the Go/OS/arch/CPU provenance and a flat results array,
// one record per (protocol, n, scenario, mode, seed) measurement.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"strconv"
	"strings"
	"time"

	"repro"
)

// Schema identifies the BENCH_ringsim.json layout; bump it only with the
// consumers (CI trend tooling) in hand.
const Schema = "repro.bench/v1"

// File is the envelope of BENCH_ringsim.json.
type File struct {
	Schema  string              `json:"schema"`
	Created string              `json:"created"`
	Go      string              `json:"go"`
	OS      string              `json:"os"`
	Arch    string              `json:"arch"`
	CPUs    int                 `json:"cpus"`
	Results []repro.BenchResult `json:"results"`
}

func main() {
	var (
		protocols = flag.String("protocols", "ppl,yokota,angluin,fj,orient,chenchen", "comma-separated registered protocol names")
		sizes     = flag.String("sizes", "16,32,64", "comma-separated ring sizes")
		scenarios = flag.String("scenarios", "random", "comma-separated init classes (non-ppl protocols skip all but random)")
		modes     = flag.String("modes", "runbatch,tracked,scan", "comma-separated modes: runbatch, tracked, scan")
		trials    = flag.Int("trials", 3, "measurements per cell (seeds seed..seed+trials-1)")
		seed      = flag.Uint64("seed", 1, "first scheduler seed")
		rawSteps  = flag.Uint64("rawsteps", 2_000_000, "step budget of the runbatch mode")
		ccmax     = flag.Int("ccmax", 8, "largest size for the [11]-style baseline (exponential class)")
		quick     = flag.Bool("quick", false, "CI smoke preset: sizes 8,16, one trial, 200k raw steps")
		out       = flag.String("o", "", "output path (default: stdout)")
		records   = flag.String("records", "", "also stream each measurement as a TrialRecord JSONL line to this file")
	)
	flag.Parse()

	if *quick {
		*sizes = "8,16"
		*trials = 1
		*rawSteps = 200_000
	}
	if err := run(os.Stdout, *protocols, *sizes, *scenarios, *modes, *trials, *seed, *rawSteps, *ccmax, *out, *records); err != nil {
		fmt.Fprintln(os.Stderr, "bench:", err)
		os.Exit(1)
	}
}

func run(stdout io.Writer, protocols, sizes, scenarios, modes string, trials int, seed, rawSteps uint64, ccmax int, out, records string) error {
	ns, err := parseSizes(sizes)
	if err != nil {
		return err
	}
	if trials < 1 {
		return fmt.Errorf("need at least one trial, got %d", trials)
	}
	var sink *repro.JSONLSink
	if records != "" {
		sink, err = repro.CreateJSONL(records)
		if err != nil {
			return err
		}
		defer sink.Close()
	}
	file := File{
		Schema:  Schema,
		Created: time.Now().UTC().Format(time.RFC3339),
		Go:      runtime.Version(),
		OS:      runtime.GOOS,
		Arch:    runtime.GOARCH,
		CPUs:    runtime.NumCPU(),
	}
	for _, name := range split(protocols) {
		p, err := repro.NewProtocol(name)
		if err != nil {
			return err
		}
		for _, class := range split(scenarios) {
			init, err := repro.ParseInitClass(class)
			if err != nil {
				return err
			}
			sc := repro.Scenario{Init: init}
			if err := p.Validate(sc); err != nil {
				// Scenario unsupported by this protocol (e.g. noleader on
				// a baseline): skip the cell, not the run.
				fmt.Fprintf(stdout, "## skipping %s × %s: %v\n", name, class, err)
				continue
			}
			for _, n := range ns {
				if name == "chenchen" && n > ccmax {
					fmt.Fprintf(stdout, "## skipping chenchen n=%d (> -ccmax %d, exponential class)\n", n, ccmax)
					continue
				}
				for _, mode := range split(modes) {
					for t := 0; t < trials; t++ {
						res, err := repro.RunBenchmark(name, n, seed+uint64(t), sc, repro.BenchMode(mode), rawSteps)
						if err != nil {
							return err
						}
						file.Results = append(file.Results, res)
						if sink != nil {
							if err := sink.Record(res.Record()); err != nil {
								return err
							}
						}
						fmt.Fprintf(stdout, "%-9s n=%-4d %-12s %-9s steps=%-9d %10.0f steps/sec\n",
							name, res.N, class, mode, res.Steps, res.StepsPerSec)
					}
				}
			}
		}
	}
	if sink != nil {
		if err := sink.Close(); err != nil {
			return err
		}
		fmt.Fprintf(stdout, "wrote %s (%d records)\n", records, sink.Count())
	}
	data, err := json.MarshalIndent(file, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if out == "" {
		_, err = stdout.Write(data)
		return err
	}
	if err := os.WriteFile(out, data, 0o644); err != nil {
		return err
	}
	fmt.Fprintf(stdout, "wrote %s (%d results)\n", out, len(file.Results))
	return nil
}

func split(s string) []string {
	parts := strings.Split(s, ",")
	out := make([]string, 0, len(parts))
	for _, p := range parts {
		if p = strings.TrimSpace(p); p != "" {
			out = append(out, p)
		}
	}
	return out
}

func parseSizes(s string) ([]int, error) {
	var out []int
	for _, part := range split(s) {
		n, err := strconv.Atoi(part)
		if err != nil || n < 2 {
			return nil, fmt.Errorf("bad size %q", part)
		}
		out = append(out, n)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("no sizes given")
	}
	return out, nil
}
