// Command bench emits the repository's performance baseline,
// BENCH_ringsim.json: steps per second for every requested protocol ×
// ring size × scenario cell, in four engine modes — the raw RunBatch
// transition loop (no convergence judgement), the incremental-tracker run
// to convergence, the scan-era periodic-predicate run, the interned
// table-lookup run (the trial default), and the "lanes" mode — a batch of
// -lanes same-cell trials run as lockstep lanes over one shared
// transition-table set, whose steps/sec aggregates the batch — plus a
// "recovery" mode that
// injects a mid-run fault burst through the public Trial API and records
// the exact number of steps the protocol needed to re-converge, and an
// "eclipse" mode that partitions the ring (an eclipse scheduler kills
// n/4 arcs for 2n² steps) and records the steps from the window closing
// to re-convergence. CI uploads
// the file as an artifact on every push and gates regressions against the
// committed BENCH_baseline.json, so the perf trajectory of the engine is
// recorded and enforced from this change on.
//
// Usage:
//
//	bench [-protocols ppl,yokota,...] [-sizes 16,32,64] [-scenarios random]
//	      [-modes runbatch,tracked,scan,interned,lanes,recovery,eclipse]
//	      [-trials 3] [-bestof 3] [-seed 1] [-rawsteps 2000000] [-ccmax 8]
//	      [-lanes 8] [-maxstates 0] [-quick]
//	      [-o BENCH_ringsim.json] [-records FILE]
//	bench -compare [-gate] [-max-tracked-regress 0.20] [-max-recovery-drift 0.05]
//	      old.json new.json
//
// -bestof times every (cell, seed) measurement k times and keeps the
// fastest, so gate thresholds are not dominated by scheduler noise; the
// value is recorded in the JSON envelope. -records additionally streams
// every measurement as a TrialRecord JSONL line — the same record schema
// sweep/ringsim emit — with the mode and scenario as tags and
// seconds/steps_per_sec as observables, so perf and convergence artifacts
// share one consumer pipeline.
//
// -compare reads two baseline files and prints per-cell steps/sec ratios
// (new/old). With -gate it exits non-zero when the tracked-, interned- or
// lanes-mode throughput — each normalized by the same file's runbatch
// throughput, so baselines recorded on different machines stay comparable,
// and each gated by its own geomean so the table-lookup layer cannot hide
// behind the tracked engine — regresses by more than -max-tracked-regress,
// or when mean recovery steps (a machine-independent, deterministic count)
// drift by more than -max-recovery-drift.
//
// The schema of the emitted file is stable ("repro.bench/v1"): an
// envelope with the Go/OS/arch/CPU provenance and a flat results array,
// one record per (protocol, n, scenario, mode, seed) measurement.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"runtime/pprof"
	"strconv"
	"strings"
	"time"

	"repro"
)

// Schema identifies the BENCH_ringsim.json layout; bump it only with the
// consumers (CI trend tooling) in hand.
const Schema = "repro.bench/v1"

// File is the envelope of BENCH_ringsim.json.
type File struct {
	Schema  string              `json:"schema"`
	Created string              `json:"created"`
	Go      string              `json:"go"`
	OS      string              `json:"os"`
	Arch    string              `json:"arch"`
	CPUs    int                 `json:"cpus"`
	BestOf  int                 `json:"bestof"`
	Results []repro.BenchResult `json:"results"`
}

// config carries one emit run's settings.
type config struct {
	protocols string
	sizes     string
	scenarios string
	modes     string
	trials    int
	bestOf    int
	seed      uint64
	rawSteps  uint64
	ccmax     int
	lanes     int
	maxStates int
	out       string
	records   string
}

func main() {
	var (
		cfg        config
		compare    = flag.Bool("compare", false, "compare two baseline files (positional args: old.json new.json) instead of emitting one")
		gate       = flag.Bool("gate", false, "with -compare: exit non-zero on threshold violations")
		maxTrack   = flag.Float64("max-tracked-regress", 0.20, "with -gate: max allowed regression of normalized tracked-mode steps/sec")
		maxRecov   = flag.Float64("max-recovery-drift", 0.05, "with -gate: max allowed drift of mean recovery steps")
		quick      = flag.Bool("quick", false, "CI smoke preset: sizes 8,16, one trial, bestof 2, 200k raw steps")
		protocols  = flag.String("protocols", "ppl,yokota,angluin,fj,orient,chenchen", "comma-separated registered protocol names")
		sizes      = flag.String("sizes", "16,32,64", "comma-separated ring sizes")
		scenarios  = flag.String("scenarios", "random", "comma-separated init classes (non-ppl protocols skip all but random)")
		modes      = flag.String("modes", "runbatch,tracked,scan,interned,lanes,recovery,eclipse", "comma-separated modes: runbatch, tracked, scan, interned, lanes, recovery, eclipse")
		trials     = flag.Int("trials", 3, "measurements per cell (seeds seed..seed+trials-1)")
		bestOf     = flag.Int("bestof", 3, "timings per measurement; the fastest is kept")
		seed       = flag.Uint64("seed", 1, "first scheduler seed")
		rawSteps   = flag.Uint64("rawsteps", 2_000_000, "step budget of the runbatch mode")
		ccmax      = flag.Int("ccmax", 8, "largest size for the [11]-style baseline (exponential class)")
		lanes      = flag.Int("lanes", 8, "batch width of the lanes mode")
		maxStates  = flag.Int("maxstates", 0, "interner capacity cap for every cell (0: engine default)")
		out        = flag.String("o", "", "output path (default: stdout)")
		records    = flag.String("records", "", "also stream each measurement as a TrialRecord JSONL line to this file")
		cpuprofile = flag.String("cpuprofile", "", "write a pprof CPU profile of the measurement loop to this file")
		memprofile = flag.String("memprofile", "", "write a pprof heap profile (taken after all measurements) to this file")
	)
	flag.Parse()

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "bench:", err)
			os.Exit(1)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, "bench:", err)
			os.Exit(1)
		}
		defer pprof.StopCPUProfile()
	}
	if *memprofile != "" {
		path := *memprofile
		defer func() {
			f, err := os.Create(path)
			if err != nil {
				fmt.Fprintln(os.Stderr, "bench:", err)
				return
			}
			defer f.Close()
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "bench:", err)
			}
		}()
	}

	if *compare {
		if flag.NArg() != 2 {
			fmt.Fprintln(os.Stderr, "bench: -compare needs exactly two files: old.json new.json")
			os.Exit(2)
		}
		ok, err := runCompare(os.Stdout, flag.Arg(0), flag.Arg(1), *gate, *maxTrack, *maxRecov)
		if err != nil {
			fmt.Fprintln(os.Stderr, "bench:", err)
			os.Exit(1)
		}
		if !ok {
			os.Exit(1)
		}
		return
	}

	if *quick {
		*sizes = "8,16"
		*trials = 1
		*bestOf = 2
		*rawSteps = 200_000
	}
	cfg = config{
		protocols: *protocols, sizes: *sizes, scenarios: *scenarios, modes: *modes,
		trials: *trials, bestOf: *bestOf, seed: *seed, rawSteps: *rawSteps,
		ccmax: *ccmax, lanes: *lanes, maxStates: *maxStates, out: *out, records: *records,
	}
	if err := run(os.Stdout, cfg); err != nil {
		fmt.Fprintln(os.Stderr, "bench:", err)
		os.Exit(1)
	}
}

// measure runs one (protocol, n, scenario, mode, seed) measurement bestOf
// times and returns the fastest row (the row whose timing is least
// polluted by scheduler noise; steps are identical across repeats because
// the seed pins the trajectory).
func measure(name string, n int, seed uint64, sc repro.Scenario, mode string, rawSteps uint64, bestOf, lanes int) (repro.BenchResult, error) {
	var best repro.BenchResult
	for i := 0; i < bestOf; i++ {
		var res repro.BenchResult
		var err error
		switch mode {
		case "recovery":
			res, err = measureRecovery(name, n, seed, sc)
		case "eclipse":
			res, err = measureEclipse(name, n, seed, sc)
		case "lanes":
			res, err = repro.RunBenchmarkLanes(name, n, seed, sc, lanes)
		default:
			res, err = repro.RunBenchmark(name, n, seed, sc, repro.BenchMode(mode), rawSteps)
		}
		if err != nil {
			return repro.BenchResult{}, err
		}
		if i == 0 || res.Seconds < best.Seconds {
			best = res
		}
	}
	return best, nil
}

// measureRecovery times a full trial with a single mid-run fault burst at
// step 4n² corrupting n/8 agents (at least one), and reports the exact
// number of steps from the burst to re-convergence — a machine-independent
// count (the trial is deterministic in the seed), which is what makes it
// gateable across baseline machines.
func measureRecovery(name string, n int, seed uint64, sc repro.Scenario) (repro.BenchResult, error) {
	p, err := repro.NewProtocol(name)
	if err != nil {
		return repro.BenchResult{}, err
	}
	n = p.FixSize(n)
	at := 4 * uint64(n) * uint64(n)
	agents := n / 8
	if agents < 1 {
		agents = 1
	}
	sc.Faults = []repro.Fault{{AtStep: at, Agents: agents}}
	if err := p.Validate(sc); err != nil {
		return repro.BenchResult{}, err
	}
	start := time.Now()
	res, err := p.Trial(sc, n, seed)
	if err != nil {
		return repro.BenchResult{}, err
	}
	seconds := time.Since(start).Seconds()
	recovery := uint64(0)
	if res.Steps > at {
		recovery = res.Steps - at
	}
	out := repro.BenchResult{
		Protocol: name, N: n, Scenario: sc.Init.String(), Mode: "recovery", Seed: seed,
		Steps: recovery, Seconds: seconds, Converged: res.Converged,
	}
	if seconds > 0 {
		out.StepsPerSec = float64(recovery) / seconds
	}
	return out, nil
}

// measureEclipse times a full trial under an eclipse scheduler — a dead
// interval of n/4 arcs (at least one) opening at step 1 and lasting 2n²
// steps, with a period beyond any budget so exactly one window fires —
// and reports the eclipse_recovery_steps observable: the exact number of
// steps from the window closing to convergence. Like recovery, the count
// is deterministic in the seed and therefore machine-independent. Trials
// that converge inside the window (possible at tiny sizes: the partition
// only slows interactions on the surviving arcs) report zero steps.
func measureEclipse(name string, n int, seed uint64, sc repro.Scenario) (repro.BenchResult, error) {
	p, err := repro.NewProtocol(name)
	if err != nil {
		return repro.BenchResult{}, err
	}
	n = p.FixSize(n)
	arcs := n / 4
	if arcs < 1 {
		arcs = 1
	}
	sc.Sched = &repro.SchedulerSpec{
		Kind:     "eclipse",
		Start:    1,
		Period:   1 << 40,
		Duration: 2 * uint64(n) * uint64(n),
		Arcs:     arcs,
	}
	if err := p.Validate(sc); err != nil {
		return repro.BenchResult{}, err
	}
	probe := &repro.RecordingProbe{}
	start := time.Now()
	res, err := repro.ProbeTrial(p, sc, n, seed, probe)
	if err != nil {
		return repro.BenchResult{}, err
	}
	seconds := time.Since(start).Seconds()
	recovery := uint64(probe.Record().Observables["eclipse_recovery_steps"])
	out := repro.BenchResult{
		Protocol: name, N: n, Scenario: sc.Init.String(), Mode: "eclipse", Seed: seed,
		Steps: recovery, Seconds: seconds, Converged: res.Converged,
	}
	if seconds > 0 {
		out.StepsPerSec = float64(recovery) / seconds
	}
	return out, nil
}

func run(stdout io.Writer, cfg config) error {
	ns, err := parseSizes(cfg.sizes)
	if err != nil {
		return err
	}
	if cfg.trials < 1 {
		return fmt.Errorf("need at least one trial, got %d", cfg.trials)
	}
	if cfg.bestOf < 1 {
		return fmt.Errorf("need bestof >= 1, got %d", cfg.bestOf)
	}
	var sink *repro.JSONLSink
	if cfg.records != "" {
		sink, err = repro.CreateJSONL(cfg.records)
		if err != nil {
			return err
		}
		defer sink.Close()
	}
	file := File{
		Schema:  Schema,
		Created: time.Now().UTC().Format(time.RFC3339),
		Go:      runtime.Version(),
		OS:      runtime.GOOS,
		Arch:    runtime.GOARCH,
		CPUs:    runtime.NumCPU(),
		BestOf:  cfg.bestOf,
	}
	for _, name := range split(cfg.protocols) {
		p, err := repro.NewProtocol(name)
		if err != nil {
			return err
		}
		for _, class := range split(cfg.scenarios) {
			init, err := repro.ParseInitClass(class)
			if err != nil {
				return err
			}
			sc := repro.Scenario{Init: init, MaxStates: cfg.maxStates}
			if err := p.Validate(sc); err != nil {
				// Scenario unsupported by this protocol (e.g. noleader on
				// a baseline): skip the cell, not the run.
				fmt.Fprintf(stdout, "## skipping %s × %s: %v\n", name, class, err)
				continue
			}
			for _, n := range ns {
				if name == "chenchen" && n > cfg.ccmax {
					fmt.Fprintf(stdout, "## skipping chenchen n=%d (> -ccmax %d, exponential class)\n", n, cfg.ccmax)
					continue
				}
				for _, mode := range split(cfg.modes) {
					for t := 0; t < cfg.trials; t++ {
						res, err := measure(name, n, cfg.seed+uint64(t), sc, mode, cfg.rawSteps, cfg.bestOf, cfg.lanes)
						if err != nil {
							return err
						}
						file.Results = append(file.Results, res)
						if sink != nil {
							if err := sink.Record(res.Record()); err != nil {
								return err
							}
						}
						note := ""
						if res.Fallback {
							note = " (fallback)"
						}
						fmt.Fprintf(stdout, "%-9s n=%-4d %-12s %-9s steps=%-9d %10.0f steps/sec%s\n",
							name, res.N, class, mode, res.Steps, res.StepsPerSec, note)
					}
				}
			}
		}
	}
	if sink != nil {
		if err := sink.Close(); err != nil {
			return err
		}
		fmt.Fprintf(stdout, "wrote %s (%d records)\n", cfg.records, sink.Count())
	}
	data, err := json.MarshalIndent(file, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if cfg.out == "" {
		_, err = stdout.Write(data)
		return err
	}
	if err := os.WriteFile(cfg.out, data, 0o644); err != nil {
		return err
	}
	fmt.Fprintf(stdout, "wrote %s (%d results)\n", cfg.out, len(file.Results))
	return nil
}

func split(s string) []string {
	parts := strings.Split(s, ",")
	out := make([]string, 0, len(parts))
	for _, p := range parts {
		if p = strings.TrimSpace(p); p != "" {
			out = append(out, p)
		}
	}
	return out
}

func parseSizes(s string) ([]int, error) {
	var out []int
	for _, part := range split(s) {
		n, err := strconv.Atoi(part)
		if err != nil || n < 2 {
			return nil, fmt.Errorf("bad size %q", part)
		}
		out = append(out, n)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("no sizes given")
	}
	return out, nil
}
