package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

// TestBenchEmitsStableSchema runs a tiny full pipeline and pins the
// BENCH_ringsim.json schema CI consumes: envelope fields, schema tag, and
// per-result fields present and sane.
func TestBenchEmitsStableSchema(t *testing.T) {
	out := filepath.Join(t.TempDir(), "BENCH_ringsim.json")
	var stdout bytes.Buffer
	err := run(&stdout, "ppl,yokota", "8", "random", "runbatch,tracked,scan", 1, 1, 5000, 8, out, "")
	if err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var f File
	if err := json.Unmarshal(data, &f); err != nil {
		t.Fatalf("artifact does not parse: %v\n%s", err, data)
	}
	if f.Schema != Schema {
		t.Fatalf("schema tag %q, want %q", f.Schema, Schema)
	}
	if f.Go == "" || f.OS == "" || f.Arch == "" || f.CPUs < 1 || f.Created == "" {
		t.Fatalf("incomplete provenance: %+v", f)
	}
	// 2 protocols × 1 size × 3 modes × 1 trial.
	if len(f.Results) != 6 {
		t.Fatalf("got %d results, want 6:\n%s", len(f.Results), data)
	}
	for _, r := range f.Results {
		if r.Protocol == "" || r.N != 8 || r.Steps == 0 || r.Seconds < 0 || !r.Converged {
			t.Fatalf("degenerate result %+v", r)
		}
		switch r.Mode {
		case "runbatch", "tracked", "scan":
		default:
			t.Fatalf("unknown mode in artifact: %+v", r)
		}
	}
}

// TestBenchSkipsUnsupportedScenario pins the skip-not-fail contract for
// scenario × protocol combinations the protocol rejects.
func TestBenchSkipsUnsupportedScenario(t *testing.T) {
	var stdout bytes.Buffer
	out := filepath.Join(t.TempDir(), "b.json")
	if err := run(&stdout, "yokota", "8", "noleader", "tracked", 1, 1, 1000, 8, out, ""); err != nil {
		t.Fatalf("unsupported scenario must skip, not fail: %v", err)
	}
	if !bytes.Contains(stdout.Bytes(), []byte("skipping")) {
		t.Fatalf("no skip notice:\n%s", stdout.String())
	}
}

func TestBenchRejectsBadInput(t *testing.T) {
	var stdout bytes.Buffer
	if err := run(&stdout, "ppl", "1", "random", "tracked", 1, 1, 10, 8, "", ""); err == nil {
		t.Fatal("size 1 accepted")
	}
	if err := run(&stdout, "paxos", "8", "random", "tracked", 1, 1, 10, 8, "", ""); err == nil {
		t.Fatal("unknown protocol accepted")
	}
	if err := run(&stdout, "ppl", "8", "random", "warp", 1, 1, 10, 8, "", ""); err == nil {
		t.Fatal("unknown mode accepted")
	}
	if err := run(&stdout, "ppl", "8", "bogus", "tracked", 1, 1, 10, 8, "", ""); err == nil {
		t.Fatal("unknown init class accepted")
	}
}
