package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

func testConfig(out string) config {
	return config{
		protocols: "ppl,yokota",
		sizes:     "8",
		scenarios: "random",
		modes:     "runbatch,tracked,scan,interned",
		trials:    1,
		bestOf:    1,
		seed:      1,
		rawSteps:  5000,
		ccmax:     8,
		out:       out,
	}
}

// TestBenchEmitsStableSchema runs a tiny full pipeline and pins the
// BENCH_ringsim.json schema CI consumes: envelope fields, schema tag, and
// per-result fields present and sane — now including the interned mode and
// the bestof envelope field.
func TestBenchEmitsStableSchema(t *testing.T) {
	out := filepath.Join(t.TempDir(), "BENCH_ringsim.json")
	var stdout bytes.Buffer
	cfg := testConfig(out)
	cfg.bestOf = 2
	if err := run(&stdout, cfg); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var f File
	if err := json.Unmarshal(data, &f); err != nil {
		t.Fatalf("artifact does not parse: %v\n%s", err, data)
	}
	if f.Schema != Schema {
		t.Fatalf("schema tag %q, want %q", f.Schema, Schema)
	}
	if f.Go == "" || f.OS == "" || f.Arch == "" || f.CPUs < 1 || f.Created == "" {
		t.Fatalf("incomplete provenance: %+v", f)
	}
	if f.BestOf != 2 {
		t.Fatalf("bestof %d not recorded in envelope", f.BestOf)
	}
	// 2 protocols × 1 size × 4 modes × 1 trial.
	if len(f.Results) != 8 {
		t.Fatalf("got %d results, want 8:\n%s", len(f.Results), data)
	}
	interned := 0
	for _, r := range f.Results {
		if r.Protocol == "" || r.N != 8 || r.Steps == 0 || r.Seconds < 0 || !r.Converged {
			t.Fatalf("degenerate result %+v", r)
		}
		switch r.Mode {
		case "runbatch", "tracked", "scan":
		case "interned":
			interned++
			if r.Fallback {
				t.Fatalf("n=8 interned run fell back: %+v", r)
			}
		default:
			t.Fatalf("unknown mode in artifact: %+v", r)
		}
	}
	if interned != 2 {
		t.Fatalf("want 2 interned rows, got %d", interned)
	}
}

// TestBenchRecoveryMode pins the recovery rows: a mid-run burst at 4n²,
// recovery measured as exact steps from burst to re-convergence, and —
// because trials are deterministic in the seed — identical step counts on
// repeated runs (the property the CI drift gate relies on).
func TestBenchRecoveryMode(t *testing.T) {
	emit := func(path string) File {
		var stdout bytes.Buffer
		cfg := testConfig(path)
		cfg.protocols = "ppl"
		cfg.modes = "recovery"
		cfg.trials = 2
		if err := run(&stdout, cfg); err != nil {
			t.Fatal(err)
		}
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		var f File
		if err := json.Unmarshal(data, &f); err != nil {
			t.Fatal(err)
		}
		return f
	}
	dir := t.TempDir()
	a := emit(filepath.Join(dir, "a.json"))
	b := emit(filepath.Join(dir, "b.json"))
	if len(a.Results) != 2 || len(b.Results) != 2 {
		t.Fatalf("want 2 recovery rows per file, got %d and %d", len(a.Results), len(b.Results))
	}
	for i, r := range a.Results {
		if r.Mode != "recovery" || !r.Converged {
			t.Fatalf("bad recovery row %+v", r)
		}
		if r.Steps == 0 {
			t.Fatalf("zero recovery steps: %+v", r)
		}
		if b.Results[i].Steps != r.Steps {
			t.Fatalf("recovery steps not deterministic: %d vs %d", r.Steps, b.Results[i].Steps)
		}
	}
}

// compareFixture writes a synthetic baseline with one tracked, one
// runbatch and one recovery row for the same cell.
func compareFixture(t *testing.T, dir, name string, trackedSPS, rawSPS float64, recoverySteps uint64) string {
	t.Helper()
	row := func(mode string, sps float64, steps uint64) map[string]interface{} {
		return map[string]interface{}{
			"protocol": "ppl", "n": 8, "scenario": "random", "mode": mode,
			"seed": 1, "steps": steps, "seconds": 1.0, "steps_per_sec": sps, "converged": true,
		}
	}
	shape := map[string]interface{}{
		"schema": Schema, "created": "t", "go": "g", "os": "o", "arch": "a", "cpus": 1, "bestof": 1,
		"results": []interface{}{
			row("tracked", trackedSPS, 1000),
			row("runbatch", rawSPS, 5000),
			row("recovery", 100, recoverySteps),
		},
	}
	data, err := json.MarshalIndent(shape, "", " ")
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, name)
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

// TestBenchCompareGate pins the -compare subcommand: ratio table, the
// normalized tracked-throughput gate (machine-independent: tracked
// steps/sec divided by the same file's runbatch steps/sec) and the
// recovery-drift gate.
func TestBenchCompareGate(t *testing.T) {
	dir := t.TempDir()
	oldPath := compareFixture(t, dir, "old.json", 1000, 10000, 4000)

	// Same efficiency on a machine 2× faster, same recovery: gate passes.
	var buf bytes.Buffer
	ok, err := runCompare(&buf, oldPath, compareFixture(t, dir, "same.json", 2000, 20000, 4000), true, 0.20, 0.05)
	if err != nil || !ok {
		t.Fatalf("clean compare failed: ok=%v err=%v\n%s", ok, err, buf.String())
	}
	if !bytes.Contains(buf.Bytes(), []byte("GATE PASS")) {
		t.Fatalf("no GATE PASS:\n%s", buf.String())
	}
	// Tracked efficiency halved: gate fails even though raw tracked
	// steps/sec rose (the new machine is just 3× faster).
	buf.Reset()
	ok, err = runCompare(&buf, oldPath, compareFixture(t, dir, "slow.json", 1500, 30000, 4000), true, 0.20, 0.05)
	if err != nil || ok {
		t.Fatalf("tracked regression not gated: ok=%v err=%v\n%s", ok, err, buf.String())
	}
	// Recovery steps drifted 10%: gate fails.
	buf.Reset()
	ok, err = runCompare(&buf, oldPath, compareFixture(t, dir, "drift.json", 1000, 10000, 4400), true, 0.20, 0.05)
	if err != nil || ok {
		t.Fatalf("recovery drift not gated: ok=%v err=%v\n%s", ok, err, buf.String())
	}
	// Recovery regression from a zero baseline: gate fails, not skips.
	zeroPath := compareFixture(t, dir, "zero.json", 1000, 10000, 0)
	buf.Reset()
	ok, err = runCompare(&buf, zeroPath, compareFixture(t, dir, "fromzero.json", 1000, 10000, 500), true, 0.20, 0.05)
	if err != nil || ok {
		t.Fatalf("zero-baseline recovery regression not gated: ok=%v err=%v\n%s", ok, err, buf.String())
	}
	// A gated-mode cell disappearing from the new measurement fails the
	// gate instead of silently shrinking coverage. An n=9 fixture shares no
	// cell with the n=8 baseline, so every gated cell of old.json is lost.
	lost := compareFixture(t, dir, "lost.json", 1000, 10000, 4000)
	relabel, err := os.ReadFile(lost)
	if err != nil {
		t.Fatal(err)
	}
	relabel = bytes.ReplaceAll(relabel, []byte(`"n": 8`), []byte(`"n": 9`))
	if err := os.WriteFile(lost, relabel, 0o644); err != nil {
		t.Fatal(err)
	}
	buf.Reset()
	if _, err = runCompare(&buf, oldPath, lost, true, 0.20, 0.05); err == nil {
		t.Fatal("disjoint cells must error (no common cells)")
	}
	// With partial overlap (tracked cell kept, recovery cell lost) the gate
	// must fail on the lost coverage.
	partial := compareFixture(t, dir, "partial.json", 1000, 10000, 4000)
	pdata, err := os.ReadFile(partial)
	if err != nil {
		t.Fatal(err)
	}
	pdata = bytes.ReplaceAll(pdata, []byte(`"mode": "recovery"`), []byte(`"mode": "recovery-renamed"`))
	if err := os.WriteFile(partial, pdata, 0o644); err != nil {
		t.Fatal(err)
	}
	buf.Reset()
	ok, err = runCompare(&buf, oldPath, partial, true, 0.20, 0.05)
	if err != nil || ok {
		t.Fatalf("lost gated coverage not gated: ok=%v err=%v\n%s", ok, err, buf.String())
	}
	// Without -gate the same comparison only reports.
	buf.Reset()
	ok, err = runCompare(&buf, oldPath, compareFixture(t, dir, "drift2.json", 1000, 10000, 4400), false, 0.20, 0.05)
	if err != nil || !ok {
		t.Fatalf("ungated compare failed: ok=%v err=%v", ok, err)
	}
}

// TestBenchSkipsUnsupportedScenario pins the skip-not-fail contract for
// scenario × protocol combinations the protocol rejects.
func TestBenchSkipsUnsupportedScenario(t *testing.T) {
	var stdout bytes.Buffer
	cfg := testConfig(filepath.Join(t.TempDir(), "b.json"))
	cfg.protocols = "yokota"
	cfg.scenarios = "noleader"
	cfg.modes = "tracked"
	if err := run(&stdout, cfg); err != nil {
		t.Fatalf("unsupported scenario must skip, not fail: %v", err)
	}
	if !bytes.Contains(stdout.Bytes(), []byte("skipping")) {
		t.Fatalf("no skip notice:\n%s", stdout.String())
	}
}

func TestBenchRejectsBadInput(t *testing.T) {
	var stdout bytes.Buffer
	bad := func(mutate func(*config)) config {
		cfg := testConfig("")
		cfg.protocols = "ppl"
		cfg.modes = "tracked"
		cfg.rawSteps = 10
		mutate(&cfg)
		return cfg
	}
	if err := run(&stdout, bad(func(c *config) { c.sizes = "1" })); err == nil {
		t.Fatal("size 1 accepted")
	}
	if err := run(&stdout, bad(func(c *config) { c.protocols = "paxos" })); err == nil {
		t.Fatal("unknown protocol accepted")
	}
	if err := run(&stdout, bad(func(c *config) { c.modes = "warp" })); err == nil {
		t.Fatal("unknown mode accepted")
	}
	if err := run(&stdout, bad(func(c *config) { c.scenarios = "bogus" })); err == nil {
		t.Fatal("unknown init class accepted")
	}
	if err := run(&stdout, bad(func(c *config) { c.bestOf = 0 })); err == nil {
		t.Fatal("bestof 0 accepted")
	}
}
