package main

// The -compare subcommand: per-cell throughput ratios between two baseline
// files, plus the metric gates CI enforces against the committed
// BENCH_baseline.json.
//
// Gating raw steps/sec across machines would be meaningless — a laptop
// baseline vs a CI runner measures the hardware, not the code — so the
// tracked-mode gate normalizes each file's tracked throughput by the same
// file's runbatch throughput for the same (protocol, n, scenario) cell:
// the resulting "tracking efficiency" is a dimensionless property of the
// engine that transfers across machines. Recovery steps need no
// normalization at all: they are deterministic counts, identical on every
// machine, so any drift is a semantic change in the engine or protocols.

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"os"
	"sort"

	"repro"
)

// cellKey identifies a comparable measurement cell.
type cellKey struct {
	Protocol string
	N        int
	Scenario string
	Mode     string
}

// cellStats aggregates one file's rows for a cell.
type cellStats struct {
	meanSPS   float64 // mean steps/sec across trials
	meanSteps float64 // mean steps across trials
	rows      int
}

func loadBaseline(path string) (map[cellKey]cellStats, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var f File
	if err := json.Unmarshal(data, &f); err != nil {
		return nil, fmt.Errorf("%s: %v", path, err)
	}
	if f.Schema != Schema {
		return nil, fmt.Errorf("%s: schema %q, want %q", path, f.Schema, Schema)
	}
	cells := make(map[cellKey]cellStats)
	for _, r := range f.Results {
		k := cellKey{r.Protocol, r.N, r.Scenario, string(r.Mode)}
		s := cells[k]
		s.meanSPS += r.StepsPerSec
		s.meanSteps += float64(r.Steps)
		s.rows++
		cells[k] = s
	}
	for k, s := range cells {
		s.meanSPS /= float64(s.rows)
		s.meanSteps /= float64(s.rows)
		cells[k] = s
	}
	return cells, nil
}

// runCompare prints the per-cell ratio table and, when gate is set,
// evaluates the regression thresholds. It returns ok=false when a gate
// fails.
func runCompare(stdout io.Writer, oldPath, newPath string, gate bool, maxTrackedRegress, maxRecoveryDrift float64) (bool, error) {
	oldCells, err := loadBaseline(oldPath)
	if err != nil {
		return false, err
	}
	newCells, err := loadBaseline(newPath)
	if err != nil {
		return false, err
	}

	var keys []cellKey
	for k := range newCells {
		if _, ok := oldCells[k]; ok {
			keys = append(keys, k)
		}
	}
	// Baseline cells the new measurement no longer covers would otherwise
	// vanish from both gate loops — a renamed mode or a FixSize change
	// could silently un-gate a whole protocol. Report them, and under
	// -gate treat missing gated-mode coverage as a failure.
	var missing []cellKey
	for k := range oldCells {
		if _, ok := newCells[k]; !ok {
			missing = append(missing, k)
		}
	}
	sort.Slice(missing, func(i, j int) bool {
		return fmt.Sprint(missing[i]) < fmt.Sprint(missing[j])
	})
	lostGated := false
	for _, k := range missing {
		fmt.Fprintf(stdout, "## baseline cell missing from %s: %s n=%d %s %s\n",
			newPath, k.Protocol, k.N, k.Scenario, k.Mode)
		switch k.Mode {
		case string(repro.BenchTracked), string(repro.BenchInterned), string(repro.BenchLanes), "recovery":
			lostGated = true
		}
	}
	sort.Slice(keys, func(i, j int) bool {
		a, b := keys[i], keys[j]
		if a.Protocol != b.Protocol {
			return a.Protocol < b.Protocol
		}
		if a.N != b.N {
			return a.N < b.N
		}
		if a.Scenario != b.Scenario {
			return a.Scenario < b.Scenario
		}
		return a.Mode < b.Mode
	})
	if len(keys) == 0 {
		return false, fmt.Errorf("no common cells between %s and %s", oldPath, newPath)
	}

	fmt.Fprintf(stdout, "%-9s %-5s %-12s %-9s %14s %14s %7s\n",
		"protocol", "n", "scenario", "mode", "old steps/sec", "new steps/sec", "ratio")
	for _, k := range keys {
		o, n := oldCells[k], newCells[k]
		ratio := math.NaN()
		if o.meanSPS > 0 {
			ratio = n.meanSPS / o.meanSPS
		}
		fmt.Fprintf(stdout, "%-9s %-5d %-12s %-9s %14.0f %14.0f %7.2f\n",
			k.Protocol, k.N, k.Scenario, k.Mode, o.meanSPS, n.meanSPS, ratio)
	}

	ok := true
	if gate && lostGated {
		fmt.Fprintln(stdout, "GATE FAIL: gated baseline cells (tracked/interned/lanes/recovery) missing from the new measurement")
		ok = false
	}
	// Gate 1: normalized engine throughput, once per convergence-engine
	// mode — tracked, interned and lanes each carry their own envelope, so
	// a regression in the table-lookup layer cannot hide behind the
	// tracked engine (or vice versa). Geometric mean across every cell
	// with both the mode's row and a runbatch row in both files, so a
	// single noisy cell cannot fail the build on its own while a broad
	// regression cannot hide behind one improved cell either.
	fmt.Fprintln(stdout)
	for _, mode := range []string{string(repro.BenchTracked), string(repro.BenchInterned), string(repro.BenchLanes)} {
		logSum, cells := 0.0, 0
		for _, k := range keys {
			if k.Mode != mode {
				continue
			}
			rawKey := cellKey{k.Protocol, k.N, k.Scenario, string(repro.BenchRaw)}
			oRaw, okO := oldCells[rawKey]
			nRaw, okN := newCells[rawKey]
			if !okO || !okN || oRaw.meanSPS <= 0 || nRaw.meanSPS <= 0 || oldCells[k].meanSPS <= 0 || newCells[k].meanSPS <= 0 {
				continue
			}
			oldNorm := oldCells[k].meanSPS / oRaw.meanSPS
			newNorm := newCells[k].meanSPS / nRaw.meanSPS
			logSum += math.Log(newNorm / oldNorm)
			cells++
		}
		if cells == 0 {
			// Only the tracked mode is mandatory: the seed baseline predates
			// the interned and lanes modes, and -compare must keep working
			// against it.
			if gate && mode == string(repro.BenchTracked) {
				fmt.Fprintf(stdout, "GATE WARN: no common %s+runbatch cells; %s gate not evaluated\n", mode, mode)
			}
			continue
		}
		geo := math.Exp(logSum / float64(cells))
		fmt.Fprintf(stdout, "%s-mode efficiency (%s/runbatch, geomean over %d cells): %.3f× the old baseline\n", mode, mode, cells, geo)
		if gate && geo < 1-maxTrackedRegress {
			fmt.Fprintf(stdout, "GATE FAIL: %s-mode throughput regressed %.1f%% (> %.0f%% allowed)\n",
				mode, (1-geo)*100, maxTrackedRegress*100)
			ok = false
		}
	}

	// Gate 2: mean recovery steps, a deterministic machine-independent
	// count — per-cell, since a drift in any protocol's recovery semantics
	// is a bug regardless of the others.
	recovCells := 0
	for _, k := range keys {
		if k.Mode != "recovery" {
			continue
		}
		recovCells++
		o, n := oldCells[k], newCells[k]
		if o.meanSteps <= 0 {
			// A zero baseline admits no ratio; any nonzero regression from
			// it is an unbounded drift, not a cell to skip silently.
			if n.meanSteps > 0 {
				fmt.Fprintf(stdout, "recovery drift %s n=%d %s: 0 → %.0f steps\n",
					k.Protocol, k.N, k.Scenario, n.meanSteps)
				if gate {
					fmt.Fprintln(stdout, "GATE FAIL: recovery steps regressed from a zero baseline")
					ok = false
				}
			}
			continue
		}
		drift := n.meanSteps/o.meanSteps - 1
		if math.Abs(drift) > maxRecoveryDrift {
			fmt.Fprintf(stdout, "recovery drift %s n=%d %s: %.0f → %.0f steps (%+.1f%%)\n",
				k.Protocol, k.N, k.Scenario, o.meanSteps, n.meanSteps, drift*100)
			if gate {
				fmt.Fprintf(stdout, "GATE FAIL: mean recovery steps drifted %.1f%% (> %.0f%% allowed)\n",
					math.Abs(drift)*100, maxRecoveryDrift*100)
				ok = false
			}
		}
	}
	if gate && recovCells == 0 {
		fmt.Fprintln(stdout, "GATE WARN: no common recovery cells; recovery gate not evaluated")
	}
	if gate && ok {
		fmt.Fprintln(stdout, "GATE PASS")
	}
	return ok, nil
}
