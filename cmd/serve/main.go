// Command serve runs the experiment service: ringsim over HTTP. Clients
// POST job specs (protocols × sizes × scenario × trials × metrics) to
// /v1/jobs; a bounded worker pool executes them through the Experiment
// streaming path with a content-addressed cell cache, and results stream
// back as TrialRecord JSONL or rendered Reports. See docs/API.md for the
// HTTP surface.
//
// Usage:
//
//	go run ./cmd/serve -addr :8080
//	curl -s localhost:8080/v1/jobs -d '{"protocols":["ppl"],"sizes":[16,32],"trials":3}'
//	curl -s localhost:8080/v1/jobs/j-000001/records
//	curl -s 'localhost:8080/v1/jobs/j-000001/report?format=md'
//
// SIGINT/SIGTERM drain gracefully: the listener stops accepting, queued
// and running jobs complete (bounded by -drain-timeout), sinks flush,
// then the process exits 0.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/service"
)

func main() {
	os.Exit(run(os.Args[1:]))
}

func run(args []string) int {
	fs := flag.NewFlagSet("serve", flag.ContinueOnError)
	var (
		addr         = fs.String("addr", ":8080", "listen address")
		workers      = fs.Int("workers", 2, "concurrently executing jobs")
		queueDepth   = fs.Int("queue", 16, "bounded queue depth (full queue answers 429)")
		trialWorkers = fs.Int("trial-workers", 0, "per-cell trial pool size (0 = one per core)")
		cacheMB      = fs.Int64("cache-mb", 256, "in-memory cell cache bound, MiB")
		cacheDir     = fs.String("cache-dir", "", "spill evicted cache entries to this directory (gzip JSONL)")
		artifacts    = fs.String("artifacts", "", "write per-job record artifacts (rotating gzip JSONL) under this directory")
		segMB        = fs.Int64("artifact-segment-mb", 0, "artifact segment size bound, MiB (0 = 64)")
		drain        = fs.Duration("drain-timeout", 2*time.Minute, "graceful-shutdown budget for queued and running jobs")
		jobTimeout   = fs.Duration("job-timeout", 0, "default per-job execution deadline, queue wait included (0 = unbounded; specs override via timeout_ms)")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}

	if *artifacts != "" {
		if err := os.MkdirAll(*artifacts, 0o755); err != nil {
			log.Printf("serve: artifacts dir: %v", err)
			return 1
		}
	}
	svc := service.New(service.Config{
		Workers:              *workers,
		QueueDepth:           *queueDepth,
		TrialWorkers:         *trialWorkers,
		CacheBytes:           *cacheMB << 20,
		CacheDir:             *cacheDir,
		ArtifactsDir:         *artifacts,
		ArtifactSegmentBytes: *segMB << 20,
		JobTimeout:           *jobTimeout,
	})

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Printf("serve: listen: %v", err)
		return 1
	}
	httpSrv := &http.Server{Handler: svc.Handler()}
	log.Printf("serve: listening on %s (workers=%d queue=%d cache=%dMiB)", ln.Addr(), *workers, *queueDepth, *cacheMB)

	serveErr := make(chan error, 1)
	go func() { serveErr <- httpSrv.Serve(ln) }()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	select {
	case s := <-sig:
		log.Printf("serve: %v — draining (budget %s)", s, *drain)
	case err := <-serveErr:
		log.Printf("serve: http: %v", err)
		return 1
	}

	ctx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	// Listener first (stop new connections and let in-flight responses
	// finish), then the service (drain the job queue, flush sinks).
	if err := httpSrv.Shutdown(ctx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		log.Printf("serve: http shutdown: %v", err)
	}
	if err := svc.Shutdown(ctx); err != nil {
		log.Printf("serve: drain incomplete: %v", err)
		return 1
	}
	fmt.Println("serve: drained cleanly")
	return 0
}
