package main

import (
	"os"
	"os/signal"
	"syscall"
	"testing"
	"time"
)

func TestRunRejectsBadFlags(t *testing.T) {
	if code := run([]string{"-definitely-not-a-flag"}); code != 2 {
		t.Fatalf("run(bad flag) = %d, want 2", code)
	}
}

func TestRunReportsListenFailure(t *testing.T) {
	if code := run([]string{"-addr", "256.256.256.256:0"}); code != 1 {
		t.Fatalf("run(bad addr) = %d, want 1", code)
	}
}

func TestRunDrainsCleanlyOnSIGTERM(t *testing.T) {
	// Park SIGTERM on a channel of our own first: this disables the
	// default process-killing disposition, so the signal below can never
	// race run's own Notify registration and kill the test binary.
	guard := make(chan os.Signal, 1)
	signal.Notify(guard, syscall.SIGTERM)
	defer signal.Stop(guard)

	done := make(chan int, 1)
	go func() {
		done <- run([]string{"-addr", "127.0.0.1:0", "-workers", "1", "-drain-timeout", "30s"})
	}()
	// Give the server a moment to boot and register its handler.
	time.Sleep(300 * time.Millisecond)
	if err := syscall.Kill(os.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatalf("self-SIGTERM: %v", err)
	}
	select {
	case code := <-done:
		if code != 0 {
			t.Fatalf("run exited %d after SIGTERM, want 0 (clean drain)", code)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("run did not exit after SIGTERM")
	}
}
