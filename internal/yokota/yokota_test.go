package yokota

import (
	"testing"

	"repro/internal/population"
	"repro/internal/xrand"
)

func engine(n, upper int, seed uint64) (*Protocol, *population.Engine[State]) {
	p := New(upper)
	eng := population.NewEngine(population.DirectedRing(n), p.Step, xrand.New(seed))
	return p, eng
}

func TestDistancePropagation(t *testing.T) {
	p := New(16)
	l := State{Dist: 3}
	r := State{Dist: 9}
	_, r2 := p.Step(l, r)
	if r2.Dist != 4 || r2.Leader {
		t.Fatalf("responder = %+v, want dist 4 follower", r2)
	}
}

func TestLeaderResetsDistance(t *testing.T) {
	p := New(16)
	_, r2 := p.Step(State{Dist: 7}, State{Leader: true, Dist: 5})
	if r2.Dist != 0 {
		t.Fatalf("leader dist = %d, want 0", r2.Dist)
	}
}

func TestThresholdCreatesLeader(t *testing.T) {
	p := New(16)
	_, r2 := p.Step(State{Dist: 15}, State{Dist: 2})
	if !r2.Leader || r2.Dist != 0 {
		t.Fatalf("threshold crossing: %+v", r2)
	}
	if !r2.War.Shield {
		t.Fatal("new leader must be armed")
	}
}

func TestBelowThresholdNoCreation(t *testing.T) {
	p := New(16)
	_, r2 := p.Step(State{Dist: 14}, State{Dist: 2})
	if r2.Leader {
		t.Fatalf("spurious creation at dist 15: %+v", r2)
	}
	if r2.Dist != 15 {
		t.Fatalf("dist = %d, want 15", r2.Dist)
	}
}

func TestConvergenceFromRandom(t *testing.T) {
	for _, n := range []int{8, 16, 32, 48} {
		p, eng := engine(n, 2*n, uint64(n))
		rng := xrand.New(uint64(n) + 100)
		eng.SetStates(p.RandomConfig(rng, n))
		eng.TrackLeaders(IsLeader)
		maxSteps := uint64(n) * uint64(n) * 500
		_, ok := eng.RunUntil(p.Stable, n, maxSteps)
		if !ok {
			t.Fatalf("n=%d: not stable within %d steps (%d leaders)", n, maxSteps, eng.LeaderCount())
		}
	}
}

func TestConvergenceFromNoLeader(t *testing.T) {
	n := 24
	p, eng := engine(n, 2*n, 9)
	// Consistent-looking distances without any leader: detection must kick
	// in once some distance would reach N.
	cfg := make([]State, n)
	for i := range cfg {
		cfg[i] = State{Dist: uint32(i)}
	}
	eng.SetStates(cfg)
	_, ok := eng.RunUntil(p.Stable, n, uint64(n)*uint64(n)*500)
	if !ok {
		t.Fatal("no-leader start never stabilized")
	}
}

func TestConvergenceFromAllLeaders(t *testing.T) {
	n := 24
	p, eng := engine(n, 2*n, 10)
	cfg := make([]State, n)
	for i := range cfg {
		cfg[i] = State{Leader: true}
	}
	eng.SetStates(cfg)
	_, ok := eng.RunUntil(p.Stable, n, uint64(n)*uint64(n)*500)
	if !ok {
		t.Fatal("all-leaders start never stabilized")
	}
}

func TestStability(t *testing.T) {
	n := 16
	p, eng := engine(n, 2*n, 11)
	rng := xrand.New(12)
	eng.SetStates(p.RandomConfig(rng, n))
	eng.TrackLeaders(IsLeader)
	if _, ok := eng.RunUntil(p.Stable, n, uint64(n)*uint64(n)*500); !ok {
		t.Fatal("did not stabilize")
	}
	changesAt := eng.LeaderChanges()
	eng.Run(300000)
	if eng.LeaderChanges() != changesAt {
		t.Fatal("leader set changed after stabilization")
	}
	if !p.Stable(eng.Config()) {
		t.Fatal("left the stable set")
	}
}

func TestStableRejectsBadShapes(t *testing.T) {
	p := New(8)
	if p.Stable([]State{{}, {}, {}}) {
		t.Fatal("no-leader configuration judged stable")
	}
	if p.Stable([]State{{Leader: true}, {Leader: true, Dist: 1}, {Dist: 1}}) {
		t.Fatal("two-leader configuration judged stable")
	}
	if p.Stable([]State{{Leader: true}, {Dist: 2}, {Dist: 2}}) {
		t.Fatal("wrong distances judged stable")
	}
	if !p.Stable([]State{{Leader: true}, {Dist: 1}, {Dist: 2}}) {
		t.Fatal("correct configuration rejected")
	}
}

func TestStateCountLinear(t *testing.T) {
	a, b := New(100).StateCount(), New(200).StateCount()
	if b <= a || b >= 3*a {
		t.Fatalf("state count not ~linear: %d → %d", a, b)
	}
}

func TestRandomStateInDomain(t *testing.T) {
	p := New(32)
	rng := xrand.New(13)
	for i := 0; i < 1000; i++ {
		s := p.RandomState(rng)
		if s.Dist > uint32(p.UpperBound) {
			t.Fatalf("random dist %d out of domain", s.Dist)
		}
	}
}

func TestNewPanicsOnTinyBound(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New(1)
}

func BenchmarkStep(b *testing.B) {
	p := New(512)
	l := State{Dist: 100}
	r := State{Dist: 101}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		l, r = p.Step(l, r)
	}
}
