package yokota

import (
	"testing"

	"repro/internal/population"
	"repro/internal/war"
	"repro/internal/xrand"
)

// domainStates enumerates the full state domain for upper bound N when it
// is small enough, and falls back to boundary values plus a random sweep
// for large N. The domain — Dist ∈ [0, N], both leader bits, all 12 war
// states — is a strict superset of every reachable configuration.
func domainStates(p *Protocol, rng *xrand.RNG) []State {
	var dists []uint32
	if p.UpperBound <= 256 {
		for d := 0; d <= p.UpperBound; d++ {
			dists = append(dists, uint32(d))
		}
	} else {
		dists = []uint32{0, 1, uint32(p.UpperBound / 2), uint32(p.UpperBound - 1), uint32(p.UpperBound)}
		for i := 0; i < 500; i++ {
			dists = append(dists, uint32(rng.Intn(p.UpperBound+1)))
		}
	}
	var out []State
	for _, d := range dists {
		for l := 0; l < 2; l++ {
			for b := war.None; b <= war.Live; b++ {
				for sh := 0; sh < 2; sh++ {
					for sg := 0; sg < 2; sg++ {
						out = append(out, State{
							Leader: l == 1,
							Dist:   d,
							War:    war.State{Bullet: b, Shield: sh == 1, Signal: sg == 1},
						})
					}
				}
			}
		}
	}
	return out
}

// TestCodecRoundTrip pins the packed codec across upper bounds spanning
// both enumeration regimes and the acceptance sizes: Dec(Enc(s)) == s,
// Enc stays under the declared width, and Enc is injective.
func TestCodecRoundTrip(t *testing.T) {
	for _, ub := range []int{2, 5, 64, 128, 2048, 1 << 16} {
		p := New(ub)
		c := p.Codec()
		if c.Bits < 1 || c.Bits > 63 {
			t.Fatalf("N=%d: codec width %d outside [1, 63]", ub, c.Bits)
		}
		rng := xrand.New(uint64(ub))
		seen := make(map[uint64]State)
		for _, s := range domainStates(p, rng) {
			v := c.Enc(s)
			if v >= 1<<c.Bits {
				t.Fatalf("N=%d: Enc(%+v) = %#x exceeds %d bits", ub, s, v, c.Bits)
			}
			if got := c.Dec(v); got != s {
				t.Fatalf("N=%d: round trip: %+v -> %#x -> %+v", ub, s, v, got)
			}
			if prev, dup := seen[v]; dup && prev != s {
				t.Fatalf("N=%d: collision: %+v and %+v both pack to %#x", ub, prev, s, v)
			}
			seen[v] = s
		}
	}
}

// TestPackedInternerCollisionFree feeds the N=64 full domain through the
// packed interner: one distinct ID per distinct state, stable on
// re-intern. The O(n)-state domain exercises the open-table growth path.
func TestPackedInternerCollisionFree(t *testing.T) {
	p := New(64)
	c := p.Codec()
	in := population.NewPackedInterner(c, population.DefaultMaxStates)
	states := domainStates(p, xrand.New(1))
	ids := make([]uint32, len(states))
	for i, s := range states {
		id, ok := in.Intern(s)
		if !ok {
			t.Fatalf("intern %+v failed below cap", s)
		}
		if in.Value(id) != s || in.Packed(id) != c.Enc(s) {
			t.Fatalf("mint %d does not invert for %+v", id, s)
		}
		ids[i] = id
	}
	if in.Len() != len(states) {
		t.Fatalf("interner minted %d IDs for %d distinct states", in.Len(), len(states))
	}
	for i, s := range states {
		if id, _ := in.Intern(s); id != ids[i] {
			t.Fatalf("re-intern of %+v moved ID %d -> %d", s, ids[i], id)
		}
	}
}

// FuzzCodecRoundTrip drives the round trip from raw fuzzed values,
// canonicalized into the valid domain of a fuzz-chosen upper bound.
func FuzzCodecRoundTrip(f *testing.F) {
	f.Add(uint16(2), uint32(0), uint8(0), uint8(0))
	f.Add(uint16(2048), uint32(2048), uint8(3), uint8(2))
	f.Fuzz(func(t *testing.T, ubRaw uint16, dist uint32, flags, bullet uint8) {
		ub := int(ubRaw)
		if ub < 2 {
			ub = 2
		}
		s := State{
			Leader: flags&1 != 0,
			Dist:   dist % uint32(ub+1),
			War: war.State{
				Bullet: war.Bullet(bullet % 3),
				Shield: flags&2 != 0,
				Signal: flags&4 != 0,
			},
		}
		c := New(ub).Codec()
		v := c.Enc(s)
		if v >= 1<<c.Bits {
			t.Fatalf("N=%d: Enc(%+v) = %#x exceeds %d bits", ub, s, v, c.Bits)
		}
		if got := c.Dec(v); got != s {
			t.Fatalf("N=%d: round trip: %+v -> %#x -> %+v", ub, s, v, got)
		}
	})
}
