package yokota

import (
	"fmt"
	"testing"

	"repro/internal/population"
	"repro/internal/population/tracktest"
	"repro/internal/xrand"
)

// TestStableSpecExact pins the incremental tracker to the brute-force
// Stable scan: per-step agreement and identical hitting times, on rings up
// to the n=64 acceptance size.
func TestStableSpecExact(t *testing.T) {
	for _, n := range []int{4, 16, 33, 64} {
		for seed := uint64(1); seed <= 2; seed++ {
			n, seed := n, seed
			t.Run(fmt.Sprintf("n=%d/seed=%d", n, seed), func(t *testing.T) {
				p := New(2 * n)
				mk := func() *population.Engine[State] {
					eng := population.NewEngine(population.DirectedRing(n), p.Step, xrand.New(seed))
					eng.SetStates(p.RandomConfig(xrand.New(seed^0x5eed), n))
					return eng
				}
				tracktest.Exact(t, mk, p.StableSpec(), p.Stable, 800*uint64(n)*uint64(n))
			})
		}
	}
}
