// Package yokota implements the time-optimal SS-LE ring protocol of
// Yokota, Sudo, Masuzawa (2021) — reference [28] of the paper and the
// fourth row of its Table 1: Θ(n²) expected convergence using O(n) states,
// given an upper bound N = n + O(n) on the population size.
//
// Reconstruction (documented substitution): leader absence is detected by exact
// distance counting — each agent computes its distance from the nearest
// left leader, and an agent that would sit at distance N or larger becomes
// a leader; elimination is exactly the Algorithm 5 war (internal/war),
// which the paper states it shares with P_PL verbatim.
package yokota

import (
	"fmt"
	"math/bits"

	"repro/internal/population"
	"repro/internal/war"
	"repro/internal/xrand"
)

// State is the per-agent state: the leader bit, a distance counter in
// [0, N], and the war variables. The state count is Θ(N) = Θ(n).
type State struct {
	Leader bool
	Dist   uint32
	War    war.State
}

// Protocol is the [28] protocol for rings of size at most N.
type Protocol struct {
	// UpperBound is the knowledge N = n + O(n); the protocol is correct for
	// any ring of size n ≤ N.
	UpperBound int
}

// New returns the protocol with knowledge N. A common instantiation for a
// ring of known approximate size n is N = 2n (the paper's N = n + O(n)).
func New(upperBound int) *Protocol {
	if upperBound < 2 {
		panic(fmt.Sprintf("yokota: upper bound %d < 2", upperBound))
	}
	return &Protocol{UpperBound: upperBound}
}

// Step is the transition: distance propagation with creation at the
// threshold, then leader elimination.
func (p *Protocol) Step(l, r State) (State, State) {
	if r.Leader {
		r.Dist = 0
	} else {
		d := l.Dist + 1
		if d >= uint32(p.UpperBound) {
			// No leader within N hops to the left: impossible in a
			// correctly-labelled ring of size n ≤ N, so a leader is
			// missing. Become one, armed as in the paper's line 6.
			r.Leader = true
			r.Dist = 0
			r.War = war.Arm()
		} else {
			r.Dist = d
		}
	}
	war.Step(&l.Leader, &r.Leader, &l.War, &r.War)
	return l, r
}

// IsLeader is the output function.
func IsLeader(s State) bool { return s.Leader }

// Codec is the fixed-width state codec for the interned engine's packed
// interner: the leader bit, then the distance counter (its domain is
// [0, UpperBound] — RandomState draws the closed interval), then the four
// war bits. 1 + ⌈log₂(N+1)⌉ + 4 bits, far below the packed layer's 63-bit
// ceiling for any realistic N.
func (p *Protocol) Codec() population.PackedCodec[State] {
	distBits := bits.Len(uint(p.UpperBound))
	return population.PackedCodec[State]{
		Bits: 1 + distBits + war.PackBits,
		Enc: func(s State) uint64 {
			v := uint64(s.Dist)<<1 | war.Pack(s.War)<<(1+distBits)
			if s.Leader {
				v |= 1
			}
			return v
		},
		Dec: func(v uint64) State {
			return State{
				Leader: v&1 != 0,
				Dist:   uint32(v>>1) & (1<<distBits - 1),
				War:    war.Unpack(v >> (1 + distBits)),
			}
		},
	}
}

// StateCount returns |Q| = 2·(N+1)·12: linear in the knowledge N.
func (p *Protocol) StateCount() uint64 {
	return 2 * uint64(p.UpperBound+1) * 3 * 2 * 2
}

// RandomState samples uniformly from the state space.
func (p *Protocol) RandomState(rng *xrand.RNG) State {
	return State{
		Leader: rng.Bool(),
		Dist:   uint32(rng.Intn(p.UpperBound + 1)),
		War: war.State{
			Bullet: war.Bullet(rng.Intn(3)),
			Shield: rng.Bool(),
			Signal: rng.Bool(),
		},
	}
}

// RandomConfig samples a full adversarial configuration for a ring of n
// agents.
func (p *Protocol) RandomConfig(rng *xrand.RNG, n int) []State {
	cfg := make([]State, n)
	for i := range cfg {
		cfg[i] = p.RandomState(rng)
	}
	return cfg
}

// Stable reports whether the configuration has converged to its absorbing
// shape: exactly one leader, every distance exactly the hop count from it
// (all below N), and every live bullet peaceful. From such a configuration
// the leader set never changes again: distances never reach the creation
// threshold and the war cannot kill the last leader.
func (p *Protocol) Stable(cfg []State) bool {
	n := len(cfg)
	k := -1
	for i, s := range cfg {
		if s.Leader {
			if k >= 0 {
				return false
			}
			k = i
		}
	}
	if k < 0 {
		return false
	}
	for i := 0; i < n; i++ {
		if got := cfg[(k+i)%n].Dist; got != uint32(i) {
			return false
		}
	}
	leaders := make([]bool, n)
	states := make([]war.State, n)
	for i, s := range cfg {
		leaders[i] = s.Leader
		states[i] = s.War
	}
	return war.AllLiveBulletsPeaceful(leaders, states)
}

// StableSpec is the delta-decomposed form of Stable for incremental
// convergence tracking (population.RingTracker). The distance structure is
// fully local: with exactly one leader, per-arc consistency — a leader
// responder at dist 0, a follower responder at its initiator's dist plus
// one — forces dist(k+i) = i around the whole ring by induction from the
// leader, which is precisely Stable's exact-hop-count demand. Leader count
// and live bullets are O(1) agent counters; only when all of that already
// holds does the verdict run the non-local C_PB residual
// (war.PeacefulWithLeader), and not at all while the ring is bullet-free.
// The verdict equals Stable at every configuration.
func (p *Protocol) StableSpec() population.RingSpec[State] {
	const (
		arcDistBad = 1 << iota
	)
	const (
		agentLeader = 1 << iota
		agentLiveBullet
	)
	return population.RingSpec[State]{
		ArcMask: func(l, r State) uint8 {
			if r.Leader {
				if r.Dist != 0 {
					return arcDistBad
				}
			} else if r.Dist != l.Dist+1 {
				return arcDistBad
			}
			return 0
		},
		AgentMask: func(s State) uint8 {
			var m uint8
			if s.Leader {
				m |= agentLeader
			}
			if s.War.Bullet == war.Live {
				m |= agentLiveBullet
			}
			return m
		},
		Gate: func(c *population.LocalCounts) bool {
			return c.Agent[0] == 1 && c.Arc[0] == 0
		},
		Residual: func(c *population.LocalCounts, cfg []State) (bool, population.Witness) {
			if c.Agent[1] == 0 {
				return true, population.Witness{} // no live bullets: C_PB holds trivially
			}
			// c.AgentPos[0] names the unique leader in O(1).
			k := c.AgentPos[0]
			if ok, off := war.PeacefulPrefix(cfg, k, func(s State) war.State { return s.War }); !ok {
				return false, population.IntervalWitness(len(cfg), k, off, k)
			}
			return true, population.Witness{}
		},
		Converged: func(c *population.LocalCounts, cfg []State) bool {
			if c.Agent[0] != 1 || c.Arc[0] != 0 {
				return false
			}
			if c.Agent[1] == 0 {
				return true // no live bullets: C_PB holds trivially
			}
			// c.AgentPos[0] names the unique leader in O(1).
			return war.PeacefulWithLeader(cfg, c.AgentPos[0], func(s State) war.State { return s.War })
		},
		ArcNames:   []string{"dist_violations"},
		AgentNames: []string{"leaders", "live_bullets"},
	}
}
