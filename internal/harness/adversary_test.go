package harness

import "testing"

func TestWorstCaseHuntsSlowTrials(t *testing.T) {
	res := WorstCase(syntheticSpec(), 16, 8)
	if res.Failures != 0 {
		t.Fatalf("%d failures", res.Failures)
	}
	if res.Steps.Count != 8 {
		t.Fatalf("sample size %d", res.Steps.Count)
	}
	if res.Slowest.Steps != uint64(res.Steps.Max) {
		t.Fatalf("slowest trial (%d) inconsistent with max (%v)", res.Slowest.Steps, res.Steps.Max)
	}
	if r := res.TailRatio(); r < 1 {
		t.Fatalf("tail ratio %v < 1", r)
	}
}

func TestWorstCaseFixesSize(t *testing.T) {
	spec := syntheticSpec()
	spec.FixSize = func(n int) int {
		if n%2 == 0 {
			return n + 1
		}
		return n
	}
	res := WorstCase(spec, 8, 2)
	if res.N != 9 {
		t.Fatalf("size not fixed: %d", res.N)
	}
}

func TestTailRatioEmpty(t *testing.T) {
	var w WorstCaseResult
	if w.TailRatio() != 0 {
		t.Fatal("empty result must have zero tail ratio")
	}
}
