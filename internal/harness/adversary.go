package harness

import (
	"repro/internal/stats"
)

// WorstCase hunts for slow instances: it runs `restarts` trials of the
// spec at ring size n with independent seeds and returns the convergence
// statistics together with the slowest observed trial. The paper's bounds
// are "with high probability", so the interesting quantity is how heavy
// the convergence-time tail is relative to the mean — a near-constant
// max/mean ratio across n supports the w.h.p. claim, a growing one would
// undermine it.
type WorstCaseResult struct {
	N        int
	Steps    stats.Summary
	Slowest  Result
	Failures int
}

// WorstCase runs the hunt.
func WorstCase(spec Spec, n, restarts int) WorstCaseResult {
	if spec.FixSize != nil {
		n = spec.FixSize(n)
	}
	out := WorstCaseResult{N: n}
	var xs []float64
	for trial := 0; trial < restarts; trial++ {
		seed := uint64(n)*7_777_777 + uint64(trial)
		res := spec.Run(n, seed, spec.MaxSteps(n))
		if !res.Converged {
			out.Failures++
			continue
		}
		xs = append(xs, float64(res.Steps))
		if res.Steps > out.Slowest.Steps {
			out.Slowest = res
		}
	}
	if len(xs) > 0 {
		out.Steps = stats.Summarize(xs)
	}
	return out
}

// TailRatio returns max/mean of the observed convergence times — the
// heavy-tail indicator used by E8's w.h.p. discussion.
func (w WorstCaseResult) TailRatio() float64 {
	if w.Steps.Count == 0 || w.Steps.Mean == 0 {
		return 0
	}
	return w.Steps.Max / w.Steps.Mean
}
