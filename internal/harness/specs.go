package harness

import (
	"repro/internal/angluin"
	"repro/internal/chenchen"
	"repro/internal/core"
	"repro/internal/fj"
	"repro/internal/population"
	"repro/internal/xrand"
	"repro/internal/yokota"
)

// InitClass selects the adversarial initial-configuration family for P_PL
// trials.
type InitClass int

const (
	// InitRandom samples every agent uniformly from the full state space.
	InitRandom InitClass = iota + 1
	// InitNoLeader is the hardest detection case: aligned distances, no
	// leader, all agents already in detection mode.
	InitNoLeader
	// InitAllLeaders starts with every agent an armed leader.
	InitAllLeaders
	// InitCorrupted perturbs a safe configuration at n/4 random agents.
	InitCorrupted
	// InitNoLeaderCold is InitNoLeader with all clocks at zero: the
	// population must first climb to detection mode via the lottery-game
	// clocks, so convergence is dominated by κ_max (the E10 ablation).
	InitNoLeaderCold
)

// PPLSpec returns the Table 1 row for the paper's protocol with the given
// ψ slack, κ_max multiplier c1 and initial-configuration class.
func PPLSpec(slack, c1 int, init InitClass) Spec {
	return Spec{
		Name:        "P_PL (this work)",
		Assumption:  "knowledge ψ = ⌈log n⌉+O(1)",
		PaperTime:   "O(n² log n)",
		PaperStates: "polylog(n)",
		States: func(n int) uint64 {
			return core.NewParamsSlack(n, slack, c1).StateCount()
		},
		MaxSteps: func(n int) uint64 {
			p := core.NewParamsSlack(n, slack, c1)
			return 800 * uint64(n) * uint64(n) * uint64(p.Psi)
		},
		Run: func(n int, seed uint64, maxSteps uint64) Result {
			p := core.NewParamsSlack(n, slack, c1)
			pr := core.New(p)
			eng := population.NewEngine(population.DirectedRing(n), pr.Step, xrand.New(seed))
			eng.SetStates(InitialConfig(p, init, seed))
			eng.TrackLeaders(core.IsLeader)
			steps, ok := eng.RunUntil(func(cfg []core.State) bool {
				return p.IsSafe(cfg)
			}, n/2+1, maxSteps)
			return Result{
				N: n, Seed: seed, Steps: steps,
				Stabilized: eng.LastLeaderChange(), Converged: ok,
			}
		},
	}
}

// InitialConfig builds the adversarial initial configuration of the given
// class for a P_PL trial with the given seed.
func InitialConfig(p core.Params, init InitClass, seed uint64) []core.State {
	rng := xrand.New(seed ^ 0xabcdef)
	switch init {
	case InitNoLeader:
		return p.NoLeaderAligned()
	case InitNoLeaderCold:
		cfg := p.NoLeaderAligned()
		for i := range cfg {
			cfg[i].Clock = 0
		}
		return cfg
	case InitAllLeaders:
		return p.AllLeaders()
	case InitCorrupted:
		return p.CorruptedPerfect(rng, p.N/4)
	default:
		return p.RandomConfig(rng)
	}
}

// YokotaSpec returns the Table 1 row for [28] with knowledge N = 2n.
func YokotaSpec() Spec {
	return Spec{
		Name:        "[28] Yokota et al.",
		Assumption:  "knowledge N = n+O(n)",
		PaperTime:   "Θ(n²)",
		PaperStates: "O(n)",
		States: func(n int) uint64 {
			return yokota.New(2 * n).StateCount()
		},
		MaxSteps: func(n int) uint64 {
			return 800 * uint64(n) * uint64(n)
		},
		Run: func(n int, seed uint64, maxSteps uint64) Result {
			p := yokota.New(2 * n)
			eng := population.NewEngine(population.DirectedRing(n), p.Step, xrand.New(seed))
			eng.SetStates(p.RandomConfig(xrand.New(seed^0xabcdef), n))
			eng.TrackLeaders(yokota.IsLeader)
			steps, ok := eng.RunUntil(p.Stable, n/2+1, maxSteps)
			return Result{
				N: n, Seed: seed, Steps: steps,
				Stabilized: eng.LastLeaderChange(), Converged: ok,
			}
		},
	}
}

// AngluinSpec returns the Table 1 row for the [5]-style baseline with
// k = 2; requested even sizes are bumped to the next odd size.
func AngluinSpec() Spec {
	return Spec{
		Name:        "[5] Angluin et al.",
		Assumption:  "n not multiple of k=2",
		PaperTime:   "Θ(n³)",
		PaperStates: "O(1)",
		States: func(n int) uint64 {
			return angluin.New(2).StateCount()
		},
		MaxSteps: func(n int) uint64 {
			return 400 * uint64(n) * uint64(n) * uint64(n)
		},
		FixSize: func(n int) int {
			if n%2 == 0 {
				return n + 1
			}
			return n
		},
		Run: func(n int, seed uint64, maxSteps uint64) Result {
			p := angluin.New(2)
			eng := population.NewEngine(population.DirectedRing(n), p.Step, xrand.New(seed))
			eng.SetStates(p.RandomConfig(xrand.New(seed^0xabcdef), n))
			eng.TrackLeaders(angluin.IsLeader)
			steps, ok := eng.RunUntil(p.Stable, n/2+1, maxSteps)
			return Result{
				N: n, Seed: seed, Steps: steps,
				Stabilized: eng.LastLeaderChange(), Converged: ok,
			}
		},
	}
}

// FJSpec returns the Table 1 row for the [15]-style oracle baseline.
func FJSpec() Spec {
	return Spec{
		Name:        "[15] Fischer–Jiang",
		Assumption:  "oracle Ω?",
		PaperTime:   "Θ(n³)",
		PaperStates: "O(1)",
		States: func(n int) uint64 {
			return fj.New().StateCount()
		},
		MaxSteps: func(n int) uint64 {
			return 400 * uint64(n) * uint64(n) * uint64(n)
		},
		Run: func(n int, seed uint64, maxSteps uint64) Result {
			ru := fj.NewRunner(n, xrand.New(seed))
			ru.SetStates(fj.New().RandomConfig(xrand.New(seed^0xabcdef), n))
			steps, ok := ru.Engine().RunUntil(fj.Stable, n/2+1, maxSteps)
			return Result{
				N: n, Seed: seed, Steps: steps,
				Stabilized: ru.Engine().LastLeaderChange(), Converged: ok,
			}
		},
	}
}

// ChenChenSpec returns the Table 1 row for the [11]-style baseline. The
// reconstruction serializes detection attempts with a flag-census oracle
// (see internal/chenchen), so its measured time class is not the
// original's super-exponential bound; run it at small n only.
func ChenChenSpec() Spec {
	return Spec{
		Name:        "[11] Chen–Chen",
		Assumption:  "none (reconstruction: census oracle)",
		PaperTime:   "exponential",
		PaperStates: "O(1)",
		States: func(n int) uint64 {
			return chenchen.New().StateCount()
		},
		MaxSteps: func(n int) uint64 {
			return 2000 * uint64(n) * uint64(n) * uint64(n)
		},
		Run: func(n int, seed uint64, maxSteps uint64) Result {
			ru := chenchen.NewRunner(n, xrand.New(seed))
			ru.SetStates(chenchen.New().RandomConfig(xrand.New(seed^0xabcdef), n))
			steps, ok := ru.Engine().RunUntil(chenchen.Stable, n/2+1, maxSteps)
			return Result{
				N: n, Seed: seed, Steps: steps,
				Stabilized: ru.Engine().LastLeaderChange(), Converged: ok,
			}
		},
	}
}

// AllTable1Specs returns the five rows of Table 1 in paper order.
func AllTable1Specs() []Spec {
	return []Spec{
		AngluinSpec(),
		FJSpec(),
		ChenChenSpec(),
		YokotaSpec(),
		PPLSpec(0, core.DefaultC1, InitRandom),
	}
}
