// Package harness is the internal experiment engine under the public
// repro.Experiment API: it sweeps ring sizes, runs protocol trials from
// adversarial initial configurations, aggregates convergence statistics,
// fits scaling exponents, and renders the markdown tables of the paper's
// Table 1. Protocol wiring lives in the root package's Protocol registry;
// this package only sees opaque trial functions.
package harness

import (
	"context"
	"fmt"
	"sort"
	"strconv"
	"strings"

	"repro/internal/runner"
	"repro/internal/stats"
)

// Result is the outcome of one trial.
type Result struct {
	N          int
	Seed       uint64
	Steps      uint64 // step at which the convergence predicate first held
	Stabilized uint64 // last step at which the leader set changed
	Converged  bool
}

// RunFunc executes one trial of a protocol on a ring of n agents with the
// given scheduler seed, giving up after maxSteps.
type RunFunc func(n int, seed uint64, maxSteps uint64) Result

// Spec is an opaque trial bundle — the minimal contract the sweep and
// worst-case machinery need. The root package's repro.Protocol registry is
// the public way to obtain one; tests may build synthetic specs directly.
type Spec struct {
	// Name identifies the protocol ("P_PL", "[28]", ...).
	Name string
	// MaxSteps returns the per-trial step budget at ring size n.
	MaxSteps func(n int) uint64
	// Run executes one trial.
	Run RunFunc
	// FixSize adjusts a requested ring size to one the protocol's
	// assumption admits (e.g. odd sizes for the mod-k baseline). Nil means
	// identity.
	FixSize func(n int) int
}

// Row is the protocol metadata of one rendered table row: the Table 1
// columns plus the exact state count at the table's reference size.
type Row struct {
	// Name identifies the protocol ("P_PL", "[28]", ...).
	Name string
	// Assumption is the knowledge column of Table 1.
	Assumption string
	// PaperTime and PaperStates quote the cited asymptotic bounds.
	PaperTime   string
	PaperStates string
	// States is the exact state count |Q| at the reference ring size.
	States uint64
}

// Cell aggregates the trials of one (protocol, size) pair.
type Cell struct {
	N          int
	Steps      stats.Summary
	Stabilized stats.Summary
	Failures   int
}

// TrialSeed is the deterministic scheduler seed of trial index trial at
// ring size n. Every execution path — serial or parallel, sweep or
// benchmark — derives seeds through this function, which is what makes
// parallel sweeps byte-identical to serial ones.
func TrialSeed(n, trial int) uint64 {
	return uint64(n)*1_000_003 + uint64(trial)
}

// Sweep runs trials per size for the spec and returns one cell per size.
// Seeds are derived deterministically from the trial index (TrialSeed), and
// trials execute in parallel across all cores through internal/runner; the
// cells are bit-for-bit identical to serial execution. A panicking trial
// re-panics here (with a *runner.PanicError carrying the original stack),
// matching the loud failure of a serial loop; use SweepContext to handle it
// as an error instead.
func Sweep(spec Spec, sizes []int, trials int) []Cell {
	cells, err := SweepContext(context.Background(), spec, sizes, trials, runner.Options{})
	if err != nil {
		panic(err)
	}
	return cells
}

// SweepContext is Sweep with cancellation and worker-pool control. Trials of
// each size are fanned out through runner.Map; per-trial Results are
// collected in trial order before aggregation, so the returned cells do not
// depend on scheduling. On cancellation it returns the cells completed so
// far along with ctx.Err().
func SweepContext(ctx context.Context, spec Spec, sizes []int, trials int, opts runner.Options) ([]Cell, error) {
	cells := make([]Cell, 0, len(sizes))
	for _, rawN := range sizes {
		n := rawN
		if spec.FixSize != nil {
			n = spec.FixSize(rawN)
		}
		results, err := RunTrials(ctx, spec, n, trials, opts)
		if err != nil {
			return cells, err
		}
		cells = append(cells, Aggregate(n, results))
	}
	return cells, nil
}

// RunTrials executes trials independent trials of spec at ring size n (which
// must already be FixSize-adjusted) through the worker pool and returns the
// per-trial Results indexed by trial number. Trial t uses seed
// TrialSeed(n, t).
func RunTrials(ctx context.Context, spec Spec, n, trials int, opts runner.Options) ([]Result, error) {
	maxSteps := spec.MaxSteps(n)
	return runner.Map(ctx, trials, func(trial int) Result {
		return spec.Run(n, TrialSeed(n, trial), maxSteps)
	}, opts)
}

// Aggregate folds per-trial results into the summary cell for one
// (protocol, size) pair, in the order given.
func Aggregate(n int, results []Result) Cell {
	var steps, stab []float64
	failures := 0
	for _, res := range results {
		if !res.Converged {
			failures++
			continue
		}
		steps = append(steps, float64(res.Steps))
		stab = append(stab, float64(res.Stabilized))
	}
	cell := Cell{N: n, Failures: failures}
	if len(steps) > 0 {
		cell.Steps = stats.Summarize(steps)
		cell.Stabilized = stats.Summarize(stab)
	}
	return cell
}

// Exponent fits mean convergence steps against n as a power law and
// returns the exponent. Cells without data are skipped; the boolean is
// false when fewer than two usable cells remain, distinguishing "no data"
// from a genuine zero fit.
func Exponent(cells []Cell) (float64, bool) {
	var x, y []float64
	for _, c := range cells {
		if c.Steps.Count == 0 {
			continue
		}
		x = append(x, float64(c.N))
		y = append(y, c.Steps.Mean)
	}
	if len(x) < 2 {
		return 0, false
	}
	return stats.PowerLawExponent(x, y), true
}

// NormalizedBy divides each cell's mean steps by f(n) — used to check
// flatness against a conjectured growth law (e.g. n² log n).
func NormalizedBy(cells []Cell, f func(n int) float64) []float64 {
	var out []float64
	for _, c := range cells {
		if c.Steps.Count == 0 {
			continue
		}
		out = append(out, c.Steps.Mean/f(c.N))
	}
	return out
}

// Table renders cells for several protocols side by side as a markdown
// table: one row per requested size, mean convergence steps per protocol.
func Table(names []string, allCells [][]Cell, sizes []int) string {
	var b strings.Builder
	b.WriteString("| n |")
	for _, name := range names {
		fmt.Fprintf(&b, " %s |", name)
	}
	b.WriteString("\n|---|")
	for range names {
		b.WriteString("---|")
	}
	b.WriteByte('\n')
	for row := range sizes {
		b.WriteString("| " + sizeLabel(allCells, row, sizes[row]) + " |")
		for col := range names {
			cells := allCells[col]
			if row >= len(cells) || cells[row].Steps.Count == 0 {
				b.WriteString(" — |")
				continue
			}
			fmt.Fprintf(&b, " %.3g |", cells[row].Steps.Mean)
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// sizeLabel renders the n column of one table row from the actual trial
// sizes of the row's populated cells, not the requested size: FixSize may
// adjust a request (orient bumps n=2 to 3, the mod-k baseline bumps even
// sizes), and labeling those rows with the requested size attributes the
// measurements to a ring that was never run. Cells without data fall back
// to the requested size; distinct actual sizes in one row (protocols
// adjusting differently) are slash-joined so none is misattributed.
func sizeLabel(allCells [][]Cell, row, requested int) string {
	var distinct []int
	for _, cells := range allCells {
		if row >= len(cells) || cells[row].Steps.Count == 0 {
			continue
		}
		n := cells[row].N
		seen := false
		for _, d := range distinct {
			if d == n {
				seen = true
				break
			}
		}
		if !seen {
			distinct = append(distinct, n)
		}
	}
	if len(distinct) == 0 {
		return strconv.Itoa(requested)
	}
	sort.Ints(distinct)
	parts := make([]string, len(distinct))
	for i, n := range distinct {
		parts[i] = strconv.Itoa(n)
	}
	return strings.Join(parts, "/")
}

// SummaryTable renders the Table 1 reproduction: assumption, paper-cited
// bounds, measured exponent and state counts. The |Q| header is escaped as
// \|Q\| so markdown renderers do not read its pipes as column separators.
func SummaryTable(rows []Row, allCells [][]Cell, statesAt int) string {
	var b strings.Builder
	b.WriteString("| protocol | assumption | paper time | measured exponent | paper states | \\|Q\\|(n=" +
		fmt.Sprint(statesAt) + ") |\n")
	b.WriteString("|---|---|---|---|---|---|\n")
	for i, r := range rows {
		expStr := "—"
		if exp, ok := Exponent(allCells[i]); ok {
			expStr = fmt.Sprintf("n^%.2f", exp)
		}
		fmt.Fprintf(&b, "| %s | %s | %s | %s | %s | %d |\n",
			r.Name, r.Assumption, r.PaperTime, expStr, r.PaperStates, r.States)
	}
	return b.String()
}
