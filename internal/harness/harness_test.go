package harness

import (
	"context"
	"math"
	"strings"
	"testing"

	"repro/internal/runner"
	"repro/internal/stats"
)

// syntheticSpec is a deterministic stand-in protocol: a trial "converges"
// after n² + seed mod n steps, unless the budget is exhausted first. It
// exercises every code path of the sweep machinery without simulating
// anything; the real protocol bundles live in the root package registry.
func syntheticSpec() Spec {
	return Spec{
		Name:     "synthetic",
		MaxSteps: func(n int) uint64 { return 4 * uint64(n) * uint64(n) },
		Run: func(n int, seed uint64, maxSteps uint64) Result {
			steps := uint64(n)*uint64(n) + seed%uint64(n)
			if steps > maxSteps {
				return Result{N: n, Seed: seed}
			}
			return Result{N: n, Seed: seed, Steps: steps, Stabilized: steps / 2, Converged: true}
		},
	}
}

func TestSweepSyntheticConverges(t *testing.T) {
	cells := Sweep(syntheticSpec(), []int{8, 16}, 3)
	if len(cells) != 2 {
		t.Fatalf("got %d cells", len(cells))
	}
	for _, c := range cells {
		if c.Failures != 0 {
			t.Fatalf("n=%d: %d failures", c.N, c.Failures)
		}
		if c.Steps.Count != 3 {
			t.Fatalf("n=%d: %d samples", c.N, c.Steps.Count)
		}
		if c.Stabilized.Mean > c.Steps.Mean {
			t.Fatalf("n=%d: stabilization after convergence (%v > %v)", c.N, c.Stabilized.Mean, c.Steps.Mean)
		}
	}
	if cells[1].Steps.Mean <= cells[0].Steps.Mean {
		t.Fatalf("steps not increasing with n: %v vs %v", cells[0].Steps.Mean, cells[1].Steps.Mean)
	}
}

// TestParallelTrialsMatchSerial is the acceptance check of the parallel
// execution engine: trials fanned out across a worker pool must yield the
// exact per-seed Result values of a plain serial loop.
func TestParallelTrialsMatchSerial(t *testing.T) {
	spec := syntheticSpec()
	const n, trials = 16, 8
	want := make([]Result, trials)
	for trial := 0; trial < trials; trial++ {
		want[trial] = spec.Run(n, TrialSeed(n, trial), spec.MaxSteps(n))
	}
	got, err := RunTrials(context.Background(), spec, n, trials,
		runner.Options{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	for trial := range want {
		if got[trial] != want[trial] {
			t.Fatalf("trial %d: parallel %+v != serial %+v", trial, got[trial], want[trial])
		}
	}
}

// TestSweepContextMatchesSerialAggregation pins the whole parallel sweep
// path (runner fan-out + Aggregate) against a hand-rolled serial sweep.
func TestSweepContextMatchesSerialAggregation(t *testing.T) {
	spec := syntheticSpec()
	sizes := []int{8, 16}
	const trials = 4
	var want []Cell
	for _, n := range sizes {
		results := make([]Result, trials)
		for trial := range results {
			results[trial] = spec.Run(n, TrialSeed(n, trial), spec.MaxSteps(n))
		}
		want = append(want, Aggregate(n, results))
	}
	got, err := SweepContext(context.Background(), spec, sizes, trials,
		runner.Options{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("got %d cells, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("cell %d: parallel %+v != serial %+v", i, got[i], want[i])
		}
	}
}

func TestSweepContextCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	cells, err := SweepContext(ctx, syntheticSpec(), []int{8, 16}, 4, runner.Options{})
	if err == nil {
		t.Fatal("cancelled sweep reported no error")
	}
	if len(cells) != 0 {
		t.Fatalf("cancelled-before-start sweep returned %d cells", len(cells))
	}
}

func TestSweepDeterministicSeeds(t *testing.T) {
	spec := syntheticSpec()
	a := Sweep(spec, []int{8}, 2)
	b := Sweep(spec, []int{8}, 2)
	if a[0].Steps.Mean != b[0].Steps.Mean {
		t.Fatal("sweeps with identical seeds disagree")
	}
}

func TestSweepFixSize(t *testing.T) {
	spec := syntheticSpec()
	spec.FixSize = func(n int) int {
		if n%2 == 0 {
			return n + 1
		}
		return n
	}
	cells := Sweep(spec, []int{8}, 2)
	if cells[0].N != 9 {
		t.Fatalf("even size not fixed: n=%d", cells[0].N)
	}
	if cells[0].Failures != 0 {
		t.Fatalf("%d failures", cells[0].Failures)
	}
}

func TestAggregateCountsFailures(t *testing.T) {
	results := []Result{
		{N: 8, Steps: 100, Stabilized: 50, Converged: true},
		{N: 8},
		{N: 8, Steps: 300, Stabilized: 150, Converged: true},
	}
	cell := Aggregate(8, results)
	if cell.Failures != 1 {
		t.Fatalf("failures = %d, want 1", cell.Failures)
	}
	if cell.Steps.Count != 2 || cell.Steps.Mean != 200 {
		t.Fatalf("steps summary %+v", cell.Steps)
	}
}

func TestExponentOnSyntheticCells(t *testing.T) {
	var cells []Cell
	for _, n := range []int{16, 32, 64, 128} {
		cells = append(cells, Cell{N: n, Steps: summaryOf(float64(n) * float64(n))})
	}
	got, ok := Exponent(cells)
	if !ok {
		t.Fatal("fit reported no data")
	}
	if math.Abs(got-2) > 1e-9 {
		t.Fatalf("exponent = %v, want 2", got)
	}
}

// TestExponentNoData pins the "no data" contract: fewer than two usable
// cells yield ok=false, not an ambiguous zero.
func TestExponentNoData(t *testing.T) {
	if _, ok := Exponent(nil); ok {
		t.Fatal("empty cells must report no fit")
	}
	if _, ok := Exponent([]Cell{{N: 8, Steps: summaryOf(100)}}); ok {
		t.Fatal("a single cell must report no fit")
	}
	// A genuine flat fit is a real zero, distinguished from "no data".
	flat := []Cell{
		{N: 8, Steps: summaryOf(100)},
		{N: 16, Steps: summaryOf(100)},
	}
	got, ok := Exponent(flat)
	if !ok || math.Abs(got) > 1e-9 {
		t.Fatalf("flat fit = (%v, %v), want (0, true)", got, ok)
	}
}

func summaryOf(v float64) stats.Summary {
	return stats.Summary{Count: 1, Mean: v}
}

func TestNormalizedBy(t *testing.T) {
	cells := []Cell{
		{N: 10, Steps: summaryOf(200)},
		{N: 20, Steps: summaryOf(800)},
	}
	norm := NormalizedBy(cells, func(n int) float64 { return float64(n) * float64(n) })
	if len(norm) != 2 || math.Abs(norm[0]-2) > 1e-9 || math.Abs(norm[1]-2) > 1e-9 {
		t.Fatalf("normalized = %v", norm)
	}
}

func TestTableRendering(t *testing.T) {
	cellsA := []Cell{{N: 8, Steps: summaryOf(100)}}
	cellsB := []Cell{{N: 8}}
	out := Table([]string{"A", "B"}, [][]Cell{cellsA, cellsB}, []int{8})
	if !strings.Contains(out, "| A |") || !strings.Contains(out, "100") || !strings.Contains(out, "—") {
		t.Fatalf("table rendering:\n%s", out)
	}
}

// TestTableActualSizes is the golden test of the n-column fix: a
// size-adjusting protocol (orient bumps n=2→3, the mod-k baseline bumps
// even sizes) must be labeled with the size its trials actually ran at,
// not the requested one; rows where protocols adjusted differently list
// every actual size, and rows with no data fall back to the request.
func TestTableActualSizes(t *testing.T) {
	adjusting := []Cell{{N: 9, Steps: summaryOf(100)}, {N: 17, Steps: summaryOf(200)}, {}}
	identity := []Cell{{N: 8, Steps: summaryOf(50)}, {N: 16, Steps: summaryOf(150)}, {}}
	got := Table([]string{"[5]", "P_PL"}, [][]Cell{adjusting, identity}, []int{8, 16, 32})
	want := "" +
		"| n | [5] | P_PL |\n" +
		"|---|---|---|\n" +
		"| 8/9 | 100 | 50 |\n" +
		"| 16/17 | 200 | 150 |\n" +
		"| 32 | — | — |\n"
	if got != want {
		t.Fatalf("table drifted from golden:\n--- got ---\n%s--- want ---\n%s", got, want)
	}

	// A single size-adjusting protocol: the row label is the actual size.
	got = Table([]string{"[5]"}, [][]Cell{{{N: 9, Steps: summaryOf(100)}}}, []int{8})
	if !strings.Contains(got, "| 9 | 100 |") || strings.Contains(got, "| 8 |") {
		t.Fatalf("requested size leaked into a size-adjusted row:\n%s", got)
	}
}

func TestSummaryTableRendering(t *testing.T) {
	rows := []Row{{
		Name:        "[28] Yokota et al.",
		Assumption:  "knowledge N = n+O(n)",
		PaperTime:   "Θ(n²)",
		PaperStates: "O(n)",
		States:      792,
	}}
	cells := [][]Cell{{
		{N: 8, Steps: summaryOf(100)},
		{N: 16, Steps: summaryOf(420)},
	}}
	out := SummaryTable(rows, cells, 16)
	if !strings.Contains(out, "[28]") || !strings.Contains(out, "Θ(n²)") {
		t.Fatalf("summary table:\n%s", out)
	}
	if !strings.Contains(out, "n^2.07") {
		t.Fatalf("expected fitted exponent in:\n%s", out)
	}
	// The |Q| header must be escaped so markdown renderers keep the column
	// layout intact.
	if !strings.Contains(out, `\|Q\|(n=16)`) {
		t.Fatalf("unescaped |Q| header in:\n%s", out)
	}
	if strings.Contains(out, " |Q|(") {
		t.Fatalf("raw |Q| survived in:\n%s", out)
	}
	// A row with no fit renders the em-dash placeholder.
	out = SummaryTable(rows, [][]Cell{{{N: 8, Steps: summaryOf(100)}}}, 8)
	if !strings.Contains(out, "| — |") {
		t.Fatalf("missing no-fit placeholder in:\n%s", out)
	}
}
