package harness

import (
	"context"
	"math"
	"strings"
	"testing"

	"repro/internal/runner"
	"repro/internal/stats"
)

func TestSweepPPLConverges(t *testing.T) {
	spec := PPLSpec(0, 8, InitRandom)
	cells := Sweep(spec, []int{8, 16}, 3)
	if len(cells) != 2 {
		t.Fatalf("got %d cells", len(cells))
	}
	for _, c := range cells {
		if c.Failures != 0 {
			t.Fatalf("n=%d: %d failures", c.N, c.Failures)
		}
		if c.Steps.Count != 3 {
			t.Fatalf("n=%d: %d samples", c.N, c.Steps.Count)
		}
		if c.Stabilized.Mean > c.Steps.Mean {
			t.Fatalf("n=%d: stabilization after safety (%v > %v)", c.N, c.Stabilized.Mean, c.Steps.Mean)
		}
	}
	if cells[1].Steps.Mean <= cells[0].Steps.Mean {
		t.Fatalf("steps not increasing with n: %v vs %v", cells[0].Steps.Mean, cells[1].Steps.Mean)
	}
}

// TestParallelTrialsMatchSerial is the acceptance check of the parallel
// execution engine: trials fanned out across a worker pool must yield the
// exact per-seed Result values of a plain serial loop.
func TestParallelTrialsMatchSerial(t *testing.T) {
	for _, spec := range []Spec{PPLSpec(0, 8, InitRandom), YokotaSpec()} {
		t.Run(spec.Name, func(t *testing.T) {
			const n, trials = 16, 8
			want := make([]Result, trials)
			for trial := 0; trial < trials; trial++ {
				want[trial] = spec.Run(n, TrialSeed(n, trial), spec.MaxSteps(n))
			}
			got, err := RunTrials(context.Background(), spec, n, trials,
				runner.Options{Workers: 4})
			if err != nil {
				t.Fatal(err)
			}
			for trial := range want {
				if got[trial] != want[trial] {
					t.Fatalf("trial %d: parallel %+v != serial %+v", trial, got[trial], want[trial])
				}
			}
		})
	}
}

// TestSweepContextMatchesSerialAggregation pins the whole parallel sweep
// path (runner fan-out + Aggregate) against a hand-rolled serial sweep.
func TestSweepContextMatchesSerialAggregation(t *testing.T) {
	spec := PPLSpec(0, 8, InitRandom)
	sizes := []int{8, 16}
	const trials = 4
	var want []Cell
	for _, n := range sizes {
		results := make([]Result, trials)
		for trial := range results {
			results[trial] = spec.Run(n, TrialSeed(n, trial), spec.MaxSteps(n))
		}
		want = append(want, Aggregate(n, results))
	}
	got, err := SweepContext(context.Background(), spec, sizes, trials,
		runner.Options{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("got %d cells, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("cell %d: parallel %+v != serial %+v", i, got[i], want[i])
		}
	}
}

func TestSweepContextCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	cells, err := SweepContext(ctx, YokotaSpec(), []int{8, 16}, 4, runner.Options{})
	if err == nil {
		t.Fatal("cancelled sweep reported no error")
	}
	if len(cells) != 0 {
		t.Fatalf("cancelled-before-start sweep returned %d cells", len(cells))
	}
}

func TestSweepDeterministicSeeds(t *testing.T) {
	spec := YokotaSpec()
	a := Sweep(spec, []int{8}, 2)
	b := Sweep(spec, []int{8}, 2)
	if a[0].Steps.Mean != b[0].Steps.Mean {
		t.Fatal("sweeps with identical seeds disagree")
	}
}

func TestAngluinFixSize(t *testing.T) {
	spec := AngluinSpec()
	cells := Sweep(spec, []int{8}, 2)
	if cells[0].N != 9 {
		t.Fatalf("even size not fixed: n=%d", cells[0].N)
	}
	if cells[0].Failures != 0 {
		t.Fatalf("%d failures", cells[0].Failures)
	}
}

func TestAllSpecsRunOneTinyTrial(t *testing.T) {
	for _, spec := range AllTable1Specs() {
		t.Run(spec.Name, func(t *testing.T) {
			n := 8
			if spec.FixSize != nil {
				n = spec.FixSize(n)
			}
			res := spec.Run(n, 1, spec.MaxSteps(n))
			if !res.Converged {
				t.Fatalf("%s did not converge at n=%d within %d steps", spec.Name, n, spec.MaxSteps(n))
			}
			if res.Steps == 0 && spec.Name != "[11] Chen–Chen" {
				t.Logf("%s converged at step 0 (random start already stable)", spec.Name)
			}
			if spec.States(n) == 0 {
				t.Fatal("zero state count")
			}
		})
	}
}

func TestExponentOnSyntheticCells(t *testing.T) {
	var cells []Cell
	for _, n := range []int{16, 32, 64, 128} {
		cells = append(cells, Cell{N: n, Steps: summaryOf(float64(n) * float64(n))})
	}
	if got := Exponent(cells); math.Abs(got-2) > 1e-9 {
		t.Fatalf("exponent = %v, want 2", got)
	}
}

func summaryOf(v float64) stats.Summary {
	return stats.Summary{Count: 1, Mean: v}
}

func TestNormalizedBy(t *testing.T) {
	cells := []Cell{
		{N: 10, Steps: summaryOf(200)},
		{N: 20, Steps: summaryOf(800)},
	}
	norm := NormalizedBy(cells, func(n int) float64 { return float64(n) * float64(n) })
	if len(norm) != 2 || math.Abs(norm[0]-2) > 1e-9 || math.Abs(norm[1]-2) > 1e-9 {
		t.Fatalf("normalized = %v", norm)
	}
}

func TestTableRendering(t *testing.T) {
	specs := []Spec{{Name: "A"}, {Name: "B"}}
	cellsA := []Cell{{N: 8, Steps: summaryOf(100)}}
	cellsB := []Cell{{N: 8}}
	out := Table(specs, [][]Cell{cellsA, cellsB}, []int{8})
	if !strings.Contains(out, "| A |") || !strings.Contains(out, "100") || !strings.Contains(out, "—") {
		t.Fatalf("table rendering:\n%s", out)
	}
}

func TestSummaryTableRendering(t *testing.T) {
	specs := []Spec{YokotaSpec()}
	cells := [][]Cell{{
		{N: 8, Steps: summaryOf(100)},
		{N: 16, Steps: summaryOf(420)},
	}}
	out := SummaryTable(specs, cells, 16)
	if !strings.Contains(out, "[28]") || !strings.Contains(out, "Θ(n²)") {
		t.Fatalf("summary table:\n%s", out)
	}
	if !strings.Contains(out, "n^2.07") {
		t.Fatalf("expected fitted exponent in:\n%s", out)
	}
}
