package angluin

import (
	"fmt"
	"testing"

	"repro/internal/population"
	"repro/internal/population/tracktest"
	"repro/internal/xrand"
)

// TestStableSpecExact pins the incremental tracker to the brute-force
// Stable scan: per-step agreement and identical hitting times, on rings up
// to the n=64 acceptance size (bumped to 65: k=2 needs odd sizes).
func TestStableSpecExact(t *testing.T) {
	for _, n := range []int{5, 17, 33, 65} {
		for seed := uint64(1); seed <= 2; seed++ {
			if n == 65 && seed > 1 {
				continue // Θ(n³)-class: one seed at the top size
			}
			n, seed := n, seed
			t.Run(fmt.Sprintf("n=%d/seed=%d", n, seed), func(t *testing.T) {
				p := New(2)
				mk := func() *population.Engine[State] {
					eng := population.NewEngine(population.DirectedRing(n), p.Step, xrand.New(seed))
					eng.SetStates(p.RandomConfig(xrand.New(seed^0x5eed), n))
					return eng
				}
				tracktest.Exact(t, mk, p.StableSpec(), p.Stable, 400*uint64(n)*uint64(n)*uint64(n))
			})
		}
	}
}
