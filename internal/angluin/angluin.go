// Package angluin implements an SS-LE ring protocol in the style of
// Angluin, Aspnes, Fischer, Jiang (2008) — reference [5] of the paper and
// the first row of its Table 1: rings whose size n is not a multiple of a
// known k, O(1) states, Θ(n³)-class expected convergence, no oracle.
//
// Mechanism (reconstruction): every agent holds a label
// c ∈ Z_k. Around the ring, the total defect weight
// Σ_i (c(u_{i+1}) − c(u_i) − 1) ≡ −n (mod k) is an identity, and −n ≢ 0
// because k ∤ n — so at least one arc is always "defective"
// (c(r) ≠ c(l)+1). A defective arc marks its responder as a leader. Killed
// leaders repair their incoming arc, which makes defects drift clockwise
// and merge (annihilating when their weights cancel), until a single defect
// pins a single immortal leader. Elimination reuses the Algorithm 5 war;
// the original's constant-state elimination differs, which can only make
// this baseline faster, so Table 1's ordering is conserved.
package angluin

import (
	"fmt"

	"repro/internal/population"
	"repro/internal/war"
	"repro/internal/xrand"
)

// State is the per-agent state: a mod-k label, the leader bit, the
// pending-repair flag of a killed leader, and the war variables. O(1)
// states for constant k.
type State struct {
	C      uint8
	Leader bool
	Repair bool
	War    war.State
}

// Protocol is the defect-based protocol with modulus k. It is correct on
// every directed ring whose size is not a multiple of k.
type Protocol struct {
	K int
}

// New returns the protocol for modulus k ≥ 2.
func New(k int) *Protocol {
	if k < 2 || k > 250 {
		panic(fmt.Sprintf("angluin: modulus %d out of range", k))
	}
	return &Protocol{K: k}
}

// Step is the transition function.
func (p *Protocol) Step(l, r State) (State, State) {
	next := uint8((int(l.C) + 1) % p.K)
	// A killed leader repairs its incoming arc before the defect check, so
	// it is not immediately re-marked; its defect weight moves one arc
	// clockwise (or cancels against the weight already there).
	if r.Repair {
		r.C = next
		r.Repair = false
	}
	if r.C != next && !r.Leader {
		// The head of a defective arc is a leader. Because the total defect
		// weight around the ring is ≢ 0 mod k, some head always exists.
		r.Leader = true
		r.War = war.Arm()
	}
	wasLeader := r.Leader
	war.Step(&l.Leader, &r.Leader, &l.War, &r.War)
	if wasLeader && !r.Leader {
		r.Repair = true
	}
	return l, r
}

// IsLeader is the output function.
func IsLeader(s State) bool { return s.Leader }

// Codec is the fixed-width state codec for the interned engine's packed
// interner: the mod-k label in the low byte, then the leader and repair
// bits, then the four war bits — 14 bits.
func Codec() population.PackedCodec[State] {
	return population.PackedCodec[State]{
		Bits: 8 + 2 + war.PackBits,
		Enc: func(s State) uint64 {
			v := uint64(s.C) | war.Pack(s.War)<<10
			if s.Leader {
				v |= 1 << 8
			}
			if s.Repair {
				v |= 1 << 9
			}
			return v
		},
		Dec: func(v uint64) State {
			return State{
				C:      uint8(v),
				Leader: v&(1<<8) != 0,
				Repair: v&(1<<9) != 0,
				War:    war.Unpack(v >> 10),
			}
		},
	}
}

// StateCount returns |Q| = k·2·2·12 — constant in n.
func (p *Protocol) StateCount() uint64 {
	return uint64(p.K) * 2 * 2 * 3 * 2 * 2
}

// RandomState samples uniformly from the state space.
func (p *Protocol) RandomState(rng *xrand.RNG) State {
	return State{
		C:      uint8(rng.Intn(p.K)),
		Leader: rng.Bool(),
		Repair: rng.Bool(),
		War: war.State{
			Bullet: war.Bullet(rng.Intn(3)),
			Shield: rng.Bool(),
			Signal: rng.Bool(),
		},
	}
}

// RandomConfig samples a full adversarial configuration.
func (p *Protocol) RandomConfig(rng *xrand.RNG, n int) []State {
	if n%p.K == 0 {
		panic(fmt.Sprintf("angluin: ring size %d is a multiple of k=%d", n, p.K))
	}
	cfg := make([]State, n)
	for i := range cfg {
		cfg[i] = p.RandomState(rng)
	}
	return cfg
}

// DefectArcs returns the indices i of defective arcs (u_i, u_{i+1}):
// c(u_{i+1}) ≠ c(u_i)+1 mod k.
func (p *Protocol) DefectArcs(cfg []State) []int {
	n := len(cfg)
	var out []int
	for i := 0; i < n; i++ {
		if int(cfg[(i+1)%n].C) != (int(cfg[i].C)+1)%p.K {
			out = append(out, i)
		}
	}
	return out
}

// TotalDefectWeight returns Σ (c(r) − c(l) − 1) mod k over all arcs, which
// is identically (−n) mod k for any labelling — the invariant that makes a
// leaderless stable state impossible.
func (p *Protocol) TotalDefectWeight(cfg []State) int {
	n := len(cfg)
	w := 0
	for i := 0; i < n; i++ {
		w += int(cfg[(i+1)%n].C) - int(cfg[i].C) - 1
	}
	w %= p.K
	if w < 0 {
		w += p.K
	}
	return w
}

// Stable reports whether the configuration is absorbing: exactly one
// defective arc, whose head is the unique leader, no pending repairs, and
// every live bullet peaceful. From here the leader set never changes.
func (p *Protocol) Stable(cfg []State) bool {
	n := len(cfg)
	k := -1
	for i, s := range cfg {
		if s.Repair {
			return false
		}
		if s.Leader {
			if k >= 0 {
				return false
			}
			k = i
		}
	}
	if k < 0 {
		return false
	}
	defects := p.DefectArcs(cfg)
	if len(defects) != 1 || (defects[0]+1)%n != k {
		return false
	}
	leaders := make([]bool, n)
	states := make([]war.State, n)
	for i, s := range cfg {
		leaders[i] = s.Leader
		states[i] = s.War
	}
	return war.AllLiveBulletsPeaceful(leaders, states)
}

// StableSpec is the delta-decomposed form of Stable for incremental
// convergence tracking (population.RingTracker). Defectiveness is a pure
// arc property — c(r) ≠ c(l)+1 mod k — so "exactly one defective arc whose
// head is the unique leader" splits into two O(1) arc counters: defects
// with a leader head (must be exactly one) and defects with a follower
// head (must be zero). Repairs, leaders and live bullets are agent
// counters; the non-local C_PB residual (war.PeacefulWithLeader) runs only
// once every counter already passes, and never while the ring is
// bullet-free. The verdict equals Stable at every configuration.
func (p *Protocol) StableSpec() population.RingSpec[State] {
	const (
		arcDefectLeaderHead = 1 << iota
		arcDefectOtherHead
	)
	const (
		agentLeader = 1 << iota
		agentRepair
		agentLiveBullet
	)
	k := p.K
	return population.RingSpec[State]{
		ArcMask: func(l, r State) uint8 {
			if int(r.C) == (int(l.C)+1)%k {
				return 0
			}
			if r.Leader {
				return arcDefectLeaderHead
			}
			return arcDefectOtherHead
		},
		AgentMask: func(s State) uint8 {
			var m uint8
			if s.Leader {
				m |= agentLeader
			}
			if s.Repair {
				m |= agentRepair
			}
			if s.War.Bullet == war.Live {
				m |= agentLiveBullet
			}
			return m
		},
		Gate: func(c *population.LocalCounts) bool {
			return c.Agent[0] == 1 && c.Agent[1] == 0 && c.Arc[0] == 1 && c.Arc[1] == 0
		},
		Residual: func(c *population.LocalCounts, cfg []State) (bool, population.Witness) {
			if c.Agent[2] == 0 {
				return true, population.Witness{} // no live bullets: C_PB holds trivially
			}
			// c.AgentPos[0] names the unique leader in O(1). A failing
			// peacefulness walk can only start passing — or its offending
			// bullet disappear — through a touch of offsets 0..off or of the
			// leader itself.
			k := c.AgentPos[0]
			if ok, off := war.PeacefulPrefix(cfg, k, func(s State) war.State { return s.War }); !ok {
				return false, population.IntervalWitness(len(cfg), k, off, k)
			}
			return true, population.Witness{}
		},
		Converged: func(c *population.LocalCounts, cfg []State) bool {
			if c.Agent[0] != 1 || c.Agent[1] != 0 || c.Arc[0] != 1 || c.Arc[1] != 0 {
				return false
			}
			if c.Agent[2] == 0 {
				return true // no live bullets: C_PB holds trivially
			}
			// c.AgentPos[0] names the unique leader in O(1).
			return war.PeacefulWithLeader(cfg, c.AgentPos[0], func(s State) war.State { return s.War })
		},
		ArcNames:   []string{"leader_defects", "stray_defects"},
		AgentNames: []string{"leaders", "repairs", "live_bullets"},
	}
}
