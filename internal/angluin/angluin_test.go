package angluin

import (
	"testing"
	"testing/quick"

	"repro/internal/population"
	"repro/internal/war"
	"repro/internal/xrand"
)

func TestTotalDefectWeightIsIdentity(t *testing.T) {
	// For ANY labelling of a ring of n agents, the total defect weight is
	// (−n) mod k — the structural invariant behind Lemma-3.2-style
	// undetectability arguments.
	p := New(3)
	if err := quick.Check(func(seed uint64, nRaw uint8) bool {
		n := int(nRaw)%13 + 4
		rng := xrand.New(seed)
		cfg := make([]State, n)
		for i := range cfg {
			cfg[i] = State{C: uint8(rng.Intn(p.K))}
		}
		want := ((-n)%p.K + p.K) % p.K
		return p.TotalDefectWeight(cfg) == want
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestDefectAlwaysExistsWhenKDoesNotDivideN(t *testing.T) {
	p := New(2)
	rng := xrand.New(4)
	for trial := 0; trial < 200; trial++ {
		n := 5 + 2*rng.Intn(6) // odd sizes
		cfg := make([]State, n)
		for i := range cfg {
			cfg[i] = State{C: uint8(rng.Intn(2))}
		}
		if len(p.DefectArcs(cfg)) == 0 {
			t.Fatalf("n=%d: labelling with no defects found", n)
		}
	}
}

func TestDefectiveArcMarksLeader(t *testing.T) {
	p := New(3)
	l := State{C: 0}
	r := State{C: 2} // defective: want 1
	_, r2 := p.Step(l, r)
	if !r2.Leader {
		t.Fatal("defective arc head not marked as leader")
	}
	if r2.C != 2 {
		t.Fatal("marking must not repair the defect")
	}
}

func TestConsistentArcIsQuiet(t *testing.T) {
	p := New(3)
	l := State{C: 0}
	r := State{C: 1}
	_, r2 := p.Step(l, r)
	if r2.Leader {
		t.Fatal("consistent arc created a leader")
	}
}

func TestRepairMovesDefect(t *testing.T) {
	p := New(3)
	l := State{C: 0}
	r := State{C: 2, Repair: true}
	_, r2 := p.Step(l, r)
	if r2.C != 1 || r2.Repair {
		t.Fatalf("repair did not fix label: %+v", r2)
	}
	if r2.Leader {
		t.Fatal("repaired agent must not be re-marked in the same interaction")
	}
}

func TestKilledLeaderSchedulesRepair(t *testing.T) {
	p := New(3)
	l := State{C: 0, War: war.State{Bullet: war.Live}}
	r := State{C: 1, Leader: true} // unshielded leader, consistent arc
	_, r2 := p.Step(l, r)
	if r2.Leader {
		t.Fatal("live bullet did not kill the leader")
	}
	if !r2.Repair {
		t.Fatal("killed leader did not schedule a repair")
	}
}

func TestSurvivingLeaderDoesNotRepair(t *testing.T) {
	p := New(3)
	l := State{C: 0, War: war.State{Bullet: war.Live}}
	r := State{C: 1, Leader: true, War: war.State{Shield: true}}
	_, r2 := p.Step(l, r)
	if !r2.Leader || r2.Repair {
		t.Fatalf("shielded leader mishandled: %+v", r2)
	}
}

func TestConvergence(t *testing.T) {
	tests := []struct {
		name string
		n, k int
	}{
		{"odd ring k=2", 9, 2},
		{"k=3", 8, 3},
		{"larger odd ring", 13, 2},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			p := New(tt.k)
			for seed := uint64(0); seed < 3; seed++ {
				rng := xrand.New(seed + 50)
				eng := population.NewEngine(population.DirectedRing(tt.n), p.Step, xrand.New(seed))
				eng.SetStates(p.RandomConfig(rng, tt.n))
				eng.TrackLeaders(IsLeader)
				maxSteps := 4000 * uint64(tt.n) * uint64(tt.n) * uint64(tt.n)
				_, ok := eng.RunUntil(p.Stable, tt.n, maxSteps)
				if !ok {
					t.Fatalf("n=%d k=%d seed=%d: not stable in %d steps (%d leaders, %d defects)",
						tt.n, tt.k, seed, maxSteps, eng.LeaderCount(), len(p.DefectArcs(eng.Config())))
				}
			}
		})
	}
}

func TestStabilityIsAbsorbing(t *testing.T) {
	n, k := 9, 2
	p := New(k)
	eng := population.NewEngine(population.DirectedRing(n), p.Step, xrand.New(77))
	rng := xrand.New(78)
	eng.SetStates(p.RandomConfig(rng, n))
	eng.TrackLeaders(IsLeader)
	if _, ok := eng.RunUntil(p.Stable, n, 4000*uint64(n*n*n)); !ok {
		t.Fatal("did not stabilize")
	}
	changes := eng.LeaderChanges()
	eng.Run(400000)
	if eng.LeaderChanges() != changes {
		t.Fatal("leader set changed after stabilization")
	}
	if !p.Stable(eng.Config()) {
		t.Fatal("left the stable set")
	}
}

func TestLeaderNeverVanishesForever(t *testing.T) {
	// The defect invariant guarantees a leader (or an imminent one) always
	// exists: after an initial transient the ring must never go leaderless
	// for a full pass. Weak check: from a no-leader start, a leader appears
	// quickly.
	n, k := 9, 2
	p := New(k)
	eng := population.NewEngine(population.DirectedRing(n), p.Step, xrand.New(5))
	cfg := make([]State, n)
	for i := range cfg {
		cfg[i] = State{C: uint8(i % k)}
	}
	eng.SetStates(cfg)
	eng.TrackLeaders(IsLeader)
	_, ok := eng.RunUntil(func(c []State) bool {
		for _, s := range c {
			if s.Leader {
				return true
			}
		}
		return false
	}, 1, 100000)
	if !ok {
		t.Fatal("no leader ever created from leaderless start")
	}
}

func TestStableRejectsBadShapes(t *testing.T) {
	p := New(2)
	// Two leaders.
	cfg := []State{{Leader: true, C: 0}, {Leader: true, C: 0}, {C: 1}}
	if p.Stable(cfg) {
		t.Fatal("two leaders judged stable")
	}
	// Leader not at the defect head.
	cfg = []State{{C: 0}, {C: 1, Leader: true}, {C: 0}}
	// arcs: 0→1 ok (want 1, got 1)... construct explicitly below instead.
	_ = cfg
	// Pending repair.
	cfg = []State{{C: 0, Leader: true, Repair: true}, {C: 1}, {C: 0}}
	if p.Stable(cfg) {
		t.Fatal("pending repair judged stable")
	}
}

func TestStateCountConstant(t *testing.T) {
	if New(2).StateCount() != New(2).StateCount() {
		t.Fatal("state count must be deterministic")
	}
	if New(2).StateCount() > 200 {
		t.Fatalf("state count %d not O(1)-ish", New(2).StateCount())
	}
}

func TestRandomConfigRejectsDivisibleN(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for k | n")
		}
	}()
	New(2).RandomConfig(xrand.New(1), 8)
}

func BenchmarkStep(b *testing.B) {
	p := New(2)
	l := State{C: 0}
	r := State{C: 1}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		l, r = p.Step(l, r)
	}
}
