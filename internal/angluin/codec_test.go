package angluin

import (
	"testing"

	"repro/internal/population"
	"repro/internal/war"
)

// allStates enumerates the full state domain at the maximum modulus
// k = 250: 250 labels × 2² flag combinations × 12 war states = 12000
// states. Every smaller modulus reaches a subset, so exhaustive checks
// here subsume reachable-state coverage for every valid k.
func allStates() []State {
	var out []State
	for c := 0; c < 250; c++ {
		for f := 0; f < 4; f++ {
			for b := war.None; b <= war.Live; b++ {
				for sh := 0; sh < 2; sh++ {
					for sg := 0; sg < 2; sg++ {
						out = append(out, State{
							C:      uint8(c),
							Leader: f&1 != 0,
							Repair: f&2 != 0,
							War:    war.State{Bullet: b, Shield: sh == 1, Signal: sg == 1},
						})
					}
				}
			}
		}
	}
	return out
}

// TestCodecRoundTrip pins the packed codec over the whole state domain:
// Dec(Enc(s)) == s, Enc stays under the declared width, and Enc is
// injective.
func TestCodecRoundTrip(t *testing.T) {
	c := Codec()
	if c.Bits < 1 || c.Bits > 63 {
		t.Fatalf("codec width %d outside [1, 63]", c.Bits)
	}
	seen := make(map[uint64]State)
	for _, s := range allStates() {
		v := c.Enc(s)
		if v >= 1<<c.Bits {
			t.Fatalf("Enc(%+v) = %#x exceeds %d bits", s, v, c.Bits)
		}
		if got := c.Dec(v); got != s {
			t.Fatalf("round trip: %+v -> %#x -> %+v", s, v, got)
		}
		if prev, dup := seen[v]; dup {
			t.Fatalf("collision: %+v and %+v both pack to %#x", prev, s, v)
		}
		seen[v] = s
	}
}

// TestPackedInternerCollisionFree feeds the full domain through the packed
// interner: one distinct ID per distinct state, stable on re-intern. At
// 12000 states this also exercises the interner's open-table growth path.
func TestPackedInternerCollisionFree(t *testing.T) {
	c := Codec()
	in := population.NewPackedInterner(c, population.DefaultMaxStates)
	states := allStates()
	ids := make([]uint32, len(states))
	for i, s := range states {
		id, ok := in.Intern(s)
		if !ok {
			t.Fatalf("intern %+v failed below cap", s)
		}
		if in.Value(id) != s || in.Packed(id) != c.Enc(s) {
			t.Fatalf("mint %d does not invert for %+v", id, s)
		}
		ids[i] = id
	}
	if in.Len() != len(states) {
		t.Fatalf("interner minted %d IDs for %d distinct states", in.Len(), len(states))
	}
	for i, s := range states {
		if id, _ := in.Intern(s); id != ids[i] {
			t.Fatalf("re-intern of %+v moved ID %d -> %d", s, ids[i], id)
		}
	}
}

// FuzzCodecRoundTrip drives the round trip from raw fuzzed bytes,
// canonicalized into the valid domain.
func FuzzCodecRoundTrip(f *testing.F) {
	f.Add(uint8(0), uint8(0), uint8(0))
	f.Add(uint8(249), uint8(3), uint8(2))
	f.Fuzz(func(t *testing.T, label, flags, bullet uint8) {
		s := State{
			C:      label % 250,
			Leader: flags&1 != 0,
			Repair: flags&2 != 0,
			War: war.State{
				Bullet: war.Bullet(bullet % 3),
				Shield: flags&4 != 0,
				Signal: flags&8 != 0,
			},
		}
		c := Codec()
		v := c.Enc(s)
		if v >= 1<<c.Bits {
			t.Fatalf("Enc(%+v) = %#x exceeds %d bits", s, v, c.Bits)
		}
		if got := c.Dec(v); got != s {
			t.Fatalf("round trip: %+v -> %#x -> %+v", s, v, got)
		}
	})
}
