// Package lottery implements the lottery game of the paper's Definition
// 3.8 — the probabilistic engine behind DetermineMode's clocks and signal
// TTLs — and Monte Carlo estimators for the tail bounds of Lemmas 3.9 and
// 3.10.
//
// One round of the game ends when the player sees a tail or k consecutive
// heads; the round is won in the latter case. W_LG(k, ℓ) is the number of
// rounds won within the first ℓ fair coin flips. In the protocol, "heads"
// is an interaction with the left neighbor, "tails" one with the right
// neighbor, and a win advances a clock or decrements a signal's TTL.
package lottery

import "repro/internal/xrand"

// Wins plays the lottery game for exactly flips coin flips and returns the
// number of rounds won — one sample of W_LG(k, flips).
func Wins(k int, flips int, rng *xrand.RNG) int {
	wins, streak := 0, 0
	for i := 0; i < flips; i++ {
		if rng.Bool() {
			streak++
			if streak == k {
				wins++
				streak = 0
			}
		} else {
			streak = 0
		}
	}
	return wins
}

// WinProbability returns the per-round win probability 2^-k.
func WinProbability(k int) float64 {
	return 1 / float64(uint64(1)<<uint(k))
}

// TailAtMost estimates Pr(W_LG(k, flips) <= bound) over trials Monte Carlo
// samples.
func TailAtMost(k, flips, bound, trials int, rng *xrand.RNG) float64 {
	hit := 0
	for t := 0; t < trials; t++ {
		if Wins(k, flips, rng) <= bound {
			hit++
		}
	}
	return float64(hit) / float64(trials)
}

// TailAtLeast estimates Pr(W_LG(k, flips) >= bound) over trials Monte
// Carlo samples.
func TailAtLeast(k, flips, bound, trials int, rng *xrand.RNG) float64 {
	hit := 0
	for t := 0; t < trials; t++ {
		if Wins(k, flips, rng) >= bound {
			hit++
		}
	}
	return float64(hit) / float64(trials)
}

// Lemma39Params returns the (flips, bound) pair of Lemma 3.9 for the given
// k and c: W_LG(k, 4ck·2^k) ≤ 8ck with probability 1 − 2^−ck.
func Lemma39Params(k, c int) (flips, bound int) {
	return 4 * c * k << uint(k), 8 * c * k
}

// Lemma310Params returns the (flips, bound) pair of Lemma 3.10:
// W_LG(k, 64ck·2^k) ≥ 16ck with probability 1 − 2^−ck.
func Lemma310Params(k, c int) (flips, bound int) {
	return 64 * c * k << uint(k), 16 * c * k
}
