package lottery

import (
	"math"
	"testing"

	"repro/internal/xrand"
)

func TestWinsDeterministicPatterns(t *testing.T) {
	// With k=1 every head is a win.
	rng := xrand.New(1)
	total := 0
	const flips = 10000
	wins := Wins(1, flips, rng)
	// Expected ~flips/2.
	if wins < flips/2-300 || wins > flips/2+300 {
		t.Fatalf("k=1 wins = %d, want ~%d", wins, flips/2)
	}
	total += wins
}

func TestWinsZeroFlips(t *testing.T) {
	if got := Wins(3, 0, xrand.New(1)); got != 0 {
		t.Fatalf("zero flips won %d rounds", got)
	}
}

func TestWinProbability(t *testing.T) {
	tests := []struct {
		k    int
		want float64
	}{
		{1, 0.5}, {2, 0.25}, {4, 0.0625}, {10, 1.0 / 1024},
	}
	for _, tt := range tests {
		if got := WinProbability(tt.k); got != tt.want {
			t.Fatalf("WinProbability(%d) = %v, want %v", tt.k, got, tt.want)
		}
	}
}

// TestMeanWinRate checks the basic renewal analysis: a round takes ~2
// flips on average (expected flips per round of the streak process is
// 2(1−2^−k) ≈ 2... conservatively, the win rate per flip approaches
// 2^−k / E[round length]; we only check the Monte Carlo mean against a
// direct simulation bound.
func TestMeanWinRate(t *testing.T) {
	const trials = 200
	k := 4
	flips := 1 << 14
	rng := xrand.New(9)
	sum := 0.0
	for i := 0; i < trials; i++ {
		sum += float64(Wins(k, flips, rng))
	}
	mean := sum / trials
	// Renewal rate: a fresh round ends in an expected 2(2^k−1)/2^k... the
	// wins-per-flip rate is 1/(2(2^k −1) + k·...) — rather than pin the
	// closed form, require the mean to be within a factor 2 of
	// flips·2^−k/2 (each win costs at least k flips, at most ~2^{k+1}).
	lo := float64(flips) * WinProbability(k) / 4
	hi := float64(flips) * WinProbability(k) * 2
	if mean < lo || mean > hi {
		t.Fatalf("mean wins %.1f outside [%.1f, %.1f]", mean, lo, hi)
	}
}

// TestLemma39 checks Pr(W_LG(k, 4ck·2^k) ≤ 8ck) ≥ 1 − 2^−ck by Monte
// Carlo for small k, c.
func TestLemma39(t *testing.T) {
	rng := xrand.New(11)
	for _, k := range []int{2, 3, 4, 5} {
		for _, c := range []int{1, 2} {
			flips, bound := Lemma39Params(k, c)
			const trials = 2000
			p := TailAtMost(k, flips, bound, trials, rng)
			want := 1 - math.Pow(2, -float64(c*k))
			// Allow Monte Carlo slack below the bound: 3 sigma of the
			// binomial estimator.
			sigma := math.Sqrt(want * (1 - want) / trials)
			if p < want-3*sigma-0.01 {
				t.Fatalf("k=%d c=%d: Pr(W ≤ %d in %d flips) = %.4f < %.4f",
					k, c, bound, flips, p, want)
			}
		}
	}
}

// TestLemma310 checks Pr(W_LG(k, 64ck·2^k) ≥ 16ck) ≥ 1 − 2^−ck.
func TestLemma310(t *testing.T) {
	rng := xrand.New(12)
	for _, k := range []int{2, 3, 4, 5} {
		for _, c := range []int{1, 2} {
			flips, bound := Lemma310Params(k, c)
			const trials = 1000
			p := TailAtLeast(k, flips, bound, trials, rng)
			want := 1 - math.Pow(2, -float64(c*k))
			sigma := math.Sqrt(want * (1 - want) / trials)
			if p < want-3*sigma-0.01 {
				t.Fatalf("k=%d c=%d: Pr(W ≥ %d in %d flips) = %.4f < %.4f",
					k, c, bound, flips, p, want)
			}
		}
	}
}

func TestParamHelpers(t *testing.T) {
	flips, bound := Lemma39Params(4, 2)
	if flips != 4*2*4*16 || bound != 8*2*4 {
		t.Fatalf("Lemma39Params = (%d,%d)", flips, bound)
	}
	flips, bound = Lemma310Params(3, 1)
	if flips != 64*3*8 || bound != 16*3 {
		t.Fatalf("Lemma310Params = (%d,%d)", flips, bound)
	}
}

func BenchmarkWins(b *testing.B) {
	rng := xrand.New(1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Wins(6, 4096, rng)
	}
}
