// Package plan is the shared sweep-planning layer of the serving and
// fabric tiers: the wire Spec of one Experiment (protocols × sizes ×
// scenario × trials × metrics), its expansion into deterministic
// (protocol, size) cells, the content digest that names each cell, and
// the canonical trial-order JSONL encoding of a cell's records.
//
// Both the experiment service (internal/service) and the distributed
// sweep fabric (internal/fabric) consume this package, which is what
// keeps their guarantees aligned: a cell digest computed by the fabric
// coordinator is the same digest the service cache uses, and the
// canonical record bytes a fabric worker uploads are the bytes a service
// cold run would have produced for the same cell.
package plan

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"sync"

	"repro"
)

// SpecVersion versions the cell digest: any change to the TrialRecord
// schema, the seed derivation, or the cell execution semantics must bump
// it so stale cache entries (including spilled ones) can never serve
// records under the new semantics.
const SpecVersion = "repro.cell/v1"

// MetricSpec is the wire form of a repro.Metric.
type MetricSpec struct {
	Observable string `json:"observable"`
	Agg        string `json:"agg"`
	Label      string `json:"label,omitempty"`
}

// Spec is the wire configuration of one Experiment — the JSON body of
// the service's POST /v1/jobs and of the fabric coordinator's -spec
// file. Protocols, Sizes and Trials are required; everything else
// defaults to the zero Experiment behavior (zero Scenario = the standard
// random-adversary run, no metrics, no size caps).
type Spec struct {
	// Protocols names registered protocols, in row order.
	Protocols []string `json:"protocols"`
	// Sizes lists requested ring sizes (protocols adjust them via FixSize).
	Sizes []int `json:"sizes"`
	// Trials is the number of trials per (protocol, size) cell.
	Trials int `json:"trials"`
	// Scenario is shared by every cell; the zero value is the standard
	// experiment.
	Scenario repro.Scenario `json:"scenario,omitempty"`
	// Metrics adds composable report aggregations (rendered in /report).
	Metrics []MetricSpec `json:"metrics,omitempty"`
	// MaxSize caps the sizes run per protocol, like
	// Experiment.MaxSizeFor; capped cells render as missing. Keys are
	// registry names — the same namespace as Protocols — and are
	// translated to the display names Experiment matching uses.
	MaxSize map[string]int `json:"max_size,omitempty"`
	// TimeoutMillis bounds the job's wall-clock execution in the serving
	// tiers (0 = the server's default, if any). A deadline changes when a
	// job is allowed to finish, never what its trials compute, so it is
	// deliberately excluded from cell digests (omitempty keeps it out of
	// the spec digest for specs that don't set it).
	TimeoutMillis int64 `json:"timeout_ms,omitempty"`
}

// metrics converts the wire metrics to repro.Metric values.
func (s Spec) metrics() []repro.Metric {
	out := make([]repro.Metric, 0, len(s.Metrics))
	for _, m := range s.Metrics {
		out = append(out, repro.Metric{Observable: m.Observable, Agg: m.Agg, Label: m.Label})
	}
	return out
}

// Experiment compiles the spec into a fresh Experiment builder. Every
// caller builds its own: Experiment values are cheap and must never be
// shared across concurrently-running jobs.
func (s Spec) Experiment() *repro.Experiment {
	e := repro.NewExperiment().
		ProtocolNames(s.Protocols...).
		Sizes(s.Sizes...).
		Trials(s.Trials).
		Scenario(s.Scenario).
		Metrics(s.metrics()...)
	for name, max := range s.MaxSize {
		// Experiment.MaxSizeFor matches ProtocolInfo.Name (the Table 1
		// display name); the wire contract uses registry names, so
		// translate. Unknown names are caught by Validate.
		if p, err := repro.NewProtocol(name); err == nil {
			e = e.MaxSizeFor(p.Info().Name, max)
		}
	}
	return e
}

// Validate rejects malformed specs before any work is queued, reusing
// the Experiment's own validation (unknown protocols, empty matrix,
// unsupported scenarios, bad metrics) so the serving tiers and the
// library never disagree about what a runnable spec is.
func (s Spec) Validate() error {
	if len(s.Protocols) == 0 {
		return fmt.Errorf("spec has no protocols")
	}
	if len(s.Sizes) == 0 {
		return fmt.Errorf("spec has no sizes")
	}
	if s.Trials < 1 {
		return fmt.Errorf("spec needs trials >= 1, got %d", s.Trials)
	}
	if s.TimeoutMillis < 0 {
		return fmt.Errorf("spec needs timeout_ms >= 0, got %d", s.TimeoutMillis)
	}
	for name := range s.MaxSize {
		if _, err := repro.NewProtocol(name); err != nil {
			return fmt.Errorf("max_size: %w", err)
		}
	}
	return s.Experiment().Validate()
}

// Digest content-addresses the whole spec (plus the caller's extra
// context, such as the fabric's shard width) — the identity a resumable
// checkpoint is validated against. Cells carry their own finer-grained
// digest in Key.
func (s Spec) Digest(extra string) (string, error) {
	data, err := json.Marshal(s)
	if err != nil {
		return "", err
	}
	h := sha256.New()
	fmt.Fprintf(h, "%s|spec=%s|extra=%s", SpecVersion, data, extra)
	return hex.EncodeToString(h.Sum(nil)), nil
}

// Cell is one (protocol, size) cell of a planned sweep, in deterministic
// execution order: protocol row order, then size order — exactly the
// order Experiment.execute visits cells, which is what makes the
// concatenated record stream byte-identical to a library run's sink
// stream (modulo completion-order: serving tiers re-serialize each cell
// in trial order).
type Cell struct {
	Protocol string
	RawN     int
	N        int // FixSize-adjusted
	Skipped  bool
	Key      string // content digest; empty for skipped cells
}

// Cells expands the spec into its cell list and validates protocol names
// on the way (NewProtocol errors surface here).
func (s Spec) Cells() ([]Cell, error) {
	scenario, err := json.Marshal(s.Scenario)
	if err != nil {
		return nil, err
	}
	var cells []Cell
	for _, name := range s.Protocols {
		p, err := repro.NewProtocol(name)
		if err != nil {
			return nil, err
		}
		for _, rawN := range s.Sizes {
			n := p.FixSize(rawN)
			cell := Cell{Protocol: name, RawN: rawN, N: n}
			if max, capped := s.MaxSize[name]; capped && rawN > max {
				cell.Skipped = true
			} else {
				cell.Key = CellDigest(name, scenario, n, s.Trials)
			}
			cells = append(cells, cell)
		}
	}
	return cells, nil
}

// CellDigest is the content address of one cell's record bytes: a
// SHA-256 over the schema version, protocol name, canonical scenario
// JSON, the FixSize-adjusted ring size and the trial count. Seeds need no
// explicit mention — they are the pure function repro.TrialSeed(n, t) of
// n and t, so (n, trials) pins the seed range. Two requested sizes that
// FixSize to the same n share a digest and therefore a cache entry, as
// they must: their records are identical.
func CellDigest(protocol string, scenarioJSON []byte, n, trials int) string {
	h := sha256.New()
	fmt.Fprintf(h, "%s|proto=%s|scenario=%s|n=%d|trials=%d", SpecVersion, protocol, scenarioJSON, n, trials)
	return hex.EncodeToString(h.Sum(nil))
}

// Collector buffers the records of one trial range [lo, hi) by trial
// index; records arrive in completion order from a worker pool, Encode
// re-serializes them in trial order — the canonical byte form every
// serving tier ships and compares.
type Collector struct {
	lo   int
	mu   sync.Mutex
	recs []*repro.TrialRecord
}

// NewCollector returns a collector for trials [lo, hi).
func NewCollector(lo, hi int) *Collector {
	return &Collector{lo: lo, recs: make([]*repro.TrialRecord, hi-lo)}
}

// Record implements repro.Sink.
func (c *Collector) Record(rec repro.TrialRecord) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	i := rec.Trial - c.lo
	if i < 0 || i >= len(c.recs) {
		return fmt.Errorf("record trial %d out of range [%d,%d)", rec.Trial, c.lo, c.lo+len(c.recs))
	}
	c.recs[i] = &rec
	return nil
}

// Close implements repro.Sink.
func (c *Collector) Close() error { return nil }

// Encode emits the canonical JSONL bytes of the range: trial order, one
// compact JSON object per line. json.Marshal sorts map keys, so the
// bytes are a pure function of the records — the property both the
// content-addressed cache and the fabric's byte-identical merge lean on.
func (c *Collector) Encode() ([]byte, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	var buf bytes.Buffer
	for i, rec := range c.recs {
		if rec == nil {
			return nil, fmt.Errorf("trial %d finished without a record", c.lo+i)
		}
		data, err := json.Marshal(rec)
		if err != nil {
			return nil, err
		}
		buf.Write(data)
		buf.WriteByte('\n')
	}
	return buf.Bytes(), nil
}

// CountLines counts the records in a JSONL byte block.
func CountLines(data []byte) int {
	return bytes.Count(data, []byte{'\n'})
}
