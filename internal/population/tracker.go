package population

import "math/bits"

// ConvergenceTracker maintains a convergence predicate incrementally while
// the engine runs. The engine calls Update from applyPair after every
// interaction (O(1) amortized), Reset after a bulk state install, and
// Converged to ask whether the predicate holds at the current step — which
// is what makes hitting times exact instead of quantized to a periodic
// full-configuration scan.
type ConvergenceTracker[S any] interface {
	// Reset recomputes all tracker state from the configuration. The slice
	// is the engine's live backing array: the tracker may retain it and
	// read it on later calls, but must never write to it.
	Reset(cfg []S)
	// Update is called after the interaction on the arc (li, ri) has been
	// applied to the configuration passed to Reset. Both agents' states
	// may have changed; on a ring they are adjacent.
	Update(li, ri int32)
	// Converged reports whether the tracked predicate holds right now. It
	// must be cheap when the answer is "no": RunUntilConverged calls it
	// after every single step.
	Converged() bool
}

// LocalCounts carries, per condition channel, the number of ring locations
// currently matching the channel's condition: Arc[b] counts arcs (i, i+1)
// whose ArcMask has bit b set, Agent[b] counts agents whose AgentMask has
// bit b set. AgentPos[b] is the sum of the indices of the agents matching
// channel b — when Agent[b] == 1 it IS the index of the unique matching
// agent, which lets verdicts locate a unique leader (or walker, or
// anchor) in O(1) instead of scanning the ring. A RingSpec's Converged
// verdict reads these instead of scanning the configuration.
type LocalCounts struct {
	Arc      [8]int
	Agent    [8]int
	AgentPos [8]int
}

// RingSpec is the delta-decomposed form of a convergence predicate on a
// ring: per-adjacent-pair and per-agent conditions whose match counts are
// maintained in O(1) per interaction, plus a verdict that combines them.
// Predicates with a non-local remainder (for example the war peacefulness
// of C_PB, which orders signals against live bullets around the whole
// ring) put the local conditions first as a gate and scan only when every
// cheap condition already holds — which before convergence is rare, so the
// hot path stays scan-free.
type RingSpec[S any] struct {
	// ArcMask returns the condition bits matched by the ordered adjacent
	// pair (l, r) = (agent i, agent i+1 mod n). Nil means no arc
	// conditions.
	ArcMask func(l, r S) uint8
	// AgentMask returns the condition bits matched by a single agent's
	// state. Nil means no agent conditions.
	AgentMask func(s S) uint8
	// Converged decides the predicate from the channel counts. cfg is the
	// live configuration, for verdicts that need a residual scan once the
	// counts pass; implementations must treat it as read-only. Converged
	// must be exact: it returns true at precisely the steps where the
	// protocol's scan predicate would.
	Converged func(c *LocalCounts, cfg []S) bool
	// Gate and Residual, when both non-nil, split Converged for the
	// witness-cached hot path: Gate is the pure counter part of the verdict
	// (O(1), no configuration access) and Residual the non-local remainder,
	// run only once the gate passes. The invariant every spec must uphold is
	//
	//	Converged(c, cfg) == Gate(c) && ok, where ok, _ = Residual(c, cfg)
	//
	// at every reachable configuration. On failure Residual returns a
	// Witness — ring positions its falseness depends on — and the tracker
	// skips re-running the residual until an interaction touches one of
	// them, which keeps hitting times exact while amortizing the residual's
	// scan cost away (for P_PL the local gate is open for most of the long
	// construction phase, so an unconditional per-step residual scan costs
	// O(n) per interaction; witness caching reduces it to O(1) amortized).
	Gate     func(c *LocalCounts) bool
	Residual func(c *LocalCounts, cfg []S) (bool, Witness)
	// MetaID, ArcMaskMeta and ResidualMeta are the optional meta-word
	// acceleration of the spec for the interned engine (interned.go): when
	// MetaID is non-nil, the engine maintains a per-agent slice of
	// MetaID(state) words alongside the configuration and evaluates
	// ArcMaskMeta/ResidualMeta over those words instead of calling the
	// state-level closures — one flat uint64 load per agent instead of a
	// struct read and a closure dispatch, which is what keeps the residual
	// scans of large-state protocols (P_PL) off the interned hot path. The
	// contract is strict equivalence:
	//
	//	ArcMaskMeta(MetaID(l), MetaID(r)) == ArcMask(l, r)
	//	ResidualMeta(c, meta)             == Residual(c, cfg)
	//
	// at every reachable configuration, where meta[i] == MetaID(cfg[i]).
	// The verdicts must match exactly; the Witness on a false verdict must
	// pin a genuinely failing check of THIS configuration (witness caching
	// stays sound under any such choice), though it need not be the same
	// check Residual would witness. ArcMaskMeta and ResidualMeta are each
	// optional on their own; the generic closures serve wherever a meta
	// form is absent. The generic RingTracker ignores all three.
	// ResidualMeta may keep internal memoization (e.g. a last-failing-check
	// hint) as long as its verdict stays exact for ANY meta slice it is
	// handed — engines sharing one spec instance across lockstep lanes
	// interleave calls with different meta slices, so a hint must be
	// advisory, never load-bearing.
	MetaID      func(s S) uint64
	ArcMaskMeta func(l, r uint64) uint8
	// AgentMaskMeta is the meta form of AgentMask, under the same
	// equivalence contract: AgentMaskMeta(MetaID(s)) == AgentMask(s) at
	// every reachable state. The interned engine's mirror refreshes a
	// touched agent's condition bits from the meta word it just wrote
	// instead of loading the per-ID mask table — on O(n)-state protocols
	// that table is hundreds of KB of randomly indexed bytes, so the meta
	// form removes two cache misses per applied interaction.
	AgentMaskMeta func(m uint64) uint8
	// ResidualMeta receives the per-agent meta words: meta[i] is
	// MetaID(cfg[i]) for ring position i.
	ResidualMeta func(c *LocalCounts, meta []uint64) (bool, Witness)
	// ArcNames and AgentNames label the condition channels for
	// diagnostics: entry b names channel bit b of the arc (respectively
	// agent) counts. Named channels are surfaced by SampleCounts as
	// observables of the trial-record pipeline; unnamed channels (an empty
	// string, or a bit beyond the slice) stay internal. Naming a channel
	// changes nothing about tracking itself.
	ArcNames   []string
	AgentNames []string
}

// Witness records why a RingSpec residual failed: the inclusive interval
// [Lo, Hi] of ring positions (wrapping when Lo > Hi) covering every agent
// whose state the failing check read, plus an optional Anchor position the
// check is pinned to (typically the unique leader the scan walks from;
// -1 for none). The contract: as long as no interaction touches a position
// in the interval or the anchor, the residual is guaranteed to keep
// returning false, so the tracker may answer "not converged" without
// re-running it. Any touch of the leader is always observable this way —
// a leader set can only change by flipping some agent's leader bit, which
// touches that agent — so anchoring at the leader keeps leader-relative
// witnesses sound across gate flickers.
type Witness struct {
	Lo, Hi int32
	Anchor int32
}

// WholeRing is the trivial witness: every interaction invalidates it, so
// the residual re-runs on the next verdict — the behavior specs without
// witness support had all along. Residuals that cannot localize their
// failure return it.
func WholeRing(n int) Witness {
	return Witness{Lo: 0, Hi: int32(n - 1), Anchor: -1}
}

// IntervalWitness builds a witness for the wrapped inclusive interval of
// ring positions [lo, lo+span] anchored at anchor, clamping to the whole
// ring when the span covers it.
func IntervalWitness(n, lo, span, anchor int) Witness {
	if span >= n-1 {
		return WholeRing(n)
	}
	lo = mod(lo, n)
	return Witness{Lo: int32(lo), Hi: int32(mod(lo+span, n)), Anchor: int32(anchor)}
}

// contains reports whether ring position i lies in the witness's touch set.
func (w Witness) contains(i, n int) bool {
	if int32(i) == w.Anchor {
		return true
	}
	span := w.Hi - w.Lo
	if span < 0 {
		span += int32(n)
	}
	d := int32(i) - w.Lo
	if d < 0 {
		d += int32(n)
	}
	return d <= span
}

// witnessCache is the residual-witness state shared by the two tracker
// implementations (RingTracker and the interned engine's mirror): while a
// witness is armed and untouched, the residual is known to still fail and
// is not re-run. Keeping the protocol in one place keeps the two hitting-
// time-exact paths in lockstep by construction.
type witnessCache struct {
	armed bool
	dirty bool
	w     Witness
}

func (c *witnessCache) reset() { c.armed = false }

// note marks the cache dirty when either touched agent lies in the armed
// witness's touch set. O(1); called after every interaction.
func (c *witnessCache) note(a, b, n int) {
	if c.armed && !c.dirty && (c.w.contains(a, n) || c.w.contains(b, n)) {
		c.dirty = true
	}
}

// witnessVerdict runs the witness-cached Gate/Residual protocol over the
// current counts and configuration, falling back to the spec's monolithic
// Converged when the split is absent. It is the single copy of the
// exactness-critical caching logic behind both RingTracker.Converged and
// the interned engine's convergedNow (a free function because methods
// cannot introduce type parameters).
func witnessVerdict[S any](c *witnessCache, spec *RingSpec[S], counts *LocalCounts, cfg []S) bool {
	if spec.Gate == nil || spec.Residual == nil {
		return spec.Converged(counts, cfg)
	}
	if !spec.Gate(counts) {
		return false
	}
	if c.armed && !c.dirty {
		return false
	}
	ok, w := spec.Residual(counts, cfg)
	if ok {
		c.armed = false
		return true
	}
	c.armed, c.dirty, c.w = true, false, w
	return false
}

// witnessVerdictMeta is witnessVerdict with the residual evaluated over
// the per-agent meta words through spec.ResidualMeta — same witness-caching
// protocol, same exactness contract, for interned engines whose spec
// carries the meta acceleration. Callers guarantee Gate and ResidualMeta
// are non-nil.
func witnessVerdictMeta[S any](c *witnessCache, spec *RingSpec[S], counts *LocalCounts, meta []uint64) bool {
	if !spec.Gate(counts) {
		return false
	}
	if c.armed && !c.dirty {
		return false
	}
	ok, w := spec.ResidualMeta(counts, meta)
	if ok {
		c.armed = false
		return true
	}
	c.armed, c.dirty, c.w = true, false, w
	return false
}

// CountSampler is the diagnostics face of a tracker: it exports the named
// per-channel match counts so probes can record protocol-shape observables
// (leader counts, live bullets, distance violations, …) without scanning
// the configuration. RingTracker implements it.
type CountSampler interface {
	// SampleCounts writes each named channel's current match count into
	// dst under its name. O(number of named channels).
	SampleCounts(dst map[string]float64)
}

// RingTracker maintains a RingSpec incrementally: per-location condition
// bits plus the per-channel match counts. An interaction touches two
// adjacent agents, so at most two agent masks and four arc masks are
// re-evaluated per Update — O(1) regardless of ring size.
type RingTracker[S any] struct {
	spec      RingSpec[S]
	cfg       []S
	arcBits   []uint8
	agentBits []uint8
	counts    LocalCounts

	// Residual witness cache (see RingSpec.Residual and witnessCache).
	wc witnessCache
}

// NewRingTracker returns a tracker for the spec. It is inert until the
// engine's SetTracker (or a direct Reset) hands it a configuration.
func NewRingTracker[S any](spec RingSpec[S]) *RingTracker[S] {
	if spec.Converged == nil {
		panic("population: RingSpec needs a Converged verdict")
	}
	return &RingTracker[S]{spec: spec}
}

// Counts returns the current per-channel match counts (for tests and
// diagnostics).
func (t *RingTracker[S]) Counts() LocalCounts { return t.counts }

// SampleCounts implements CountSampler over the spec's named channels.
func (t *RingTracker[S]) SampleCounts(dst map[string]float64) {
	for b, name := range t.spec.ArcNames {
		if name != "" {
			dst[name] = float64(t.counts.Arc[b])
		}
	}
	for b, name := range t.spec.AgentNames {
		if name != "" {
			dst[name] = float64(t.counts.Agent[b])
		}
	}
}

// Reset implements ConvergenceTracker.
func (t *RingTracker[S]) Reset(cfg []S) {
	n := len(cfg)
	t.cfg = cfg
	if len(t.arcBits) != n {
		t.arcBits = make([]uint8, n)
		t.agentBits = make([]uint8, n)
	}
	t.counts = LocalCounts{}
	t.wc.reset()
	for i := 0; i < n; i++ {
		var ab, gb uint8
		if t.spec.ArcMask != nil {
			ab = t.spec.ArcMask(cfg[i], cfg[(i+1)%n])
		}
		if t.spec.AgentMask != nil {
			gb = t.spec.AgentMask(cfg[i])
		}
		t.arcBits[i], t.agentBits[i] = ab, gb
		bumpCounts(&t.counts.Arc, 0, ab)
		bumpAgentCounts(&t.counts, 0, gb, i)
	}
}

// Update implements ConvergenceTracker: it re-evaluates the conditions of
// the two touched agents and of the (up to four) arcs incident to them.
func (t *RingTracker[S]) Update(li, ri int32) {
	n := len(t.cfg)
	a, b := int(li), int(ri)
	t.wc.note(a, b, n)
	if t.spec.AgentMask != nil {
		t.refreshAgent(a)
		t.refreshAgent(b)
	}
	if t.spec.ArcMask == nil {
		return
	}
	// Arcs whose pair includes agent a or b: (x-1, x) and (x, x+1).
	idx := [4]int{prev(a, n), a, prev(b, n), b}
	for k, arc := range idx {
		dup := false
		for j := 0; j < k; j++ {
			if idx[j] == arc {
				dup = true
				break
			}
		}
		if !dup {
			t.refreshArc(arc)
		}
	}
}

// Converged implements ConvergenceTracker. Specs that provide the
// Gate/Residual split get the witness-cached path: the O(1) gate runs
// every step, and a failing residual is only re-run after an interaction
// touches its witness; specs without the split pay their full Converged
// verdict every call, exactly as before.
func (t *RingTracker[S]) Converged() bool {
	return witnessVerdict(&t.wc, &t.spec, &t.counts, t.cfg)
}

func (t *RingTracker[S]) refreshAgent(i int) {
	nw := t.spec.AgentMask(t.cfg[i])
	if old := t.agentBits[i]; old != nw {
		t.agentBits[i] = nw
		bumpAgentCounts(&t.counts, old, nw, i)
	}
}

func (t *RingTracker[S]) refreshArc(i int) {
	nw := t.spec.ArcMask(t.cfg[i], t.cfg[(i+1)%len(t.cfg)])
	if old := t.arcBits[i]; old != nw {
		t.arcBits[i] = nw
		bumpCounts(&t.counts.Arc, old, nw)
	}
}

// bumpCounts applies the old→new bit delta to the per-channel counts.
func bumpCounts(counts *[8]int, old, nw uint8) {
	for diff := old ^ nw; diff != 0; diff &= diff - 1 {
		b := bits.TrailingZeros8(diff)
		if nw&(1<<b) != 0 {
			counts[b]++
		} else {
			counts[b]--
		}
	}
}

// bumpAgentCounts applies the old→new bit delta of agent idx to the agent
// channel counts and index sums.
func bumpAgentCounts(c *LocalCounts, old, nw uint8, idx int) {
	for diff := old ^ nw; diff != 0; diff &= diff - 1 {
		b := bits.TrailingZeros8(diff)
		if nw&(1<<b) != 0 {
			c.Agent[b]++
			c.AgentPos[b] += idx
		} else {
			c.Agent[b]--
			c.AgentPos[b] -= idx
		}
	}
}

func prev(i, n int) int {
	if i == 0 {
		return n - 1
	}
	return i - 1
}
