package population

// This file holds the state-interning primitives of the table-lookup
// execution layer (see interned.go): a dynamic state interner and a tiered
// pair table. The paper's headline property — poly-logarithmically many
// states per agent — means the reachable state space of every protocol we
// simulate is small compared to the number of interactions executed, so
// memoizing the pairwise transition per (state, state) pair and replaying
// it as table loads amortizes the full branchy transition cascade away.

// Interner assigns dense uint32 IDs to distinct states in order of first
// appearance. It is capacity-capped: protocols whose executions wander
// through more distinct states than the cap (P_PL at large n, whose state
// space is poly-log in theory but a large product space in practice) make
// Intern report failure, and the interned engine falls back to the generic
// path instead of growing tables without bound.
type Interner[S comparable] struct {
	ids  map[S]uint32
	vals []S
	max  int
}

// NewInterner returns an interner capped at max distinct states.
func NewInterner[S comparable](max int) *Interner[S] {
	return &Interner[S]{ids: make(map[S]uint32), max: max}
}

// Intern returns the dense ID of s, minting one on first sight. ok is
// false when minting would exceed the cap; the interner is unchanged in
// that case.
func (in *Interner[S]) Intern(s S) (uint32, bool) {
	if id, ok := in.ids[s]; ok {
		return id, true
	}
	if len(in.vals) >= in.max {
		return 0, false
	}
	id := uint32(len(in.vals))
	in.ids[s] = id
	in.vals = append(in.vals, s)
	return id, true
}

// Value returns the state with the given ID.
func (in *Interner[S]) Value(id uint32) S { return in.vals[id] }

// Len returns the number of distinct states interned so far.
func (in *Interner[S]) Len() int { return len(in.vals) }

// Cap returns the capacity cap.
func (in *Interner[S]) Cap() int { return in.max }

// pairTable memoizes a uint64 per ordered ID pair with two tiers. While
// the interner holds at most denseMax states it is a dense stride×stride
// array — a lookup is literally one multiply and one load — growing its
// stride by re-layout as IDs are minted. Beyond denseMax it migrates to an
// open-addressing hash table (power-of-two capacity, multiplicative
// hashing, linear probing), whose memory tracks the pairs actually seen
// instead of the square of the state count. Values use bit 63 as the
// present flag, so a zero dense cell and an empty hash slot both read as a
// miss.
type pairTable struct {
	denseMax int
	stride   int // dense tier: current stride (power of two); 0 once hashed
	dense    []uint64
	keys     []uint64 // hashed tier: packed (l<<32 | r), emptyKey when free
	hvals    []uint64
	used     int
}

const (
	pairPresent = uint64(1) << 63
	emptyKey    = ^uint64(0) // unreachable: IDs are far below 1<<32
)

// newPairTable returns a table that stays dense while the interner holds
// at most denseMax states.
func newPairTable(denseMax int) pairTable {
	return pairTable{denseMax: denseMax}
}

// get returns the memoized value for (l, r), if present.
func (t *pairTable) get(l, r uint32) (uint64, bool) {
	if t.stride != 0 || t.keys == nil {
		if int(l) >= t.stride || int(r) >= t.stride {
			return 0, false
		}
		v := t.dense[int(l)*t.stride+int(r)]
		return v, v&pairPresent != 0
	}
	key := uint64(l)<<32 | uint64(r)
	mask := uint64(len(t.keys) - 1)
	for i := pairHash(key) & mask; ; i = (i + 1) & mask {
		switch t.keys[i] {
		case key:
			return t.hvals[i], true
		case emptyKey:
			return 0, false
		}
	}
}

// pairHash mixes both halves of the packed pair key down into the low bits
// the power-of-two mask keeps (the low half of a product depends only on
// the low half of the key, which would make every pair with the same right
// ID collide).
func pairHash(key uint64) uint64 {
	h := key * 0x9e3779b97f4a7c15
	return h ^ h>>32
}

// put memoizes v for (l, r). nStates is the interner's current size; it
// drives dense growth and the dense→hashed migration. v must not have bit
// 63 set — put owns the present flag.
func (t *pairTable) put(l, r uint32, v uint64, nStates int) {
	v |= pairPresent
	if t.keys == nil {
		if nStates <= t.denseMax {
			if need := max(int(l), int(r)) + 1; need > t.stride || t.stride == 0 {
				t.growDense(nStates)
			}
			t.dense[int(l)*t.stride+int(r)] = v
			t.used++
			return
		}
		t.migrate()
	}
	if t.used >= len(t.keys)*3/4 {
		t.growHash(len(t.keys) * 2)
	}
	t.insertHash(uint64(l)<<32|uint64(r), v)
	t.used++
}

// growDense re-lays the dense tier out at the next power-of-two stride
// covering nStates IDs.
func (t *pairTable) growDense(nStates int) {
	stride := 16
	for stride < nStates {
		stride *= 2
	}
	if stride <= t.stride {
		return
	}
	dense := make([]uint64, stride*stride)
	for l := 0; l < t.stride; l++ {
		copy(dense[l*stride:l*stride+t.stride], t.dense[l*t.stride:(l+1)*t.stride])
	}
	t.dense, t.stride = dense, stride
}

// migrate moves every dense entry into a fresh hash tier.
func (t *pairTable) migrate() {
	cap := 1024
	for cap < t.used*2 {
		cap *= 2
	}
	t.keys = make([]uint64, cap)
	t.hvals = make([]uint64, cap)
	for i := range t.keys {
		t.keys[i] = emptyKey
	}
	for l := 0; l < t.stride; l++ {
		for r := 0; r < t.stride; r++ {
			if v := t.dense[l*t.stride+r]; v&pairPresent != 0 {
				t.insertHash(uint64(l)<<32|uint64(r), v)
			}
		}
	}
	t.dense, t.stride = nil, 0
}

func (t *pairTable) growHash(cap int) {
	oldKeys, oldVals := t.keys, t.hvals
	t.keys = make([]uint64, cap)
	t.hvals = make([]uint64, cap)
	for i := range t.keys {
		t.keys[i] = emptyKey
	}
	for i, k := range oldKeys {
		if k != emptyKey {
			t.insertHash(k, oldVals[i])
		}
	}
}

func (t *pairTable) insertHash(key, v uint64) {
	mask := uint64(len(t.keys) - 1)
	for i := pairHash(key) & mask; ; i = (i + 1) & mask {
		if t.keys[i] == emptyKey || t.keys[i] == key {
			t.keys[i] = key
			t.hvals[i] = v
			return
		}
	}
}
