package population

// This file holds the state-interning primitives of the table-lookup
// execution layer (see interned.go): a dynamic state interner and a tiered
// pair table. The paper's headline property — poly-logarithmically many
// states per agent — means the reachable state space of every protocol we
// simulate is small compared to the number of interactions executed, so
// memoizing the pairwise transition per (state, state) pair and replaying
// it as table loads amortizes the full branchy transition cascade away.

// PackedCodec encodes a protocol's state into a fixed-width integer. The
// contract is a bijection between reachable states and their packed forms:
// Enc must be injective over every state the protocol can reach (so two
// distinct states never collide in the packed key space — the property the
// round-trip and collision tests pin per protocol) and Dec(Enc(s)) == s.
// Bits is the width of the packed form; it must be at most 63, because the
// interner reserves the all-ones word as its empty-slot sentinel. A spec
// package whose state cannot fit 63 bits returns no codec and the interner
// falls back to its generic map-keyed mode.
type PackedCodec[S any] struct {
	// Bits is the packed width: Enc(s) < 1<<Bits for every reachable s.
	Bits int
	// Enc packs a state; injective over reachable states.
	Enc func(S) uint64
	// Dec unpacks; Dec(Enc(s)) == s for every reachable s.
	Dec func(uint64) S
}

// Interner assigns dense uint32 IDs to distinct states in order of first
// appearance. It is capacity-capped: protocols whose executions wander
// through more distinct states than the cap make Intern report failure,
// and the interned engine falls back to the generic path instead of
// growing tables without bound.
//
// With a PackedCodec the interner keys an open-addressed power-of-two
// table by the fixed-width packed form — one multiplicative hash and a
// linear probe over a flat uint64 array, no runtime map hashing of the
// state struct — and additionally records each ID's packed form. Without
// one it falls back to a Go map keyed by the state value.
type Interner[S comparable] struct {
	ids map[S]uint32 // generic mode; nil in packed mode

	// Packed mode: tkeys[i] is the packed state of the ID in slot i
	// (emptyKey when free), tids[i] that ID. packed[id] is the packed form
	// of id, in mint order — the codec-level mirror of vals.
	enc    func(S) uint64
	tkeys  []uint64
	tids   []uint32
	packed []uint64

	vals []S
	max  int
}

// NewInterner returns an interner capped at max distinct states, keyed by
// a Go map over the state value.
func NewInterner[S comparable](max int) *Interner[S] {
	return &Interner[S]{ids: make(map[S]uint32), max: max}
}

// NewPackedInterner returns an interner capped at max distinct states,
// keyed by codec.Enc through an open-addressed table. It panics when the
// codec's width collides with the empty-slot sentinel.
func NewPackedInterner[S comparable](codec PackedCodec[S], max int) *Interner[S] {
	if codec.Enc == nil || codec.Bits < 1 || codec.Bits > 63 {
		panic("population: PackedCodec needs Enc and 1 <= Bits <= 63")
	}
	in := &Interner[S]{enc: codec.Enc, max: max}
	in.growPacked(1024)
	return in
}

// Intern returns the dense ID of s, minting one on first sight. ok is
// false when minting would exceed the cap; the interner is unchanged in
// that case.
func (in *Interner[S]) Intern(s S) (uint32, bool) {
	if in.ids == nil {
		return in.internPacked(in.enc(s), s)
	}
	if id, ok := in.ids[s]; ok {
		return id, true
	}
	if len(in.vals) >= in.max {
		return 0, false
	}
	id := uint32(len(in.vals))
	in.ids[s] = id
	in.vals = append(in.vals, s)
	return id, true
}

// internPacked is the packed-mode Intern: probe the open table for key,
// minting a fresh ID into the first empty slot on a miss.
func (in *Interner[S]) internPacked(key uint64, s S) (uint32, bool) {
	mask := uint64(len(in.tkeys) - 1)
	i := pairHash(key) & mask
	for {
		switch in.tkeys[i] {
		case key:
			return in.tids[i], true
		case emptyKey:
			if len(in.vals) >= in.max {
				return 0, false
			}
			id := uint32(len(in.vals))
			in.vals = append(in.vals, s)
			in.packed = append(in.packed, key)
			in.tkeys[i], in.tids[i] = key, id
			if (len(in.vals)+1)*4 > len(in.tkeys)*3 {
				in.growPacked(len(in.tkeys) * 2)
			}
			return id, true
		}
		i = (i + 1) & mask
	}
}

// growPacked re-lays the packed-mode table out at the given power-of-two
// capacity, reinserting every minted ID.
func (in *Interner[S]) growPacked(cap int) {
	in.tkeys = make([]uint64, cap)
	in.tids = make([]uint32, cap)
	for i := range in.tkeys {
		in.tkeys[i] = emptyKey
	}
	mask := uint64(cap - 1)
	for id, key := range in.packed {
		i := pairHash(key) & mask
		for in.tkeys[i] != emptyKey {
			i = (i + 1) & mask
		}
		in.tkeys[i], in.tids[i] = key, uint32(id)
	}
}

// Packed returns the packed form of the state with the given ID. Valid in
// packed mode only.
func (in *Interner[S]) Packed(id uint32) uint64 { return in.packed[id] }

// Value returns the state with the given ID.
func (in *Interner[S]) Value(id uint32) S { return in.vals[id] }

// Len returns the number of distinct states interned so far.
func (in *Interner[S]) Len() int { return len(in.vals) }

// Cap returns the capacity cap.
func (in *Interner[S]) Cap() int { return in.max }

// pairTable memoizes a uint64 per ordered ID pair with two tiers. While
// the interner holds at most denseMax states it is a dense stride×stride
// array — a lookup is literally one multiply and one load — growing its
// stride by re-layout as IDs are minted. Beyond denseMax it migrates to an
// open-addressing hash table (power-of-two capacity, multiplicative
// hashing, linear probing), whose memory tracks the pairs actually seen
// instead of the square of the state count. Values use bit 63 as the
// present flag, so a zero dense cell and an empty hash slot both read as a
// miss.
type pairTable struct {
	denseMax int
	stride   int // dense tier: current stride (power of two); 0 once hashed
	dense    []uint64
	// Hashed tier: slot i is the adjacent word pair slab[2i] (the packed
	// l<<32|r key, emptyKey when free) and slab[2i+1] (the value), so one
	// cache line serves both the probe compare and the hit load — the
	// table far outgrows cache on O(n)-state protocols, where split
	// key/value arrays would cost two DRAM misses per lookup.
	slab  []uint64
	slots int // len(slab)/2, a power of two
	used  int
	// front is a direct-mapped cache over the hashed tier (key/value word
	// pairs, frontSlots entries). The slab on a large-state protocol is
	// tens of MB of DRAM, but the pair stream is temporally clustered, so
	// a small always-in-cache front table absorbs most probes. Entries
	// are immutable once memoized, so the front needs no invalidation.
	front []uint64
	// pfSink absorbs prefetch loads so they cannot be dead-code-eliminated.
	pfSink uint64
}

// frontSlots sizes the front cache: 1<<17 slots × 16 B = 2 MiB, small
// enough to stay cache-resident yet wide enough that the hot pair set of
// an O(n)-state protocol at n=1024 mostly fits (halving it measurably
// raises the slab-miss rate on the ppl benchmark, and a two-way
// set-associative variant measured no better than this direct map).
const frontSlots = 1 << 17

const (
	pairPresent = uint64(1) << 63
	emptyKey    = ^uint64(0) // unreachable: IDs are far below 1<<32
)

// newPairTable returns a table that stays dense while the interner holds
// at most denseMax states.
func newPairTable(denseMax int) pairTable {
	return pairTable{denseMax: denseMax}
}

// get returns the memoized value for (l, r), if present. The interned hot
// loop (applyInterned) inlines the hashed tier's front-cache fast path by
// hand and calls getHashed directly on a front miss; this method is the
// complete lookup for every other caller.
func (t *pairTable) get(l, r uint32) (uint64, bool) {
	if t.stride != 0 || t.slab == nil {
		if int(l) >= t.stride || int(r) >= t.stride {
			return 0, false
		}
		v := t.dense[int(l)*t.stride+int(r)]
		return v, v&pairPresent != 0
	}
	key := uint64(l)<<32 | uint64(r)
	h := pairHash(key)
	if ci := 2 * (h & (frontSlots - 1)); t.front[ci] == key {
		return t.front[ci+1], true
	}
	return t.getHashed(key, h)
}

// getHashed is the front-miss path: probe the hashed tier and install any
// hit into the front cache slot the key maps to.
func (t *pairTable) getHashed(key, h uint64) (uint64, bool) {
	mask := uint64(t.slots - 1)
	for i := h & mask; ; i = (i + 1) & mask {
		switch t.slab[2*i] {
		case key:
			v := t.slab[2*i+1]
			ci := 2 * (h & (frontSlots - 1))
			t.front[ci] = key
			t.front[ci+1] = v
			return v, true
		case emptyKey:
			return 0, false
		}
	}
}

// prefetch pulls the lookup path of (l, r) toward the cache by issuing its
// loads early, discarding values into a sink the compiler cannot eliminate.
// It probes the front cache first — warming that line is enough when the
// entry is already front-resident, and touching the slab too would evict
// useful lines for nothing — and falls through to the slab home line only
// on a front miss, mirroring exactly the lines get will need. A no-op on
// the dense tier, which is small enough to stay cached.
func (t *pairTable) prefetch(l, r uint32) {
	if t.slab == nil {
		return
	}
	key := uint64(l)<<32 | uint64(r)
	h := pairHash(key)
	if t.front[2*(h&(frontSlots-1))] == key {
		return
	}
	t.pfSink = t.slab[2*(h&uint64(t.slots-1))]
}

// pairHash mixes both halves of the packed pair key down into the low bits
// the power-of-two mask keeps (the low half of a product depends only on
// the low half of the key, which would make every pair with the same right
// ID collide).
func pairHash(key uint64) uint64 {
	h := key * 0x9e3779b97f4a7c15
	return h ^ h>>32
}

// put memoizes v for (l, r). nStates is the interner's current size; it
// drives dense growth and the dense→hashed migration. v must not have bit
// 63 set — put owns the present flag.
func (t *pairTable) put(l, r uint32, v uint64, nStates int) {
	v |= pairPresent
	if t.slab == nil {
		if nStates <= t.denseMax {
			if need := max(int(l), int(r)) + 1; need > t.stride || t.stride == 0 {
				t.growDense(nStates)
			}
			t.dense[int(l)*t.stride+int(r)] = v
			t.used++
			return
		}
		t.migrate()
	}
	if t.used >= t.slots*3/4 {
		t.growHash(t.slots * 2)
	}
	key := uint64(l)<<32 | uint64(r)
	t.insertHash(key, v)
	ci := 2 * (pairHash(key) & (frontSlots - 1))
	t.front[ci] = key
	t.front[ci+1] = v
	t.used++
}

// growDense re-lays the dense tier out at the next power-of-two stride
// covering nStates IDs.
func (t *pairTable) growDense(nStates int) {
	stride := 16
	for stride < nStates {
		stride *= 2
	}
	if stride <= t.stride {
		return
	}
	dense := make([]uint64, stride*stride)
	for l := 0; l < t.stride; l++ {
		copy(dense[l*stride:l*stride+t.stride], t.dense[l*t.stride:(l+1)*t.stride])
	}
	t.dense, t.stride = dense, stride
}

// migrate moves every dense entry into a fresh hash tier.
func (t *pairTable) migrate() {
	cap := 1024
	for cap < t.used*2 {
		cap *= 2
	}
	t.allocSlab(cap)
	for l := 0; l < t.stride; l++ {
		for r := 0; r < t.stride; r++ {
			if v := t.dense[l*t.stride+r]; v&pairPresent != 0 {
				t.insertHash(uint64(l)<<32|uint64(r), v)
			}
		}
	}
	t.dense, t.stride = nil, 0
}

func (t *pairTable) growHash(cap int) {
	old := t.slab
	t.allocSlab(cap)
	for i := 0; i+1 < len(old); i += 2 {
		if k := old[i]; k != emptyKey {
			t.insertHash(k, old[i+1])
		}
	}
}

func (t *pairTable) allocSlab(cap int) {
	t.slab = make([]uint64, 2*cap)
	t.slots = cap
	for i := 0; i < cap; i++ {
		t.slab[2*i] = emptyKey
	}
	if t.front == nil {
		t.front = make([]uint64, 2*frontSlots)
		for i := 0; i < frontSlots; i++ {
			t.front[2*i] = emptyKey
		}
	}
}

func (t *pairTable) insertHash(key, v uint64) {
	mask := uint64(t.slots - 1)
	for i := pairHash(key) & mask; ; i = (i + 1) & mask {
		if k := t.slab[2*i]; k == emptyKey || k == key {
			t.slab[2*i] = key
			t.slab[2*i+1] = v
			return
		}
	}
}
