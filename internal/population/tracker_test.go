package population

import (
	"testing"

	"repro/internal/xrand"
)

// touchSpec is a synthetic spec over counterState: agent channel 0 counts
// untouched agents (count == 0), agent channel 1 counts leaders, arc
// channel 0 counts arcs whose endpoints differ in touch parity. Converged
// once every agent has interacted at least once.
func touchSpec() RingSpec[counterState] {
	return RingSpec[counterState]{
		ArcMask: func(l, r counterState) uint8 {
			if l.count%2 != r.count%2 {
				return 1
			}
			return 0
		},
		AgentMask: func(s counterState) uint8 {
			var m uint8
			if s.count == 0 {
				m |= 1
			}
			if s.leader {
				m |= 2
			}
			return m
		},
		Converged: func(c *LocalCounts, _ []counterState) bool {
			return c.Agent[0] == 0
		},
	}
}

// recount recomputes the tracker's counts from scratch.
func recount(cfg []counterState, spec RingSpec[counterState]) LocalCounts {
	var c LocalCounts
	n := len(cfg)
	for i := 0; i < n; i++ {
		am := spec.ArcMask(cfg[i], cfg[(i+1)%n])
		gm := spec.AgentMask(cfg[i])
		for b := 0; b < 8; b++ {
			if am&(1<<b) != 0 {
				c.Arc[b]++
			}
			if gm&(1<<b) != 0 {
				c.Agent[b]++
				c.AgentPos[b] += i
			}
		}
	}
	return c
}

func TestRingTrackerCountsMatchRecount(t *testing.T) {
	for _, topo := range []Topology{DirectedRing(2), DirectedRing(7), UndirectedRing(3), UndirectedRing(8)} {
		spec := touchSpec()
		e := NewEngine(topo, countTransition, xrand.New(11))
		tr := NewRingTracker(spec)
		e.SetTracker(tr)
		for i := 0; i < 2000; i++ {
			e.Step()
			if got, want := tr.Counts(), recount(e.Config(), spec); got != want {
				t.Fatalf("n=%d step %d: incremental counts %+v, recount %+v",
					topo.N, e.Steps(), got, want)
			}
		}
	}
}

func TestRingTrackerResetOnSetStates(t *testing.T) {
	spec := touchSpec()
	e := NewEngine(DirectedRing(6), countTransition, xrand.New(3))
	tr := NewRingTracker(spec)
	e.SetTracker(tr)
	e.Run(100)
	// A bulk install invalidates the tracker; the engine must resync it
	// before the next verdict-bearing interaction.
	cfg := make([]counterState, 6)
	for i := range cfg {
		cfg[i] = counterState{count: 2 * i} // agent 0 untouched again
	}
	e.SetStates(cfg)
	e.Step()
	if got, want := tr.Counts(), recount(e.Config(), spec); got != want {
		t.Fatalf("counts after SetStates+Step: %+v, recount %+v", got, want)
	}
}

func TestRunUntilConvergedMatchesPerStepScan(t *testing.T) {
	pred := func(cfg []counterState) bool {
		for _, s := range cfg {
			if s.count == 0 {
				return false
			}
		}
		return true
	}
	for _, n := range []int{2, 5, 16, 64} {
		tracked := NewEngine(DirectedRing(n), countTransition, xrand.New(uint64(n)))
		tracked.SetTracker(NewRingTracker(touchSpec()))
		gotStep, gotOK := tracked.RunUntilConverged(1 << 20)
		oracle := NewEngine(DirectedRing(n), countTransition, xrand.New(uint64(n)))
		wantStep, wantOK := oracle.RunUntil(pred, 1, 1<<20)
		if gotStep != wantStep || gotOK != wantOK {
			t.Fatalf("n=%d: tracked (%d, %v) vs per-step scan (%d, %v)",
				n, gotStep, gotOK, wantStep, wantOK)
		}
		if !gotOK {
			t.Fatalf("n=%d: no convergence", n)
		}
	}
}

func TestRunUntilConvergedRespectsMaxSteps(t *testing.T) {
	e := NewEngine(DirectedRing(4), countTransition, xrand.New(5))
	spec := touchSpec()
	spec.Converged = func(*LocalCounts, []counterState) bool { return false }
	e.SetTracker(NewRingTracker(spec))
	step, ok := e.RunUntilConverged(123)
	if ok || step != 123 || e.Steps() != 123 {
		t.Fatalf("impossible verdict: step=%d ok=%v engine=%d", step, ok, e.Steps())
	}
}

func TestRunUntilConvergedImmediate(t *testing.T) {
	e := NewEngine(DirectedRing(4), countTransition, xrand.New(6))
	spec := touchSpec()
	spec.Converged = func(*LocalCounts, []counterState) bool { return true }
	e.SetTracker(NewRingTracker(spec))
	if step, ok := e.RunUntilConverged(100); !ok || step != 0 {
		t.Fatalf("immediate verdict: step=%d ok=%v", step, ok)
	}
}

func TestRunUntilConvergedPanicsWithoutTracker(t *testing.T) {
	e := NewEngine(DirectedRing(4), countTransition, xrand.New(1))
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic without a tracker")
		}
	}()
	e.RunUntilConverged(10)
}

// TestRunUntilConvergedWithObserver pins the step-at-a-time fallback: an
// installed observer (the oracle protocols' census) must keep firing while
// the tracker judges convergence, with the identical arc stream.
func TestRunUntilConvergedWithObserver(t *testing.T) {
	pred := func(cfg []counterState) bool {
		for _, s := range cfg {
			if s.count == 0 {
				return false
			}
		}
		return true
	}
	tracked := NewEngine(DirectedRing(9), countTransition, xrand.New(21))
	calls := 0
	tracked.SetObserver(func(int, counterState, counterState) { calls++ })
	tracked.SetTracker(NewRingTracker(touchSpec()))
	gotStep, gotOK := tracked.RunUntilConverged(1 << 20)
	oracle := NewEngine(DirectedRing(9), countTransition, xrand.New(21))
	wantStep, wantOK := oracle.RunUntil(pred, 1, 1<<20)
	if gotStep != wantStep || gotOK != wantOK {
		t.Fatalf("observer path diverged: (%d, %v) vs (%d, %v)", gotStep, gotOK, wantStep, wantOK)
	}
	if uint64(calls) != 2*gotStep {
		t.Fatalf("observer fired %d times over %d steps", calls, gotStep)
	}
}

// TestSetStatesRecordsLeaderChange pins the fault-injection accounting
// fix: installing a configuration that changes the leader set must be
// recorded exactly like an interaction-driven change, so trials with
// mid-run bursts cannot report a pre-fault stabilization step.
func TestSetStatesRecordsLeaderChange(t *testing.T) {
	isLeader := func(s counterState) bool { return s.leader }
	e := NewEngine(DirectedRing(4), func(l, r counterState) (counterState, counterState) {
		return l, r // no-op protocol: only installs can change leaders
	}, xrand.New(9))
	e.TrackLeaders(isLeader)
	e.Run(10)
	if e.LeaderChanges() != 0 {
		t.Fatalf("no-op protocol changed leaders %d times", e.LeaderChanges())
	}

	// Same leader set: nothing recorded.
	e.SetStates(make([]counterState, 4))
	if e.LeaderChanges() != 0 || e.LastLeaderChange() != 0 {
		t.Fatalf("no-change install recorded: changes=%d last=%d", e.LeaderChanges(), e.LastLeaderChange())
	}

	// Leader set changes at step 10: recorded at the install step.
	cfg := make([]counterState, 4)
	cfg[2].leader = true
	e.SetStates(cfg)
	if e.LeaderChanges() != 1 || e.LastLeaderChange() != 10 {
		t.Fatalf("install not recorded: changes=%d last=%d", e.LeaderChanges(), e.LastLeaderChange())
	}
	if e.LeaderCount() != 1 {
		t.Fatalf("leader count %d after install", e.LeaderCount())
	}

	// Per-agent install: same contract.
	e.Run(5)
	e.SetState(2, counterState{})
	if e.LeaderChanges() != 2 || e.LastLeaderChange() != 15 {
		t.Fatalf("SetState not recorded: changes=%d last=%d", e.LeaderChanges(), e.LastLeaderChange())
	}
	e.SetState(2, counterState{count: 7}) // leader bit unchanged
	if e.LeaderChanges() != 2 {
		t.Fatal("no-change SetState recorded")
	}
}

// TestPendingDrawsKeepStreamSerial pins the no-desync contract: a tracked
// run that converges mid-batch buffers its unexecuted draws, so an engine
// that keeps running afterwards executes exactly the arc sequence a pure
// step-at-a-time engine with the same seed does.
func TestPendingDrawsKeepStreamSerial(t *testing.T) {
	tracked := NewEngine(DirectedRing(7), countTransition, xrand.New(13))
	tracked.SetTracker(NewRingTracker(touchSpec()))
	step, ok := tracked.RunUntilConverged(1 << 20)
	if !ok {
		t.Fatal("no convergence")
	}
	tracked.Run(500) // continue through RunBatch: drains the buffer first
	tracked.SetTracker(nil)
	for i := 0; i < 300; i++ { // and through Step
		tracked.Step()
	}

	serial := NewEngine(DirectedRing(7), countTransition, xrand.New(13))
	for i := uint64(0); i < step+800; i++ {
		serial.Step()
	}
	if tracked.Steps() != serial.Steps() {
		t.Fatalf("step counters diverged: %d vs %d", tracked.Steps(), serial.Steps())
	}
	a, b := tracked.Snapshot(), serial.Snapshot()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("agent %d diverged after continued use: %+v vs %+v", i, a[i], b[i])
		}
	}
}
