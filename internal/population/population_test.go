package population

import (
	"testing"

	"repro/internal/xrand"
)

// counterState is a trivial protocol state for engine tests: each agent
// counts its interactions, and the initiator hands its parity to the
// responder's lead bit.
type counterState struct {
	count  int
	leader bool
}

func countTransition(l, r counterState) (counterState, counterState) {
	l.count++
	r.count++
	r.leader = l.count%2 == 0
	return l, r
}

func TestDirectedRingTopology(t *testing.T) {
	topo := DirectedRing(5)
	if topo.N != 5 || len(topo.Arcs) != 5 {
		t.Fatalf("unexpected topology: N=%d arcs=%d", topo.N, len(topo.Arcs))
	}
	for i, a := range topo.Arcs {
		if int(a[0]) != i || int(a[1]) != (i+1)%5 {
			t.Fatalf("arc %d is %v", i, a)
		}
	}
}

func TestUndirectedRingTopology(t *testing.T) {
	topo := UndirectedRing(4)
	if topo.N != 4 || len(topo.Arcs) != 8 {
		t.Fatalf("unexpected topology: N=%d arcs=%d", topo.N, len(topo.Arcs))
	}
	// Every edge must appear in both directions.
	seen := make(map[Arc]bool, 8)
	for _, a := range topo.Arcs {
		seen[a] = true
	}
	for i := 0; i < 4; i++ {
		j := (i + 1) % 4
		if !seen[Arc{int32(i), int32(j)}] || !seen[Arc{int32(j), int32(i)}] {
			t.Fatalf("edge %d-%d missing a direction", i, j)
		}
	}
}

func TestTopologyPanics(t *testing.T) {
	tests := []struct {
		name string
		fn   func()
	}{
		{"directed n=1", func() { DirectedRing(1) }},
		{"undirected n=2", func() { UndirectedRing(2) }},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic")
				}
			}()
			tt.fn()
		})
	}
}

func TestStepAppliesTransitionToRandomArc(t *testing.T) {
	e := NewEngine(DirectedRing(8), countTransition, xrand.New(1))
	e.Run(1000)
	if e.Steps() != 1000 {
		t.Fatalf("Steps = %d, want 1000", e.Steps())
	}
	total := 0
	for i := 0; i < e.N(); i++ {
		total += e.State(i).count
	}
	if total != 2000 {
		t.Fatalf("total interaction count %d, want 2000 (2 per step)", total)
	}
}

func TestSchedulerUniformity(t *testing.T) {
	// Each agent of a directed n-ring participates in exactly 2 arcs, so
	// over many steps its interaction count should be ~2*steps/n.
	const (
		n     = 16
		steps = 160000
	)
	e := NewEngine(DirectedRing(n), countTransition, xrand.New(2))
	e.Run(steps)
	expected := float64(2*steps) / n
	for i := 0; i < n; i++ {
		c := float64(e.State(i).count)
		if c < 0.9*expected || c > 1.1*expected {
			t.Fatalf("agent %d interacted %v times, expected ~%v", i, c, expected)
		}
	}
}

func TestDeterministicRuns(t *testing.T) {
	run := func() []counterState {
		e := NewEngine(DirectedRing(6), countTransition, xrand.New(99))
		e.Run(5000)
		return e.Snapshot()
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("agent %d diverged across identical runs: %+v vs %+v", i, a[i], b[i])
		}
	}
}

func TestLeaderTracking(t *testing.T) {
	e := NewEngine(DirectedRing(4), countTransition, xrand.New(3))
	e.TrackLeaders(func(s counterState) bool { return s.leader })
	if e.LeaderCount() != 0 {
		t.Fatalf("initial leader count = %d", e.LeaderCount())
	}
	e.Run(200)
	// Recount from scratch and compare with the incremental counter.
	want := 0
	for i := 0; i < e.N(); i++ {
		if e.State(i).leader {
			want++
		}
	}
	if e.LeaderCount() != want {
		t.Fatalf("incremental leader count %d, recount %d", e.LeaderCount(), want)
	}
	if e.LeaderChanges() == 0 {
		t.Fatal("expected some leader-set changes in this protocol")
	}
	if e.LastLeaderChange() == 0 || e.LastLeaderChange() > e.Steps() {
		t.Fatalf("LastLeaderChange = %d out of range (steps=%d)", e.LastLeaderChange(), e.Steps())
	}
}

func TestRunUntil(t *testing.T) {
	e := NewEngine(DirectedRing(4), countTransition, xrand.New(4))
	pred := func(cfg []counterState) bool {
		total := 0
		for _, s := range cfg {
			total += s.count
		}
		return total >= 100
	}
	step, ok := e.RunUntil(pred, 7, 10000)
	if !ok {
		t.Fatal("predicate never held")
	}
	if !pred(e.Config()) {
		t.Fatal("predicate does not hold at reported step")
	}
	if step != e.Steps() {
		t.Fatalf("returned step %d != engine steps %d", step, e.Steps())
	}
	// total grows by exactly 2 per step, so it first reaches 100 at step 50;
	// with checkEvery=7 detection must occur within one check period.
	if step < 50 || step >= 50+7 {
		t.Fatalf("detected at step %d, want within [50, 57)", step)
	}
}

func TestRunUntilRespectsMaxSteps(t *testing.T) {
	e := NewEngine(DirectedRing(4), countTransition, xrand.New(5))
	step, ok := e.RunUntil(func([]counterState) bool { return false }, 10, 123)
	if ok {
		t.Fatal("impossible predicate reported true")
	}
	if step != 123 || e.Steps() != 123 {
		t.Fatalf("engine ran %d steps, want exactly 123", e.Steps())
	}
}

func TestRunUntilImmediate(t *testing.T) {
	e := NewEngine(DirectedRing(4), countTransition, xrand.New(6))
	step, ok := e.RunUntil(func([]counterState) bool { return true }, 10, 100)
	if !ok || step != 0 {
		t.Fatalf("immediate predicate: step=%d ok=%v", step, ok)
	}
}

func TestRunBatchMatchesStepLoop(t *testing.T) {
	// The batched fast path must replay the exact arc sequence and leader
	// accounting of the step-at-a-time path.
	isLeader := func(s counterState) bool { return s.leader }
	for _, steps := range []uint64{0, 1, 255, 256, 257, 5000} {
		serial := NewEngine(DirectedRing(9), countTransition, xrand.New(21))
		serial.TrackLeaders(isLeader)
		for i := uint64(0); i < steps; i++ {
			serial.Step()
		}
		batched := NewEngine(DirectedRing(9), countTransition, xrand.New(21))
		batched.TrackLeaders(isLeader)
		batched.RunBatch(steps)
		if serial.Steps() != batched.Steps() {
			t.Fatalf("steps=%d: step counters diverged: %d vs %d", steps, serial.Steps(), batched.Steps())
		}
		a, b := serial.Snapshot(), batched.Snapshot()
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("steps=%d: agent %d diverged: %+v vs %+v", steps, i, a[i], b[i])
			}
		}
		if serial.LeaderCount() != batched.LeaderCount() ||
			serial.LeaderChanges() != batched.LeaderChanges() ||
			serial.LastLeaderChange() != batched.LastLeaderChange() {
			t.Fatalf("steps=%d: leader accounting diverged", steps)
		}
	}
}

func TestRunBatchUntrackedMatchesStepLoop(t *testing.T) {
	serial := NewEngine(DirectedRing(7), countTransition, xrand.New(33))
	for i := 0; i < 4000; i++ {
		serial.Step()
	}
	batched := NewEngine(DirectedRing(7), countTransition, xrand.New(33))
	batched.RunBatch(4000)
	a, b := serial.Snapshot(), batched.Snapshot()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("agent %d diverged: %+v vs %+v", i, a[i], b[i])
		}
	}
}

func TestSetStateLazyRecount(t *testing.T) {
	e := NewEngine(DirectedRing(6), countTransition, xrand.New(1))
	e.TrackLeaders(func(s counterState) bool { return s.leader })
	// Install a configuration state-by-state after tracking is enabled: the
	// count must come out right even though no recount runs per SetState.
	for i := 0; i < e.N(); i++ {
		e.SetState(i, counterState{leader: i%2 == 0})
	}
	if got := e.LeaderCount(); got != 3 {
		t.Fatalf("LeaderCount after state-by-state install = %d, want 3", got)
	}
	// The incremental accounting must start from the recounted base.
	e.SetState(0, counterState{leader: false})
	e.Run(500)
	want := 0
	for i := 0; i < e.N(); i++ {
		if e.State(i).leader {
			want++
		}
	}
	if e.LeaderCount() != want {
		t.Fatalf("incremental count %d, recount %d", e.LeaderCount(), want)
	}
}

func TestApplyArcDeterministicSchedule(t *testing.T) {
	e := NewEngine(DirectedRing(4), countTransition, nil)
	e.ApplyArc(2) // interaction (u_2, u_3)
	if e.State(2).count != 1 || e.State(3).count != 1 {
		t.Fatalf("arc 2 did not touch agents 2,3: %+v", e.Snapshot())
	}
	if e.State(0).count != 0 || e.State(1).count != 0 {
		t.Fatalf("arc 2 touched wrong agents: %+v", e.Snapshot())
	}
}

func TestScheduleSeqR(t *testing.T) {
	got := ScheduleSeqR(5, 3, 4)
	want := []int{3, 4, 0, 1}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("ScheduleSeqR(5,3,4) = %v, want %v", got, want)
		}
	}
}

func TestScheduleSeqL(t *testing.T) {
	got := ScheduleSeqL(5, 1, 4)
	want := []int{0, 4, 3, 2}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("ScheduleSeqL(5,1,4) = %v, want %v", got, want)
		}
	}
}

func TestSeqRTouchesEveryAgent(t *testing.T) {
	const n = 7
	e := NewEngine(DirectedRing(n), countTransition, nil)
	e.ApplySchedule(ScheduleSeqR(n, 0, n))
	for i := 0; i < n; i++ {
		if e.State(i).count == 0 {
			t.Fatalf("agent %d untouched by seq_R(0,n)", i)
		}
	}
}

func TestObserver(t *testing.T) {
	e := NewEngine(DirectedRing(4), countTransition, xrand.New(8))
	touched := make(map[int]int)
	e.SetObserver(func(agent int, before, after counterState) {
		touched[agent]++
		if after.count != before.count+1 {
			t.Fatalf("observer saw inconsistent states: %+v -> %+v", before, after)
		}
	})
	e.Run(100)
	total := 0
	for _, c := range touched {
		total += c
	}
	if total != 200 {
		t.Fatalf("observer calls = %d, want 200", total)
	}
}

func TestSetStatesRejectsWrongLength(t *testing.T) {
	e := NewEngine(DirectedRing(4), countTransition, nil)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for wrong-length SetStates")
		}
	}()
	e.SetStates(make([]counterState, 3))
}

func BenchmarkEngineStep(b *testing.B) {
	e := NewEngine(DirectedRing(256), countTransition, xrand.New(1))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Step()
	}
}

func BenchmarkEngineStepTracked(b *testing.B) {
	e := NewEngine(DirectedRing(256), countTransition, xrand.New(1))
	e.TrackLeaders(func(s counterState) bool { return s.leader })
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Step()
	}
}
