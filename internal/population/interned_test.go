package population

import (
	"testing"

	"repro/internal/xrand"
)

func TestInternerCap(t *testing.T) {
	in := NewInterner[int](3)
	for i := 0; i < 3; i++ {
		id, ok := in.Intern(i * 10)
		if !ok || id != uint32(i) {
			t.Fatalf("intern %d: got (%d, %v)", i, id, ok)
		}
	}
	// Re-interning existing states never fails, even at the cap.
	if id, ok := in.Intern(10); !ok || id != 1 {
		t.Fatalf("re-intern: got (%d, %v)", id, ok)
	}
	if _, ok := in.Intern(99); ok {
		t.Fatal("minting past the cap succeeded")
	}
	if in.Len() != 3 {
		t.Fatalf("cap overflow changed the interner: len %d", in.Len())
	}
	for i := 0; i < 3; i++ {
		if got := in.Value(uint32(i)); got != i*10 {
			t.Fatalf("Value(%d) = %d", i, got)
		}
	}
}

// TestPairTableTiers drives a pair table through dense growth and the
// dense→hashed migration, checking that every memoized value survives each
// re-layout.
func TestPairTableTiers(t *testing.T) {
	const denseMax = 64
	tab := newPairTable(denseMax)
	type cell struct{ l, r uint32 }
	want := map[cell]uint64{}
	states := 1
	put := func(l, r uint32, v uint64) {
		if int(l) >= states {
			states = int(l) + 1
		}
		if int(r) >= states {
			states = int(r) + 1
		}
		tab.put(l, r, v, states)
		want[cell{l, r}] = v
	}
	// Dense tier, growing stride several times.
	for i := uint32(0); i < 100; i++ {
		put(i, (i*7+3)%100, uint64(i)+1)
	}
	// 100 states > denseMax: the table must have migrated to hashing.
	if tab.stride != 0 || tab.slab == nil {
		t.Fatalf("table still dense at %d states (stride %d)", states, tab.stride)
	}
	// Keep inserting through hash growth.
	for i := uint32(100); i < 3000; i++ {
		put(i%500, i, uint64(i)<<20|42)
	}
	for c, v := range want {
		got, ok := tab.get(c.l, c.r)
		if !ok {
			t.Fatalf("(%d,%d) lost", c.l, c.r)
		}
		if got&^pairPresent != v {
			t.Fatalf("(%d,%d) = %#x, want %#x", c.l, c.r, got&^pairPresent, v)
		}
	}
	if _, ok := tab.get(400, 77); ok {
		t.Fatal("phantom entry")
	}
}

// toySpec is a RingSpec over uint16 states for engine-level tests: agents
// are "settled" when their low byte is zero; convergence is everyone
// settled (never reached under toyTrans, which is fine — the tests compare
// trajectories and non-hitting runs).
func toySpec() RingSpec[uint16] {
	return RingSpec[uint16]{
		ArcMask: func(l, r uint16) uint8 {
			if l == r {
				return 1
			}
			return 0
		},
		AgentMask: func(s uint16) uint8 {
			if s&0xff == 0 {
				return 1
			}
			return 0
		},
		Converged: func(c *LocalCounts, cfg []uint16) bool {
			return c.Agent[0] == len(cfg)
		},
		ArcNames:   []string{"equal_pairs"},
		AgentNames: []string{"settled"},
	}
}

// toyTrans wanders through a large state space so a small interner cap is
// exceeded mid-run (and, with a roomy cap, the adaptive reuse guard bails
// on the never-repeating pairs).
func toyTrans(l, r uint16) (uint16, uint16) {
	return l + 1, r + l*3 + 7
}

// toyReuseTrans cycles within 23 states, the regime interning is for: the
// pair tables warm up within the reuse guard's first window and the run
// stays interned.
func toyReuseTrans(l, r uint16) (uint16, uint16) {
	return (l + 1) % 23, (r + l*3 + 7) % 23
}

// toyBailTrans cycles within 251 states but mixes through its ~63k ordered
// pairs nearly uniformly, so once every state has been minted the pair
// tables keep missing with no new states to show for it — the regime the
// adaptive reuse guard bails on (unlike toyTrans's endless minting, which
// the guard must treat as productive cold fill and leave alone until the
// capacity cap has its say).
func toyBailTrans(l, r uint16) (uint16, uint16) {
	return (l*5 + r*3 + 1) % 251, (r*7 + l + 2) % 251
}

func toyLeader(s uint16) bool { return s%5 == 0 }

func newToyPairTrans(n int, seed uint64, cap int, trans Transition[uint16]) (*Engine[uint16], *InternedEngine[uint16]) {
	mk := func() *Engine[uint16] {
		e := NewEngine(DirectedRing(n), trans, xrand.New(seed))
		cfg := make([]uint16, n)
		for i := range cfg {
			cfg[i] = uint16(i * 11)
		}
		e.SetStates(cfg)
		e.TrackLeaders(toyLeader)
		return e
	}
	gen := mk()
	ie := mk()
	acc := NewInterned(ie, toySpec(), nil, NewRingTracker(toySpec()), InternOptions{MaxStates: cap})
	return gen, acc
}

func newToyPair(n int, seed uint64, cap int) (*Engine[uint16], *InternedEngine[uint16]) {
	return newToyPairTrans(n, seed, cap, toyTrans)
}

func assertEnginesEqual(t *testing.T, gen *Engine[uint16], ie *Engine[uint16], ctx string) {
	t.Helper()
	if gen.Steps() != ie.Steps() {
		t.Fatalf("%s: steps %d vs %d", ctx, gen.Steps(), ie.Steps())
	}
	if gen.LeaderCount() != ie.LeaderCount() || gen.LeaderChanges() != ie.LeaderChanges() || gen.LastLeaderChange() != ie.LastLeaderChange() {
		t.Fatalf("%s: leader accounting diverged: (%d,%d,%d) vs (%d,%d,%d)", ctx,
			gen.LeaderCount(), gen.LeaderChanges(), gen.LastLeaderChange(),
			ie.LeaderCount(), ie.LeaderChanges(), ie.LastLeaderChange())
	}
	a, b := gen.Snapshot(), ie.Snapshot()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("%s: agent %d state %d vs %d", ctx, i, a[i], b[i])
		}
	}
}

// TestInternedRunMatchesGenericRun pins the interned Run loop to the
// generic engine on the same seed, across every fallback flavor — tiny cap
// (capacity fallback mid-run, including mid-batch), roomy cap with a
// state space still being minted (cold fill: the guard must not bail),
// roomy cap with a bounded state space whose pairs never warm up
// (adaptive reuse bail-out), and a reusing state space (stays interned):
// no flavor may lose, repeat or reorder a single drawn arc.
func TestInternedRunMatchesGenericRun(t *testing.T) {
	cases := []struct {
		name       string
		cap        int
		trans      Transition[uint16]
		wantIntern bool
	}{
		{"capacity-fallback", 8, toyTrans, false},
		{"mid-cap", 64, toyTrans, false},
		{"cold-fill", 1 << 20, toyTrans, true},
		{"reuse-bail", 1 << 20, toyBailTrans, false},
		{"stays-interned", 1 << 20, toyReuseTrans, true},
	}
	for _, tc := range cases {
		gen, acc := newToyPairTrans(16, 7, tc.cap, tc.trans)
		gen.Run(10_000)
		acc.Run(10_000)
		assertEnginesEqual(t, gen, acc.Engine, tc.name+": after Run")
		if acc.Interned() != tc.wantIntern {
			t.Fatalf("%s: Interned() = %v, want %v", tc.name, acc.Interned(), tc.wantIntern)
		}
		// Chunked continuation must stay on the same stream.
		for i := 0; i < 5; i++ {
			gen.Run(333)
			acc.Run(333)
		}
		assertEnginesEqual(t, gen, acc.Engine, tc.name+": after chunked Run")
	}
}

// TestInternedSetStatesReinterns pins install handling: a SetStates (and a
// SetState) between interned runs must re-intern the configuration and
// keep the install-time leader-change recording identical to the generic
// engine.
func TestInternedSetStatesReinterns(t *testing.T) {
	gen, acc := newToyPair(12, 3, 1<<20)
	gen.Run(1000)
	acc.Run(1000)
	burst := gen.Snapshot()
	for i := 0; i < 4; i++ {
		burst[i*3] = uint16(40000 + i) // includes fresh, never-interned states
	}
	gen.SetStates(burst)
	acc.Engine.SetStates(burst)
	gen.SetState(5, 12345)
	acc.Engine.SetState(5, 12345)
	assertEnginesEqual(t, gen, acc.Engine, "after installs")
	gen.Run(5000)
	acc.Run(5000)
	assertEnginesEqual(t, gen, acc.Engine, "after post-install Run")
}

// TestInternedObserverDelegationInvalidatesMirror pins the mirror across
// observer-forced generic delegation: a pure protocol with an observer
// runs generically (states advance past the ID mirror), and a later
// interned run after the observer is removed must re-intern the current
// configuration instead of resuming from stale IDs.
func TestInternedObserverDelegationInvalidatesMirror(t *testing.T) {
	gen, acc := newToyPairTrans(12, 9, 1<<20, toyReuseTrans)
	gen.Run(2000)
	acc.Run(2000) // interned; builds the ID mirror
	obs := func(int, uint16, uint16) {}
	gen.SetObserver(obs)
	acc.Engine.SetObserver(obs)
	gen.Run(1000)
	acc.Run(1000) // observer + env==nil: delegated to the generic engine
	gen.SetObserver(nil)
	acc.Engine.SetObserver(nil)
	gen.Run(2000)
	acc.Run(2000) // interned again: must see the post-delegation states
	assertEnginesEqual(t, gen, acc.Engine, "after observer delegation round-trip")
}

// TestInternedEnvFallbackKeepsCounters is the regression test for the
// capacity fallback of an EnvSpec protocol: the interaction that trips
// the cap is executed generically, and it must dispatch the engine
// observer (the census maintainer of the generic path) so the oracle
// counters never miss a delta — the generic and interned engines must
// agree on the counter and the trajectory across the fallback boundary.
func TestInternedEnvFallbackKeepsCounters(t *testing.T) {
	// A toy oracle protocol: the environment is "some agent state is even"
	// (sign of a global even-state counter), and the transition's low bit
	// depends on it, so a counter desync changes trajectories.
	type runner struct {
		even int
	}
	mk := func() (*Engine[uint16], *runner) {
		ru := &runner{}
		trans := func(l, r uint16) (uint16, uint16) {
			bump := uint16(1)
			if ru.even == 0 {
				bump = 2
			}
			return l + bump, r + l*3 + 7
		}
		e := NewEngine(DirectedRing(12), trans, xrand.New(5))
		e.SetObserver(func(_ int, before, after uint16) {
			if before%2 == 0 {
				ru.even--
			}
			if after%2 == 0 {
				ru.even++
			}
		})
		cfg := make([]uint16, 12)
		for i := range cfg {
			cfg[i] = uint16(i * 13)
		}
		e.SetStates(cfg)
		for _, s := range cfg {
			if s%2 == 0 {
				ru.even++
			}
		}
		e.TrackLeaders(toyLeader)
		return e, ru
	}
	btoi := func(b bool) uint32 {
		if b {
			return 1
		}
		return 0
	}
	gen, genRu := mk()
	ie, ieRu := mk()
	env := &EnvSpec[uint16]{
		Keys: 2,
		Key: func() uint32 {
			if ieRu.even > 0 {
				return 1
			}
			return 0
		},
		Delta: func(lb, rb, la, ra uint16) uint32 {
			d := int(btoi(la%2 == 0)) - int(btoi(lb%2 == 0)) +
				int(btoi(ra%2 == 0)) - int(btoi(rb%2 == 0))
			return uint32(d + 2)
		},
		Apply: func(d uint32) { ieRu.even += int(d) - 2 },
	}
	// A cap of 40 forces the capacity fallback within the run.
	acc := NewInterned(ie, toySpec(), env, NewRingTracker(toySpec()), InternOptions{MaxStates: 40})
	gen.Run(5000)
	acc.Run(5000)
	if acc.Interned() {
		t.Fatal("cap 40 did not force fallback")
	}
	if genRu.even != ieRu.even {
		t.Fatalf("oracle counter desynced across fallback: generic %d vs interned %d", genRu.even, ieRu.even)
	}
	assertEnginesEqual(t, gen, acc.Engine, "env fallback")
}

// TestInternedRunUntilConvergedMatches pins the interned convergence loop
// (mirrored tracker, witness-free toy spec) to the generic tracked engine:
// same non-hit at the budget, same counts sampled, and identical
// trajectories across a fallback boundary.
func TestInternedRunUntilConvergedMatches(t *testing.T) {
	for _, cap := range []int{16, 1 << 20} {
		gen, acc := newToyPair(8, 11, cap)
		gen.SetTracker(NewRingTracker(toySpec()))
		genStep, genOK := gen.RunUntilConverged(4000)
		intStep, intOK := acc.RunUntilConverged(4000)
		if genStep != intStep || genOK != intOK {
			t.Fatalf("cap %d: converged (%d,%v) vs (%d,%v)", cap, genStep, genOK, intStep, intOK)
		}
		assertEnginesEqual(t, gen, acc.Engine, "after RunUntilConverged")
		genCounts := map[string]float64{}
		intCounts := map[string]float64{}
		gtr := NewRingTracker(toySpec())
		gtr.Reset(gen.Config())
		gtr.SampleCounts(genCounts)
		acc.SampleCounts(intCounts)
		for k, v := range genCounts {
			if intCounts[k] != v {
				t.Fatalf("cap %d: channel %q = %v vs %v", cap, k, intCounts[k], v)
			}
		}
	}
}
