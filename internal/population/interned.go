package population

// The interned execution layer: an Engine wrapper that replays interactions
// as table loads. States are interned into dense uint32 IDs (intern.go) —
// through a packed-state open-addressed table when the protocol provides a
// PackedCodec, through a Go map otherwise — the pairwise transition is
// memoized per (idL, idR) — per environment key for oracle protocols — and
// the memo entry carries everything the engine's bookkeeping needs
// precomputed: the successor IDs, whether the interaction is a no-op,
// whether the leader set changed and by how much, the arc mask of the
// successor pair, and the transition's effect on the oracle's backing
// counters. Convergence tracking is mirrored at the ID level too: per-ID
// agent masks replace the AgentMask closure, the interaction arc's mask
// comes fused out of the memo entry, and specs that provide the MetaID
// acceleration evaluate their residual over a per-ID table of packed meta
// words instead of the configuration structs.
//
// All memoized state lives in a Tables value, which any number of engines
// may share — the lockstep lanes of lanes.go run k same-cell trials
// against one warm table set. Sharing is single-goroutine: a Tables must
// only ever be touched from one goroutine at a time.
//
// The layer is a pure accelerator: arc draws use the same batched RNG
// stream (including the engine's pending-draw buffer and any installed
// ArcScheduler — biased and eclipse draws intern exactly like uniform
// ones, since the distribution only picks arcs; stuck-agent masks are the
// one dynamics feature that forces the generic path), the step counter,
// leader accounting, leader hook, tracker counts, witness caching and
// hitting times are bit-for-bit identical to the generic path, and when the
// interner's capacity cap is exceeded mid-run the engine falls back to the
// generic path transparently — the already-drawn arc is executed
// generically, remaining pre-drawn arcs stay pending, and the run continues
// on the exact same scheduler stream.

// EnvSpec adapts a protocol whose transition reads a small global
// environment derived from global counters — the Fischer–Jiang Ω? oracle
// view, the Chen–Chen flag census — to the interned layer. The transition
// must depend on the environment only through Key (a small dense key), and
// its effect on the environment's backing counters must be expressible as
// a per-transition delta: the interned hot path calls Apply(delta) instead
// of dispatching the engine observer that maintains the counters on the
// generic path, so Delta/Apply must replicate that observer exactly.
type EnvSpec[S any] struct {
	// Keys is the number of distinct environment keys; one transition table
	// is kept per key.
	Keys int
	// Key returns the current environment key in [0, Keys).
	Key func() uint32
	// Delta encodes the transition's effect on the environment's backing
	// counters in at most 11 bits (the memo entry's spare field). It must
	// be a pure function of the four states — this is what lets lockstep
	// lanes share one table set across trials whose live counters differ.
	Delta func(lb, rb, la, ra S) uint32
	// Apply applies an encoded delta to the backing counters.
	Apply func(delta uint32)
}

// InternOptions tunes the interned layer's capacity caps.
type InternOptions struct {
	// MaxStates caps the interner; once an execution needs more distinct
	// states the engine permanently falls back to the generic path.
	// 0 selects DefaultMaxStates; values above MaxInternStates are
	// rejected by NewTables (memo entries pack successor IDs into
	// idBits-wide fields).
	MaxStates int
	// DenseStates caps the dense table tier; beyond it pair tables switch
	// to hashing (see pairTable). 0 selects DefaultDenseStates.
	DenseStates int
}

const (
	// DefaultMaxStates is the interner's hard ID ceiling: the cap is a
	// memory backstop, not a reuse heuristic — tables grow lazily with the
	// pairs actually seen, and runs that keep missing the tables without
	// minting new states are cut off by the adaptive reuse guard long
	// before the cap matters. The full ceiling is the default because the
	// O(n)-state protocols genuinely use it: one P_PL trial at n = 1024
	// interns ~230n states, and lockstep lanes sharing one table set push
	// past 2^18 (a tighter historical default that silently felled lane
	// batches back to the generic path). Callers can lower it through
	// InternOptions or Scenario.MaxStates.
	DefaultMaxStates = MaxInternStates
	// DefaultDenseStates keeps the dense tier's stride² array at or below
	// 512² entries (2 MiB) and its growth re-layouts cheap; past it pair
	// tables migrate to the open-addressed hashed tier, whose memory
	// tracks the pairs actually seen instead of the square of the state
	// count.
	DefaultDenseStates = 512
	// MaxInternStates is the hard ceiling on InternOptions.MaxStates: memo
	// entries address successor states in idBits-wide fields.
	MaxInternStates = 1 << idBits
)

// Adaptive reuse guard: interning only pays when (state, state) pairs
// repeat, i.e. when the reachable state space is small relative to the
// run — the poly-log regime. A run that keeps missing the tables pays the
// full transition PLUS the memoization on every step, so after
// adaptStrikes consecutive windows of adaptWindow steps with more than
// 1-in-adaptMissDiv misses AND no newly minted states the engine falls
// back to the generic path, exactly as it does when the capacity cap is
// hit. The no-new-states condition is what distinguishes hopeless
// wandering from the productive cold fill of a large-but-bounded state
// space (P_PL at n = 1024 interns ~230k states over its first million
// steps — every one of those windows mints states and must not strike).
// The guard reads only deterministic per-run counters, so whether a given
// seed's run interns or falls back is reproducible — and either way
// bit-identical.
const (
	adaptWindow  = 2048
	adaptMissDiv = 4 // bail threshold: more than window/4 misses
	adaptStrikes = 3
)

// prefetchDepth is how many pending draws ahead the run loops touch the
// pair-table lines of upcoming interactions (see pairTable.prefetch). On
// O(n)-state protocols the hashed tier outgrows every cache level the core
// owns, so a depth-1 touch starts the miss only one step's work (~tens of
// cycles) before the demand load needs it; issuing the touch a few steps
// early hides the full latency. The prefetch uses the pre-interaction IDs
// of the target agents, so a deeper window is wrong only when one of them
// interacts in the meantime (~2·depth·2/n of steps at ring degree 2) —
// those degrade to one wasted load.
const prefetchDepth = 4

// Memo-entry layout (pairTable values): successor IDs in the low 40 bits,
// then a no-op flag (successors identical to the pre-states — the entry
// advances the step counter and nothing else), a 3-bit leader-change field
// (0 = leader set unchanged; otherwise the count delta biased by +3), the
// fused ArcMask of the successor pair, and the EnvSpec delta. Bit 63 is
// the pairTable present flag.
const (
	idBits          = 20
	idMask          = 1<<idBits - 1
	flagNoop        = uint64(1) << 40
	leaderInfoShift = 41 // 3 bits: 0 = unchanged, else delta = info - 3
	arcMaskShift    = 44 // 8 bits: ArcMask(la, ra) of the successor pair
	envDeltaShift   = 52 // 11 bits, EnvSpec.Delta encoding
	envDeltaMask    = 1<<11 - 1
)

// Accelerator is the state-type-free face of an InternedEngine, which is
// what the protocol wiring stores next to its generic engine.
type Accelerator interface {
	// Run executes exactly steps scheduler steps (interned when possible).
	Run(steps uint64)
	// RunUntilConverged runs to the spec's convergence with exact hitting
	// times, mirroring Engine.RunUntilConverged.
	RunUntilConverged(maxSteps uint64) (uint64, bool)
	// SampleCounts exports the named tracker channel counts, exactly as the
	// generic RingTracker's CountSampler would.
	SampleCounts(dst map[string]float64)
	// Interned reports whether the layer is still interning (false once the
	// capacity cap forced the generic fallback).
	Interned() bool
}

// Tables is the shared, engine-independent half of the interned layer: the
// state interner, the memoized per-key transition tables, and the per-ID
// metadata (leader bits, agent masks, MetaID words). One Tables serves any
// number of engines of the same protocol — the lockstep lanes share one —
// as long as all use is single-goroutine and every attached engine runs
// the same transition, leader predicate and spec the tables were built
// for.
type Tables[S comparable] struct {
	spec     RingSpec[S]
	isLeader func(S) bool
	envKeys  int
	envDelta func(lb, rb, la, ra S) uint32

	in    *Interner[S]
	trans []pairTable

	leaderBit []bool   // per ID: isLeader
	amask     []uint8  // per ID: RingSpec.AgentMask
	rmeta     []uint64 // per ID: RingSpec.MetaID, when provided

	denseStates int
}

// NewTables builds an empty table set for the spec. codec, when non-nil,
// switches the interner to the packed open-addressed mode; isLeader is the
// leader predicate of the attached engines (nil when they do not track
// leaders); env supplies the environment-key count and transition delta of
// oracle protocols (only Keys and Delta are read — Key and Apply are
// per-engine and belong to AttachInterned). It panics on a capacity cap
// beyond MaxInternStates rather than silently truncating successor IDs.
func NewTables[S comparable](spec RingSpec[S], isLeader func(S) bool, codec *PackedCodec[S], env *EnvSpec[S], opts InternOptions) *Tables[S] {
	if opts.MaxStates <= 0 {
		opts.MaxStates = DefaultMaxStates
	}
	if opts.MaxStates > MaxInternStates {
		panic("population: InternOptions.MaxStates exceeds MaxInternStates")
	}
	if opts.DenseStates <= 0 {
		opts.DenseStates = DefaultDenseStates
	}
	t := &Tables[S]{
		spec:        spec,
		isLeader:    isLeader,
		envKeys:     1,
		denseStates: opts.DenseStates,
	}
	if env != nil {
		if env.Keys < 1 || env.Delta == nil {
			panic("population: EnvSpec needs Keys >= 1 and Delta")
		}
		t.envKeys, t.envDelta = env.Keys, env.Delta
	}
	if codec != nil {
		t.in = NewPackedInterner(*codec, opts.MaxStates)
	} else {
		t.in = NewInterner[S](opts.MaxStates)
	}
	t.trans = make([]pairTable, t.envKeys)
	for i := range t.trans {
		t.trans[i] = newPairTable(opts.DenseStates)
	}
	return t
}

// States returns the number of distinct states interned so far.
func (t *Tables[S]) States() int { return t.in.Len() }

// Pairs returns the number of distinct (state, state) interaction pairs
// memoized so far, across every environment-keyed table — with States, the
// size diagnostic behind the docs' table-memory figures.
func (t *Tables[S]) Pairs() int {
	total := 0
	for i := range t.trans {
		total += t.trans[i].used
	}
	return total
}

// syncIDMeta extends the per-ID precomputed leader bits, agent masks and
// meta words to cover newly minted IDs.
func (t *Tables[S]) syncIDMeta() {
	for id := len(t.amask); id < t.in.Len(); id++ {
		s := t.in.vals[id]
		t.leaderBit = append(t.leaderBit, t.isLeader != nil && t.isLeader(s))
		var m uint8
		if t.spec.AgentMask != nil {
			m = t.spec.AgentMask(s)
		}
		t.amask = append(t.amask, m)
		if t.spec.MetaID != nil {
			t.rmeta = append(t.rmeta, t.spec.MetaID(s))
		}
	}
}

// InternedEngine wraps an Engine with the interned execution layer. It
// shares the engine's state slice, RNG, step counter and leader accounting;
// only the inner loop differs.
type InternedEngine[S comparable] struct {
	*Engine[S]
	tab     *Tables[S]
	shared  bool // tab is shared with other engines (lanes); fall must not free it
	env     *EnvSpec[S]
	generic ConvergenceTracker[S]

	ids   []uint32 // per-agent interned ID, mirror of Engine.states
	idsOK bool
	idGen uint64 // Engine.installGen the mirror was built at

	// RingTracker mirror at the ID level. ameta mirrors the per-agent
	// MetaID words (spec.MetaID specs only): ameta[i] = rmeta[ids[i]],
	// maintained through the writebacks so arc masks and the residual load
	// one flat word per agent instead of dereferencing the ID table.
	arcBits   []uint8
	agentBits []uint8
	ameta     []uint64
	counts    LocalCounts
	mirrorOK  bool
	wc        witnessCache

	// Adaptive reuse guard counters (see adaptWindow).
	winSteps  int
	winMisses int
	winBase   int // interner size at the window start
	strikes   int

	// lazyStates marks a run loop where the ID mirror is authoritative and
	// the per-step Engine.states writeback is skipped: each applied
	// interaction would otherwise load two states out of the interner's
	// value array (random accesses into an array that outgrows cache on
	// O(n)-state protocols) and struct-copy them into the configuration,
	// which nothing reads before the loop exits. settle() rematerializes
	// the configuration from the IDs at every loop exit — convergence,
	// budget exhaustion, capacity or reuse fallback — so outside run loops
	// Engine.states is always current. Only set by loops whose verdicts run
	// entirely at the ID level (see lazyOn).
	lazyStates bool

	fellBack bool
}

// applyInterned outcomes.
const (
	stepApplied = iota // interaction executed through the tables
	stepNoop           // interaction executed; it changed no state
	stepFell           // capacity fallback; interaction executed generically
)

// NewInterned attaches a private interned layer to e: a fresh Tables built
// from spec and env (no codec — callers with a PackedCodec build their
// Tables explicitly and use AttachInterned), serving this one engine. spec
// is the same RingSpec the generic tracker uses; generic is the tracker
// installed on capacity fallback; env adapts oracle protocols and is nil
// for pure pairwise transitions.
func NewInterned[S comparable](e *Engine[S], spec RingSpec[S], env *EnvSpec[S], generic ConvergenceTracker[S], opts InternOptions) *InternedEngine[S] {
	return AttachInterned(e, NewTables(spec, e.isLeader, nil, env, opts), env, generic)
}

// AttachInterned attaches the interned layer to e against an existing
// (possibly shared, possibly warm) table set. env must agree with the one
// the tables were built from: nil for pure pairwise transitions, else the
// same Keys/Delta with this engine's live Key/Apply. When env is nil and
// an observer is installed on e, every run delegates to the generic path —
// observation means per-interaction dispatch the interned loop does not
// do. When env is non-nil, the engine's observer is by contract the
// env-counter maintainer and is replaced by EnvSpec.Apply on the interned
// path. The engine's leader predicate must be the one the tables were
// built with (per-ID leader bits are shared).
func AttachInterned[S comparable](e *Engine[S], t *Tables[S], env *EnvSpec[S], generic ConvergenceTracker[S]) *InternedEngine[S] {
	if (env == nil) != (t.envDelta == nil) {
		panic("population: AttachInterned env does not match the tables' EnvSpec")
	}
	if env != nil {
		if env.Keys != t.envKeys || env.Key == nil || env.Apply == nil {
			panic("population: AttachInterned env needs the tables' Keys and live Key/Apply")
		}
	}
	if (e.isLeader == nil) != (t.isLeader == nil) {
		panic("population: AttachInterned engine leader tracking does not match the tables")
	}
	return &InternedEngine[S]{Engine: e, tab: t, env: env, generic: generic}
}

// Interned implements Accelerator.
func (g *InternedEngine[S]) Interned() bool { return !g.fellBack }

// States returns the number of distinct states interned so far (0 after
// fallback) — a diagnostic for tests and benchmarks.
func (g *InternedEngine[S]) States() int {
	if g.fellBack {
		return 0
	}
	return g.tab.in.Len()
}

// prepare readies the interned path: leaders recounted, the ID mirror
// rebuilt if states were installed since it was last valid. It reports
// false when the run must take the generic path instead (fallback already
// happened, an observer or tracker demands per-interaction dispatch, or
// re-interning overflowed the cap).
func (g *InternedEngine[S]) prepare() bool {
	if g.fellBack {
		return false
	}
	e := g.Engine
	if e.observer != nil && g.env == nil {
		return false
	}
	if e.tracker != nil {
		// An engine-level tracker means someone (a fallback, a direct
		// SetTracker) wants per-interaction updates the interned loop does
		// not dispatch; its own convergence runs use the ID-level mirror
		// instead.
		return false
	}
	if e.frozen != nil {
		// Stuck agents make the transition site-dependent — a frozen
		// agent's successor is its pre-state regardless of the pair — and
		// the memo tables are keyed on state pairs alone, so interning
		// would replay the unfrozen dynamics. The generic path applies
		// the freeze mask per interaction.
		return false
	}
	if e.leaderDirty {
		e.recountLeaders()
	}
	if !g.idsOK || g.idGen != e.installGen {
		if !g.reintern() {
			return false
		}
	}
	return true
}

// reintern rebuilds the per-agent ID mirror from the engine's states.
func (g *InternedEngine[S]) reintern() bool {
	e := g.Engine
	if len(g.ids) != e.topo.N {
		// First build, or a churn install changed the agent count.
		g.ids = make([]uint32, e.topo.N)
	}
	for i, s := range e.states {
		id, ok := g.tab.in.Intern(s)
		if !ok {
			g.fall()
			return false
		}
		g.ids[i] = id
	}
	g.tab.syncIDMeta()
	g.idsOK, g.idGen = true, e.installGen
	g.mirrorOK = false
	return true
}

// fall abandons the interned layer permanently for this engine, releasing
// its per-engine mirrors — and the tables too, unless they are shared with
// other lanes that may still be interning.
func (g *InternedEngine[S]) fall() {
	g.fellBack = true
	g.ids = nil
	g.idsOK = false
	g.arcBits, g.agentBits, g.ameta = nil, nil, nil
	g.mirrorOK = false
	if !g.shared {
		g.tab = nil
	}
}

// fill computes, interns and memoizes the transition of (idL, idR) under
// env key. ok is false when interning a successor would exceed the cap.
func (g *InternedEngine[S]) fill(key uint32, idL, idR uint32) (uint64, bool) {
	t := g.tab
	lb, rb := t.in.vals[idL], t.in.vals[idR]
	la, ra := g.Engine.trans(lb, rb)
	l2, ok := t.in.Intern(la)
	if !ok {
		return 0, false
	}
	r2, ok := t.in.Intern(ra)
	if !ok {
		return 0, false
	}
	t.syncIDMeta()
	v := uint64(l2) | uint64(r2)<<idBits
	if l2 == idL && r2 == idR {
		v |= flagNoop
	}
	if t.isLeader != nil {
		delta := 0
		changed := false
		if was, is := t.leaderBit[idL], t.leaderBit[l2]; was != is {
			changed = true
			if is {
				delta++
			} else {
				delta--
			}
		}
		if was, is := t.leaderBit[idR], t.leaderBit[r2]; was != is {
			changed = true
			if is {
				delta++
			} else {
				delta--
			}
		}
		if changed {
			v |= uint64(delta+3) << leaderInfoShift
		}
	}
	if t.spec.ArcMask != nil {
		v |= uint64(t.spec.ArcMask(la, ra)) << arcMaskShift
	}
	if t.envDelta != nil {
		v |= uint64(t.envDelta(lb, rb, la, ra)&envDeltaMask) << envDeltaShift
	}
	t.trans[key].put(idL, idR, v, t.in.Len())
	return v, true
}

// applyInterned executes one interaction on the arc (li, ri) through the
// memo tables, maintaining everything Engine.applyPair does. When mirror
// is set the tracker mirror is kept in sync too. It reports stepFell after
// a capacity fallback, in which case the interaction has been executed
// generically instead (with the generic tracker installed first when
// mirror was requested, so its Reset precedes and its Update covers the
// interaction); stepNoop when the memoized interaction changes no state —
// then only the step counter advanced, which is all the bookkeeping an
// identity transition requires.
func (g *InternedEngine[S]) applyInterned(li, ri int32, mirror bool) int {
	e := g.Engine
	t := g.tab
	idL, idR := g.ids[li], g.ids[ri]
	var key uint32
	if g.env != nil {
		key = g.env.Key()
	}
	pt := &t.trans[key]
	var v uint64
	var ok bool
	if pt.slab != nil {
		// Hand-inlined front-cache fast path of pairTable.get: on hashed-
		// tier protocols the lookup runs every step, and the common case —
		// one hash, one compare against an L2-resident line — is too hot to
		// pay a call for.
		pk := uint64(idL)<<32 | uint64(idR)
		h := pairHash(pk)
		if ci := 2 * (h & (frontSlots - 1)); pt.front[ci] == pk {
			v, ok = pt.front[ci+1], true
		} else {
			v, ok = pt.getHashed(pk, h)
		}
	} else {
		v, ok = pt.get(idL, idR)
	}
	if !ok {
		g.winMisses++
		if v, ok = g.fill(key, idL, idR); !ok {
			g.settle() // the generic continuation reads Engine.states
			g.fall()
			if mirror {
				e.SetTracker(g.generic)
			}
			lb, rb := e.states[li], e.states[ri]
			e.applyPair(li, ri, lb, rb)
			if e.observer != nil {
				// The generic continuation maintains oracle counters through
				// the engine observer, so the triggering interaction must
				// dispatch it exactly as applyArc would — otherwise an
				// EnvSpec protocol's census would permanently miss this one
				// delta. (Pure protocols with observers never reach here:
				// prepare() routes them to the generic path up front.)
				e.observer(int(li), lb, e.states[li])
				e.observer(int(ri), rb, e.states[ri])
			}
			return stepFell
		}
	}
	g.winSteps++
	if v&flagNoop != 0 {
		// Identity transition: no state, leader, env or tracker effect.
		// (The env delta of an identity transition encodes "no counter
		// change" by the EnvSpec contract, so Apply is skipped too.)
		e.step++
		return stepNoop
	}
	l2 := uint32(v) & idMask
	r2 := uint32(v>>idBits) & idMask
	if !g.lazyStates {
		e.states[li] = t.in.vals[l2]
		e.states[ri] = t.in.vals[r2]
	}
	g.ids[li], g.ids[ri] = l2, r2
	e.step++
	if g.env != nil {
		g.env.Apply(uint32(v>>envDeltaShift) & envDeltaMask)
	}
	if info := (v >> leaderInfoShift) & 7; info != 0 {
		e.leaderCount += int(info) - 3
		e.lastLeaderChange = e.step
		e.leaderChanges++
		if e.leaderHook != nil {
			e.leaderHook(e.step, e.leaderCount)
		}
	}
	if mirror {
		g.mirrorUpdate(int(li), int(ri), l2, r2, uint8(v>>arcMaskShift))
	}
	return stepApplied
}

// reuseBail evaluates the adaptive reuse guard after each completed
// window and reports whether the run should abandon interning. Callers
// bail between steps, so the switch is as clean as the capacity fallback.
func (g *InternedEngine[S]) reuseBail() bool {
	if g.winSteps < adaptWindow {
		return false
	}
	if g.winMisses > g.winSteps/adaptMissDiv && g.tab.in.Len() == g.winBase {
		g.strikes++
	} else {
		g.strikes = 0
	}
	g.winSteps, g.winMisses = 0, 0
	g.winBase = g.tab.in.Len()
	return g.strikes >= adaptStrikes
}

// lazyOn enables lazy state materialization for the run loop about to
// start, when every read the loop can perform is served at the ID level.
// Oracle protocols stay eager: their fallback path replays the engine
// observer over the configuration. converge marks a convergence loop,
// which additionally needs the whole verdict chain — arc masks and the
// residual — on the meta-word path, since the generic closures read
// Engine.states after every applied step.
func (g *InternedEngine[S]) lazyOn(converge bool) {
	if g.env != nil {
		return
	}
	if converge && (g.ameta == nil || g.tab.spec.Gate == nil || g.tab.spec.ResidualMeta == nil) {
		return
	}
	g.lazyStates = true
}

// settle rematerializes Engine.states from the ID mirror and leaves lazy
// mode. A no-op outside lazy mode, so every loop exit calls it
// unconditionally.
func (g *InternedEngine[S]) settle() {
	if !g.lazyStates {
		return
	}
	e := g.Engine
	vals := g.tab.in.vals
	for i, id := range g.ids {
		e.states[i] = vals[id]
	}
	g.lazyStates = false
}

// arcMaskAt returns the spec's arc mask for the ring arc (i, i+1) of the
// current configuration — through the per-agent meta words when the spec
// provides them, through the state-level closure otherwise.
func (g *InternedEngine[S]) arcMaskAt(i int) uint8 {
	t := g.tab
	e := g.Engine
	j := i + 1
	if j == e.topo.N {
		j = 0
	}
	if g.ameta != nil {
		return t.spec.ArcMaskMeta(g.ameta[i], g.ameta[j])
	}
	return t.spec.ArcMask(e.states[i], e.states[j])
}

// ensureMirror (re)builds the tracker mirror from the current
// configuration — the ID-level equivalent of RingTracker.Reset.
func (g *InternedEngine[S]) ensureMirror() {
	if g.mirrorOK {
		return
	}
	n := g.Engine.topo.N
	if len(g.agentBits) != n {
		g.agentBits = make([]uint8, n)
		g.arcBits = make([]uint8, n)
	}
	t := g.tab
	if t.spec.MetaID != nil && t.spec.ArcMaskMeta != nil && t.spec.ResidualMeta != nil {
		if len(g.ameta) != n {
			g.ameta = make([]uint64, n)
		}
		for i := 0; i < n; i++ {
			g.ameta[i] = t.rmeta[g.ids[i]]
		}
	}
	g.counts = LocalCounts{}
	g.wc.reset()
	for i := 0; i < n; i++ {
		var ab, gb uint8
		if t.spec.ArcMask != nil {
			ab = g.arcMaskAt(i)
		}
		if t.spec.AgentMask != nil {
			gb = t.amask[g.ids[i]]
		}
		g.arcBits[i], g.agentBits[i] = ab, gb
		bumpCounts(&g.counts.Arc, 0, ab)
		bumpAgentCounts(&g.counts, 0, gb, i)
	}
	g.mirrorOK = true
}

// mirrorUpdate is the ID-level RingTracker.Update: the two touched agents'
// masks come from the per-ID table, the up to four incident arcs from the
// fused memo mask (for the interaction arc itself, when it is the ring arc
// a→b) and the per-ID mask evaluation for the side arcs.
func (g *InternedEngine[S]) mirrorUpdate(a, b int, l2, r2 uint32, fused uint8) {
	n := g.Engine.topo.N
	g.wc.note(a, b, n)
	t := g.tab
	if g.ameta != nil {
		g.ameta[a] = t.rmeta[l2]
		g.ameta[b] = t.rmeta[r2]
	}
	if t.spec.AgentMask != nil {
		if g.ameta != nil && t.spec.AgentMaskMeta != nil {
			// The meta words just written are still in registers; deriving
			// the agent bits from them skips two random loads into the
			// per-ID mask table.
			g.refreshAgentBits(a, t.spec.AgentMaskMeta(g.ameta[a]))
			g.refreshAgentBits(b, t.spec.AgentMaskMeta(g.ameta[b]))
		} else {
			g.refreshAgentID(a, l2)
			g.refreshAgentID(b, r2)
		}
	}
	if t.spec.ArcMask == nil {
		return
	}
	if next(a, n) == b {
		// The common directed-ring interaction (i, i+1): the middle arc's
		// new mask is fused into the memo entry; only the two side arcs
		// need evaluation.
		g.setArcBits(a, fused)
		g.refreshArc(prev(a, n))
		g.refreshArc(b)
		return
	}
	// Reversed or non-adjacent arcs (undirected rings): the fused mask is
	// the interaction-order mask, not the ring-order one — evaluate all
	// (up to four) incident arcs.
	idx := [4]int{prev(a, n), a, prev(b, n), b}
	for k, arc := range idx {
		dup := false
		for j := 0; j < k; j++ {
			if idx[j] == arc {
				dup = true
				break
			}
		}
		if !dup {
			g.refreshArc(arc)
		}
	}
}

func (g *InternedEngine[S]) refreshAgentID(i int, id uint32) {
	g.refreshAgentBits(i, g.tab.amask[id])
}

func (g *InternedEngine[S]) refreshAgentBits(i int, nw uint8) {
	if old := g.agentBits[i]; old != nw {
		g.agentBits[i] = nw
		bumpAgentCounts(&g.counts, old, nw, i)
	}
}

func (g *InternedEngine[S]) refreshArc(i int) {
	g.setArcBits(i, g.arcMaskAt(i))
}

func (g *InternedEngine[S]) setArcBits(i int, nw uint8) {
	if old := g.arcBits[i]; old != nw {
		g.arcBits[i] = nw
		bumpCounts(&g.counts.Arc, old, nw)
	}
}

// convergedNow is the spec verdict over the mirrored counts — the same
// witness-cached protocol as RingTracker.Converged, through the one
// shared implementation; specs carrying the MetaID acceleration get their
// residual evaluated over the per-agent meta words.
func (g *InternedEngine[S]) convergedNow() bool {
	t := g.tab
	if t.spec.Gate != nil && t.spec.ResidualMeta != nil && g.ameta != nil {
		return witnessVerdictMeta(&g.wc, &t.spec, &g.counts, g.ameta)
	}
	return witnessVerdict(&g.wc, &t.spec, &g.counts, g.Engine.states)
}

// Run implements Accelerator: exactly steps scheduler steps, interned when
// possible, with the identical RNG stream, state trajectory and accounting
// of Engine.Run.
func (g *InternedEngine[S]) Run(steps uint64) {
	if !g.prepare() {
		// The generic engine advances states without the ID mirror seeing
		// it (installGen only tracks installs, not interactions), so the
		// mirror must be rebuilt before any later interned run.
		g.idsOK = false
		g.Engine.Run(steps)
		return
	}
	g.mirrorOK = false // not maintained outside convergence runs
	g.lazyOn(false)
	rem := g.runSteps(steps, false)
	g.settle()
	if rem > 0 {
		g.Engine.Run(rem)
	}
}

// Step executes one scheduler step through the memo tables — the interned
// equivalent of Engine.Step, drawing from the same pending-buffer-first
// arc stream. Runs that cannot intern (observers, stuck agents, fallback)
// delegate to the generic step.
func (g *InternedEngine[S]) Step() {
	if !g.prepare() {
		g.idsOK = false
		g.Engine.Step()
		return
	}
	g.mirrorOK = false
	arc := g.Engine.topo.Arcs[g.Engine.drawArc()]
	g.applyInterned(arc[0], arc[1], false)
}

// ApplyArc forces the interaction on arc k of the topology through the
// memo tables — the interned equivalent of Engine.ApplyArc, for
// deterministic-schedule tests and trajectory replays. The arc executes
// generically when the layer cannot intern.
func (g *InternedEngine[S]) ApplyArc(k int) {
	if !g.prepare() {
		g.idsOK = false
		g.Engine.ApplyArc(k)
		return
	}
	g.mirrorOK = false
	arc := g.Engine.topo.Arcs[k]
	g.applyInterned(arc[0], arc[1], false)
}

// ApplySchedule forces the given interactions in order through the memo
// tables — the interned Engine.ApplySchedule.
func (g *InternedEngine[S]) ApplySchedule(arcs []int) {
	for _, k := range arcs {
		g.ApplyArc(k)
	}
}

// runSteps executes up to steps interned interactions, drawing arcs through
// the engine's pending buffer in the same batch sizes as the generic paths.
// It returns the number of steps still owed after a capacity fallback (the
// already-drawn arc has been executed generically; remaining pre-drawn arcs
// stay pending, so a generic continuation follows the identical scheduler
// stream), or 0 on completion.
func (g *InternedEngine[S]) runSteps(steps uint64, mirror bool) uint64 {
	e := g.Engine
	for steps > 0 {
		if e.pendStart == e.pendEnd {
			e.refillPending(steps)
		}
		arc := e.topo.Arcs[e.pendBuf[e.pendStart]]
		e.pendStart++
		steps--
		if g.applyInterned(arc[0], arc[1], mirror) == stepFell {
			return steps
		}
		if g.reuseBail() {
			g.settle()
			g.fall()
			return steps
		}
	}
	return 0
}

// RunUntilConverged implements Accelerator, mirroring
// Engine.RunUntilConverged: the verdict runs after every single step, so
// hitting times are exact; on mid-batch convergence the remaining pre-drawn
// arcs stay pending for later runs. No-op steps skip the verdict — an
// interaction that changes no state cannot flip a configuration predicate
// that was false before it.
func (g *InternedEngine[S]) RunUntilConverged(maxSteps uint64) (uint64, bool) {
	e := g.Engine
	if !g.prepare() {
		g.idsOK = false // the generic run advances states past the mirror
		e.SetTracker(g.generic)
		return e.RunUntilConverged(maxSteps)
	}
	g.ensureMirror()
	if g.convergedNow() {
		return e.step, true
	}
	g.lazyOn(true)
	for e.step < maxSteps {
		if e.pendStart == e.pendEnd {
			e.refillPending(maxSteps - e.step)
		}
		arc := e.topo.Arcs[e.pendBuf[e.pendStart]]
		e.pendStart++
		if pf := e.pendStart + prefetchDepth - 1; pf < e.pendEnd && len(g.tab.trans) == 1 {
			// Speculatively touch an upcoming pair's table lines with the
			// pre-interaction IDs, overlapping their memory latency with the
			// next few steps' work (see prefetchDepth).
			na := e.topo.Arcs[e.pendBuf[pf]]
			g.tab.trans[0].prefetch(g.ids[na[0]], g.ids[na[1]])
		}
		switch g.applyInterned(arc[0], arc[1], true) {
		case stepFell:
			// Fallback: the generic tracker was installed before the drawn
			// arc ran, so the generic loop resumes with exact verdicts.
			return e.RunUntilConverged(maxSteps)
		case stepApplied:
			if g.convergedNow() {
				g.settle()
				return e.step, true
			}
		}
		if g.reuseBail() {
			g.settle()
			g.fall()
			e.SetTracker(g.generic)
			return e.RunUntilConverged(maxSteps)
		}
	}
	g.settle()
	return e.step, false
}

// SampleCounts implements Accelerator: named channel counts over the
// current configuration, byte-identical to the generic RingTracker's
// CountSampler output.
func (g *InternedEngine[S]) SampleCounts(dst map[string]float64) {
	if g.prepare() {
		g.ensureMirror()
		for b, name := range g.tab.spec.ArcNames {
			if name != "" {
				dst[name] = float64(g.counts.Arc[b])
			}
		}
		for b, name := range g.tab.spec.AgentNames {
			if name != "" {
				dst[name] = float64(g.counts.Agent[b])
			}
		}
		return
	}
	if cs, ok := g.generic.(CountSampler); ok {
		cs.SampleCounts(dst)
	}
}

func next(i, n int) int {
	i++
	if i == n {
		return 0
	}
	return i
}
