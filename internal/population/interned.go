package population

// The interned execution layer: an Engine wrapper that replays interactions
// as table loads. States are interned into dense uint32 IDs (intern.go),
// the pairwise transition is memoized per (idL, idR) — per environment key
// for oracle protocols — and the memo entry carries everything the engine's
// bookkeeping needs precomputed: the successor IDs, whether the leader set
// changed and by how much, and the transition's effect on the oracle's
// backing counters. Convergence tracking is mirrored at the ID level too:
// per-ID agent masks and a per-ID-pair arc-mask table replace the RingSpec
// mask closures, so a RingTracker-equivalent update is a handful of array
// loads.
//
// The layer is a pure accelerator: arc draws use the same batched RNG
// stream (including the engine's pending-draw buffer and any installed
// ArcScheduler — biased and eclipse draws intern exactly like uniform
// ones, since the distribution only picks arcs; stuck-agent masks are the
// one dynamics feature that forces the generic path), the step counter,
// leader accounting, leader hook, tracker counts, witness caching and
// hitting times are bit-for-bit identical to the generic path, and when the
// interner's capacity cap is exceeded mid-run the engine falls back to the
// generic path transparently — the already-drawn arc is executed
// generically, remaining pre-drawn arcs stay pending, and the run continues
// on the exact same scheduler stream.

// EnvSpec adapts a protocol whose transition reads a small global
// environment derived from global counters — the Fischer–Jiang Ω? oracle
// view, the Chen–Chen flag census — to the interned layer. The transition
// must depend on the environment only through Key (a small dense key), and
// its effect on the environment's backing counters must be expressible as
// a per-transition delta: the interned hot path calls Apply(delta) instead
// of dispatching the engine observer that maintains the counters on the
// generic path, so Delta/Apply must replicate that observer exactly.
type EnvSpec[S any] struct {
	// Keys is the number of distinct environment keys; one transition table
	// is kept per key.
	Keys int
	// Key returns the current environment key in [0, Keys).
	Key func() uint32
	// Delta encodes the transition's effect on the environment's backing
	// counters in at most 11 bits (the memo entry's spare field).
	Delta func(lb, rb, la, ra S) uint32
	// Apply applies an encoded delta to the backing counters.
	Apply func(delta uint32)
}

// InternOptions tunes the interned layer's capacity caps.
type InternOptions struct {
	// MaxStates caps the interner; once an execution needs more distinct
	// states the engine permanently falls back to the generic path.
	// 0 selects DefaultMaxStates.
	MaxStates int
	// DenseStates caps the dense table tier; beyond it pair tables switch
	// to hashing (see pairTable). 0 selects DefaultDenseStates.
	DenseStates int
}

const (
	// DefaultMaxStates is deliberately small: measured across the six
	// built-ins, table lookups beat recomputing the transition only while
	// the tables stay cache-resident — the O(1)-state regime (the war-based
	// baselines at ~24–200 reachable states, P_OR at ~100). Protocols that
	// wander past the cap (P_PL's product state space, the O(n)-state [28]
	// baseline) fall back within their first few thousand steps, before the
	// cold-fill cost amounts to anything; callers with a protocol they know
	// reuses a larger space can raise the cap through InternOptions.
	DefaultMaxStates = 256
	// DefaultDenseStates keeps the dense tier's stride² array at or below
	// 512² entries (2 MiB) and its growth re-layouts cheap. At the default
	// state cap every table stays dense; the hashed tier serves callers who
	// raise MaxStates past it.
	DefaultDenseStates = 512
)

// Adaptive reuse guard: interning only pays when (state, state) pairs
// repeat, i.e. when the reachable state space is small relative to the
// run — the poly-log regime. A run that keeps missing the tables (P_PL's
// product state space, the O(n)-state baselines at sizes whose runs are
// too short to amortize the fills) pays the full transition PLUS the
// memoization on every step, so after adaptStrikes consecutive windows of
// adaptWindow steps with more than 1-in-adaptMissDiv misses the engine
// falls back to the generic path, exactly as it does when the capacity cap
// is hit. The guard reads only deterministic per-run counters, so whether
// a given seed's run interns or falls back is reproducible — and either
// way bit-identical.
const (
	adaptWindow  = 2048
	adaptMissDiv = 4 // bail threshold: more than window/4 misses
	adaptStrikes = 3
)

// Memo-entry layout (pairTable values).
const (
	idBits            = 24
	idMask            = 1<<idBits - 1
	flagLeaderChanged = uint64(1) << 48
	leaderDeltaShift  = 49 // 3 bits, biased by +2
	envDeltaShift     = 52 // 11 bits, EnvSpec.Delta encoding
	envDeltaMask      = 1<<11 - 1
)

// Accelerator is the state-type-free face of an InternedEngine, which is
// what the protocol wiring stores next to its generic engine.
type Accelerator interface {
	// Run executes exactly steps scheduler steps (interned when possible).
	Run(steps uint64)
	// RunUntilConverged runs to the spec's convergence with exact hitting
	// times, mirroring Engine.RunUntilConverged.
	RunUntilConverged(maxSteps uint64) (uint64, bool)
	// SampleCounts exports the named tracker channel counts, exactly as the
	// generic RingTracker's CountSampler would.
	SampleCounts(dst map[string]float64)
	// Interned reports whether the layer is still interning (false once the
	// capacity cap forced the generic fallback).
	Interned() bool
}

// InternedEngine wraps an Engine with the interned execution layer. It
// shares the engine's state slice, RNG, step counter and leader accounting;
// only the inner loop differs.
type InternedEngine[S comparable] struct {
	*Engine[S]
	spec    RingSpec[S]
	env     *EnvSpec[S]
	generic ConvergenceTracker[S]

	in    *Interner[S]
	ids   []uint32 // per-agent interned ID, mirror of Engine.states
	idsOK bool
	idGen uint64 // Engine.installGen the mirror was built at

	leaderBit []bool  // per ID: isLeader
	amask     []uint8 // per ID: RingSpec.AgentMask
	trans     []pairTable
	arcs      pairTable

	// RingTracker mirror at the ID level.
	arcBits   []uint8
	agentBits []uint8
	counts    LocalCounts
	mirrorOK  bool
	wc        witnessCache

	// Adaptive reuse guard counters (see adaptWindow).
	winSteps  int
	winMisses int
	strikes   int

	fellBack bool
}

// NewInterned attaches the interned layer to e. spec is the same RingSpec
// the generic tracker uses (masks are memoized per ID, the verdict —
// including Gate/Residual witness caching — is shared); generic is the
// tracker installed on capacity fallback; env adapts oracle protocols and
// is nil for pure pairwise transitions. When env is nil and an observer is
// installed on e, every run delegates to the generic path — observation
// means per-interaction dispatch the interned loop does not do. When env
// is non-nil, the engine's observer is by contract the env-counter
// maintainer and is replaced by EnvSpec.Apply on the interned path.
func NewInterned[S comparable](e *Engine[S], spec RingSpec[S], env *EnvSpec[S], generic ConvergenceTracker[S], opts InternOptions) *InternedEngine[S] {
	if opts.MaxStates <= 0 {
		opts.MaxStates = DefaultMaxStates
	}
	if opts.MaxStates > 1<<idBits {
		// Memo entries pack successor IDs into idBits-wide fields; a cap
		// beyond that would silently truncate IDs instead of falling back.
		opts.MaxStates = 1 << idBits
	}
	if opts.DenseStates <= 0 {
		opts.DenseStates = DefaultDenseStates
	}
	keys := 1
	if env != nil {
		if env.Keys < 1 || env.Key == nil || env.Delta == nil || env.Apply == nil {
			panic("population: EnvSpec needs Keys >= 1 and Key/Delta/Apply")
		}
		keys = env.Keys
	}
	g := &InternedEngine[S]{
		Engine:  e,
		spec:    spec,
		env:     env,
		generic: generic,
		in:      NewInterner[S](opts.MaxStates),
		trans:   make([]pairTable, keys),
	}
	for i := range g.trans {
		g.trans[i] = newPairTable(opts.DenseStates)
	}
	g.arcs = newPairTable(opts.DenseStates)
	return g
}

// Interned implements Accelerator.
func (g *InternedEngine[S]) Interned() bool { return !g.fellBack }

// States returns the number of distinct states interned so far (0 after
// fallback) — a diagnostic for tests and benchmarks.
func (g *InternedEngine[S]) States() int {
	if g.fellBack {
		return 0
	}
	return g.in.Len()
}

// prepare readies the interned path: leaders recounted, the ID mirror
// rebuilt if states were installed since it was last valid. It reports
// false when the run must take the generic path instead (fallback already
// happened, an observer demands dispatch, or re-interning overflowed the
// cap).
func (g *InternedEngine[S]) prepare() bool {
	if g.fellBack {
		return false
	}
	e := g.Engine
	if e.observer != nil && g.env == nil {
		return false
	}
	if e.frozen != nil {
		// Stuck agents make the transition site-dependent — a frozen
		// agent's successor is its pre-state regardless of the pair — and
		// the memo tables are keyed on state pairs alone, so interning
		// would replay the unfrozen dynamics. The generic path applies
		// the freeze mask per interaction.
		return false
	}
	if e.leaderDirty {
		e.recountLeaders()
	}
	if !g.idsOK || g.idGen != e.installGen {
		if !g.reintern() {
			return false
		}
	}
	return true
}

// reintern rebuilds the per-agent ID mirror from the engine's states.
func (g *InternedEngine[S]) reintern() bool {
	e := g.Engine
	if len(g.ids) != e.topo.N {
		// First build, or a churn install changed the agent count.
		g.ids = make([]uint32, e.topo.N)
	}
	for i, s := range e.states {
		id, ok := g.in.Intern(s)
		if !ok {
			g.fall()
			return false
		}
		g.ids[i] = id
	}
	g.syncIDMeta()
	g.idsOK, g.idGen = true, e.installGen
	g.mirrorOK = false
	return true
}

// syncIDMeta extends the per-ID precomputed leader bits and agent masks to
// cover newly minted IDs.
func (g *InternedEngine[S]) syncIDMeta() {
	e := g.Engine
	for id := len(g.amask); id < g.in.Len(); id++ {
		s := g.in.vals[id]
		lead := e.isLeader != nil && e.isLeader(s)
		g.leaderBit = append(g.leaderBit, lead)
		var m uint8
		if g.spec.AgentMask != nil {
			m = g.spec.AgentMask(s)
		}
		g.amask = append(g.amask, m)
	}
}

// fall abandons the interned layer permanently, releasing its tables.
func (g *InternedEngine[S]) fall() {
	g.fellBack = true
	g.in = nil
	g.ids = nil
	g.idsOK = false
	g.trans = nil
	g.arcs = pairTable{}
	g.leaderBit, g.amask = nil, nil
	g.arcBits, g.agentBits = nil, nil
	g.mirrorOK = false
}

// fill computes, interns and memoizes the transition of (idL, idR) under
// env key. ok is false when interning a successor would exceed the cap.
func (g *InternedEngine[S]) fill(key uint32, idL, idR uint32) (uint64, bool) {
	e := g.Engine
	lb, rb := g.in.vals[idL], g.in.vals[idR]
	la, ra := e.trans(lb, rb)
	l2, ok := g.in.Intern(la)
	if !ok {
		return 0, false
	}
	r2, ok := g.in.Intern(ra)
	if !ok {
		return 0, false
	}
	g.syncIDMeta()
	v := uint64(l2) | uint64(r2)<<idBits
	if e.isLeader != nil {
		delta := 0
		changed := false
		if was, is := g.leaderBit[idL], g.leaderBit[l2]; was != is {
			changed = true
			if is {
				delta++
			} else {
				delta--
			}
		}
		if was, is := g.leaderBit[idR], g.leaderBit[r2]; was != is {
			changed = true
			if is {
				delta++
			} else {
				delta--
			}
		}
		if changed {
			v |= flagLeaderChanged | uint64(delta+2)<<leaderDeltaShift
		}
	}
	if g.env != nil {
		v |= uint64(g.env.Delta(lb, rb, la, ra)&envDeltaMask) << envDeltaShift
	}
	g.trans[key].put(idL, idR, v, g.in.Len())
	return v, true
}

// applyInterned executes one interaction on the arc (li, ri) through the
// memo tables, maintaining everything Engine.applyPair does. When mirror
// is set the tracker mirror is kept in sync too. It reports false after a
// capacity fallback, in which case the interaction has been executed
// generically instead (with the generic tracker installed first when
// mirror was requested, so its Reset precedes and its Update covers the
// interaction).
func (g *InternedEngine[S]) applyInterned(li, ri int32, mirror bool) bool {
	e := g.Engine
	idL, idR := g.ids[li], g.ids[ri]
	var key uint32
	if g.env != nil {
		key = g.env.Key()
	}
	v, ok := g.trans[key].get(idL, idR)
	if !ok {
		g.winMisses++
		if v, ok = g.fill(key, idL, idR); !ok {
			g.fall()
			if mirror {
				e.SetTracker(g.generic)
			}
			lb, rb := e.states[li], e.states[ri]
			e.applyPair(li, ri, lb, rb)
			if e.observer != nil {
				// The generic continuation maintains oracle counters through
				// the engine observer, so the triggering interaction must
				// dispatch it exactly as applyArc would — otherwise an
				// EnvSpec protocol's census would permanently miss this one
				// delta. (Pure protocols with observers never reach here:
				// prepare() routes them to the generic path up front.)
				e.observer(int(li), lb, e.states[li])
				e.observer(int(ri), rb, e.states[ri])
			}
			return false
		}
	}
	g.winSteps++
	l2 := uint32(v) & idMask
	r2 := uint32(v>>idBits) & idMask
	e.states[li] = g.in.vals[l2]
	e.states[ri] = g.in.vals[r2]
	g.ids[li], g.ids[ri] = l2, r2
	e.step++
	if g.env != nil {
		g.env.Apply(uint32(v>>envDeltaShift) & envDeltaMask)
	}
	if v&flagLeaderChanged != 0 {
		e.leaderCount += int((v>>leaderDeltaShift)&7) - 2
		e.lastLeaderChange = e.step
		e.leaderChanges++
		if e.leaderHook != nil {
			e.leaderHook(e.step, e.leaderCount)
		}
	}
	if mirror {
		g.mirrorUpdate(int(li), int(ri), l2, r2)
	}
	return true
}

// reuseBail evaluates the adaptive reuse guard after each completed
// window and reports whether the run should abandon interning. Callers
// bail between steps, so the switch is as clean as the capacity fallback.
func (g *InternedEngine[S]) reuseBail() bool {
	if g.winSteps < adaptWindow {
		return false
	}
	if g.winMisses > g.winSteps/adaptMissDiv {
		g.strikes++
	} else {
		g.strikes = 0
	}
	g.winSteps, g.winMisses = 0, 0
	return g.strikes >= adaptStrikes
}

// arcMaskID returns the spec's arc mask for the ring-adjacent ID pair,
// memoized in the arc table.
func (g *InternedEngine[S]) arcMaskID(a, b uint32) uint8 {
	if v, ok := g.arcs.get(a, b); ok {
		return uint8(v)
	}
	m := g.spec.ArcMask(g.in.vals[a], g.in.vals[b])
	g.arcs.put(a, b, uint64(m), g.in.Len())
	return m
}

// ensureMirror (re)builds the tracker mirror from the current
// configuration — the ID-level equivalent of RingTracker.Reset.
func (g *InternedEngine[S]) ensureMirror() {
	if g.mirrorOK {
		return
	}
	n := g.Engine.topo.N
	if len(g.agentBits) != n {
		g.agentBits = make([]uint8, n)
		g.arcBits = make([]uint8, n)
	}
	g.counts = LocalCounts{}
	g.wc.reset()
	for i := 0; i < n; i++ {
		var ab, gb uint8
		if g.spec.ArcMask != nil {
			ab = g.arcMaskID(g.ids[i], g.ids[(i+1)%n])
		}
		if g.spec.AgentMask != nil {
			gb = g.amask[g.ids[i]]
		}
		g.arcBits[i], g.agentBits[i] = ab, gb
		bumpCounts(&g.counts.Arc, 0, ab)
		bumpAgentCounts(&g.counts, 0, gb, i)
	}
	g.mirrorOK = true
}

// mirrorUpdate is the ID-level RingTracker.Update: the two touched agents'
// masks come from the per-ID table, the up to four incident arcs from the
// arc-pair table.
func (g *InternedEngine[S]) mirrorUpdate(a, b int, l2, r2 uint32) {
	n := g.Engine.topo.N
	g.wc.note(a, b, n)
	if g.spec.AgentMask != nil {
		g.refreshAgentID(a, l2)
		g.refreshAgentID(b, r2)
	}
	if g.spec.ArcMask == nil {
		return
	}
	idx := [4]int{prev(a, n), a, prev(b, n), b}
	for k, arc := range idx {
		dup := false
		for j := 0; j < k; j++ {
			if idx[j] == arc {
				dup = true
				break
			}
		}
		if !dup {
			g.refreshArcID(arc)
		}
	}
}

func (g *InternedEngine[S]) refreshAgentID(i int, id uint32) {
	nw := g.amask[id]
	if old := g.agentBits[i]; old != nw {
		g.agentBits[i] = nw
		bumpAgentCounts(&g.counts, old, nw, i)
	}
}

func (g *InternedEngine[S]) refreshArcID(i int) {
	n := g.Engine.topo.N
	nw := g.arcMaskID(g.ids[i], g.ids[(i+1)%n])
	if old := g.arcBits[i]; old != nw {
		g.arcBits[i] = nw
		bumpCounts(&g.counts.Arc, old, nw)
	}
}

// convergedNow is the spec verdict over the mirrored counts — the same
// witness-cached protocol as RingTracker.Converged, through the one
// shared implementation.
func (g *InternedEngine[S]) convergedNow() bool {
	return witnessVerdict(&g.wc, &g.spec, g.counts, g.Engine.states)
}

// Run implements Accelerator: exactly steps scheduler steps, interned when
// possible, with the identical RNG stream, state trajectory and accounting
// of Engine.Run.
func (g *InternedEngine[S]) Run(steps uint64) {
	if !g.prepare() {
		// The generic engine advances states without the ID mirror seeing
		// it (installGen only tracks installs, not interactions), so the
		// mirror must be rebuilt before any later interned run.
		g.idsOK = false
		g.Engine.Run(steps)
		return
	}
	g.mirrorOK = false // not maintained outside convergence runs
	if rem := g.runSteps(steps, false); rem > 0 {
		g.Engine.Run(rem)
	}
}

// runSteps executes up to steps interned interactions, drawing arcs through
// the engine's pending buffer in the same batch sizes as the generic paths.
// It returns the number of steps still owed after a capacity fallback (the
// already-drawn arc has been executed generically; remaining pre-drawn arcs
// stay pending, so a generic continuation follows the identical scheduler
// stream), or 0 on completion.
func (g *InternedEngine[S]) runSteps(steps uint64, mirror bool) uint64 {
	e := g.Engine
	for steps > 0 {
		if e.pendStart == e.pendEnd {
			e.refillPending(steps)
		}
		arc := e.topo.Arcs[e.pendBuf[e.pendStart]]
		e.pendStart++
		steps--
		if !g.applyInterned(arc[0], arc[1], mirror) {
			return steps
		}
		if g.reuseBail() {
			g.fall()
			return steps
		}
	}
	return 0
}

// RunUntilConverged implements Accelerator, mirroring
// Engine.RunUntilConverged: the verdict runs after every single step, so
// hitting times are exact; on mid-batch convergence the remaining pre-drawn
// arcs stay pending for later runs.
func (g *InternedEngine[S]) RunUntilConverged(maxSteps uint64) (uint64, bool) {
	e := g.Engine
	if !g.prepare() {
		g.idsOK = false // the generic run advances states past the mirror
		e.SetTracker(g.generic)
		return e.RunUntilConverged(maxSteps)
	}
	g.ensureMirror()
	if g.convergedNow() {
		return e.step, true
	}
	for e.step < maxSteps {
		if e.pendStart == e.pendEnd {
			e.refillPending(maxSteps - e.step)
		}
		arc := e.topo.Arcs[e.pendBuf[e.pendStart]]
		e.pendStart++
		if !g.applyInterned(arc[0], arc[1], true) {
			// Fallback: the generic tracker was installed before the drawn
			// arc ran, so the generic loop resumes with exact verdicts.
			return e.RunUntilConverged(maxSteps)
		}
		if g.convergedNow() {
			return e.step, true
		}
		if g.reuseBail() {
			g.fall()
			e.SetTracker(g.generic)
			return e.RunUntilConverged(maxSteps)
		}
	}
	return e.step, false
}

// SampleCounts implements Accelerator: named channel counts over the
// current configuration, byte-identical to the generic RingTracker's
// CountSampler output.
func (g *InternedEngine[S]) SampleCounts(dst map[string]float64) {
	if g.prepare() {
		g.ensureMirror()
		for b, name := range g.spec.ArcNames {
			if name != "" {
				dst[name] = float64(g.counts.Arc[b])
			}
		}
		for b, name := range g.spec.AgentNames {
			if name != "" {
				dst[name] = float64(g.counts.Agent[b])
			}
		}
		return
	}
	if cs, ok := g.generic.(CountSampler); ok {
		cs.SampleCounts(dst)
	}
}
