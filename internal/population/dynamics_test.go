package population

import (
	"testing"

	"repro/internal/xrand"
)

// maskSpec is a two-channel tracker spec over counterState for the
// dynamics tests: agent channel 0 counts leaders, arc channel 0 counts
// adjacent pairs with equal interaction parity.
func maskSpec() RingSpec[counterState] {
	return RingSpec[counterState]{
		AgentMask: func(s counterState) uint8 {
			if s.leader {
				return 1
			}
			return 0
		},
		ArcMask: func(l, r counterState) uint8 {
			if l.count%2 == r.count%2 {
				return 1
			}
			return 0
		},
		Converged: func(c *LocalCounts, _ []counterState) bool {
			return c.Agent[0] == 1
		},
	}
}

// rescanCounts recomputes the tracker channels of maskSpec from scratch —
// the brute-force baseline the incremental counts are pinned against.
func rescanCounts(cfg []counterState) LocalCounts {
	spec := maskSpec()
	var c LocalCounts
	n := len(cfg)
	for i, s := range cfg {
		if m := spec.AgentMask(s); m&1 != 0 {
			c.Agent[0]++
			c.AgentPos[0] += i
		}
		if m := spec.ArcMask(s, cfg[(i+1)%n]); m&1 != 0 {
			c.Arc[0]++
		}
	}
	return c
}

// splice removes agent victim from a ring configuration — the churn
// re-splicing the trial layer performs, reproduced by hand.
func splice(cfg []counterState, victim int) []counterState {
	out := make([]counterState, 0, len(cfg)-1)
	out = append(out, cfg[:victim]...)
	return append(out, cfg[victim+1:]...)
}

// insert adds a fresh agent after position at.
func insert(cfg []counterState, at int, s counterState) []counterState {
	out := make([]counterState, 0, len(cfg)+1)
	out = append(out, cfg[:at+1]...)
	out = append(out, s)
	return append(out, cfg[at+1:]...)
}

// TestTrackerCountsSurviveChurn pins the incremental tracker channels
// against a brute-force rescan across a schedule of SetTopology splices
// (the churn path): after every splice-and-run phase, the counts the
// tracker maintained interaction-by-interaction must equal a fresh
// recount of the live configuration, for rings up to 64 agents.
func TestTrackerCountsSurviveChurn(t *testing.T) {
	for _, n := range []int{8, 16, 33, 64} {
		rng := xrand.New(uint64(n))
		eng := NewEngine(DirectedRing(n), countTransition, xrand.New(7))
		cfg := make([]counterState, n)
		for i := range cfg {
			cfg[i] = counterState{count: rng.Intn(5), leader: rng.Intn(3) == 0}
		}
		eng.SetStates(cfg)
		tr := NewRingTracker(maskSpec())
		eng.SetTracker(tr)
		for phase := 0; phase < 6; phase++ {
			eng.Run(500)
			live := eng.Snapshot()
			switch phase % 3 {
			case 0: // shrink
				live = splice(live, rng.Intn(len(live)))
			case 1: // grow, newcomer in an arbitrary state
				at := rng.Intn(len(live))
				live = insert(live, at, counterState{count: rng.Intn(9), leader: rng.Intn(2) == 0})
			default: // same-size reinstall (pure re-splice)
				live[rng.Intn(len(live))].count++
			}
			eng.SetTopology(DirectedRing(len(live)), live)
			eng.Run(500)
			got := tr.Counts()
			want := rescanCounts(eng.Config())
			if got != want {
				t.Fatalf("n=%d phase %d: tracker counts %+v, brute-force rescan %+v", n, phase, got, want)
			}
		}
	}
}

// TestSetTopologyDropsSchedulerAndFrozen pins the install contract: a
// topology swap clears the scheduler and the stuck-agent mask (both are
// sized to the old topology) and the engine keeps running on the default
// uniform distribution without touching stale state.
func TestSetTopologyDropsSchedulerAndFrozen(t *testing.T) {
	eng := NewEngine(DirectedRing(8), countTransition, xrand.New(3))
	eng.SetStates(make([]counterState, 8))
	eng.SetFrozen(make([]bool, 8))
	eng.SetScheduler(constArcSched{})
	eng.SetTopology(DirectedRing(7), make([]counterState, 7))
	if eng.FrozenAgents() != nil {
		t.Fatal("SetTopology kept the old frozen mask")
	}
	eng.Run(100) // would panic drawing arc 0 of the old scheduler's range if kept
	if eng.Steps() != 100 {
		t.Fatalf("Steps = %d, want 100", eng.Steps())
	}
}

// constArcSched always schedules arc 0; NextTransition never fires.
type constArcSched struct{}

func (constArcSched) Fill(_ *xrand.RNG, _ uint64, out []int32) {
	for i := range out {
		out[i] = 0
	}
}
func (constArcSched) NextTransition(uint64) uint64 { return ^uint64(0) }
func (constArcSched) Phase(uint64) (int, bool)     { return 0, false }

// TestFrozenAgentNeverChanges pins the stuck-agent semantics: a frozen
// agent's state is restored after every interaction in both roles, while
// its partners still update off its fixed state.
func TestFrozenAgentNeverChanges(t *testing.T) {
	n := 16
	eng := NewEngine(DirectedRing(n), countTransition, xrand.New(11))
	cfg := make([]counterState, n)
	cfg[5] = counterState{count: 42, leader: true}
	eng.SetStates(cfg)
	frozen := make([]bool, n)
	frozen[5] = true
	eng.SetFrozen(frozen)
	eng.Run(5000)
	if got := eng.State(5); got != (counterState{count: 42, leader: true}) {
		t.Fatalf("frozen agent mutated to %+v", got)
	}
	moved := 0
	for i := 0; i < n; i++ {
		if i != 5 && eng.State(i).count > 0 {
			moved++
		}
	}
	if moved == 0 {
		t.Fatal("no unfrozen agent ever interacted")
	}
}
