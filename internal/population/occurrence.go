package population

import "repro/internal/xrand"

// OccurrenceTime draws uniformly random arcs from [0, numArcs) and returns
// how many draws pass before the given arc sequence has occurred in order
// (not necessarily consecutively) — the quantity bounded by the paper's
// Lemma 2.3: a sequence of length ℓ occurs within numArcs·ℓ draws in
// expectation, and within O(c·numArcs·(ℓ + log n)) draws w.h.p.
func OccurrenceTime(numArcs int, schedule []int, rng *xrand.RNG) uint64 {
	if len(schedule) == 0 {
		return 0
	}
	var steps uint64
	next := 0
	for next < len(schedule) {
		steps++
		if rng.Intn(numArcs) == schedule[next] {
			next++
		}
	}
	return steps
}
