package population

import (
	"testing"

	"repro/internal/xrand"
)

// identCodec packs a uint32 state by value: trivially injective, so any
// divergence between the packed and generic interners below is the
// interner's own fault, not the codec's.
func identCodec() PackedCodec[uint32] {
	return PackedCodec[uint32]{
		Bits: 32,
		Enc:  func(s uint32) uint64 { return uint64(s) },
		Dec:  func(v uint64) uint32 { return uint32(v) },
	}
}

// TestPackedInternerMatchesGeneric pins the packed interner to the
// map-keyed one on an identical stream with repeats: same IDs in the same
// mint order, same cap-overflow refusals, and a Packed mirror that
// round-trips through the codec.
func TestPackedInternerMatchesGeneric(t *testing.T) {
	const cap = 500
	c := identCodec()
	packed := NewPackedInterner(c, cap)
	generic := NewInterner[uint32](cap)
	rng := xrand.New(3)
	for i := 0; i < 20000; i++ {
		// A skewed stream: repeats dominate, fresh states trickle in until
		// both interners hit the cap together.
		s := uint32(rng.Intn(cap + cap/4))
		pid, pok := packed.Intern(s)
		gid, gok := generic.Intern(s)
		if pid != gid || pok != gok {
			t.Fatalf("step %d state %d: packed (%d, %v) vs generic (%d, %v)", i, s, pid, pok, gid, gok)
		}
		if !pok {
			continue
		}
		if packed.Value(pid) != s {
			t.Fatalf("Value(%d) = %d, want %d", pid, packed.Value(pid), s)
		}
		if c.Dec(packed.Packed(pid)) != s {
			t.Fatalf("Packed(%d) = %#x does not decode to %d", pid, packed.Packed(pid), s)
		}
	}
	if packed.Len() != generic.Len() || packed.Len() != cap {
		t.Fatalf("lengths diverged: packed %d generic %d cap %d", packed.Len(), generic.Len(), cap)
	}
	if packed.Cap() != generic.Cap() {
		t.Fatalf("caps diverged: packed %d generic %d", packed.Cap(), generic.Cap())
	}
}

// TestPackedInternerGrowth mints well past the initial open-table
// capacity, forcing several re-layouts, and checks every ID survives each
// one.
func TestPackedInternerGrowth(t *testing.T) {
	in := NewPackedInterner(identCodec(), 1<<16)
	const n = 10000
	for i := uint32(0); i < n; i++ {
		id, ok := in.Intern(i)
		if !ok || id != i {
			t.Fatalf("mint %d: got (%d, %v)", i, id, ok)
		}
	}
	for i := uint32(0); i < n; i++ {
		if id, ok := in.Intern(i); !ok || id != i {
			t.Fatalf("post-growth lookup %d: got (%d, %v)", i, id, ok)
		}
		if in.Value(i) != i || in.Packed(i) != uint64(i) {
			t.Fatalf("mint %d mirrors diverged: Value %d Packed %#x", i, in.Value(i), in.Packed(i))
		}
	}
}

// TestNewPackedInternerRejectsBadWidths pins the constructor's contract:
// widths that collide with the empty-slot sentinel (or lack an encoder)
// panic instead of corrupting lookups later.
func TestNewPackedInternerRejectsBadWidths(t *testing.T) {
	for _, c := range []PackedCodec[uint32]{
		{Bits: 0, Enc: func(uint32) uint64 { return 0 }},
		{Bits: 64, Enc: func(uint32) uint64 { return 0 }},
		{Bits: 32},
	} {
		c := c
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("NewPackedInterner(Bits=%d, Enc nil=%v) did not panic", c.Bits, c.Enc == nil)
				}
			}()
			NewPackedInterner(c, 16)
		}()
	}
}

// FuzzPackedInternerParity fuzzes an intern stream against the generic
// interner, including cap overflow.
func FuzzPackedInternerParity(f *testing.F) {
	f.Add([]byte{0, 1, 2, 1, 0}, uint8(4))
	f.Add([]byte{255, 255, 0, 7, 7, 7, 9}, uint8(2))
	f.Fuzz(func(t *testing.T, stream []byte, capRaw uint8) {
		cap := int(capRaw)%64 + 1
		packed := NewPackedInterner(identCodec(), cap)
		generic := NewInterner[uint32](cap)
		for i, b := range stream {
			pid, pok := packed.Intern(uint32(b))
			gid, gok := generic.Intern(uint32(b))
			if pid != gid || pok != gok {
				t.Fatalf("step %d state %d: packed (%d, %v) vs generic (%d, %v)", i, b, pid, pok, gid, gok)
			}
		}
		if packed.Len() != generic.Len() {
			t.Fatalf("lengths diverged: packed %d generic %d", packed.Len(), generic.Len())
		}
	})
}
