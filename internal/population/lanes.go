package population

// Lockstep lanes: k same-cell trials executed as a structure-of-arrays
// bundle against ONE shared Tables. Sweep cells run many trials of the
// same (protocol, n, scenario) with different seeds, and each trial alone
// pays the cold fill of its transition tables — at P_PL n = 1024 that is
// over a million pair fills per trial. Lanes amortize the fill: the first
// lane to see a pair memoizes it, every other lane loads it. Sharing is
// sound because memo entries are pure functions of the state pair (and
// env key) — the contract EnvSpec.Delta's purity requirement exists for —
// so the only thing sharing changes is which lane happens to fill a
// given entry first, never any lane's states, deltas or verdicts.
//
// Each lane keeps its own engine, RNG stream, ID mirror and tracker
// mirror; the scheduler interleaving across lanes is irrelevant to any
// single lane's trajectory because lane RNG streams are independent.
// Results are therefore bit-identical to running each trial solo (against
// a cold private table) — the differential tests pin this. Per-lane
// batches draw through each engine's pending buffer in the same batch
// sizes as solo runs, so a lane that falls back mid-run continues
// generically on the exact same scheduler stream.

// LaneSet bundles k InternedEngines sharing one Tables for lockstep
// execution. Build each lane with AttachInterned against the same Tables,
// then wrap them; NewLaneSet marks the lanes shared so a capacity
// fallback in one lane does not free the tables under the others.
type LaneSet[S comparable] struct {
	lanes []*InternedEngine[S]
}

// NewLaneSet wraps the lanes, which must all be attached to the same
// Tables.
func NewLaneSet[S comparable](lanes []*InternedEngine[S]) *LaneSet[S] {
	if len(lanes) == 0 {
		panic("population: empty LaneSet")
	}
	tab := lanes[0].tab
	for _, g := range lanes {
		if g.tab != tab {
			panic("population: LaneSet lanes must share one Tables")
		}
		g.shared = true
	}
	return &LaneSet[S]{lanes: lanes}
}

// laneBatch is how many steps a lane runs before the set rotates to the
// next lane. The batch is deliberately enormous — in practice each lane
// runs to convergence before the next one starts. Lanes share the tables'
// front cache, and fine-grained interleaving (a pending-buffer refill per
// turn) makes the lanes evict each other's hot pairs from it, which
// measurably loses more than interleaved table warming gains; with
// sequential lanes, every lane after the first still inherits a fully
// warm transition table. Results are independent of the batch size —
// each lane owns its RNG stream — so this is purely a locality choice.
const laneBatch = 1 << 22

// RunUntilConverged drives every lane to convergence (or to maxSteps),
// round-robin in laneBatch chunks, with exact per-lane hitting times.
// Lanes that cannot intern (observers, stuck agents) and lanes that fall
// back mid-run (capacity, reuse guard) complete generically in place.
// Returns each lane's step count and verdict, index-aligned with the
// lanes passed to NewLaneSet — identical to calling each lane's
// RunUntilConverged alone.
func (ls *LaneSet[S]) RunUntilConverged(maxSteps uint64) ([]uint64, []bool) {
	n := len(ls.lanes)
	steps := make([]uint64, n)
	conv := make([]bool, n)
	active := make([]bool, n)
	remaining := 0
	for i, g := range ls.lanes {
		e := g.Engine
		if !g.prepare() {
			// This lane can never intern: finish it generically now rather
			// than interleaving — interleaving only exists to share table
			// fills, which this lane cannot use.
			g.idsOK = false
			e.SetTracker(g.generic)
			steps[i], conv[i] = e.RunUntilConverged(maxSteps)
			continue
		}
		g.ensureMirror()
		if g.convergedNow() {
			steps[i], conv[i] = e.step, true
			continue
		}
		g.lazyOn(true)
		active[i] = true
		remaining++
	}
	for remaining > 0 {
		for i, g := range ls.lanes {
			if !active[i] {
				continue
			}
			e := g.Engine
			done, fell := false, false
			for b := 0; b < laneBatch && e.step < maxSteps; b++ {
				if e.pendStart == e.pendEnd {
					e.refillPending(maxSteps - e.step)
				}
				arc := e.topo.Arcs[e.pendBuf[e.pendStart]]
				e.pendStart++
				if pf := e.pendStart + prefetchDepth - 1; pf < e.pendEnd && len(g.tab.trans) == 1 {
					// Same speculative upcoming-pair line touch as the solo
					// RunUntilConverged loop.
					na := e.topo.Arcs[e.pendBuf[pf]]
					g.tab.trans[0].prefetch(g.ids[na[0]], g.ids[na[1]])
				}
				switch g.applyInterned(arc[0], arc[1], true) {
				case stepFell:
					fell = true
				case stepApplied:
					if g.convergedNow() {
						g.settle()
						steps[i], conv[i] = e.step, true
						done = true
					}
				}
				if done || fell {
					break
				}
				if g.reuseBail() {
					g.settle()
					g.fall()
					e.SetTracker(g.generic)
					fell = true
					break
				}
			}
			if fell {
				// The fallen lane completes generically in place (applyInterned
				// installed the tracker before the triggering arc ran, so the
				// generic loop's verdicts are exact) — the other lanes keep the
				// shared tables.
				steps[i], conv[i] = e.RunUntilConverged(maxSteps)
				done = true
			} else if !done && e.step >= maxSteps {
				g.settle()
				steps[i], conv[i] = e.step, false
				done = true
			}
			if done {
				active[i] = false
				remaining--
			}
		}
	}
	return steps, conv
}
