// Package population implements the population protocol model used by the
// paper: a fixed set of anonymous agents, a set of directed arcs describing
// which ordered pairs may interact, and a scheduler that picks one arc per
// step — uniformly random by default, or any ArcScheduler (biased arc
// distributions, periodic eclipses; see internal/sched). Protocols are
// deterministic pairwise transition functions over an arbitrary state type.
//
// The engine is generic over the agent state type so each protocol gets a
// monomorphized, allocation-free simulation loop. Time is measured in steps
// (scheduler picks), exactly as in the paper.
package population

import (
	"fmt"

	"repro/internal/xrand"
)

// Arc is an ordered pair of agent indices: Arc[0] is the initiator (the
// "left" agent in the paper's ring notation) and Arc[1] the responder.
type Arc [2]int32

// Topology is the interaction graph of a population: n agents and the list
// of arcs the scheduler draws from uniformly.
type Topology struct {
	N    int
	Arcs []Arc
}

// DirectedRing returns the topology of the paper's Section 2: agents
// u_0..u_{n-1} with arcs (u_i, u_{i+1 mod n}). Interactions flow left to
// right only.
func DirectedRing(n int) Topology {
	if n < 2 {
		panic(fmt.Sprintf("population: directed ring needs n >= 2, got %d", n))
	}
	arcs := make([]Arc, n)
	for i := 0; i < n; i++ {
		arcs[i] = Arc{int32(i), int32((i + 1) % n)}
	}
	return Topology{N: n, Arcs: arcs}
}

// UndirectedRing returns the topology of Section 5: both (u_i, u_{i+1}) and
// (u_{i+1}, u_i) are arcs, so either endpoint of an edge can initiate.
func UndirectedRing(n int) Topology {
	if n < 3 {
		panic(fmt.Sprintf("population: undirected ring needs n >= 3, got %d", n))
	}
	arcs := make([]Arc, 0, 2*n)
	for i := 0; i < n; i++ {
		j := (i + 1) % n
		arcs = append(arcs, Arc{int32(i), int32(j)}, Arc{int32(j), int32(i)})
	}
	return Topology{N: n, Arcs: arcs}
}

// Transition computes the post-interaction states of an initiator/responder
// pair from their pre-interaction states. It must be deterministic.
type Transition[S any] func(l, r S) (S, S)

// ArcScheduler is the arc-draw distribution of an engine. The default
// (no scheduler installed) is the uniform-random scheduler on the
// engine's own RNG; installing one replaces the distribution while
// keeping the batched-draw discipline. The contract (implemented by
// internal/sched) is step-indexed and serial: Fill writes arc indices
// for the consecutive steps [step, step+len(out)), consuming the RNG
// serially so batch boundaries never change the stream, and the engine
// clamps batches so no Fill straddles a NextTransition boundary.
type ArcScheduler interface {
	Fill(rng *xrand.RNG, step uint64, out []int32)
	NextTransition(step uint64) uint64
	Phase(step uint64) (epoch int, eclipsed bool)
}

// Observer is notified after each interaction with the index of a touched
// agent and its states before and after the transition. It is invoked for
// both participants of every interaction.
type Observer[S any] func(agent int, before, after S)

// Engine simulates one execution of a protocol on a topology.
type Engine[S any] struct {
	topo   Topology
	states []S
	step   uint64
	rng    *xrand.RNG
	trans  Transition[S]

	isLeader         func(S) bool
	leaderCount      int
	leaderDirty      bool
	lastLeaderChange uint64
	leaderChanges    uint64

	tracker      ConvergenceTracker[S]
	trackerDirty bool

	// installGen counts bulk/single state installs. The interned execution
	// layer (interned.go) compares it against the generation its per-agent
	// ID mirror was built at, so fault bursts installed through
	// SetStates/SetState are re-interned before the next interned step.
	installGen uint64

	leaderHook func(step uint64, leaders int)

	// sched is the installed arc scheduler, nil for the default uniform
	// distribution. Every draw path branches on nil exactly once per
	// draw or batch, so the probe-less uniform hot path is unchanged.
	// schedNext caches sched.NextTransition so batch clamping is a
	// subtraction, not an interface call.
	sched     ArcScheduler
	schedNext uint64
	// epochHook, when installed, fires once per scheduler phase
	// transition (an eclipse opening or closing) with the boundary step
	// and the new phase. It consumes no RNG draws.
	epochHook func(step uint64, epoch int, eclipsed bool)

	// frozen marks stuck agents: a frozen agent keeps its pre-interaction
	// state in both the initiator and responder role (its partner still
	// updates normally). nil when no agents are stuck.
	frozen []bool

	// pending holds arc draws made by RunUntilConverged's batched RNG
	// calls but not yet executed (a run converges mid-batch). Every
	// drawing path consumes them before touching the RNG again, so the
	// arc sequence an engine executes is always the serial Intn stream of
	// its seed — convergence detection never perturbs later draws.
	pendBuf            [arcBatch]int32
	pendStart, pendEnd int

	observer Observer[S]
}

// NewEngine creates an engine over topo with all agents in their zero state.
// Use SetStates or SetState to install an initial configuration.
func NewEngine[S any](topo Topology, trans Transition[S], rng *xrand.RNG) *Engine[S] {
	if rng == nil {
		rng = xrand.New(0)
	}
	return &Engine[S]{
		topo:   topo,
		states: make([]S, topo.N),
		rng:    rng,
		trans:  trans,
	}
}

// N returns the number of agents.
func (e *Engine[S]) N() int { return e.topo.N }

// Steps returns the number of scheduler steps executed so far.
func (e *Engine[S]) Steps() uint64 { return e.step }

// State returns agent i's current state.
func (e *Engine[S]) State(i int) S { return e.states[i] }

// Snapshot returns a copy of the full configuration.
func (e *Engine[S]) Snapshot() []S {
	out := make([]S, len(e.states))
	copy(out, e.states)
	return out
}

// Config returns the live configuration slice. It is shared with the
// engine: callers must treat it as read-only. Predicates on hot paths use
// this to avoid per-check copies.
func (e *Engine[S]) Config() []S { return e.states }

// SetStates installs a full initial configuration (copied). When leader
// tracking is enabled and the installed configuration changes the leader
// set — a mid-run fault burst flipping leader bits, say — the change is
// recorded at the current step, exactly as an interaction-driven change
// would be; without this, a trial whose faults rewrite the leader set could
// report a pre-fault stabilization step.
func (e *Engine[S]) SetStates(states []S) {
	if len(states) != e.topo.N {
		panic(fmt.Sprintf("population: SetStates got %d states for %d agents", len(states), e.topo.N))
	}
	if e.isLeader != nil {
		for i := range states {
			if e.isLeader(states[i]) != e.isLeader(e.states[i]) {
				e.recordLeaderChange()
				break
			}
		}
	}
	copy(e.states, states)
	e.leaderDirty = true
	e.trackerDirty = e.tracker != nil
	e.installGen++
}

// SetState installs agent i's state. The leader count is not recomputed
// eagerly — installing an n-agent configuration state-by-state is O(n), not
// O(n²) — but lazily on the next read or interaction. As with SetStates, an
// install that changes agent i's leader output is recorded as a leader-set
// change at the current step.
func (e *Engine[S]) SetState(i int, s S) {
	if e.isLeader != nil && e.isLeader(s) != e.isLeader(e.states[i]) {
		e.recordLeaderChange()
	}
	e.states[i] = s
	e.leaderDirty = true
	e.trackerDirty = e.tracker != nil
	e.installGen++
}

func (e *Engine[S]) recordLeaderChange() {
	e.lastLeaderChange = e.step
	e.leaderChanges++
}

// SetObserver installs an observer notified of every touched agent. Pass nil
// to remove it.
func (e *Engine[S]) SetObserver(obs Observer[S]) { e.observer = obs }

// SetTracker installs an incremental convergence tracker, immediately reset
// against the current configuration; pass nil to remove it. While installed
// the tracker is kept in sync by every execution path — Step, Run, RunBatch
// and deterministic schedules alike — at O(1) cost per interaction, and
// RunUntilConverged uses it to report exact hitting times. State installs
// through SetStates/SetState reset it lazily before the next interaction.
func (e *Engine[S]) SetTracker(t ConvergenceTracker[S]) {
	e.tracker = t
	e.trackerDirty = false
	if t != nil {
		t.Reset(e.states)
	}
}

// SetLeaderHook installs fn, invoked after every interaction that changes
// the leader set with the post-interaction step count and leader count —
// the O(1) observation point probes sample leader-count trajectories from.
// It fires only for interaction-driven changes (state installs through
// SetStates/SetState are the caller's own doing and are not reported);
// leader tracking must be enabled. Pass nil to remove it. The hook adds no
// work to interactions that leave the leader set unchanged, so the batched
// hot paths keep their throughput.
func (e *Engine[S]) SetLeaderHook(fn func(step uint64, leaders int)) { e.leaderHook = fn }

// SetScheduler installs an arc scheduler; pass nil to restore the
// default uniform distribution. Draws already buffered from an earlier
// batch still execute first (stream continuity); fresh draws follow the
// new distribution. Schedulers hold per-trial state (alias tables,
// phase caches) and must not be shared across engines running
// concurrently.
func (e *Engine[S]) SetScheduler(s ArcScheduler) {
	e.sched = s
	if s != nil {
		e.schedNext = s.NextTransition(e.step)
	}
}

// SetEpochHook installs fn, invoked at every scheduler phase transition
// (an eclipse window opening or closing) with the boundary step index
// and the phase that begins there. Transitions are detected when the
// draw stream reaches the boundary, so a run that converges short of
// one never fires it. Pass nil to remove. The hook costs nothing on the
// uniform path: the default and Uniform schedulers have no transitions.
func (e *Engine[S]) SetEpochHook(fn func(step uint64, epoch int, eclipsed bool)) {
	e.epochHook = fn
}

// SetFrozen installs the stuck-agent mask: frozen[i] means agent i
// never changes state, in either interaction role (a Byzantine agent
// that answers with its fixed state; its partners still update). Pass
// nil to unfreeze everyone. The mask is the caller's slice — it is not
// copied — and must match the current agent count.
func (e *Engine[S]) SetFrozen(frozen []bool) {
	if frozen != nil && len(frozen) != e.topo.N {
		panic(fmt.Sprintf("population: SetFrozen got %d flags for %d agents", len(frozen), e.topo.N))
	}
	e.frozen = frozen
}

// FrozenAgents returns the installed stuck-agent mask (nil when no
// agents are stuck). Shared with the engine; treat as read-only.
func (e *Engine[S]) FrozenAgents() []bool { return e.frozen }

// Arcs returns the number of arcs in the current topology — the bound
// scheduler draws are taken from.
func (e *Engine[S]) Arcs() int { return len(e.topo.Arcs) }

// SetTopology replaces the interaction graph and configuration in one
// install — the churn path: agents joined or left, the ring was
// re-spliced, and the new configuration has a different length. The
// step counter, RNG position and leader-change history carry over.
// Pending buffered draws are dropped (they index the old arc list), the
// stuck-agent mask and scheduler are cleared (both are sized to the old
// topology — the caller re-installs them against the new one), the
// tracker is reset lazily against the new configuration, and installGen
// is bumped so the interned layer re-interns. A leader-set change is
// recorded when the install changes the leader count.
func (e *Engine[S]) SetTopology(topo Topology, states []S) {
	if len(states) != topo.N {
		panic(fmt.Sprintf("population: SetTopology got %d states for %d agents", len(states), topo.N))
	}
	oldCount := 0
	if e.isLeader != nil {
		if e.leaderDirty {
			e.recountLeaders()
		}
		oldCount = e.leaderCount
	}
	e.topo = topo
	e.states = make([]S, topo.N)
	copy(e.states, states)
	e.pendStart, e.pendEnd = 0, 0
	e.frozen = nil
	e.sched = nil
	e.trackerDirty = e.tracker != nil
	e.installGen++
	if e.isLeader != nil {
		e.recountLeaders()
		if e.leaderCount != oldCount {
			e.recordLeaderChange()
		}
	} else {
		e.leaderDirty = true
	}
}

// TracksLeaders reports whether TrackLeaders has enabled leader-set
// accounting on this engine.
func (e *Engine[S]) TracksLeaders() bool { return e.isLeader != nil }

// TrackLeaders enables leader-set change accounting using the given output
// predicate. It must be called after the initial configuration is installed.
func (e *Engine[S]) TrackLeaders(isLeader func(S) bool) {
	e.isLeader = isLeader
	e.recountLeaders()
}

func (e *Engine[S]) recountLeaders() {
	e.leaderDirty = false
	if e.isLeader == nil {
		return
	}
	n := 0
	for _, s := range e.states {
		if e.isLeader(s) {
			n++
		}
	}
	e.leaderCount = n
}

// LeaderCount returns the current number of agents whose output is leader.
// Valid only after TrackLeaders.
func (e *Engine[S]) LeaderCount() int {
	if e.leaderDirty {
		e.recountLeaders()
	}
	return e.leaderCount
}

// LastLeaderChange returns the step index (1-based: the value of Steps()
// right after the interaction) at which the leader set last changed, or 0 if
// it never changed since tracking began.
func (e *Engine[S]) LastLeaderChange() uint64 { return e.lastLeaderChange }

// LeaderChanges returns how many interactions changed the leader set.
func (e *Engine[S]) LeaderChanges() uint64 { return e.leaderChanges }

// Step executes one scheduler step: a uniformly random arc interacts.
func (e *Engine[S]) Step() {
	e.applyArc(e.drawArc())
}

// drawArc returns the next scheduler arc index: a buffered draw left over
// from a convergence run if one exists, else a fresh RNG draw.
func (e *Engine[S]) drawArc() int {
	if e.pendStart < e.pendEnd {
		k := int(e.pendBuf[e.pendStart])
		e.pendStart++
		return k
	}
	if e.sched == nil {
		return e.rng.Intn(len(e.topo.Arcs))
	}
	e.schedCross()
	var one [1]int32
	e.sched.Fill(e.rng, e.step, one[:])
	return int(one[0])
}

// schedCross fires the epoch hook for every scheduler phase boundary at
// or before the current step and advances the cached next-transition
// step. Called only on scheduler-installed paths, right before drawing.
func (e *Engine[S]) schedCross() {
	for e.schedNext <= e.step {
		boundary := e.schedNext
		e.schedNext = e.sched.NextTransition(boundary)
		if e.epochHook != nil {
			epoch, eclipsed := e.sched.Phase(boundary)
			e.epochHook(boundary, epoch, eclipsed)
		}
	}
}

// refillPending refills the pending-draw buffer with up to want draws
// for the steps starting at the current step count. With no scheduler
// installed this is the historical uniform batch — one FillIntn over
// min(want, arcBatch) slots, byte-identical to the pre-scheduler
// engine. With one installed, the batch is additionally clamped at the
// scheduler's next phase boundary so a single Fill never spans two
// distributions. want must be at least 1.
func (e *Engine[S]) refillPending(want uint64) {
	batch := uint64(arcBatch)
	if want < batch {
		batch = want
	}
	if e.sched == nil {
		e.rng.FillIntn(len(e.topo.Arcs), e.pendBuf[:batch])
	} else {
		e.schedCross()
		if lim := e.schedNext - e.step; lim < batch {
			batch = lim
		}
		e.sched.Fill(e.rng, e.step, e.pendBuf[:batch])
	}
	e.pendStart, e.pendEnd = 0, int(batch)
}

// ApplyArc forces the interaction on arc k of the topology. It is used by
// deterministic-schedule tests (for example, the Figure 2 trajectory).
func (e *Engine[S]) ApplyArc(k int) {
	e.applyArc(k)
}

func (e *Engine[S]) applyArc(k int) {
	if e.leaderDirty {
		e.recountLeaders()
	}
	arc := e.topo.Arcs[k]
	li, ri := arc[0], arc[1]
	lb, rb := e.states[li], e.states[ri]
	e.applyPair(li, ri, lb, rb)
	if e.observer != nil {
		e.observer(int(li), lb, e.states[li])
		e.observer(int(ri), rb, e.states[ri])
	}
}

// applyPair executes the transition on the arc (li, ri) with pre-states
// (lb, rb) and maintains the step counter and leader accounting. It is the
// single copy of the interaction bookkeeping shared by the step-at-a-time
// and batched paths; callers handle the dirty check and observer dispatch.
func (e *Engine[S]) applyPair(li, ri int32, lb, rb S) {
	la, ra := e.trans(lb, rb)
	if e.frozen != nil {
		// Stuck agents keep their pre-state; the partner's update stands.
		if e.frozen[li] {
			la = lb
		}
		if e.frozen[ri] {
			ra = rb
		}
	}
	e.states[li], e.states[ri] = la, ra
	e.step++
	if e.tracker != nil {
		e.syncTracker(li, ri)
	}
	if e.isLeader == nil {
		return
	}
	changed := false
	if wl, il := e.isLeader(lb), e.isLeader(la); wl != il {
		changed = true
		if il {
			e.leaderCount++
		} else {
			e.leaderCount--
		}
	}
	if wr, ir := e.isLeader(rb), e.isLeader(ra); wr != ir {
		changed = true
		if ir {
			e.leaderCount++
		} else {
			e.leaderCount--
		}
	}
	if changed {
		e.lastLeaderChange = e.step
		e.leaderChanges++
		if e.leaderHook != nil {
			e.leaderHook(e.step, e.leaderCount)
		}
	}
}

// syncTracker brings the tracker up to date after the interaction on
// (li, ri): a pending bulk install triggers a full reset, otherwise the
// O(1) incremental update runs. Called from applyPair only when a tracker
// is installed.
func (e *Engine[S]) syncTracker(li, ri int32) {
	if e.trackerDirty {
		e.tracker.Reset(e.states)
		e.trackerDirty = false
		return
	}
	e.tracker.Update(li, ri)
}

// Run executes exactly steps scheduler steps. When no observer is installed
// it takes the RunBatch fast path; the random arc sequence is identical
// either way.
func (e *Engine[S]) Run(steps uint64) {
	if e.observer == nil {
		e.RunBatch(steps)
		return
	}
	for i := uint64(0); i < steps; i++ {
		e.Step()
	}
}

// arcBatch is the number of random arc indices drawn per RNG call in
// RunBatch — large enough to amortize call overhead, small enough to stay in
// L1 on the stack.
const arcBatch = 256

// RunBatch executes exactly steps scheduler steps on the hot path: arc draws
// are batched through xrand.RNG.FillIntn and observer dispatch is skipped
// entirely (any installed observer is NOT notified — callers that need
// observation must use Run or Step). The RNG stream and all state,
// leader-tracking, and step accounting are bit-for-bit identical to the
// step-at-a-time path.
func (e *Engine[S]) RunBatch(steps uint64) {
	if e.leaderDirty {
		e.recountLeaders()
	}
	for steps > 0 && e.pendStart < e.pendEnd {
		// Buffered draws from an earlier convergence run come first, so
		// the executed arc sequence stays the serial stream of the seed.
		arc := e.topo.Arcs[e.pendBuf[e.pendStart]]
		e.pendStart++
		li, ri := arc[0], arc[1]
		e.applyPair(li, ri, e.states[li], e.states[ri])
		steps--
	}
	if e.sched != nil {
		// Scheduler-aware batches go through the pending buffer so phase
		// clamping and epoch events live in one place (refillPending).
		for steps > 0 {
			e.refillPending(steps)
			drew := uint64(e.pendEnd)
			for _, k := range e.pendBuf[:e.pendEnd] {
				arc := e.topo.Arcs[k]
				li, ri := arc[0], arc[1]
				e.applyPair(li, ri, e.states[li], e.states[ri])
			}
			e.pendStart = e.pendEnd
			steps -= drew
		}
		return
	}
	var buf [arcBatch]int32
	nArcs := len(e.topo.Arcs)
	for steps > 0 {
		batch := uint64(arcBatch)
		if steps < batch {
			batch = steps
		}
		draws := buf[:batch]
		e.rng.FillIntn(nArcs, draws)
		for _, k := range draws {
			arc := e.topo.Arcs[k]
			li, ri := arc[0], arc[1]
			e.applyPair(li, ri, e.states[li], e.states[ri])
		}
		steps -= batch
	}
}

// RunUntil runs until pred holds over the configuration, checking every
// checkEvery steps (and once before running), or until maxSteps have
// executed in total (counting steps from previous runs). It returns the
// engine step count at which pred was first observed and whether it was.
//
// If pred is a closed predicate (once true, always true — such as
// membership in the paper's S_PL), the returned step overestimates the true
// hitting time by at most checkEvery-1 steps.
func (e *Engine[S]) RunUntil(pred func([]S) bool, checkEvery int, maxSteps uint64) (uint64, bool) {
	if checkEvery < 1 {
		checkEvery = 1
	}
	if pred(e.states) {
		return e.step, true
	}
	for e.step < maxSteps {
		batch := uint64(checkEvery)
		if rem := maxSteps - e.step; rem < batch {
			batch = rem
		}
		e.Run(batch)
		if pred(e.states) {
			return e.step, true
		}
	}
	return e.step, false
}

// RunUntilConverged runs until the installed convergence tracker reports
// convergence, or until maxSteps have executed in total (counting steps
// from previous runs). It returns the engine step count at which the
// tracker first held and whether it did. Unlike RunUntil, the predicate is
// evaluated after every single step through the tracker's O(1) counters,
// so for a closed predicate the returned step is the exact hitting time —
// no checkEvery quantization. The arc sequence executed is identical to
// Run/RunBatch for the same RNG state; on mid-batch convergence the
// remaining pre-drawn arcs stay buffered and are executed first by any
// later Step/Run/RunBatch call, so continued use of the engine (fault
// loops re-running to convergence, say) still follows the serial stream
// of the seed.
//
// It panics if no tracker is installed.
func (e *Engine[S]) RunUntilConverged(maxSteps uint64) (uint64, bool) {
	if e.tracker == nil {
		panic("population: RunUntilConverged without a tracker (call SetTracker)")
	}
	if e.trackerDirty {
		e.tracker.Reset(e.states)
		e.trackerDirty = false
	}
	if e.tracker.Converged() {
		return e.step, true
	}
	if e.observer != nil {
		// Observer dispatch forces the step-at-a-time path, exactly as Run.
		for e.step < maxSteps {
			e.Step()
			if e.tracker.Converged() {
				return e.step, true
			}
		}
		return e.step, false
	}
	if e.leaderDirty {
		e.recountLeaders()
	}
	for e.step < maxSteps {
		if e.pendStart == e.pendEnd {
			e.refillPending(maxSteps - e.step)
		}
		arc := e.topo.Arcs[e.pendBuf[e.pendStart]]
		e.pendStart++
		li, ri := arc[0], arc[1]
		e.applyPair(li, ri, e.states[li], e.states[ri])
		if e.tracker.Converged() {
			return e.step, true
		}
	}
	return e.step, false
}

// ScheduleSeqR returns the arc indices of the paper's seq_R(i, j) on a
// directed ring: interactions e_i, e_{i+1}, ..., e_{i+j-1}, where e_k is the
// arc (u_k, u_{k+1}).
func ScheduleSeqR(n, i, j int) []int {
	out := make([]int, j)
	for k := 0; k < j; k++ {
		out[k] = mod(i+k, n)
	}
	return out
}

// ScheduleSeqL returns the arc indices of the paper's seq_L(i, j):
// e_{i-1}, e_{i-2}, ..., e_{i-j}.
func ScheduleSeqL(n, i, j int) []int {
	out := make([]int, j)
	for k := 1; k <= j; k++ {
		out[k-1] = mod(i-k, n)
	}
	return out
}

// ApplySchedule forces the given interactions in order.
func (e *Engine[S]) ApplySchedule(arcs []int) {
	for _, k := range arcs {
		e.applyArc(k)
	}
}

func mod(a, n int) int {
	a %= n
	if a < 0 {
		a += n
	}
	return a
}
