// Package tracktest is the shared exactness harness of the per-protocol
// convergence-tracker regression tests: it pins every RingSpec to the
// protocol's brute-force scan predicate, step by step and through the
// engine's run paths, so incremental hitting times are provably the exact
// hitting times.
package tracktest

import (
	"testing"

	"repro/internal/population"
)

// Exact verifies that spec is an exact delta-decomposition of pred on the
// engine produced by mk (mk must return identically seeded, identically
// initialized engines on every call):
//
//  1. Stepping one engine interaction by interaction, the tracker's
//     verdict equals the scan predicate after every single step, up to
//     maxSteps or until shortly after the predicate first holds — so the
//     tracker can neither fire early nor late, anywhere on the trajectory.
//  2. RunUntilConverged (the batched production path) returns exactly the
//     (step, converged) of RunUntil with checkEvery=1 — the per-step
//     brute-force scan oracle — on a fresh engine with the same seed.
//
// tailSteps extra steps are verified after the first hit, guarding
// against a tracker that drifts out of sync once inside the closed set.
func Exact[S any](t *testing.T, mk func() *population.Engine[S], spec population.RingSpec[S], pred func([]S) bool, maxSteps uint64) {
	t.Helper()
	const tailSteps = 256

	eng := mk()
	tr := population.NewRingTracker(spec)
	eng.SetTracker(tr)
	if got, want := tr.Converged(), pred(eng.Config()); got != want {
		t.Fatalf("step 0: tracker says %v, scan says %v", got, want)
	}
	tail := uint64(0)
	hit := false
	for eng.Steps() < maxSteps {
		eng.Step()
		got, want := tr.Converged(), pred(eng.Config())
		if got != want {
			t.Fatalf("step %d: tracker says %v, scan says %v", eng.Steps(), got, want)
		}
		if want {
			hit = true
			if tail++; tail > tailSteps {
				break
			}
		}
	}
	if !hit {
		t.Logf("note: no convergence within %d steps (agreement still verified per step)", maxSteps)
	}

	tracked := mk()
	tracked.SetTracker(population.NewRingTracker(spec))
	gotStep, gotOK := tracked.RunUntilConverged(maxSteps)
	oracle := mk()
	wantStep, wantOK := oracle.RunUntil(pred, 1, maxSteps)
	if gotStep != wantStep || gotOK != wantOK {
		t.Fatalf("RunUntilConverged = (%d, %v), per-step scan oracle = (%d, %v)",
			gotStep, gotOK, wantStep, wantOK)
	}
}
