package population

import (
	"testing"

	"repro/internal/xrand"
)

func TestOccurrenceTimeEmpty(t *testing.T) {
	if got := OccurrenceTime(5, nil, xrand.New(1)); got != 0 {
		t.Fatalf("empty schedule took %d steps", got)
	}
}

func TestOccurrenceTimeSingleArc(t *testing.T) {
	// A single arc among n occurs within ~n steps in expectation.
	const n = 16
	rng := xrand.New(2)
	var total uint64
	const trials = 2000
	for i := 0; i < trials; i++ {
		total += OccurrenceTime(n, []int{3}, rng)
	}
	mean := float64(total) / trials
	if mean < 0.8*n || mean > 1.2*n {
		t.Fatalf("mean occurrence %v, want ~%d", mean, n)
	}
}

// TestLemma23Expectation: a sequence of length ℓ occurs within n·ℓ steps
// in expectation.
func TestLemma23Expectation(t *testing.T) {
	const n = 12
	rng := xrand.New(3)
	for _, ell := range []int{4, 12, 24} {
		schedule := ScheduleSeqR(n, 0, ell)
		var total uint64
		const trials = 800
		for i := 0; i < trials; i++ {
			total += OccurrenceTime(n, schedule, rng)
		}
		mean := float64(total) / trials
		want := float64(n * ell)
		if mean < 0.85*want || mean > 1.15*want {
			t.Fatalf("ℓ=%d: mean %v, want ~%v", ell, mean, want)
		}
	}
}

// TestLemma23Tail: the w.h.p. clause — occurrences beyond c·n(ℓ+log n)
// must be rare.
func TestLemma23Tail(t *testing.T) {
	const (
		n      = 12
		ell    = 12
		trials = 2000
	)
	rng := xrand.New(4)
	schedule := ScheduleSeqR(n, 0, ell)
	budget := uint64(4 * n * (ell + 4)) // c=4, log2(12)≈3.6
	exceed := 0
	for i := 0; i < trials; i++ {
		if OccurrenceTime(n, schedule, rng) > budget {
			exceed++
		}
	}
	if rate := float64(exceed) / trials; rate > 0.05 {
		t.Fatalf("tail rate %.3f too heavy (budget %d)", rate, budget)
	}
}
