package core

import (
	"fmt"

	"repro/internal/war"
)

// Mode is the detection/construction mode of Algorithm 2. It is fully
// determined by the clock (Algorithm 4, lines 49–50): Detect iff
// clock = κ_max.
type Mode uint8

const (
	Construct Mode = iota + 1
	Detect
)

func (m Mode) String() string {
	switch m {
	case Construct:
		return "construct"
	case Detect:
		return "detect"
	default:
		return "invalid"
	}
}

// Token is one of the black/white comparison tokens of Section 3.2. The
// zero value represents ⊥ (no token).
type Token struct {
	// Pos is token[1], the relative position of the target:
	// [−ψ+1, −1] ∪ [1, ψ]. Positive means moving right toward u_{i+Pos},
	// negative moving left toward u_{i+Pos}. 0 encodes ⊥.
	Pos int16
	// Bit is token[2], the binary value written to (construction mode) or
	// checked against (detection mode) the target's b.
	Bit uint8
	// Carry is token[3], the carry flag of the segment-ID increment.
	Carry uint8
}

// None reports whether the token is ⊥.
func (t Token) None() bool { return t.Pos == 0 }

func (t Token) String() string {
	if t.None() {
		return "⊥"
	}
	return fmt.Sprintf("(%d,%d,%d)", t.Pos, t.Bit, t.Carry)
}

// State is the full per-agent state of P_PL (Algorithm 1's variable list).
type State struct {
	// Leader is the output variable: true ⇒ output L, false ⇒ output F.
	Leader bool
	// B is the segment-ID bit b ∈ {0,1}.
	B uint8
	// Dist is the distance from the nearest left leader modulo 2ψ.
	Dist uint16
	// Last marks membership in the last segment (the one ending at a
	// leader).
	Last bool
	// TokB and TokW are the black (d=0) and white (d=ψ) tokens.
	TokB Token
	TokW Token
	// Clock ∈ [0, κ_max] is the leaderlessness barometer; Detect mode iff
	// Clock = κ_max.
	Clock uint16
	// Hits ∈ [0, ψ] counts consecutive interactions with the left neighbor
	// since the agent last interacted with its right neighbor (the
	// lottery-game coin streak).
	Hits uint16
	// SignalR ∈ [0, κ_max] is the TTL of the clockwise resetting signal
	// carried by this agent (0 = no signal).
	SignalR uint16
	// War holds bullet/shield/signalB of Algorithm 5.
	War war.State
}

// Mode returns the agent's mode under parameters p.
func (p Params) Mode(s State) Mode {
	if int(s.Clock) == p.KappaMax {
		return Detect
	}
	return Construct
}

// IsLeader is the output function π_out.
func IsLeader(s State) bool { return s.Leader }

// ValidState reports whether every field of s lies in its declared domain
// under parameters p. The transition function preserves validity (see
// TestTransitionPreservesValidity).
func (p Params) ValidState(s State) bool {
	if s.B > 1 || int(s.Dist) >= p.TwoPsi() {
		return false
	}
	if int(s.Clock) > p.KappaMax || int(s.Hits) > p.Psi || int(s.SignalR) > p.KappaMax {
		return false
	}
	if !p.validToken(s.TokB) || !p.validToken(s.TokW) {
		return false
	}
	return s.War.Bullet <= war.Live
}

func (p Params) validToken(t Token) bool {
	if t.None() {
		return true
	}
	if t.Bit > 1 || t.Carry > 1 {
		return false
	}
	return (t.Pos >= int16(-p.Psi+1) && t.Pos <= -1) || (t.Pos >= 1 && t.Pos <= int16(p.Psi))
}
