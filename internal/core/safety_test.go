package core

import (
	"strings"
	"testing"

	"repro/internal/war"
	"repro/internal/xrand"
)

func TestPerfectConfigIsSafe(t *testing.T) {
	for _, n := range []int{4, 5, 8, 12, 15, 16, 17, 31, 32, 33, 64, 100} {
		p := NewParams(n)
		for _, leaderAt := range []int{0, 1, n / 2, n - 1} {
			cfg := p.PerfectConfig(leaderAt, 0)
			if got := LeaderCount(cfg); got != 1 {
				t.Fatalf("n=%d leaderAt=%d: %d leaders", n, leaderAt, got)
			}
			if LeaderIndex(cfg) != leaderAt {
				t.Fatalf("n=%d: leader at %d, want %d", n, LeaderIndex(cfg), leaderAt)
			}
			if !p.DistConsistent(cfg) {
				t.Fatalf("n=%d leaderAt=%d: distances inconsistent", n, leaderAt)
			}
			if !p.IsPerfect(cfg) {
				t.Fatalf("n=%d leaderAt=%d: not perfect", n, leaderAt)
			}
			if !p.InCPB(cfg) || !p.InCDL(cfg) {
				t.Fatalf("n=%d leaderAt=%d: not in C_PB/C_DL", n, leaderAt)
			}
			if !p.IsSafe(cfg) {
				t.Fatalf("n=%d leaderAt=%d: not in S_PL", n, leaderAt)
			}
		}
	}
}

func TestPerfectConfigAnyFirstID(t *testing.T) {
	p := NewParams(24)
	for id := uint64(0); id < 1<<uint(p.Psi); id += 7 {
		if !p.IsSafe(p.PerfectConfig(3, id)) {
			t.Fatalf("firstID=%d not safe", id)
		}
	}
}

// TestLemma32 checks Lemma 3.2: a configuration without a leader is never
// perfect. We enumerate adversarial b assignments over dist-consistent
// leaderless rings and confirm at least one segment violates condition (2).
func TestLemma32(t *testing.T) {
	// 2ψ | n so that a leaderless ring can be fully dist-consistent — the
	// adversary's best case.
	for _, n := range []int{8, 16, 24} {
		p := NewParams(n)
		if n%p.TwoPsi() != 0 {
			p = Params{N: n, Psi: 4, KappaMax: 32}
			if n%p.TwoPsi() != 0 {
				t.Fatalf("test setup: pick n divisible by 2ψ (n=%d ψ=%d)", n, p.Psi)
			}
		}
		rng := xrand.New(uint64(n))
		for trial := 0; trial < 200; trial++ {
			cfg := make([]State, n)
			for i := range cfg {
				cfg[i] = State{
					Dist: uint16(i % p.TwoPsi()),
					B:    uint8(rng.Intn(2)),
				}
			}
			if p.IsPerfect(cfg) {
				t.Fatalf("n=%d trial %d: leaderless perfect configuration exists — contradicts Lemma 3.2", n, trial)
			}
		}
	}
}

// TestLemma32Exhaustive enumerates every b assignment for small rings with
// valid knowledge (2^ψ ≥ n) — no leaderless perfect configuration may exist
// at all.
func TestLemma32Exhaustive(t *testing.T) {
	for _, p := range []Params{
		{N: 8, Psi: 4, KappaMax: 32},  // 2ψ=8 divides 8, 2 segments
		{N: 16, Psi: 4, KappaMax: 32}, // 2ψ=8 divides 16, 4 segments
	} {
		if err := p.Validate(); err != nil {
			t.Fatal(err)
		}
		n := p.N
		for bits := 0; bits < 1<<uint(n); bits++ {
			cfg := make([]State, n)
			for i := range cfg {
				cfg[i] = State{
					Dist: uint16(i % p.TwoPsi()),
					B:    uint8((bits >> uint(i)) & 1),
				}
			}
			if p.IsPerfect(cfg) {
				t.Fatalf("n=%d ψ=%d: leaderless perfect configuration found: bits=%b", n, p.Psi, bits)
			}
		}
	}
}

// TestLemma32NeedsKnowledge documents that the knowledge assumption
// 2^ψ ≥ n is necessary: with ψ too small for the ring, leaderless perfect
// configurations exist (segment IDs can wrap consistently around the ring),
// so the absence of a leader would be undetectable.
func TestLemma32NeedsKnowledge(t *testing.T) {
	p := Params{N: 8, Psi: 2, KappaMax: 16} // invalid: 2^ψ = 4 < 8
	if p.Validate() == nil {
		t.Fatal("test premise: params must be invalid")
	}
	// IDs 1,2,3,0 around the ring wrap consistently mod 2^ψ = 4.
	bits := []uint8{1, 0, 0, 1, 1, 1, 0, 0}
	cfg := make([]State, p.N)
	for i := range cfg {
		cfg[i] = State{Dist: uint16(i % p.TwoPsi()), B: bits[i]}
	}
	if !p.IsPerfect(cfg) {
		t.Fatal("expected a leaderless perfect configuration under broken knowledge")
	}
}

func TestIsPerfectDetectsIDViolation(t *testing.T) {
	p := NewParams(16)
	cfg := p.PerfectConfig(0, 0)
	// Corrupt a bit in segment S_1 (an interior, non-exempt segment needs
	// ζ ≥ 4; n=16, ψ=4 gives ζ=4, so S_1 and S_2 are both constrained).
	cfg[p.Psi].B ^= 1
	if p.IsPerfect(cfg) {
		t.Fatal("corrupted segment ID still perfect")
	}
	if p.IsSafe(cfg) {
		t.Fatal("corrupted segment ID still safe")
	}
}

func TestIsPerfectExemptsLeaderSegments(t *testing.T) {
	p := NewParams(16)
	cfg := p.PerfectConfig(0, 0)
	// The last segment (ending at the leader) is exempt from condition (2).
	for i := p.N - p.Psi; i < p.N; i++ {
		cfg[i].B ^= 1
	}
	if !p.IsPerfect(cfg) {
		t.Fatal("last segment should be exempt from condition (2)")
	}
}

func TestDistConsistentDetectsViolation(t *testing.T) {
	p := NewParams(16)
	cfg := p.PerfectConfig(0, 0)
	cfg[5].Dist = (cfg[5].Dist + 1) % uint16(p.TwoPsi())
	if p.DistConsistent(cfg) {
		t.Fatal("distance corruption not detected")
	}
}

func TestInCDLRequiresExactLast(t *testing.T) {
	p := NewParams(16)
	cfg := p.PerfectConfig(0, 0)
	cfg[2].Last = true // interior agent wrongly marked last
	if p.InCDL(cfg) {
		t.Fatal("wrong last bit accepted by InCDL")
	}
}

func TestInCPBRejectsHostileBullet(t *testing.T) {
	p := NewParams(16)
	cfg := p.PerfectConfig(0, 0)
	cfg[0].War.Shield = false
	cfg[5].War.Bullet = war.Live // live bullet with unshielded left leader
	if p.InCPB(cfg) {
		t.Fatal("non-peaceful live bullet accepted")
	}
	if p.IsSafe(cfg) {
		t.Fatal("non-peaceful live bullet is not safe")
	}
}

func TestInCPBAcceptsPeacefulBullet(t *testing.T) {
	p := NewParams(16)
	cfg := p.PerfectConfig(0, 0) // leader shielded by construction
	cfg[5].War.Bullet = war.Live
	if !p.InCPB(cfg) {
		t.Fatal("peaceful live bullet rejected")
	}
}

func TestIsSafeRejectsZeroOrManyLeaders(t *testing.T) {
	p := NewParams(16)
	cfg := p.PerfectConfig(0, 0)
	cfg[0].Leader = false
	if p.IsSafe(cfg) || p.InCDL(cfg) {
		t.Fatal("leaderless configuration judged safe")
	}
	cfg = p.PerfectConfig(0, 0)
	cfg[8].Leader = true
	if p.IsSafe(cfg) {
		t.Fatal("two-leader configuration judged safe")
	}
}

func TestIsSafeTokenJudgments(t *testing.T) {
	p := NewParams(16) // ψ=4, ζ=4
	psi := int16(p.Psi)

	put := func(mut func(cfg []State)) []State {
		cfg := p.PerfectConfig(0, 0)
		mut(cfg)
		return cfg
	}

	tests := []struct {
		name string
		cfg  []State
		want bool
	}{
		{
			name: "fresh black token at black border",
			cfg: put(func(cfg []State) {
				// ι(S_0)=0 ⇒ b=0 at u_0 ⇒ fresh token (ψ, 1, 0).
				cfg[0].TokB = Token{Pos: psi, Bit: 1, Carry: 0}
			}),
			want: true,
		},
		{
			name: "fresh white token at white border",
			cfg: put(func(cfg []State) {
				// ι(S_1)=1 ⇒ b=1 at u_ψ ⇒ fresh token (ψ, 0, 1).
				cfg[p.Psi].TokW = Token{Pos: psi, Bit: 0, Carry: 1}
			}),
			want: true,
		},
		{
			name: "black token with wrong bit",
			cfg: put(func(cfg []State) {
				cfg[0].TokB = Token{Pos: psi, Bit: 0, Carry: 0}
			}),
			want: false,
		},
		{
			name: "black token with wrong carry",
			cfg: put(func(cfg []State) {
				cfg[0].TokB = Token{Pos: psi, Bit: 1, Carry: 1}
			}),
			want: false,
		},
		{
			name: "white token at black border (color mismatch)",
			cfg: put(func(cfg []State) {
				cfg[0].TokW = Token{Pos: psi, Bit: 1, Carry: 0}
			}),
			want: false,
		},
		{
			name: "token in last segment",
			cfg: put(func(cfg []State) {
				cfg[p.N-1].TokB = Token{Pos: 1, Bit: 0, Carry: 0}
			}),
			want: false,
		},
		{
			name: "left-moving token wrapping past the leader",
			cfg: put(func(cfg []State) {
				cfg[1].TokW = Token{Pos: -2, Bit: 0, Carry: 0}
			}),
			want: false,
		},
		{
			name: "mid-flight correct black token",
			cfg: put(func(cfg []State) {
				// Token from S_0 (ι=0, bits 0000): round 0 payload is
				// bit=1, carry=0; after two moves it sits at u_2 with Pos
				// ψ-2 targeting u_ψ.
				cfg[2].TokB = Token{Pos: psi - 2, Bit: 1, Carry: 0}
			}),
			want: true,
		},
		{
			name: "left-moving correct black token",
			cfg: put(func(cfg []State) {
				// Returning toward u_1 (round 0 left target) with the same
				// payload it delivered.
				cfg[3].TokB = Token{Pos: -2, Bit: 1, Carry: 0}
			}),
			want: true,
		},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := p.IsSafe(tt.cfg); got != tt.want {
				t.Fatalf("IsSafe = %v, want %v", got, tt.want)
			}
		})
	}
}

func TestLeaderHelpers(t *testing.T) {
	cfg := []State{{Leader: true}, {}, {Leader: true}}
	if LeaderCount(cfg) != 2 {
		t.Fatal("LeaderCount broken")
	}
	if LeaderIndex(cfg) != -1 {
		t.Fatal("LeaderIndex must be -1 for two leaders")
	}
	if LeaderIndex(cfg[:2]) != 0 {
		t.Fatal("LeaderIndex broken for unique leader")
	}
	if LeaderIndex([]State{{}, {}}) != -1 {
		t.Fatal("LeaderIndex must be -1 for no leader")
	}
}

func TestNoLeaderAlignedShape(t *testing.T) {
	p := NewParams(16)
	cfg := p.NoLeaderAligned()
	if LeaderCount(cfg) != 0 {
		t.Fatal("NoLeaderAligned has a leader")
	}
	if !p.DistConsistent(cfg) {
		t.Fatal("NoLeaderAligned distances must be consistent when 2ψ | n")
	}
	if p.IsPerfect(cfg) {
		t.Fatal("NoLeaderAligned must not be perfect (Lemma 3.2)")
	}
	for i, s := range cfg {
		if p.Mode(s) != Detect {
			t.Fatalf("agent %d not in detection mode", i)
		}
	}
}

func TestRandomConfigIsValid(t *testing.T) {
	p := NewParams(32)
	rng := xrand.New(9)
	for trial := 0; trial < 50; trial++ {
		for i, s := range p.RandomConfig(rng) {
			if !p.ValidState(s) {
				t.Fatalf("trial %d agent %d: invalid random state %+v", trial, i, s)
			}
		}
	}
}

func TestRandomTokenCoversDomain(t *testing.T) {
	p := NewParams(8) // ψ=3: positions {-2,-1,1,2,3}
	rng := xrand.New(1)
	seen := make(map[Token]bool)
	for i := 0; i < 20000; i++ {
		seen[p.randomToken(rng)] = true
	}
	// ⊥ plus 5 positions × 2 bits × 2 carries = 21 distinct tokens.
	if len(seen) != 21 {
		t.Fatalf("random tokens covered %d values, want 21", len(seen))
	}
	for tok := range seen {
		if !p.validToken(tok) {
			t.Fatalf("random token %v outside domain", tok)
		}
	}
}

func TestFormatRing(t *testing.T) {
	p := NewParams(16)
	out := p.FormatRing(p.PerfectConfig(0, 5))
	if out == "" {
		t.Fatal("empty rendering")
	}
	// The leader's segment and increasing IDs must be visible.
	for _, want := range []string{"id=5", "id=6", "[L at u0]"} {
		if !strings.Contains(out, want) {
			t.Fatalf("rendering lacks %q:\n%s", want, out)
		}
	}
}
