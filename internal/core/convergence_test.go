package core

import (
	"testing"

	"repro/internal/population"
	"repro/internal/xrand"
)

// budget returns a generous step budget for convergence tests: the paper
// proves O(n² log n) w.h.p.; the constant here absorbs the lottery-game
// constants at the test's κ_max.
func budget(p Params) uint64 {
	n := uint64(p.N)
	return 600 * n * n * uint64(p.Psi)
}

func newEngine(p Params, seed uint64) *population.Engine[State] {
	pr := New(p)
	eng := population.NewEngine(population.DirectedRing(p.N), pr.Step, xrand.New(seed))
	return eng
}

// runToSafe drives the engine until S_PL membership, checking every ~n/2
// steps, and returns the hitting step.
func runToSafe(t *testing.T, p Params, eng *population.Engine[State]) uint64 {
	t.Helper()
	check := p.N/2 + 1
	step, ok := eng.RunUntil(func(cfg []State) bool { return p.IsSafe(cfg) }, check, budget(p))
	if !ok {
		t.Fatalf("n=%d: did not reach S_PL within %d steps (leaders=%d)",
			p.N, budget(p), LeaderCount(eng.Config()))
	}
	return step
}

// TestConvergenceFromRandomConfigs is the main self-stabilization test:
// from uniformly random configurations over the full state space, the
// population reaches S_PL.
func TestConvergenceFromRandomConfigs(t *testing.T) {
	for _, n := range []int{4, 8, 13, 16, 24, 32} {
		p := NewParams(n)
		for seed := uint64(0); seed < 3; seed++ {
			rng := xrand.New(1000 + seed)
			eng := newEngine(p, seed)
			eng.SetStates(p.RandomConfig(rng))
			runToSafe(t, p, eng)
		}
	}
}

// TestConvergenceTinyRings covers the degenerate geometries: n = 2 (the
// paper's ψ = 1 special case handled with ψ = 2 here), n = 3 and n = ψ
// rings where every agent lies in the last segment and detection rests on
// distance consistency alone.
func TestConvergenceTinyRings(t *testing.T) {
	for _, n := range []int{2, 3, 4, 5} {
		p := NewParams(n)
		if n <= p.Psi && p.Zeta() != intMax(1, (n+p.Psi-1)/p.Psi) {
			t.Fatalf("n=%d: unexpected ζ=%d", n, p.Zeta())
		}
		for seed := uint64(0); seed < 5; seed++ {
			eng := newEngine(p, 300+seed)
			eng.SetStates(p.RandomConfig(xrand.New(400 + seed)))
			runToSafe(t, p, eng)
			// Hold: outputs must stay fixed even on tiny rings.
			eng.TrackLeaders(IsLeader)
			eng.Run(50000)
			if LeaderCount(eng.Config()) != 1 || eng.LeaderChanges() != 0 {
				t.Fatalf("n=%d seed=%d: output unstable after convergence", n, seed)
			}
		}
	}
}

func intMax(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// TestConvergenceFromCraftedAdversaries exercises the named hard cases.
func TestConvergenceFromCraftedAdversaries(t *testing.T) {
	n := 16
	p := NewParams(n)
	tests := []struct {
		name string
		cfg  func() []State
	}{
		{"no leader, aligned distances, all detect", func() []State { return p.NoLeaderAligned() }},
		{"all agents leaders", func() []State { return p.AllLeaders() }},
		{"perfect with corrupted IDs", func() []State {
			cfg := p.PerfectConfig(0, 0)
			cfg[p.Psi].B ^= 1
			cfg[p.Psi+1].B ^= 1
			return cfg
		}},
		{"no leader, zero states", func() []State { return make([]State, n) }},
		{"two leaders far apart", func() []State {
			cfg := p.PerfectConfig(0, 0)
			cfg[n/2].Leader = true
			return cfg
		}},
		{"corrupted perfect (fault injection)", func() []State {
			return p.CorruptedPerfect(xrand.New(42), n/4)
		}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			for seed := uint64(0); seed < 3; seed++ {
				eng := newEngine(p, 7000+seed)
				eng.SetStates(tt.cfg())
				runToSafe(t, p, eng)
			}
		})
	}
}

// TestClosureAfterConvergence is Lemma 4.7 empirically: once in S_PL, the
// leader output never changes again, distances and bits stay put, and the
// configuration remains in S_PL.
func TestClosureAfterConvergence(t *testing.T) {
	p := NewParams(16)
	eng := newEngine(p, 3)
	eng.SetStates(p.PerfectConfig(2, 9))
	eng.TrackLeaders(IsLeader)

	before := eng.Snapshot()
	const steps = 300000
	for i := 0; i < steps; i++ {
		eng.Step()
	}
	if eng.LeaderChanges() != 0 {
		t.Fatalf("leader set changed %d times from a safe configuration", eng.LeaderChanges())
	}
	after := eng.Config()
	for i := range after {
		if after[i].B != before[i].B || after[i].Dist != before[i].Dist || after[i].Last != before[i].Last {
			t.Fatalf("agent %d: dist/b/last changed in a safe execution:\nbefore %+v\nafter  %+v",
				i, before[i], after[i])
		}
	}
	if !p.IsSafe(after) {
		t.Fatal("execution left S_PL")
	}
}

// TestClosureFromEveryLeaderPosition re-runs closure from safe
// configurations with the leader at every position of a small ring.
func TestClosureFromEveryLeaderPosition(t *testing.T) {
	p := NewParams(8)
	for at := 0; at < p.N; at++ {
		eng := newEngine(p, uint64(at))
		eng.SetStates(p.PerfectConfig(at, uint64(at)))
		eng.TrackLeaders(IsLeader)
		eng.Run(50000)
		if eng.LeaderChanges() != 0 {
			t.Fatalf("leaderAt=%d: output changed", at)
		}
		if !p.IsSafe(eng.Config()) {
			t.Fatalf("leaderAt=%d: left S_PL", at)
		}
	}
}

// TestDetectionCreatesLeader is the Lemma 3.7 + Lemma 4.9 pipeline: with no
// leader, aligned distances and everyone already in detection mode, the
// token machinery must find the unavoidable segment-ID violation and create
// a leader.
func TestDetectionCreatesLeader(t *testing.T) {
	for _, n := range []int{16, 20, 48} {
		p := NewParams(n)
		if n%p.TwoPsi() != 0 {
			t.Fatalf("test setup: 2ψ must divide n (n=%d ψ=%d)", n, p.Psi)
		}
		for seed := uint64(0); seed < 5; seed++ {
			eng := newEngine(p, 40+seed)
			eng.SetStates(p.NoLeaderAligned())
			eng.TrackLeaders(IsLeader)
			// Until a leader is created, distances stay consistent and no
			// resetting signals exist, so the run isolates the token
			// comparison machinery.
			step, ok := eng.RunUntil(func(cfg []State) bool {
				return LeaderCount(cfg) > 0
			}, p.N/2+1, budget(p))
			if !ok {
				t.Fatalf("n=%d seed=%d: absence of a leader never detected", n, seed)
			}
			_ = step
		}
	}
}

// TestNoSpuriousCreationWithLeader complements detection: in a safe
// configuration the detection machinery must stay quiet — no leader is
// ever created even across long horizons (this is exactly the property
// that approximate-distance schemes would break; see Section 3.1).
func TestNoSpuriousCreationWithLeader(t *testing.T) {
	p := NewParams(12)
	eng := newEngine(p, 5)
	eng.SetStates(p.PerfectConfig(0, 3))
	eng.TrackLeaders(IsLeader)
	eng.Run(500000)
	if got := LeaderCount(eng.Config()); got != 1 {
		t.Fatalf("leader count drifted to %d", got)
	}
	if eng.LeaderChanges() != 0 {
		t.Fatalf("output changed %d times", eng.LeaderChanges())
	}
}

// TestEliminationPhase: from an all-leaders configuration, the war phase
// reduces to exactly one leader and the system then completes construction.
func TestEliminationPhase(t *testing.T) {
	p := NewParams(24)
	for seed := uint64(0); seed < 3; seed++ {
		eng := newEngine(p, 90+seed)
		eng.SetStates(p.AllLeaders())
		eng.TrackLeaders(IsLeader)
		step, ok := eng.RunUntil(func(cfg []State) bool {
			return LeaderCount(cfg) == 1
		}, p.N, budget(p))
		if !ok {
			t.Fatalf("seed=%d: elimination never reached one leader", seed)
		}
		_ = step
		runToSafe(t, p, eng)
	}
}

// TestConvergedLeaderIsUniqueAndStable drives a full random-start run to
// S_PL and then validates the safe configuration's invariants in detail.
func TestConvergedLeaderIsUniqueAndStable(t *testing.T) {
	p := NewParams(16)
	rng := xrand.New(77)
	eng := newEngine(p, 8)
	eng.SetStates(p.RandomConfig(rng))
	runToSafe(t, p, eng)

	cfg := eng.Config()
	k := LeaderIndex(cfg)
	if k < 0 {
		t.Fatal("no unique leader in safe configuration")
	}
	if !p.DistConsistent(cfg) || !p.IsPerfect(cfg) {
		t.Fatal("safe configuration is not perfect")
	}
	// The leader must sit at distance 0 and head segment S_0.
	if cfg[k].Dist != 0 {
		t.Fatalf("leader dist = %d", cfg[k].Dist)
	}
}

func TestConvergenceStepsAreReproducible(t *testing.T) {
	p := NewParams(16)
	run := func() uint64 {
		rng := xrand.New(123)
		eng := newEngine(p, 99)
		eng.SetStates(p.RandomConfig(rng))
		step, ok := eng.RunUntil(func(cfg []State) bool { return p.IsSafe(cfg) }, p.N/2+1, budget(p))
		if !ok {
			t.Fatal("did not converge")
		}
		return step
	}
	if a, b := run(), run(); a != b {
		t.Fatalf("identical seeds converged at different steps: %d vs %d", a, b)
	}
}
