package core

import (
	"repro/internal/population"
	"repro/internal/war"
)

// CanonicalZigzag returns the observable position sequence of a complete
// black-token trajectory for segment pair (S_0, S_1) (Figure 2): in round
// x the token climbs from u_{x+1} to u_{ψ+x} wait-free and descends back to
// u_{x+1}, and in the final round it climbs to u_{2ψ-1} where it expires.
// The first entry is u_1 (the token hops off its border within the creation
// interaction) and the final move onto u_{2ψ-1} is not included because the
// token is consumed there within the same interaction; including both
// endpoints, the trajectory has exactly 2ψ²−2ψ+1 moves (Definition 3.4).
func CanonicalZigzag(psi int) []int {
	var out []int
	for x := 0; x < psi-1; x++ {
		for pos := x + 1; pos <= psi+x; pos++ { // climb of round x
			out = append(out, pos)
		}
		for pos := psi + x - 1; pos >= x+1; pos-- { // descent of round x
			out = append(out, pos)
		}
	}
	for pos := psi; pos <= 2*psi-2; pos++ { // final climb, stopping short
		out = append(out, pos)
	}
	return out
}

// TrajectoryTrace deterministically replays one complete black-token
// trajectory and returns the sequence of agent indices at which the token
// was observed after each interaction, together with the final
// configuration and the parameters used.
//
// Setup: a ring of n = 3ψ agents with the leader at u_0, exact distances,
// segment S_0 carrying ι(S_0) = firstID, and the third segment marked last
// (which keeps white tokens inert). The schedule is the Lemma 3.5 sequence
// (seq_R(0, 2ψ−1)·seq_L(2ψ−1, 2ψ−1))^ψ restricted to arcs e_0..e_{2ψ−2},
// so only the black token of pair (S_0, S_1) ever acts.
//
// It requires ψ ≥ 4: smaller ψ cannot host three segments under the
// knowledge constraint 2^ψ ≥ n.
func TrajectoryTrace(psi int, firstID uint64) (positions []int, final []State, p Params) {
	n := 3 * psi
	p = Params{N: n, Psi: psi, KappaMax: 32 * psi}
	if err := p.Validate(); err != nil {
		panic(err)
	}
	pr := New(p)

	cfg := make([]State, n)
	mask := (uint64(1) << uint(psi)) - 1
	for i := 0; i < n; i++ {
		seg := i / psi
		id := (firstID + uint64(seg)) & mask
		cfg[i] = State{
			Dist: uint16(i % p.TwoPsi()),
			B:    uint8((id >> uint(i%psi)) & 1),
			Last: seg == 2,
		}
	}
	cfg[0].Leader = true
	cfg[0].War = war.State{Shield: true}

	eng := population.NewEngine(population.DirectedRing(n), pr.Step, nil)
	eng.SetStates(cfg)

	rightmostBlack := func() int {
		pos := -1
		for i := 0; i < 2*psi; i++ {
			if !eng.State(i).TokB.None() {
				pos = i
			}
		}
		return pos
	}

	prev := -1
	done := false
	for rep := 0; rep < psi+1 && !done; rep++ {
		schedule := append(
			population.ScheduleSeqR(n, 0, 2*psi-1),
			population.ScheduleSeqL(n, 2*psi-1, 2*psi-1)...)
		for _, arc := range schedule {
			eng.ApplyArc(arc)
			pos := rightmostBlack()
			if pos == prev {
				continue
			}
			if prev == 2*psi-2 && pos != prev-1 {
				// From u_{2ψ-2} the token either descends one step (round
				// ψ-2 and earlier) or moves onto u_{2ψ-1} where it is
				// consumed within the interaction; any observation other
				// than a one-step descent therefore marks completion.
				done = true
				break
			}
			if pos >= 0 {
				positions = append(positions, pos)
			}
			prev = pos
		}
	}
	return positions, eng.Snapshot(), p
}
