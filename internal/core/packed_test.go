package core

import (
	"fmt"
	"testing"

	"repro/internal/population"
	"repro/internal/xrand"
)

// reachableSample returns a mixed sample of P_PL states under p: random
// valid states (a superset of reachable) plus states actually reached by
// evolving every initial-configuration class under the real transition, so
// the codec and meta tests cover both the declared domain and the states
// executions visit.
func reachableSample(t *testing.T, p Params, seed uint64) []State {
	t.Helper()
	rng := xrand.New(seed)
	var out []State
	for i := 0; i < 1000; i++ {
		s := p.RandomState(rng)
		if !p.ValidState(s) {
			t.Fatalf("RandomState produced invalid state %+v", s)
		}
		out = append(out, s)
	}
	pr := New(p)
	for _, class := range []string{"random", "noleader", "allleaders", "corrupted"} {
		cfg := p.InitConfig(class, seed)
		out = append(out, cfg...)
		for step := 0; step < 200*p.N; step++ {
			i := rng.Intn(p.N)
			j := (i + 1) % p.N
			cfg[i], cfg[j] = pr.Step(cfg[i], cfg[j])
			if step%7 == 0 {
				out = append(out, cfg[i], cfg[j])
			}
		}
	}
	return out
}

// TestCodecRoundTrip pins the packed codec over random valid states and
// transition-reachable states across ring sizes: Dec(Enc(s)) == s, Enc
// stays under the declared width, and Enc is injective.
func TestCodecRoundTrip(t *testing.T) {
	for _, n := range []int{4, 16, 33, 64, 256} {
		p := NewParams(n)
		c, ok := p.Codec()
		if !ok {
			t.Fatalf("n=%d: canonical parameters must have a codec", n)
		}
		if c.Bits < 1 || c.Bits > 63 {
			t.Fatalf("n=%d: codec width %d outside [1, 63]", n, c.Bits)
		}
		seen := make(map[uint64]State)
		for _, s := range reachableSample(t, p, uint64(n)) {
			v := c.Enc(s)
			if v >= 1<<c.Bits {
				t.Fatalf("n=%d: Enc(%+v) = %#x exceeds %d bits", n, s, v, c.Bits)
			}
			if got := c.Dec(v); got != s {
				t.Fatalf("n=%d: round trip: %+v -> %#x -> %+v", n, s, v, got)
			}
			if prev, dup := seen[v]; dup && prev != s {
				t.Fatalf("n=%d: collision: %+v and %+v both pack to %#x", n, prev, s, v)
			}
			seen[v] = s
		}
	}
}

// TestCodecRejectsOversized pins the fallback contract: parameterizations
// whose packed form would not fit the interner's 63-bit ceiling return no
// codec instead of a truncating one.
func TestCodecRejectsOversized(t *testing.T) {
	p := Params{N: 1 << 20, Psi: 60, KappaMax: 1 << 30}
	if _, ok := p.Codec(); ok {
		t.Fatal("oversized parameterization produced a codec")
	}
	if _, ok := NewParams(64).Codec(); !ok {
		t.Fatal("canonical n=64 parameters must produce a codec")
	}
}

// TestPackedInternerCollisionFree feeds a reachable-state sample through
// the packed interner: one distinct ID per distinct state, stable on
// re-intern, with Value and Packed inverting the mint.
func TestPackedInternerCollisionFree(t *testing.T) {
	p := NewParams(64)
	c, _ := p.Codec()
	in := population.NewPackedInterner(c, population.DefaultMaxStates)
	distinct := make(map[State]uint32)
	for _, s := range reachableSample(t, p, 7) {
		id, ok := in.Intern(s)
		if !ok {
			t.Fatalf("intern %+v failed below cap", s)
		}
		if prev, dup := distinct[s]; dup {
			if id != prev {
				t.Fatalf("re-intern of %+v moved ID %d -> %d", s, prev, id)
			}
			continue
		}
		distinct[s] = id
		if in.Value(id) != s || in.Packed(id) != c.Enc(s) {
			t.Fatalf("mint %d does not invert for %+v", id, s)
		}
	}
	if in.Len() != len(distinct) {
		t.Fatalf("interner minted %d IDs for %d distinct states", in.Len(), len(distinct))
	}
}

// TestMetaSpecEquivalence pins the meta-word callbacks bit-for-bit against
// their State-level counterparts over reachable samples: the per-arc mask,
// and the per-agent mask derived from a single meta word (the
// AgentMaskMeta fast path of the interned engine's mirror update).
func TestMetaSpecEquivalence(t *testing.T) {
	for _, n := range []int{8, 33, 64} {
		p := NewParams(n)
		spec := p.SafetySpec()
		if spec.MetaID == nil || spec.ArcMaskMeta == nil || spec.AgentMaskMeta == nil {
			t.Fatalf("n=%d: meta acceleration not attached", n)
		}
		sample := reachableSample(t, p, uint64(100+n))
		for _, s := range sample {
			if got, want := spec.AgentMaskMeta(spec.MetaID(s)), spec.AgentMask(s); got != want {
				t.Fatalf("n=%d: AgentMaskMeta(%+v) = %#x, AgentMask = %#x", n, s, got, want)
			}
		}
		for i := 0; i+1 < len(sample); i += 2 {
			l, r := sample[i], sample[i+1]
			got := spec.ArcMaskMeta(spec.MetaID(l), spec.MetaID(r))
			if want := spec.ArcMask(l, r); got != want {
				t.Fatalf("n=%d: ArcMaskMeta(%+v, %+v) = %#x, ArcMask = %#x", n, l, r, got, want)
			}
		}
	}
}

// residualCounts builds the LocalCounts slice of the residual's contract —
// exactly one leader at a known index plus the live-bullet census — for a
// configuration with a unique leader.
func residualCounts(t *testing.T, cfg []State) population.LocalCounts {
	t.Helper()
	var c population.LocalCounts
	for i, s := range cfg {
		if s.Leader {
			c.Agent[0]++
			c.AgentPos[0] = i
		}
		if s.War.Bullet == 2 { // war.Live
			c.Agent[2]++
		}
	}
	if c.Agent[0] != 1 {
		t.Fatalf("residual configs need exactly one leader, got %d", c.Agent[0])
	}
	return c
}

// TestMetaResidualEquivalence pins ResidualMeta against the State-level
// Residual — verdict and witness — on the full spectrum of single-leader
// configurations: perfect (true verdict), lightly corrupted (token and
// segment failures) and heavily corrupted. Each comparison uses a fresh
// spec so the meta side's hint memo is cold and the witnesses must agree
// exactly; a second call on the same failing configuration then exercises
// the hint path, which may witness a different failing pair but must keep
// the verdict.
func TestMetaResidualEquivalence(t *testing.T) {
	for _, n := range []int{16, 33, 64} {
		p := NewParams(n)
		for seed := uint64(1); seed <= 5; seed++ {
			rng := xrand.New(seed)
			for _, corrupt := range []int{0, 1, 3, n / 2} {
				cfg := p.PerfectConfig(rng.Intn(n), uint64(rng.Intn(1<<p.Psi)))
				for f := 0; f < corrupt; f++ {
					i := rng.Intn(n)
					r := p.RandomState(rng)
					// Keep the leader set intact: the residual's contract
					// assumes a unique leader at counts.AgentPos[0].
					r.Leader = cfg[i].Leader
					cfg[i] = r
				}
				name := fmt.Sprintf("n=%d/seed=%d/corrupt=%d", n, seed, corrupt)
				spec := p.SafetySpec()
				counts := residualCounts(t, cfg)
				meta := make([]uint64, n)
				for i, s := range cfg {
					meta[i] = spec.MetaID(s)
				}
				wantOK, wantW := spec.Residual(&counts, cfg)
				gotOK, gotW := spec.ResidualMeta(&counts, meta)
				if gotOK != wantOK || gotW != wantW {
					t.Fatalf("%s: ResidualMeta = (%v, %+v), Residual = (%v, %+v)",
						name, gotOK, gotW, wantOK, wantW)
				}
				if corrupt == 0 && !wantOK {
					t.Fatalf("%s: perfect configuration failed the residual", name)
				}
				// Hint path: re-evaluating the same failing configuration
				// must keep the verdict (the witness may legally move to a
				// later failing pair).
				if !wantOK {
					if againOK, _ := spec.ResidualMeta(&counts, meta); againOK {
						t.Fatalf("%s: hint-path re-evaluation flipped the verdict", name)
					}
				}
			}
		}
	}
}

// FuzzCodecRoundTrip drives the P_PL round trip from raw fuzzed fields,
// canonicalized into the valid domain of the n=64 parameters.
func FuzzCodecRoundTrip(f *testing.F) {
	f.Add(uint64(0), uint64(0))
	f.Add(^uint64(0), ^uint64(0))
	f.Add(uint64(0xdeadbeef), uint64(42))
	f.Fuzz(func(t *testing.T, a, b uint64) {
		p := NewParams(64)
		rng := xrand.New(a ^ b*0x9e3779b97f4a7c15)
		s := p.RandomState(rng)
		if !p.ValidState(s) {
			t.Fatalf("RandomState produced invalid state %+v", s)
		}
		c, ok := p.Codec()
		if !ok {
			t.Fatal("n=64 parameters must have a codec")
		}
		v := c.Enc(s)
		if v >= 1<<c.Bits {
			t.Fatalf("Enc(%+v) = %#x exceeds %d bits", s, v, c.Bits)
		}
		if got := c.Dec(v); got != s {
			t.Fatalf("round trip: %+v -> %#x -> %+v", s, v, got)
		}
	})
}
