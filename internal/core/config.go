package core

import (
	"fmt"
	"strings"

	"repro/internal/war"
	"repro/internal/xrand"
)

// PerfectConfig returns a configuration in S_PL: a unique leader at index
// leaderAt, exact distances and last bits, segment IDs increasing by one
// clockwise starting from firstID in the leader's segment, and no tokens,
// bullets or signals in flight. Every returned configuration satisfies
// IsSafe.
func (p Params) PerfectConfig(leaderAt int, firstID uint64) []State {
	n := p.N
	cfg := make([]State, n)
	zeta := p.Zeta()
	mask := (uint64(1) << uint(p.Psi)) - 1
	lastFrom := p.Psi * (zeta - 1)
	for i := 0; i < n; i++ {
		seg := i / p.Psi
		off := i % p.Psi
		id := (firstID + uint64(seg)) & mask
		s := State{
			Dist: uint16(i % p.TwoPsi()),
			B:    uint8((id >> uint(off)) & 1),
			Last: i >= lastFrom,
		}
		cfg[(leaderAt+i)%n] = s
	}
	cfg[leaderAt].Leader = true
	cfg[leaderAt].War = war.State{Shield: true}
	return cfg
}

// NoLeaderAligned returns the hardest detection-mode instance: no leader,
// distances fully consistent (possible only when 2ψ divides n; otherwise
// the seam at the wrap is itself a detectable violation), all agents
// already in detection mode with no resetting signals, and segment IDs
// consecutive except at the unavoidable wrap seam (Lemma 3.2). Detecting
// imperfection from here exercises the full token comparison machinery.
func (p Params) NoLeaderAligned() []State {
	n := p.N
	cfg := make([]State, n)
	mask := (uint64(1) << uint(p.Psi)) - 1
	for i := 0; i < n; i++ {
		seg := i / p.Psi
		off := i % p.Psi
		id := uint64(seg) & mask
		cfg[i] = State{
			Dist:  uint16(i % p.TwoPsi()),
			B:     uint8((id >> uint(off)) & 1),
			Clock: uint16(p.KappaMax),
		}
	}
	return cfg
}

// AllLeaders returns the configuration where every agent is an armed
// leader: the elimination war must whittle n leaders down to one.
func (p Params) AllLeaders() []State {
	cfg := make([]State, p.N)
	for i := range cfg {
		cfg[i] = State{Leader: true, Dist: 0, War: war.Arm()}
	}
	return cfg
}

// RandomConfig samples every agent's state independently and uniformly from
// the full state space Q — the adversary of the self-stabilization
// definition, in expectation over all of C_all.
func (p Params) RandomConfig(rng *xrand.RNG) []State {
	cfg := make([]State, p.N)
	for i := range cfg {
		cfg[i] = p.RandomState(rng)
	}
	return cfg
}

// RandomState samples one agent state uniformly from Q.
func (p Params) RandomState(rng *xrand.RNG) State {
	return State{
		Leader:  rng.Bool(),
		B:       uint8(rng.Intn(2)),
		Dist:    uint16(rng.Intn(p.TwoPsi())),
		Last:    rng.Bool(),
		TokB:    p.randomToken(rng),
		TokW:    p.randomToken(rng),
		Clock:   uint16(rng.Intn(p.KappaMax + 1)),
		Hits:    uint16(rng.Intn(p.Psi + 1)),
		SignalR: uint16(rng.Intn(p.KappaMax + 1)),
		War: war.State{
			Bullet: war.Bullet(rng.Intn(3)),
			Shield: rng.Bool(),
			Signal: rng.Bool(),
		},
	}
}

func (p Params) randomToken(rng *xrand.RNG) Token {
	// Domain: ⊥ plus (2ψ−1) positions × 2 bits × 2 carries.
	k := rng.Intn(1 + 4*(2*p.Psi-1))
	if k == 0 {
		return Token{}
	}
	k--
	pos := k%(2*p.Psi-1) - (p.Psi - 1) // [-ψ+1, ψ-1]
	if pos >= 0 {
		pos++ // skip 0 → [-ψ+1,-1] ∪ [1,ψ]
	}
	return Token{
		Pos:   int16(pos),
		Bit:   uint8((k / (2*p.Psi - 1)) % 2),
		Carry: uint8(k / (2 * (2*p.Psi - 1)) % 2),
	}
}

// CorruptedPerfect returns a perfect configuration in which `faults` agents
// chosen at random have been overwritten with uniformly random states — the
// transient-fault recovery scenario motivating self-stabilization.
func (p Params) CorruptedPerfect(rng *xrand.RNG, faults int) []State {
	cfg := p.PerfectConfig(0, 0)
	for f := 0; f < faults; f++ {
		cfg[rng.Intn(p.N)] = p.RandomState(rng)
	}
	return cfg
}

// FormatRing renders a configuration as the Figure 1 style diagram: one
// line per segment with border markers, distances, bits and the resulting
// segment ID; the leader is tagged L.
func (p Params) FormatRing(cfg []State) string {
	var b strings.Builder
	n := len(cfg)
	bs := p.borders(cfg)
	if len(bs) == 0 {
		for i, s := range cfg {
			fmt.Fprintf(&b, "u%-3d dist=%-3d b=%d%s\n", i, s.Dist, s.B, leaderTag(s))
		}
		return b.String()
	}
	m := len(bs)
	for j := 0; j < m; j++ {
		start := bs[j]
		length := (bs[(j+1)%m] - start + n) % n
		if length == 0 {
			length = n
		}
		fmt.Fprintf(&b, "segment %2d  [u%d..u%d]  id=%-4d  bits=", j, start, (start+length-1)%n, segmentID(cfg, start, length))
		for t := length - 1; t >= 0; t-- {
			fmt.Fprintf(&b, "%d", cfg[(start+t)%n].B)
		}
		for t := 0; t < length; t++ {
			s := cfg[(start+t)%n]
			if s.Leader {
				b.WriteString("  [L at u")
				fmt.Fprintf(&b, "%d]", (start+t)%n)
			}
		}
		b.WriteByte('\n')
	}
	return b.String()
}

func leaderTag(s State) string {
	if s.Leader {
		return "  L"
	}
	return ""
}

// InitSeedSalt decorrelates the initial-configuration RNG from the
// scheduler RNG of the same trial (the historical constant every recorded
// experiment used).
const InitSeedSalt = 0xabcdef

// InitConfig builds the adversarial initial configuration of the named
// class for a trial with the given scheduler seed. The names are the
// public repro.InitClass String() values — "random", "noleader",
// "allleaders", "corrupted", "noleadercold" — and this is the single
// source of truth shared by the public P_PL protocol and the cmd/ringsim
// trace replays; unknown names fall back to "random".
func (p Params) InitConfig(class string, seed uint64) []State {
	rng := xrand.New(seed ^ InitSeedSalt)
	switch class {
	case "noleader":
		return p.NoLeaderAligned()
	case "noleadercold":
		cfg := p.NoLeaderAligned()
		for i := range cfg {
			cfg[i].Clock = 0
		}
		return cfg
	case "allleaders":
		return p.AllLeaders()
	case "corrupted":
		return p.CorruptedPerfect(rng, p.N/4)
	default:
		return p.RandomConfig(rng)
	}
}
