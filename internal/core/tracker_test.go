package core

import (
	"fmt"
	"testing"

	"repro/internal/population"
	"repro/internal/population/tracktest"
	"repro/internal/xrand"
)

// TestSafetySpecExact pins the incremental S_PL tracker to the brute-force
// IsSafe scan: agreement after every single step and identical hitting
// times through the engine run paths, across sizes (including a
// non-power-of-two and the n=64 acceptance size) and adversarial initial
// classes.
func TestSafetySpecExact(t *testing.T) {
	type cse struct {
		n       int
		classes []string
		seeds   []uint64
	}
	cases := []cse{
		{4, []string{"random", "noleader", "allleaders", "corrupted"}, []uint64{1, 2}},
		{16, []string{"random", "noleader", "allleaders", "corrupted"}, []uint64{1, 2}},
		{33, []string{"random", "noleader"}, []uint64{1}},
		{64, []string{"random", "corrupted"}, []uint64{1}},
	}
	for _, c := range cases {
		p := NewParams(c.n)
		pr := New(p)
		for _, class := range c.classes {
			for _, seed := range c.seeds {
				seed, class := seed, class
				t.Run(fmt.Sprintf("n=%d/%s/seed=%d", c.n, class, seed), func(t *testing.T) {
					mk := func() *population.Engine[State] {
						eng := population.NewEngine(population.DirectedRing(p.N), pr.Step, xrand.New(seed))
						eng.SetStates(p.InitConfig(class, seed))
						return eng
					}
					pred := func(cfg []State) bool { return p.IsSafe(cfg) }
					tracktest.Exact(t, mk, p.SafetySpec(), pred, budget(p))
				})
			}
		}
	}
}

// TestSafetySpecOnPerfect pins the tracker's verdict inside S_PL: a
// perfect configuration must be judged converged at step 0 and stay
// converged while the closed set holds.
func TestSafetySpecOnPerfect(t *testing.T) {
	p := NewParams(32)
	pr := New(p)
	eng := population.NewEngine(population.DirectedRing(p.N), pr.Step, xrand.New(5))
	eng.SetStates(p.PerfectConfig(3, 9))
	tr := population.NewRingTracker(p.SafetySpec())
	eng.SetTracker(tr)
	if !tr.Converged() {
		t.Fatal("perfect configuration not judged safe")
	}
	for i := 0; i < 5000; i++ {
		eng.Step()
		if !tr.Converged() {
			t.Fatalf("left the tracked safe set at step %d (closure violated?)", eng.Steps())
		}
	}
}
