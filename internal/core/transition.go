package core

import (
	"repro/internal/war"
)

// Protocol is P_PL instantiated for a fixed ring size. Its Step method is
// the transition function T of the paper; plug it into a
// population.Engine[State] on population.DirectedRing(p.N).
type Protocol struct {
	p        Params
	noCreate bool
}

// New returns the protocol for the given parameters. It panics if the
// parameters are invalid (they are derived from n at construction time, not
// from runtime input).
func New(p Params) *Protocol {
	if err := p.Validate(); err != nil {
		panic(err)
	}
	return &Protocol{p: p}
}

// NewNoCreate returns the auxiliary protocol P'_PL of Section 4.2: P_PL
// with the leader-creation assignments (lines 6 and 18) removed. The paper
// uses it as a coupling device — an execution of P_PL equals the
// corresponding execution of P'_PL until the first leader creation — to
// transfer the elimination bound of Lemma 4.11 to the full protocol.
func NewNoCreate(p Params) *Protocol {
	pr := New(p)
	pr.noCreate = true
	return pr
}

// Params returns the protocol's parameters.
func (pr *Protocol) Params() Params { return pr.p }

// Step is the transition function (Algorithm 1): l is the initiator (left
// agent), r the responder (right agent). Statements execute sequentially
// with read-your-writes semantics, exactly as in the pseudocode:
// CreateLeader (which begins with DetermineMode) and then EliminateLeaders.
func (pr *Protocol) Step(l, r State) (State, State) {
	pr.createLeader(&l, &r)
	war.Step(&l.Leader, &r.Leader, &l.War, &r.War)
	return l, r
}

// makeLeader performs the leader-creation assignment of lines 6 and 18:
// (leader, bullet, shield, signalB) ← (1, 2, 1, 0). The fresh live bullet
// is peaceful by construction.
func makeLeader(v *State) {
	v.Leader = true
	v.War = war.Arm()
}

// createLeader is Algorithm 2 (lines 3–11).
func (pr *Protocol) createLeader(l, r *State) {
	p := pr.p
	pr.determineMode(l, r)

	// Line 4: the responder's distance from the nearest left leader mod 2ψ.
	var tmp uint16
	if !r.Leader {
		tmp = l.Dist + 1
		if int(tmp) == p.TwoPsi() {
			tmp = 0
		}
	}
	// Lines 5–6: in detection mode a distance mismatch proves imperfection.
	if p.Mode(*r) == Detect && tmp != r.Dist && !pr.noCreate {
		makeLeader(r)
	}
	// Lines 7–8: in construction mode the distance is (re)computed.
	if p.Mode(*r) == Construct {
		r.Dist = tmp
	}
	// Line 9: last-segment membership propagates right to left.
	switch {
	case r.Leader:
		l.Last = true
	case int(r.Dist) == 0 || int(r.Dist) == p.Psi:
		l.Last = false
	default:
		l.Last = r.Last
	}

	// Lines 10–11: black tokens use offset d = 0, white tokens d = ψ.
	pr.moveToken(l, r, &l.TokB, &r.TokB, 0)
	pr.moveToken(l, r, &l.TokW, &r.TokW, uint16(p.Psi))
}

// moveToken is Algorithm 3 for one token color; lt and rt are the token
// slots of that color inside l and r.
func (pr *Protocol) moveToken(l, r *State, lt, rt *Token, d uint16) {
	p := pr.p
	psi := int16(p.Psi)

	// Lines 12–13: a border with no token in flight launches a fresh one
	// carrying the first sum bit and carry of ι(S)+1.
	if l.Dist == d && !l.Last && lt.None() {
		*lt = Token{Pos: psi, Bit: 1 - l.B, Carry: l.B}
	}
	// Lines 14–15: the left token dies when the right agent already carries
	// one of this color (the rightmost survives) or lies in the last
	// segment.
	if !lt.None() && (!rt.None() || r.Last) {
		*lt = Token{}
	}
	switch {
	case lt.Pos == 1:
		// Lines 16–22: the token reaches its right target r. Detection mode
		// compares the carried bit; construction mode writes it. Either way
		// the token turns around toward u_{r−(ψ−1)}.
		if p.Mode(*r) == Detect && lt.Bit != r.B {
			if !pr.noCreate {
				makeLeader(r)
			}
		} else if p.Mode(*r) == Construct {
			r.B = lt.Bit
		}
		*rt = Token{Pos: 1 - psi, Bit: lt.Bit, Carry: lt.Carry}
		*lt = Token{}
	case lt.Pos >= 2:
		// Lines 23–25: plain rightward move.
		*rt = Token{Pos: lt.Pos - 1, Bit: lt.Bit, Carry: lt.Carry}
		*lt = Token{}
	case rt.Pos == -1:
		// Lines 26–28: the token reaches its left target l, where it reads
		// l.b, updates sum bit and carry, and starts the next round toward
		// u_{l+ψ}. (Step 6 of the Section 3.2 walkthrough.)
		if rt.Carry == 1 {
			*lt = Token{Pos: psi, Bit: 1 - l.B, Carry: l.B}
		} else {
			*lt = Token{Pos: psi, Bit: l.B, Carry: 0}
		}
		*rt = Token{}
	case rt.Pos <= -2:
		// Lines 29–31: plain leftward move. The pseudocode prints the moved
		// payload as (r.token[1]+1, l.token[2], l.token[3]); l's token is ⊥
		// here (lines 14–15 removed it otherwise), so the payload can only
		// come from r's token, matching the rightward case of line 24.
		*lt = Token{Pos: rt.Pos + 1, Bit: rt.Bit, Carry: rt.Carry}
		*rt = Token{}
	}
	// Lines 32–33: delete tokens in the last segment and invalid tokens
	// (out of trajectory).
	if !lt.None() && (l.Last || pr.invalidToken(*l, *lt, d)) {
		*lt = Token{}
	}
	if !rt.None() && (r.Last || pr.invalidToken(*r, *rt, d)) {
		*rt = Token{}
	}
}

// invalidToken is the InvalidToken macro of Algorithm 3 / Definition 3.3
// with the interval direction corrected (reconstruction erratum 1): a token
// is on its trajectory iff the distance value of its target,
// (dist + token[1] + d) mod 2ψ, lies in [ψ, 2ψ−1] when moving right and in
// [1, ψ−1] when moving left.
func (pr *Protocol) invalidToken(v State, t Token, d uint16) bool {
	p := pr.p
	two := p.TwoPsi()
	target := (int(v.Dist) + int(t.Pos) + int(d)) % two
	if target < 0 {
		target += two
	}
	if t.Pos > 0 {
		return !(target >= p.Psi && target < two)
	}
	return !(target >= 1 && target < p.Psi)
}

// determineMode is Algorithm 4 (lines 34–50). Lines 49–50 are implicit:
// mode is derived from clock by Params.Mode.
func (pr *Protocol) determineMode(l, r *State) {
	p := pr.p
	psi := uint16(p.Psi)
	kmax := uint16(p.KappaMax)

	// Lines 34–35: a leader interacting with its right neighbor creates a
	// fresh resetting signal with full TTL.
	if l.Leader {
		l.SignalR = kmax
	}
	// Lines 36–37: the lottery-game coin. Interacting with the right
	// neighbor resets the streak; with the left neighbor extends it.
	l.Hits = 0
	if r.Hits < psi {
		r.Hits++
	}
	if l.SignalR > 0 || r.SignalR > 0 {
		// Line 39: observing a signal resets both clocks.
		l.Clock, r.Clock = 0, 0
		// Lines 40–41: when the left signal absorbs the right one, the
		// right agent's streak restarts (an analysis simplification kept
		// verbatim from the paper).
		if r.SignalR > 0 && l.SignalR >= r.SignalR {
			r.Hits = 0
		}
		// Line 42: the signal moves right; merged signals keep the max TTL.
		if l.SignalR > r.SignalR {
			r.SignalR = l.SignalR
		}
		l.SignalR = 0
		// Lines 43–45: a full streak of ψ left-interactions costs the
		// signal one TTL unit (one lost lottery round).
		if r.Hits == psi {
			r.SignalR--
			r.Hits = 0
		}
	} else if r.Hits == psi {
		// Lines 46–48: with no signal in sight, a full streak advances the
		// clock toward detection mode.
		if r.Clock < kmax {
			r.Clock++
		}
		r.Hits = 0
	}
}
