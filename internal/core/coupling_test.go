package core

import (
	"testing"

	"repro/internal/population"
	"repro/internal/xrand"
)

// TestCouplingWithNoCreateVariant is the Section 4.2 proof device made
// executable: under the same schedule, an execution of P_PL and one of
// P'_PL (creation disabled) are identical until the step at which P_PL
// creates a leader.
func TestCouplingWithNoCreateVariant(t *testing.T) {
	p := NewParams(16)
	for seed := uint64(0); seed < 5; seed++ {
		full := population.NewEngine(population.DirectedRing(p.N), New(p).Step, xrand.New(seed))
		primed := population.NewEngine(population.DirectedRing(p.N), NewNoCreate(p).Step, xrand.New(seed))
		cfg := p.RandomConfig(xrand.New(seed + 100))
		full.SetStates(cfg)
		primed.SetStates(cfg)
		full.TrackLeaders(IsLeader)
		primed.TrackLeaders(IsLeader)

		diverged := false
		for step := 0; step < 200000 && !diverged; step++ {
			before := full.LeaderCount()
			full.Step()
			primed.Step()
			created := full.LeaderCount() > before
			for i := 0; i < p.N; i++ {
				if full.State(i) != primed.State(i) {
					if !created && !diverged {
						t.Fatalf("seed %d: executions diverged at step %d without a creation", seed, step)
					}
					diverged = true
					break
				}
			}
			if created {
				diverged = true // from here on the coupling is void
			}
		}
	}
}

// TestNoCreateNeverCreates: P'_PL must never increase the leader count,
// from any configuration.
func TestNoCreateNeverCreates(t *testing.T) {
	p := NewParams(16)
	pr := NewNoCreate(p)
	for seed := uint64(0); seed < 3; seed++ {
		eng := population.NewEngine(population.DirectedRing(p.N), pr.Step, xrand.New(seed))
		eng.SetStates(p.RandomConfig(xrand.New(seed + 7)))
		maxLeaders := LeaderCount(eng.Config())
		for i := 0; i < 100000; i++ {
			eng.Step()
			if got := LeaderCount(eng.Config()); got > maxLeaders {
				t.Fatalf("seed %d: P'_PL created a leader at step %d", seed, i)
			} else if got < maxLeaders {
				maxLeaders = got
			}
		}
	}
}

// TestLemma411ViaNoCreate: from C_PB-style starts with many leaders, P'_PL
// reaches exactly one leader within the O(n²)-class budget and never
// loses it — the elimination bound in isolation.
func TestLemma411ViaNoCreate(t *testing.T) {
	p := NewParams(24)
	pr := NewNoCreate(p)
	for seed := uint64(0); seed < 3; seed++ {
		eng := population.NewEngine(population.DirectedRing(p.N), pr.Step, xrand.New(seed))
		eng.SetStates(p.AllLeaders())
		eng.TrackLeaders(IsLeader)
		_, ok := eng.RunUntil(func(cfg []State) bool {
			return LeaderCount(cfg) == 1
		}, p.N, 2000*uint64(p.N)*uint64(p.N))
		if !ok {
			t.Fatalf("seed %d: P'_PL elimination never reached one leader", seed)
		}
		eng.Run(200000)
		if got := LeaderCount(eng.Config()); got != 1 {
			t.Fatalf("seed %d: leader count left 1: %d", seed, got)
		}
	}
}
