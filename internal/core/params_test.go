package core

import (
	"math"
	"testing"
)

func TestNewParams(t *testing.T) {
	tests := []struct {
		n        int
		wantPsi  int
		wantKMax int
	}{
		{2, 2, 2 * DefaultC1},
		{3, 2, 2 * DefaultC1},
		{4, 2, 2 * DefaultC1},
		{5, 3, 3 * DefaultC1},
		{16, 4, 4 * DefaultC1},
		{17, 5, 5 * DefaultC1},
		{1024, 10, 10 * DefaultC1},
		{1025, 11, 11 * DefaultC1},
	}
	for _, tt := range tests {
		p := NewParams(tt.n)
		if p.Psi != tt.wantPsi || p.KappaMax != tt.wantKMax {
			t.Errorf("NewParams(%d) = ψ=%d κ=%d, want ψ=%d κ=%d",
				tt.n, p.Psi, p.KappaMax, tt.wantPsi, tt.wantKMax)
		}
		if err := p.Validate(); err != nil {
			t.Errorf("NewParams(%d) invalid: %v", tt.n, err)
		}
	}
}

func TestNewParamsSlack(t *testing.T) {
	p := NewParamsSlack(16, 2, 32)
	if p.Psi != 6 || p.KappaMax != 192 {
		t.Fatalf("slack params: %+v", p)
	}
}

func TestParamsKnowledgeCoversN(t *testing.T) {
	// ψ = ⌈log n⌉ must satisfy 2^ψ >= n for all n (needed by Lemma 3.2).
	for n := 2; n <= 4096; n++ {
		p := NewParams(n)
		if 1<<uint(p.Psi) < n {
			t.Fatalf("n=%d: 2^ψ = %d < n", n, 1<<uint(p.Psi))
		}
		if 1<<uint(p.Psi) >= 2*n && n > 2 {
			t.Fatalf("n=%d: ψ=%d not tight (2^ψ = %d >= 2n)", n, p.Psi, 1<<uint(p.Psi))
		}
	}
}

func TestValidateRejectsBadParams(t *testing.T) {
	tests := []struct {
		name string
		p    Params
	}{
		{"tiny ring", Params{N: 1, Psi: 2, KappaMax: 16}},
		{"psi too small", Params{N: 8, Psi: 1, KappaMax: 16}},
		{"psi does not cover n", Params{N: 100, Psi: 4, KappaMax: 32}},
		{"kappa below psi", Params{N: 8, Psi: 3, KappaMax: 2}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if tt.p.Validate() == nil {
				t.Fatalf("Validate accepted %+v", tt.p)
			}
		})
	}
}

func TestZeta(t *testing.T) {
	tests := []struct {
		n, psi, want int
	}{
		{16, 4, 4},
		{17, 5, 4},
		{15, 4, 4},
		{8, 4, 2},
		{3, 2, 2},
	}
	for _, tt := range tests {
		p := Params{N: tt.n, Psi: tt.psi, KappaMax: 8 * tt.psi}
		if got := p.Zeta(); got != tt.want {
			t.Errorf("Zeta(n=%d, ψ=%d) = %d, want %d", tt.n, tt.psi, got, tt.want)
		}
	}
}

func TestTrajectoryLength(t *testing.T) {
	// (ψ + ψ−1)(ψ−1) + ψ = 2ψ²−2ψ+1 (Section 3.2).
	for psi := 2; psi <= 10; psi++ {
		p := Params{N: 1 << uint(psi), Psi: psi, KappaMax: 8 * psi}
		want := (psi+psi-1)*(psi-1) + psi
		if got := p.TrajectoryLength(); got != want {
			t.Fatalf("ψ=%d: trajectory %d, want %d", psi, got, want)
		}
	}
}

// TestStateCountPolylog verifies the headline state bound: |Q| grows
// polylogarithmically in n — concretely, bits per agent grow like
// O(log log n), so doubling log n adds a bounded number of bits.
func TestStateCountPolylog(t *testing.T) {
	prevBits := 0.0
	for _, n := range []int{1 << 4, 1 << 8, 1 << 12, 1 << 16, 1 << 20} {
		p := NewParams(n)
		bits := p.BitsPerAgent()
		if bits <= prevBits {
			t.Fatalf("bits per agent not increasing at n=%d", n)
		}
		// polylog(n) states ⇔ bits = O(log log n); at n = 2^20 the paper's
		// structure needs well under 64 bits.
		if bits > 64 {
			t.Fatalf("n=%d: %f bits per agent is not polylog-ish", n, bits)
		}
		prevBits = bits
	}
	// Contrast: the O(n)-state protocol of [28] needs ~log n + O(1) bits,
	// so at n = 2^20 core must be far below 8·log n.
	p := NewParams(1 << 20)
	if p.BitsPerAgent() > 8*20 {
		t.Fatalf("state count not separated from poly(n)")
	}
}

func TestStateCountExact(t *testing.T) {
	p := Params{N: 4, Psi: 2, KappaMax: 4}
	// leader(2) b(2) dist(4) last(2) tok(1+3*4=13)^2 clock(5) hits(3)
	// signalR(5) bullet(3) shield(2) signalB(2)
	want := uint64(2*2*4*2) * 13 * 13 * 5 * 3 * 5 * 3 * 2 * 2
	if got := p.StateCount(); got != want {
		t.Fatalf("StateCount = %d, want %d", got, want)
	}
	if math.Abs(p.BitsPerAgent()-math.Log2(float64(want))) > 1e-9 {
		t.Fatalf("BitsPerAgent inconsistent with StateCount")
	}
}

func TestCeilLog2(t *testing.T) {
	tests := []struct{ n, want int }{
		{1, 0}, {2, 1}, {3, 2}, {4, 2}, {5, 3}, {8, 3}, {9, 4}, {1024, 10},
	}
	for _, tt := range tests {
		if got := ceilLog2(tt.n); got != tt.want {
			t.Errorf("ceilLog2(%d) = %d, want %d", tt.n, got, tt.want)
		}
	}
}

func TestModeDerivation(t *testing.T) {
	p := NewParams(16)
	if p.Mode(State{Clock: uint16(p.KappaMax)}) != Detect {
		t.Fatal("clock at κ_max must mean Detect")
	}
	if p.Mode(State{Clock: uint16(p.KappaMax - 1)}) != Construct {
		t.Fatal("clock below κ_max must mean Construct")
	}
	if p.Mode(State{}) != Construct {
		t.Fatal("zero clock must mean Construct")
	}
}

func TestTokenString(t *testing.T) {
	if got := (Token{}).String(); got != "⊥" {
		t.Fatalf("empty token prints %q", got)
	}
	if got := (Token{Pos: -3, Bit: 1, Carry: 0}).String(); got != "(-3,1,0)" {
		t.Fatalf("token prints %q", got)
	}
}

func TestModeString(t *testing.T) {
	if Construct.String() != "construct" || Detect.String() != "detect" || Mode(9).String() != "invalid" {
		t.Fatal("Mode.String mismatch")
	}
}
