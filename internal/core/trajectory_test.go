package core

import (
	"testing"
)

// TestCanonicalZigzagLength checks the move count of Definition 3.4: a
// complete trajectory makes 2ψ²−2ψ+1 moves. The observable sequence misses
// exactly one move (the final hop onto u_{2ψ-1}, where the token is
// consumed within the interaction).
func TestCanonicalZigzagLength(t *testing.T) {
	for psi := 2; psi <= 8; psi++ {
		zig := CanonicalZigzag(psi)
		if got, want := len(zig)+1, 2*psi*psi-2*psi+1; got != want {
			t.Fatalf("ψ=%d: %d observable moves +1, want %d", psi, got, want)
		}
	}
}

func TestCanonicalZigzagShape(t *testing.T) {
	// ψ=3: rounds 0,1 climb to 3,4 and descend; final climb 3..4.
	want := []int{1, 2, 3, 2, 1, 2, 3, 4, 3, 2, 3, 4}
	got := CanonicalZigzag(3)
	if len(got) != len(want) {
		t.Fatalf("ψ=3 zigzag length %d, want %d: %v", len(got), len(want), got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("ψ=3 zigzag[%d] = %d, want %d (%v)", i, got[i], want[i], got)
		}
	}
}

// TestTrajectoryTraceMatchesFigure2 replays the deterministic schedule of
// Lemma 3.5 and compares the black token's observed path against the
// Figure 2 zigzag, for several ψ and segment IDs.
func TestTrajectoryTraceMatchesFigure2(t *testing.T) {
	for _, psi := range []int{4, 5, 6} {
		maxID := uint64(1)<<uint(psi) - 1
		for _, id := range []uint64{0, 1, maxID, maxID / 2} {
			positions, _, _ := TrajectoryTrace(psi, id)
			want := CanonicalZigzag(psi)
			if len(positions) != len(want) {
				t.Fatalf("ψ=%d id=%d: observed %d positions, want %d\nobs:  %v\nwant: %v",
					psi, id, len(positions), len(want), positions, want)
			}
			for i := range want {
				if positions[i] != want[i] {
					t.Fatalf("ψ=%d id=%d: position[%d] = %d, want %d\nobs:  %v\nwant: %v",
						psi, id, i, positions[i], want[i], positions, want)
				}
			}
		}
	}
}

// TestTrajectoryConstructsNextSegmentID checks the purpose of the token
// round trips: after one complete trajectory in construction mode, segment
// S_1 holds ι(S_0)+1 mod 2^ψ.
func TestTrajectoryConstructsNextSegmentID(t *testing.T) {
	for _, psi := range []int{4, 5, 6} {
		mask := uint64(1)<<uint(psi) - 1
		for id := uint64(0); id <= mask; id++ {
			_, final, _ := TrajectoryTrace(psi, id)
			got := segmentID(final, psi, psi)
			if want := (id + 1) & mask; got != want {
				t.Fatalf("ψ=%d: ι(S_0)=%d produced ι(S_1)=%d, want %d", psi, id, got, want)
			}
			// S_0 itself must be untouched.
			if got := segmentID(final, 0, psi); got != id {
				t.Fatalf("ψ=%d: source segment corrupted: ι(S_0)=%d, want %d", psi, got, id)
			}
		}
	}
}

// TestTrajectoryTokensStayValid verifies that along the whole deterministic
// trajectory no token is ever judged invalid by the (corrected) Definition
// 3.3 — the reconstruction erratum direction check.
func TestTrajectoryTokensStayValid(t *testing.T) {
	psi := 4
	positions, _, _ := TrajectoryTrace(psi, 3)
	if len(positions) == 0 {
		t.Fatal("no trajectory observed — tokens were likely deleted as invalid")
	}
	// Reaching the full canonical length implies no premature deletion.
	if len(positions) != len(CanonicalZigzag(psi)) {
		t.Fatalf("trajectory cut short: %d of %d positions", len(positions), len(CanonicalZigzag(psi)))
	}
}
