package core

import (
	"testing"
	"testing/quick"

	"repro/internal/war"
	"repro/internal/xrand"
)

func TestLeaderGeneratesAndPushesSignal(t *testing.T) {
	pr := New(NewParams(16))
	kmax := uint16(pr.Params().KappaMax)
	l := State{Leader: true}
	r := State{Clock: 5}
	l2, r2 := pr.Step(l, r)
	// Lines 34-35 create the signal at l; line 42 moves it right in the
	// same interaction.
	if l2.SignalR != 0 {
		t.Fatalf("signal stayed at leader: %d", l2.SignalR)
	}
	if r2.SignalR != kmax {
		t.Fatalf("responder signal TTL = %d, want %d", r2.SignalR, kmax)
	}
	if l2.Clock != 0 || r2.Clock != 0 {
		t.Fatalf("clocks not reset: l=%d r=%d", l2.Clock, r2.Clock)
	}
}

func TestSignalMergeKeepsMaxTTL(t *testing.T) {
	pr := New(NewParams(16))
	l := State{SignalR: 7}
	r := State{SignalR: 3, Hits: 2}
	l2, r2 := pr.Step(l, r)
	if l2.SignalR != 0 || r2.SignalR != 7 {
		t.Fatalf("merge: l=%d r=%d, want 0/7", l2.SignalR, r2.SignalR)
	}
	// Absorption (l ≥ r > 0) resets the responder's streak (line 41).
	if r2.Hits != 0 {
		t.Fatalf("hits not reset on absorption: %d", r2.Hits)
	}
}

func TestWeakerLeftSignalAbsorbedByRight(t *testing.T) {
	pr := New(NewParams(16))
	l := State{SignalR: 3}
	r := State{SignalR: 7, Hits: 2}
	l2, r2 := pr.Step(l, r)
	if l2.SignalR != 0 || r2.SignalR != 7 {
		t.Fatalf("merge: l=%d r=%d, want 0/7", l2.SignalR, r2.SignalR)
	}
	// When the right signal absorbs the left one, hits continue: with the
	// line-37 increment the streak is now 3.
	if r2.Hits != 3 {
		t.Fatalf("hits = %d, want 3", r2.Hits)
	}
}

func TestHitsStreakMechanics(t *testing.T) {
	pr := New(NewParams(16))
	psi := uint16(pr.Params().Psi)
	// The responder's streak grows by one per left-interaction.
	_, r := pr.Step(State{}, State{Hits: 1})
	if r.Hits != 2 {
		t.Fatalf("hits = %d, want 2", r.Hits)
	}
	// The initiator's streak resets.
	l, _ := pr.Step(State{Hits: psi - 1}, State{})
	if l.Hits != 0 {
		t.Fatalf("initiator hits = %d, want 0", l.Hits)
	}
}

func TestFullStreakAdvancesClock(t *testing.T) {
	pr := New(NewParams(16))
	psi := uint16(pr.Params().Psi)
	_, r := pr.Step(State{}, State{Hits: psi - 1, Clock: 4})
	if r.Clock != 5 {
		t.Fatalf("clock = %d, want 5", r.Clock)
	}
	if r.Hits != 0 {
		t.Fatalf("hits not reset after win: %d", r.Hits)
	}
}

func TestFullStreakDecrementsSignalTTL(t *testing.T) {
	pr := New(NewParams(16))
	psi := uint16(pr.Params().Psi)
	_, r := pr.Step(State{}, State{Hits: psi - 1, SignalR: 5, Clock: 9})
	if r.SignalR != 4 {
		t.Fatalf("signal TTL = %d, want 4", r.SignalR)
	}
	if r.Clock != 0 {
		t.Fatalf("clock = %d, want 0 (reset by signal)", r.Clock)
	}
	if r.Hits != 0 {
		t.Fatalf("hits = %d, want 0", r.Hits)
	}
}

func TestClockSaturatesAtKappaMax(t *testing.T) {
	p := NewParams(16)
	pr := New(p)
	psi := uint16(p.Psi)
	kmax := uint16(p.KappaMax)
	_, r := pr.Step(State{Dist: 1}, State{Hits: psi - 1, Clock: kmax, Dist: 2})
	if r.Clock != kmax {
		t.Fatalf("clock overflowed κ_max: %d", r.Clock)
	}
}

func TestDetectionModeCreatesLeaderOnDistMismatch(t *testing.T) {
	p := NewParams(16)
	pr := New(p)
	kmax := uint16(p.KappaMax)
	// r in detection mode, and l.dist+1 != r.dist.
	l := State{Dist: 3, Clock: kmax}
	r := State{Dist: 9, Clock: kmax}
	_, r2 := pr.Step(l, r)
	if !r2.Leader {
		t.Fatal("distance mismatch in detection mode did not create a leader")
	}
	// Line 6: the new leader is armed — live bullet (moved or in place),
	// shielded, no bullet-absence signal.
	if !r2.War.Shield || r2.War.Signal {
		t.Fatalf("new leader war state: %+v", r2.War)
	}
	// Detection mode must not overwrite dist (line 7 guard).
	if r2.Dist != 9 {
		t.Fatalf("detection mode rewrote dist: %d", r2.Dist)
	}
}

func TestConstructionModeRewritesDist(t *testing.T) {
	pr := New(NewParams(16))
	l := State{Dist: 3}
	r := State{Dist: 9}
	_, r2 := pr.Step(l, r)
	if r2.Leader {
		t.Fatal("construction mode created a leader")
	}
	if r2.Dist != 4 {
		t.Fatalf("dist = %d, want 4", r2.Dist)
	}
}

func TestDistWrapsAtTwoPsi(t *testing.T) {
	p := NewParams(16)
	pr := New(p)
	l := State{Dist: uint16(p.TwoPsi() - 1)}
	_, r2 := pr.Step(l, State{Dist: 5})
	if r2.Dist != 0 {
		t.Fatalf("dist = %d, want 0 (wrap)", r2.Dist)
	}
}

func TestLeaderResponderHasDistZero(t *testing.T) {
	pr := New(NewParams(16))
	l := State{Dist: 7}
	r := State{Leader: true, Dist: 3, War: war.State{Shield: true}}
	l2, r2 := pr.Step(l, r)
	if r2.Dist != 0 {
		t.Fatalf("leader dist = %d, want 0", r2.Dist)
	}
	// Line 9: left neighbor of a leader is in the last segment.
	if !l2.Last {
		t.Fatal("left neighbor of leader must have last=1")
	}
}

func TestLastPropagation(t *testing.T) {
	p := NewParams(16)
	pr := New(p)
	// r at a border (dist ∈ {0, ψ}) and not a leader ⇒ l.last = 0.
	l := State{Dist: uint16(p.Psi - 1), Last: true}
	r := State{Dist: uint16(p.Psi), Last: true}
	l2, _ := pr.Step(l, r)
	if l2.Last {
		t.Fatal("l.last should clear when r is a non-leader border")
	}
	// Otherwise l.last copies r.last.
	l = State{Dist: 2, Last: false}
	r = State{Dist: 3, Last: true}
	l2, _ = pr.Step(l, r)
	if !l2.Last {
		t.Fatal("l.last should copy r.last")
	}
}

// TestModeIsDerivedFromClock pins the mode/clock equivalence our
// representation relies on (reconstruction notes, Section 3): after any interaction,
// Detect ⇔ clock = κ_max for both agents by construction, so storing mode
// separately would be redundant.
func TestModeIsDerivedFromClock(t *testing.T) {
	p := NewParams(32)
	pr := New(p)
	rng := xrand.New(123)
	for i := 0; i < 5000; i++ {
		l, r := pr.Step(p.RandomState(rng), p.RandomState(rng))
		for _, s := range []State{l, r} {
			wantDetect := int(s.Clock) == p.KappaMax
			if (p.Mode(s) == Detect) != wantDetect {
				t.Fatalf("mode/clock divergence: %+v", s)
			}
		}
	}
}

// TestTransitionPreservesValidity is the domain-closure property: from any
// pair of in-domain states, the transition yields in-domain states.
func TestTransitionPreservesValidity(t *testing.T) {
	p := NewParams(32)
	pr := New(p)
	rng := xrand.New(321)
	cfgGen := func() State { return p.RandomState(rng) }
	if err := quick.Check(func(seed uint64) bool {
		l, r := cfgGen(), cfgGen()
		l2, r2 := pr.Step(l, r)
		return p.ValidState(l2) && p.ValidState(r2)
	}, &quick.Config{MaxCount: 20000}); err != nil {
		t.Fatal(err)
	}
}

// TestTransitionDeterminism: the transition is a pure function.
func TestTransitionDeterminism(t *testing.T) {
	p := NewParams(32)
	pr := New(p)
	rng := xrand.New(11)
	for i := 0; i < 2000; i++ {
		l, r := p.RandomState(rng), p.RandomState(rng)
		a1, b1 := pr.Step(l, r)
		a2, b2 := pr.Step(l, r)
		if a1 != a2 || b1 != b2 {
			t.Fatalf("non-deterministic transition on %+v / %+v", l, r)
		}
	}
}

func TestBorderCreatesToken(t *testing.T) {
	p := NewParams(16)
	pr := New(p)
	psi := int16(p.Psi)
	// Black border (dist 0) with b=0: fresh token (ψ, 1, 0), which then
	// hops to the responder within the same interaction (sequential
	// semantics of lines 12-13 then 23-25).
	l := State{Dist: 0, B: 0}
	r := State{Dist: 1}
	l2, r2 := pr.Step(l, r)
	if !l2.TokB.None() {
		t.Fatalf("token should have hopped off the border: %v", l2.TokB)
	}
	if r2.TokB != (Token{Pos: psi - 1, Bit: 1, Carry: 0}) {
		t.Fatalf("hopped token = %v, want (ψ-1,1,0)", r2.TokB)
	}
	// White border (dist ψ) with b=1: fresh white token (ψ, 0, 1).
	l = State{Dist: uint16(p.Psi), B: 1}
	r = State{Dist: uint16(p.Psi + 1)}
	_, r2 = pr.Step(l, r)
	if r2.TokW != (Token{Pos: psi - 1, Bit: 0, Carry: 1}) {
		t.Fatalf("white token = %v, want (ψ-1,0,1)", r2.TokW)
	}
}

func TestLastSegmentBorderDoesNotCreateToken(t *testing.T) {
	p := NewParams(16)
	pr := New(p)
	l := State{Dist: 0, B: 0, Last: true}
	r := State{Dist: 1, Last: true}
	l2, r2 := pr.Step(l, r)
	if !l2.TokB.None() || !r2.TokB.None() {
		t.Fatal("border in last segment created a token")
	}
}

func TestTokenCollisionLeftDies(t *testing.T) {
	p := NewParams(16)
	pr := New(p)
	l := State{Dist: 2, TokB: Token{Pos: 3, Bit: 1}}
	r := State{Dist: 3, TokB: Token{Pos: 2, Bit: 0}}
	l2, r2 := pr.Step(l, r)
	if !l2.TokB.None() {
		t.Fatal("left token survived collision")
	}
	if r2.TokB != (Token{Pos: 2, Bit: 0}) {
		t.Fatalf("right token changed: %v", r2.TokB)
	}
}

func TestTokenRightTargetConstruction(t *testing.T) {
	p := NewParams(16) // ψ=4
	pr := New(p)
	psi := int16(p.Psi)
	// Token with Pos=1 at l reaches its target r in construction mode:
	// writes Bit into r.b and turns around (Pos = 1-ψ).
	l := State{Dist: uint16(p.Psi + 1), TokB: Token{Pos: 1, Bit: 1, Carry: 1}}
	r := State{Dist: uint16(p.Psi + 2), B: 0}
	l2, r2 := pr.Step(l, r)
	if r2.B != 1 {
		t.Fatal("construction mode did not write the token bit")
	}
	if r2.TokB != (Token{Pos: 1 - psi, Bit: 1, Carry: 1}) {
		t.Fatalf("turnaround token = %v", r2.TokB)
	}
	if !l2.TokB.None() {
		t.Fatal("source token not cleared")
	}
}

func TestTokenRightTargetDetectionMismatch(t *testing.T) {
	p := NewParams(16)
	pr := New(p)
	kmax := uint16(p.KappaMax)
	l := State{Dist: uint16(p.Psi + 1), Clock: kmax, TokB: Token{Pos: 1, Bit: 1, Carry: 0}}
	r := State{Dist: uint16(p.Psi + 2), B: 0, Clock: kmax}
	_, r2 := pr.Step(l, r)
	if !r2.Leader {
		t.Fatal("segment-ID mismatch in detection mode did not create a leader")
	}
	if r2.B != 0 {
		t.Fatal("detection mode must not rewrite b")
	}
}

func TestTokenRightTargetDetectionMatchIsQuiet(t *testing.T) {
	p := NewParams(16)
	pr := New(p)
	kmax := uint16(p.KappaMax)
	l := State{Dist: uint16(p.Psi + 1), Clock: kmax, TokB: Token{Pos: 1, Bit: 1, Carry: 0}}
	r := State{Dist: uint16(p.Psi + 2), B: 1, Clock: kmax}
	_, r2 := pr.Step(l, r)
	if r2.Leader {
		t.Fatal("matching bit created a leader")
	}
}

func TestTokenLeftTargetCarryUpdate(t *testing.T) {
	p := NewParams(16)
	pr := New(p)
	psi := int16(p.Psi)
	// Left-moving token with Pos=-1 reaches l: with carry=1 the payload
	// becomes (1-l.b, l.b); with carry=0 it becomes (l.b, 0). (Step 6.)
	l := State{Dist: 2, B: 1}
	r := State{Dist: 3, TokB: Token{Pos: -1, Bit: 0, Carry: 1}}
	l2, r2 := pr.Step(l, r)
	if l2.TokB != (Token{Pos: psi, Bit: 0, Carry: 1}) {
		t.Fatalf("carry=1 turnaround = %v, want (ψ,0,1)", l2.TokB)
	}
	if !r2.TokB.None() {
		t.Fatal("left target did not consume the token")
	}

	l = State{Dist: 2, B: 1}
	r = State{Dist: 3, TokB: Token{Pos: -1, Bit: 0, Carry: 0}}
	l2, _ = pr.Step(l, r)
	if l2.TokB != (Token{Pos: psi, Bit: 1, Carry: 0}) {
		t.Fatalf("carry=0 turnaround = %v, want (ψ,1,0)", l2.TokB)
	}
}

func TestTokenPlainMoves(t *testing.T) {
	p := NewParams(16)
	pr := New(p)
	// Rightward move decrements Pos.
	l := State{Dist: 1, TokB: Token{Pos: 3, Bit: 1, Carry: 1}}
	r := State{Dist: 2}
	l2, r2 := pr.Step(l, r)
	if !l2.TokB.None() || r2.TokB != (Token{Pos: 2, Bit: 1, Carry: 1}) {
		t.Fatalf("right move: l=%v r=%v", l2.TokB, r2.TokB)
	}
	// Leftward move increments Pos and carries r's payload (line 30, see
	// the reconstruction notes on the payload typo).
	l = State{Dist: 5}
	r = State{Dist: 6, TokB: Token{Pos: -3, Bit: 1, Carry: 0}}
	l2, r2 = pr.Step(l, r)
	if !r2.TokB.None() || l2.TokB != (Token{Pos: -2, Bit: 1, Carry: 0}) {
		t.Fatalf("left move: l=%v r=%v", l2.TokB, r2.TokB)
	}
}

func TestInvalidTokenDeleted(t *testing.T) {
	p := NewParams(16) // ψ=4, 2ψ=8
	pr := New(p)
	// Right-moving black token whose target dist is in [1, ψ-1]: off
	// trajectory, must be deleted by lines 32-33.
	l := State{Dist: 0}
	r := State{Dist: 1, TokB: Token{Pos: 1, Bit: 0}} // target dist 2 ∈ [1,3]
	// Keep l off the border-creation path by giving it a token-unfriendly
	// dist: use dist 1 instead.
	l.Dist = 1
	r.Dist = 2
	_, r2 := pr.Step(l, r)
	if !r2.TokB.None() {
		t.Fatalf("invalid token survived: %v", r2.TokB)
	}
}

func TestTokenAtFinalDestinationDeleted(t *testing.T) {
	p := NewParams(16) // ψ=4
	pr := New(p)
	// A black token reaching its final destination u_{2ψ-1} (dist 7)
	// spawns a left-mover whose target dist would be ψ — invalid, so it
	// disappears in the same interaction (lines 21-22 then 32-33).
	l := State{Dist: uint16(p.TwoPsi() - 2), TokB: Token{Pos: 1, Bit: 1, Carry: 0}}
	r := State{Dist: uint16(p.TwoPsi() - 1), B: 1}
	l2, r2 := pr.Step(l, r)
	if !l2.TokB.None() || !r2.TokB.None() {
		t.Fatalf("trajectory-complete token survived: l=%v r=%v", l2.TokB, r2.TokB)
	}
}

func TestTokenDiesEnteringLastSegment(t *testing.T) {
	p := NewParams(16)
	pr := New(p)
	l := State{Dist: 2, TokB: Token{Pos: 3, Bit: 1}}
	r := State{Dist: 3, Last: true}
	l2, r2 := pr.Step(l, r)
	if !l2.TokB.None() || !r2.TokB.None() {
		t.Fatalf("token entered last segment: l=%v r=%v", l2.TokB, r2.TokB)
	}
}

func TestNewRejectsInvalidParams(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("New accepted invalid params")
		}
	}()
	New(Params{N: 100, Psi: 3, KappaMax: 24})
}

func BenchmarkTransition(b *testing.B) {
	p := NewParams(256)
	pr := New(p)
	rng := xrand.New(1)
	l, r := p.RandomState(rng), p.RandomState(rng)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		l, r = pr.Step(l, r)
	}
}
