// Package core implements P_PL, the paper's self-stabilizing leader
// election protocol for directed rings (Algorithms 1–5), together with the
// safe-configuration machinery of Section 4 as executable predicates.
//
// Given the knowledge ψ = ⌈log₂ n⌉ + O(1), the protocol elects a unique
// leader from any initial configuration within O(n² log n) steps with high
// probability, using polylog(n) states per agent. Leader creation is driven
// by detecting imperfections of a distance/segment-ID embedding (Sections
// 3.1–3.2), mode switching by a lottery-game clock (Section 3.3), and
// leader elimination by the bullets-and-shields war of [28]
// (internal/war).
package core

import (
	"fmt"
	"math"
)

// DefaultC1 is the default multiplier in κ_max = c₁·ψ. The paper's
// w.h.p. analysis assumes c₁ ≥ 32 (Section 3.3); smaller values keep the
// protocol self-stabilizing (safety does not depend on c₁) but shorten the
// construction-mode holding time, so spurious leader creations become more
// likely before convergence. 8 is a good laptop-scale default; experiments
// E10 sweep it.
const DefaultC1 = 8

// Params carries the ring size and the protocol knowledge derived from it.
type Params struct {
	// N is the ring size n.
	N int
	// Psi is ψ = ⌈log₂ n⌉ + slack; the paper requires 2^ψ ≥ n and ψ ≥ 2.
	Psi int
	// KappaMax is κ_max = c₁·ψ, the clock ceiling and signal TTL.
	KappaMax int
}

// NewParams returns the canonical parameters for a ring of n agents:
// ψ = max(2, ⌈log₂ n⌉) and κ_max = DefaultC1·ψ.
func NewParams(n int) Params {
	return NewParamsSlack(n, 0, DefaultC1)
}

// NewParamsSlack returns parameters with ψ = max(2, ⌈log₂ n⌉ + slack) and
// κ_max = c1·ψ. It panics on invalid arguments; parameters are a
// programming-time choice, not runtime input.
func NewParamsSlack(n, slack, c1 int) Params {
	if n < 2 {
		panic(fmt.Sprintf("core: ring size %d < 2", n))
	}
	if slack < 0 || c1 < 1 {
		panic(fmt.Sprintf("core: invalid slack %d or c1 %d", slack, c1))
	}
	psi := ceilLog2(n) + slack
	if psi < 2 {
		psi = 2
	}
	return Params{N: n, Psi: psi, KappaMax: c1 * psi}
}

// Validate reports whether the parameters satisfy the paper's assumptions.
func (p Params) Validate() error {
	switch {
	case p.N < 2:
		return fmt.Errorf("core: n = %d < 2", p.N)
	case p.Psi < 2:
		return fmt.Errorf("core: ψ = %d < 2", p.Psi)
	case p.Psi >= 15:
		// Dist is a uint16 in [0, 2ψ-1] and token positions are int16;
		// ψ = 15 already covers rings of 32768 agents.
		if p.Psi > 60 {
			return fmt.Errorf("core: ψ = %d too large", p.Psi)
		}
	}
	if uint64(1)<<uint(p.Psi) < uint64(p.N) {
		return fmt.Errorf("core: 2^ψ = 2^%d < n = %d", p.Psi, p.N)
	}
	if p.KappaMax < p.Psi {
		return fmt.Errorf("core: κ_max = %d < ψ = %d", p.KappaMax, p.Psi)
	}
	return nil
}

// TwoPsi returns 2ψ, the distance modulus.
func (p Params) TwoPsi() int { return 2 * p.Psi }

// Zeta returns ζ = ⌈n/ψ⌉, the number of segments when distances are exact.
func (p Params) Zeta() int { return (p.N + p.Psi - 1) / p.Psi }

// TrajectoryLength returns the total number of moves in a complete token
// trajectory, 2ψ²−2ψ+1 (Definition 3.4).
func (p Params) TrajectoryLength() int { return 2*p.Psi*p.Psi - 2*p.Psi + 1 }

// StateCount returns the exact size of the per-agent state space |Q| of our
// representation: leader × b × dist × last × tokenB × tokenW × clock ×
// hits × signalR × bullet × shield × signalB. The paper's mode variable is
// derived from clock (Algorithm 4 lines 49–50 recompute it before any read)
// and therefore not stored. The count is polylog(n): Θ(ψ⁸) for κ_max=Θ(ψ).
func (p Params) StateCount() uint64 {
	tok := uint64(1 + 4*(2*p.Psi-1)) // ⊥ plus (2ψ−1) positions × 2 bits × 2 carries
	count := uint64(2)               // leader
	count *= 2                       // b
	count *= uint64(2 * p.Psi)       // dist
	count *= 2                       // last
	count *= tok * tok               // tokenB, tokenW
	count *= uint64(p.KappaMax + 1)  // clock
	count *= uint64(p.Psi + 1)       // hits
	count *= uint64(p.KappaMax + 1)  // signalR
	count *= 3                       // bullet
	count *= 2                       // shield
	count *= 2                       // signalB
	return count
}

// BitsPerAgent returns log₂ of StateCount, the memory per agent in bits:
// Θ(log ψ) · 8 = O(log log n) bits.
func (p Params) BitsPerAgent() float64 {
	return math.Log2(float64(p.StateCount()))
}

func ceilLog2(n int) int {
	k, v := 0, 1
	for v < n {
		v <<= 1
		k++
	}
	return k
}
