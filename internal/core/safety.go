package core

import (
	"repro/internal/population"
	"repro/internal/war"
)

// Condition channels of SafetySpec (see LocalCounts): arc channels count
// violations, agent channels count feature occurrences.
const (
	// safeArcDist marks an arc violating condition (1) of Section 3.1 in
	// its leader-anchored form: a leader responder must have dist 0, a
	// follower responder its initiator's dist plus one mod 2ψ.
	safeArcDist = 1 << iota
	// safeArcLastDrop marks an arc where the last-segment flag drops
	// without reaching a leader: l.last ∧ ¬r.last ∧ ¬r.leader. In C_DL the
	// last-flag block must end exactly at the leader.
	safeArcLastDrop
)

const (
	safeAgentLeader = 1 << iota
	safeAgentLast
	safeAgentLiveBullet
)

// LeaderCount returns the number of agents outputting L.
func LeaderCount(cfg []State) int {
	n := 0
	for _, s := range cfg {
		if s.Leader {
			n++
		}
	}
	return n
}

// LeaderIndex returns the index of the unique leader, or -1 when the number
// of leaders differs from one.
func LeaderIndex(cfg []State) int {
	idx := -1
	for i, s := range cfg {
		if s.Leader {
			if idx >= 0 {
				return -1
			}
			idx = i
		}
	}
	return idx
}

// DistConsistent reports whether condition (1) of Section 3.1 holds: every
// leader has dist 0 and every follower's dist is its left neighbor's plus
// one, modulo 2ψ.
func (p Params) DistConsistent(cfg []State) bool {
	n := len(cfg)
	two := uint16(p.TwoPsi())
	for i := 0; i < n; i++ {
		want := uint16(0)
		if !cfg[i].Leader {
			want = cfg[(i-1+n)%n].Dist + 1
			if want == two {
				want = 0
			}
		}
		if cfg[i].Dist != want {
			return false
		}
	}
	return true
}

// borders returns the indices of border agents (dist ∈ {0, ψ}) in ring
// order.
func (p Params) borders(cfg []State) []int {
	var out []int
	for i, s := range cfg {
		if int(s.Dist) == 0 || int(s.Dist) == p.Psi {
			out = append(out, i)
		}
	}
	return out
}

// segmentID returns ι(S) for the segment starting at agent `start` with the
// given length: the little-endian integer over the agents' b bits.
func segmentID(cfg []State, start, length int) uint64 {
	n := len(cfg)
	var id uint64
	for t := 0; t < length; t++ {
		id |= uint64(cfg[(start+t)%n].B) << uint(t)
	}
	return id
}

// IsPerfect reports whether the configuration is perfect (Section 3.1):
// condition (1) holds everywhere and every segment's ID is its
// predecessor's plus one mod 2^ψ, except segments that begin or end at a
// leader.
func (p Params) IsPerfect(cfg []State) bool {
	if !p.DistConsistent(cfg) {
		return false
	}
	bs := p.borders(cfg)
	if len(bs) < 2 {
		// At most one segment; condition (2) constrains nothing.
		return true
	}
	n := len(cfg)
	mask := (uint64(1) << uint(p.Psi)) - 1
	m := len(bs)
	ids := make([]uint64, m)
	for j := 0; j < m; j++ {
		length := (bs[(j+1)%m] - bs[j] + n) % n
		if length == 0 {
			length = n
		}
		ids[j] = segmentID(cfg, bs[j], length)
	}
	for j := 0; j < m; j++ {
		prev := (j - 1 + m) % m
		if cfg[bs[j]].Leader || cfg[bs[(j+1)%m]].Leader {
			continue // the first and last segments are exempt
		}
		if ids[j] != (ids[prev]+1)&mask {
			return false
		}
	}
	return true
}

// InCPB reports membership in C_PB: at least one leader and every live
// bullet peaceful (Section 4.1). C_PB is closed and executions inside it
// never lose their last leader.
func (p Params) InCPB(cfg []State) bool {
	leaders := make([]bool, len(cfg))
	states := make([]war.State, len(cfg))
	for i, s := range cfg {
		leaders[i] = s.Leader
		states[i] = s.War
	}
	return war.AllLiveBulletsPeaceful(leaders, states)
}

// InCDL reports membership in C_DL: C_PB with exactly one leader and dist
// and last exactly computed with respect to it.
func (p Params) InCDL(cfg []State) bool {
	k := LeaderIndex(cfg)
	if k < 0 || !p.InCPB(cfg) {
		return false
	}
	n := len(cfg)
	two := p.TwoPsi()
	lastFrom := p.Psi * (p.Zeta() - 1)
	for i := 0; i < n; i++ {
		v := cfg[(k+i)%n]
		if int(v.Dist) != i%two {
			return false
		}
		if v.Last != (i >= lastFrom) {
			return false
		}
	}
	return true
}

// IsSafe reports membership in S_PL (Definition 4.6): C_DL, consecutive
// segment IDs ι(S_{i+1}) = ι(S_i)+1 mod 2^ψ for i ∈ [0, ζ−3], and every
// token valid and correct. S_PL is closed and every configuration in it is
// safe (Lemma 4.7), so the first observation of IsSafe certifies
// convergence.
func (p Params) IsSafe(cfg []State) bool {
	if !p.InCDL(cfg) {
		return false
	}
	return p.safeTail(cfg, LeaderIndex(cfg))
}

// safeTail checks the non-local remainder of S_PL beyond C_DL — the
// segment-ID chain and token soundness — given a configuration whose
// unique leader sits at k. It is shared by the scan predicate IsSafe and
// the incremental tracker's residual (SafetySpec).
func (p Params) safeTail(cfg []State, k int) bool {
	ok, _ := p.safeTailWitness(cfg, k)
	return ok
}

// safeTailWitness is safeTail with a failure witness: the returned interval
// covers every agent the first failing check read (a consecutive segment
// pair's b bits, or a token plus its working pair's b bits), anchored at
// the leader. While those agents are untouched and the leader stays put,
// the check — and therefore safeTail — keeps failing, which is what lets
// the incremental tracker skip the O(n) re-scan on almost every step of
// the long construction phase.
func (p Params) safeTailWitness(cfg []State, k int) (bool, population.Witness) {
	n := len(cfg)
	psi := p.Psi
	zeta := p.Zeta()
	mask := (uint64(1) << uint(psi)) - 1

	// Segment IDs of the full segments S_0 .. S_{ζ-2}, leader-relative. A
	// failing pair (S_j, S_{j+1}) read the b bits of the 2ψ agents at
	// leader-relative positions [jψ, (j+2)ψ).
	for j := 0; j+1 <= zeta-2; j++ {
		a := segmentID(cfg, (k+j*psi)%n, psi)
		b := segmentID(cfg, (k+(j+1)*psi)%n, psi)
		if b != (a+1)&mask {
			return false, population.IntervalWitness(n, k+j*psi, 2*psi-1, k)
		}
	}

	for i := 0; i < n; i++ {
		v := cfg[(k+i)%n]
		if !v.TokB.None() {
			if ok, lo, hi := p.tokenSoundSpan(cfg, k, i, v.TokB, 0); !ok {
				return false, population.IntervalWitness(n, k+lo, hi-lo, k)
			}
		}
		if !v.TokW.None() {
			if ok, lo, hi := p.tokenSoundSpan(cfg, k, i, v.TokW, psi); !ok {
				return false, population.IntervalWitness(n, k+lo, hi-lo, k)
			}
		}
	}
	return true, population.Witness{}
}

// tokenSoundSpan reports whether a token held by the agent at
// leader-relative index i is valid (on its trajectory, Definition 3.3
// corrected), attributable to a working segment pair (S_j, S_{j+1}), and
// correct (Definition 4.3 / Lemma 4.4: its payload matches the sum bit and
// carry of ι(S_j)+1 at its current round). d is 0 for black tokens and ψ
// for white. The configuration must be in C_DL and k must be the leader
// index.
//
// On failure the returned [lo, hi] (leader-relative, inclusive) covers
// every agent the verdict read: always the token holder i, plus — once the
// working pair is determined — the b bits of S_j the payload was checked
// against. Structural failures (off-trajectory, no working pair) depend on
// the token alone, so their span is just {i}.
func (p Params) tokenSoundSpan(cfg []State, k, i int, t Token, d int) (bool, int, int) {
	n := len(cfg)
	psi := p.Psi
	zeta := p.Zeta()
	if i >= psi*(zeta-1) {
		return false, i, i // tokens must not sit in the last segment
	}

	var j, x int // working pair (S_j, S_{j+1}), round x
	if t.Pos > 0 {
		target := i + int(t.Pos)
		if target < psi || target >= n {
			return false, i, i
		}
		x = (target - psi) % psi
		j = (target - psi - x) / psi
	} else {
		target := i + int(t.Pos)
		if target < 0 {
			return false, i, i
		}
		off := target % psi
		if off == 0 {
			return false, i, i // left targets are interior to a segment
		}
		j = target / psi
		x = off - 1
	}
	if j < 0 || j > zeta-2 {
		return false, i, i
	}
	if (j%2 == 0) != (d == 0) {
		return false, i, i // segment color must match token color
	}

	// Expected payload: the round-x sum bit and carry of ι(S_j) + 1, read
	// from the b bits at leader-relative [jψ, jψ+x].
	carryIn := uint8(1)
	for tt := 0; tt < x; tt++ {
		if cfg[(k+j*psi+tt)%n].B == 0 {
			carryIn = 0
			break
		}
	}
	bx := cfg[(k+j*psi+x)%n].B
	expBit := bx ^ carryIn
	expCarry := carryIn & bx
	if t.Bit == expBit && t.Carry == expCarry {
		return true, 0, 0
	}
	lo, hi := j*psi, j*psi+x
	if i < lo {
		lo = i
	}
	if i > hi {
		hi = i
	}
	return false, lo, hi
}

// SafetySpec is the delta-decomposed form of IsSafe for incremental
// convergence tracking (population.RingTracker): the locally checkable
// part of S_PL — exactly one leader, the distance chain of condition (1),
// and the last-segment flag forming one block of the right size ending at
// the leader — is maintained as O(1) per-interaction counters, and only
// when every one of those conditions already holds does the verdict run
// the non-local residual (C_PB war peacefulness, the segment-ID chain and
// token soundness, via safeTail). The verdict equals IsSafe at every
// configuration, so hitting times are exact; before convergence the local
// counters are almost always non-zero, so the hot path never scans.
func (p Params) SafetySpec() population.RingSpec[State] {
	two := uint16(p.TwoPsi())
	expectLast := p.N - p.Psi*(p.Zeta()-1) // size of the last-flag block in C_DL
	if expectLast < 0 {
		expectLast = 0
	}
	spec := population.RingSpec[State]{
		ArcMask: func(l, r State) uint8 {
			var m uint8
			if r.Leader {
				if r.Dist != 0 {
					m |= safeArcDist
				}
			} else {
				want := l.Dist + 1
				if want == two {
					want = 0
				}
				if r.Dist != want {
					m |= safeArcDist
				}
				if l.Last && !r.Last {
					m |= safeArcLastDrop
				}
			}
			return m
		},
		AgentMask: func(s State) uint8 {
			var m uint8
			if s.Leader {
				m |= safeAgentLeader
			}
			if s.Last {
				m |= safeAgentLast
			}
			if s.War.Bullet == war.Live {
				m |= safeAgentLiveBullet
			}
			return m
		},
		Gate: func(c *population.LocalCounts) bool {
			// With exactly one leader, an intact distance chain and a single
			// correctly sized last-flag block ending at the leader, the
			// configuration is in C_DL up to peacefulness.
			return c.Agent[0] == 1 && c.Arc[0] == 0 && c.Arc[1] == 0 && c.Agent[1] == expectLast
		},
		Residual: func(c *population.LocalCounts, cfg []State) (bool, population.Witness) {
			// c.AgentPos[0] names the unique leader in O(1).
			k := c.AgentPos[0]
			if c.Agent[2] > 0 {
				if ok, off := war.PeacefulPrefix(cfg, k, func(s State) war.State { return s.War }); !ok {
					// The peacefulness walk read offsets 0..off from the
					// leader and the leader's shield.
					return false, population.IntervalWitness(len(cfg), k, off, k)
				}
			}
			return p.safeTailWitness(cfg, k)
		},
		Converged: func(c *population.LocalCounts, cfg []State) bool {
			if c.Agent[0] != 1 || c.Arc[0] != 0 || c.Arc[1] != 0 || c.Agent[1] != expectLast {
				return false
			}
			k := c.AgentPos[0]
			if c.Agent[2] > 0 && !war.PeacefulWithLeader(cfg, k, func(s State) war.State { return s.War }) {
				return false
			}
			return p.safeTail(cfg, k)
		},
		ArcNames:   []string{"dist_violations", "lastdrop_violations"},
		AgentNames: []string{"leaders", "last_flags", "live_bullets"},
	}
	// The interned engine's per-ID acceleration: a meta-word projection of
	// the mask- and residual-relevant fields (packed.go), strictly
	// equivalent to the closures above.
	p.attachMeta(&spec)
	return spec
}
