package core

// Packed-state support for the interned engine (internal/population): a
// fixed-width codec so the interner keys its table by one uint64 instead of
// hashing the State struct, and the "meta word" acceleration — a second,
// fixed-layout packing of exactly the fields SafetySpec's arc mask and
// residual read, so the convergence verdict's hot scans (the segment-ID
// chain, token soundness, war peacefulness) run over a flat per-agent
// []uint64 instead of chasing 40-byte State structs. Both are pure
// re-encodings: the codec round-trips every reachable state
// (TestCodecRoundTrip) and the meta callbacks are pinned equal to their
// State-level counterparts (TestMetaSpecEquivalence).

import (
	"math/bits"

	"repro/internal/population"
	"repro/internal/war"
)

// Codec returns the fixed-width state codec for parameters p, laid out
// low-to-high as leader, b, dist, last, black token, white token, clock,
// hits, signalR, war. Tokens pack as (Pos+ψ, Bit, Carry) with a zero
// position field for ⊥ (Pos+ψ ∈ [1, 2ψ], never 0). At the defaults
// (ψ = ⌈log₂ n⌉ + slack, κ = 8ψ) the total stays in the mid-50s of bits;
// ok is false in the contrived parameterizations where it would exceed the
// packed interner's 63-bit ceiling, and callers then fall back to the
// map-keyed interner.
func (p Params) Codec() (population.PackedCodec[State], bool) {
	psi := p.Psi
	posBits := bits.Len(uint(2 * psi))
	tokBits := posBits + 2
	distBits := bits.Len(uint(2*psi - 1))
	clockBits := bits.Len(uint(p.KappaMax))
	hitsBits := bits.Len(uint(psi))
	total := 3 + distBits + 2*tokBits + 2*clockBits + hitsBits + war.PackBits
	if total > 63 {
		return population.PackedCodec[State]{}, false
	}
	sB := 1
	sDist := sB + 1
	sLast := sDist + distBits
	sTokB := sLast + 1
	sTokW := sTokB + tokBits
	sClock := sTokW + tokBits
	sHits := sClock + clockBits
	sSig := sHits + hitsBits
	sWar := sSig + clockBits

	encTok := func(t Token) uint64 {
		var v uint64
		if t.Pos != 0 {
			v = uint64(int(t.Pos) + psi)
		}
		return v | uint64(t.Bit)<<posBits | uint64(t.Carry)<<(posBits+1)
	}
	posMask := uint64(1)<<posBits - 1
	decTok := func(v uint64) Token {
		t := Token{
			Bit:   uint8(v >> posBits & 1),
			Carry: uint8(v >> (posBits + 1) & 1),
		}
		if pv := v & posMask; pv != 0 {
			t.Pos = int16(int(pv) - psi)
		}
		return t
	}

	return population.PackedCodec[State]{
		Bits: total,
		Enc: func(s State) uint64 {
			v := uint64(s.B)<<sB | uint64(s.Dist)<<sDist |
				encTok(s.TokB)<<sTokB | encTok(s.TokW)<<sTokW |
				uint64(s.Clock)<<sClock | uint64(s.Hits)<<sHits |
				uint64(s.SignalR)<<sSig | war.Pack(s.War)<<sWar
			if s.Leader {
				v |= 1
			}
			if s.Last {
				v |= 1 << sLast
			}
			return v
		},
		Dec: func(v uint64) State {
			return State{
				Leader:  v&1 != 0,
				B:       uint8(v >> sB & 1),
				Dist:    uint16(v >> sDist & (1<<distBits - 1)),
				Last:    v>>sLast&1 != 0,
				TokB:    decTok(v >> sTokB & (1<<tokBits - 1)),
				TokW:    decTok(v >> sTokW & (1<<tokBits - 1)),
				Clock:   uint16(v >> sClock & (1<<clockBits - 1)),
				Hits:    uint16(v >> sHits & (1<<hitsBits - 1)),
				SignalR: uint16(v >> sSig & (1<<clockBits - 1)),
				War:     war.Unpack(v >> sWar),
			}
		},
	}, true
}

// Meta word layout: the SafetySpec-relevant projection of a State, at
// fixed shifts (Validate caps ψ at 60, so dist < 120 fits 8 bits and the
// token position field Pos+ψ ∈ [1, 120] fits 7). Clock, hits and signalR
// are deliberately absent — neither the arc mask nor the residual reads
// them.
const (
	metaLeaderBit  = uint64(1) << 0
	metaBBit       = uint64(1) << 1
	metaLastBit    = uint64(1) << 2
	metaWarShift   = 3 // 4 bits, war.Pack layout
	metaDistShift  = 8 // 8 bits
	metaTokBShift  = 16
	metaTokWShift  = 32
	metaTokMask    = uint64(1)<<9 - 1 // 7-bit position, payload bit, carry
	metaTokPosMask = uint64(1)<<7 - 1
)

// metaID projects s onto its meta word.
func (p Params) metaID(s State) uint64 {
	v := war.Pack(s.War)<<metaWarShift | uint64(s.Dist)<<metaDistShift |
		p.metaTok(s.TokB)<<metaTokBShift | p.metaTok(s.TokW)<<metaTokWShift
	if s.Leader {
		v |= metaLeaderBit
	}
	if s.B != 0 {
		v |= metaBBit
	}
	if s.Last {
		v |= metaLastBit
	}
	return v
}

func (p Params) metaTok(t Token) uint64 {
	if t.None() {
		return 0
	}
	return uint64(int(t.Pos)+p.Psi) | uint64(t.Bit)<<7 | uint64(t.Carry)<<8
}

// attachMeta installs the meta-word acceleration callbacks on SafetySpec's
// RingSpec: each is the literal port of its State-level counterpart to the
// meta layout, and the equivalence tests pin them bit-for-bit (witnesses
// included).
func (p Params) attachMeta(spec *population.RingSpec[State]) {
	two := uint16(p.TwoPsi())
	spec.MetaID = p.metaID
	spec.ArcMaskMeta = func(l, r uint64) uint8 {
		var m uint8
		rdist := uint16(r >> metaDistShift & 0xff)
		if r&metaLeaderBit != 0 {
			if rdist != 0 {
				m |= safeArcDist
			}
		} else {
			want := uint16(l>>metaDistShift&0xff) + 1
			if want == two {
				want = 0
			}
			if rdist != want {
				m |= safeArcDist
			}
			if l&metaLastBit != 0 && r&metaLastBit == 0 {
				m |= safeArcLastDrop
			}
		}
		return m
	}
	spec.AgentMaskMeta = func(m uint64) uint8 {
		var b uint8
		if m&metaLeaderBit != 0 {
			b |= safeAgentLeader
		}
		if m&metaLastBit != 0 {
			b |= safeAgentLast
		}
		// war.Pack keeps Bullet in the nibble's low two bits; Live is 2.
		if m>>metaWarShift&3 == uint64(war.Live) {
			b |= safeAgentLiveBullet
		}
		return b
	}
	spec.ResidualMeta = p.metaResidual()
}

// metaResidual builds the per-agent-meta residual closure. Each closure
// instance memoizes the segment pair its last failure witnessed (hintK,
// hintJ): when the verdict is re-evaluated at the same head and that pair
// still fails, the O(n) chain walk collapses to an O(ψ) re-check. The hint
// is purely advisory — a stale or cross-lane-polluted hint costs one wasted
// pair check before the full scan — so lockstep lanes sharing one spec
// instance interleave safely. A hint hit may witness a later failing pair
// than the full scan's first one; both pin genuinely failing checks, which
// is all the witness cache requires (see the ResidualMeta contract).
func (p Params) metaResidual() func(*population.LocalCounts, []uint64) (bool, population.Witness) {
	hintK, hintJ := -1, -1
	return func(c *population.LocalCounts, meta []uint64) (bool, population.Witness) {
		k := c.AgentPos[0]
		if c.Agent[2] > 0 {
			ok, off := war.PeacefulPrefix(meta, k, func(m uint64) war.State {
				return war.Unpack(m >> metaWarShift)
			})
			if !ok {
				return false, population.IntervalWitness(len(meta), k, off, k)
			}
		}
		ok, w, hk, hj := p.safeTailWitnessMeta(meta, k, hintK, hintJ)
		hintK, hintJ = hk, hj
		return ok, w
	}
}

// safeTailWitnessMeta is safeTailWitness over per-agent meta words:
// identical verdict, and identical witnesses except on a hint hit (see
// metaResidual). The chain walk reuses each segment ID as the next pair's
// left ID, halving the segment loads of the reference implementation.
func (p Params) safeTailWitnessMeta(meta []uint64, k, hintK, hintJ int) (bool, population.Witness, int, int) {
	n := len(meta)
	psi := p.Psi
	zeta := p.Zeta()
	mask := (uint64(1) << uint(psi)) - 1

	segID := func(start int) uint64 {
		pos := start % n
		var id uint64
		for t := 0; t < psi; t++ {
			id |= (meta[pos] >> 1 & 1) << uint(t)
			pos++
			if pos == n {
				pos = 0
			}
		}
		return id
	}

	if hintK == k && hintJ >= 0 && hintJ+1 <= zeta-2 {
		a := segID(k + hintJ*psi)
		if b := segID(k + (hintJ+1)*psi); b != (a+1)&mask {
			return false, population.IntervalWitness(n, k+hintJ*psi, 2*psi-1, k), k, hintJ
		}
	}

	if zeta >= 3 {
		a := segID(k)
		for j := 0; j+1 <= zeta-2; j++ {
			b := segID(k + (j+1)*psi)
			if b != (a+1)&mask {
				return false, population.IntervalWitness(n, k+j*psi, 2*psi-1, k), k, j
			}
			a = b
		}
	}

	pos := k
	for i := 0; i < n; i++ {
		v := meta[pos]
		pos++
		if pos == n {
			pos = 0
		}
		if tb := v >> metaTokBShift & metaTokMask; tb&metaTokPosMask != 0 {
			if ok, lo, hi := p.tokenSoundSpanMeta(meta, k, i, tb, 0); !ok {
				return false, population.IntervalWitness(n, k+lo, hi-lo, k), -1, -1
			}
		}
		if tw := v >> metaTokWShift & metaTokMask; tw&metaTokPosMask != 0 {
			if ok, lo, hi := p.tokenSoundSpanMeta(meta, k, i, tw, psi); !ok {
				return false, population.IntervalWitness(n, k+lo, hi-lo, k), -1, -1
			}
		}
	}
	return true, population.Witness{}, -1, -1
}

// tokenSoundSpanMeta is tokenSoundSpan over a meta-encoded token (see
// metaTok): same verdict, same failure span.
func (p Params) tokenSoundSpanMeta(meta []uint64, k, i int, tok uint64, d int) (bool, int, int) {
	n := len(meta)
	psi := p.Psi
	zeta := p.Zeta()
	if i >= psi*(zeta-1) {
		return false, i, i
	}

	pos := int(tok&metaTokPosMask) - psi
	var j, x int
	if pos > 0 {
		target := i + pos
		if target < psi || target >= n {
			return false, i, i
		}
		x = (target - psi) % psi
		j = (target - psi - x) / psi
	} else {
		target := i + pos
		if target < 0 {
			return false, i, i
		}
		off := target % psi
		if off == 0 {
			return false, i, i
		}
		j = target / psi
		x = off - 1
	}
	if j < 0 || j > zeta-2 {
		return false, i, i
	}
	if (j%2 == 0) != (d == 0) {
		return false, i, i
	}

	carryIn := uint8(1)
	at := (k + j*psi) % n
	for tt := 0; tt < x; tt++ {
		if meta[at]&metaBBit == 0 {
			carryIn = 0
			break
		}
		at++
		if at == n {
			at = 0
		}
	}
	bx := uint8(meta[(k+j*psi+x)%n] >> 1 & 1)
	expBit := bx ^ carryIn
	expCarry := carryIn & bx
	if uint8(tok>>7&1) == expBit && uint8(tok>>8&1) == expCarry {
		return true, 0, 0
	}
	lo, hi := j*psi, j*psi+x
	if i < lo {
		lo = i
	}
	if i > hi {
		hi = i
	}
	return false, lo, hi
}
