package core

import (
	"strings"
	"testing"

	"repro/internal/xrand"
)

func TestCorruptedPerfectKeepsSize(t *testing.T) {
	p := NewParams(16)
	rng := xrand.New(5)
	cfg := p.CorruptedPerfect(rng, 4)
	if len(cfg) != p.N {
		t.Fatalf("size %d", len(cfg))
	}
	for i, s := range cfg {
		if !p.ValidState(s) {
			t.Fatalf("agent %d invalid after corruption: %+v", i, s)
		}
	}
}

func TestCorruptedPerfectZeroFaultsIsSafe(t *testing.T) {
	p := NewParams(16)
	cfg := p.CorruptedPerfect(xrand.New(1), 0)
	if !p.IsSafe(cfg) {
		t.Fatal("zero faults must leave the configuration safe")
	}
}

func TestFormatRingWithoutBorders(t *testing.T) {
	p := NewParams(8)
	cfg := make([]State, p.N)
	for i := range cfg {
		cfg[i] = State{Dist: 2} // no agent at dist 0 or ψ
	}
	out := p.FormatRing(cfg)
	if !strings.Contains(out, "dist=2") {
		t.Fatalf("borderless rendering:\n%s", out)
	}
}

func TestFormatRingLeaderTagPerAgentView(t *testing.T) {
	cfgLeader := State{Leader: true}
	if leaderTag(cfgLeader) == "" || leaderTag(State{}) != "" {
		t.Fatal("leaderTag broken")
	}
}

func TestNoLeaderAlignedSeamDetection(t *testing.T) {
	// When 2ψ does not divide n, the wrap itself is a distance violation;
	// the configuration must be dist-inconsistent.
	p := NewParams(12) // ψ=4, 2ψ=8 does not divide 12
	cfg := p.NoLeaderAligned()
	if p.DistConsistent(cfg) {
		t.Fatal("seam expected for 2ψ ∤ n")
	}
}

func TestPerfectConfigTrailingSegmentBits(t *testing.T) {
	// The last (exempt) segment still gets deterministic bits; the
	// configuration must be byte-identical across calls.
	p := NewParams(19)
	a := p.PerfectConfig(3, 7)
	b := p.PerfectConfig(3, 7)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("PerfectConfig not deterministic at %d", i)
		}
	}
}
