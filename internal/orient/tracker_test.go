package orient

import (
	"fmt"
	"testing"

	"repro/internal/population"
	"repro/internal/population/tracktest"
	"repro/internal/twohop"
	"repro/internal/xrand"
)

// TestOrientedSpecExact pins the incremental per-edge tracker to the
// brute-force Oriented scan on undirected rings up to the n=64 acceptance
// size: per-step agreement and identical hitting times.
func TestOrientedSpecExact(t *testing.T) {
	for _, n := range []int{3, 4, 16, 33, 64} {
		for seed := uint64(1); seed <= 2; seed++ {
			n, seed := n, seed
			t.Run(fmt.Sprintf("n=%d/seed=%d", n, seed), func(t *testing.T) {
				colors := twohop.Coloring(n)
				p := New()
				mk := func() *population.Engine[State] {
					eng := population.NewEngine(population.UndirectedRing(n), p.Step, xrand.New(seed))
					eng.SetStates(InitialConfig(colors, xrand.New(seed^0x5eed)))
					return eng
				}
				tracktest.Exact(t, mk, OrientedSpec(), Oriented, 4000*uint64(n)*uint64(n))
			})
		}
	}
}
