// Package orient implements P_OR, the paper's self-stabilizing ring
// orientation protocol (Section 5, Algorithm 6): given a two-hop coloring
// (internal/twohop), agents on an undirected ring agree on a common
// direction within O(n² log n) steps w.h.p. using O(1) states, after which
// the directed-ring protocol P_PL applies.
//
// Segments of agents pointing the same way compete at their facing heads;
// a strong head beats a weak one, the initiator breaks ties, and the
// winner's momentum travels with the strong bit placed on the advancing
// head, so a winning segment keeps winning w.h.p. until its opponent
// disappears. Non-head strong bits decay (lines 70–73).
//
// Interpretation note (reconstruction erratum): Algorithm 6 changes dir only
// in the facing-heads case, so a dir value that names neither neighbor
// (possible in an adversarial initial configuration, since dir ranges
// over all colors) would never be corrected. We add the minimal
// sanitization — an agent whose dir names neither remembered neighbor
// color re-points at its current partner — which never fires in a safe
// configuration and therefore preserves closure.
package orient

import (
	"repro/internal/population"
	"repro/internal/xrand"
)

// NoColor marks an empty neighbor-color memory slot.
const NoColor = ^uint8(0)

// State is the per-agent state of P_OR. Color is the two-hop coloring
// input (never modified); Dir and the color memory M1/M2 evolve; Strong is
// the head-momentum bit. Outputs are Color and Dir (Definition 5.1).
type State struct {
	Color  uint8
	Dir    uint8
	M1, M2 uint8
	Strong bool
}

// Protocol is P_OR. It has no parameters; the color space is whatever the
// coloring uses.
type Protocol struct{}

// New returns the protocol.
func New() *Protocol { return &Protocol{} }

// Codec is the fixed-width state codec for the interned engine's packed
// interner: the four color bytes (Color, Dir, M1, M2 — NoColor is just
// 0xff) and the momentum bit — 33 bits.
func Codec() population.PackedCodec[State] {
	return population.PackedCodec[State]{
		Bits: 33,
		Enc: func(s State) uint64 {
			v := uint64(s.Color) | uint64(s.Dir)<<8 | uint64(s.M1)<<16 | uint64(s.M2)<<24
			if s.Strong {
				v |= 1 << 32
			}
			return v
		},
		Dec: func(v uint64) State {
			return State{
				Color:  uint8(v),
				Dir:    uint8(v >> 8),
				M1:     uint8(v >> 16),
				M2:     uint8(v >> 24),
				Strong: v&(1<<32) != 0,
			}
		},
	}
}

// Step is the transition function for an interaction between two adjacent
// agents u (initiator) and v (responder) of an undirected ring.
func (p *Protocol) Step(u, v State) (State, State) {
	// Neighbor-color memory: remember the two distinct colors observed most
	// recently (the rule the paper states for maintaining c1/c2).
	observe(&u, v.Color)
	observe(&v, u.Color)

	// Sanitization (see package comment): a dir naming neither remembered
	// neighbor re-points at the current partner.
	if u.Dir != u.M1 && u.Dir != u.M2 {
		u.Dir = v.Color
	}
	if v.Dir != v.M1 && v.Dir != v.M2 {
		v.Dir = u.Color
	}

	switch {
	case u.Dir == v.Color && v.Dir == u.Color:
		// Lines 63–69: facing heads.
		if !u.Strong && v.Strong {
			// v wins: u turns away from v and becomes the new head of v's
			// segment, inheriting the momentum.
			u.Dir = otherColor(u, v.Color)
			u.Strong, v.Strong = true, false
		} else {
			// u wins (strong beats weak, initiator breaks ties; two weak
			// heads make the initiator strong through its new head).
			v.Dir = otherColor(v, u.Color)
			u.Strong, v.Strong = false, true
		}
	case u.Dir == v.Color:
		// Lines 70–71: u is mid-segment; stray strength decays.
		u.Strong = false
	case v.Dir == u.Color:
		// Lines 72–73.
		v.Strong = false
	}
	return u, v
}

func observe(s *State, c uint8) {
	if s.M1 == c {
		return
	}
	s.M2 = s.M1
	s.M1 = c
}

// otherColor returns the remembered neighbor color that differs from
// avoid; with stale memory the choice may be wrong, which self-corrects
// once both neighbors have been observed.
func otherColor(s State, avoid uint8) uint8 {
	if s.M1 != avoid {
		return s.M1
	}
	return s.M2
}

// InitialConfig builds a configuration from a two-hop coloring with
// adversarial dir, strong and memory chosen by rng.
func InitialConfig(colors []uint8, rng *xrand.RNG) []State {
	maxColor := 0
	for _, c := range colors {
		if int(c) > maxColor {
			maxColor = int(c)
		}
	}
	cfg := make([]State, len(colors))
	for i := range cfg {
		cfg[i] = State{
			Color:  colors[i],
			Dir:    uint8(rng.Intn(maxColor + 2)), // may name no neighbor
			M1:     uint8(rng.Intn(maxColor + 2)),
			M2:     uint8(rng.Intn(maxColor + 2)),
			Strong: rng.Bool(),
		}
	}
	return cfg
}

// Oriented reports whether the ring is fully oriented: every agent points
// at its clockwise neighbor, or every agent points at its counter-clockwise
// neighbor (condition (ii) of Definition 5.1). Indices follow the
// underlying ring layout, with agent i adjacent to i±1.
func Oriented(cfg []State) bool {
	n := len(cfg)
	cw, ccw := true, true
	for i := 0; i < n; i++ {
		if cfg[i].Dir != cfg[(i+1)%n].Color {
			cw = false
		}
		if cfg[i].Dir != cfg[(i-1+n)%n].Color {
			ccw = false
		}
	}
	return cw || ccw
}

// Clockwise reports whether an oriented ring points clockwise (agent i at
// agent i+1). Valid only when Oriented holds.
func Clockwise(cfg []State) bool {
	return cfg[0].Dir == cfg[1%len(cfg)].Color
}

// Heads returns the number of facing-head pairs plus lone heads: arcs
// where neither direction aligns. A fully oriented ring has zero.
func Heads(cfg []State) int {
	n := len(cfg)
	count := 0
	for i := 0; i < n; i++ {
		j := (i + 1) % n
		cwAligned := cfg[i].Dir == cfg[j].Color && cfg[j].Dir != cfg[i].Color
		ccwAligned := cfg[j].Dir == cfg[i].Color && cfg[i].Dir != cfg[j].Color
		if !cwAligned && !ccwAligned {
			count++
		}
	}
	return count
}

// StateCount returns |Q| for a color space of ξ colors:
// ξ (color) × ξ (dir) × ξ² (memory) × 2 (strong) — constant in n for
// constant ξ.
func StateCount(xi int) uint64 {
	x := uint64(xi)
	return x * x * x * x * 2
}

// Colors extracts the coloring of a configuration (for verification
// against twohop.Valid).
func Colors(cfg []State) []uint8 {
	out := make([]uint8, len(cfg))
	for i, s := range cfg {
		out[i] = s.Color
	}
	return out
}

// OrientedSpec is the delta-decomposed form of Oriented for incremental
// convergence tracking (population.RingTracker). Definition 5.1 (ii) is a
// disjunction of two fully local conjunctions, one per direction, so two
// per-edge violation counters suffice: edge i is clockwise-violating when
// agent i does not point at agent i+1's color, counter-clockwise-violating
// when agent i+1 does not point at agent i's color; the ring is oriented
// exactly when either counter is zero. The verdict never scans the
// configuration and equals Oriented at every configuration.
func OrientedSpec() population.RingSpec[State] {
	const (
		edgeCWBad = 1 << iota
		edgeCCWBad
	)
	return population.RingSpec[State]{
		ArcMask: func(l, r State) uint8 {
			var m uint8
			if l.Dir != r.Color {
				m |= edgeCWBad
			}
			if r.Dir != l.Color {
				m |= edgeCCWBad
			}
			return m
		},
		Converged: func(c *population.LocalCounts, _ []State) bool {
			return c.Arc[0] == 0 || c.Arc[1] == 0
		},
		ArcNames: []string{"cw_disagreements", "ccw_disagreements"},
	}
}
