package orient

import (
	"testing"

	"repro/internal/population"
	"repro/internal/xrand"
)

// sampleStates returns a mixed exhaustive/random state sample: every
// combination over a small structured palette that includes NoColor (the
// adversarial empty-memory value), then a uniform random sweep of the full
// 2³³ domain. The codec's contract is injectivity over the whole domain,
// so sampling plus the structured corner set is the practical stand-in for
// enumeration.
func sampleStates() []State {
	palette := []uint8{0, 1, 2, 7, 0xfe, NoColor}
	var out []State
	for _, c := range palette {
		for _, d := range palette {
			for _, m1 := range palette {
				for _, m2 := range palette {
					for st := 0; st < 2; st++ {
						out = append(out, State{Color: c, Dir: d, M1: m1, M2: m2, Strong: st == 1})
					}
				}
			}
		}
	}
	rng := xrand.New(42)
	for i := 0; i < 50000; i++ {
		w := rng.Uint64()
		out = append(out, State{
			Color:  uint8(w),
			Dir:    uint8(w >> 8),
			M1:     uint8(w >> 16),
			M2:     uint8(w >> 24),
			Strong: w>>32&1 != 0,
		})
	}
	return out
}

// TestCodecRoundTrip pins the packed codec over the structured corner set
// and a random sweep: Dec(Enc(s)) == s, Enc stays under the declared
// width, and Enc is injective over the sample.
func TestCodecRoundTrip(t *testing.T) {
	c := Codec()
	if c.Bits < 1 || c.Bits > 63 {
		t.Fatalf("codec width %d outside [1, 63]", c.Bits)
	}
	seen := make(map[uint64]State)
	for _, s := range sampleStates() {
		v := c.Enc(s)
		if v >= 1<<c.Bits {
			t.Fatalf("Enc(%+v) = %#x exceeds %d bits", s, v, c.Bits)
		}
		if got := c.Dec(v); got != s {
			t.Fatalf("round trip: %+v -> %#x -> %+v", s, v, got)
		}
		if prev, dup := seen[v]; dup && prev != s {
			t.Fatalf("collision: %+v and %+v both pack to %#x", prev, s, v)
		}
		seen[v] = s
	}
}

// TestPackedInternerCollisionFree feeds the sample through the packed
// interner: one distinct ID per distinct state, stable on re-intern.
func TestPackedInternerCollisionFree(t *testing.T) {
	c := Codec()
	in := population.NewPackedInterner(c, population.DefaultMaxStates)
	distinct := make(map[State]uint32)
	for _, s := range sampleStates() {
		id, ok := in.Intern(s)
		if !ok {
			t.Fatalf("intern %+v failed below cap", s)
		}
		if prev, dup := distinct[s]; dup {
			if id != prev {
				t.Fatalf("re-intern of %+v moved ID %d -> %d", s, prev, id)
			}
			continue
		}
		distinct[s] = id
		if in.Value(id) != s || in.Packed(id) != c.Enc(s) {
			t.Fatalf("mint %d does not invert for %+v", id, s)
		}
	}
	if in.Len() != len(distinct) {
		t.Fatalf("interner minted %d IDs for %d distinct states", in.Len(), len(distinct))
	}
}

// FuzzCodecRoundTrip drives the round trip from raw fuzzed bytes; every
// field combination is a valid state.
func FuzzCodecRoundTrip(f *testing.F) {
	f.Add(uint8(0), uint8(0), uint8(0), uint8(0), false)
	f.Add(NoColor, NoColor, NoColor, NoColor, true)
	f.Add(uint8(3), uint8(1), uint8(2), NoColor, true)
	f.Fuzz(func(t *testing.T, color, dir, m1, m2 uint8, strong bool) {
		s := State{Color: color, Dir: dir, M1: m1, M2: m2, Strong: strong}
		c := Codec()
		v := c.Enc(s)
		if v >= 1<<c.Bits {
			t.Fatalf("Enc(%+v) = %#x exceeds %d bits", s, v, c.Bits)
		}
		if got := c.Dec(v); got != s {
			t.Fatalf("round trip: %+v -> %#x -> %+v", s, v, got)
		}
	})
}
