package orient

import (
	"testing"

	"repro/internal/population"
	"repro/internal/twohop"
	"repro/internal/xrand"
)

// orientedConfig builds a fully clockwise-oriented configuration with
// converged memories.
func orientedConfig(n int) []State {
	colors := twohop.Coloring(n)
	cfg := make([]State, n)
	for i := range cfg {
		cfg[i] = State{
			Color: colors[i],
			Dir:   colors[(i+1)%n],
			M1:    colors[(i+1)%n],
			M2:    colors[(i-1+n)%n],
		}
	}
	return cfg
}

func TestOrientedRecognizesBothDirections(t *testing.T) {
	n := 10
	cw := orientedConfig(n)
	if !Oriented(cw) || !Clockwise(cw) {
		t.Fatal("clockwise configuration not recognized")
	}
	colors := twohop.Coloring(n)
	ccw := make([]State, n)
	for i := range ccw {
		ccw[i] = State{Color: colors[i], Dir: colors[(i-1+n)%n]}
	}
	if !Oriented(ccw) || Clockwise(ccw) {
		t.Fatal("counter-clockwise configuration not recognized")
	}
}

func TestOrientedRejectsMixed(t *testing.T) {
	cfg := orientedConfig(10)
	cfg[4].Dir = cfg[4].M2 // point backwards
	if Oriented(cfg) {
		t.Fatal("mixed directions judged oriented")
	}
	if Heads(cfg) == 0 {
		t.Fatal("mixed directions must expose heads")
	}
}

func TestMemoryRule(t *testing.T) {
	s := State{M1: 7, M2: 9}
	observe(&s, 7)
	if s.M1 != 7 || s.M2 != 9 {
		t.Fatal("repeat observation must not shift memory")
	}
	observe(&s, 3)
	if s.M1 != 3 || s.M2 != 7 {
		t.Fatalf("memory after new color: %+v", s)
	}
}

func TestFacingHeadsStrongBeatsWeak(t *testing.T) {
	p := New()
	// u weak faces v strong: v wins, u flips away and carries the strength.
	u := State{Color: 0, Dir: 1, M1: 1, M2: 2}
	v := State{Color: 1, Dir: 0, M1: 0, M2: 2, Strong: true}
	u2, v2 := p.Step(u, v)
	if u2.Dir != 2 {
		t.Fatalf("loser did not turn away: dir=%d", u2.Dir)
	}
	if !u2.Strong || v2.Strong {
		t.Fatal("momentum did not move to the new head")
	}
	if v2.Dir != 0 {
		t.Fatal("winner's dir must not change")
	}
}

func TestFacingHeadsInitiatorBreaksTies(t *testing.T) {
	p := New()
	u := State{Color: 0, Dir: 1, M1: 1, M2: 2}
	v := State{Color: 1, Dir: 0, M1: 0, M2: 2}
	u2, v2 := p.Step(u, v)
	if v2.Dir != 2 {
		t.Fatalf("responder did not turn: dir=%d", v2.Dir)
	}
	if !v2.Strong || u2.Strong {
		t.Fatal("initiator's win must strengthen its new head")
	}
}

func TestMidSegmentStrengthDecays(t *testing.T) {
	p := New()
	u := State{Color: 0, Dir: 1, M1: 1, M2: 2, Strong: true}
	v := State{Color: 1, Dir: 2, M1: 2, M2: 0} // v points onward, not back
	u2, _ := p.Step(u, v)
	if u2.Strong {
		t.Fatal("mid-segment strong bit did not decay")
	}
	if u2.Dir != 1 {
		t.Fatal("aligned dir must not change")
	}
}

func TestSanitizationRepairsGarbageDir(t *testing.T) {
	p := New()
	// u's dir names neither remembered neighbor.
	u := State{Color: 0, Dir: 7, M1: 1, M2: 2}
	v := State{Color: 1, Dir: 2, M1: 2, M2: 0}
	u2, _ := p.Step(u, v)
	if u2.Dir != 1 {
		t.Fatalf("garbage dir not repaired: %d", u2.Dir)
	}
}

func TestConvergenceFromAdversarial(t *testing.T) {
	for _, n := range []int{8, 16, 32, 64} {
		colors := twohop.Coloring(n)
		for seed := uint64(0); seed < 3; seed++ {
			rng := xrand.New(seed + 200)
			cfg := InitialConfig(colors, rng)
			p := New()
			eng := population.NewEngine(population.UndirectedRing(n), p.Step, xrand.New(seed))
			eng.SetStates(cfg)
			maxSteps := 2000 * uint64(n) * uint64(n)
			_, ok := eng.RunUntil(Oriented, n, maxSteps)
			if !ok {
				t.Fatalf("n=%d seed=%d: not oriented within %d steps (%d heads)",
					n, seed, maxSteps, Heads(eng.Config()))
			}
		}
	}
}

// TestClosure is condition (iii) of Definition 5.1: once oriented, colors
// and dirs never change.
func TestClosure(t *testing.T) {
	n := 16
	p := New()
	eng := population.NewEngine(population.UndirectedRing(n), p.Step, xrand.New(3))
	eng.SetStates(orientedConfig(n))
	before := eng.Snapshot()
	eng.Run(500000)
	after := eng.Config()
	for i := range after {
		if after[i].Dir != before[i].Dir || after[i].Color != before[i].Color {
			t.Fatalf("output changed at agent %d: %+v -> %+v", i, before[i], after[i])
		}
	}
	if !Oriented(after) {
		t.Fatal("left the oriented set")
	}
}

// TestConvergedMemoriesAreNeighbors: after convergence each agent's memory
// holds exactly its two neighbors' colors.
func TestConvergedMemoriesAreNeighbors(t *testing.T) {
	n := 12
	colors := twohop.Coloring(n)
	p := New()
	eng := population.NewEngine(population.UndirectedRing(n), p.Step, xrand.New(9))
	eng.SetStates(InitialConfig(colors, xrand.New(10)))
	if _, ok := eng.RunUntil(Oriented, n, 2000*uint64(n*n)); !ok {
		t.Fatal("did not orient")
	}
	eng.Run(uint64(100 * n * n)) // let memories settle everywhere
	for i := 0; i < n; i++ {
		s := eng.State(i)
		left, right := colors[(i-1+n)%n], colors[(i+1)%n]
		if !((s.M1 == left && s.M2 == right) || (s.M1 == right && s.M2 == left)) {
			t.Fatalf("agent %d memory {%d,%d}, neighbors {%d,%d}", i, s.M1, s.M2, left, right)
		}
	}
}

func TestStateCountConstant(t *testing.T) {
	if got := StateCount(3); got != 3*3*3*3*2 {
		t.Fatalf("StateCount(3) = %d", got)
	}
}

func TestColorsExtraction(t *testing.T) {
	cfg := orientedConfig(9)
	if !twohop.Valid(Colors(cfg)) {
		t.Fatal("extracted coloring invalid")
	}
}

func BenchmarkStep(b *testing.B) {
	p := New()
	u := State{Color: 0, Dir: 1, M1: 1, M2: 2}
	v := State{Color: 1, Dir: 2, M1: 2, M2: 0}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		u, v = p.Step(u, v)
	}
}
