package xrand

import (
	"math"
	"math/bits"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a := New(42)
	b := New(42)
	for i := 0; i < 1000; i++ {
		if got, want := a.Uint64(), b.Uint64(); got != want {
			t.Fatalf("stream diverged at %d: %d != %d", i, got, want)
		}
	}
}

func TestKnownValues(t *testing.T) {
	// SplitMix64 reference values for seed 0 (from the public-domain
	// reference implementation by Sebastiano Vigna).
	want := []uint64{
		0xe220a8397b1dcdaf,
		0x6e789e6aa1b965f4,
		0x06c45d188009454f,
		0xf88bb8a8724c81ec,
		0x1b39896a51a8749b,
	}
	r := New(0)
	for i, w := range want {
		if got := r.Uint64(); got != w {
			t.Fatalf("value %d: got %#x, want %#x", i, got, w)
		}
	}
}

func TestSeedsDiffer(t *testing.T) {
	a, b := New(1), New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("seeds 1 and 2 produced %d identical outputs in 100 draws", same)
	}
}

func TestIntnRange(t *testing.T) {
	if err := quick.Check(func(seed uint64, n int) bool {
		if n <= 0 {
			n = -n + 1
		}
		n = n%1000 + 1
		r := New(seed)
		for i := 0; i < 50; i++ {
			v := r.Intn(n)
			if v < 0 || v >= n {
				return false
			}
		}
		return true
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestIntnUniformity(t *testing.T) {
	// Chi-square test over 16 buckets; threshold is the 99.9% quantile of
	// chi2 with 15 degrees of freedom (~37.7), with headroom.
	const (
		buckets = 16
		draws   = 160000
	)
	r := New(7)
	var counts [buckets]int
	for i := 0; i < draws; i++ {
		counts[r.Intn(buckets)]++
	}
	expected := float64(draws) / buckets
	chi2 := 0.0
	for _, c := range counts {
		d := float64(c) - expected
		chi2 += d * d / expected
	}
	if chi2 > 45 {
		t.Fatalf("chi-square %.2f too large; counts %v", chi2, counts)
	}
}

func TestFillIntnMatchesIntnStream(t *testing.T) {
	// FillIntn must draw the exact same stream as successive Intn calls —
	// the engine's batched fast path relies on this for reproducibility.
	for _, n := range []int{1, 2, 3, 7, 64, 1000, 1 << 20} {
		a, b := New(17), New(17)
		buf := make([]int32, 257)
		a.FillIntn(n, buf)
		for i, got := range buf {
			if want := b.Intn(n); int(got) != want {
				t.Fatalf("n=%d: batch draw %d = %d, serial Intn = %d", n, i, got, want)
			}
		}
		if a.Uint64() != b.Uint64() {
			t.Fatalf("n=%d: RNG states diverged after batch", n)
		}
	}
}

func TestFillIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("FillIntn(0, ...) did not panic")
		}
	}()
	New(1).FillIntn(0, make([]int32, 4))
}

func TestFloat64Range(t *testing.T) {
	r := New(3)
	sum := 0.0
	const draws = 100000
	for i := 0; i < draws; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of range: %v", f)
		}
		sum += f
	}
	if mean := sum / draws; math.Abs(mean-0.5) > 0.01 {
		t.Fatalf("Float64 mean %.4f too far from 0.5", mean)
	}
}

func TestBoolBalance(t *testing.T) {
	r := New(11)
	heads := 0
	const draws = 100000
	for i := 0; i < draws; i++ {
		if r.Bool() {
			heads++
		}
	}
	if ratio := float64(heads) / draws; math.Abs(ratio-0.5) > 0.01 {
		t.Fatalf("Bool ratio %.4f too far from 0.5", ratio)
	}
}

func TestSplitIndependence(t *testing.T) {
	r := New(5)
	child := r.Split()
	// The child stream must not simply replay the parent stream.
	same := 0
	for i := 0; i < 100; i++ {
		if r.Uint64() == child.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("split stream matched parent %d/100 times", same)
	}
}

func TestZeroValueUsable(t *testing.T) {
	var r RNG
	if v := r.Intn(10); v < 0 || v >= 10 {
		t.Fatalf("zero-value RNG out of range: %d", v)
	}
}

func BenchmarkUint64(b *testing.B) {
	r := New(1)
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink = r.Uint64()
	}
	_ = sink
}

func BenchmarkIntn(b *testing.B) {
	r := New(1)
	var sink int
	for i := 0; i < b.N; i++ {
		sink = r.Intn(1000)
	}
	_ = sink
}

// preHoistFillIntn is a verbatim copy of the FillIntn rejection loop as it
// stood before the threshold test was reduced to a single compare (the
// per-draw check was `lo >= bound || lo >= threshold`). It is the
// differential oracle of TestFillIntnGoldenStream: the simplification must
// not move a single draw.
func preHoistFillIntn(r *RNG, n int, out []int32) {
	bound := uint64(n)
	threshold := (-bound) % bound
	for i := range out {
		for {
			v := r.Uint64()
			hi, lo := bits.Mul64(v, bound)
			if lo >= bound || lo >= threshold {
				out[i] = int32(hi)
				break
			}
		}
	}
}

// TestFillIntnGoldenStream pins the bounded-draw stream two ways: against a
// verbatim copy of the pre-simplification rejection loop across many bounds
// and seeds (the threshold is below the bound, so dropping the lo >= bound
// shortcut must be a no-op), and against hardcoded golden values for one
// (seed, bound) cell, so any future rewrite that silently moves a draw —
// and with it every recorded experiment — fails loudly.
func TestFillIntnGoldenStream(t *testing.T) {
	for _, n := range []int{1, 2, 3, 5, 6, 7, 48, 64, 100, 1000, 1 << 16, 1<<31 - 1} {
		for seed := uint64(0); seed < 8; seed++ {
			a, b := New(seed), New(seed)
			got := make([]int32, 512)
			want := make([]int32, 512)
			a.FillIntn(n, got)
			preHoistFillIntn(b, n, want)
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("n=%d seed=%d: draw %d = %d, pre-hoist loop = %d", n, seed, i, got[i], want[i])
				}
			}
			if a.Uint64() != b.Uint64() {
				t.Fatalf("n=%d seed=%d: RNG states diverged", n, seed)
			}
		}
	}

	golden := []int32{4, 0, 1, 2, 0, 5, 1, 4, 2, 3, 1, 2, 3, 3, 3, 1, 0, 2, 0, 4, 5, 0, 3, 3, 0, 1, 4, 4, 5, 4, 4, 5}
	r := New(42)
	buf := make([]int32, len(golden))
	r.FillIntn(6, buf)
	for i, g := range golden {
		if buf[i] != g {
			t.Fatalf("golden draw %d: got %d, want %d", i, buf[i], g)
		}
	}
}

// TestIntnGoldenThresholdHoist pins Intn the same way: the hoisted
// threshold and first-draw fast path must reproduce the original
// recompute-per-iteration loop draw for draw.
func TestIntnGoldenThresholdHoist(t *testing.T) {
	preHoistIntn := func(r *RNG, n int) int {
		bound := uint64(n)
		for {
			v := r.Uint64()
			hi, lo := bits.Mul64(v, bound)
			if lo >= bound || lo >= (-bound)%bound {
				return int(hi)
			}
		}
	}
	for _, n := range []int{1, 2, 3, 5, 7, 48, 1000, 1<<31 - 1} {
		for seed := uint64(0); seed < 8; seed++ {
			a, b := New(seed), New(seed)
			for i := 0; i < 512; i++ {
				if got, want := a.Intn(n), preHoistIntn(b, n); got != want {
					t.Fatalf("n=%d seed=%d: draw %d = %d, pre-hoist loop = %d", n, seed, i, got, want)
				}
			}
		}
	}
}
