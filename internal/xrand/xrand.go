// Package xrand provides a small, fast, deterministic random number
// generator used by the simulator and the experiment harness.
//
// The generator is SplitMix64 (Steele, Lea, Flood 2014): a 64-bit state
// advanced by a Weyl sequence and finalized with a variant of the MurmurHash3
// mixer. It passes BigCrush, is allocation-free, and — unlike math/rand —
// its output for a given seed is stable across Go releases, which keeps every
// recorded experiment reproducible bit-for-bit.
package xrand

import (
	"math"
	"math/bits"
)

// RNG is a deterministic pseudo-random number generator. The zero value is a
// valid generator seeded with 0; use New to seed explicitly.
type RNG struct {
	state uint64
}

// New returns a generator seeded with seed. Distinct seeds yield
// statistically independent streams for all practical purposes.
func New(seed uint64) *RNG {
	return &RNG{state: seed}
}

// Uint64 returns the next 64 uniformly random bits.
func (r *RNG) Uint64() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Intn returns a uniformly random int in [0, n). It panics if n <= 0.
// Bounding uses Lemire's multiply-shift rejection method, which avoids the
// modulo bias of naive reduction and usually needs no rejection loop.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("xrand: Intn called with n <= 0")
	}
	bound := uint64(n)
	v := r.Uint64()
	hi, lo := bits.Mul64(v, bound)
	if lo >= bound {
		// First draw accepted without ever computing the modulo: the
		// rejection threshold (-bound)%bound is below bound, so lo >= bound
		// already implies acceptance. This is the overwhelmingly common case.
		return int(hi)
	}
	threshold := (-bound) % bound // loop-invariant: hoisted out of the rejection loop
	for lo < threshold {
		v = r.Uint64()
		hi, lo = bits.Mul64(v, bound)
	}
	return int(hi)
}

// FillIntn fills out with uniformly random int32 values in [0, n), drawing
// exactly the same stream as len(out) successive Intn calls. The simulation
// engine uses it to batch arc draws: one call amortizes the method-call and
// bounds-check overhead of the per-step path while keeping runs bit-for-bit
// reproducible against serial Intn draws.
func (r *RNG) FillIntn(n int, out []int32) {
	if n <= 0 {
		panic("xrand: FillIntn called with n <= 0")
	}
	if int64(n) > math.MaxInt32 {
		panic("xrand: FillIntn bound exceeds int32 range")
	}
	bound := uint64(n)
	// Lemire's rejection threshold is a pure function of the bound, so it is
	// computed once for the whole batch; the per-draw accept test is then a
	// single compare (threshold < bound, so the lo >= bound shortcut of the
	// single-draw path would be redundant here).
	threshold := (-bound) % bound
	for i := range out {
		for {
			v := r.Uint64()
			hi, lo := bits.Mul64(v, bound)
			if lo >= threshold {
				out[i] = int32(hi)
				break
			}
		}
	}
}

// Bool returns a fair random bit.
func (r *RNG) Bool() bool {
	return r.Uint64()&1 == 1
}

// Float64 returns a uniformly random float64 in [0, 1).
func (r *RNG) Float64() float64 {
	// 53 high bits scaled by 2^-53.
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Split returns a new generator whose stream is independent of r's future
// output. It is used to hand child components their own streams without
// sharing state.
func (r *RNG) Split() *RNG {
	return New(r.Uint64() ^ 0x632be59bd9b4e019)
}
