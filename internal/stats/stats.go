// Package stats provides the small statistics kit used by the experiment
// harness: summary statistics of convergence-time samples and least-squares
// fits for extracting scaling exponents from n-sweeps.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Summary holds the descriptive statistics of one sample.
type Summary struct {
	Count  int
	Mean   float64
	Std    float64
	Min    float64
	Median float64
	P90    float64
	Max    float64
}

// Summarize computes the Summary of xs. It panics on an empty sample —
// callers aggregate experiment results and must not silently drop cells.
func Summarize(xs []float64) Summary {
	if len(xs) == 0 {
		panic("stats: empty sample")
	}
	s := Summary{
		Count:  len(xs),
		Mean:   Mean(xs),
		Std:    StdDev(xs),
		Min:    xs[0],
		Max:    xs[0],
		Median: Quantile(xs, 0.5),
		P90:    Quantile(xs, 0.9),
	}
	for _, x := range xs {
		s.Min = math.Min(s.Min, x)
		s.Max = math.Max(s.Max, x)
	}
	return s
}

func (s Summary) String() string {
	return fmt.Sprintf("n=%d mean=%.3g med=%.3g p90=%.3g max=%.3g",
		s.Count, s.Mean, s.Median, s.P90, s.Max)
}

// Mean returns the arithmetic mean.
func Mean(xs []float64) float64 {
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// StdDev returns the sample standard deviation (n−1 in the denominator),
// or 0 for samples smaller than two.
func StdDev(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	sum := 0.0
	for _, x := range xs {
		d := x - m
		sum += d * d
	}
	return math.Sqrt(sum / float64(len(xs)-1))
}

// Quantile returns the q-quantile (0 ≤ q ≤ 1) with linear interpolation
// between order statistics.
func Quantile(xs []float64, q float64) float64 {
	sorted := make([]float64, len(xs))
	copy(sorted, xs)
	sort.Float64s(sorted)
	if len(sorted) == 1 {
		return sorted[0]
	}
	pos := q * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return sorted[lo]
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// LinearFit returns the least-squares slope and intercept of y against x.
// It panics when the inputs differ in length or have fewer than two
// points.
func LinearFit(x, y []float64) (slope, intercept float64) {
	if len(x) != len(y) || len(x) < 2 {
		panic(fmt.Sprintf("stats: bad fit input lengths %d, %d", len(x), len(y)))
	}
	mx, my := Mean(x), Mean(y)
	num, den := 0.0, 0.0
	for i := range x {
		num += (x[i] - mx) * (y[i] - my)
		den += (x[i] - mx) * (x[i] - mx)
	}
	slope = num / den
	return slope, my - slope*mx
}

// PowerLawExponent fits y ≈ a·x^b by least squares in log-log space and
// returns b — the scaling exponent of a convergence-time sweep.
func PowerLawExponent(x, y []float64) float64 {
	lx := make([]float64, len(x))
	ly := make([]float64, len(y))
	for i := range x {
		lx[i] = math.Log(x[i])
		ly[i] = math.Log(y[i])
	}
	slope, _ := LinearFit(lx, ly)
	return slope
}

// RSquared returns the coefficient of determination of the linear fit of y
// against x.
func RSquared(x, y []float64) float64 {
	slope, intercept := LinearFit(x, y)
	my := Mean(y)
	ssRes, ssTot := 0.0, 0.0
	for i := range x {
		pred := slope*x[i] + intercept
		ssRes += (y[i] - pred) * (y[i] - pred)
		ssTot += (y[i] - my) * (y[i] - my)
	}
	if ssTot == 0 {
		return 1
	}
	return 1 - ssRes/ssTot
}
