package stats

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/xrand"
)

func almostEqual(a, b, eps float64) bool {
	return math.Abs(a-b) <= eps
}

func TestMean(t *testing.T) {
	if got := Mean([]float64{1, 2, 3, 4}); got != 2.5 {
		t.Fatalf("Mean = %v", got)
	}
}

func TestStdDev(t *testing.T) {
	if got := StdDev([]float64{2, 4, 4, 4, 5, 5, 7, 9}); !almostEqual(got, 2.138, 0.001) {
		t.Fatalf("StdDev = %v", got)
	}
	if StdDev([]float64{5}) != 0 {
		t.Fatal("single-sample StdDev must be 0")
	}
}

func TestQuantile(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	tests := []struct {
		q, want float64
	}{
		{0, 1}, {0.25, 2}, {0.5, 3}, {0.75, 4}, {1, 5},
	}
	for _, tt := range tests {
		if got := Quantile(xs, tt.q); !almostEqual(got, tt.want, 1e-12) {
			t.Fatalf("Quantile(%v) = %v, want %v", tt.q, got, tt.want)
		}
	}
	// Interpolation.
	if got := Quantile([]float64{0, 10}, 0.3); !almostEqual(got, 3, 1e-12) {
		t.Fatalf("interpolated quantile = %v", got)
	}
	// Input must not be reordered.
	orig := []float64{3, 1, 2}
	Quantile(orig, 0.5)
	if orig[0] != 3 {
		t.Fatal("Quantile mutated its input")
	}
}

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{1, 2, 3, 4, 100})
	if s.Count != 5 || s.Min != 1 || s.Max != 100 || s.Median != 3 {
		t.Fatalf("Summary = %+v", s)
	}
	if s.String() == "" {
		t.Fatal("empty String()")
	}
}

func TestSummarizePanicsOnEmpty(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Summarize(nil)
}

func TestLinearFitExact(t *testing.T) {
	x := []float64{1, 2, 3, 4}
	y := []float64{5, 7, 9, 11} // y = 2x + 3
	slope, intercept := LinearFit(x, y)
	if !almostEqual(slope, 2, 1e-12) || !almostEqual(intercept, 3, 1e-12) {
		t.Fatalf("fit = (%v, %v)", slope, intercept)
	}
	if r2 := RSquared(x, y); !almostEqual(r2, 1, 1e-12) {
		t.Fatalf("R² = %v", r2)
	}
}

func TestLinearFitRecoversNoisyLine(t *testing.T) {
	rng := xrand.New(5)
	var x, y []float64
	for i := 1; i <= 200; i++ {
		x = append(x, float64(i))
		y = append(y, 3*float64(i)+10+(rng.Float64()-0.5))
	}
	slope, intercept := LinearFit(x, y)
	if !almostEqual(slope, 3, 0.01) || !almostEqual(intercept, 10, 1) {
		t.Fatalf("noisy fit = (%v, %v)", slope, intercept)
	}
}

func TestPowerLawExponent(t *testing.T) {
	tests := []struct {
		name string
		f    func(n float64) float64
		want float64
		eps  float64
	}{
		{"quadratic", func(n float64) float64 { return 5 * n * n }, 2, 1e-9},
		{"cubic", func(n float64) float64 { return 0.1 * n * n * n }, 3, 1e-9},
		{"n² log n", func(n float64) float64 { return n * n * math.Log(n) }, 2.35, 0.25},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			var x, y []float64
			for _, n := range []float64{16, 32, 64, 128, 256} {
				x = append(x, n)
				y = append(y, tt.f(n))
			}
			if got := PowerLawExponent(x, y); !almostEqual(got, tt.want, tt.eps) {
				t.Fatalf("exponent = %v, want %v±%v", got, tt.want, tt.eps)
			}
		})
	}
}

func TestQuantileMonotone(t *testing.T) {
	if err := quick.Check(func(seed uint64) bool {
		rng := xrand.New(seed)
		n := 1 + rng.Intn(50)
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = rng.Float64() * 100
		}
		prev := math.Inf(-1)
		for q := 0.0; q <= 1.0; q += 0.1 {
			v := Quantile(xs, q)
			if v < prev {
				return false
			}
			prev = v
		}
		return true
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestMeanWithinMinMax(t *testing.T) {
	if err := quick.Check(func(seed uint64) bool {
		rng := xrand.New(seed)
		n := 1 + rng.Intn(50)
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = rng.Float64()*200 - 100
		}
		s := Summarize(xs)
		return s.Mean >= s.Min-1e-9 && s.Mean <= s.Max+1e-9
	}, nil); err != nil {
		t.Fatal(err)
	}
}
