package modelcheck

import (
	"testing"
)

// toy protocol for checker-mechanics tests: each agent holds a value in
// {0,1,2}; an interaction sets the responder to the initiator's value.
// On a directed ring, the absorbing configurations are the constant ones.
func toyStep(cfg []uint8, arc int) []uint8 {
	n := len(cfg)
	next := make([]uint8, n)
	copy(next, cfg)
	next[(arc+1)%n] = cfg[arc]
	return next
}

func toyEnc(cfg []uint8) string { return string(cfg) }

func toyAll(n int) [][]uint8 {
	var out [][]uint8
	total := 1
	for i := 0; i < n; i++ {
		total *= 3
	}
	for v := 0; v < total; v++ {
		cfg := make([]uint8, n)
		x := v
		for i := 0; i < n; i++ {
			cfg[i] = uint8(x % 3)
			x /= 3
		}
		out = append(out, cfg)
	}
	return out
}

func constant(cfg []uint8) bool {
	for _, v := range cfg {
		if v != cfg[0] {
			return false
		}
	}
	return true
}

func TestExploreEnumeratesFullSpace(t *testing.T) {
	n := 3
	sp, err := Explore(n, toyStep, toyEnc, toyAll(n), 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	if sp.Size() != 27 {
		t.Fatalf("space size %d, want 27", sp.Size())
	}
}

func TestCheckClosedConstantConfigs(t *testing.T) {
	n := 3
	sp, err := Explore(n, toyStep, toyEnc, toyAll(n), 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	if from, arc := sp.CheckClosed(constant); from != -1 {
		t.Fatalf("constant set not closed: config %v arc %d", sp.Config(from), arc)
	}
}

func TestCheckEventuallyReachesConstant(t *testing.T) {
	n := 3
	sp, err := Explore(n, toyStep, toyEnc, toyAll(n), 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	if stuck := sp.CheckEventuallyReaches(constant); stuck != -1 {
		t.Fatalf("config %v cannot reach a constant configuration", sp.Config(stuck))
	}
}

func TestCheckInvariantFindsViolation(t *testing.T) {
	n := 3
	sp, err := Explore(n, toyStep, toyEnc, toyAll(n), 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	// "No agent holds 2" is violated by some initial configuration.
	viol := sp.CheckInvariant(func(cfg []uint8) bool {
		for _, v := range cfg {
			if v == 2 {
				return false
			}
		}
		return true
	})
	if viol == -1 {
		t.Fatal("expected an invariant violation")
	}
	// Value conservation upward: the multiset of values can only lose
	// diversity, so "some agent holds cfg[0]'s initial value" — instead
	// check a true invariant: values stay in {0,1,2}.
	if viol := sp.CheckInvariant(func(cfg []uint8) bool {
		for _, v := range cfg {
			if v > 2 {
				return false
			}
		}
		return true
	}); viol != -1 {
		t.Fatalf("domain invariant violated at %v", sp.Config(viol))
	}
}

func TestExploreRespectsLimit(t *testing.T) {
	if _, err := Explore(3, toyStep, toyEnc, toyAll(3), 5); err == nil {
		t.Fatal("expected ErrSpaceExceeded")
	}
}

func TestExploreRejectsBadArcs(t *testing.T) {
	if _, err := Explore(0, toyStep, toyEnc, nil, 10); err == nil {
		t.Fatal("expected error for zero arcs")
	}
}

func TestCountAndConfig(t *testing.T) {
	sp, err := Explore(3, toyStep, toyEnc, toyAll(3), 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	if got := sp.Count(constant); got != 3 {
		t.Fatalf("constant configurations: %d, want 3", got)
	}
}
