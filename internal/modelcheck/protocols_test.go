package modelcheck_test

// Exhaustive verification of the paper's safety lemmas on tiny rings: the
// O(1)-state modules have configuration spaces small enough at n = 3..4 to
// check outright. Combined with the statistical tests in each protocol's
// own package, these turn "never observed in simulation" into "impossible
// on the checked instance".

import (
	"fmt"
	"testing"

	"repro/internal/angluin"
	"repro/internal/chenchen"
	"repro/internal/fj"
	"repro/internal/modelcheck"
	"repro/internal/orient"
	"repro/internal/twohop"
	"repro/internal/war"
)

// ---- the elimination war (Algorithm 5) ----

type warAgent struct {
	leader bool
	w      war.State
}

func warStep(cfg []warAgent, arc int) []warAgent {
	n := len(cfg)
	next := make([]warAgent, n)
	copy(next, cfg)
	l, r := &next[arc], &next[(arc+1)%n]
	war.Step(&l.leader, &r.leader, &l.w, &r.w)
	return next
}

func warEnc(cfg []warAgent) string {
	out := make([]byte, len(cfg))
	for i, a := range cfg {
		b := byte(a.w.Bullet)
		if a.leader {
			b |= 4
		}
		if a.w.Shield {
			b |= 8
		}
		if a.w.Signal {
			b |= 16
		}
		out[i] = b
	}
	return string(out)
}

func warAll(n int) [][]warAgent {
	domain := make([]warAgent, 0, 24)
	for _, leader := range []bool{false, true} {
		for b := war.None; b <= war.Live; b++ {
			for _, shield := range []bool{false, true} {
				for _, signal := range []bool{false, true} {
					domain = append(domain, warAgent{
						leader: leader,
						w:      war.State{Bullet: b, Shield: shield, Signal: signal},
					})
				}
			}
		}
	}
	return enumerate(domain, n)
}

// enumerate returns every configuration of n agents over the domain.
func enumerate[S any](domain []S, n int) [][]S {
	total := 1
	for i := 0; i < n; i++ {
		total *= len(domain)
	}
	out := make([][]S, 0, total)
	for v := 0; v < total; v++ {
		cfg := make([]S, n)
		x := v
		for i := 0; i < n; i++ {
			cfg[i] = domain[x%len(domain)]
			x /= len(domain)
		}
		out = append(out, cfg)
	}
	return out
}

func warLeaders(cfg []warAgent) int {
	k := 0
	for _, a := range cfg {
		if a.leader {
			k++
		}
	}
	return k
}

func warInCPB(cfg []warAgent) bool {
	leaders := make([]bool, len(cfg))
	states := make([]war.State, len(cfg))
	for i, a := range cfg {
		leaders[i] = a.leader
		states[i] = a.w
	}
	return war.AllLiveBulletsPeaceful(leaders, states)
}

// TestWarExhaustive verifies, over the FULL configuration space at n=3,4:
// Lemma 4.1 (C_PB is closed), Lemma 4.2 (executions inside C_PB never go
// leaderless), closure of the one-leader subset of C_PB, and convergence
// (from every C_PB configuration, the one-leader subset is reachable).
func TestWarExhaustive(t *testing.T) {
	for _, n := range []int{3, 4} {
		t.Run(fmt.Sprintf("n=%d", n), func(t *testing.T) {
			sp, err := modelcheck.Explore(n, warStep, warEnc, warAll(n), 1<<22)
			if err != nil {
				t.Fatal(err)
			}
			t.Logf("n=%d: %d configurations", n, sp.Size())

			// Lemma 4.1: C_PB is closed.
			if from, arc := sp.CheckClosed(warInCPB); from != -1 {
				t.Fatalf("C_PB not closed: %+v arc %d", sp.Config(from), arc)
			}
			// Closure of L1 ∩ C_PB: a unique peaceful leader is immortal
			// and no second leader appears (the war cannot create leaders).
			oneLeaderPB := func(cfg []warAgent) bool {
				return warInCPB(cfg) && warLeaders(cfg) == 1
			}
			if from, arc := sp.CheckClosed(oneLeaderPB); from != -1 {
				t.Fatalf("L1∩C_PB not closed: %+v arc %d", sp.Config(from), arc)
			}

			// Lemma 4.2 (C_PB ⊆ C_NZ) and Lemma 4.11 (convergence): explore
			// only from C_PB and check no leaderless configuration is
			// reachable, while the one-leader set is reachable from
			// everywhere.
			var pb [][]warAgent
			for _, cfg := range warAll(n) {
				if warInCPB(cfg) {
					pb = append(pb, cfg)
				}
			}
			spPB, err := modelcheck.Explore(n, warStep, warEnc, pb, 1<<22)
			if err != nil {
				t.Fatal(err)
			}
			if bad := spPB.CheckInvariant(func(cfg []warAgent) bool {
				return warLeaders(cfg) >= 1
			}); bad != -1 {
				t.Fatalf("C_PB execution lost its last leader: %+v", spPB.Config(bad))
			}
			if stuck := spPB.CheckEventuallyReaches(oneLeaderPB); stuck != -1 {
				t.Fatalf("configuration cannot reach one leader: %+v", spPB.Config(stuck))
			}
		})
	}
}

// ---- the [5]-style baseline ----

func angluinStep(p *angluin.Protocol) modelcheck.Stepper[angluin.State] {
	return func(cfg []angluin.State, arc int) []angluin.State {
		n := len(cfg)
		next := make([]angluin.State, n)
		copy(next, cfg)
		l, r := p.Step(next[arc], next[(arc+1)%n])
		next[arc], next[(arc+1)%n] = l, r
		return next
	}
}

func angluinEnc(cfg []angluin.State) string {
	out := make([]byte, len(cfg))
	for i, a := range cfg {
		b := a.C & 3
		if a.Leader {
			b |= 4
		}
		if a.Repair {
			b |= 8
		}
		b |= byte(a.War.Bullet) << 4
		if a.War.Shield {
			b |= 64
		}
		if a.War.Signal {
			b |= 128
		}
		out[i] = b
	}
	return string(out)
}

// TestAngluinExhaustive proves full self-stabilization of the [5]-style
// baseline at n=3, k=2 over its entire configuration space: the stable set
// is closed and reachable from every configuration, so under the random
// scheduler the protocol converges with probability 1 from anywhere.
func TestAngluinExhaustive(t *testing.T) {
	if testing.Short() {
		t.Skip("exhaustive space ~900k configurations")
	}
	p := angluin.New(2)
	n := 3
	domain := make([]angluin.State, 0, 96)
	for c := 0; c < 2; c++ {
		for _, leader := range []bool{false, true} {
			for _, repair := range []bool{false, true} {
				for b := war.None; b <= war.Live; b++ {
					for _, shield := range []bool{false, true} {
						for _, signal := range []bool{false, true} {
							domain = append(domain, angluin.State{
								C: uint8(c), Leader: leader, Repair: repair,
								War: war.State{Bullet: b, Shield: shield, Signal: signal},
							})
						}
					}
				}
			}
		}
	}
	sp, err := modelcheck.Explore(n, angluinStep(p), angluinEnc, enumerate(domain, n), 1<<21)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("n=%d: %d configurations", n, sp.Size())
	if from, arc := sp.CheckClosed(p.Stable); from != -1 {
		t.Fatalf("stable set not closed: %+v arc %d", sp.Config(from), arc)
	}
	if stuck := sp.CheckEventuallyReaches(p.Stable); stuck != -1 {
		t.Fatalf("configuration cannot stabilize: %+v", sp.Config(stuck))
	}
}

// ---- the [15]-style oracle baseline ----

func fjStep(p *fj.Protocol) modelcheck.Stepper[fj.State] {
	return func(cfg []fj.State, arc int) []fj.State {
		n := len(cfg)
		env := fj.Oracle{NoLeader: true, NoBullet: true}
		for _, s := range cfg {
			if s.Leader {
				env.NoLeader = false
			}
			if s.Bullet != war.None {
				env.NoBullet = false
			}
		}
		next := make([]fj.State, n)
		copy(next, cfg)
		l, r := p.Step(next[arc], next[(arc+1)%n], env)
		next[arc], next[(arc+1)%n] = l, r
		return next
	}
}

func fjEnc(cfg []fj.State) string {
	out := make([]byte, len(cfg))
	for i, a := range cfg {
		b := byte(a.Bullet)
		if a.Leader {
			b |= 4
		}
		if a.Waiting {
			b |= 8
		}
		if a.Shield {
			b |= 16
		}
		out[i] = b
	}
	return string(out)
}

// TestFJExhaustive proves full self-stabilization of the [15]-style
// baseline (oracle included, computed exactly from each configuration) at
// n=3,4 over its entire configuration space.
func TestFJExhaustive(t *testing.T) {
	p := fj.New()
	domain := make([]fj.State, 0, 24)
	for _, leader := range []bool{false, true} {
		for _, waiting := range []bool{false, true} {
			for _, shield := range []bool{false, true} {
				for b := war.None; b <= war.Live; b++ {
					domain = append(domain, fj.State{
						Leader: leader, Waiting: waiting, Shield: shield, Bullet: b,
					})
				}
			}
		}
	}
	for _, n := range []int{3, 4} {
		t.Run(fmt.Sprintf("n=%d", n), func(t *testing.T) {
			sp, err := modelcheck.Explore(n, fjStep(p), fjEnc, enumerate(domain, n), 1<<22)
			if err != nil {
				t.Fatal(err)
			}
			t.Logf("n=%d: %d configurations", n, sp.Size())
			if from, arc := sp.CheckClosed(fj.Stable); from != -1 {
				t.Fatalf("stable set not closed: %+v arc %d", sp.Config(from), arc)
			}
			if stuck := sp.CheckEventuallyReaches(fj.Stable); stuck != -1 {
				t.Fatalf("configuration cannot stabilize: %+v", sp.Config(stuck))
			}
		})
	}
}

// ---- the [11]-style baseline ----

func ccStep(p *chenchen.Protocol) modelcheck.Stepper[chenchen.State] {
	return func(cfg []chenchen.State, arc int) []chenchen.State {
		n := len(cfg)
		var env chenchen.Census
		for _, s := range cfg {
			if s.Anchor {
				env.Anchors++
			}
			if s.Walker {
				env.Walkers++
			}
			if s.Retract {
				env.Retractors++
			}
		}
		next := make([]chenchen.State, n)
		copy(next, cfg)
		l, r := p.Step(next[arc], next[(arc+1)%n], env)
		next[arc], next[(arc+1)%n] = l, r
		return next
	}
}

func ccEnc(cfg []chenchen.State) string {
	out := make([]byte, len(cfg))
	for i, a := range cfg {
		b := byte(a.War.Bullet)
		if a.Leader {
			b |= 4
		}
		if a.Anchor {
			b |= 8
		}
		if a.Walker {
			b |= 16
		}
		if a.Retract {
			b |= 32
		}
		if a.War.Shield {
			b |= 64
		}
		if a.War.Signal {
			b |= 128
		}
		out[i] = b
	}
	return string(out)
}

// TestChenChenExhaustive verifies the [11]-style reconstruction at n=3
// from every configuration with arbitrary walker flags and leader bits
// (war fields quiescent, the documented claim; the reachable space then
// includes every war state the protocol itself can produce): the stable
// set is closed and reachable from everywhere.
func TestChenChenExhaustive(t *testing.T) {
	p := chenchen.New()
	n := 3
	domain := make([]chenchen.State, 0, 32)
	for _, leader := range []bool{false, true} {
		for _, anchor := range []bool{false, true} {
			for _, walker := range []bool{false, true} {
				for _, retract := range []bool{false, true} {
					domain = append(domain, chenchen.State{
						Leader: leader, Anchor: anchor, Walker: walker, Retract: retract,
					})
				}
			}
		}
	}
	sp, err := modelcheck.Explore(n, ccStep(p), ccEnc, enumerate(domain, n), 1<<22)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("n=%d: %d reachable configurations", n, sp.Size())
	if from, arc := sp.CheckClosed(chenchen.Stable); from != -1 {
		t.Fatalf("stable set not closed: %+v arc %d", sp.Config(from), arc)
	}
	if stuck := sp.CheckEventuallyReaches(chenchen.Stable); stuck != -1 {
		t.Fatalf("configuration cannot stabilize: %+v", sp.Config(stuck))
	}
}

// ---- the orientation protocol (Algorithm 6) ----

// TestOrientExhaustive verifies Theorem 5.2's safety on undirected rings
// of n=4,5 with converged neighbor memories: from every (dir, strong)
// assignment — including dirs naming no neighbor — the oriented set is
// reachable, and it is closed (outputs never change afterwards).
func TestOrientExhaustive(t *testing.T) {
	p := orient.New()
	for _, n := range []int{4, 5} {
		t.Run(fmt.Sprintf("n=%d", n), func(t *testing.T) {
			colors := twohop.Coloring(n)
			maxColor := uint8(0)
			for _, c := range colors {
				if c > maxColor {
					maxColor = c
				}
			}
			// Variable part per agent: dir (colors plus one garbage value)
			// and strong; color and memory fixed correct.
			type varPart struct {
				dir    uint8
				strong bool
			}
			var varDomain []varPart
			for d := uint8(0); d <= maxColor+1; d++ {
				varDomain = append(varDomain, varPart{d, false}, varPart{d, true})
			}
			build := func(vp []varPart) []orient.State {
				cfg := make([]orient.State, n)
				for i := range cfg {
					cfg[i] = orient.State{
						Color:  colors[i],
						Dir:    vp[i].dir,
						M1:     colors[(i+1)%n],
						M2:     colors[(i-1+n)%n],
						Strong: vp[i].strong,
					}
				}
				return cfg
			}
			var initial [][]orient.State
			for _, vp := range enumerate(varDomain, n) {
				initial = append(initial, build(vp))
			}
			// Undirected ring: arcs (i, i+1) and (i+1, i).
			step := func(cfg []orient.State, arc int) []orient.State {
				next := make([]orient.State, n)
				copy(next, cfg)
				i := arc / 2
				j := (i + 1) % n
				if arc%2 == 0 {
					next[i], next[j] = p.Step(next[i], next[j])
				} else {
					next[j], next[i] = p.Step(next[j], next[i])
				}
				return next
			}
			enc := func(cfg []orient.State) string {
				out := make([]byte, len(cfg))
				for i, s := range cfg {
					b := s.Dir & 7
					if s.Strong {
						b |= 8
					}
					// M1/M2 can churn transiently; they are functions of the
					// fixed coloring once converged, and we start converged,
					// but observe() may swap them — include in the key.
					b |= (s.M1 & 3) << 4
					b |= (s.M2 & 3) << 6
					out[i] = b
				}
				return string(out)
			}
			sp, err := modelcheck.Explore(2*n, step, enc, initial, 1<<22)
			if err != nil {
				t.Fatal(err)
			}
			t.Logf("n=%d: %d reachable configurations", n, sp.Size())
			if from, arc := sp.CheckClosed(orient.Oriented); from != -1 {
				t.Fatalf("oriented set not closed: %+v arc %d", sp.Config(from), arc)
			}
			if stuck := sp.CheckEventuallyReaches(orient.Oriented); stuck != -1 {
				t.Fatalf("configuration cannot orient: %+v", sp.Config(stuck))
			}
		})
	}
}
