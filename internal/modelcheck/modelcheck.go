// Package modelcheck exhaustively verifies population protocols on tiny
// rings by enumerating their configuration space. For the O(1)-state
// modules (the elimination war, the baselines, the orientation protocol)
// the space at n = 3..4 is small enough to check the paper's safety
// lemmas outright rather than statistically:
//
//   - an invariant holds in every reachable configuration;
//   - a set is closed (no interaction leaves it) — the paper's closure
//     lemmas (4.1, 4.7-style);
//   - a target set is reachable from every configuration — combined with
//     closure this implies almost-sure absorption under the uniformly
//     random scheduler, i.e. self-stabilization on the checked instance.
//
// The checker works at configuration granularity (a step maps a
// configuration and an arc to a successor configuration), so protocols
// with oracle inputs computed from global state (the [15]- and [11]-style
// baselines) are checked exactly, oracle included.
package modelcheck

import (
	"errors"
	"fmt"
)

// Stepper applies the interaction on arc k of the topology to cfg and
// returns the successor configuration (it must not modify cfg).
type Stepper[S any] func(cfg []S, arc int) []S

// Encoder renders a configuration as a compact unique key.
type Encoder[S any] func(cfg []S) string

// ErrSpaceExceeded reports that exploration hit the configured limit.
var ErrSpaceExceeded = errors.New("modelcheck: configuration space limit exceeded")

// Space is an explored configuration graph: every configuration reachable
// from the initial set, with one successor per (configuration, arc).
type Space[S any] struct {
	numArcs int
	configs [][]S
	index   map[string]int
	// succ[i*numArcs+a] is the index of the successor of configuration i
	// under arc a.
	succ []int32
}

// Explore runs a breadth-first enumeration from the initial
// configurations. numArcs is the topology's arc count; maxConfigs bounds
// the explored space.
func Explore[S any](numArcs int, step Stepper[S], enc Encoder[S], initial [][]S, maxConfigs int) (*Space[S], error) {
	if numArcs < 1 {
		return nil, fmt.Errorf("modelcheck: numArcs = %d", numArcs)
	}
	sp := &Space[S]{
		numArcs: numArcs,
		index:   make(map[string]int, len(initial)*4),
	}
	add := func(cfg []S) (int, bool, error) {
		key := enc(cfg)
		if id, ok := sp.index[key]; ok {
			return id, false, nil
		}
		if len(sp.configs) >= maxConfigs {
			return 0, false, ErrSpaceExceeded
		}
		id := len(sp.configs)
		sp.index[key] = id
		own := make([]S, len(cfg))
		copy(own, cfg)
		sp.configs = append(sp.configs, own)
		return id, true, nil
	}
	queue := make([]int, 0, len(initial))
	for _, cfg := range initial {
		id, fresh, err := add(cfg)
		if err != nil {
			return nil, err
		}
		if fresh {
			queue = append(queue, id)
		}
	}
	// Every fresh configuration receives the next dense id and is queued
	// exactly once, so processing ids in queue order appends the successor
	// of (id, arc) at exactly index id*numArcs+arc.
	for head := 0; head < len(queue); head++ {
		id := queue[head]
		for a := 0; a < numArcs; a++ {
			next := step(sp.configs[id], a)
			nid, fresh, err := add(next)
			if err != nil {
				return nil, err
			}
			sp.succ = append(sp.succ, int32(nid))
			if fresh {
				queue = append(queue, nid)
			}
		}
	}
	return sp, nil
}

// Size returns the number of reachable configurations.
func (sp *Space[S]) Size() int { return len(sp.configs) }

// Config returns configuration i (shared storage; treat as read-only).
func (sp *Space[S]) Config(i int) []S { return sp.configs[i] }

// CheckInvariant returns the index of a reachable configuration violating
// pred, or -1 if the invariant holds everywhere.
func (sp *Space[S]) CheckInvariant(pred func([]S) bool) int {
	for i, cfg := range sp.configs {
		if !pred(cfg) {
			return i
		}
	}
	return -1
}

// CheckClosed verifies that no interaction leaves the set: for every
// reachable configuration in the set, all successors are in the set. It
// returns a violating (from, arc) pair, or (-1, -1).
func (sp *Space[S]) CheckClosed(set func([]S) bool) (from, arc int) {
	for i, cfg := range sp.configs {
		if !set(cfg) {
			continue
		}
		for a := 0; a < sp.numArcs; a++ {
			if !set(sp.configs[sp.succ[i*sp.numArcs+a]]) {
				return i, a
			}
		}
	}
	return -1, -1
}

// CheckEventuallyReaches verifies that from every reachable configuration
// some configuration in target is reachable. Together with CheckClosed on
// the target this implies almost-sure absorption under the uniformly
// random scheduler. It returns the index of a configuration that cannot
// reach the target, or -1.
func (sp *Space[S]) CheckEventuallyReaches(target func([]S) bool) int {
	n := len(sp.configs)
	// Build reverse adjacency.
	preds := make([][]int32, n)
	for i := 0; i < n; i++ {
		for a := 0; a < sp.numArcs; a++ {
			j := sp.succ[i*sp.numArcs+a]
			if int(j) != i {
				preds[j] = append(preds[j], int32(i))
			}
		}
	}
	canReach := make([]bool, n)
	var queue []int32
	for i, cfg := range sp.configs {
		if target(cfg) {
			canReach[i] = true
			queue = append(queue, int32(i))
		}
	}
	for head := 0; head < len(queue); head++ {
		for _, p := range preds[queue[head]] {
			if !canReach[p] {
				canReach[p] = true
				queue = append(queue, p)
			}
		}
	}
	for i := range canReach {
		if !canReach[i] {
			return i
		}
	}
	return -1
}

// Count returns how many reachable configurations satisfy pred.
func (sp *Space[S]) Count(pred func([]S) bool) int {
	count := 0
	for _, cfg := range sp.configs {
		if pred(cfg) {
			count++
		}
	}
	return count
}
