package chaos

import (
	"context"
	"errors"
	"fmt"
	"time"

	"repro/internal/xrand"
)

// Policy is the platform's single retry/backoff discipline: capped
// exponential backoff with full jitter (delay drawn uniformly from
// [0, min(Cap, Base·2^attempt)]), a server-sent Retry-After honored as
// a floor, and context deadlines respected — a retry whose backoff
// cannot complete before the deadline fails fast with the last error
// instead of sleeping into a guaranteed cancellation.
//
// Every worker→coordinator call (lease / renew / complete) and client
// path retries through a Policy; ad-hoc retry loops are a bug. The
// jitter stream is seeded xrand, so a policy's sleep schedule — like
// every other fault-adjacent decision in this package — replays
// deterministically from its seed.
type Policy struct {
	// MaxAttempts bounds total tries (first call included); 0 selects 5.
	MaxAttempts int
	// Base is the first backoff bound; 0 selects 50ms.
	Base time.Duration
	// Cap bounds every backoff; 0 selects 2s.
	Cap time.Duration
	// Seed seeds the jitter stream.
	Seed uint64
	// Sleep substitutes the backoff sleeper in tests; it must return
	// false when ctx is done before d elapses. nil selects a timer.
	Sleep func(ctx context.Context, d time.Duration) bool
}

func (p Policy) fill() Policy {
	if p.MaxAttempts <= 0 {
		p.MaxAttempts = 5
	}
	if p.Base <= 0 {
		p.Base = 50 * time.Millisecond
	}
	if p.Cap <= 0 {
		p.Cap = 2 * time.Second
	}
	if p.Sleep == nil {
		p.Sleep = sleepCtx
	}
	return p
}

// Do calls op until it returns nil, a Permanent error, the attempt
// budget runs out, or the context dies. The returned error is op's last
// (or the unwrapped permanent error), never a synthetic "retries
// exhausted" that hides the cause.
func (p Policy) Do(ctx context.Context, op func(attempt int) error) error {
	p = p.fill()
	rng := xrand.New(p.Seed)
	var last error
	for attempt := 0; attempt < p.MaxAttempts; attempt++ {
		if err := ctx.Err(); err != nil {
			if last != nil {
				return last
			}
			return err
		}
		err := op(attempt)
		if err == nil {
			return nil
		}
		var pe *permanentError
		if errors.As(err, &pe) {
			return pe.err
		}
		last = err
		if attempt == p.MaxAttempts-1 {
			break
		}
		delay := p.backoff(rng, attempt)
		if after, ok := RetryAfterHint(err); ok && after > delay {
			delay = after
		}
		if dl, ok := ctx.Deadline(); ok && time.Until(dl) < delay {
			return fmt.Errorf("%w (context deadline inside backoff)", last)
		}
		if !p.Sleep(ctx, delay) {
			return last
		}
	}
	return last
}

// backoff draws the full-jitter delay for one attempt.
func (p Policy) backoff(rng *xrand.RNG, attempt int) time.Duration {
	bound := p.Base
	for i := 0; i < attempt && bound < p.Cap; i++ {
		bound *= 2
	}
	if bound > p.Cap {
		bound = p.Cap
	}
	return time.Duration(rng.Intn(int(bound) + 1))
}

// sleepCtx waits d, reporting false when ctx dies first.
func sleepCtx(ctx context.Context, d time.Duration) bool {
	if d <= 0 {
		return ctx.Err() == nil
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return false
	case <-t.C:
		return true
	}
}

// permanentError marks an error that must not be retried.
type permanentError struct{ err error }

func (e *permanentError) Error() string { return e.err.Error() }
func (e *permanentError) Unwrap() error { return e.err }

// Permanent wraps err so Policy.Do stops immediately and returns the
// original error — for terminal protocol answers (a 409 determinism
// conflict, a 404) where retrying is semantically wrong.
func Permanent(err error) error {
	if err == nil {
		return nil
	}
	return &permanentError{err: err}
}

// retryAfterError carries a server-sent Retry-After floor.
type retryAfterError struct {
	err   error
	after time.Duration
}

func (e *retryAfterError) Error() string { return e.err.Error() }
func (e *retryAfterError) Unwrap() error { return e.err }

// WithRetryAfter attaches a server-sent Retry-After hint to a retryable
// error; Policy.Do uses it as a floor for the next backoff.
func WithRetryAfter(err error, after time.Duration) error {
	if err == nil || after <= 0 {
		return err
	}
	return &retryAfterError{err: err, after: after}
}

// RetryAfterHint extracts the Retry-After floor from an error chain.
func RetryAfterHint(err error) (time.Duration, bool) {
	var re *retryAfterError
	if errors.As(err, &re) {
		return re.after, true
	}
	return 0, false
}
