package chaos

import (
	"bytes"
	"fmt"
	"io"
	"net/http"
	"strings"
)

// Transport wraps an http.RoundTripper with the injector's transport
// fault plan. inner nil selects http.DefaultTransport. The returned
// transport is safe for concurrent use (decisions serialize on the
// injector's stream).
func (in *Injector) Transport(inner http.RoundTripper) http.RoundTripper {
	if inner == nil {
		inner = http.DefaultTransport
	}
	return &faultyTransport{in: in, inner: inner}
}

// Client returns an *http.Client whose transport injects the fault
// plan, mirroring base's other fields (nil base: defaults).
func (in *Injector) Client(base *http.Client) *http.Client {
	c := &http.Client{}
	if base != nil {
		*c = *base
	}
	c.Transport = in.Transport(c.Transport)
	return c
}

type faultyTransport struct {
	in    *Injector
	inner http.RoundTripper
}

func (t *faultyTransport) RoundTrip(req *http.Request) (*http.Response, error) {
	f := t.in.NextTransportFault()
	if f.Latency > 0 {
		t.in.cfg.Sleep(f.Latency)
	}
	if f.Drop {
		return nil, fmt.Errorf("chaos: connection dropped before send (%s %s)", req.Method, req.URL.Path)
	}
	if f.DropAfter {
		// The request reaches the peer — its side effects happen — but
		// the caller sees a failure. This is the fault that separates
		// idempotent protocols from broken ones.
		resp, err := t.inner.RoundTrip(req)
		if err == nil {
			io.Copy(io.Discard, io.LimitReader(resp.Body, 1<<20))
			resp.Body.Close()
		}
		return nil, fmt.Errorf("chaos: connection dropped awaiting response (%s %s)", req.Method, req.URL.Path)
	}
	if f.Status != 0 {
		if req.Body != nil {
			req.Body.Close()
		}
		resp := &http.Response{
			StatusCode: f.Status,
			Status:     fmt.Sprintf("%d %s", f.Status, http.StatusText(f.Status)),
			Proto:      "HTTP/1.1", ProtoMajor: 1, ProtoMinor: 1,
			Header:  http.Header{},
			Body:    io.NopCloser(strings.NewReader("chaos: injected error\n")),
			Request: req,
		}
		if f.Status == http.StatusTooManyRequests || f.Status == http.StatusServiceUnavailable {
			resp.Header.Set("Retry-After", "0")
		}
		return resp, nil
	}
	resp, err := t.inner.RoundTrip(req)
	if err != nil || !f.Truncate {
		return resp, err
	}
	// Truncate: hand back a prefix of the real body, then an unexpected
	// EOF — what a connection reset mid-body looks like to a reader.
	data, rerr := io.ReadAll(io.LimitReader(resp.Body, 16<<20))
	resp.Body.Close()
	if rerr != nil {
		return nil, rerr
	}
	cut := len(data) / 2
	resp.Body = io.NopCloser(&truncatedBody{r: bytes.NewReader(data[:cut])})
	resp.ContentLength = -1
	resp.Header.Del("Content-Length")
	return resp, nil
}

// truncatedBody yields its prefix, then fails with io.ErrUnexpectedEOF
// instead of a clean EOF.
type truncatedBody struct {
	r io.Reader
}

func (b *truncatedBody) Read(p []byte) (int, error) {
	n, err := b.r.Read(p)
	if err == io.EOF {
		err = io.ErrUnexpectedEOF
	}
	return n, err
}
