package chaos

import (
	"fmt"
	"io"
	iofs "io/fs"
	"os"
	"path/filepath"
	"syscall"
)

// FS is the filesystem seam the durable layers (fabric checkpoint,
// service cache spill) write through: the handful of operations they
// need, with an OS-backed default and a fault-injecting wrapper. The
// interface is deliberately write-shaped — WriteFileAtomic is the only
// way to materialize a file, so every durable artifact gets the
// temp+fsync+rename discipline (and every injected torn write models a
// storage stack that broke that promise).
type FS interface {
	MkdirAll(path string) error
	ReadFile(path string) ([]byte, error)
	// WriteFileAtomic writes data via temp file + fsync + rename, so a
	// crash mid-write can never leave a torn file under the final name.
	WriteFileAtomic(path string, data []byte) error
	// AppendFile opens path for appending, creating it if needed.
	AppendFile(path string) (AppendWriter, error)
	Open(path string) (io.ReadCloser, error)
	Stat(path string) (iofs.FileInfo, error)
	Rename(oldPath, newPath string) error
	Remove(path string) error
}

// AppendWriter is an append-mode file handle: write, make durable,
// close.
type AppendWriter interface {
	io.Writer
	Sync() error
	Close() error
}

// OS returns the real, fault-free filesystem.
func OS() FS { return osFS{} }

type osFS struct{}

func (osFS) MkdirAll(path string) error           { return os.MkdirAll(path, 0o755) }
func (osFS) ReadFile(path string) ([]byte, error) { return os.ReadFile(path) }
func (osFS) Open(path string) (io.ReadCloser, error) {
	return os.Open(path)
}
func (osFS) Stat(path string) (iofs.FileInfo, error) { return os.Stat(path) }
func (osFS) Rename(oldPath, newPath string) error    { return os.Rename(oldPath, newPath) }
func (osFS) Remove(path string) error                { return os.Remove(path) }

func (osFS) WriteFileAtomic(path string, data []byte) error {
	tmp, err := os.CreateTemp(filepath.Dir(path), "."+filepath.Base(path)+".tmp-*")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name())
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	return os.Rename(tmp.Name(), path)
}

func (osFS) AppendFile(path string) (AppendWriter, error) {
	return os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
}

// FS wraps a real filesystem with the injector's write fault plan.
// Reads pass through untouched — corruption is injected at write time
// and discovered at read time, like the real thing. real nil selects
// OS().
func (in *Injector) FS(real FS) FS {
	if real == nil {
		real = OS()
	}
	return &faultyFS{in: in, real: real}
}

type faultyFS struct {
	in   *Injector
	real FS
}

func (f *faultyFS) MkdirAll(path string) error              { return f.real.MkdirAll(path) }
func (f *faultyFS) ReadFile(path string) ([]byte, error)    { return f.real.ReadFile(path) }
func (f *faultyFS) Open(path string) (io.ReadCloser, error) { return f.real.Open(path) }
func (f *faultyFS) Stat(path string) (iofs.FileInfo, error) { return f.real.Stat(path) }
func (f *faultyFS) Rename(o, n string) error                { return f.real.Rename(o, n) }
func (f *faultyFS) Remove(path string) error                { return f.real.Remove(path) }

func (f *faultyFS) WriteFileAtomic(path string, data []byte) error {
	switch fault := f.in.nextAtomicWriteFault(); {
	case fault.ENOSPC:
		return fmt.Errorf("chaos: %s: %w", path, syscall.ENOSPC)
	case fault.Torn:
		// The dangerous fault: persist a prefix under the final name and
		// report success. Only a content digest at re-read can tell.
		return f.real.WriteFileAtomic(path, data[:len(data)/2])
	default:
		return f.real.WriteFileAtomic(path, data)
	}
}

func (f *faultyFS) AppendFile(path string) (AppendWriter, error) {
	w, err := f.real.AppendFile(path)
	if err != nil {
		return nil, err
	}
	return &faultyAppend{in: f.in, w: w, path: path}, nil
}

type faultyAppend struct {
	in   *Injector
	w    AppendWriter
	path string
}

func (a *faultyAppend) Write(p []byte) (int, error) {
	switch fault := a.in.nextAppendFault(); {
	case fault.ENOSPC:
		return 0, fmt.Errorf("chaos: %s: %w", a.path, syscall.ENOSPC)
	case fault.Torn:
		// A short write: half the bytes land, then the error. The torn
		// tail is the caller's journal-recovery problem — by design.
		n, err := a.w.Write(p[:len(p)/2])
		if err != nil {
			return n, err
		}
		return n, fmt.Errorf("chaos: %s: short write (%d of %d bytes)", a.path, n, len(p))
	default:
		return a.w.Write(p)
	}
}

func (a *faultyAppend) Sync() error {
	if a.in.nextSyncFault() {
		return fmt.Errorf("chaos: %s: fsync failed", a.path)
	}
	return a.w.Sync()
}

func (a *faultyAppend) Close() error { return a.w.Close() }
