// Package chaos is the deterministic fault-injection layer of the
// platform's own infrastructure — the same discipline the simulated
// protocols get from Scenario fault bursts, applied to the process, IO
// and network boundaries the serving and fabric tiers cross.
//
// One seeded Injector drives every fault decision from a single xrand
// stream (SplitMix64), so a fault schedule is a pure function of (seed,
// decision sequence): rerunning the same component against the same
// injector configuration replays its faults bit-identically, which is
// what lets CI assert that a sweep executed under drops, latency
// spikes, injected 5xx, torn writes and a crashed worker still merges
// byte-identical to the serial run.
//
// Three boundaries are wrapped:
//
//   - Transport (http.RoundTripper): dropped connections (before or
//     after the request is sent — the latter exercises idempotency),
//     latency spikes, synthetic 5xx/429 with Retry-After, truncated
//     response bodies.
//   - FS (filesystem shim): torn atomic writes that lie about success
//     (a firmware-grade fault — the corruption surfaces only on
//     re-read), ENOSPC, short appends, fsync failure.
//   - Crash points: CrashPoint(label) marks the spots where a process
//     may die; the configured (label, hit-count) pair invokes the crash
//     function — os.Exit for real processes, a context cancel in tests.
//
// The package also owns the platform's one retry policy (Policy, in
// retry.go): capped exponential backoff with full jitter, Retry-After
// honored, context-deadline aware. Every worker→coordinator call and
// client path retries through it, never through ad-hoc loops.
package chaos

import (
	"fmt"
	"os"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/xrand"
)

// Config declares a fault plan. Probabilities are per-decision in
// [0,1]; the zero Config injects nothing (every wrapper becomes a
// transparent pass-through).
type Config struct {
	// Seed seeds the decision stream. Equal seeds + equal decision
	// sequences ⇒ equal fault schedules.
	Seed uint64

	// Transport faults, rolled once per round trip.
	Drop      float64 // fail before the request is sent
	DropAfter float64 // send the request, then report failure (tests idempotency)
	Latency   float64 // sleep a random spike in (0, MaxLatency] before forwarding
	HTTPError float64 // answer a synthetic 5xx/429 (with Retry-After) instead of forwarding
	Truncate  float64 // forward, then cut the response body short (missing bytes, unexpected EOF)

	// MaxLatency bounds injected latency spikes; 0 selects 50ms.
	MaxLatency time.Duration

	// Filesystem faults, rolled per operation.
	TornWrite   float64 // atomic write reports success but persists a torn prefix
	TornWriteAt int     // deterministically tear the Nth atomic write (1-based; 0 disables)
	ENOSPC      float64 // writes fail with ENOSPC before touching the file
	FsyncFail   float64 // Sync returns an error (the bytes may or may not be durable)

	// Crash plan: the CrashAt-th CrashPoint(CrashLabel) hit invokes
	// Crash. CrashAt 0 disables; Crash nil selects os.Exit(137), the
	// SIGKILL-shaped exit a supervisor restarts.
	CrashLabel string
	CrashAt    int
	Crash      func(label string)

	// Sleep substitutes the latency-spike sleeper in tests; nil selects
	// time.Sleep.
	Sleep func(d time.Duration)
}

// Counters snapshots how many faults of each kind actually fired —
// the assertion surface for soak tests ("the schedule was not empty").
type Counters struct {
	Drops       uint64 `json:"drops"`
	DropsAfter  uint64 `json:"drops_after"`
	Latencies   uint64 `json:"latencies"`
	HTTPErrors  uint64 `json:"http_errors"`
	Truncations uint64 `json:"truncations"`
	TornWrites  uint64 `json:"torn_writes"`
	ENOSPCs     uint64 `json:"enospcs"`
	FsyncFails  uint64 `json:"fsync_fails"`
	Crashes     uint64 `json:"crashes"`
}

// Injector rolls every fault decision for one component from one seeded
// stream. All methods are safe for concurrent use; concurrent callers
// serialize on the stream, so per-goroutine determinism requires one
// injector per independently-replayed component (one per worker, say) —
// exactly how the fabric wires it.
type Injector struct {
	mu       sync.Mutex
	cfg      Config
	rng      *xrand.RNG
	writes   int // atomic-write op counter (for TornWriteAt)
	crashes  map[string]int
	counters Counters
}

// NewInjector builds an injector for the given plan.
func NewInjector(cfg Config) *Injector {
	if cfg.MaxLatency <= 0 {
		cfg.MaxLatency = 50 * time.Millisecond
	}
	if cfg.Crash == nil {
		cfg.Crash = func(label string) {
			fmt.Fprintf(os.Stderr, "chaos: crash point %q reached — exiting\n", label)
			os.Exit(137)
		}
	}
	if cfg.Sleep == nil {
		cfg.Sleep = time.Sleep
	}
	return &Injector{cfg: cfg, rng: xrand.New(cfg.Seed), crashes: make(map[string]int)}
}

// Counters snapshots the fault tallies.
func (in *Injector) Counters() Counters {
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.counters
}

// TransportFault is one round trip's rolled fault plan.
type TransportFault struct {
	// Latency, when positive, is slept before anything else happens.
	Latency time.Duration
	// Drop fails the round trip before the request is sent; DropAfter
	// sends it first and then reports failure.
	Drop, DropAfter bool
	// Status, when non-zero, short-circuits the round trip with a
	// synthetic response of that code.
	Status int
	// Truncate cuts the (real) response body short.
	Truncate bool
}

// injectedStatuses is the synthetic-error rotation: the retryable
// failure modes an overloaded or restarting peer actually produces.
var injectedStatuses = []int{
	500, // internal error
	502, // bad gateway
	503, // shutting down / overloaded
	429, // shed load, Retry-After
}

// NextTransportFault rolls the fault plan for one round trip. Exposed
// so tests can replay and compare schedules without an HTTP stack.
func (in *Injector) NextTransportFault() TransportFault {
	in.mu.Lock()
	defer in.mu.Unlock()
	var f TransportFault
	// Fixed draw order per decision keeps the (seed, call index) → fault
	// map stable whatever the configuration selects.
	if in.rng.Float64() < in.cfg.Latency {
		f.Latency = time.Duration(1 + in.rng.Intn(int(in.cfg.MaxLatency)))
		in.counters.Latencies++
	}
	if in.rng.Float64() < in.cfg.Drop {
		f.Drop = true
		in.counters.Drops++
		return f
	}
	if in.rng.Float64() < in.cfg.DropAfter {
		f.DropAfter = true
		in.counters.DropsAfter++
		return f
	}
	if in.rng.Float64() < in.cfg.HTTPError {
		f.Status = injectedStatuses[in.rng.Intn(len(injectedStatuses))]
		in.counters.HTTPErrors++
		return f
	}
	if in.rng.Float64() < in.cfg.Truncate {
		f.Truncate = true
		in.counters.Truncations++
	}
	return f
}

// WriteFault is one filesystem write's rolled fault plan.
type WriteFault struct {
	// Torn persists only a prefix of the data. For atomic writes the
	// operation still reports success — the lying-firmware fault whose
	// corruption only a later digest check can see. For appends the
	// short write surfaces as an error (the caller retries).
	Torn bool
	// ENOSPC fails the operation with syscall.ENOSPC before writing.
	ENOSPC bool
}

// nextAtomicWriteFault rolls the plan for one atomic file write.
func (in *Injector) nextAtomicWriteFault() WriteFault {
	in.mu.Lock()
	defer in.mu.Unlock()
	in.writes++
	var f WriteFault
	if in.cfg.TornWriteAt > 0 && in.writes == in.cfg.TornWriteAt {
		f.Torn = true
		in.counters.TornWrites++
		return f
	}
	if in.rng.Float64() < in.cfg.ENOSPC {
		f.ENOSPC = true
		in.counters.ENOSPCs++
		return f
	}
	if in.rng.Float64() < in.cfg.TornWrite {
		f.Torn = true
		in.counters.TornWrites++
	}
	return f
}

// nextAppendFault rolls the plan for one journal append.
func (in *Injector) nextAppendFault() WriteFault {
	in.mu.Lock()
	defer in.mu.Unlock()
	var f WriteFault
	if in.rng.Float64() < in.cfg.ENOSPC {
		f.ENOSPC = true
		in.counters.ENOSPCs++
		return f
	}
	if in.rng.Float64() < in.cfg.TornWrite {
		f.Torn = true
		in.counters.TornWrites++
	}
	return f
}

// nextSyncFault rolls whether one fsync fails.
func (in *Injector) nextSyncFault() bool {
	in.mu.Lock()
	defer in.mu.Unlock()
	if in.rng.Float64() < in.cfg.FsyncFail {
		in.counters.FsyncFails++
		return true
	}
	return false
}

// CrashPoint marks a spot where the process may die. When the hit count
// of the configured label reaches CrashAt, the crash function runs —
// os.Exit(137) in a real process, a context cancel in tests (simulated
// death: heartbeats stop, work is abandoned mid-flight). A nil Injector
// is a no-op, so callers hook unconditionally.
func (in *Injector) CrashPoint(label string) {
	if in == nil {
		return
	}
	in.mu.Lock()
	if in.cfg.CrashAt <= 0 || label != in.cfg.CrashLabel {
		in.mu.Unlock()
		return
	}
	in.crashes[label]++
	hit := in.crashes[label] == in.cfg.CrashAt
	if hit {
		in.counters.Crashes++
	}
	crash := in.cfg.Crash
	in.mu.Unlock()
	if hit {
		crash(label)
	}
}

// ParseFlag parses the CLI fault grammar: comma-separated k=v pairs,
//
//	seed=7,drop=0.05,dropafter=0.02,latency=0.2,maxlat=80ms,
//	httperr=0.05,trunc=0.02,torn=0.01,tornat=3,enospc=0.01,
//	fsync=0.01,crash=worker.ran@2
//
// Unknown keys are an error; an empty string is the zero Config.
func ParseFlag(s string) (Config, error) {
	var cfg Config
	if strings.TrimSpace(s) == "" {
		return cfg, nil
	}
	for _, kv := range strings.Split(s, ",") {
		k, v, ok := strings.Cut(strings.TrimSpace(kv), "=")
		if !ok {
			return cfg, fmt.Errorf("chaos: bad spec element %q (want k=v)", kv)
		}
		var err error
		switch k {
		case "seed":
			cfg.Seed, err = strconv.ParseUint(v, 0, 64)
		case "drop":
			cfg.Drop, err = parseProb(v)
		case "dropafter":
			cfg.DropAfter, err = parseProb(v)
		case "latency":
			cfg.Latency, err = parseProb(v)
		case "maxlat":
			cfg.MaxLatency, err = time.ParseDuration(v)
		case "httperr":
			cfg.HTTPError, err = parseProb(v)
		case "trunc":
			cfg.Truncate, err = parseProb(v)
		case "torn":
			cfg.TornWrite, err = parseProb(v)
		case "tornat":
			cfg.TornWriteAt, err = strconv.Atoi(v)
		case "enospc":
			cfg.ENOSPC, err = parseProb(v)
		case "fsync":
			cfg.FsyncFail, err = parseProb(v)
		case "crash":
			label, at, ok := strings.Cut(v, "@")
			if !ok {
				return cfg, fmt.Errorf("chaos: crash wants label@N, got %q", v)
			}
			cfg.CrashLabel = label
			cfg.CrashAt, err = strconv.Atoi(at)
		default:
			return cfg, fmt.Errorf("chaos: unknown spec key %q", k)
		}
		if err != nil {
			return cfg, fmt.Errorf("chaos: bad value for %s: %v", k, err)
		}
	}
	return cfg, nil
}

func parseProb(v string) (float64, error) {
	p, err := strconv.ParseFloat(v, 64)
	if err != nil {
		return 0, err
	}
	if p < 0 || p > 1 {
		return 0, fmt.Errorf("probability %v outside [0,1]", p)
	}
	return p, nil
}
