package chaos

import (
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"
)

// TestScheduleReplaysFromSeed is the package's core contract: equal
// seeds and equal decision sequences produce bit-identical fault
// schedules — transport and filesystem alike.
func TestScheduleReplaysFromSeed(t *testing.T) {
	cfg := Config{
		Seed: 0xC0FFEE, Drop: 0.1, DropAfter: 0.05, Latency: 0.2,
		HTTPError: 0.15, Truncate: 0.1, TornWrite: 0.1, ENOSPC: 0.05,
		FsyncFail: 0.1, MaxLatency: 30 * time.Millisecond,
	}
	a, b := NewInjector(cfg), NewInjector(cfg)
	for i := 0; i < 500; i++ {
		fa, fb := a.NextTransportFault(), b.NextTransportFault()
		if fa != fb {
			t.Fatalf("transport schedule diverged at %d: %+v vs %+v", i, fa, fb)
		}
	}
	for i := 0; i < 500; i++ {
		wa, wb := a.nextAtomicWriteFault(), b.nextAtomicWriteFault()
		if wa != wb {
			t.Fatalf("write schedule diverged at %d: %+v vs %+v", i, wa, wb)
		}
		if a.nextSyncFault() != b.nextSyncFault() {
			t.Fatalf("sync schedule diverged at %d", i)
		}
	}
	if a.Counters() != b.Counters() {
		t.Fatalf("counters diverged: %+v vs %+v", a.Counters(), b.Counters())
	}
	// A different seed must not replay the same schedule.
	cfg.Seed++
	c := NewInjector(cfg)
	same := 0
	a2 := NewInjector(Config{Seed: 0xC0FFEE, Drop: 0.1, DropAfter: 0.05, Latency: 0.2,
		HTTPError: 0.15, Truncate: 0.1, MaxLatency: 30 * time.Millisecond})
	for i := 0; i < 200; i++ {
		if a2.NextTransportFault() == c.NextTransportFault() {
			same++
		}
	}
	if same == 200 {
		t.Fatal("distinct seeds produced identical schedules")
	}
}

// TestZeroConfigInjectsNothing: the zero plan is a pass-through.
func TestZeroConfigInjectsNothing(t *testing.T) {
	in := NewInjector(Config{Seed: 1})
	for i := 0; i < 200; i++ {
		if f := in.NextTransportFault(); f != (TransportFault{}) {
			t.Fatalf("zero config rolled a fault: %+v", f)
		}
		if w := in.nextAtomicWriteFault(); w != (WriteFault{}) {
			t.Fatalf("zero config rolled a write fault: %+v", w)
		}
	}
	if c := in.Counters(); c != (Counters{}) {
		t.Fatalf("zero config counted faults: %+v", c)
	}
}

func TestTransportFaults(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		io.WriteString(w, strings.Repeat("x", 1024))
	}))
	defer srv.Close()

	get := func(in *Injector) (*http.Response, []byte, error) {
		t.Helper()
		resp, err := in.Client(nil).Get(srv.URL)
		if err != nil {
			return nil, nil, err
		}
		defer resp.Body.Close()
		body, rerr := io.ReadAll(resp.Body)
		return resp, body, rerr
	}

	t.Run("drop", func(t *testing.T) {
		in := NewInjector(Config{Seed: 1, Drop: 1})
		if _, _, err := get(in); err == nil || !strings.Contains(err.Error(), "dropped before send") {
			t.Fatalf("err = %v, want pre-send drop", err)
		}
	})
	t.Run("drop-after", func(t *testing.T) {
		in := NewInjector(Config{Seed: 1, DropAfter: 1})
		if _, _, err := get(in); err == nil || !strings.Contains(err.Error(), "awaiting response") {
			t.Fatalf("err = %v, want post-send drop", err)
		}
	})
	t.Run("http-error", func(t *testing.T) {
		in := NewInjector(Config{Seed: 1, HTTPError: 1})
		resp, _, err := get(in)
		if err != nil {
			t.Fatalf("get: %v", err)
		}
		if resp.StatusCode < 400 {
			t.Fatalf("status = %d, want an injected error", resp.StatusCode)
		}
	})
	t.Run("truncate", func(t *testing.T) {
		in := NewInjector(Config{Seed: 1, Truncate: 1})
		_, body, err := get(in)
		if !errors.Is(err, io.ErrUnexpectedEOF) {
			t.Fatalf("read err = %v, want unexpected EOF", err)
		}
		if len(body) == 0 || len(body) >= 1024 {
			t.Fatalf("truncated body length = %d, want a strict prefix", len(body))
		}
	})
	t.Run("latency", func(t *testing.T) {
		var slept time.Duration
		cfg := Config{Seed: 1, Latency: 1, MaxLatency: 10 * time.Millisecond,
			Sleep: func(d time.Duration) { slept += d }}
		in := NewInjector(cfg)
		if _, _, err := get(in); err != nil {
			t.Fatalf("get: %v", err)
		}
		if slept <= 0 || slept > 10*time.Millisecond {
			t.Fatalf("slept = %v, want a spike in (0, 10ms]", slept)
		}
	})
}

func TestFaultyFS(t *testing.T) {
	dir := t.TempDir()
	data := []byte("0123456789abcdef")

	t.Run("torn-atomic-write-lies", func(t *testing.T) {
		in := NewInjector(Config{Seed: 1, TornWriteAt: 1})
		fs := in.FS(nil)
		path := filepath.Join(dir, "torn.bin")
		if err := fs.WriteFileAtomic(path, data); err != nil {
			t.Fatalf("torn write must report success, got %v", err)
		}
		got, err := os.ReadFile(path)
		if err != nil {
			t.Fatalf("read back: %v", err)
		}
		if len(got) != len(data)/2 {
			t.Fatalf("torn file holds %d bytes, want %d", len(got), len(data)/2)
		}
		// Only the scheduled write is torn; the next is clean.
		if err := fs.WriteFileAtomic(path, data); err != nil {
			t.Fatalf("clean write: %v", err)
		}
		if got, _ := os.ReadFile(path); len(got) != len(data) {
			t.Fatalf("second write torn too: %d bytes", len(got))
		}
	})
	t.Run("enospc", func(t *testing.T) {
		in := NewInjector(Config{Seed: 1, ENOSPC: 1})
		err := in.FS(nil).WriteFileAtomic(filepath.Join(dir, "full.bin"), data)
		if !errors.Is(err, syscall.ENOSPC) {
			t.Fatalf("err = %v, want ENOSPC", err)
		}
	})
	t.Run("short-append-and-fsync", func(t *testing.T) {
		in := NewInjector(Config{Seed: 1, TornWrite: 1, FsyncFail: 1})
		w, err := in.FS(nil).AppendFile(filepath.Join(dir, "journal"))
		if err != nil {
			t.Fatalf("append: %v", err)
		}
		defer w.Close()
		n, err := w.Write(data)
		if err == nil || !strings.Contains(err.Error(), "short write") {
			t.Fatalf("short append err = %v", err)
		}
		if n != len(data)/2 {
			t.Fatalf("short append wrote %d, want %d", n, len(data)/2)
		}
		if err := w.Sync(); err == nil || !strings.Contains(err.Error(), "fsync failed") {
			t.Fatalf("sync err = %v", err)
		}
	})
}

func TestCrashPoint(t *testing.T) {
	var crashed []string
	in := NewInjector(Config{
		CrashLabel: "worker.ran", CrashAt: 2,
		Crash: func(label string) { crashed = append(crashed, label) },
	})
	in.CrashPoint("worker.leased") // wrong label: ignored
	in.CrashPoint("worker.ran")    // hit 1 of 2
	if len(crashed) != 0 {
		t.Fatalf("crashed early: %v", crashed)
	}
	in.CrashPoint("worker.ran") // hit 2 of 2 → crash
	if len(crashed) != 1 || crashed[0] != "worker.ran" {
		t.Fatalf("crashes = %v, want one at worker.ran", crashed)
	}
	in.CrashPoint("worker.ran") // past the target: no re-crash
	if len(crashed) != 1 {
		t.Fatalf("crashed again: %v", crashed)
	}
	if c := in.Counters(); c.Crashes != 1 {
		t.Fatalf("crash counter = %d, want 1", c.Crashes)
	}
	// A nil injector is a safe no-op hook.
	var none *Injector
	none.CrashPoint("anything")
}

func TestParseFlag(t *testing.T) {
	cfg, err := ParseFlag("seed=7,drop=0.05,latency=0.2,maxlat=80ms,httperr=0.1,trunc=0.02,torn=0.01,tornat=3,enospc=0.01,fsync=0.01,crash=worker.ran@2")
	if err != nil {
		t.Fatalf("ParseFlag: %v", err)
	}
	if cfg.Seed != 7 || cfg.Drop != 0.05 || cfg.MaxLatency != 80*time.Millisecond ||
		cfg.TornWriteAt != 3 || cfg.CrashLabel != "worker.ran" || cfg.CrashAt != 2 {
		t.Fatalf("parsed config = %+v", cfg)
	}
	if cfg2, err := ParseFlag(""); err != nil || cfg2.Seed != 0 || cfg2.Drop != 0 || cfg2.CrashAt != 0 {
		t.Fatalf("empty spec = %+v, %v", cfg2, err)
	}
	for _, bad := range []string{"drop=2", "nope=1", "drop", "crash=worker.ran", "seed=x"} {
		if _, err := ParseFlag(bad); err == nil {
			t.Fatalf("ParseFlag(%q) accepted", bad)
		}
	}
}
