package chaos

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"testing"
	"time"
)

// recordingSleep captures requested backoffs without sleeping.
func recordingSleep(delays *[]time.Duration) func(context.Context, time.Duration) bool {
	return func(ctx context.Context, d time.Duration) bool {
		*delays = append(*delays, d)
		return ctx.Err() == nil
	}
}

func TestPolicyRetriesUntilSuccess(t *testing.T) {
	var delays []time.Duration
	p := Policy{MaxAttempts: 5, Base: 10 * time.Millisecond, Cap: 40 * time.Millisecond,
		Seed: 3, Sleep: recordingSleep(&delays)}
	calls := 0
	err := p.Do(context.Background(), func(attempt int) error {
		if attempt != calls {
			t.Fatalf("attempt = %d, want %d", attempt, calls)
		}
		calls++
		if calls < 4 {
			return fmt.Errorf("transient %d", calls)
		}
		return nil
	})
	if err != nil || calls != 4 {
		t.Fatalf("err = %v after %d calls", err, calls)
	}
	if len(delays) != 3 {
		t.Fatalf("slept %d times, want 3", len(delays))
	}
	for i, d := range delays {
		bound := 10 * time.Millisecond << i
		if bound > 40*time.Millisecond {
			bound = 40 * time.Millisecond
		}
		if d < 0 || d > bound {
			t.Fatalf("delay %d = %v outside [0, %v]", i, d, bound)
		}
	}
}

func TestPolicyExhaustsAndReturnsLastError(t *testing.T) {
	var delays []time.Duration
	p := Policy{MaxAttempts: 3, Sleep: recordingSleep(&delays)}
	err := p.Do(context.Background(), func(attempt int) error {
		return fmt.Errorf("boom %d", attempt)
	})
	if err == nil || err.Error() != "boom 2" {
		t.Fatalf("err = %v, want the last failure", err)
	}
	if len(delays) != 2 {
		t.Fatalf("slept %d times, want 2 (no sleep after the final attempt)", len(delays))
	}
}

func TestPolicyPermanentStopsImmediately(t *testing.T) {
	calls := 0
	sentinel := errors.New("409 conflict")
	err := Policy{MaxAttempts: 5}.Do(context.Background(), func(int) error {
		calls++
		return Permanent(fmt.Errorf("wrapped: %w", sentinel))
	})
	if calls != 1 {
		t.Fatalf("permanent error retried: %d calls", calls)
	}
	if !errors.Is(err, sentinel) {
		t.Fatalf("err = %v, want the original chain", err)
	}
}

func TestPolicyHonorsRetryAfter(t *testing.T) {
	var delays []time.Duration
	p := Policy{MaxAttempts: 2, Base: time.Millisecond, Cap: time.Millisecond,
		Sleep: recordingSleep(&delays)}
	p.Do(context.Background(), func(int) error {
		return WithRetryAfter(errors.New("429"), 250*time.Millisecond)
	})
	if len(delays) != 1 || delays[0] < 250*time.Millisecond {
		t.Fatalf("delays = %v, want the Retry-After floor of 250ms", delays)
	}
}

func TestPolicyDeadlineAware(t *testing.T) {
	// The next backoff (≥ Base = 1h in a 50ms budget) cannot complete:
	// Do must fail fast with the cause, not sleep into the deadline.
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	slept := false
	p := Policy{MaxAttempts: 5, Base: time.Hour, Cap: time.Hour,
		Sleep: func(context.Context, time.Duration) bool { slept = true; return true }}
	start := time.Now()
	err := p.Do(ctx, func(int) error {
		return WithRetryAfter(errors.New("busy"), time.Hour)
	})
	if err == nil || !strings.Contains(err.Error(), "deadline inside backoff") {
		t.Fatalf("err = %v, want a deadline-aware bailout carrying the cause", err)
	}
	if slept {
		t.Fatal("slept into a guaranteed deadline")
	}
	if time.Since(start) > 40*time.Millisecond {
		t.Fatal("deadline-aware bailout took too long")
	}
}

func TestPolicyCancelledContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	calls := 0
	err := Policy{MaxAttempts: 5}.Do(ctx, func(int) error { calls++; return nil })
	if calls != 0 || !errors.Is(err, context.Canceled) {
		t.Fatalf("dead context: %d calls, err %v", calls, err)
	}
}

func TestJitterReplaysFromSeed(t *testing.T) {
	collect := func() []time.Duration {
		var delays []time.Duration
		p := Policy{MaxAttempts: 6, Base: 10 * time.Millisecond, Cap: 80 * time.Millisecond,
			Seed: 42, Sleep: recordingSleep(&delays)}
		p.Do(context.Background(), func(int) error { return errors.New("x") })
		return delays
	}
	a, b := collect(), collect()
	if len(a) != 5 {
		t.Fatalf("delays = %v", a)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("jitter diverged at %d: %v vs %v", i, a, b)
		}
	}
}
