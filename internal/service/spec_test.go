package service

import (
	"bytes"
	"fmt"
	"io"
	"net/http"
	"strings"
	"testing"

	"repro"
)

func TestJobSpecValidate(t *testing.T) {
	good := smallSpec()
	if err := good.Validate(); err != nil {
		t.Fatalf("valid spec rejected: %v", err)
	}
	bad := []JobSpec{
		{Sizes: []int{8}, Trials: 1},
		{Protocols: []string{"ppl"}, Trials: 1},
		{Protocols: []string{"ppl"}, Sizes: []int{8}},
		{Protocols: []string{"nope"}, Sizes: []int{8}, Trials: 1},
		{Protocols: []string{"ppl"}, Sizes: []int{8}, Trials: 1, MaxSize: map[string]int{"nope": 8}},
		{Protocols: []string{"ppl"}, Sizes: []int{8}, Trials: 1, Metrics: []MetricSpec{{Observable: "steps", Agg: "exotic"}}},
		// The baselines reject non-random init classes.
		{Protocols: []string{"angluin"}, Sizes: []int{8}, Trials: 1, Scenario: repro.Scenario{Init: repro.InitNoLeader}},
	}
	for i, spec := range bad {
		if err := spec.Validate(); err == nil {
			t.Fatalf("bad spec %d accepted: %+v", i, spec)
		}
	}
}

func TestJobSpecPlanDigests(t *testing.T) {
	spec := smallSpec()
	cells, err := spec.Cells()
	if err != nil {
		t.Fatalf("plan: %v", err)
	}
	if len(cells) != 4 {
		t.Fatalf("planned %d cells, want 4", len(cells))
	}
	seen := map[string]bool{}
	for _, c := range cells {
		if c.Skipped || c.Key == "" {
			t.Fatalf("unexpected skipped/keyless cell %+v", c)
		}
		if seen[c.Key] {
			t.Fatalf("duplicate digest for cell %+v", c)
		}
		seen[c.Key] = true
	}

	// A scenario change must move every digest.
	spec2 := spec
	spec2.Scenario = repro.Scenario{Init: repro.InitRandom, Budget: repro.Budget{Scale: 0.5}}
	cells2, err := spec2.Cells()
	if err != nil {
		t.Fatalf("plan 2: %v", err)
	}
	for i := range cells2 {
		if cells2[i].Key == cells[i].Key {
			t.Fatalf("digest ignored the scenario for cell %+v", cells2[i])
		}
	}
}

// TestCellDigestsCoverScheduler pins cache correctness for the scheduler
// subsystem: a scheduler spec is part of the scenario and therefore of
// every cell digest, so jobs differing only in scheduler (or in churn or
// stuck dynamics) can never alias each other's cached records — while a
// nil spec leaves the digests exactly where pre-scheduler jobs put them.
func TestCellDigestsCoverScheduler(t *testing.T) {
	variants := []*repro.SchedulerSpec{
		nil,
		{Kind: "uniform"},
		{Kind: "biased", Family: "hotspot", HotArcs: 4, Weight: 8},
		{Kind: "eclipse", Period: 5000, Duration: 800, Arcs: 4},
		{Churn: []repro.ChurnEvent{{AtStep: 100, Remove: 1}}},
		{Stuck: 2},
	}
	seen := map[string]int{}
	for vi, sched := range variants {
		spec := smallSpec()
		// Election protocols that accept every variant (fj pins its census
		// to a fixed ring size and would reject the churn spec up front).
		spec.Protocols = []string{"ppl", "angluin"}
		spec.Scenario.Sched = sched
		if err := spec.Validate(); err != nil {
			t.Fatalf("variant %d rejected: %v", vi, err)
		}
		cells, err := spec.Cells()
		if err != nil {
			t.Fatalf("variant %d plan: %v", vi, err)
		}
		for _, c := range cells {
			if prev, dup := seen[c.Key]; dup {
				t.Fatalf("scheduler variants %d and %d share digest %s for cell %+v",
					prev, vi, c.Key, c)
			}
			seen[c.Key] = vi
		}
	}
}

func TestMaxSizeCapsCellsEndToEnd(t *testing.T) {
	_, ts := startServer(t, Config{Workers: 1, QueueDepth: 2})
	spec := JobSpec{
		Protocols: []string{"angluin", "chenchen"},
		Sizes:     []int{8, 16},
		Trials:    2,
		MaxSize:   map[string]int{"chenchen": 8},
	}
	sub := submit(t, ts, spec)
	data := fetchRecords(t, ts, sub.ID)
	recs, err := repro.ReadTrialRecords(bytes.NewReader(data))
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	// 3 live cells × 2 trials — the capped (chenchen, 16) cell runs
	// nothing and streams nothing.
	if len(recs) != 6 {
		t.Fatalf("streamed %d records, want 6", len(recs))
	}
	st := waitDone(t, ts, sub.ID)
	if st.State != StateDone || st.CellsDone != 4 {
		t.Fatalf("status = %+v, want done with 4 cells (1 skipped)", st)
	}
	// The report still aligns the capped cell as a missing column.
	resp, err := http.Get(fmt.Sprintf("%s/v1/jobs/%s/report?format=md", ts.URL, sub.ID))
	if err != nil {
		t.Fatalf("GET report: %v", err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatalf("read report: %v", err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("report = %d: %s", resp.StatusCode, body)
	}
	if !strings.Contains(string(body), "—") {
		t.Fatalf("report lacks the missing-cell marker:\n%s", body)
	}
}
