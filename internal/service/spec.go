// Package service is the experiment service: a long-running HTTP server
// exposing the repro Experiment API. Clients POST a JSON job spec
// (protocols × sizes × scenario × trials × metrics); a bounded worker-pool
// queue executes the job's cells through the existing Experiment streaming
// path; results stream back as TrialRecord JSONL or rendered Reports.
//
// The scaling lever is determinism: every (protocol, scenario, n, seed)
// cell is a pure function of its inputs, so finished cells are
// content-addressed by digest and cached (in-memory LRU with optional
// gzip disk spill) — repeated and overlapping jobs are served mostly from
// cache. The spec/cell/digest vocabulary itself lives in internal/plan,
// shared with the distributed sweep fabric (internal/fabric) so both
// tiers address identical cells identically. See docs/API.md for the
// HTTP surface and docs/ARCHITECTURE.md for where the service sits in
// the system.
package service

import (
	"repro/internal/plan"
)

// SpecVersion versions the cell digest; see plan.SpecVersion.
const SpecVersion = plan.SpecVersion

// MetricSpec is the wire form of a repro.Metric.
type MetricSpec = plan.MetricSpec

// JobSpec is the JSON body of POST /v1/jobs: the full configuration of
// one Experiment. It is the shared plan.Spec — the same wire form the
// fabric coordinator plans distributed sweeps from.
type JobSpec = plan.Spec

// cellPlan is one (protocol, size) cell of a job; see plan.Cell.
type cellPlan = plan.Cell
