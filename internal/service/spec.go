// Package service is the experiment service: a long-running HTTP server
// exposing the repro Experiment API. Clients POST a JSON job spec
// (protocols × sizes × scenario × trials × metrics); a bounded worker-pool
// queue executes the job's cells through the existing Experiment streaming
// path; results stream back as TrialRecord JSONL or rendered Reports.
//
// The scaling lever is determinism: every (protocol, scenario, n, seed)
// cell is a pure function of its inputs, so finished cells are
// content-addressed by digest and cached (in-memory LRU with optional
// gzip disk spill) — repeated and overlapping jobs are served mostly from
// cache. See docs/API.md for the HTTP surface and docs/ARCHITECTURE.md
// for where the service sits in the system.
package service

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"

	"repro"
)

// SpecVersion versions the cell digest: any change to the TrialRecord
// schema, the seed derivation, or the cell execution semantics must bump
// it so stale cache entries (including spilled ones) can never serve
// records under the new semantics.
const SpecVersion = "repro.cell/v1"

// MetricSpec is the wire form of a repro.Metric.
type MetricSpec struct {
	Observable string `json:"observable"`
	Agg        string `json:"agg"`
	Label      string `json:"label,omitempty"`
}

// JobSpec is the JSON body of POST /v1/jobs: the full configuration of
// one Experiment. Protocols, Sizes and Trials are required; everything
// else defaults to the zero Experiment behavior (zero Scenario = the
// standard random-adversary run, no metrics, no size caps).
type JobSpec struct {
	// Protocols names registered protocols, in row order.
	Protocols []string `json:"protocols"`
	// Sizes lists requested ring sizes (protocols adjust them via FixSize).
	Sizes []int `json:"sizes"`
	// Trials is the number of trials per (protocol, size) cell.
	Trials int `json:"trials"`
	// Scenario is shared by every cell; the zero value is the standard
	// experiment.
	Scenario repro.Scenario `json:"scenario,omitempty"`
	// Metrics adds composable report aggregations (rendered in /report).
	Metrics []MetricSpec `json:"metrics,omitempty"`
	// MaxSize caps the sizes run per protocol, like
	// Experiment.MaxSizeFor; capped cells render as missing. Keys are
	// registry names — the same namespace as Protocols — and are
	// translated to the display names Experiment matching uses.
	MaxSize map[string]int `json:"max_size,omitempty"`
}

// metrics converts the wire metrics to repro.Metric values.
func (s JobSpec) metrics() []repro.Metric {
	out := make([]repro.Metric, 0, len(s.Metrics))
	for _, m := range s.Metrics {
		out = append(out, repro.Metric{Observable: m.Observable, Agg: m.Agg, Label: m.Label})
	}
	return out
}

// experiment compiles the spec into a fresh Experiment builder. Every
// caller builds its own: Experiment values are cheap and the service must
// never share one across concurrently-running jobs.
func (s JobSpec) experiment() *repro.Experiment {
	e := repro.NewExperiment().
		ProtocolNames(s.Protocols...).
		Sizes(s.Sizes...).
		Trials(s.Trials).
		Scenario(s.Scenario).
		Metrics(s.metrics()...)
	for name, max := range s.MaxSize {
		// Experiment.MaxSizeFor matches ProtocolInfo.Name (the Table 1
		// display name); the service's wire contract uses registry names,
		// so translate. Unknown names are caught by Validate.
		if p, err := repro.NewProtocol(name); err == nil {
			e = e.MaxSizeFor(p.Info().Name, max)
		}
	}
	return e
}

// Validate rejects malformed specs before they reach the queue, reusing
// the Experiment's own validation (unknown protocols, empty matrix,
// unsupported scenarios, bad metrics) so the service and the library
// never disagree about what a runnable spec is.
func (s JobSpec) Validate() error {
	if len(s.Protocols) == 0 {
		return fmt.Errorf("job spec has no protocols")
	}
	if len(s.Sizes) == 0 {
		return fmt.Errorf("job spec has no sizes")
	}
	if s.Trials < 1 {
		return fmt.Errorf("job spec needs trials >= 1, got %d", s.Trials)
	}
	for name := range s.MaxSize {
		if _, err := repro.NewProtocol(name); err != nil {
			return fmt.Errorf("max_size: %w", err)
		}
	}
	return s.experiment().Validate()
}

// cellPlan is one (protocol, size) cell of a job, in deterministic
// execution order: protocol row order, then size order — exactly the
// order Experiment.execute visits cells, which is what makes the
// concatenated record stream byte-identical to a library run's sink
// stream (modulo completion-order: the service re-serializes each cell in
// trial order).
type cellPlan struct {
	Protocol string
	RawN     int
	N        int // FixSize-adjusted
	Skipped  bool
	Key      string // content digest; empty for skipped cells
}

// plan expands the spec into its cell list and validates protocol names
// on the way (NewProtocol errors surface here).
func (s JobSpec) plan() ([]cellPlan, error) {
	scenario, err := json.Marshal(s.Scenario)
	if err != nil {
		return nil, err
	}
	var cells []cellPlan
	for _, name := range s.Protocols {
		p, err := repro.NewProtocol(name)
		if err != nil {
			return nil, err
		}
		for _, rawN := range s.Sizes {
			n := p.FixSize(rawN)
			cell := cellPlan{Protocol: name, RawN: rawN, N: n}
			if max, capped := s.MaxSize[name]; capped && rawN > max {
				cell.Skipped = true
			} else {
				cell.Key = cellDigest(name, scenario, n, s.Trials)
			}
			cells = append(cells, cell)
		}
	}
	return cells, nil
}

// cellDigest is the content address of one cell's record bytes: a
// SHA-256 over the schema version, protocol name, canonical scenario
// JSON, the FixSize-adjusted ring size and the trial count. Seeds need no
// explicit mention — they are the pure function repro.TrialSeed(n, t) of
// n and t, so (n, trials) pins the seed range. Two requested sizes that
// FixSize to the same n share a digest and therefore a cache entry, as
// they must: their records are identical.
func cellDigest(protocol string, scenarioJSON []byte, n, trials int) string {
	h := sha256.New()
	fmt.Fprintf(h, "%s|proto=%s|scenario=%s|n=%d|trials=%d", SpecVersion, protocol, scenarioJSON, n, trials)
	return hex.EncodeToString(h.Sum(nil))
}
