package service

import (
	"bytes"
	"fmt"
	"os"
	"testing"

	"repro/internal/plan"
)

// entry returns deterministic JSONL-shaped payloads for cache tests.
func entry(i, size int) (string, []byte) {
	line := fmt.Sprintf(`{"k":%d,"pad":%q}`, i, bytes.Repeat([]byte{'x'}, size))
	return fmt.Sprintf("key-%04d", i), append([]byte(line), '\n')
}

func TestCellCacheHitMissCounters(t *testing.T) {
	c := NewCellCache(1<<20, "")
	key, data := entry(1, 8)
	if _, ok := c.Get(key); ok {
		t.Fatal("hit on empty cache")
	}
	c.Put(key, data)
	got, ok := c.Get(key)
	if !ok || !bytes.Equal(got, data) {
		t.Fatalf("Get = %q, %v; want stored bytes", got, ok)
	}
	st := c.Stats()
	if st.Hits != 1 || st.Misses != 1 || st.Entries != 1 {
		t.Fatalf("stats = %+v, want 1 hit / 1 miss / 1 entry", st)
	}
	if st.Bytes != int64(len(data)) {
		t.Fatalf("stats.Bytes = %d, want %d", st.Bytes, len(data))
	}
}

func TestCellCacheEvictsLRU(t *testing.T) {
	// Room for ~3 entries of 100 bytes of padding each.
	c := NewCellCache(400, "")
	keys := make([]string, 5)
	for i := range keys {
		k, d := entry(i, 100)
		keys[i] = k
		c.Put(k, d)
	}
	// The oldest entries must be gone, the newest present.
	if _, ok := c.Get(keys[0]); ok {
		t.Fatal("oldest entry survived past the byte bound")
	}
	if _, ok := c.Get(keys[4]); !ok {
		t.Fatal("newest entry was evicted")
	}
	st := c.Stats()
	if st.Evictions == 0 {
		t.Fatalf("stats = %+v, expected evictions", st)
	}
	if st.Bytes > 400 {
		t.Fatalf("stats.Bytes = %d exceeds the bound", st.Bytes)
	}
}

func TestCellCacheSpillsAndReadmits(t *testing.T) {
	dir := t.TempDir()
	c := NewCellCache(300, dir)
	k0, d0 := entry(0, 100)
	c.Put(k0, d0)
	// Push k0 out of memory.
	for i := 1; i < 4; i++ {
		k, d := entry(i, 100)
		c.Put(k, d)
	}
	if c.Stats().Evictions == 0 {
		t.Fatal("expected evictions")
	}
	// The spilled file exists and the entry comes back from disk.
	if _, err := os.Stat(c.spillPath(k0)); err != nil {
		t.Fatalf("expected spill file for %s: %v", k0, err)
	}
	got, ok := c.Get(k0)
	if !ok {
		t.Fatal("spilled entry did not re-admit")
	}
	if !bytes.Equal(got, d0) {
		t.Fatalf("spill round-trip corrupted data: %q != %q", got, d0)
	}
	st := c.Stats()
	if st.DiskHits != 1 {
		t.Fatalf("stats = %+v, want DiskHits=1", st)
	}
}

func TestCellCachePutIsIdempotent(t *testing.T) {
	c := NewCellCache(1<<20, "")
	k, d := entry(7, 16)
	c.Put(k, d)
	c.Put(k, d)
	st := c.Stats()
	if st.Entries != 1 || st.Bytes != int64(len(d)) {
		t.Fatalf("duplicate Put changed accounting: %+v", st)
	}
}

func TestCellDigestProperties(t *testing.T) {
	a := plan.CellDigest("ppl", []byte(`{}`), 16, 3)
	if b := plan.CellDigest("ppl", []byte(`{}`), 16, 3); b != a {
		t.Fatal("digest is not deterministic")
	}
	for name, other := range map[string]string{
		"protocol": plan.CellDigest("yokota", []byte(`{}`), 16, 3),
		"scenario": plan.CellDigest("ppl", []byte(`{"init":"noleader"}`), 16, 3),
		"size":     plan.CellDigest("ppl", []byte(`{}`), 32, 3),
		"trials":   plan.CellDigest("ppl", []byte(`{}`), 16, 4),
	} {
		if other == a {
			t.Fatalf("digest ignores the %s input", name)
		}
	}
}
