package service

import (
	"context"
	"errors"
	"fmt"
	"sync"
)

// ErrQueueFull is returned by Submit when the bounded queue has no slot —
// the HTTP layer translates it to 429 Too Many Requests, the service's
// backpressure signal.
var ErrQueueFull = errors.New("service: job queue is full")

// ErrShuttingDown is returned by Submit once Shutdown has begun.
var ErrShuttingDown = errors.New("service: shutting down")

// QueueStats is the queue's /v1/stats snapshot.
type QueueStats struct {
	// Depth is the number of jobs waiting (excluding running ones);
	// Capacity is the queue bound Submit enforces.
	Depth    int `json:"depth"`
	Capacity int `json:"capacity"`
	// Running is the number of jobs currently executing; Workers the pool
	// size.
	Running int `json:"running"`
	Workers int `json:"workers"`
}

// queue is the bounded worker pool executing jobs: Submit enqueues (or
// refuses, when full — backpressure, not buffering), a fixed set of
// workers drains, Shutdown stops intake and drains what was accepted.
type queue struct {
	jobs    chan *Job
	exec    func(*Job)
	workers int

	mu      sync.Mutex
	closed  bool
	running int
	wg      sync.WaitGroup
}

// newQueue starts workers goroutines draining a depth-bounded queue into
// exec. exec must honor the job's context for cancellation.
func newQueue(workers, depth int, exec func(*Job)) *queue {
	if workers < 1 {
		workers = 1
	}
	if depth < 1 {
		depth = 1
	}
	q := &queue{
		jobs:    make(chan *Job, depth),
		exec:    exec,
		workers: workers,
	}
	q.wg.Add(workers)
	for i := 0; i < workers; i++ {
		go q.worker()
	}
	return q
}

// worker drains the queue until it closes.
func (q *queue) worker() {
	defer q.wg.Done()
	for j := range q.jobs {
		if !j.start() {
			continue // cancelled while queued
		}
		q.mu.Lock()
		q.running++
		q.mu.Unlock()
		q.exec(j)
		q.mu.Lock()
		q.running--
		q.mu.Unlock()
	}
}

// Submit enqueues a job without blocking: a full queue is the caller's
// problem (429), never a hidden unbounded buffer.
func (q *queue) Submit(j *Job) error {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.closed {
		return ErrShuttingDown
	}
	select {
	case q.jobs <- j:
		return nil
	default:
		return ErrQueueFull
	}
}

// Shutdown stops intake, lets the workers drain every accepted job, and
// waits for them under ctx's deadline. On deadline it calls cancelAll
// (the server passes its base-context cancel, which aborts every queued
// and running job), eats what is left of the queue, and keeps waiting for
// the workers to observe the cancellation — exec returns promptly once
// its job context is cancelled, so this second wait is short.
func (q *queue) Shutdown(ctx context.Context, cancelAll func()) error {
	q.mu.Lock()
	if q.closed {
		q.mu.Unlock()
		return fmt.Errorf("service: queue already shut down")
	}
	q.closed = true
	close(q.jobs)
	q.mu.Unlock()

	done := make(chan struct{})
	go func() {
		q.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		// Deadline passed: abandon the drain, cancel everything still
		// moving, and wait out the (now immediate) worker exits.
		if cancelAll != nil {
			cancelAll()
		}
		for j := range q.jobs {
			j.Cancel()
		}
		<-done
		return ctx.Err()
	}
}

// Stats snapshots the queue counters.
func (q *queue) Stats() QueueStats {
	q.mu.Lock()
	defer q.mu.Unlock()
	return QueueStats{
		Depth:    len(q.jobs),
		Capacity: cap(q.jobs),
		Running:  q.running,
		Workers:  q.workers,
	}
}
