package service

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"
)

// State is a job's lifecycle phase.
type State string

const (
	StateQueued   State = "queued"
	StateRunning  State = "running"
	StateDone     State = "done"
	StateFailed   State = "failed"
	StateCanceled State = "canceled"
)

// terminal reports whether the state admits no successor.
func (s State) terminal() bool {
	return s == StateDone || s == StateFailed || s == StateCanceled
}

// Job is one submitted experiment: its spec, its cell plan, and the
// record bytes accumulated as cells finish. All mutable fields are
// guarded by mu; readers stream concurrently with the executing worker
// through snapshot/wait.
type Job struct {
	ID    string
	Spec  JobSpec
	cells []cellPlan

	ctx    context.Context
	cancel context.CancelFunc

	mu          sync.Mutex
	notify      chan struct{} // closed+replaced on every visible change
	state       State
	errMsg      string
	cellsDone   int
	cacheHits   int
	cacheMisses int
	records     []byte
	recordCount int
	created     time.Time
	started     time.Time
	finished    time.Time
}

// JobStatus is the JSON view of a job (GET /v1/jobs/{id} and the submit
// response).
type JobStatus struct {
	ID          string     `json:"id"`
	State       State      `json:"state"`
	Error       string     `json:"error,omitempty"`
	CellsTotal  int        `json:"cells_total"`
	CellsDone   int        `json:"cells_done"`
	CacheHits   int        `json:"cache_hits"`
	CacheMisses int        `json:"cache_misses"`
	Records     int        `json:"records"`
	Created     time.Time  `json:"created"`
	Started     *time.Time `json:"started,omitempty"`
	Finished    *time.Time `json:"finished,omitempty"`
}

// newJob builds a queued job from a validated spec and its plan, with a
// per-job cancellation context derived from base. A positive timeout
// additionally bounds the job's wall clock — the deadline starts at
// submission, not at start, so queue wait counts against it (a job the
// service couldn't schedule in time is as failed as one it couldn't run
// in time).
func newJob(base context.Context, id string, spec JobSpec, cells []cellPlan, timeout time.Duration) *Job {
	var ctx context.Context
	var cancel context.CancelFunc
	if timeout > 0 {
		ctx, cancel = context.WithTimeout(base, timeout)
	} else {
		ctx, cancel = context.WithCancel(base)
	}
	return &Job{
		ID:      id,
		Spec:    spec,
		cells:   cells,
		ctx:     ctx,
		cancel:  cancel,
		notify:  make(chan struct{}),
		state:   StateQueued,
		created: time.Now().UTC(),
	}
}

// bump wakes every waiter; callers hold mu.
func (j *Job) bump() {
	close(j.notify)
	j.notify = make(chan struct{})
}

// start transitions queued → running; it reports false when the job was
// cancelled while queued.
func (j *Job) start() bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.state != StateQueued {
		return false
	}
	select {
	case <-j.ctx.Done():
		j.state = StateCanceled
		j.errMsg = "canceled before start"
		j.finished = time.Now().UTC()
		j.bump()
		return false
	default:
	}
	j.state = StateRunning
	j.started = time.Now().UTC()
	j.bump()
	return true
}

// appendCell accumulates one finished cell's record bytes.
func (j *Job) appendCell(data []byte, records int, hit bool) {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.records = append(j.records, data...)
	j.recordCount += records
	j.cellsDone++
	if hit {
		j.cacheHits++
	} else {
		j.cacheMisses++
	}
	j.bump()
}

// skipCellDone counts a size-capped cell (no records) toward progress.
func (j *Job) skipCellDone() {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.cellsDone++
	j.bump()
}

// finish moves the job to its terminal state: done on nil error, failed
// when the job's execution deadline expired (a deadline miss is the
// job's failure, not the caller's cancellation), canceled when its
// context was cancelled, failed otherwise.
func (j *Job) finish(err error) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.state.terminal() {
		return
	}
	switch {
	case err == nil:
		j.state = StateDone
	case errors.Is(j.ctx.Err(), context.DeadlineExceeded):
		j.state = StateFailed
		j.errMsg = fmt.Sprintf("job deadline exceeded: %v", err)
	case j.ctx.Err() != nil:
		j.state = StateCanceled
		j.errMsg = err.Error()
	default:
		j.state = StateFailed
		j.errMsg = err.Error()
	}
	j.finished = time.Now().UTC()
	j.cancel() // release the context either way
	j.bump()
}

// Cancel cancels the job's context; the executor (or start) observes it
// and finishes the job as canceled.
func (j *Job) Cancel() {
	j.mu.Lock()
	wasQueued := j.state == StateQueued
	j.mu.Unlock()
	j.cancel()
	if wasQueued {
		// A queued job may never be picked up again before shutdown; mark
		// it canceled eagerly so status readers aren't left hanging. start
		// double-checks under the lock, so the worker race is benign.
		j.mu.Lock()
		if j.state == StateQueued {
			j.state = StateCanceled
			j.errMsg = "canceled"
			j.finished = time.Now().UTC()
			j.bump()
		}
		j.mu.Unlock()
	}
}

// Status snapshots the JSON view.
func (j *Job) Status() JobStatus {
	j.mu.Lock()
	defer j.mu.Unlock()
	st := JobStatus{
		ID:          j.ID,
		State:       j.state,
		Error:       j.errMsg,
		CellsTotal:  len(j.cells),
		CellsDone:   j.cellsDone,
		CacheHits:   j.cacheHits,
		CacheMisses: j.cacheMisses,
		Records:     j.recordCount,
		Created:     j.created,
	}
	if !j.started.IsZero() {
		t := j.started
		st.Started = &t
	}
	if !j.finished.IsZero() {
		t := j.finished
		st.Finished = &t
	}
	return st
}

// snapshot returns the record bytes past off, the current terminal flag,
// and a channel that closes on the next change — the streaming handler's
// wait primitive.
func (j *Job) snapshot(off int) (chunk []byte, terminal bool, changed <-chan struct{}) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if off < len(j.records) {
		chunk = j.records[off:]
	}
	return chunk, j.state.terminal(), j.notify
}

// WaitDone blocks until the job reaches a terminal state or ctx expires.
func (j *Job) WaitDone(ctx context.Context) error {
	for {
		_, terminal, changed := j.snapshot(0)
		if terminal {
			return nil
		}
		select {
		case <-changed:
		case <-ctx.Done():
			return ctx.Err()
		}
	}
}

// RecordsDone returns the full record bytes of a terminal job.
func (j *Job) RecordsDone() []byte {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.records
}

// jobStore is the in-memory job registry: id → job, submission-ordered.
type jobStore struct {
	mu   sync.Mutex
	seq  int
	jobs map[string]*Job
	ids  []string
}

func newJobStore() *jobStore {
	return &jobStore{jobs: make(map[string]*Job)}
}

// add registers a new job under the next sequential id.
func (st *jobStore) add(base context.Context, spec JobSpec, cells []cellPlan, timeout time.Duration) *Job {
	st.mu.Lock()
	defer st.mu.Unlock()
	st.seq++
	id := fmt.Sprintf("j-%06d", st.seq)
	j := newJob(base, id, spec, cells, timeout)
	st.jobs[id] = j
	st.ids = append(st.ids, id)
	return j
}

// get looks a job up by id.
func (st *jobStore) get(id string) (*Job, bool) {
	st.mu.Lock()
	defer st.mu.Unlock()
	j, ok := st.jobs[id]
	return j, ok
}

// list returns every job in submission order.
func (st *jobStore) list() []*Job {
	st.mu.Lock()
	defer st.mu.Unlock()
	out := make([]*Job, 0, len(st.ids))
	for _, id := range st.ids {
		out = append(out, st.jobs[id])
	}
	return out
}
