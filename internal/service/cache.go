package service

import (
	"bytes"
	"compress/gzip"
	"container/list"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sync"
)

// CacheStats is the counter snapshot GET /v1/stats exposes.
type CacheStats struct {
	// Hits counts Get calls answered from memory or disk.
	Hits int64 `json:"hits"`
	// Misses counts Get calls that found nothing.
	Misses int64 `json:"misses"`
	// DiskHits counts the subset of Hits served from the spill directory.
	DiskHits int64 `json:"disk_hits"`
	// Entries and Bytes describe the in-memory LRU right now.
	Entries int   `json:"entries"`
	Bytes   int64 `json:"bytes"`
	// Evictions counts entries pushed out of memory; with a spill
	// directory configured every eviction lands on disk first.
	Evictions int64 `json:"evictions"`
	// SpillErrors counts evictions whose disk write failed (the entry is
	// then simply dropped — the cache is an accelerator, never a
	// correctness dependency).
	SpillErrors int64 `json:"spill_errors"`
}

// CellCache is the content-addressed cell store: digest key → the cell's
// canonical TrialRecord JSONL bytes. Entries live in a byte-bounded
// in-memory LRU; evictions optionally spill to a directory as gzip files
// (<key>.jsonl.gz), from which later Gets transparently re-admit. Because
// keys are content digests over (SpecVersion, protocol, scenario, n,
// trials) and cells are pure functions of exactly those inputs, a cache
// entry can never be stale — only absent.
type CellCache struct {
	mu       sync.Mutex
	maxBytes int64
	curBytes int64
	ll       *list.List // front = most recently used
	items    map[string]*list.Element
	dir      string // "" disables disk spill
	stats    CacheStats
}

// cacheEntry is one LRU node.
type cacheEntry struct {
	key  string
	data []byte
}

// NewCellCache returns a cache bounded to maxBytes of record bytes in
// memory (minimum one entry is always admitted), spilling evictions to
// dir when non-empty. The directory is created on first use.
func NewCellCache(maxBytes int64, dir string) *CellCache {
	if maxBytes <= 0 {
		maxBytes = 256 << 20
	}
	return &CellCache{
		maxBytes: maxBytes,
		ll:       list.New(),
		items:    make(map[string]*list.Element),
		dir:      dir,
	}
}

// Get returns the record bytes stored under key. Memory hits refresh the
// LRU position; disk hits re-admit the entry to memory. The returned
// slice is shared — callers must not mutate it.
func (c *CellCache) Get(key string) ([]byte, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		c.ll.MoveToFront(el)
		c.stats.Hits++
		return el.Value.(*cacheEntry).data, true
	}
	if c.dir != "" {
		if data, err := c.readSpill(key); err == nil {
			c.stats.Hits++
			c.stats.DiskHits++
			c.admit(key, data)
			return data, true
		}
	}
	c.stats.Misses++
	return nil, false
}

// Put stores the record bytes under key. Storing an existing key is a
// no-op (content-addressed entries are immutable by construction).
func (c *CellCache) Put(key string, data []byte) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, dup := c.items[key]; dup {
		return
	}
	c.admit(key, data)
}

// admit inserts the entry and evicts from the cold end past the byte
// bound; callers hold the mutex.
func (c *CellCache) admit(key string, data []byte) {
	el := c.ll.PushFront(&cacheEntry{key: key, data: data})
	c.items[key] = el
	c.curBytes += int64(len(data))
	for c.curBytes > c.maxBytes && c.ll.Len() > 1 {
		oldest := c.ll.Back()
		ent := oldest.Value.(*cacheEntry)
		c.ll.Remove(oldest)
		delete(c.items, ent.key)
		c.curBytes -= int64(len(ent.data))
		c.stats.Evictions++
		if c.dir != "" {
			if err := c.writeSpill(ent.key, ent.data); err != nil {
				c.stats.SpillErrors++
			}
		}
	}
}

// spillPath is the on-disk form of one entry.
func (c *CellCache) spillPath(key string) string {
	return filepath.Join(c.dir, key+".jsonl.gz")
}

// writeSpill persists an evicted entry as an independently-valid gzip
// file, written via a temp file + rename so a crashed write can never
// leave a truncated artifact under the content address.
func (c *CellCache) writeSpill(key string, data []byte) error {
	if err := os.MkdirAll(c.dir, 0o755); err != nil {
		return err
	}
	path := c.spillPath(key)
	if _, err := os.Stat(path); err == nil {
		return nil // already spilled in a previous eviction
	}
	tmp, err := os.CreateTemp(c.dir, "spill-*")
	if err != nil {
		return err
	}
	gz := gzip.NewWriter(tmp)
	_, werr := gz.Write(data)
	if cerr := gz.Close(); werr == nil {
		werr = cerr
	}
	if serr := tmp.Sync(); werr == nil {
		werr = serr
	}
	if cerr := tmp.Close(); werr == nil {
		werr = cerr
	}
	if werr != nil {
		os.Remove(tmp.Name())
		return werr
	}
	return os.Rename(tmp.Name(), path)
}

// readSpill loads a spilled entry back from disk.
func (c *CellCache) readSpill(key string) ([]byte, error) {
	f, err := os.Open(c.spillPath(key))
	if err != nil {
		return nil, err
	}
	defer f.Close()
	gz, err := gzip.NewReader(f)
	if err != nil {
		return nil, err
	}
	defer gz.Close()
	data, err := io.ReadAll(gz)
	if err != nil {
		return nil, err
	}
	if !validJSONL(data) {
		return nil, fmt.Errorf("spilled entry %s is not JSONL", key)
	}
	return data, nil
}

// validJSONL is a cheap shape check on re-admitted spill data: non-empty,
// newline-terminated. (Content integrity is already covered by gzip's
// CRC; this guards against foreign files dropped into the directory.)
func validJSONL(data []byte) bool {
	return len(data) > 0 && data[len(data)-1] == '\n' && bytes.IndexByte(data, '{') == 0
}

// Stats returns a snapshot of the counters.
func (c *CellCache) Stats() CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	s := c.stats
	s.Entries = c.ll.Len()
	s.Bytes = c.curBytes
	return s
}
