package service

import (
	"bytes"
	"compress/gzip"
	"container/list"
	"fmt"
	"io"
	"path/filepath"
	"sync"

	"repro/internal/chaos"
)

// degradeAfter is the consecutive-spill-failure threshold past which the
// cache demotes itself to memory-only. One failed write may be a blip; a
// streak means the spill directory is gone, full, or read-only, and every
// further attempt just burns an eviction on a doomed syscall.
const degradeAfter = 3

// CacheStats is the counter snapshot GET /v1/stats exposes.
type CacheStats struct {
	// Hits counts Get calls answered from memory or disk.
	Hits int64 `json:"hits"`
	// Misses counts Get calls that found nothing.
	Misses int64 `json:"misses"`
	// DiskHits counts the subset of Hits served from the spill directory.
	DiskHits int64 `json:"disk_hits"`
	// Entries and Bytes describe the in-memory LRU right now.
	Entries int   `json:"entries"`
	Bytes   int64 `json:"bytes"`
	// Evictions counts entries pushed out of memory; with a spill
	// directory configured every eviction lands on disk first.
	Evictions int64 `json:"evictions"`
	// SpillErrors counts evictions whose disk write failed (the entry is
	// then simply dropped — the cache is an accelerator, never a
	// correctness dependency).
	SpillErrors int64 `json:"spill_errors"`
	// SpillReadErrors counts disk entries that failed to load back —
	// unreadable, corrupt, or not JSONL. Each is removed so the next miss
	// recomputes instead of retrying a poisoned file.
	SpillReadErrors int64 `json:"spill_read_errors"`
	// Degraded reports the cache has demoted itself to memory-only after
	// degradeAfter consecutive spill failures. Jobs keep succeeding; only
	// the disk tier is gone until restart.
	Degraded bool `json:"degraded"`
}

// CellCache is the content-addressed cell store: digest key → the cell's
// canonical TrialRecord JSONL bytes. Entries live in a byte-bounded
// in-memory LRU; evictions optionally spill to a directory as gzip files
// (<key>.jsonl.gz), from which later Gets transparently re-admit. Because
// keys are content digests over (SpecVersion, protocol, scenario, n,
// trials) and cells are pure functions of exactly those inputs, a cache
// entry can never be stale — only absent.
//
// The disk tier degrades, never fails: a spill error drops the evicted
// entry, a read error quarantines the file, and a streak of write
// failures demotes the cache to memory-only (CacheStats.Degraded) so a
// dead disk costs recomputation, not jobs.
type CellCache struct {
	mu          sync.Mutex
	maxBytes    int64
	curBytes    int64
	ll          *list.List // front = most recently used
	items       map[string]*list.Element
	dir         string   // "" disables disk spill
	fs          chaos.FS // the write path; OS-backed in production
	spillStreak int      // consecutive writeSpill failures
	degraded    bool
	stats       CacheStats
}

// cacheEntry is one LRU node.
type cacheEntry struct {
	key  string
	data []byte
}

// NewCellCache returns a cache bounded to maxBytes of record bytes in
// memory (minimum one entry is always admitted), spilling evictions to
// dir when non-empty. The directory is created on first use.
func NewCellCache(maxBytes int64, dir string) *CellCache {
	return newCellCacheFS(maxBytes, dir, nil)
}

// newCellCacheFS is NewCellCache with a substitutable filesystem — the
// seam chaos tests inject torn writes and ENOSPC through. nil selects
// the real one.
func newCellCacheFS(maxBytes int64, dir string, fs chaos.FS) *CellCache {
	if maxBytes <= 0 {
		maxBytes = 256 << 20
	}
	if fs == nil {
		fs = chaos.OS()
	}
	return &CellCache{
		maxBytes: maxBytes,
		ll:       list.New(),
		items:    make(map[string]*list.Element),
		dir:      dir,
		fs:       fs,
	}
}

// Get returns the record bytes stored under key. Memory hits refresh the
// LRU position; disk hits re-admit the entry to memory. The returned
// slice is shared — callers must not mutate it.
func (c *CellCache) Get(key string) ([]byte, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		c.ll.MoveToFront(el)
		c.stats.Hits++
		return el.Value.(*cacheEntry).data, true
	}
	if c.dir != "" {
		data, err := c.readSpill(key)
		switch {
		case err == nil:
			c.stats.Hits++
			c.stats.DiskHits++
			c.admit(key, data)
			return data, true
		case c.spillExists(key):
			// The file is there but unreadable — truncated gzip, flipped
			// bytes, foreign junk. Remove it so the next miss recomputes
			// rather than tripping over the same corpse forever.
			c.stats.SpillReadErrors++
			c.fs.Remove(c.spillPath(key))
		}
	}
	c.stats.Misses++
	return nil, false
}

// Put stores the record bytes under key. Storing an existing key is a
// no-op (content-addressed entries are immutable by construction).
func (c *CellCache) Put(key string, data []byte) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, dup := c.items[key]; dup {
		return
	}
	c.admit(key, data)
}

// admit inserts the entry and evicts from the cold end past the byte
// bound; callers hold the mutex.
func (c *CellCache) admit(key string, data []byte) {
	el := c.ll.PushFront(&cacheEntry{key: key, data: data})
	c.items[key] = el
	c.curBytes += int64(len(data))
	for c.curBytes > c.maxBytes && c.ll.Len() > 1 {
		oldest := c.ll.Back()
		ent := oldest.Value.(*cacheEntry)
		c.ll.Remove(oldest)
		delete(c.items, ent.key)
		c.curBytes -= int64(len(ent.data))
		c.stats.Evictions++
		if c.dir != "" && !c.degraded {
			if err := c.writeSpill(ent.key, ent.data); err != nil {
				c.stats.SpillErrors++
				c.spillStreak++
				if c.spillStreak >= degradeAfter {
					c.degraded = true
				}
			} else {
				c.spillStreak = 0
			}
		}
	}
}

// spillPath is the on-disk form of one entry.
func (c *CellCache) spillPath(key string) string {
	return filepath.Join(c.dir, key+".jsonl.gz")
}

// spillExists reports whether a spill file is present; callers hold mu.
func (c *CellCache) spillExists(key string) bool {
	_, err := c.fs.Stat(c.spillPath(key))
	return err == nil
}

// writeSpill persists an evicted entry as an independently-valid gzip
// file through the atomic write path, so a crashed or torn write can
// never leave a truncated artifact under the content address — and when
// the storage lies about that, the gzip CRC catches it at read time.
func (c *CellCache) writeSpill(key string, data []byte) error {
	if err := c.fs.MkdirAll(c.dir); err != nil {
		return err
	}
	path := c.spillPath(key)
	if _, err := c.fs.Stat(path); err == nil {
		return nil // already spilled in a previous eviction
	}
	var buf bytes.Buffer
	gz := gzip.NewWriter(&buf)
	if _, err := gz.Write(data); err != nil {
		return err
	}
	if err := gz.Close(); err != nil {
		return err
	}
	return c.fs.WriteFileAtomic(path, buf.Bytes())
}

// readSpill loads a spilled entry back from disk.
func (c *CellCache) readSpill(key string) ([]byte, error) {
	f, err := c.fs.Open(c.spillPath(key))
	if err != nil {
		return nil, err
	}
	defer f.Close()
	gz, err := gzip.NewReader(f)
	if err != nil {
		return nil, err
	}
	defer gz.Close()
	data, err := io.ReadAll(gz)
	if err != nil {
		return nil, err
	}
	if !validJSONL(data) {
		return nil, fmt.Errorf("spilled entry %s is not JSONL", key)
	}
	return data, nil
}

// validJSONL is a cheap shape check on re-admitted spill data: non-empty,
// newline-terminated. (Content integrity is already covered by gzip's
// CRC; this guards against foreign files dropped into the directory.)
func validJSONL(data []byte) bool {
	return len(data) > 0 && data[len(data)-1] == '\n' && bytes.IndexByte(data, '{') == 0
}

// Stats returns a snapshot of the counters.
func (c *CellCache) Stats() CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	s := c.stats
	s.Entries = c.ll.Len()
	s.Bytes = c.curBytes
	s.Degraded = c.degraded
	return s
}
