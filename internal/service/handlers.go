package service

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"time"

	"repro"
)

// routes wires the HTTP surface. Method-qualified patterns give exact
// 405s for free; {id} path values identify jobs.
func (s *Server) routes() *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /v1/protocols", s.handleProtocols)
	mux.HandleFunc("GET /v1/stats", s.handleStats)
	mux.HandleFunc("POST /v1/jobs", s.handleSubmit)
	mux.HandleFunc("GET /v1/jobs", s.handleList)
	mux.HandleFunc("GET /v1/jobs/{id}", s.handleStatus)
	mux.HandleFunc("DELETE /v1/jobs/{id}", s.handleCancel)
	mux.HandleFunc("GET /v1/jobs/{id}/records", s.handleRecords)
	mux.HandleFunc("GET /v1/jobs/{id}/report", s.handleReport)
	return mux
}

// apiError is the JSON error envelope.
type apiError struct {
	Error string `json:"error"`
}

// writeJSON writes v as indented JSON with the given status.
func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

// writeError writes the JSON error envelope.
func writeError(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, apiError{Error: fmt.Sprintf(format, args...)})
}

// handleHealthz answers liveness/readiness probes: 200 while serving,
// 503 once draining.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		writeError(w, http.StatusServiceUnavailable, "draining")
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintln(w, "ok")
}

// handleProtocols lists the registered protocol names — what a client
// may put in a job spec.
func (s *Server) handleProtocols(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string][]string{"protocols": repro.Protocols()})
}

// handleStats serves the cache/queue/jobs counters.
func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.Stats())
}

// submitResponse is the 202 body of POST /v1/jobs.
type submitResponse struct {
	JobStatus
	RecordsURL string `json:"records_url"`
	ReportURL  string `json:"report_url"`
}

// handleSubmit validates a job spec, plans its cells and enqueues it:
// 202 Accepted with the job status, 400 on a bad spec, 429 when the
// bounded queue is full (backpressure — retry later), 503 while
// draining.
func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		s.shedDraining.Add(1)
		writeError(w, http.StatusServiceUnavailable, "draining")
		return
	}
	var spec JobSpec
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&spec); err != nil {
		writeError(w, http.StatusBadRequest, "bad job spec: %v", err)
		return
	}
	if err := spec.Validate(); err != nil {
		writeError(w, http.StatusBadRequest, "bad job spec: %v", err)
		return
	}
	cells, err := spec.Cells()
	if err != nil {
		writeError(w, http.StatusBadRequest, "bad job spec: %v", err)
		return
	}
	timeout := s.cfg.JobTimeout
	if spec.TimeoutMillis > 0 {
		timeout = time.Duration(spec.TimeoutMillis) * time.Millisecond
	}
	j := s.store.add(s.base, spec, cells, timeout)
	if err := s.queue.Submit(j); err != nil {
		j.Cancel()
		switch err {
		case ErrQueueFull:
			s.shedFull.Add(1)
			w.Header().Set("Retry-After", "1")
			writeError(w, http.StatusTooManyRequests, "queue full (capacity %d) — retry later", s.queue.Stats().Capacity)
		default:
			s.shedDraining.Add(1)
			writeError(w, http.StatusServiceUnavailable, "%v", err)
		}
		return
	}
	writeJSON(w, http.StatusAccepted, submitResponse{
		JobStatus:  j.Status(),
		RecordsURL: fmt.Sprintf("/v1/jobs/%s/records", j.ID),
		ReportURL:  fmt.Sprintf("/v1/jobs/%s/report", j.ID),
	})
}

// handleList serves every job's status in submission order.
func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	jobs := s.store.list()
	out := make([]JobStatus, 0, len(jobs))
	for _, j := range jobs {
		out = append(out, j.Status())
	}
	writeJSON(w, http.StatusOK, map[string][]JobStatus{"jobs": out})
}

// jobOr404 resolves the {id} path value.
func (s *Server) jobOr404(w http.ResponseWriter, r *http.Request) (*Job, bool) {
	id := r.PathValue("id")
	j, ok := s.store.get(id)
	if !ok {
		writeError(w, http.StatusNotFound, "no job %q", id)
		return nil, false
	}
	return j, true
}

// handleStatus serves one job's status.
func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	j, ok := s.jobOr404(w, r)
	if !ok {
		return
	}
	writeJSON(w, http.StatusOK, j.Status())
}

// handleCancel cancels a queued or running job.
func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	j, ok := s.jobOr404(w, r)
	if !ok {
		return
	}
	j.Cancel()
	writeJSON(w, http.StatusOK, j.Status())
}

// handleRecords streams the job's TrialRecord JSONL, chunked: bytes flow
// as cells finish (from cache or cold runs), the connection closes when
// the job reaches a terminal state. A finished job serves its whole
// artifact immediately; re-fetching is cheap and byte-identical.
func (s *Server) handleRecords(w http.ResponseWriter, r *http.Request) {
	j, ok := s.jobOr404(w, r)
	if !ok {
		return
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.Header().Set("X-Job-Id", j.ID)
	flusher, _ := w.(http.Flusher)
	off := 0
	for {
		chunk, terminal, changed := j.snapshot(off)
		if len(chunk) > 0 {
			if _, err := w.Write(chunk); err != nil {
				return // client went away
			}
			off += len(chunk)
			if flusher != nil {
				flusher.Flush()
			}
		}
		if terminal {
			return
		}
		select {
		case <-changed:
		case <-r.Context().Done():
			return
		}
	}
}

// handleReport renders the finished job's Report in the requested format
// (?format=md|json|csv, default md): records are replayed through
// Experiment.ReportFromRecords, so a fully-cached job renders without a
// single trial running. An unfinished job answers 409 — poll the status
// endpoint, or stream /records which needs no completion barrier.
func (s *Server) handleReport(w http.ResponseWriter, r *http.Request) {
	j, ok := s.jobOr404(w, r)
	if !ok {
		return
	}
	st := j.Status()
	if st.State != StateDone {
		writeError(w, http.StatusConflict, "job %s is %s — the report needs state done", j.ID, st.State)
		return
	}
	recs, err := repro.ReadTrialRecords(bytes.NewReader(j.RecordsDone()))
	if err != nil {
		writeError(w, http.StatusInternalServerError, "decode records: %v", err)
		return
	}
	rep, err := j.Spec.Experiment().ReportFromRecords(recs)
	if err != nil {
		writeError(w, http.StatusInternalServerError, "rebuild report: %v", err)
		return
	}
	switch format := r.URL.Query().Get("format"); format {
	case "", "md", "markdown":
		w.Header().Set("Content-Type", "text/markdown; charset=utf-8")
		fmt.Fprint(w, rep.Markdown())
	case "json":
		data, err := rep.JSON()
		if err != nil {
			writeError(w, http.StatusInternalServerError, "render: %v", err)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		w.Write(data)
	case "csv":
		data, err := rep.CSV()
		if err != nil {
			writeError(w, http.StatusInternalServerError, "render: %v", err)
			return
		}
		w.Header().Set("Content-Type", "text/csv; charset=utf-8")
		w.Write(data)
	default:
		writeError(w, http.StatusBadRequest, "unknown format %q (md, json, csv)", format)
	}
}
