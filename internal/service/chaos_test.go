package service

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"strings"
	"testing"
	"time"

	"repro/internal/chaos"
)

// hangingExec is the degradation tests' job executor: it runs until the
// job's context dies, then finishes with that cause — the shape of a job
// that would never complete on its own. (The queue worker has already
// started the job by the time exec runs.)
func hangingExec(j *Job) {
	<-j.ctx.Done()
	j.finish(j.ctx.Err())
}

// TestJobDeadlineFromSpec pins the per-job timeout_ms contract: a job
// past its spec deadline finishes failed — not canceled — with a
// distinct "job deadline exceeded" error.
func TestJobDeadlineFromSpec(t *testing.T) {
	svc := newServer(Config{Workers: 1, QueueDepth: 2}, hangingExec)
	ts := httptest.NewServer(svc.Handler())
	defer ts.Close()

	spec := smallSpec()
	spec.TimeoutMillis = 50
	sub := submit(t, ts, spec)
	st := waitDone(t, ts, sub.ID)
	if st.State != StateFailed {
		t.Fatalf("state = %s, want failed", st.State)
	}
	if !strings.Contains(st.Error, "job deadline exceeded") {
		t.Fatalf("error = %q, want a deadline message", st.Error)
	}
}

// TestJobDeadlineFromConfig: the server-wide default applies when the
// spec sets no timeout, and an explicit spec timeout is not required.
func TestJobDeadlineFromConfig(t *testing.T) {
	svc := newServer(Config{Workers: 1, QueueDepth: 2, JobTimeout: 50 * time.Millisecond}, hangingExec)
	ts := httptest.NewServer(svc.Handler())
	defer ts.Close()

	sub := submit(t, ts, smallSpec())
	st := waitDone(t, ts, sub.ID)
	if st.State != StateFailed || !strings.Contains(st.Error, "job deadline exceeded") {
		t.Fatalf("status = %s %q, want failed with a deadline message", st.State, st.Error)
	}
}

// TestJobCancelStillCanceled guards the deadline/cancel distinction: an
// explicit cancel must keep reporting canceled, not failed.
func TestJobCancelStillCanceled(t *testing.T) {
	svc := newServer(Config{Workers: 1, QueueDepth: 2, JobTimeout: time.Hour}, hangingExec)
	ts := httptest.NewServer(svc.Handler())
	defer ts.Close()

	sub := submit(t, ts, smallSpec())
	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/jobs/"+sub.ID, nil)
	if _, err := http.DefaultClient.Do(req); err != nil {
		t.Fatalf("DELETE: %v", err)
	}
	st := waitDone(t, ts, sub.ID)
	if st.State != StateCanceled {
		t.Fatalf("state after cancel = %s, want canceled", st.State)
	}
}

// TestCacheDegradesToMemoryOnly: a streak of spill failures must demote
// the disk tier — visible on stats — while the memory cache keeps
// serving and nothing errors out of Put/Get.
func TestCacheDegradesToMemoryOnly(t *testing.T) {
	in := chaos.NewInjector(chaos.Config{Seed: 1, ENOSPC: 1})
	// Room for ~2 entries of 100 bytes each: every further Put evicts.
	c := newCellCacheFS(300, t.TempDir(), in.FS(nil))
	for i := 0; i < 8; i++ {
		k, d := entry(i, 100)
		c.Put(k, d)
	}
	st := c.Stats()
	if !st.Degraded {
		t.Fatalf("cache not degraded after %d failed spills: %+v", st.SpillErrors, st)
	}
	if st.SpillErrors != degradeAfter {
		t.Fatalf("SpillErrors = %d, want exactly %d (no attempts past demotion)", st.SpillErrors, degradeAfter)
	}
	// The memory tier still works.
	k, d := entry(7, 100)
	if got, ok := c.Get(k); !ok || !bytes.Equal(got, d) {
		t.Fatal("memory tier broken after degradation")
	}
}

// TestCacheTornSpillQuarantined: a torn spill write that lied about
// success is caught by the gzip CRC at read time; the poisoned file is
// removed, the Get is a clean miss, and the counter records it.
func TestCacheTornSpillQuarantined(t *testing.T) {
	dir := t.TempDir()
	in := chaos.NewInjector(chaos.Config{Seed: 1, TornWriteAt: 1})
	c := newCellCacheFS(300, dir, in.FS(nil))
	k0, d0 := entry(0, 100)
	c.Put(k0, d0)
	for i := 1; i < 4; i++ { // push k0 out of memory → torn spill
		k, d := entry(i, 100)
		c.Put(k, d)
	}
	if _, err := os.Stat(c.spillPath(k0)); err != nil {
		t.Fatalf("spill file missing: %v", err)
	}
	if _, ok := c.Get(k0); ok {
		t.Fatal("Get returned data from a torn spill")
	}
	st := c.Stats()
	if st.SpillReadErrors != 1 {
		t.Fatalf("SpillReadErrors = %d, want 1", st.SpillReadErrors)
	}
	if _, err := os.Stat(c.spillPath(k0)); !os.IsNotExist(err) {
		t.Fatalf("poisoned spill file not removed: %v", err)
	}
	// The next Get is an ordinary miss, not a repeated read error.
	c.Get(k0)
	if st := c.Stats(); st.SpillReadErrors != 1 {
		t.Fatalf("read error recounted: %d", st.SpillReadErrors)
	}
}

// TestCacheCorruptSpillQuarantined covers byte-flip corruption of an
// honestly-written spill file — same quarantine path, real filesystem.
func TestCacheCorruptSpillQuarantined(t *testing.T) {
	dir := t.TempDir()
	c := newCellCacheFS(300, dir, nil)
	k0, d0 := entry(0, 100)
	c.Put(k0, d0)
	for i := 1; i < 4; i++ {
		k, d := entry(i, 100)
		c.Put(k, d)
	}
	path := c.spillPath(k0)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read spill: %v", err)
	}
	data[len(data)/2] ^= 0xFF
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatalf("corrupt spill: %v", err)
	}
	if _, ok := c.Get(k0); ok {
		t.Fatal("Get returned data from a corrupt spill")
	}
	if st := c.Stats(); st.SpillReadErrors != 1 {
		t.Fatalf("SpillReadErrors = %d, want 1", st.SpillReadErrors)
	}
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Fatal("corrupt spill file not removed")
	}
}

// TestShedCounters: refused submissions are counted by refusal class —
// queue-full 429 (backpressure) separately from draining 503
// (lifecycle) — and surface on /v1/stats.
func TestShedCounters(t *testing.T) {
	block := make(chan struct{})
	svc := newServer(Config{Workers: 1, QueueDepth: 1}, func(j *Job) {
		j.start()
		<-block
		j.finish(nil)
	})
	ts := httptest.NewServer(svc.Handler())
	defer ts.Close()
	defer close(block)

	submit(t, ts, smallSpec()) // occupies the worker
	submit(t, ts, smallSpec()) // occupies the queue slot
	body, _ := json.Marshal(smallSpec())
	resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatalf("POST: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("full queue = %d, want 429", resp.StatusCode)
	}

	svc.draining.Store(true)
	resp, err = http.Post(ts.URL+"/v1/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatalf("POST: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("draining = %d, want 503", resp.StatusCode)
	}
	svc.draining.Store(false)

	shed := svc.Stats().Shed
	if shed.QueueFull != 1 || shed.Draining != 1 {
		t.Fatalf("shed = %+v, want 1 queue-full and 1 draining", shed)
	}
}
