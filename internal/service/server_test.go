package service

import (
	"bytes"
	"compress/gzip"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"strings"
	"testing"
	"time"

	"repro"
)

// readGzipSegment decodes one gzip JSONL artifact segment.
func readGzipSegment(t *testing.T, path string) []repro.TrialRecord {
	t.Helper()
	f, err := os.Open(path)
	if err != nil {
		t.Fatalf("open %s: %v", path, err)
	}
	defer f.Close()
	gz, err := gzip.NewReader(f)
	if err != nil {
		t.Fatalf("gzip %s: %v", path, err)
	}
	defer gz.Close()
	recs, err := repro.ReadTrialRecords(gz)
	if err != nil {
		t.Fatalf("decode %s: %v", path, err)
	}
	return recs
}

// smallSpec is the cheap job the handler tests run: 2 protocols × 2
// sizes × 2 trials = 8 records in well under a second.
func smallSpec() JobSpec {
	return JobSpec{
		Protocols: []string{"angluin", "fj"},
		Sizes:     []int{8, 16},
		Trials:    2,
	}
}

// startServer boots a service behind httptest and tears both down with
// the test.
func startServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	svc := New(cfg)
	ts := httptest.NewServer(svc.Handler())
	t.Cleanup(func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		svc.Shutdown(ctx)
	})
	return svc, ts
}

// submit POSTs a spec and decodes the 202 response.
func submit(t *testing.T, ts *httptest.Server, spec JobSpec) submitResponse {
	t.Helper()
	body, err := json.Marshal(spec)
	if err != nil {
		t.Fatalf("marshal spec: %v", err)
	}
	resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatalf("POST /v1/jobs: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		data, _ := io.ReadAll(resp.Body)
		t.Fatalf("POST /v1/jobs = %d: %s", resp.StatusCode, data)
	}
	var out submitResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatalf("decode submit response: %v", err)
	}
	return out
}

// fetchRecords streams /records to completion and returns the raw bytes.
func fetchRecords(t *testing.T, ts *httptest.Server, id string) []byte {
	t.Helper()
	resp, err := http.Get(fmt.Sprintf("%s/v1/jobs/%s/records", ts.URL, id))
	if err != nil {
		t.Fatalf("GET records: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET records = %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("records Content-Type = %q", ct)
	}
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("read records: %v", err)
	}
	return data
}

// waitDone polls the status endpoint until the job is terminal.
func waitDone(t *testing.T, ts *httptest.Server, id string) JobStatus {
	t.Helper()
	deadline := time.Now().Add(60 * time.Second)
	for {
		resp, err := http.Get(ts.URL + "/v1/jobs/" + id)
		if err != nil {
			t.Fatalf("GET status: %v", err)
		}
		var st JobStatus
		err = json.NewDecoder(resp.Body).Decode(&st)
		resp.Body.Close()
		if err != nil {
			t.Fatalf("decode status: %v", err)
		}
		if st.State.terminal() {
			return st
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s never finished: %+v", id, st)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func TestSubmitStreamReport(t *testing.T) {
	_, ts := startServer(t, Config{Workers: 1, QueueDepth: 4})
	sub := submit(t, ts, smallSpec())
	if sub.State != StateQueued && sub.State != StateRunning && sub.State != StateDone {
		t.Fatalf("submit state = %s", sub.State)
	}

	// The records stream ends only when the job is terminal, so reading
	// it to EOF doubles as the completion barrier.
	data := fetchRecords(t, ts, sub.ID)
	recs, err := repro.ReadTrialRecords(bytes.NewReader(data))
	if err != nil {
		t.Fatalf("decode streamed JSONL: %v", err)
	}
	if want := 2 * 2 * 2; len(recs) != want {
		t.Fatalf("streamed %d records, want %d", len(recs), want)
	}
	// Deterministic cell order: protocol rows, then sizes, then trials.
	// Records carry the Table 1 display name and the FixSize-adjusted n.
	angluin, err := repro.NewProtocol("angluin")
	if err != nil {
		t.Fatalf("NewProtocol: %v", err)
	}
	first := recs[0]
	if first.Protocol != angluin.Info().Name || first.N != angluin.FixSize(8) || first.Trial != 0 {
		t.Fatalf("first record out of order: %+v", first)
	}

	st := waitDone(t, ts, sub.ID)
	if st.State != StateDone {
		t.Fatalf("job state = %s (%s)", st.State, st.Error)
	}
	if st.CellsDone != 4 || st.Records != 8 {
		t.Fatalf("status = %+v, want 4 cells / 8 records", st)
	}

	// All three report formats render from the record stream.
	for _, tc := range []struct{ format, wantCT, needle string }{
		{"md", "text/markdown; charset=utf-8", "### Table 1 reproduction"},
		{"json", "application/json", `"rows"`},
		{"csv", "text/csv; charset=utf-8", "protocol,n,trials"},
	} {
		resp, err := http.Get(fmt.Sprintf("%s/v1/jobs/%s/report?format=%s", ts.URL, sub.ID, tc.format))
		if err != nil {
			t.Fatalf("GET report %s: %v", tc.format, err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("report %s = %d: %s", tc.format, resp.StatusCode, body)
		}
		if ct := resp.Header.Get("Content-Type"); ct != tc.wantCT {
			t.Fatalf("report %s Content-Type = %q", tc.format, ct)
		}
		if !strings.Contains(string(body), tc.needle) {
			t.Fatalf("report %s missing %q:\n%s", tc.format, tc.needle, body)
		}
	}

	// The JSON report must match a pure library run of the same spec —
	// the service adds transport, never numbers.
	resp, err := http.Get(fmt.Sprintf("%s/v1/jobs/%s/report?format=json", ts.URL, sub.ID))
	if err != nil {
		t.Fatalf("GET report json: %v", err)
	}
	served, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	rep, err := smallSpec().Experiment().Run(context.Background())
	if err != nil {
		t.Fatalf("library Run: %v", err)
	}
	want, err := rep.JSON()
	if err != nil {
		t.Fatalf("rep.JSON: %v", err)
	}
	if !bytes.Equal(served, want) {
		t.Fatal("served JSON report differs from the library run")
	}
}

func TestUnknownJobIs404(t *testing.T) {
	_, ts := startServer(t, Config{Workers: 1, QueueDepth: 2})
	for _, path := range []string{"/v1/jobs/nope", "/v1/jobs/nope/records", "/v1/jobs/nope/report"} {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound {
			t.Fatalf("GET %s = %d, want 404", path, resp.StatusCode)
		}
	}
}

func TestBadSpecIs400(t *testing.T) {
	_, ts := startServer(t, Config{Workers: 1, QueueDepth: 2})
	for name, body := range map[string]string{
		"unknown protocol": `{"protocols":["nope"],"sizes":[8],"trials":1}`,
		"no sizes":         `{"protocols":["ppl"],"sizes":[],"trials":1}`,
		"zero trials":      `{"protocols":["ppl"],"sizes":[8],"trials":0}`,
		"unknown field":    `{"protocols":["ppl"],"sizes":[8],"trials":1,"bogus":true}`,
		"bad metric":       `{"protocols":["ppl"],"sizes":[8],"trials":1,"metrics":[{"observable":"steps","agg":"exotic"}]}`,
		"not json":         `{{{`,
	} {
		resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatalf("POST (%s): %v", name, err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("POST (%s) = %d, want 400", name, resp.StatusCode)
		}
	}
}

func TestQueueFullIs429(t *testing.T) {
	// A stub executor that blocks until released keeps the worker and the
	// single queue slot pinned without timing games.
	block := make(chan struct{})
	svc := newServer(Config{Workers: 1, QueueDepth: 1}, func(j *Job) {
		j.start()
		<-block
		j.finish(nil)
	})
	ts := httptest.NewServer(svc.Handler())
	defer ts.Close()
	defer close(block)

	submit(t, ts, smallSpec()) // occupies the worker
	submit(t, ts, smallSpec()) // occupies the queue slot
	body, _ := json.Marshal(smallSpec())
	resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatalf("POST: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("POST on full queue = %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("429 without Retry-After")
	}
}

func TestReportBeforeDoneIs409(t *testing.T) {
	block := make(chan struct{})
	svc := newServer(Config{Workers: 1, QueueDepth: 2}, func(j *Job) {
		j.start()
		<-block
		j.finish(nil)
	})
	ts := httptest.NewServer(svc.Handler())
	defer ts.Close()
	defer close(block)

	sub := submit(t, ts, smallSpec())
	resp, err := http.Get(fmt.Sprintf("%s/v1/jobs/%s/report", ts.URL, sub.ID))
	if err != nil {
		t.Fatalf("GET report: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("report on unfinished job = %d, want 409", resp.StatusCode)
	}
}

func TestCacheHitJobIsByteIdenticalAndCounted(t *testing.T) {
	_, ts := startServer(t, Config{Workers: 1, QueueDepth: 4})

	sub1 := submit(t, ts, smallSpec())
	cold := fetchRecords(t, ts, sub1.ID)
	st1 := waitDone(t, ts, sub1.ID)
	if st1.CacheHits != 0 || st1.CacheMisses != 4 {
		t.Fatalf("cold job counters = %+v, want 0 hits / 4 misses", st1)
	}

	sub2 := submit(t, ts, smallSpec())
	warm := fetchRecords(t, ts, sub2.ID)
	st2 := waitDone(t, ts, sub2.ID)
	if st2.CacheHits != 4 || st2.CacheMisses != 0 {
		t.Fatalf("warm job counters = %+v, want 4 hits / 0 misses", st2)
	}
	if !bytes.Equal(cold, warm) {
		t.Fatal("cache-hit job's JSONL differs from its cold-run twin")
	}

	// /v1/stats carries the aggregate counters.
	resp, err := http.Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatalf("GET stats: %v", err)
	}
	var stats Stats
	err = json.NewDecoder(resp.Body).Decode(&stats)
	resp.Body.Close()
	if err != nil {
		t.Fatalf("decode stats: %v", err)
	}
	if stats.Cache.Hits < 4 || stats.Cache.Misses < 4 {
		t.Fatalf("stats.Cache = %+v, want >=4 hits and >=4 misses", stats.Cache)
	}
	if stats.Jobs.Done != 2 {
		t.Fatalf("stats.Jobs = %+v, want 2 done", stats.Jobs)
	}
}

func TestGracefulShutdownCompletesInFlightAndFlushesSinks(t *testing.T) {
	artDir := t.TempDir()
	svc := New(Config{Workers: 1, QueueDepth: 4, ArtifactsDir: artDir, ArtifactSegmentBytes: 1 << 20})
	ts := httptest.NewServer(svc.Handler())
	defer ts.Close()

	sub := submit(t, ts, smallSpec())

	// Shutdown immediately: the accepted job must still complete and its
	// artifact sink must be finalized before Shutdown returns.
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	if err := svc.Shutdown(ctx); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}

	j, ok := svc.store.get(sub.ID)
	if !ok {
		t.Fatalf("job %s vanished", sub.ID)
	}
	if st := j.Status(); st.State != StateDone {
		t.Fatalf("in-flight job state after drain = %s (%s)", st.State, st.Error)
	}

	// The artifact directory holds a finalized gzip JSONL segment with
	// the job's full record stream.
	entries, err := os.ReadDir(artDir)
	if err != nil {
		t.Fatalf("read artifacts dir: %v", err)
	}
	if len(entries) == 0 {
		t.Fatal("no artifact segments written")
	}
	total := 0
	for _, ent := range entries {
		recs := readGzipSegment(t, artDir+"/"+ent.Name())
		total += len(recs)
	}
	if total != 8 {
		t.Fatalf("artifact holds %d records, want 8", total)
	}

	// Draining: submissions and health must refuse.
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatalf("GET healthz: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("healthz while draining = %d, want 503", resp.StatusCode)
	}
	body, _ := json.Marshal(smallSpec())
	resp, err = http.Post(ts.URL+"/v1/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatalf("POST while draining: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("submit while draining = %d, want 503", resp.StatusCode)
	}
}

func TestCancelJob(t *testing.T) {
	block := make(chan struct{})
	svc := newServer(Config{Workers: 1, QueueDepth: 2}, func(j *Job) {
		j.start()
		select {
		case <-block:
			j.finish(nil)
		case <-j.ctx.Done():
			j.finish(j.ctx.Err())
		}
	})
	ts := httptest.NewServer(svc.Handler())
	defer ts.Close()
	defer close(block)

	sub := submit(t, ts, smallSpec())
	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/jobs/"+sub.ID, nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatalf("DELETE: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("DELETE = %d", resp.StatusCode)
	}
	st := waitDone(t, ts, sub.ID)
	if st.State != StateCanceled {
		t.Fatalf("cancelled job state = %s", st.State)
	}
}

func TestHealthzAndProtocols(t *testing.T) {
	_, ts := startServer(t, Config{Workers: 1, QueueDepth: 2})
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatalf("GET healthz: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz = %d", resp.StatusCode)
	}
	resp, err = http.Get(ts.URL + "/v1/protocols")
	if err != nil {
		t.Fatalf("GET protocols: %v", err)
	}
	var out map[string][]string
	err = json.NewDecoder(resp.Body).Decode(&out)
	resp.Body.Close()
	if err != nil {
		t.Fatalf("decode protocols: %v", err)
	}
	found := false
	for _, name := range out["protocols"] {
		if name == "ppl" {
			found = true
		}
	}
	if !found {
		t.Fatalf("protocols = %v, want ppl present", out)
	}
}
