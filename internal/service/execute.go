package service

import (
	"bytes"
	"encoding/json"
	"fmt"
	"path/filepath"
	"sync"

	"repro"
)

// executeJob runs one job cell by cell in deterministic order — protocol
// row order, then size order, trial order inside each cell — so the
// concatenated JSONL stream is byte-identical however the cells were
// satisfied (cold run, memory hit, disk hit) and whatever the worker
// count. Each cell is looked up in the content-addressed cache first;
// misses run through the Experiment streaming path and are stored back.
//
// When an artifacts directory is configured, the job's full record stream
// is additionally written through a rotating gzip JSONLSink — the
// bounded, servable artifact form — which is flushed and finalized before
// the job reaches a terminal state (graceful shutdown therefore flushes
// sinks by construction: Shutdown drains the queue, and every drained job
// closed its sink).
func (s *Server) executeJob(j *Job) {
	err := s.runCells(j)
	j.finish(err)
}

// runCells does the work of executeJob, returning the job's terminal
// error (nil for success).
func (s *Server) runCells(j *Job) error {
	var art *repro.RotatingJSONLSink
	if s.cfg.ArtifactsDir != "" {
		base := filepath.Join(s.cfg.ArtifactsDir, fmt.Sprintf("%s.jsonl", j.ID))
		sink, err := repro.CreateRotatingJSONL(base, repro.RotateOptions{
			MaxBytes: s.cfg.ArtifactSegmentBytes,
			Compress: true,
		})
		if err != nil {
			return fmt.Errorf("create artifact sink: %w", err)
		}
		art = sink
		defer art.Close()
	}

	for _, cell := range j.cells {
		if err := j.ctx.Err(); err != nil {
			return err
		}
		if cell.Skipped {
			j.skipCellDone()
			continue
		}
		data, hit := s.cache.Get(cell.Key)
		if !hit {
			var err error
			data, err = s.runCell(j, cell)
			if err != nil {
				return err
			}
			s.cache.Put(cell.Key, data)
		}
		if art != nil {
			// Replay the cell's canonical bytes through the artifact sink —
			// cached cells never re-run, but the artifact still carries the
			// full job stream.
			if err := repro.DecodeTrialRecords(bytes.NewReader(data), art.Record); err != nil {
				return fmt.Errorf("artifact sink: %w", err)
			}
		}
		j.appendCell(data, countLines(data), hit)
	}
	if art != nil {
		if err := art.Close(); err != nil {
			return fmt.Errorf("finalize artifact: %w", err)
		}
	}
	return nil
}

// runCell executes one cold cell through the Experiment streaming path
// and encodes its records canonically: trial order, one compact JSON
// object per line. json.Marshal sorts map keys, so the bytes are a pure
// function of the records — the property the content-addressed cache
// leans on.
func (s *Server) runCell(j *Job, cell cellPlan) ([]byte, error) {
	col := newCollector(j.Spec.Trials)
	err := repro.NewExperiment().
		ProtocolNames(cell.Protocol).
		Sizes(cell.RawN).
		Trials(j.Spec.Trials).
		Scenario(j.Spec.Scenario).
		Workers(s.cfg.TrialWorkers).
		Sinks(col).
		Stream(j.ctx)
	if err != nil {
		return nil, err
	}
	return col.encode()
}

// collector buffers one cell's records by trial index; records arrive in
// completion order from the worker pool, encode re-serializes them in
// trial order.
type collector struct {
	mu   sync.Mutex
	recs []*repro.TrialRecord
}

func newCollector(trials int) *collector {
	return &collector{recs: make([]*repro.TrialRecord, trials)}
}

// Record implements repro.Sink.
func (c *collector) Record(rec repro.TrialRecord) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if rec.Trial < 0 || rec.Trial >= len(c.recs) {
		return fmt.Errorf("record trial %d out of range [0,%d)", rec.Trial, len(c.recs))
	}
	c.recs[rec.Trial] = &rec
	return nil
}

// Close implements repro.Sink.
func (c *collector) Close() error { return nil }

// encode emits the canonical JSONL bytes of the cell.
func (c *collector) encode() ([]byte, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	var buf bytes.Buffer
	for t, rec := range c.recs {
		if rec == nil {
			return nil, fmt.Errorf("cell finished without a record for trial %d", t)
		}
		data, err := json.Marshal(rec)
		if err != nil {
			return nil, err
		}
		buf.Write(data)
		buf.WriteByte('\n')
	}
	return buf.Bytes(), nil
}

// countLines counts the records in a JSONL byte block.
func countLines(data []byte) int {
	return bytes.Count(data, []byte{'\n'})
}
