package service

import (
	"bytes"
	"fmt"
	"path/filepath"

	"repro"
	"repro/internal/plan"
)

// executeJob runs one job cell by cell in deterministic order — protocol
// row order, then size order, trial order inside each cell — so the
// concatenated JSONL stream is byte-identical however the cells were
// satisfied (cold run, memory hit, disk hit) and whatever the worker
// count. Each cell is looked up in the content-addressed cache first;
// misses run through the Experiment streaming path and are stored back.
//
// When an artifacts directory is configured, the job's full record stream
// is additionally written through a rotating gzip JSONLSink — the
// bounded, servable artifact form — which is flushed and finalized before
// the job reaches a terminal state (graceful shutdown therefore flushes
// sinks by construction: Shutdown drains the queue, and every drained job
// closed its sink).
func (s *Server) executeJob(j *Job) {
	err := s.runCells(j)
	j.finish(err)
}

// runCells does the work of executeJob, returning the job's terminal
// error (nil for success).
func (s *Server) runCells(j *Job) error {
	var art *repro.RotatingJSONLSink
	if s.cfg.ArtifactsDir != "" {
		base := filepath.Join(s.cfg.ArtifactsDir, fmt.Sprintf("%s.jsonl", j.ID))
		sink, err := repro.CreateRotatingJSONL(base, repro.RotateOptions{
			MaxBytes: s.cfg.ArtifactSegmentBytes,
			Compress: true,
		})
		if err != nil {
			return fmt.Errorf("create artifact sink: %w", err)
		}
		art = sink
		defer art.Close()
	}

	for _, cell := range j.cells {
		if err := j.ctx.Err(); err != nil {
			return err
		}
		if cell.Skipped {
			j.skipCellDone()
			continue
		}
		data, hit := s.cache.Get(cell.Key)
		if !hit {
			var err error
			data, err = s.runCell(j, cell)
			if err != nil {
				return err
			}
			s.cache.Put(cell.Key, data)
		}
		if art != nil {
			// Replay the cell's canonical bytes through the artifact sink —
			// cached cells never re-run, but the artifact still carries the
			// full job stream.
			if err := repro.DecodeTrialRecords(bytes.NewReader(data), art.Record); err != nil {
				return fmt.Errorf("artifact sink: %w", err)
			}
		}
		j.appendCell(data, plan.CountLines(data), hit)
	}
	if art != nil {
		if err := art.Close(); err != nil {
			return fmt.Errorf("finalize artifact: %w", err)
		}
	}
	return nil
}

// runCell executes one cold cell through the Experiment streaming path
// and encodes its records canonically via the shared plan.Collector:
// trial order, one compact JSON object per line. json.Marshal sorts map
// keys, so the bytes are a pure function of the records — the property
// the content-addressed cache (and the fabric's byte-identical merge)
// leans on.
func (s *Server) runCell(j *Job, cell cellPlan) ([]byte, error) {
	col := plan.NewCollector(0, j.Spec.Trials)
	err := repro.NewExperiment().
		ProtocolNames(cell.Protocol).
		Sizes(cell.RawN).
		Trials(j.Spec.Trials).
		Scenario(j.Spec.Scenario).
		Workers(s.cfg.TrialWorkers).
		Sinks(col).
		Stream(j.ctx)
	if err != nil {
		return nil, err
	}
	return col.Encode()
}
