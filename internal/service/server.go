package service

import (
	"context"
	"net/http"
	"sync/atomic"
	"time"
)

// Config sizes the service.
type Config struct {
	// Workers is the job worker-pool size (concurrently executing jobs);
	// 0 selects 2.
	Workers int
	// QueueDepth bounds the number of accepted-but-not-running jobs;
	// a full queue answers 429. 0 selects 16.
	QueueDepth int
	// TrialWorkers caps the per-cell trial pool (Experiment.Workers);
	// 0 selects one per core.
	TrialWorkers int
	// CacheBytes bounds the in-memory cell cache; 0 selects 256 MiB.
	CacheBytes int64
	// CacheDir, when non-empty, spills evicted cache entries to disk as
	// gzip JSONL and re-admits them on later hits.
	CacheDir string
	// ArtifactsDir, when non-empty, writes each job's full record stream
	// through a rotating gzip JSONLSink under this directory.
	ArtifactsDir string
	// ArtifactSegmentBytes bounds artifact segments; 0 selects the sink
	// default (64 MiB).
	ArtifactSegmentBytes int64
	// JobTimeout bounds each job's wall clock (queue wait included) when
	// the spec doesn't set its own timeout_ms; 0 means unbounded. A job
	// past its deadline finishes failed with "job deadline exceeded".
	JobTimeout time.Duration
}

// Server is the experiment service: job store + bounded queue + content-
// addressed cell cache behind an http.Handler. Construct with New, serve
// Handler() however you like (http.Server, httptest), and Shutdown to
// drain.
type Server struct {
	cfg    Config
	store  *jobStore
	cache  *CellCache
	queue  *queue
	mux    *http.ServeMux
	base   context.Context
	cancel context.CancelFunc
	// draining flips once Shutdown begins: health turns unready and
	// submissions are refused at the HTTP layer too.
	draining atomic.Bool
	// Shed-load counters: submissions refused by backpressure (429, the
	// queue is full — retry) vs. by lifecycle (503, the server is going
	// away — find another). The distinction is the client's retry policy,
	// so /v1/stats reports them separately.
	shedFull     atomic.Int64
	shedDraining atomic.Int64
}

// New builds a ready-to-serve service.
func New(cfg Config) *Server { return newServer(cfg, nil) }

// newServer is New with a substitutable job executor — the test seam for
// exercising queue backpressure and report-before-done without timing
// games. nil exec selects the real one.
func newServer(cfg Config, exec func(*Job)) *Server {
	if cfg.Workers <= 0 {
		cfg.Workers = 2
	}
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = 16
	}
	base, cancel := context.WithCancel(context.Background())
	s := &Server{
		cfg:    cfg,
		store:  newJobStore(),
		cache:  NewCellCache(cfg.CacheBytes, cfg.CacheDir),
		base:   base,
		cancel: cancel,
	}
	if exec == nil {
		exec = s.executeJob
	}
	s.queue = newQueue(cfg.Workers, cfg.QueueDepth, exec)
	s.mux = s.routes()
	return s
}

// Handler returns the HTTP surface.
func (s *Server) Handler() http.Handler { return s.mux }

// Shutdown drains the service: no new jobs are accepted, queued and
// running jobs complete (their sinks flushed), and the call returns when
// the workers are idle. If ctx expires first, every remaining job is
// cancelled and the deadline error returned. Callers shut the HTTP
// listener down first (http.Server.Shutdown), then the service.
func (s *Server) Shutdown(ctx context.Context) error {
	s.draining.Store(true)
	return s.queue.Shutdown(ctx, s.cancel)
}

// Stats is the GET /v1/stats payload.
type Stats struct {
	Cache CacheStats `json:"cache"`
	Queue QueueStats `json:"queue"`
	Jobs  JobsStats  `json:"jobs"`
	Work  WorkGauges `json:"work"`
	Shed  ShedStats  `json:"shed"`
}

// ShedStats counts submissions the server refused, split by what the
// refusal tells the client: QueueFull (429) means retry with backoff,
// Draining (503) means this instance is going away.
type ShedStats struct {
	QueueFull int64 `json:"queue_full"`
	Draining  int64 `json:"draining"`
}

// WorkGauges are instantaneous work-unit gauges, one granularity below
// the job/lease counters: QueueDepth counts units planned but not yet
// started, InFlight counts units executing right now. The service
// measures cells; the fabric coordinator reuses the type for shards on
// its own stats endpoint, so fleet dashboards read one shape at every
// tier.
type WorkGauges struct {
	QueueDepth int `json:"queue_depth"`
	InFlight   int `json:"in_flight"`
}

// JobsStats summarizes the job store by state.
type JobsStats struct {
	Total    int `json:"total"`
	Queued   int `json:"queued"`
	Running  int `json:"running"`
	Done     int `json:"done"`
	Failed   int `json:"failed"`
	Canceled int `json:"canceled"`
}

// Stats snapshots the service counters.
func (s *Server) Stats() Stats {
	js := JobsStats{}
	w := WorkGauges{}
	for _, j := range s.store.list() {
		js.Total++
		st := j.Status()
		switch st.State {
		case StateQueued:
			js.Queued++
			w.QueueDepth += st.CellsTotal - st.CellsDone
		case StateRunning:
			js.Running++
			// A running job executes exactly one cell at a time; the rest
			// of its remaining cells are queued work.
			if rem := st.CellsTotal - st.CellsDone; rem > 0 {
				w.InFlight++
				w.QueueDepth += rem - 1
			}
		case StateDone:
			js.Done++
		case StateFailed:
			js.Failed++
		case StateCanceled:
			js.Canceled++
		}
	}
	return Stats{
		Cache: s.cache.Stats(),
		Queue: s.queue.Stats(),
		Jobs:  js,
		Work:  w,
		Shed: ShedStats{
			QueueFull: s.shedFull.Load(),
			Draining:  s.shedDraining.Load(),
		},
	}
}
