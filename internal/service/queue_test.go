package service

import (
	"context"
	"sync/atomic"
	"testing"
	"time"
)

// stubJob builds a minimal job for queue-level tests.
func stubJob(t *testing.T) *Job {
	t.Helper()
	return newJob(context.Background(), "j-test", JobSpec{}, nil, 0)
}

func TestQueueBackpressure(t *testing.T) {
	block := make(chan struct{})
	started := make(chan struct{}, 8)
	q := newQueue(1, 1, func(j *Job) {
		started <- struct{}{}
		<-block
		j.finish(nil)
	})
	// First job occupies the worker…
	if err := q.Submit(stubJob(t)); err != nil {
		t.Fatalf("submit 1: %v", err)
	}
	<-started
	// …second fills the queue slot…
	if err := q.Submit(stubJob(t)); err != nil {
		t.Fatalf("submit 2: %v", err)
	}
	// …third must bounce.
	if err := q.Submit(stubJob(t)); err != ErrQueueFull {
		t.Fatalf("submit 3 = %v, want ErrQueueFull", err)
	}
	close(block)
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := q.Shutdown(ctx, nil); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	if err := q.Submit(stubJob(t)); err != ErrShuttingDown {
		t.Fatalf("submit after shutdown = %v, want ErrShuttingDown", err)
	}
}

func TestQueueShutdownDrainsAcceptedJobs(t *testing.T) {
	var ran atomic.Int32
	q := newQueue(1, 4, func(j *Job) {
		time.Sleep(10 * time.Millisecond)
		ran.Add(1)
		j.finish(nil)
	})
	for i := 0; i < 3; i++ {
		if err := q.Submit(stubJob(t)); err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := q.Shutdown(ctx, nil); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	if got := ran.Load(); got != 3 {
		t.Fatalf("drain ran %d jobs, want 3", got)
	}
}

func TestQueueShutdownDeadlineCancelsJobs(t *testing.T) {
	base, cancelAll := context.WithCancel(context.Background())
	q := newQueue(1, 4, func(j *Job) {
		<-j.ctx.Done() // a job that only ends by cancellation
		j.finish(j.ctx.Err())
	})
	running := newJob(base, "j-running", JobSpec{}, nil, 0)
	queued := newJob(base, "j-queued", JobSpec{}, nil, 0)
	if err := q.Submit(running); err != nil {
		t.Fatalf("submit running: %v", err)
	}
	if err := q.Submit(queued); err != nil {
		t.Fatalf("submit queued: %v", err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	err := q.Shutdown(ctx, cancelAll)
	if err != context.DeadlineExceeded {
		t.Fatalf("Shutdown = %v, want DeadlineExceeded", err)
	}
	// Both jobs must have reached a terminal state: the running one via
	// base-context cancellation, the queued one either way.
	for _, j := range []*Job{running, queued} {
		st := j.Status()
		if !st.State.terminal() {
			t.Fatalf("job %s left in state %s after deadline shutdown", st.ID, st.State)
		}
	}
}
