package service

import (
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

// waitStats polls the service counters until cond holds or the deadline
// passes, returning the last snapshot.
func waitStats(t *testing.T, svc *Server, what string, cond func(Stats) bool) Stats {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		st := svc.Stats()
		if cond(st) {
			return st
		}
		if time.Now().After(deadline) {
			t.Fatalf("stats never reached %s; last: %+v", what, st)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

func TestWorkGauges(t *testing.T) {
	// A blocking executor pins one job mid-execution so the gauges are
	// deterministic: the running job holds one cell in flight and queues
	// the rest, the queued job queues all of its cells.
	block := make(chan struct{})
	svc := newServer(Config{Workers: 1, QueueDepth: 2}, func(j *Job) {
		j.start()
		<-block
		j.finish(nil)
	})
	ts := httptest.NewServer(svc.Handler())
	defer ts.Close()

	submit(t, ts, smallSpec()) // 4 cells, picked up and blocked
	submit(t, ts, smallSpec()) // 4 cells, waiting in the queue

	st := waitStats(t, svc, "1 in flight", func(st Stats) bool {
		return st.Work.InFlight == 1
	})
	if st.Work.QueueDepth != 7 {
		t.Fatalf("Work = %+v, want QueueDepth 7 (3 remaining + 4 queued)", st.Work)
	}

	// The /v1/stats JSON surface carries the gauges.
	resp, err := http.Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatalf("GET stats: %v", err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if !strings.Contains(string(body), `"queue_depth"`) || !strings.Contains(string(body), `"in_flight"`) {
		t.Fatalf("stats JSON missing work gauges: %s", body)
	}

	close(block)
	waitStats(t, svc, "drained", func(st Stats) bool {
		return st.Jobs.Done == 2 && st.Work.InFlight == 0 && st.Work.QueueDepth == 0
	})
}
