package war

import (
	"testing"

	"repro/internal/population"
	"repro/internal/xrand"
)

// agent is the minimal protocol state for war-only simulations: the leader
// bit plus the Algorithm 5 variables. Leader creation is disabled, matching
// the paper's auxiliary protocol P'_PL used in Lemma 4.11.
type agent struct {
	leader bool
	w      State
}

func warTransition(l, r agent) (agent, agent) {
	Step(&l.leader, &r.leader, &l.w, &r.w)
	return l, r
}

func TestLeaderFiresLiveAsInitiator(t *testing.T) {
	// Lines 51-52 fire a live bullet at l and shield it; because the
	// pseudocode executes sequentially, lines 58-60 then move the fresh
	// bullet to the responder within the same interaction.
	l := agent{leader: true, w: State{Signal: true}}
	r := agent{}
	l2, r2 := warTransition(l, r)
	if !l2.w.Shield || l2.w.Signal {
		t.Fatalf("initiator leader after firing: %+v", l2.w)
	}
	if l2.w.Bullet != None || r2.w.Bullet != Live {
		t.Fatalf("fresh bullet placement: l=%v r=%v", l2.w.Bullet, r2.w.Bullet)
	}
}

func TestLeaderFiresDummyAsResponder(t *testing.T) {
	l := agent{}
	r := agent{leader: true, w: State{Signal: true, Shield: true}}
	_, r2 := warTransition(l, r)
	if r2.w.Bullet != Dummy || r2.w.Shield || r2.w.Signal {
		t.Fatalf("responder leader with signal: %+v", r2.w)
	}
}

func TestLiveBulletKillsUnshieldedLeader(t *testing.T) {
	l := agent{w: State{Bullet: Live}}
	r := agent{leader: true}
	l2, r2 := warTransition(l, r)
	if r2.leader {
		t.Fatal("unshielded leader survived a live bullet")
	}
	if l2.w.Bullet != None {
		t.Fatal("bullet survived hitting a leader")
	}
}

func TestLiveBulletBlockedByShield(t *testing.T) {
	l := agent{w: State{Bullet: Live}}
	r := agent{leader: true, w: State{Shield: true}}
	l2, r2 := warTransition(l, r)
	if !r2.leader {
		t.Fatal("shielded leader was killed")
	}
	if l2.w.Bullet != None {
		t.Fatal("bullet survived hitting a shielded leader")
	}
}

func TestDummyBulletNeverKills(t *testing.T) {
	l := agent{w: State{Bullet: Dummy}}
	r := agent{leader: true}
	_, r2 := warTransition(l, r)
	if !r2.leader {
		t.Fatal("dummy bullet killed a leader")
	}
}

func TestBulletMovesRight(t *testing.T) {
	l := agent{w: State{Bullet: Live}}
	r := agent{}
	l2, r2 := warTransition(l, r)
	if l2.w.Bullet != None || r2.w.Bullet != Live {
		t.Fatalf("bullet did not move right: l=%+v r=%+v", l2.w, r2.w)
	}
}

func TestBulletAbsorbedByExistingBullet(t *testing.T) {
	l := agent{w: State{Bullet: Live}}
	r := agent{w: State{Bullet: Dummy}}
	l2, r2 := warTransition(l, r)
	if l2.w.Bullet != None {
		t.Fatal("left bullet not absorbed")
	}
	if r2.w.Bullet != Dummy {
		t.Fatalf("right bullet overwritten: %v", r2.w.Bullet)
	}
}

func TestBulletDisablesSignal(t *testing.T) {
	l := agent{w: State{Bullet: Dummy}}
	r := agent{w: State{Signal: true}}
	l2, r2 := warTransition(l, r)
	if r2.w.Signal {
		t.Fatal("bullet did not disable the bullet-absence signal")
	}
	// The signal must not have jumped over the bullet to l either.
	if l2.w.Signal {
		t.Fatal("signal crossed a bullet")
	}
}

func TestSignalPropagatesLeft(t *testing.T) {
	l := agent{}
	r := agent{w: State{Signal: true}}
	l2, r2 := warTransition(l, r)
	if !l2.w.Signal {
		t.Fatal("signal did not propagate left")
	}
	if !r2.w.Signal {
		t.Fatal("signal should persist at the right agent")
	}
}

func TestLeaderSeedsSignalInLeftNeighbor(t *testing.T) {
	l := agent{}
	r := agent{leader: true}
	l2, _ := warTransition(l, r)
	if !l2.w.Signal {
		t.Fatal("leader did not seed a bullet-absence signal in its left neighbor")
	}
}

func TestKilledLeaderDoesNotSeedSignal(t *testing.T) {
	// Line 62 reads r.leader after the bullet check: a leader killed in
	// this interaction must not seed a signal.
	l := agent{w: State{Bullet: Live}}
	r := agent{leader: true}
	l2, _ := warTransition(l, r)
	if l2.w.Signal {
		t.Fatal("killed leader seeded a signal")
	}
}

func TestArmIsPeacefulByConstruction(t *testing.T) {
	s := Arm()
	if s.Bullet != Live || !s.Shield || s.Signal {
		t.Fatalf("Arm() = %+v", s)
	}
}

func TestDistToLeftLeader(t *testing.T) {
	tests := []struct {
		name   string
		leader []bool
		i      int
		want   int
	}{
		{"self", []bool{true, false, false}, 0, 0},
		{"one away", []bool{true, false, false}, 1, 1},
		{"wraps", []bool{false, false, true}, 1, 2},
		{"none", []bool{false, false, false}, 1, -1},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := DistToLeftLeader(tt.i, tt.leader); got != tt.want {
				t.Fatalf("got %d, want %d", got, tt.want)
			}
		})
	}
}

func TestPeaceful(t *testing.T) {
	leader := []bool{true, false, false, false}
	shielded := []State{{Shield: true}, {}, {Bullet: Live}, {}}
	if !Peaceful(2, leader, shielded) {
		t.Fatal("bullet with shielded left leader and no signals should be peaceful")
	}
	unshielded := []State{{}, {}, {Bullet: Live}, {}}
	if Peaceful(2, leader, unshielded) {
		t.Fatal("bullet with unshielded left leader should not be peaceful")
	}
	signal := []State{{Shield: true}, {Signal: true}, {Bullet: Live}, {}}
	if Peaceful(2, leader, signal) {
		t.Fatal("signal between leader and bullet should break peace")
	}
	noLeader := []bool{false, false, false, false}
	if Peaceful(2, noLeader, shielded) {
		t.Fatal("bullet without any leader cannot be peaceful")
	}
}

// leaders builds the leader-bit slice of a configuration.
func leaders(cfg []agent) []bool {
	out := make([]bool, len(cfg))
	for i, a := range cfg {
		out[i] = a.leader
	}
	return out
}

func warStates(cfg []agent) []State {
	out := make([]State, len(cfg))
	for i, a := range cfg {
		out[i] = a.w
	}
	return out
}

func countLeaders(cfg []agent) int {
	n := 0
	for _, a := range cfg {
		if a.leader {
			n++
		}
	}
	return n
}

// TestEliminationConvergesToOneLeader covers Lemma 4.11: starting from a
// C_PB configuration with k >= 1 leaders, the war reaches exactly one
// leader and never zero.
func TestEliminationConvergesToOneLeader(t *testing.T) {
	tests := []struct {
		name    string
		n       int
		leaders int
	}{
		{"two leaders", 16, 2},
		{"quarter leaders", 16, 4},
		{"all leaders", 16, 16},
		{"odd ring", 15, 5},
		{"large all leaders", 64, 64},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			for seed := uint64(0); seed < 5; seed++ {
				rng := xrand.New(seed)
				cfg := make([]agent, tt.n)
				for i := 0; i < tt.leaders; i++ {
					cfg[i] = agent{leader: true, w: Arm()}
				}
				e := population.NewEngine(population.DirectedRing(tt.n), warTransition, rng)
				e.SetStates(cfg)
				e.TrackLeaders(func(a agent) bool { return a.leader })

				maxSteps := uint64(tt.n) * uint64(tt.n) * 200
				_, ok := e.RunUntil(func(c []agent) bool {
					return countLeaders(c) == 1
				}, tt.n, maxSteps)
				if !ok {
					t.Fatalf("seed %d: never reached one leader in %d steps (now %d leaders)",
						seed, maxSteps, e.LeaderCount())
				}
				// Keep running: the count must stay pinned at one.
				e.Run(uint64(tt.n) * uint64(tt.n) * 20)
				if got := countLeaders(e.Config()); got != 1 {
					t.Fatalf("seed %d: leader count left 1, now %d", seed, got)
				}
			}
		})
	}
}

// TestNeverKillsLastLeaderFromCPB checks the closure of C_PB (Lemma 4.1 +
// 4.2): random peaceful configurations never lose their last leader.
func TestNeverKillsLastLeaderFromCPB(t *testing.T) {
	const n = 12
	rng := xrand.New(77)
	for trial := 0; trial < 30; trial++ {
		// Generate a random configuration, then re-sample until peaceful.
		var cfg []agent
		for {
			cfg = make([]agent, n)
			for i := range cfg {
				cfg[i] = agent{
					leader: rng.Intn(3) == 0,
					w: State{
						Bullet: Bullet(rng.Intn(3)),
						Shield: rng.Bool(),
						Signal: rng.Bool(),
					},
				}
			}
			if AllLiveBulletsPeaceful(leaders(cfg), warStates(cfg)) {
				break
			}
		}
		e := population.NewEngine(population.DirectedRing(n), warTransition, rng.Split())
		e.SetStates(cfg)
		for s := 0; s < 40000; s++ {
			e.Step()
			if countLeaders(e.Config()) == 0 {
				t.Fatalf("trial %d: all leaders died at step %d", trial, s)
			}
		}
	}
}

// TestCPBIsClosed verifies Lemma 4.1 empirically: once every live bullet is
// peaceful, it stays that way under arbitrary scheduling.
func TestCPBIsClosed(t *testing.T) {
	const n = 10
	rng := xrand.New(5)
	cfg := make([]agent, n)
	cfg[0] = agent{leader: true, w: Arm()}
	cfg[4] = agent{leader: true, w: Arm()}
	e := population.NewEngine(population.DirectedRing(n), warTransition, rng)
	e.SetStates(cfg)
	for s := 0; s < 30000; s++ {
		e.Step()
		c := e.Config()
		if !AllLiveBulletsPeaceful(leaders(c), warStates(c)) {
			t.Fatalf("left C_PB at step %d", s)
		}
	}
}

func BenchmarkWarStep(b *testing.B) {
	l := agent{leader: true, w: State{Signal: true}}
	r := agent{w: State{Signal: true}}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		warTransition(l, r)
	}
}

// TestPeacefulWithLeaderMatchesGeneral pins the single-pass C_PB residual
// of the convergence trackers to the general per-bullet definition on
// random single-leader configurations: the two must agree everywhere.
func TestPeacefulWithLeaderMatchesGeneral(t *testing.T) {
	rng := xrand.New(42)
	for trial := 0; trial < 5000; trial++ {
		n := 2 + rng.Intn(12)
		k := rng.Intn(n)
		leader := make([]bool, n)
		leader[k] = true
		st := make([]State, n)
		for i := range st {
			st[i] = State{
				Bullet: Bullet(rng.Intn(3)),
				Shield: rng.Bool(),
				Signal: rng.Bool(),
			}
		}
		want := AllLiveBulletsPeaceful(leader, st)
		got := PeacefulWithLeader(st, k, func(s State) State { return s })
		if got != want {
			t.Fatalf("n=%d k=%d: single-pass %v, general %v\nstates: %+v", n, k, got, want, st)
		}
	}
}
