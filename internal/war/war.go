// Package war implements the bullets-and-shields leader elimination of the
// paper's Algorithm 5 (EliminateLeaders), taken unmodified from Yokota,
// Sudo, Masuzawa (2021) [28]. It decreases the number of leaders on a
// directed ring to exactly one within O(n^2) expected steps without ever
// killing the last leader, once every live bullet is "peaceful".
//
// The module is shared by the paper's protocol (internal/core) and by the
// baseline protocols that use the same war for their elimination phase.
package war

// Bullet is the bullet slot of an agent: empty, a dummy bullet (cannot
// kill), or a live bullet (kills an unshielded leader).
type Bullet uint8

const (
	None Bullet = iota
	Dummy
	Live
)

// String returns a short human-readable bullet name.
func (b Bullet) String() string {
	switch b {
	case None:
		return "-"
	case Dummy:
		return "dummy"
	case Live:
		return "live"
	default:
		return "invalid"
	}
}

// State holds the Algorithm 5 variables of one agent other than its leader
// bit: bullet ∈ {0,1,2}, shield ∈ {0,1}, and signalB ∈ {0,1} (the
// bullet-absence signal that propagates right to left).
type State struct {
	Bullet Bullet
	Shield bool
	Signal bool
}

// Arm returns the war state adopted by a freshly created leader (lines 6
// and 18 of Algorithms 2–3): it fires a live bullet, raises its shield and
// clears any bullet-absence signal, which makes the new bullet peaceful.
func Arm() State {
	return State{Bullet: Live, Shield: true}
}

// PackBits is the width of Pack's encoding.
const PackBits = 4

// Pack encodes the war state into PackBits bits: bullet in the low two,
// then shield, then signalB. It is a bijection on valid states, used by
// the spec packages' fixed-width state codecs.
func Pack(s State) uint64 {
	v := uint64(s.Bullet)
	if s.Shield {
		v |= 1 << 2
	}
	if s.Signal {
		v |= 1 << 3
	}
	return v
}

// Unpack inverts Pack.
func Unpack(v uint64) State {
	return State{
		Bullet: Bullet(v & 3),
		Shield: v&(1<<2) != 0,
		Signal: v&(1<<3) != 0,
	}
}

// Step applies EliminateLeaders (Algorithm 5, lines 51–62) to an
// interaction with initiator l and responder r. Leader bits are passed by
// pointer because a live bullet may kill the responder. Statements execute
// sequentially with read-your-writes semantics, exactly as in the
// pseudocode.
func Step(lLeader, rLeader *bool, l, r *State) {
	// Lines 51–52: a leader holding a bullet-absence signal that interacts
	// with its right neighbor fires a live bullet and becomes shielded.
	if *lLeader && l.Signal {
		l.Bullet, l.Shield, l.Signal = Live, true, false
	}
	// Lines 53–54: a leader holding the signal that interacts with its left
	// neighbor fires a dummy bullet and drops its shield. The two cases
	// extract one fair coin flip from the uniformly random scheduler.
	if *rLeader && r.Signal {
		r.Bullet, r.Shield, r.Signal = Dummy, false, false
	}
	switch {
	case l.Bullet != None && *rLeader:
		// Lines 55–57: the bullet reaches a leader and disappears; a live
		// bullet kills the leader unless it is shielded.
		if l.Bullet == Live && !r.Shield {
			*rLeader = false
		}
		l.Bullet = None
	case l.Bullet != None:
		// Lines 58–61: the bullet moves right unless the right agent already
		// carries one (then it is absorbed); either way it disables any
		// bullet-absence signal at the right agent.
		if r.Bullet == None {
			r.Bullet = l.Bullet
		}
		l.Bullet = None
		r.Signal = false
	}
	// Line 62: the bullet-absence signal propagates right to left, and a
	// leader (still alive after the bullet check) seeds it in its left
	// neighbor.
	if r.Signal || *rLeader {
		l.Signal = true
	}
}

// DistToLeftLeader returns d_LL(i): the distance from agent i to its
// nearest left leader (0 if i itself is a leader), or -1 when the ring has
// no leader.
func DistToLeftLeader(i int, leader []bool) int {
	n := len(leader)
	for j := 0; j < n; j++ {
		if leader[((i-j)%n+n)%n] {
			return j
		}
	}
	return -1
}

// Peaceful reports whether a live bullet located at agent i is peaceful
// (Section 4.1): its nearest left leader exists and is shielded, and no
// agent between that leader and the bullet (inclusive) carries a
// bullet-absence signal. A peaceful bullet can never kill the last leader.
func Peaceful(i int, leader []bool, st []State) bool {
	d := DistToLeftLeader(i, leader)
	if d < 0 {
		return false
	}
	n := len(leader)
	if !st[((i-d)%n+n)%n].Shield {
		return false
	}
	for j := 0; j <= d; j++ {
		if st[((i-j)%n+n)%n].Signal {
			return false
		}
	}
	return true
}

// PeacefulWithLeader reports whether every live bullet is peaceful on a
// ring whose unique leader sits at index k — the C_PB residual of the
// incremental convergence trackers, which only consult it once their local
// counters certify exactly one leader. Unlike the general Peaceful (which
// re-walks to the nearest left leader per bullet, O(n) each), a single
// clockwise pass from the leader suffices: a live bullet at offset d is
// peaceful iff the leader is shielded and no bullet-absence signal sits at
// offsets 0..d, so it is enough to remember whether a signal has been seen
// yet. cfg is generic over the protocol state; get projects out the war
// variables.
func PeacefulWithLeader[T any](cfg []T, k int, get func(T) State) bool {
	ok, _ := PeacefulPrefix(cfg, k, get)
	return ok
}

// PeacefulPrefix is PeacefulWithLeader with a failure witness: on a
// non-peaceful ring it also returns the clockwise offset d (from the
// leader at k) of the first offending live bullet. The verdict up to that
// point read only the leader's shield and the war variables of the agents
// at offsets 0..d, so it keeps failing as long as none of those agents —
// nor the leader — changes state; incremental convergence trackers use
// this interval as the residual's re-check trigger. On a peaceful ring the
// offset is -1.
func PeacefulPrefix[T any](cfg []T, k int, get func(T) State) (bool, int) {
	n := len(cfg)
	shield := get(cfg[k]).Shield
	seenSignal := false
	for off := 0; off < n; off++ {
		s := get(cfg[(k+off)%n])
		if s.Signal {
			seenSignal = true
		}
		if s.Bullet == Live && (!shield || seenSignal) {
			return false, off
		}
	}
	return true, -1
}

// AllLiveBulletsPeaceful reports whether the configuration is in C_PB: at
// least one leader exists and every live bullet is peaceful.
func AllLiveBulletsPeaceful(leader []bool, st []State) bool {
	hasLeader := false
	for _, l := range leader {
		if l {
			hasLeader = true
			break
		}
	}
	if !hasLeader {
		return false
	}
	for i, s := range st {
		if s.Bullet == Live && !Peaceful(i, leader, st) {
			return false
		}
	}
	return true
}
