// Package trace provides observability for P_PL executions: exact event
// counters fed by the engine's observer hook, plus periodic configuration
// sampling for in-flight quantities (tokens, signals, bullets, modes).
// The collectors quantify which phase of the protocol an execution spends
// its steps in — detection, elimination, or construction — and back the
// per-phase accounting reported by cmd/ringsim -stats.
package trace

import (
	"fmt"
	"strings"

	"repro/internal/core"
	"repro/internal/war"
)

// Events counts exact state transitions observed at agents.
type Events struct {
	// LeaderCreations counts follower→leader flips (lines 6/18 of the
	// paper, the detection machinery firing).
	LeaderCreations uint64
	// LeaderKills counts leader→follower flips (live bullets landing).
	LeaderKills uint64
	// LiveFired and DummyFired count bullet slots arming at a leader.
	LiveFired  uint64
	DummyFired uint64
	// DetectEntries counts construction→detection mode flips.
	DetectEntries uint64
}

// Collector accumulates Events; install Observe on a
// population.Engine[core.State].
type Collector struct {
	params core.Params
	ev     Events
}

// NewCollector returns a collector for executions under p.
func NewCollector(p core.Params) *Collector {
	return &Collector{params: p}
}

// Observe is the engine observer: it compares an agent's state before and
// after each interaction it took part in.
func (c *Collector) Observe(_ int, before, after core.State) {
	if !before.Leader && after.Leader {
		c.ev.LeaderCreations++
	}
	if before.Leader && !after.Leader {
		c.ev.LeaderKills++
	}
	// A fire is the consumption of a bullet-absence signal at a leader
	// (lines 51–54); the fired live bullet leaves the initiator within the
	// same interaction, so slot-watching cannot see it. The shield after
	// the interaction tells live (raised) from dummy (dropped). Fires in
	// the same interaction as the leader's own death are counted as kills
	// only.
	if before.Leader && after.Leader && before.War.Signal && !after.War.Signal {
		if after.War.Shield {
			c.ev.LiveFired++
		} else {
			c.ev.DummyFired++
		}
	}
	if c.params.Mode(before) == core.Construct && c.params.Mode(after) == core.Detect {
		c.ev.DetectEntries++
	}
}

// Events returns the counters accumulated so far.
func (c *Collector) Events() Events { return c.ev }

// Sample is a snapshot of in-flight protocol quantities.
type Sample struct {
	Leaders    int
	Tokens     int // black + white tokens in flight
	SignalsR   int // clockwise resetting signals
	SignalsB   int // bullet-absence signals
	Bullets    int
	DetectMode int // agents currently in detection mode
	MeanClock  float64
}

// Snapshot computes a Sample of the configuration.
func Snapshot(p core.Params, cfg []core.State) Sample {
	var s Sample
	clockSum := 0
	for _, a := range cfg {
		if a.Leader {
			s.Leaders++
		}
		if !a.TokB.None() {
			s.Tokens++
		}
		if !a.TokW.None() {
			s.Tokens++
		}
		if a.SignalR > 0 {
			s.SignalsR++
		}
		if a.War.Signal {
			s.SignalsB++
		}
		if a.War.Bullet != war.None {
			s.Bullets++
		}
		if p.Mode(a) == core.Detect {
			s.DetectMode++
		}
		clockSum += int(a.Clock)
	}
	s.MeanClock = float64(clockSum) / float64(len(cfg))
	return s
}

// Format renders events and a final sample as an aligned text block.
func Format(ev Events, s Sample) string {
	var b strings.Builder
	fmt.Fprintf(&b, "leader creations : %d\n", ev.LeaderCreations)
	fmt.Fprintf(&b, "leader kills     : %d\n", ev.LeaderKills)
	fmt.Fprintf(&b, "live fired       : %d\n", ev.LiveFired)
	fmt.Fprintf(&b, "dummy fired      : %d\n", ev.DummyFired)
	fmt.Fprintf(&b, "detect entries   : %d\n", ev.DetectEntries)
	fmt.Fprintf(&b, "final leaders    : %d\n", s.Leaders)
	fmt.Fprintf(&b, "tokens in flight : %d\n", s.Tokens)
	fmt.Fprintf(&b, "signals (R/B)    : %d/%d\n", s.SignalsR, s.SignalsB)
	fmt.Fprintf(&b, "bullets in flight: %d\n", s.Bullets)
	fmt.Fprintf(&b, "detect-mode agents: %d (mean clock %.1f)\n", s.DetectMode, s.MeanClock)
	return b.String()
}
