package trace

import (
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/population"
	"repro/internal/war"
	"repro/internal/xrand"
)

func runWithCollector(t *testing.T, p core.Params, cfg []core.State, steps uint64, seed uint64) (*Collector, []core.State) {
	t.Helper()
	pr := core.New(p)
	eng := population.NewEngine(population.DirectedRing(p.N), pr.Step, xrand.New(seed))
	eng.SetStates(cfg)
	col := NewCollector(p)
	eng.SetObserver(col.Observe)
	eng.Run(steps)
	return col, eng.Snapshot()
}

func TestCreationsAndKillsBalance(t *testing.T) {
	p := core.NewParams(16)
	col, final := runWithCollector(t, p, p.AllLeaders(), 200000, 1)
	ev := col.Events()
	if ev.LeaderKills == 0 {
		t.Fatal("elimination from all-leaders produced no kills")
	}
	// leaders(final) = leaders(init) + creations − kills.
	want := 16 + int(ev.LeaderCreations) - int(ev.LeaderKills)
	if got := core.LeaderCount(final); got != want {
		t.Fatalf("leader bookkeeping: final %d, init+creations−kills = %d", got, want)
	}
}

func TestNoEventsInSafeConfiguration(t *testing.T) {
	p := core.NewParams(16)
	col, final := runWithCollector(t, p, p.PerfectConfig(0, 0), 200000, 2)
	ev := col.Events()
	if ev.LeaderCreations != 0 || ev.LeaderKills != 0 {
		t.Fatalf("safe execution had creations=%d kills=%d", ev.LeaderCreations, ev.LeaderKills)
	}
	// The unique leader keeps firing — both kinds appear over a long run.
	if ev.LiveFired == 0 || ev.DummyFired == 0 {
		t.Fatalf("steady-state war silent: live=%d dummy=%d", ev.LiveFired, ev.DummyFired)
	}
	if core.LeaderCount(final) != 1 {
		t.Fatal("leader lost in safe run")
	}
}

func TestDetectEntriesOnLeaderlessRun(t *testing.T) {
	p := core.NewParams(16)
	cfg := p.NoLeaderAligned()
	for i := range cfg {
		cfg[i].Clock = 0 // cold start: modes must climb
	}
	col, _ := runWithCollector(t, p, cfg, 300000, 3)
	if col.Events().DetectEntries == 0 {
		t.Fatal("no detection-mode entries on a leaderless cold start")
	}
}

func TestSnapshotCounts(t *testing.T) {
	p := core.NewParams(16)
	cfg := p.PerfectConfig(0, 0)
	cfg[1].TokB = core.Token{Pos: 2, Bit: 1}
	cfg[2].TokW = core.Token{Pos: -1, Bit: 0}
	cfg[3].SignalR = 5
	cfg[4].War.Signal = true
	cfg[5].War.Bullet = war.Dummy
	cfg[6].Clock = uint16(p.KappaMax)
	s := Snapshot(p, cfg)
	if s.Leaders != 1 || s.Tokens != 2 || s.SignalsR != 1 || s.SignalsB != 1 || s.Bullets != 1 || s.DetectMode != 1 {
		t.Fatalf("snapshot: %+v", s)
	}
	if s.MeanClock <= 0 {
		t.Fatalf("mean clock: %v", s.MeanClock)
	}
}

func TestFormat(t *testing.T) {
	out := Format(Events{LeaderCreations: 3}, Sample{Leaders: 1})
	for _, want := range []string{"leader creations : 3", "final leaders    : 1"} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q in:\n%s", want, out)
		}
	}
}
