// Package sched provides arc schedulers: the distribution the engine
// draws interaction arcs from, step by step. The default population
// model uses a uniform-random scheduler; the implementations here widen
// that to adversarial regimes — per-arc bias (hot spots, ramps) and
// periodic eclipses of a contiguous arc interval — while preserving the
// engine's batched-draw discipline (one Fill call amortizes per-draw
// overhead exactly like xrand.FillIntn).
//
// The contract is step-indexed and serial: a scheduler is a pure
// function of (step index, RNG stream position), so a batch Fill for
// steps [s, s+k) draws exactly the same RNG stream as k successive
// single-element Fills. Phase changes (an eclipse opening or closing)
// happen only at steps announced by NextTransition, which lets the
// engine clamp its batches so no batch straddles a distribution change.
//
// Schedulers are per-trial values: alias tables and phase state are
// built once per trial and never shared across goroutines.
package sched

import (
	"math"

	"repro/internal/xrand"
)

// A Scheduler chooses, for each step index, which arc interacts next.
//
// Fill writes len(out) arc indices for the consecutive steps
// [step, step+len(out)). The caller guarantees the whole batch lies in
// one phase: step+len(out) <= NextTransition(step). Draws must consume
// the RNG serially so batch boundaries never change the stream.
//
// NextTransition returns the smallest step index > step at which the
// arc distribution changes, or math.MaxUint64 if it never does.
//
// Phase reports the epoch ordinal in effect at step (0 before the first
// transition, incrementing at each one) and whether the phase is an
// eclipse (some arcs are dead).
type Scheduler interface {
	Fill(rng *xrand.RNG, step uint64, out []int32)
	NextTransition(step uint64) uint64
	Phase(step uint64) (epoch int, eclipsed bool)
}

// Never is the NextTransition value of schedulers whose distribution is
// constant over the whole run.
const Never = math.MaxUint64

// Uniform is the default scheduler: every arc equally likely at every
// step. Its Fill delegates to xrand.FillIntn, so a Uniform scheduler
// reproduces the engine's historical draw stream byte-identically.
type Uniform struct {
	NArcs int
}

// Fill draws len(out) uniform arc indices.
func (u Uniform) Fill(rng *xrand.RNG, _ uint64, out []int32) {
	rng.FillIntn(u.NArcs, out)
}

// NextTransition reports that the distribution never changes.
func (u Uniform) NextTransition(uint64) uint64 { return Never }

// Phase reports the single everlasting epoch.
func (u Uniform) Phase(uint64) (int, bool) { return 0, false }
