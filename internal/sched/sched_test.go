package sched

import (
	"math"
	"testing"

	"repro/internal/xrand"
)

// TestUniformStreamIdentity: Uniform.Fill must consume and produce the
// exact stream of xrand.FillIntn — that identity is what makes the
// explicit uniform scheduler byte-compatible with the engine's default
// draw path.
func TestUniformStreamIdentity(t *testing.T) {
	const n = 37
	a := xrand.New(42)
	b := xrand.New(42)
	var got, want [1000]int32
	u := Uniform{NArcs: n}
	// Mixed batch sizes: identity must hold regardless of batching.
	for _, batch := range []int{1, 7, 256, 256, 480} {
		u.Fill(a, 0, got[:batch])
		b.FillIntn(n, want[:batch])
		for i := 0; i < batch; i++ {
			if got[i] != want[i] {
				t.Fatalf("batch %d: draw %d: got %d want %d", batch, i, got[i], want[i])
			}
		}
	}
	if u.NextTransition(0) != Never {
		t.Fatalf("uniform must never transition")
	}
}

// TestBiasedDeterminismAndSupport: same seed twice gives the same
// stream regardless of batch split, and draws stay in range with the
// hot arcs actually favored.
func TestBiasedDeterminism(t *testing.T) {
	const n = 16
	b1, err := NewBiased(HotspotWeights(n, 2, 50))
	if err != nil {
		t.Fatal(err)
	}
	b2, _ := NewBiased(HotspotWeights(n, 2, 50))
	ra, rb := xrand.New(7), xrand.New(7)
	var a, b [900]int32
	b1.Fill(ra, 0, a[:])
	for off := 0; off < len(b); {
		sz := 111
		if off+sz > len(b) {
			sz = len(b) - off
		}
		b2.Fill(rb, uint64(off), b[off:off+sz])
		off += sz
	}
	hot := 0
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("draw %d differs across batch splits: %d vs %d", i, a[i], b[i])
		}
		if a[i] < 0 || int(a[i]) >= n {
			t.Fatalf("draw %d out of range: %d", i, a[i])
		}
		if a[i] < 2 {
			hot++
		}
	}
	// Hot arcs carry 100/114 of the mass; even a loose bound separates
	// them decisively from the uniform 2/16.
	if hot < len(a)/2 {
		t.Fatalf("hotspot arcs drawn only %d/%d times; bias not applied", hot, len(a))
	}
}

// TestBiasedAliasMass: the alias table must preserve the weight vector
// exactly — each arc's total mass across slots equals its normalized
// weight.
func TestBiasedAliasMass(t *testing.T) {
	weights := []float64{1, 0, 3, 2.5, 0.25, 8}
	b, err := NewBiased(weights)
	if err != nil {
		t.Fatal(err)
	}
	n := len(weights)
	mass := make([]float64, n)
	for j := 0; j < n; j++ {
		mass[j] += b.prob[j] / float64(n)
		mass[b.alias[j]] += (1 - b.prob[j]) / float64(n)
	}
	sum := 0.0
	for _, w := range weights {
		sum += w
	}
	for i, w := range weights {
		if math.Abs(mass[i]-w/sum) > 1e-12 {
			t.Fatalf("arc %d mass %g, want %g", i, mass[i], w/sum)
		}
	}
}

func TestBiasedRejectsBadWeights(t *testing.T) {
	for _, w := range [][]float64{{}, {0, 0}, {-1, 2}, {math.NaN()}, {math.Inf(1)}} {
		if _, err := NewBiased(w); err == nil {
			t.Fatalf("weights %v accepted", w)
		}
	}
}

// TestEclipseSchedule pins the phase machinery to a hand-computed
// trace: windows [100,130), [300,330), ... on a 10-arc ring with dead
// interval [6,9).
func TestEclipseSchedule(t *testing.T) {
	e, err := NewEclipse(10, 100, 200, 30, 6, 3)
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		step     uint64
		epoch    int
		eclipsed bool
		next     uint64
	}{
		{0, 0, false, 100},
		{99, 0, false, 100},
		{100, 1, true, 130},
		{129, 1, true, 130},
		{130, 2, false, 300},
		{299, 2, false, 300},
		{300, 3, true, 330},
		{330, 4, false, 500},
		{500, 5, true, 530},
	}
	for _, c := range cases {
		epoch, ecl := e.Phase(c.step)
		if epoch != c.epoch || ecl != c.eclipsed {
			t.Fatalf("Phase(%d) = (%d, %v), want (%d, %v)", c.step, epoch, ecl, c.epoch, c.eclipsed)
		}
		if next := e.NextTransition(c.step); next != c.next {
			t.Fatalf("NextTransition(%d) = %d, want %d", c.step, next, c.next)
		}
	}
}

// TestEclipseDeadArcsNeverDrawn: inside a window, draws must exclude
// exactly the dead interval (including a wrapping one) and be uniform
// over the rest; outside a window every arc is live.
func TestEclipseDeadArcsNeverDrawn(t *testing.T) {
	for _, tc := range []struct{ lo, width int }{{6, 3}, {8, 5}} { // second wraps: dead = {8,9,0,1,2}
		e, err := NewEclipse(10, 0, 100, 99, tc.lo, tc.width)
		if err != nil {
			t.Fatal(err)
		}
		dead := make(map[int]bool)
		for i := 0; i < tc.width; i++ {
			dead[(tc.lo+i)%10] = true
		}
		rng := xrand.New(3)
		var out [4096]int32
		e.Fill(rng, 10, out[:]) // step 10 is inside the window
		seen := make(map[int]int)
		for _, v := range out {
			if dead[int(v)] {
				t.Fatalf("dead arc %d drawn during eclipse (lo=%d width=%d)", v, tc.lo, tc.width)
			}
			seen[int(v)]++
		}
		if len(seen) != 10-tc.width {
			t.Fatalf("only %d live arcs drawn, want %d", len(seen), 10-tc.width)
		}
	}
}

// TestEclipseClearPhaseIsUniformStream: outside windows the eclipse
// scheduler must reproduce the uniform stream exactly.
func TestEclipseClearPhaseIsUniformStream(t *testing.T) {
	e, err := NewEclipse(12, 1000, 100, 10, 0, 4)
	if err != nil {
		t.Fatal(err)
	}
	a, b := xrand.New(9), xrand.New(9)
	var got, want [512]int32
	e.Fill(a, 0, got[:])
	b.FillIntn(12, want[:])
	if got != want {
		t.Fatal("clear-phase eclipse draws differ from uniform stream")
	}
}

// TestEclipseWidthClamp: a width covering the whole ring is clamped so
// one arc survives.
func TestEclipseWidthClamp(t *testing.T) {
	e, err := NewEclipse(4, 0, 10, 5, 1, 99)
	if err != nil {
		t.Fatal(err)
	}
	if lo, width := e.Dead(); lo != 1 || width != 3 {
		t.Fatalf("Dead() = (%d, %d), want (1, 3)", lo, width)
	}
	rng := xrand.New(1)
	var out [64]int32
	e.Fill(rng, 0, out[:])
	for _, v := range out {
		if v != 0 {
			t.Fatalf("only arc 0 survives, drew %d", v)
		}
	}
}

func TestEclipseRejectsBadParams(t *testing.T) {
	if _, err := NewEclipse(1, 0, 10, 5, 0, 1); err == nil {
		t.Fatal("nArcs=1 accepted")
	}
	if _, err := NewEclipse(8, 0, 10, 10, 0, 1); err == nil {
		t.Fatal("duration == period accepted")
	}
	if _, err := NewEclipse(8, 0, 0, 0, 0, 1); err == nil {
		t.Fatal("zero period accepted")
	}
	if _, err := NewEclipse(8, 0, 10, 5, 0, 0); err == nil {
		t.Fatal("zero width accepted")
	}
}
