package sched

import (
	"fmt"

	"repro/internal/xrand"
)

// Eclipse periodically partitions the ring: during each eclipse window
// a contiguous interval of arcs is dead (never drawn) and draws are
// renormalized uniformly over the surviving arcs; outside windows the
// scheduler is uniform over all arcs. Windows are step-indexed —
// [Start, Start+Duration), then every Period steps after Start — so the
// phase schedule is a pure function of the step count and identical
// across engines and replays.
type Eclipse struct {
	nArcs    int
	start    uint64
	period   uint64
	duration uint64
	lo       int // first dead arc index
	width    int // dead arc count, < nArcs
}

// NewEclipse builds an eclipse scheduler over nArcs arcs. The dead
// interval is the width arcs starting at offset (mod nArcs); width is
// clamped to nArcs-1 so at least one arc always survives. Duration must
// be positive and strictly less than period.
func NewEclipse(nArcs int, start, period, duration uint64, offset, width int) (*Eclipse, error) {
	if nArcs <= 1 {
		return nil, fmt.Errorf("sched: eclipse needs at least two arcs, got %d", nArcs)
	}
	if period == 0 || duration == 0 || duration >= period {
		return nil, fmt.Errorf("sched: eclipse needs 0 < duration < period, got duration=%d period=%d", duration, period)
	}
	if width < 1 {
		return nil, fmt.Errorf("sched: eclipse needs at least one dead arc, got %d", width)
	}
	if width > nArcs-1 {
		width = nArcs - 1
	}
	return &Eclipse{
		nArcs:    nArcs,
		start:    start,
		period:   period,
		duration: duration,
		lo:       ((offset % nArcs) + nArcs) % nArcs,
		width:    width,
	}, nil
}

// eclipsedAt reports whether step falls inside an eclipse window.
func (e *Eclipse) eclipsedAt(step uint64) bool {
	if step < e.start {
		return false
	}
	return (step-e.start)%e.period < e.duration
}

// Fill draws len(out) arc indices for the consecutive steps starting at
// step. The engine clamps batches to one phase, so the whole batch is
// either eclipsed or clear; eclipsed draws are uniform over the live
// arcs and shifted past the dead interval.
func (e *Eclipse) Fill(rng *xrand.RNG, step uint64, out []int32) {
	if !e.eclipsedAt(step) {
		rng.FillIntn(e.nArcs, out)
		return
	}
	live := e.nArcs - e.width
	rng.FillIntn(live, out)
	// Live arc j maps to the j-th arc clockwise from the end of the dead
	// interval, which both renormalizes and handles a wrapping interval.
	base := e.lo + e.width
	for i, v := range out {
		out[i] = int32((base + int(v)) % e.nArcs)
	}
}

// NextTransition returns the next step at which a window opens or
// closes after step.
func (e *Eclipse) NextTransition(step uint64) uint64 {
	if step < e.start {
		return e.start
	}
	k := (step - e.start) / e.period
	base := e.start + k*e.period
	if step < base+e.duration {
		return base + e.duration
	}
	return base + e.period
}

// Phase numbers the alternating clear/eclipsed intervals: 0 before the
// first window, 2k+1 inside window k, 2k+2 in the clear interval after
// it.
func (e *Eclipse) Phase(step uint64) (int, bool) {
	if step < e.start {
		return 0, false
	}
	k := (step - e.start) / e.period
	if (step-e.start)%e.period < e.duration {
		return int(2*k + 1), true
	}
	return int(2*k + 2), false
}

// Dead reports the dead arc interval as (first index, width). The first
// live arc after an eclipse closes is (lo+width) mod nArcs.
func (e *Eclipse) Dead() (lo, width int) { return e.lo, e.width }
