package sched

import (
	"fmt"
	"math"

	"repro/internal/xrand"
)

// Biased draws arcs from a fixed non-uniform distribution using the
// alias method (Vose 1991): O(n) table construction once per trial,
// then exactly two RNG draws per sample — one uniform slot pick and one
// coin — regardless of how skewed the weights are. Tables are built per
// trial and never mutated afterwards, so concurrent trials share
// nothing.
type Biased struct {
	prob  []float64 // accept probability of each slot
	alias []int32   // fallback arc of each slot
}

// NewBiased builds an alias sampler over the given per-arc weights.
// Weights must be finite and non-negative with a positive sum.
func NewBiased(weights []float64) (*Biased, error) {
	n := len(weights)
	if n == 0 {
		return nil, fmt.Errorf("sched: biased scheduler needs at least one arc")
	}
	sum := 0.0
	for i, w := range weights {
		if w < 0 || math.IsInf(w, 0) || math.IsNaN(w) {
			return nil, fmt.Errorf("sched: weight[%d] = %v is not a finite non-negative number", i, w)
		}
		sum += w
	}
	if sum <= 0 {
		return nil, fmt.Errorf("sched: biased weights sum to zero")
	}
	b := &Biased{
		prob:  make([]float64, n),
		alias: make([]int32, n),
	}
	// Vose's alias construction: partition slots into those under- and
	// over-filled relative to the uniform share, then pair each
	// under-filled slot with an over-filled donor.
	scaled := make([]float64, n)
	small := make([]int32, 0, n)
	large := make([]int32, 0, n)
	for i, w := range weights {
		scaled[i] = w * float64(n) / sum
		if scaled[i] < 1 {
			small = append(small, int32(i))
		} else {
			large = append(large, int32(i))
		}
	}
	for len(small) > 0 && len(large) > 0 {
		s := small[len(small)-1]
		small = small[:len(small)-1]
		l := large[len(large)-1]
		large = large[:len(large)-1]
		b.prob[s] = scaled[s]
		b.alias[s] = l
		scaled[l] -= 1 - scaled[s]
		if scaled[l] < 1 {
			small = append(small, l)
		} else {
			large = append(large, l)
		}
	}
	// Leftovers are numerically-exact unit slots.
	for _, i := range append(small, large...) {
		b.prob[i] = 1
		b.alias[i] = i
	}
	return b, nil
}

// Fill draws len(out) arc indices: per element, one uniform slot draw
// and one coin, consumed serially so batch size never affects the
// stream.
func (b *Biased) Fill(rng *xrand.RNG, _ uint64, out []int32) {
	n := len(b.prob)
	for i := range out {
		j := rng.Intn(n)
		if rng.Float64() < b.prob[j] {
			out[i] = int32(j)
		} else {
			out[i] = b.alias[j]
		}
	}
}

// NextTransition reports that the distribution never changes.
func (b *Biased) NextTransition(uint64) uint64 { return Never }

// Phase reports the single everlasting epoch.
func (b *Biased) Phase(uint64) (int, bool) { return 0, false }

// HotspotWeights is the "hotspot" family: the hot leading arcs carry
// weight times the unit weight of every other arc.
func HotspotWeights(nArcs, hot int, weight float64) []float64 {
	w := make([]float64, nArcs)
	for i := range w {
		if i < hot {
			w[i] = weight
		} else {
			w[i] = 1
		}
	}
	return w
}

// RampWeights is the "ramp" family: weights rise linearly around the
// ring from 1 at arc 0 to weight at the last arc.
func RampWeights(nArcs int, weight float64) []float64 {
	w := make([]float64, nArcs)
	for i := range w {
		if nArcs == 1 {
			w[i] = 1
			continue
		}
		w[i] = 1 + (weight-1)*float64(i)/float64(nArcs-1)
	}
	return w
}
