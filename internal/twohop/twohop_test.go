package twohop

import "testing"

func TestColoringValidForAllSizes(t *testing.T) {
	for n := 3; n <= 300; n++ {
		colors := Coloring(n)
		if !Valid(colors) {
			t.Fatalf("n=%d: invalid two-hop coloring %v", n, colors)
		}
		if !NeighborsDistinguishable(colors) {
			t.Fatalf("n=%d: neighbors not distinguishable", n)
		}
	}
}

func TestColoringUsesFewColors(t *testing.T) {
	for n := 3; n <= 100; n++ {
		colors := Coloring(n)
		max := uint8(0)
		for _, c := range colors {
			if c > max {
				max = c
			}
		}
		if int(max) > 2 {
			t.Fatalf("n=%d: used color %d; 3 colors must suffice", n, max)
		}
	}
}

func TestValidDetectsConflicts(t *testing.T) {
	colors := Coloring(10)
	colors[4] = colors[6]
	if Valid(colors) {
		t.Fatal("two-hop conflict not detected")
	}
}

func TestValidRejectsTiny(t *testing.T) {
	if Valid([]uint8{0, 1}) {
		t.Fatal("two-agent ring accepted")
	}
}

func TestNeighborsDistinguishableFollowsFromValid(t *testing.T) {
	// Implied property: spot-check on a hand-made valid coloring.
	colors := []uint8{0, 1, 2, 0, 1, 2}
	if !Valid(colors) || !NeighborsDistinguishable(colors) {
		t.Fatal("period-3 coloring must be valid on n=6")
	}
}

func TestColoringPanicsOnTinyRing(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Coloring(2)
}

func TestMinColorsConsistent(t *testing.T) {
	// MinColors is advisory; the constructor must never exceed 3.
	for n := 3; n <= 50; n++ {
		if MinColors(n) > 3 {
			t.Fatalf("MinColors(%d) = %d", n, MinColors(n))
		}
	}
}
