// Package twohop provides the two-hop coloring substrate assumed by the
// paper's Section 5 ring-orientation protocol: a coloring of the ring such
// that agents two hops apart always differ, which lets every agent tell
// its two neighbors apart by color.
//
// The paper assumes this substrate from Sudo et al. [24] ("without loss of
// generality ... the first condition of Definition 5.1 is always
// satisfied") and so do we: the package supplies an exact constructor and
// verifier for ring two-hop colorings (3–4 colors suffice for every n ≥ 3)
// rather than reimplementing [24]'s general-graph protocol. The
// "remember the two most recently observed distinct colors" memory rule,
// which the paper does specify, lives in the orientation protocol's state
// (internal/orient).
package twohop

import "fmt"

// MinColors returns the number of colors the constructor uses for a ring
// of n agents.
func MinColors(n int) int {
	if n%2 == 0 && (n/2)%2 == 0 {
		return 2 // two even cycles, each 2-colorable
	}
	return 3
}

// Coloring returns a valid two-hop coloring of the n-ring:
// color[i] != color[(i+2) % n] for all i. It panics for n < 3.
func Coloring(n int) []uint8 {
	if n < 3 {
		panic(fmt.Sprintf("twohop: ring size %d < 3", n))
	}
	colors := make([]uint8, n)
	if n%2 == 0 {
		// The two-hop graph is two disjoint cycles of length n/2: the even
		// positions and the odd positions. Color each independently.
		colorCycle(colors, evens(n))
		colorCycle(colors, odds(n))
		return colors
	}
	// Odd n: the two-hop graph is a single cycle 0, 2, 4, ..., visiting
	// every position: order j ↦ 2j mod n.
	cycle := make([]int, n)
	for j := 0; j < n; j++ {
		cycle[j] = (2 * j) % n
	}
	colorCycle(colors, cycle)
	return colors
}

// colorCycle assigns alternating colors 0/1 along the cycle positions,
// patching the final vertex with color 2 when the cycle has odd length.
func colorCycle(colors []uint8, cycle []int) {
	m := len(cycle)
	for j, pos := range cycle {
		colors[pos] = uint8(j % 2)
	}
	if m%2 == 1 {
		colors[cycle[m-1]] = 2
	}
}

func evens(n int) []int {
	out := make([]int, 0, (n+1)/2)
	for i := 0; i < n; i += 2 {
		out = append(out, i)
	}
	return out
}

func odds(n int) []int {
	out := make([]int, 0, n/2)
	for i := 1; i < n; i += 2 {
		out = append(out, i)
	}
	return out
}

// Valid reports whether colors is a two-hop coloring of its ring: every
// pair of agents at distance two differs. This is condition (i) of the
// paper's Definition 5.1.
func Valid(colors []uint8) bool {
	n := len(colors)
	if n < 3 {
		return false
	}
	for i := 0; i < n; i++ {
		if colors[i] == colors[(i+2)%n] {
			return false
		}
	}
	return true
}

// NeighborsDistinguishable reports the property the orientation protocol
// actually consumes: each agent's two neighbors carry different colors.
// It is implied by Valid (the neighbors are two hops apart from each
// other).
func NeighborsDistinguishable(colors []uint8) bool {
	n := len(colors)
	for i := 0; i < n; i++ {
		if colors[(i-1+n)%n] == colors[(i+1)%n] {
			return false
		}
	}
	return true
}
