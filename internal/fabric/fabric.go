// Package fabric is the distributed sweep tier: a coordinator that
// plans one experiment Spec into (cell, seed-range) shard leases and
// hands them to worker processes over HTTP, and a worker loop that runs
// leased shards through the engine and uploads canonical record bytes.
//
// The whole design leans on one property of the platform: every trial
// is a pure function of (protocol, scenario, n, trial) — seeds derive
// from repro.TrialSeed(n, t), never from wall clock or placement — so
// shard boundaries, shard assignment and worker failure carry no
// information. A sweep sharded across any number of workers, with any
// number of leases expiring and being re-issued along the way, merges
// (repro.MergeShards) into a record stream and Report byte-identical to
// the single-process Experiment.Run.
//
// Fault tolerance is lease-shaped, not consensus-shaped. Workers hold a
// shard only through a TTL lease renewed by heartbeat; a worker that
// dies (or stalls past its TTL) simply stops renewing and the
// coordinator re-issues the shard to the next worker that asks. Because
// re-running a shard reproduces its records bit-for-bit, duplicate
// completions are idempotent: a straggler finishing after its lease was
// re-issued is accepted when its bytes match what the sweep already has
// and is a loud determinism-violation failure when they do not.
//
// The coordinator journals shard completions to an on-disk checkpoint
// (content-addressed to the Spec, see Checkpoint) as they arrive, so a
// killed coordinator resumes without re-running finished shards.
//
// Identities are shared with the serving tier via internal/plan: a
// shard's CellKey is the same plan.CellDigest the service cache uses,
// and the canonical bytes a worker uploads for a full cell are the
// bytes a service cold run would have cached for it.
package fabric

import (
	"fmt"

	"repro"
	"repro/internal/plan"
	"repro/internal/service"
)

// Shard is one leased unit of work: the trial range [Lo, Hi) of one
// (protocol, size) cell.
type Shard struct {
	// ID is the deterministic shard name "s-<cellIndex>-<lo>"; it doubles
	// as the checkpoint filename, so planning the same Spec always maps
	// completed work back onto the same shards.
	ID string `json:"id"`
	// Protocol is the registry name (the Spec namespace, not the display
	// name records carry).
	Protocol string `json:"protocol"`
	// RawN is the requested ring size, N the FixSize-adjusted one the
	// engine actually runs (and records carry).
	RawN int `json:"raw_n"`
	N    int `json:"n"`
	// Lo, Hi bound the shard's trial range [Lo, Hi).
	Lo int `json:"lo"`
	Hi int `json:"hi"`
	// CellKey is the plan.CellDigest of the full parent cell — the same
	// identity the service cache uses.
	CellKey string `json:"cell_key"`
}

// Trials returns the shard's trial count.
func (s Shard) Trials() int { return s.Hi - s.Lo }

// PlanShards expands a validated Spec into its shard list: every
// non-skipped cell, in the canonical cell order plan.Cells emits, split
// into consecutive trial ranges of width shardTrials (0 or anything
// larger than the trial count selects whole-cell shards). Cells whose
// digests collide — two requested sizes FixSize-ing to the same n — are
// planned once: their records are identical, so running both would only
// manufacture duplicate uploads.
func PlanShards(spec plan.Spec, shardTrials int) ([]Shard, error) {
	cells, err := spec.Cells()
	if err != nil {
		return nil, err
	}
	if shardTrials <= 0 || shardTrials > spec.Trials {
		shardTrials = spec.Trials
	}
	var shards []Shard
	seen := make(map[string]bool)
	for ci, cell := range cells {
		if cell.Skipped || seen[cell.Key] {
			continue
		}
		seen[cell.Key] = true
		for lo := 0; lo < spec.Trials; lo += shardTrials {
			hi := lo + shardTrials
			if hi > spec.Trials {
				hi = spec.Trials
			}
			shards = append(shards, Shard{
				ID:       fmt.Sprintf("s-%d-%d", ci, lo),
				Protocol: cell.Protocol,
				RawN:     cell.RawN,
				N:        cell.N,
				Lo:       lo,
				Hi:       hi,
				CellKey:  cell.Key,
			})
		}
	}
	if len(shards) == 0 {
		return nil, fmt.Errorf("fabric: spec plans no runnable shards (every cell skipped?)")
	}
	return shards, nil
}

// Lease statuses returned by POST /v1/lease.
const (
	// StatusShard carries a lease on a shard.
	StatusShard = "shard"
	// StatusWait means every pending shard is currently leased; poll again.
	StatusWait = "wait"
	// StatusDone means every shard is complete; workers exit.
	StatusDone = "done"
	// StatusFailed means the sweep failed hard (a determinism violation);
	// workers exit with an error.
	StatusFailed = "failed"
)

// LeaseRequest is the POST /v1/lease body.
type LeaseRequest struct {
	// Worker names the requester, for attribution in stats and logs.
	Worker string `json:"worker"`
}

// LeaseResponse is the POST /v1/lease reply.
type LeaseResponse struct {
	Status string `json:"status"`
	// Error explains a failed sweep (Status == StatusFailed).
	Error string `json:"error,omitempty"`
	// LeaseID names the lease for renew/complete; set when Status is
	// StatusShard.
	LeaseID string `json:"lease_id,omitempty"`
	// TTLMillis is the lease TTL; the worker must renew well inside it.
	TTLMillis int64 `json:"ttl_ms,omitempty"`
	// Shard is the leased work.
	Shard *Shard `json:"shard,omitempty"`
	// Scenario is the sweep-wide trial scenario the shard must run under.
	Scenario repro.Scenario `json:"scenario,omitempty"`
	// SpecDigest content-addresses the sweep (plan.Spec.Digest with the
	// shard width as extra), so a worker can detect it wandered to the
	// wrong coordinator between polls.
	SpecDigest string `json:"spec_digest,omitempty"`
}

// RenewRequest is the POST /v1/renew body; the reply is RenewResponse
// or HTTP 410 when the lease is no longer live (expired and re-issued,
// or its shard already completed).
type RenewRequest struct {
	LeaseID string `json:"lease_id"`
}

// RenewResponse acknowledges a heartbeat with the refreshed TTL.
type RenewResponse struct {
	TTLMillis int64 `json:"ttl_ms"`
}

// LeaseStats counts lease-protocol traffic.
type LeaseStats struct {
	Issued   uint64 `json:"issued"`
	Renewed  uint64 `json:"renewed"`
	Expired  uint64 `json:"expired"`
	Reissued uint64 `json:"reissued"`
}

// ShardStats counts shard completion.
type ShardStats struct {
	Total      int    `json:"total"`
	Done       int    `json:"done"`
	Duplicates uint64 `json:"duplicates"`
}

// Stats is the coordinator's GET /v1/stats payload, mirroring the
// service's: counters per subsystem plus the shared work-unit gauges
// (service.WorkGauges — queue depth counts unleased pending shards,
// in-flight counts live leases).
type Stats struct {
	SpecDigest    string             `json:"spec_digest"`
	Leases        LeaseStats         `json:"leases"`
	Shards        ShardStats         `json:"shards"`
	RecordsMerged uint64             `json:"records_merged"`
	Work          service.WorkGauges `json:"work"`
	Checkpoint    CheckpointStats    `json:"checkpoint"`
	Done          bool               `json:"done"`
	Error         string             `json:"error,omitempty"`
}
