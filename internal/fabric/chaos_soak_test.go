package fabric_test

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/chaos"
	"repro/internal/fabric"
)

// TestRenewExactlyAtTTL pins the heartbeat/expiry race on an injectable
// clock: a renewal landing exactly at the TTL boundary yields a clean
// 410-abandon (never an extension of a lapsed lease), the shard
// re-leases to the next asker, and the coordinator never holds two live
// leases on one shard.
func TestRenewExactlyAtTTL(t *testing.T) {
	clock := newFakeClock()
	c, ts := newCoordinator(t, t.TempDir(), clock.Now, time.Second)

	l1 := lease(t, ts.URL, "w1")
	if l1.Status != fabric.StatusShard {
		t.Fatalf("lease = %+v, want a shard", l1)
	}

	// One instant before the boundary the lease is alive and extends.
	clock.Advance(time.Second - time.Nanosecond)
	if code := renew(t, ts.URL, l1.LeaseID); code != http.StatusOK {
		t.Fatalf("renew just inside TTL = %d, want 200", code)
	}

	// Exactly at the refreshed TTL: expired, not ambiguous. 410 tells the
	// worker to abandon.
	clock.Advance(time.Second)
	if code := renew(t, ts.URL, l1.LeaseID); code != http.StatusGone {
		t.Fatalf("renew exactly at TTL = %d, want 410", code)
	}
	// The 410 is sticky — a replayed heartbeat cannot resurrect the lease.
	if code := renew(t, ts.URL, l1.LeaseID); code != http.StatusGone {
		t.Fatalf("replayed renew after 410 = %d, want 410", code)
	}

	// The shard re-leases to the next asker; exactly one live lease for it.
	l2 := lease(t, ts.URL, "w2")
	if l2.Status != fabric.StatusShard || l2.Shard.ID != l1.Shard.ID {
		t.Fatalf("reissued lease = %+v, want shard %s", l2, l1.Shard.ID)
	}
	if st := c.Stats(); st.Work.InFlight != 1 {
		t.Fatalf("in-flight = %d after reissue, want 1 (no double-lease)", st.Work.InFlight)
	}
	// A third asker gets a different shard — the reissued one is held.
	l3 := lease(t, ts.URL, "w3")
	if l3.Status != fabric.StatusShard || l3.Shard.ID == l2.Shard.ID {
		t.Fatalf("third lease = %+v, want a different shard than %s", l3, l2.Shard.ID)
	}
	// The old lease ID cannot complete-steal cleanly into a conflict: its
	// late identical bytes are still the same pure function, so the safety
	// property is the lease table, not the payload. Complete via the live
	// lease and confirm single completion.
	if code := complete(t, ts.URL, l2.LeaseID, runShard(t, l2)); code != http.StatusOK {
		t.Fatalf("complete reissued = %d", code)
	}
	if st := c.Stats(); st.Shards.Done != 1 {
		t.Fatalf("done = %d, want 1", st.Shards.Done)
	}
}

// TestJournalCorruptionRecovery flips a byte inside a committed journal
// line and reopens the checkpoint: the CRC catches it, the damaged
// entry's shard re-leases (its file is intact but unproven — the entry
// is gone), every other entry survives, and the finished sweep still
// merges byte-identical to serial.
func TestJournalCorruptionRecovery(t *testing.T) {
	dir := t.TempDir()
	clock := newFakeClock()
	c1, ts1 := newCoordinator(t, dir, clock.Now, time.Minute)

	var doneIDs []string
	for i := 0; i < 3; i++ {
		lr := lease(t, ts1.URL, "w1")
		if lr.Status != fabric.StatusShard {
			t.Fatalf("lease %d = %+v", i, lr)
		}
		if code := complete(t, ts1.URL, lr.LeaseID, runShard(t, lr)); code != http.StatusOK {
			t.Fatalf("complete = %d", code)
		}
		doneIDs = append(doneIDs, lr.Shard.ID)
	}
	ts1.Close()
	c1.Close()

	// Flip one byte in the middle (second) journal line's JSON payload.
	jpath := filepath.Join(dir, "journal.jsonl")
	data, err := os.ReadFile(jpath)
	if err != nil {
		t.Fatalf("read journal: %v", err)
	}
	lines := bytes.SplitAfter(data, []byte("\n"))
	if len(lines) < 3 {
		t.Fatalf("journal has %d lines, want >= 3", len(lines))
	}
	mid := lines[1]
	mid[len(mid)/2] ^= 0x01
	if err := os.WriteFile(jpath, bytes.Join(lines, nil), 0o644); err != nil {
		t.Fatalf("rewrite journal: %v", err)
	}

	c2, ts2 := newCoordinator(t, dir, clock.Now, time.Minute)
	st := c2.Stats()
	if st.Checkpoint.CorruptJournalLines != 1 {
		t.Fatalf("corrupt journal lines = %d, want 1", st.Checkpoint.CorruptJournalLines)
	}
	if st.Shards.Done != 2 {
		t.Fatalf("resumed done = %d, want 2 (the corrupt entry's shard re-runs)", st.Shards.Done)
	}
	// Drain; the dropped shard must be offered again.
	offered := map[string]bool{}
	for {
		lr := lease(t, ts2.URL, "w2")
		if lr.Status == fabric.StatusDone {
			break
		}
		if lr.Status != fabric.StatusShard {
			t.Fatalf("lease = %+v", lr)
		}
		offered[lr.Shard.ID] = true
		if code := complete(t, ts2.URL, lr.LeaseID, runShard(t, lr)); code != http.StatusOK {
			t.Fatalf("complete = %d", code)
		}
	}
	if !offered[doneIDs[1]] {
		t.Fatalf("shard %s (corrupt journal entry) was never re-leased", doneIDs[1])
	}
	if got, want := mergedBytes(t, c2), serialBytes(t); !bytes.Equal(got, want) {
		t.Fatal("merge after journal corruption differs from serial stream")
	}
}

// TestTornShardQuarantinedAndReleased is the lying-storage story: a torn
// shard write that reported success is invisible in-process (the journal
// entry is valid, the coordinator counts the shard done) and only the
// content digest at resume can catch it. Reopening must quarantine the
// file aside, re-lease the shard, and still converge byte-identical.
func TestTornShardQuarantinedAndReleased(t *testing.T) {
	dir := t.TempDir()
	clock := newFakeClock()

	// Atomic write #1 is sweep.json; #2 is the first shard file — tear it.
	in := chaos.NewInjector(chaos.Config{Seed: 1, TornWriteAt: 2})
	c1, err := fabric.NewCoordinator(fabric.CoordinatorConfig{
		Spec: fabricSpec(), ShardTrials: 1, LeaseTTL: time.Minute,
		Dir: dir, Clock: clock.Now, FS: in.FS(nil),
	})
	if err != nil {
		t.Fatalf("NewCoordinator: %v", err)
	}
	ts1 := httptest.NewServer(c1.Handler())

	l1 := lease(t, ts1.URL, "w1")
	if code := complete(t, ts1.URL, l1.LeaseID, runShard(t, l1)); code != http.StatusOK {
		t.Fatalf("complete = %d (the torn write lies)", code)
	}
	if st := c1.Stats(); st.Shards.Done != 1 {
		t.Fatalf("in-process done = %d, want 1 — the tear must be invisible here", st.Shards.Done)
	}
	ts1.Close()
	c1.Close()

	// Resume with an honest filesystem: digest verification must catch it.
	c2, ts2 := newCoordinator(t, dir, clock.Now, time.Minute)
	st := c2.Stats()
	if st.Checkpoint.Quarantined != 1 {
		t.Fatalf("quarantined = %d, want 1", st.Checkpoint.Quarantined)
	}
	if st.Shards.Done != 0 {
		t.Fatalf("resumed done = %d, want 0", st.Shards.Done)
	}
	corrupt := filepath.Join(dir, "shards", l1.Shard.ID+".jsonl.gz.corrupt")
	if _, err := os.Stat(corrupt); err != nil {
		t.Fatalf("quarantine file missing: %v", err)
	}

	offered := map[string]bool{}
	for {
		lr := lease(t, ts2.URL, "w2")
		if lr.Status == fabric.StatusDone {
			break
		}
		offered[lr.Shard.ID] = true
		if code := complete(t, ts2.URL, lr.LeaseID, runShard(t, lr)); code != http.StatusOK {
			t.Fatalf("complete = %d", code)
		}
	}
	if !offered[l1.Shard.ID] {
		t.Fatalf("torn shard %s was never re-leased", l1.Shard.ID)
	}
	if got, want := mergedBytes(t, c2), serialBytes(t); !bytes.Equal(got, want) {
		t.Fatal("merge after quarantine differs from serial stream")
	}
}

// TestWorkerUnreachableCoordinator: a worker that cannot raise the
// coordinator for longer than MaxIdle exits with
// ErrCoordinatorUnreachable — the distinct signal cmd/fabric maps to
// exit code 3.
func TestWorkerUnreachableCoordinator(t *testing.T) {
	dead := httptest.NewServer(http.NotFoundHandler())
	dead.Close() // nothing listens here anymore

	err := fabric.Work(context.Background(), fabric.WorkerConfig{
		Coordinator: dead.URL,
		Name:        "w-lost",
		Poll:        2 * time.Millisecond,
		MaxIdle:     50 * time.Millisecond,
		Retry:       &chaos.Policy{MaxAttempts: 2, Base: time.Millisecond, Cap: 2 * time.Millisecond},
	})
	if !errors.Is(err, fabric.ErrCoordinatorUnreachable) {
		t.Fatalf("err = %v, want ErrCoordinatorUnreachable", err)
	}
}

// TestChaosSoak is the capstone: a coordinator on a fault-injecting
// filesystem (one lying torn shard write) with two workers behind
// seeded chaotic transports (drops, latency spikes, injected 5xx/429,
// truncated bodies) and one worker crash mid-sweep. Phase 1 drains the
// sweep under fire; phase 2 restarts the coordinator, which must
// quarantine the torn shard, re-lease it, and finish with merged
// records and report byte-identical to the serial run.
func TestChaosSoak(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos soak is a multi-second integration test")
	}
	const seed = 0xC0FFEE
	dir := t.TempDir()

	// Coordinator storage: tear the second shard file written (the first
	// atomic write is sweep.json).
	coordIn := chaos.NewInjector(chaos.Config{Seed: seed, TornWriteAt: 3})
	c1, err := fabric.NewCoordinator(fabric.CoordinatorConfig{
		Spec: fabricSpec(), ShardTrials: 1, LeaseTTL: 500 * time.Millisecond,
		Dir: dir, FS: coordIn.FS(nil),
	})
	if err != nil {
		t.Fatalf("NewCoordinator: %v", err)
	}
	ts1 := httptest.NewServer(c1.Handler())

	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()

	// Worker 1 crashes (its context dies, heartbeats stop — process death
	// as the lease protocol sees it) at its second completed shard run.
	w1Ctx, crashW1 := context.WithCancel(ctx)
	defer crashW1()
	w1In := chaos.NewInjector(chaos.Config{
		Seed: seed + 1, Drop: 0.05, DropAfter: 0.05, HTTPError: 0.05,
		Truncate: 0.03, Latency: 0.3, MaxLatency: 2 * time.Millisecond,
		CrashLabel: "worker.ran", CrashAt: 2,
		Crash: func(string) { crashW1() },
	})
	w2In := chaos.NewInjector(chaos.Config{
		Seed: seed + 2, Drop: 0.05, DropAfter: 0.05, HTTPError: 0.05,
		Truncate: 0.03, Latency: 0.3, MaxLatency: 2 * time.Millisecond,
	})
	quick := &chaos.Policy{MaxAttempts: 5, Base: 2 * time.Millisecond, Cap: 20 * time.Millisecond, Seed: seed}

	var wg sync.WaitGroup
	errs := make([]error, 2)
	for i, in := range []*chaos.Injector{w1In, w2In} {
		wg.Add(1)
		wctx := ctx
		if i == 0 {
			wctx = w1Ctx
		}
		go func(i int, wctx context.Context, in *chaos.Injector) {
			defer wg.Done()
			errs[i] = fabric.Work(wctx, fabric.WorkerConfig{
				Coordinator:  ts1.URL,
				Name:         fmt.Sprintf("chaos-w%d", i),
				TrialWorkers: 2,
				Poll:         5 * time.Millisecond,
				MaxIdle:      time.Minute,
				Retry:        quick,
				Chaos:        in,
			})
		}(i, wctx, in)
	}
	wg.Wait()

	// The crashed worker died with its context; the survivor drained the
	// sweep to done.
	if errs[0] != nil && !errors.Is(errs[0], context.Canceled) {
		t.Fatalf("crashed worker returned %v, want nil or context.Canceled", errs[0])
	}
	if errs[1] != nil {
		t.Fatalf("surviving worker: %v", errs[1])
	}
	if c := w1In.Counters(); c.Crashes != 1 {
		t.Fatalf("worker 1 crash counter = %d, want 1", c.Crashes)
	}
	// The fault plan actually fired — a soak against a silent injector
	// proves nothing.
	total := func(c chaos.Counters) uint64 {
		return c.Drops + c.DropsAfter + c.HTTPErrors + c.Truncations + c.Latencies
	}
	if total(w1In.Counters())+total(w2In.Counters()) == 0 {
		t.Fatal("no transport faults fired during the soak")
	}
	st := c1.Stats()
	if !st.Done {
		t.Fatalf("sweep not done after workers exited: %+v", st)
	}
	ts1.Close()
	c1.Close()

	// Phase 2: an honest restart must catch the lying torn write.
	c2, ts2 := newCoordinator(t, dir, nil, 10*time.Second)
	st = c2.Stats()
	if st.Checkpoint.Quarantined != 1 {
		t.Fatalf("quarantined = %d, want exactly the torn shard", st.Checkpoint.Quarantined)
	}
	if st.Shards.Done != st.Shards.Total-1 {
		t.Fatalf("resumed done = %d/%d, want all but the quarantined shard", st.Shards.Done, st.Shards.Total)
	}
	if err := fabric.Work(ctx, fabric.WorkerConfig{
		Coordinator: ts2.URL, Name: "repair", TrialWorkers: 2,
		Poll: 5 * time.Millisecond, Retry: quick,
	}); err != nil {
		t.Fatalf("repair worker: %v", err)
	}

	// The invariant everything above exists to protect: bytes.
	got, want := mergedBytes(t, c2), serialBytes(t)
	if !bytes.Equal(got, want) {
		t.Fatalf("chaos-soak merge differs from serial stream:\nfabric: %s\nserial: %s", got, want)
	}
	merged, err := c2.Merged()
	if err != nil {
		t.Fatalf("Merged: %v", err)
	}
	rep, err := fabricSpec().Experiment().ReportFromRecords(merged)
	if err != nil {
		t.Fatalf("ReportFromRecords: %v", err)
	}
	gotJSON, err := rep.JSON()
	if err != nil {
		t.Fatalf("report JSON: %v", err)
	}
	serialRep, err := fabricSpec().Experiment().Run(context.Background())
	if err != nil {
		t.Fatalf("serial run: %v", err)
	}
	wantJSON, err := serialRep.JSON()
	if err != nil {
		t.Fatalf("serial report JSON: %v", err)
	}
	if !bytes.Equal(gotJSON, wantJSON) {
		t.Fatal("chaos-soak report differs from serial report")
	}
	if strings.Contains(string(gotJSON), "chaos") {
		t.Fatal("chaos artifacts leaked into the report")
	}
}
