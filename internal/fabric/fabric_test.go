package fabric_test

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro"
	"repro/internal/fabric"
	"repro/internal/plan"
)

// fabricSpec is the fixture sweep: two protocols, two sizes, three
// trials, one size cap exercising skipped cells — 3 runnable cells, 9
// single-trial shards.
func fabricSpec() plan.Spec {
	return plan.Spec{
		Protocols: []string{"ppl", "angluin"},
		Sizes:     []int{8, 16},
		Trials:    3,
		MaxSize:   map[string]int{"angluin": 8},
	}
}

// serialBytes runs the fixture serially through the library and returns
// the canonical record stream — the golden every fabric path must hit.
func serialBytes(t *testing.T) []byte {
	t.Helper()
	var buf bytes.Buffer
	sink := repro.NewJSONLSink(&buf)
	if err := fabricSpec().Experiment().Workers(1).Sinks(sink).Stream(context.Background()); err != nil {
		t.Fatalf("serial stream: %v", err)
	}
	return buf.Bytes()
}

// mergedBytes renders a coordinator's merged stream.
func mergedBytes(t *testing.T, c *fabric.Coordinator) []byte {
	t.Helper()
	merged, err := c.Merged()
	if err != nil {
		t.Fatalf("Merged: %v", err)
	}
	var buf bytes.Buffer
	if err := repro.WriteTrialRecords(&buf, merged); err != nil {
		t.Fatalf("write merged: %v", err)
	}
	return buf.Bytes()
}

// fakeClock drives lease expiry without sleeping.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func newFakeClock() *fakeClock { return &fakeClock{t: time.Unix(1_000_000, 0)} }

func (c *fakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *fakeClock) Advance(d time.Duration) {
	c.mu.Lock()
	c.t = c.t.Add(d)
	c.mu.Unlock()
}

// lease, renew and complete drive the coordinator's wire protocol
// directly — the tests play worker.
func lease(t *testing.T, url, worker string) fabric.LeaseResponse {
	t.Helper()
	body, _ := json.Marshal(fabric.LeaseRequest{Worker: worker})
	resp, err := http.Post(url+"/v1/lease", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatalf("lease: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("lease = %d", resp.StatusCode)
	}
	var out fabric.LeaseResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatalf("decode lease: %v", err)
	}
	return out
}

func renew(t *testing.T, url, leaseID string) int {
	t.Helper()
	body, _ := json.Marshal(fabric.RenewRequest{LeaseID: leaseID})
	resp, err := http.Post(url+"/v1/renew", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatalf("renew: %v", err)
	}
	resp.Body.Close()
	return resp.StatusCode
}

func complete(t *testing.T, url, leaseID string, canonical []byte) int {
	t.Helper()
	resp, err := http.Post(fmt.Sprintf("%s/v1/complete?lease_id=%s", url, leaseID), "application/gzip", bytes.NewReader(canonical))
	if err != nil {
		t.Fatalf("complete: %v", err)
	}
	resp.Body.Close()
	return resp.StatusCode
}

// runShard produces a shard's canonical bytes the way a worker would.
func runShard(t *testing.T, lr fabric.LeaseResponse) []byte {
	t.Helper()
	data, err := fabric.RunShard(context.Background(), *lr.Shard, lr.Scenario, 1)
	if err != nil {
		t.Fatalf("RunShard(%s): %v", lr.Shard.ID, err)
	}
	return data
}

func newCoordinator(t *testing.T, dir string, clock func() time.Time, ttl time.Duration) (*fabric.Coordinator, *httptest.Server) {
	t.Helper()
	c, err := fabric.NewCoordinator(fabric.CoordinatorConfig{
		Spec:        fabricSpec(),
		ShardTrials: 1,
		LeaseTTL:    ttl,
		Dir:         dir,
		Clock:       clock,
	})
	if err != nil {
		t.Fatalf("NewCoordinator: %v", err)
	}
	ts := httptest.NewServer(c.Handler())
	t.Cleanup(func() {
		ts.Close()
		c.Close()
	})
	return c, ts
}

func TestPlanShards(t *testing.T) {
	shards, err := fabric.PlanShards(fabricSpec(), 2)
	if err != nil {
		t.Fatalf("PlanShards: %v", err)
	}
	// 3 runnable cells (angluin@16 is capped) × trials 3 at width 2 →
	// ranges [0,2) and [2,3): 6 shards.
	if len(shards) != 6 {
		t.Fatalf("got %d shards, want 6: %+v", len(shards), shards)
	}
	for _, sh := range shards {
		if sh.Protocol == "angluin" && sh.RawN == 16 {
			t.Fatalf("capped cell was planned: %+v", sh)
		}
		if sh.CellKey == "" {
			t.Fatalf("shard without cell digest: %+v", sh)
		}
	}
	if shards[0].Lo != 0 || shards[0].Hi != 2 || shards[1].Lo != 2 || shards[1].Hi != 3 {
		t.Fatalf("unexpected trial ranges: %+v %+v", shards[0], shards[1])
	}

	// Whole-cell planning (width 0).
	whole, err := fabric.PlanShards(fabricSpec(), 0)
	if err != nil {
		t.Fatalf("PlanShards(0): %v", err)
	}
	if len(whole) != 3 {
		t.Fatalf("got %d whole-cell shards, want 3", len(whole))
	}
}

// TestLeaseExpiryReissueAndLateDuplicate walks the straggler story on a
// fake clock: a worker leases a shard and goes silent, the lease lapses,
// the shard is re-issued to a second worker who completes it, and the
// straggler's late identical upload is accepted as a duplicate. The
// sweep then finishes and must still merge byte-identical to serial.
func TestLeaseExpiryReissueAndLateDuplicate(t *testing.T) {
	clock := newFakeClock()
	c, ts := newCoordinator(t, t.TempDir(), clock.Now, time.Second)

	l1 := lease(t, ts.URL, "w1")
	if l1.Status != fabric.StatusShard {
		t.Fatalf("lease = %+v, want a shard", l1)
	}

	// A live lease renews; the shard is not re-issued while held.
	if code := renew(t, ts.URL, l1.LeaseID); code != http.StatusOK {
		t.Fatalf("renew live lease = %d, want 200", code)
	}

	// w1 goes silent past the TTL: its heartbeat is refused...
	clock.Advance(3 * time.Second)
	if code := renew(t, ts.URL, l1.LeaseID); code != http.StatusGone {
		t.Fatalf("renew lapsed lease = %d, want 410", code)
	}
	// ...and the shard goes to the next asker.
	l2 := lease(t, ts.URL, "w2")
	if l2.Status != fabric.StatusShard || l2.Shard.ID != l1.Shard.ID {
		t.Fatalf("re-issued lease = %+v, want shard %s", l2, l1.Shard.ID)
	}
	st := c.Stats()
	if st.Leases.Expired != 1 || st.Leases.Reissued != 1 {
		t.Fatalf("lease stats = %+v, want 1 expired / 1 reissued", st.Leases)
	}

	data := runShard(t, l2)
	if code := complete(t, ts.URL, l2.LeaseID, data); code != http.StatusOK {
		t.Fatalf("complete = %d, want 200", code)
	}
	// The straggler finally finishes the same pure function: idempotent.
	if code := complete(t, ts.URL, l1.LeaseID, data); code != http.StatusOK {
		t.Fatalf("late duplicate complete = %d, want 200", code)
	}
	if st := c.Stats(); st.Shards.Duplicates != 1 || st.Shards.Done != 1 {
		t.Fatalf("shard stats = %+v, want 1 duplicate / 1 done", st.Shards)
	}

	// Finish the sweep and check the byte-identity survived the drama.
	for {
		lr := lease(t, ts.URL, "w2")
		if lr.Status == fabric.StatusDone {
			break
		}
		if lr.Status != fabric.StatusShard {
			t.Fatalf("lease = %+v", lr)
		}
		if code := complete(t, ts.URL, lr.LeaseID, runShard(t, lr)); code != http.StatusOK {
			t.Fatalf("complete %s = %d", lr.Shard.ID, code)
		}
	}
	if got, want := mergedBytes(t, c), serialBytes(t); !bytes.Equal(got, want) {
		t.Fatal("merged stream differs from serial stream")
	}
}

// TestConflictingCompletionFailsSweep: two completions of one shard
// with different bytes is a determinism violation — 409, and the sweep
// fails loudly rather than picking a winner.
func TestConflictingCompletionFailsSweep(t *testing.T) {
	clock := newFakeClock()
	c, ts := newCoordinator(t, t.TempDir(), clock.Now, time.Minute)

	l1 := lease(t, ts.URL, "w1")
	data := runShard(t, l1)
	if code := complete(t, ts.URL, l1.LeaseID, data); code != http.StatusOK {
		t.Fatalf("complete = %d", code)
	}

	// Forge a conflicting record set: same trial range, different steps.
	recs, err := repro.ReadTrialRecords(bytes.NewReader(data))
	if err != nil {
		t.Fatalf("read: %v", err)
	}
	recs[0].Steps += 17
	var forged bytes.Buffer
	if err := repro.WriteTrialRecords(&forged, recs); err != nil {
		t.Fatalf("write forged: %v", err)
	}
	if code := complete(t, ts.URL, l1.LeaseID, forged.Bytes()); code != http.StatusConflict {
		t.Fatalf("conflicting complete = %d, want 409", code)
	}
	if err := c.Err(); err == nil || !strings.Contains(err.Error(), "determinism") {
		t.Fatalf("coordinator error = %v, want determinism violation", err)
	}
	if lr := lease(t, ts.URL, "w2"); lr.Status != fabric.StatusFailed {
		t.Fatalf("lease after violation = %+v, want failed", lr)
	}
}

// TestCoordinatorKillResume: complete part of the sweep, tear the
// coordinator down (its only persistent state is the checkpoint, which
// is fsynced per completion — indistinguishable from a kill), and boot
// a fresh one on the directory: finished shards must not re-lease, and
// the finished sweep must still merge byte-identical to serial.
func TestCoordinatorKillResume(t *testing.T) {
	dir := t.TempDir()
	clock := newFakeClock()

	c1, ts1 := newCoordinator(t, dir, clock.Now, time.Minute)
	doneIDs := make(map[string]bool)
	for i := 0; i < 4; i++ {
		lr := lease(t, ts1.URL, "w1")
		if lr.Status != fabric.StatusShard {
			t.Fatalf("lease %d = %+v", i, lr)
		}
		if code := complete(t, ts1.URL, lr.LeaseID, runShard(t, lr)); code != http.StatusOK {
			t.Fatalf("complete = %d", code)
		}
		doneIDs[lr.Shard.ID] = true
	}
	// One in-flight lease dies with the coordinator; its shard must
	// simply re-lease on the successor.
	inflight := lease(t, ts1.URL, "w1")
	if inflight.Status != fabric.StatusShard {
		t.Fatalf("in-flight lease = %+v", inflight)
	}
	if st := c1.Stats(); st.Shards.Done != 4 {
		t.Fatalf("pre-kill done = %d, want 4", st.Shards.Done)
	}
	ts1.Close()
	c1.Close()

	c2, ts2 := newCoordinator(t, dir, clock.Now, time.Minute)
	if st := c2.Stats(); st.Shards.Done != 4 {
		t.Fatalf("resumed done = %d, want 4", st.Shards.Done)
	}
	for {
		lr := lease(t, ts2.URL, "w2")
		if lr.Status == fabric.StatusDone {
			break
		}
		if lr.Status != fabric.StatusShard {
			t.Fatalf("lease = %+v", lr)
		}
		if doneIDs[lr.Shard.ID] {
			t.Fatalf("resumed coordinator re-leased finished shard %s", lr.Shard.ID)
		}
		if code := complete(t, ts2.URL, lr.LeaseID, runShard(t, lr)); code != http.StatusOK {
			t.Fatalf("complete = %d", code)
		}
	}
	select {
	case <-c2.Done():
	default:
		t.Fatal("Done not closed after last shard")
	}
	if got, want := mergedBytes(t, c2), serialBytes(t); !bytes.Equal(got, want) {
		t.Fatal("resumed merge differs from serial stream")
	}
}

// TestCheckpointRejectsForeignSweep: a checkpoint directory binds to one
// sweep digest; reusing it for a different spec must refuse, not mix
// records.
func TestCheckpointRejectsForeignSweep(t *testing.T) {
	dir := t.TempDir()
	c, _ := newCoordinator(t, dir, nil, time.Minute)
	_ = c

	other := fabricSpec()
	other.Trials = 5
	_, err := fabric.NewCoordinator(fabric.CoordinatorConfig{
		Spec: other, ShardTrials: 1, Dir: dir,
	})
	if err == nil || !strings.Contains(err.Error(), "different sweep") {
		t.Fatalf("foreign spec reuse err = %v, want digest mismatch", err)
	}
}

// TestFabricEndToEndTwoWorkers is the integration path: a live
// coordinator and two concurrent worker loops (run under -race in CI)
// drain the sweep; the merged stream and Report must be byte-identical
// to the serial run, and the stats endpoint must mirror the service's
// shape.
func TestFabricEndToEndTwoWorkers(t *testing.T) {
	c, ts := newCoordinator(t, t.TempDir(), nil, 10*time.Second)
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()

	var wg sync.WaitGroup
	errs := make([]error, 2)
	for i := range errs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			errs[i] = fabric.Work(ctx, fabric.WorkerConfig{
				Coordinator:  ts.URL,
				Name:         fmt.Sprintf("w%d", i),
				TrialWorkers: 2,
				Poll:         5 * time.Millisecond,
			})
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("worker %d: %v", i, err)
		}
	}

	st := c.Stats()
	if !st.Done || st.Shards.Done != st.Shards.Total || st.Shards.Total != 9 {
		t.Fatalf("stats = %+v, want 9/9 shards done", st)
	}
	if st.RecordsMerged != 9 {
		t.Fatalf("records merged = %d, want 9", st.RecordsMerged)
	}
	if st.Work.InFlight != 0 || st.Work.QueueDepth != 0 {
		t.Fatalf("work gauges not drained: %+v", st.Work)
	}

	got, want := mergedBytes(t, c), serialBytes(t)
	if !bytes.Equal(got, want) {
		t.Fatalf("two-worker merge differs from serial stream:\nfabric: %s\nserial: %s", got, want)
	}

	// Report byte-identity, end to end.
	merged, err := c.Merged()
	if err != nil {
		t.Fatalf("Merged: %v", err)
	}
	rep, err := fabricSpec().Experiment().ReportFromRecords(merged)
	if err != nil {
		t.Fatalf("ReportFromRecords: %v", err)
	}
	gotJSON, err := rep.JSON()
	if err != nil {
		t.Fatalf("report JSON: %v", err)
	}
	serialRep, err := fabricSpec().Experiment().Run(context.Background())
	if err != nil {
		t.Fatalf("serial run: %v", err)
	}
	wantJSON, err := serialRep.JSON()
	if err != nil {
		t.Fatalf("serial report JSON: %v", err)
	}
	if !bytes.Equal(gotJSON, wantJSON) {
		t.Fatal("fabric report differs from serial report")
	}

	// The stats endpoint serves the same snapshot over HTTP.
	resp, err := http.Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatalf("GET stats: %v", err)
	}
	var wire fabric.Stats
	err = json.NewDecoder(resp.Body).Decode(&wire)
	resp.Body.Close()
	if err != nil {
		t.Fatalf("decode stats: %v", err)
	}
	if !wire.Done || wire.Shards.Done != 9 || wire.SpecDigest != c.SpecDigest() {
		t.Fatalf("wire stats = %+v", wire)
	}
}
